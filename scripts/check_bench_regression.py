#!/usr/bin/env python3
"""Compare Google Benchmark JSON results against a pinned baseline.

Used by the perf-smoke CI job: benchmarks run with the `--json <file>`
reporter (see bench/bench_util.hpp), and this script fails the build when
any benchmark's reported time regresses by more than the allowed factor
against BENCH_baseline.json.

Usage:
    check_bench_regression.py check    <baseline.json> <result.json>... \
        [--max-ratio 2.0] [--only PREFIX]...
    check_bench_regression.py baseline <out.json> <result.json>...
    check_bench_regression.py overhead <result.json>... \
        [--off monitor:0] [--on monitor:1] [--max-ratio 2.0]

`baseline` merges one or more result files into a compact baseline mapping
benchmark name -> {real_time, time_unit} (taking the median entry of any
repetitions).  `check` compares the same statistic and prints a table.
`check --only PREFIX` (repeatable) restricts the comparison to baseline
benchmarks whose name starts with a given prefix — how the perf-smoke job
re-checks just the mailbox/metrics hot paths as the "racer shim compiled
out adds nothing" gate.  `overhead` pairs benchmarks within one result set whose names differ only
by an off/on token (bench_metrics tags them `monitor:0` / `monitor:1` via
ArgNames) and fails when the instrumented variant exceeds the plain one by
more than the allowed factor — a relative gate that shared-runner noise
cannot trip the way an absolute baseline can.

Only the Python standard library is used.
"""

import argparse
import json
import sys
from statistics import median

# Aggregate entries ("_mean", "_median", ...) from --benchmark_repetitions
# runs; prefer the median aggregate when present, else the raw iterations.
_AGGREGATE_SUFFIXES = ("_mean", "_median", "_stddev", "_cv", "_min", "_max")

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_times(paths):
    """benchmark name -> representative real_time in nanoseconds."""
    raw = {}
    medians = {}
    for path in paths:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        for bench in doc.get("benchmarks", []):
            name = bench.get("name", "")
            if bench.get("run_type") == "aggregate":
                if bench.get("aggregate_name") == "median":
                    base = name
                    for suffix in _AGGREGATE_SUFFIXES:
                        if base.endswith(suffix):
                            base = base[: -len(suffix)]
                            break
                    medians[base] = to_ns(bench)
                continue
            raw.setdefault(name, []).append(to_ns(bench))
    times = {name: median(values) for name, values in raw.items()}
    times.update(medians)  # aggregate medians win over raw medians
    return times


def to_ns(bench):
    unit = _UNIT_NS.get(bench.get("time_unit", "ns"), 1.0)
    return float(bench["real_time"]) * unit


def cmd_baseline(args):
    times = load_times(args.results)
    if not times:
        print("check_bench_regression: no benchmarks in input", file=sys.stderr)
        return 1
    baseline = {
        "comment": "pinned perf-smoke baseline; regenerate with "
        "scripts/check_bench_regression.py baseline",
        "benchmarks": {
            name: {"real_time_ns": round(ns, 3)}
            for name, ns in sorted(times.items())
        },
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(baseline, fh, indent=2)
        fh.write("\n")
    print(f"wrote {len(times)} baseline entries to {args.out}")
    return 0


def cmd_check(args):
    with open(args.baseline, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)["benchmarks"]
    current = load_times(args.results)
    if args.only:
        baseline = {
            name: entry
            for name, entry in baseline.items()
            if any(name.startswith(prefix) for prefix in args.only)
        }
        if not baseline:
            print("check_bench_regression: --only "
                  f"{args.only} matches no baseline benchmark",
                  file=sys.stderr)
            return 1
        current = {
            name: ns
            for name, ns in current.items()
            if any(name.startswith(prefix) for prefix in args.only)
        }

    failures = []
    missing = []
    width = max((len(n) for n in baseline), default=20)
    print(f"{'benchmark':<{width}} {'baseline':>12} {'current':>12} "
          f"{'ratio':>7}")
    for name in sorted(baseline):
        base_ns = float(baseline[name]["real_time_ns"])
        if name not in current:
            missing.append(name)
            print(f"{name:<{width}} {base_ns:>12.0f} {'MISSING':>12}")
            continue
        cur_ns = current[name]
        ratio = cur_ns / base_ns if base_ns > 0 else float("inf")
        flag = "  FAIL" if ratio > args.max_ratio else ""
        print(f"{name:<{width}} {base_ns:>12.0f} {cur_ns:>12.0f} "
              f"{ratio:>6.2f}x{flag}")
        if ratio > args.max_ratio:
            failures.append((name, ratio))

    new = sorted(set(current) - set(baseline))
    for name in new:
        print(f"{name:<{width}} {'(new)':>12} {current[name]:>12.0f}")

    if missing:
        print(f"\nwarning: {len(missing)} baseline benchmark(s) missing from "
              "results", file=sys.stderr)
    if failures:
        print(f"\nFAIL: {len(failures)} benchmark(s) regressed beyond "
              f"{args.max_ratio:.1f}x:", file=sys.stderr)
        for name, ratio in failures:
            print(f"  {name}: {ratio:.2f}x", file=sys.stderr)
        return 1
    print(f"\nOK: no benchmark regressed beyond {args.max_ratio:.1f}x")
    return 0


def cmd_overhead(args):
    times = load_times(args.results)
    pairs = []
    for name in sorted(times):
        if args.off not in name:
            continue
        on_name = name.replace(args.off, args.on)
        if on_name in times:
            pairs.append((name, on_name))
    if not pairs:
        print(f"check_bench_regression: no '{args.off}'/'{args.on}' pairs "
              "in results", file=sys.stderr)
        return 1

    failures = []
    width = max(len(on) for _, on in pairs)
    print(f"{'benchmark (instrumented)':<{width}} {'off':>12} {'on':>12} "
          f"{'ratio':>7}")
    for off_name, on_name in pairs:
        off_ns = times[off_name]
        on_ns = times[on_name]
        ratio = on_ns / off_ns if off_ns > 0 else float("inf")
        flag = "  FAIL" if ratio > args.max_ratio else ""
        print(f"{on_name:<{width}} {off_ns:>12.0f} {on_ns:>12.0f} "
              f"{ratio:>6.2f}x{flag}")
        if ratio > args.max_ratio:
            failures.append((on_name, ratio))

    if failures:
        print(f"\nFAIL: {len(failures)} instrumented benchmark(s) exceed "
              f"{args.max_ratio:.1f}x their uninstrumented pair:",
              file=sys.stderr)
        for name, ratio in failures:
            print(f"  {name}: {ratio:.2f}x", file=sys.stderr)
        return 1
    print(f"\nOK: instrumentation overhead within {args.max_ratio:.1f}x "
          f"on {len(pairs)} pair(s)")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_check = sub.add_parser("check", help="compare results to a baseline")
    p_check.add_argument("baseline")
    p_check.add_argument("results", nargs="+")
    p_check.add_argument("--max-ratio", type=float, default=2.0,
                         help="fail when current/baseline exceeds this "
                         "(default: 2.0)")
    p_check.add_argument("--only", action="append", default=[],
                         metavar="PREFIX",
                         help="restrict the comparison to baseline "
                         "benchmarks starting with PREFIX (repeatable)")
    p_check.set_defaults(func=cmd_check)

    p_base = sub.add_parser("baseline", help="write a merged baseline file")
    p_base.add_argument("out")
    p_base.add_argument("results", nargs="+")
    p_base.set_defaults(func=cmd_baseline)

    p_over = sub.add_parser(
        "overhead", help="compare instrumented/uninstrumented pairs")
    p_over.add_argument("results", nargs="+")
    p_over.add_argument("--off", default="monitor:0",
                        help="name token of the uninstrumented variant "
                        "(default: monitor:0)")
    p_over.add_argument("--on", default="monitor:1",
                        help="name token of the instrumented variant "
                        "(default: monitor:1)")
    p_over.add_argument("--max-ratio", type=float, default=2.0,
                        help="fail when on/off exceeds this (default: 2.0)")
    p_over.set_defaults(func=cmd_overhead)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
