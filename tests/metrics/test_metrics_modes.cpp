// JobReport::metrics across every execution mode the paper names (SCSE,
// SCME, MCSE, MCME, MIME): component names land in the rank rows, the
// embedded CommStats agrees with JobReport::stats (single source of
// truth), monitoring off costs nothing and reports nothing, and a fault
// injection run shows the dead component in the liveness flags.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "src/minimpi/fault.hpp"
#include "src/minimpi/metrics.hpp"
#include "tests/mph/mph_test_util.hpp"

using namespace mph;
using namespace mph::testing;
using minimpi::Comm;
using minimpi::MetricsSnapshot;
using minimpi::RankMetrics;

namespace {

/// Monitoring on, interval 0: the registry collects and JobReport::metrics
/// is filled, but no monitor thread, files, or socket — the test mode.
minimpi::JobOptions monitored_options() {
  minimpi::JobOptions options = test_job_options();
  options.monitor.enabled = true;
  options.monitor.interval = std::chrono::milliseconds(0);
  return options;
}

std::vector<std::string> component_names(const MetricsSnapshot& snap) {
  std::vector<std::string> out;
  out.reserve(snap.ranks.size());
  for (const RankMetrics& r : snap.ranks) out.push_back(r.component);
  return out;
}

/// Shared invariants of a clean monitored job: one row per world rank,
/// every rank alive and handshaken, and the send/delivered totals agree
/// with each other and with the embedded job-wide counters.
void expect_clean_snapshot(const minimpi::JobReport& report, int world) {
  ASSERT_TRUE(report.metrics.has_value());
  const MetricsSnapshot& snap = *report.metrics;
  ASSERT_EQ(snap.ranks.size(), static_cast<std::size_t>(world));
  EXPECT_GT(snap.seq, 0u);
  std::uint64_t sends = 0;
  std::uint64_t delivered = 0;
  for (const RankMetrics& r : snap.ranks) {
    EXPECT_TRUE(r.alive) << "rank " << r.world_rank;
    EXPECT_GT(r.handshake_ns, 0u) << "rank " << r.world_rank;
    EXPECT_GT(r.collectives, 0u) << "rank " << r.world_rank;  // handshake
    sends += r.sends;
    delivered += r.delivered;
  }
  // Every deliver() counts once on the sender and once on the receiver.
  EXPECT_EQ(sends, delivered);
  // Single source of truth: the snapshot embeds Job::stats() verbatim.
  EXPECT_EQ(snap.comm.messages, report.stats.messages);
  EXPECT_EQ(snap.comm.payload_bytes, report.stats.payload_bytes);
  EXPECT_EQ(snap.comm.wildcard_recvs, report.stats.wildcard_recvs);
  EXPECT_EQ(snap.comm.messages_by_context, report.stats.messages_by_context);
  EXPECT_GT(snap.comm.messages, 0u);  // the handshake alone communicates
  EXPECT_GE(delivered, snap.comm.messages);
}

void ping_pong(Mph& h) {
  const Comm& comm = h.comp_comm();
  if (comm.size() < 2) return;
  if (comm.rank() == 0) {
    comm.send(1, 1, 5);
    int v = 0;
    comm.recv(v, 1, 6);
  } else if (comm.rank() == 1) {
    int v = 0;
    comm.recv(v, 0, 5);
    comm.send(2, 0, 6);
  }
}

}  // namespace

TEST(MetricsModes, MonitorOffReportsNothing) {
  const minimpi::JobReport report = run_mph_job(
      "BEGIN\nocean\nEND\n",
      {TestExec{{"ocean"}, "", 2, [](Mph& h, const Comm&) { ping_pong(h); }}});
  ASSERT_TRUE(report.ok) << report.abort_reason;
  EXPECT_FALSE(report.metrics.has_value());
}

TEST(MetricsModes, Scse) {
  const minimpi::JobReport report = run_mph_job(
      "BEGIN\nocean\nEND\n",
      {TestExec{{"ocean"}, "", 2, [](Mph& h, const Comm&) { ping_pong(h); }}},
      {}, monitored_options());
  ASSERT_TRUE(report.ok) << report.abort_reason;
  expect_clean_snapshot(report, 2);
  EXPECT_EQ(component_names(*report.metrics),
            (std::vector<std::string>{"ocean", "ocean"}));
  // The ping-pong receive waits land in the match-latency histogram.
  const RankMetrics& r0 = report.metrics->ranks[0];
  EXPECT_GT(r0.matches, 0u);
  EXPECT_EQ(r0.match_latency.count, r0.matches);
}

TEST(MetricsModes, TracerAndMonitorTogetherKeepSaneLatencies) {
  // Regression: the tracer and the metrics registry have different clock
  // epochs.  When both layers were active, match latency was measured
  // from the tracer's clock but stopped against the metrics clock, and
  // every sample wrapped to ~2^64 ns.
  minimpi::JobOptions options = monitored_options();
  options.trace.enabled = true;
  const minimpi::JobReport report = run_mph_job(
      "BEGIN\nocean\nEND\n",
      {TestExec{{"ocean"}, "", 2, [](Mph& h, const Comm&) { ping_pong(h); }}},
      {}, options);
  ASSERT_TRUE(report.ok) << report.abort_reason;
  ASSERT_TRUE(report.metrics.has_value());
  ASSERT_TRUE(report.trace.has_value());
  for (const RankMetrics& r : report.metrics->ranks) {
    if (r.match_latency.count == 0) continue;
    // A wrapped negative duration lands near 2^64; an hour is a generous
    // real bound for an in-process ping-pong wait.
    constexpr std::uint64_t kHourNs = 3'600'000'000'000ull;
    EXPECT_LT(r.match_latency.sum, kHourNs) << "rank " << r.world_rank;
    EXPECT_EQ(r.match_latency.buckets.back(), 0u) << "rank " << r.world_rank;
  }
}

TEST(MetricsModes, ScmeComponentRollup) {
  const minimpi::JobReport report = run_mph_job(
      "BEGIN\nc0\nc1\nc2\nEND\n",
      {TestExec{{"c0"}, "", 1, [](Mph&, const Comm&) {}},
       TestExec{{"c1"}, "", 2, [](Mph& h, const Comm&) { ping_pong(h); }},
       TestExec{{"c2"}, "", 1, [](Mph&, const Comm&) {}}},
      {}, monitored_options());
  ASSERT_TRUE(report.ok) << report.abort_reason;
  expect_clean_snapshot(report, 4);
  EXPECT_EQ(component_names(*report.metrics),
            (std::vector<std::string>{"c0", "c1", "c1", "c2"}));

  const std::vector<minimpi::ComponentMetrics> comps =
      report.metrics->by_component();
  ASSERT_EQ(comps.size(), 3u);
  EXPECT_EQ(comps[0].component, "c0");
  EXPECT_EQ(comps[1].component, "c1");
  EXPECT_EQ(comps[1].ranks, 2);
  EXPECT_EQ(comps[1].alive, 2);
  EXPECT_EQ(comps[2].component, "c2");
}

TEST(MetricsModes, Mcse) {
  const std::string registry = R"(BEGIN
Multi_Component_Begin
atmosphere 0 1
land 2 2
Multi_Component_End
END
)";
  const minimpi::JobReport report = run_mph_job(
      registry,
      {TestExec{{"atmosphere", "land"}, "", 3,
                [](Mph& h, const Comm&) { ping_pong(h); }}},
      {}, monitored_options());
  ASSERT_TRUE(report.ok) << report.abort_reason;
  expect_clean_snapshot(report, 3);
  EXPECT_EQ(component_names(*report.metrics),
            (std::vector<std::string>{"atmosphere", "atmosphere", "land"}));
}

TEST(MetricsModes, Mcme) {
  const std::string registry = R"(BEGIN
Multi_Component_Begin
atmosphere 0 1
land 2 2
Multi_Component_End
Multi_Component_Begin
ocean 0 1
ice 2 2
Multi_Component_End
coupler
END
)";
  const minimpi::JobReport report = run_mph_job(
      registry,
      {TestExec{{"atmosphere", "land"}, "", 3, [](Mph&, const Comm&) {}},
       TestExec{{"ocean", "ice"}, "", 3,
                [](Mph& h, const Comm&) { ping_pong(h); }},
       TestExec{{"coupler"}, "", 1, [](Mph&, const Comm&) {}}},
      {}, monitored_options());
  ASSERT_TRUE(report.ok) << report.abort_reason;
  expect_clean_snapshot(report, 7);
  EXPECT_EQ(component_names(*report.metrics),
            (std::vector<std::string>{"atmosphere", "atmosphere", "land",
                                      "ocean", "ocean", "ice", "coupler"}));
}

TEST(MetricsModes, MimeInstanceNames) {
  const std::string registry = R"(BEGIN
Multi_Instance_Begin
Ocean1 0 1
Ocean2 2 3
Multi_Instance_End
END
)";
  const minimpi::JobReport report = run_mph_job(
      registry,
      {TestExec{{}, "Ocean", 4, [](Mph& h, const Comm&) { ping_pong(h); }}},
      {}, monitored_options());
  ASSERT_TRUE(report.ok) << report.abort_reason;
  expect_clean_snapshot(report, 4);
  EXPECT_EQ(component_names(*report.metrics),
            (std::vector<std::string>{"Ocean1", "Ocean1", "Ocean2", "Ocean2"}));
}

TEST(MetricsModes, FaultKillShowsDeadComponentLiveness) {
  // MIME with instance isolation: kill one Ocean1 rank at a checkpoint.
  // Only Ocean1's failure domain dies; the job stays ok, and the final
  // snapshot shows exactly that component dark.
  const std::string registry = R"(BEGIN
Multi_Instance_Begin
Ocean1 0 1
Ocean2 2 3
Multi_Instance_End
END
)";
  HandshakeOptions handshake;
  handshake.isolate_instances = true;
  minimpi::JobOptions options = monitored_options();
  options.faults.kill_at_step(0, 1);

  const minimpi::JobReport report = run_mph_job(
      registry,
      {TestExec{{}, "Ocean", 4,
                [](Mph& h, const Comm&) {
                  h.comp_comm().fault_checkpoint(1);
                }}},
      handshake, options);
  ASSERT_TRUE(report.ok) << report.abort_reason;  // contained, not fatal
  ASSERT_FALSE(report.contained.empty());
  ASSERT_TRUE(report.metrics.has_value());
  const MetricsSnapshot& snap = *report.metrics;
  ASSERT_EQ(snap.ranks.size(), 4u);
  EXPECT_FALSE(snap.ranks[0].alive) << "killed rank must read dead";
  EXPECT_GE(snap.ranks[0].faults, 1u);
  EXPECT_TRUE(snap.ranks[2].alive);
  EXPECT_TRUE(snap.ranks[3].alive);

  const std::vector<minimpi::ComponentMetrics> comps = snap.by_component();
  const auto find = [&](const std::string& name) {
    return std::find_if(comps.begin(), comps.end(),
                        [&](const minimpi::ComponentMetrics& c) {
                          return c.component == name;
                        });
  };
  const auto ocean1 = find("Ocean1");
  ASSERT_NE(ocean1, comps.end());
  EXPECT_EQ(ocean1->ranks, 2);
  EXPECT_LT(ocean1->alive, 2) << "the killed member's domain must read dead";
  const auto ocean2 = find("Ocean2");
  ASSERT_NE(ocean2, comps.end());
  EXPECT_EQ(ocean2->alive, 2);
}
