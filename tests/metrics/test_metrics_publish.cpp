// The publish pipeline: JSONL and Prometheus exposition round-trip through
// src/util/json and the mph::mon parser, the monitor thread writes both
// files at its interval, a live client reads the AF_UNIX socket while the
// job runs, and the top view renders sensible rates from snapshot pairs.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/minimpi/metrics.hpp"
#include "src/mph/monitor.hpp"
#include "tests/mph/mph_test_util.hpp"

using namespace mph;
using namespace mph::testing;
using minimpi::Comm;
using minimpi::MetricsSnapshot;
using minimpi::RankMetrics;

namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "mph_mon_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

minimpi::JobOptions publishing_options(const std::string& dir,
                                       int interval_ms = 5) {
  minimpi::JobOptions options = test_job_options();
  options.monitor.enabled = true;
  options.monitor.interval = std::chrono::milliseconds(interval_ms);
  options.monitor.dir = dir;
  return options;
}

/// A busy enough workload that several monitor ticks see live counters.
void chatter(Mph& h) {
  const Comm& comm = h.comp_comm();
  if (comm.size() < 2) return;
  for (int i = 0; i < 20; ++i) {
    if (comm.rank() == 0) {
      comm.send(i, 1, 5);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    } else if (comm.rank() == 1) {
      int v = 0;
      comm.recv(v, 0, 5);
    }
  }
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

TEST(MetricsPublish, JsonlRoundTripsThroughParser) {
  const minimpi::JobReport report = run_mph_job(
      "BEGIN\nocean\nEND\n",
      {TestExec{{"ocean"}, "", 2, [](Mph& h, const Comm&) { chatter(h); }}},
      {}, publishing_options(fresh_dir("roundtrip"), 0));
  ASSERT_TRUE(report.ok) << report.abort_reason;
  ASSERT_TRUE(report.metrics.has_value());
  const MetricsSnapshot& snap = *report.metrics;

  const MetricsSnapshot back = mon::parse_snapshot(snap.to_jsonl());
  EXPECT_EQ(back.seq, snap.seq);
  EXPECT_EQ(back.t_ns, snap.t_ns);
  EXPECT_EQ(back.comm.messages, snap.comm.messages);
  EXPECT_EQ(back.comm.payload_bytes, snap.comm.payload_bytes);
  EXPECT_EQ(back.comm.wildcard_recvs, snap.comm.wildcard_recvs);
  EXPECT_EQ(back.comm.messages_by_context, snap.comm.messages_by_context);
  ASSERT_EQ(back.ranks.size(), snap.ranks.size());
  for (std::size_t i = 0; i < snap.ranks.size(); ++i) {
    const RankMetrics& a = snap.ranks[i];
    const RankMetrics& b = back.ranks[i];
    EXPECT_EQ(b.world_rank, a.world_rank);
    EXPECT_EQ(b.component, a.component);
    EXPECT_EQ(b.alive, a.alive);
    EXPECT_EQ(b.sends, a.sends);
    EXPECT_EQ(b.send_bytes, a.send_bytes);
    EXPECT_EQ(b.delivered, a.delivered);
    EXPECT_EQ(b.delivered_bytes, a.delivered_bytes);
    EXPECT_EQ(b.matches, a.matches);
    EXPECT_EQ(b.collectives, a.collectives);
    EXPECT_EQ(b.blocked_ns, a.blocked_ns);
    EXPECT_EQ(b.queue_high_water, a.queue_high_water);
    EXPECT_EQ(b.handshake_ns, a.handshake_ns);
    EXPECT_EQ(b.match_latency.count, a.match_latency.count);
    EXPECT_EQ(b.match_latency.sum, a.match_latency.sum);
    EXPECT_EQ(b.match_latency.buckets, a.match_latency.buckets);
    EXPECT_EQ(b.values, a.values);
  }
}

TEST(MetricsPublish, ParserRejectsNonMetricsDocuments) {
  EXPECT_THROW(mon::parse_snapshot("{\"traceEvents\": []}"),
               std::runtime_error);
  EXPECT_THROW(mon::parse_snapshot("not json at all"), std::runtime_error);
  EXPECT_TRUE(mon::looks_like_metrics(
      "{\"kind\": \"mph_metrics\", \"seq\": 1, \"tNs\": 2}\n"
      "{\"kind\": \"mph_metrics\", \"seq\": 2, \"tNs\": 3}\n"));
  EXPECT_FALSE(mon::looks_like_metrics("{\"traceEvents\": []}"));
  EXPECT_FALSE(mon::looks_like_metrics("garbage"));
}

TEST(MetricsPublish, MonitorWritesJsonlAndExposition) {
  const std::string dir = fresh_dir("files");
  minimpi::JobOptions options = publishing_options(dir);
  const minimpi::JobReport report = run_mph_job(
      "BEGIN\nocean\natmosphere\nEND\n",
      {TestExec{{"ocean"}, "", 2, [](Mph& h, const Comm&) { chatter(h); }},
       TestExec{{"atmosphere"}, "", 1, [](Mph&, const Comm&) {}}},
      {}, options);
  ASSERT_TRUE(report.ok) << report.abort_reason;
  ASSERT_TRUE(report.metrics.has_value());

  // JSONL: at least the final stop() publish, every line parseable, and the
  // last line's counters equal the (exact) JobReport snapshot — the job was
  // quiescent for both.
  const std::string jsonl = options.monitor.jsonl_path();
  ASSERT_TRUE(std::filesystem::exists(jsonl));
  std::ifstream in(jsonl);
  std::string line;
  std::size_t lines = 0;
  std::optional<MetricsSnapshot> last;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    last = mon::parse_snapshot(line);
  }
  ASSERT_GE(lines, 1u);
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->comm.messages, report.metrics->comm.messages);
  ASSERT_EQ(last->ranks.size(), report.metrics->ranks.size());
  EXPECT_EQ(last->ranks[0].sends, report.metrics->ranks[0].sends);
  EXPECT_EQ(last->ranks[0].component, "ocean");

  // The helper the CLI uses finds that same last line.
  const std::optional<std::string> tail = mon::last_jsonl_line(jsonl);
  ASSERT_TRUE(tail.has_value());
  EXPECT_EQ(mon::parse_snapshot(*tail).seq, last->seq);

  // Prometheus exposition: job-wide counters plus labelled per-rank series.
  const std::string prom = slurp(options.monitor.exposition_path());
  EXPECT_NE(prom.find("mph_messages_total"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE mph_sends_total counter"), std::string::npos);
  EXPECT_NE(prom.find("component=\"ocean\""), std::string::npos);
  EXPECT_NE(prom.find("mph_match_latency_ns_bucket"), std::string::npos);
  EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(prom.find("mph_alive"), std::string::npos);
}

TEST(MetricsPublish, SocketServesLiveSnapshots) {
  const std::string dir = fresh_dir("socket");
  minimpi::JobOptions options = publishing_options(dir);
  const std::string socket_path = options.monitor.socket_path();

  std::mutex mutex;
  std::optional<MetricsSnapshot> live;
  const minimpi::JobReport report = run_mph_job(
      "BEGIN\nocean\nEND\n",
      {TestExec{{"ocean"}, "", 2,
                [&](Mph& h, const Comm&) {
                  chatter(h);
                  if (h.local_proc_id() != 0) return;
                  // Poll the monitor's socket from inside the running job —
                  // exactly what an operator's `mph_inspect top` does.
                  for (int attempt = 0; attempt < 400; ++attempt) {
                    if (const auto line = mon::read_socket_line(socket_path)) {
                      const std::lock_guard<std::mutex> lock(mutex);
                      live = mon::parse_snapshot(*line);
                      return;
                    }
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(5));
                  }
                }}},
      {}, options);
  ASSERT_TRUE(report.ok) << report.abort_reason;
#if defined(__unix__) || defined(__APPLE__)
  const std::lock_guard<std::mutex> lock(mutex);
  ASSERT_TRUE(live.has_value()) << "no snapshot served over " << socket_path;
  EXPECT_GE(live->seq, 1u);
  EXPECT_EQ(live->ranks.size(), 2u);
  // The socket dies with the job.
  EXPECT_FALSE(std::filesystem::exists(socket_path));
#endif
}

TEST(MetricsPublish, TopViewComputesRatesBetweenSnapshots) {
  MetricsSnapshot prev;
  prev.seq = 1;
  prev.t_ns = 1'000'000'000;
  MetricsSnapshot cur;
  cur.seq = 2;
  cur.t_ns = 3'000'000'000;  // 2 s later
  cur.comm.messages = 600;
  for (int r = 0; r < 2; ++r) {
    RankMetrics p;
    p.world_rank = r;
    p.component = "ocean";
    p.delivered = 100;
    p.delivered_bytes = 1000;
    p.blocked_ns = 0;
    prev.ranks.push_back(p);

    RankMetrics c = p;
    c.delivered = 300;                  // +200 per rank over 2 s
    c.delivered_bytes = 5000;           // +4000 per rank over 2 s
    c.blocked_ns = 1'000'000'000;       // each rank blocked half the window
    c.queue_depth = 3;
    cur.ranks.push_back(c);
  }

  const mon::TopView view = mon::build_top_view(&prev, cur);
  EXPECT_EQ(view.seq, 2u);
  EXPECT_EQ(view.ranks, 2);
  EXPECT_EQ(view.alive, 2);
  ASSERT_EQ(view.rows.size(), 1u);
  const mon::TopRow& row = view.rows[0];
  EXPECT_EQ(row.component, "ocean");
  EXPECT_EQ(row.ranks, 2);
  EXPECT_NEAR(row.msgs_per_s, 200.0, 1e-6);    // 400 msgs over 2 s
  EXPECT_NEAR(row.bytes_per_s, 4000.0, 1e-6);  // 8000 bytes over 2 s
  EXPECT_NEAR(row.blocked_pct, 50.0, 1e-6);
  EXPECT_EQ(row.queue_depth, 6u);

  const std::string rendered = mon::render_top(view);
  EXPECT_NE(rendered.find("COMPONENT"), std::string::npos);
  EXPECT_NE(rendered.find("ocean"), std::string::npos);
  EXPECT_NE(rendered.find("BLOCKED%"), std::string::npos);
  EXPECT_NE(rendered.find("50.0"), std::string::npos);

  // Without a previous snapshot the rates stay zero instead of exploding.
  const mon::TopView first = mon::build_top_view(nullptr, cur);
  EXPECT_EQ(first.rows[0].msgs_per_s, 0.0);
  EXPECT_EQ(first.rows[0].blocked_pct, 0.0);
}
