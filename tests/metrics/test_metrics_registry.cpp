// MetricsRegistry units: histogram bucket edges, option parsing, counter
// and gauge aggregation, probes, and — the reason the hot path is all
// relaxed atomics — writer/writer and writer/reader contention that tsan
// must pass cleanly.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/minimpi/metrics.hpp"

using minimpi::kMetricsHistogramBuckets;
using minimpi::MetricsRegistry;
using minimpi::metrics_histogram_bucket;
using minimpi::metrics_histogram_upper;
using minimpi::MonitorOptions;
using minimpi::RankMetrics;

// --- histogram bucket edges -------------------------------------------------

TEST(MetricsHistogram, BucketIsBitWidth) {
  EXPECT_EQ(metrics_histogram_bucket(0), 0u);
  EXPECT_EQ(metrics_histogram_bucket(1), 1u);
  EXPECT_EQ(metrics_histogram_bucket(2), 2u);
  EXPECT_EQ(metrics_histogram_bucket(3), 2u);
  EXPECT_EQ(metrics_histogram_bucket(4), 3u);
  EXPECT_EQ(metrics_histogram_bucket(7), 3u);
  EXPECT_EQ(metrics_histogram_bucket(8), 4u);
  EXPECT_EQ(metrics_histogram_bucket(1023), 10u);
  EXPECT_EQ(metrics_histogram_bucket(1024), 11u);
}

TEST(MetricsHistogram, LastBucketAbsorbsEverythingLarger) {
  const std::uint64_t huge = std::uint64_t{1} << 50;
  EXPECT_EQ(metrics_histogram_bucket(huge), kMetricsHistogramBuckets - 1);
  EXPECT_EQ(metrics_histogram_bucket(~std::uint64_t{0}),
            kMetricsHistogramBuckets - 1);
}

TEST(MetricsHistogram, UpperBoundsMatchBucketEdges) {
  EXPECT_EQ(metrics_histogram_upper(0), 0u);
  EXPECT_EQ(metrics_histogram_upper(1), 1u);
  EXPECT_EQ(metrics_histogram_upper(2), 3u);
  EXPECT_EQ(metrics_histogram_upper(3), 7u);
  // Every value sits at or below its own bucket's bound and above the
  // previous bucket's — the invariant the exact edges encode.
  for (const std::uint64_t v : {std::uint64_t{0}, std::uint64_t{1},
                                std::uint64_t{2}, std::uint64_t{3},
                                std::uint64_t{4}, std::uint64_t{100},
                                std::uint64_t{65536}, std::uint64_t{1} << 38}) {
    const std::size_t b = metrics_histogram_bucket(v);
    EXPECT_LE(v, metrics_histogram_upper(b)) << v;
    if (b > 0) EXPECT_GT(v, metrics_histogram_upper(b - 1)) << v;
  }
}

// --- MonitorOptions parsing -------------------------------------------------

TEST(MonitorOptions, ParseEnables) {
  EXPECT_FALSE(MonitorOptions{}.enabled);
  EXPECT_TRUE(MonitorOptions::parse("1").enabled);
  EXPECT_TRUE(MonitorOptions::parse("on").enabled);
  EXPECT_TRUE(MonitorOptions::parse("true").enabled);
  EXPECT_FALSE(MonitorOptions::parse("0").enabled);
  EXPECT_FALSE(MonitorOptions::parse("").enabled);
}

TEST(MonitorOptions, ParseTokens) {
  const MonitorOptions opts =
      MonitorOptions::parse("interval=250,dir=/tmp/monx,nosocket");
  EXPECT_TRUE(opts.enabled);  // any configuring token implies enable
  EXPECT_EQ(opts.interval.count(), 250);
  EXPECT_EQ(opts.dir, "/tmp/monx");
  EXPECT_FALSE(opts.socket);
  EXPECT_EQ(opts.jsonl_path(), "/tmp/monx/mph_metrics.jsonl");
  EXPECT_EQ(opts.exposition_path(), "/tmp/monx/mph_metrics.prom");
  EXPECT_EQ(opts.socket_path(), "/tmp/monx/mph_monitor.sock");
}

TEST(MonitorOptions, UnknownTokensIgnored) {
  const MonitorOptions opts = MonitorOptions::parse("on,bogus=7,whatever");
  EXPECT_TRUE(opts.enabled);
  EXPECT_EQ(opts.interval.count(), MonitorOptions{}.interval.count());
}

// --- registry aggregation ---------------------------------------------------

TEST(MetricsRegistry, CountersAndGaugesAggregate) {
  MetricsRegistry reg(2);
  reg.on_send(0, 100);
  reg.on_send(0, 50);
  reg.on_delivered(1, 150);
  reg.on_match(1, 5);
  reg.on_collective(0);
  reg.on_fault(1);
  reg.add_blocked_ns(1, 1000);
  reg.set_queue_depth(1, 3);
  reg.set_queue_depth(1, 1);
  reg.set_handshake_ns(0, 42);

  const RankMetrics r0 = reg.read_rank(0);
  EXPECT_EQ(r0.world_rank, 0);
  EXPECT_EQ(r0.sends, 2u);
  EXPECT_EQ(r0.send_bytes, 150u);
  EXPECT_EQ(r0.collectives, 1u);
  EXPECT_EQ(r0.handshake_ns, 42u);
  EXPECT_EQ(r0.delivered, 0u);

  const RankMetrics r1 = reg.read_rank(1);
  EXPECT_EQ(r1.delivered, 1u);
  EXPECT_EQ(r1.delivered_bytes, 150u);
  EXPECT_EQ(r1.matches, 1u);
  EXPECT_EQ(r1.faults, 1u);
  EXPECT_EQ(r1.blocked_ns, 1000u);
  EXPECT_EQ(r1.queue_depth, 1u);         // gauge: last value
  EXPECT_EQ(r1.queue_high_water, 3u);    // high water: max ever
  EXPECT_EQ(r1.match_latency.count, 1u);
  EXPECT_EQ(r1.match_latency.sum, 5u);
  EXPECT_EQ(r1.match_latency.buckets[metrics_histogram_bucket(5)], 1u);
}

TEST(MetricsRegistry, OutOfRangeRanksAreIgnored) {
  MetricsRegistry reg(1);
  reg.on_send(-1, 10);
  reg.on_send(7, 10);
  reg.set_component(9, "ghost");
  EXPECT_EQ(reg.read_rank(0).sends, 0u);
}

TEST(MetricsRegistry, ComponentNamesAndProbes) {
  MetricsRegistry reg(2);
  reg.set_component(1, "ocean");
  EXPECT_EQ(reg.component(1), "ocean");
  EXPECT_EQ(reg.component(0), "");

  auto counter = std::make_shared<std::atomic<std::uint64_t>>(7);
  reg.add_probe(1, "output_lines(logs/ocean.log)",
                [counter] { return counter->load(); });
  RankMetrics r1 = reg.read_rank(1);
  ASSERT_EQ(r1.values.size(), 1u);
  EXPECT_EQ(r1.values[0].first, "output_lines(logs/ocean.log)");
  EXPECT_EQ(r1.values[0].second, 7u);

  counter->store(9);  // probes sample live state at every read
  r1 = reg.read_rank(1);
  EXPECT_EQ(r1.values[0].second, 9u);
}

// --- contention (the tsan test) ---------------------------------------------

TEST(MetricsRegistry, ConcurrentWritersAndReaderAreRaceFree) {
  constexpr int kWriters = 4;
  constexpr int kOps = 20000;
  MetricsRegistry reg(kWriters);
  std::atomic<bool> stop{false};

  // A reader thread aggregating while writers hammer — the monitor thread's
  // exact access pattern.  tsan validates there is no data race; the final
  // post-join read validates no update was lost.
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (int r = 0; r < kWriters; ++r) (void)reg.read_rank(r);
    }
  });
  std::vector<std::thread> writers;
  for (int r = 0; r < kWriters; ++r) {
    writers.emplace_back([&reg, r] {
      for (int i = 0; i < kOps; ++i) {
        reg.on_send(r, 8);
        reg.on_delivered(r, 8);
        reg.on_match(r, static_cast<std::uint64_t>(i));
        reg.add_blocked_ns(r, 2);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  for (int r = 0; r < kWriters; ++r) {
    const RankMetrics m = reg.read_rank(r);
    EXPECT_EQ(m.sends, static_cast<std::uint64_t>(kOps));
    EXPECT_EQ(m.delivered, static_cast<std::uint64_t>(kOps));
    EXPECT_EQ(m.match_latency.count, static_cast<std::uint64_t>(kOps));
    EXPECT_EQ(m.blocked_ns, static_cast<std::uint64_t>(2 * kOps));
    std::uint64_t bucket_total = 0;
    for (const std::uint64_t b : m.match_latency.buckets) bucket_total += b;
    EXPECT_EQ(bucket_total, m.match_latency.count);
  }
}
