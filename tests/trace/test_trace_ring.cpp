// TraceRing / TraceOptions unit tests: recording semantics, drop-oldest
// overflow accounting, option parsing, and multi-producer contention (the
// latter is the mph_trace tsan gate — the ring must stay data-race free
// with writers racing a concurrent snapshot).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/minimpi/trace.hpp"

using namespace minimpi;

namespace {

TraceEvent make_event(std::uint64_t seq) {
  TraceEvent event;
  event.t_start_ns = seq;
  event.t_end_ns = seq + 1;
  event.op = TraceOp::send;
  event.span = true;
  event.name = "unit";
  event.peer = static_cast<rank_t>(seq % 7);
  event.tag = static_cast<tag_t>(seq % 11);
  event.bytes = seq * 3;
  return event;
}

}  // namespace

TEST(TraceRing, RecordAndSnapshotRoundTrip) {
  TraceRing ring(8);
  for (std::uint64_t i = 0; i < 3; ++i) ring.record(make_event(i));

  const TraceRing::Snapshot snap = ring.snapshot();
  EXPECT_EQ(snap.dropped, 0u);
  ASSERT_EQ(snap.events.size(), 3u);
  EXPECT_EQ(ring.recorded(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) {
    const TraceEvent& e = snap.events[i];
    EXPECT_EQ(e.t_start_ns, i);
    EXPECT_EQ(e.t_end_ns, i + 1);
    EXPECT_EQ(e.op, TraceOp::send);
    EXPECT_TRUE(e.span);
    EXPECT_STREQ(e.name, "unit");
    EXPECT_EQ(e.peer, static_cast<rank_t>(i % 7));
    EXPECT_EQ(e.tag, static_cast<tag_t>(i % 11));
    EXPECT_EQ(e.bytes, i * 3);
  }
}

TEST(TraceRing, OverflowDropsOldestAndCountsThem) {
  constexpr std::size_t kCapacity = 4;
  constexpr std::uint64_t kTotal = 10;
  TraceRing ring(kCapacity);
  for (std::uint64_t i = 0; i < kTotal; ++i) ring.record(make_event(i));

  const TraceRing::Snapshot snap = ring.snapshot();
  EXPECT_EQ(ring.recorded(), kTotal);
  EXPECT_EQ(snap.dropped, kTotal - kCapacity);
  ASSERT_EQ(snap.events.size(), kCapacity);
  // The survivors are exactly the newest kCapacity events, in order.
  for (std::size_t i = 0; i < kCapacity; ++i) {
    EXPECT_EQ(snap.events[i].t_start_ns, kTotal - kCapacity + i);
  }
}

TEST(TraceRing, InstantEventsKeepKind) {
  TraceRing ring(4);
  TraceEvent event;
  event.op = TraceOp::fault;
  event.span = false;
  event.name = "drop";
  ring.record(event);
  const TraceRing::Snapshot snap = ring.snapshot();
  ASSERT_EQ(snap.events.size(), 1u);
  EXPECT_EQ(snap.events[0].op, TraceOp::fault);
  EXPECT_FALSE(snap.events[0].span);
}

// The tsan contention gate: several producer threads hammer one ring while
// a reader snapshots concurrently.  Correctness claims are deliberately
// loose (drop-oldest means only totals are stable); the point is that
// neither tsan nor the double-stamp torn-read check ever trips.
TEST(TraceRing, ConcurrentProducersAndSnapshots) {
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 20000;
  TraceRing ring(64);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn_names{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const TraceRing::Snapshot snap = ring.snapshot();
      for (const TraceEvent& e : snap.events) {
        // Every published event must be internally consistent: the name is
        // one of the producers' literals and the kind bit survived.
        if (std::string_view(e.name) != "unit") {
          torn_names.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });

  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&ring, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        ring.record(make_event(static_cast<std::uint64_t>(t) * kPerThread + i));
      }
    });
  }
  for (std::thread& p : producers) p.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(torn_names.load(), 0u);
  EXPECT_EQ(ring.recorded(), kThreads * kPerThread);
  const TraceRing::Snapshot final_snap = ring.snapshot();
  // Quiescent ring: every slot is published, so the snapshot is full and
  // the drop count is exact.
  EXPECT_EQ(final_snap.events.size(), ring.capacity());
  EXPECT_EQ(final_snap.dropped, kThreads * kPerThread - ring.capacity());
}

TEST(TraceOptions, ParseTokens) {
  EXPECT_FALSE(TraceOptions::parse("").enabled);
  EXPECT_FALSE(TraceOptions::parse("off").enabled);
  EXPECT_TRUE(TraceOptions::parse("1").enabled);
  EXPECT_TRUE(TraceOptions::parse("on").enabled);
  EXPECT_TRUE(TraceOptions::parse("all").enabled);
  EXPECT_TRUE(TraceOptions::parse("true").enabled);

  const TraceOptions with_capacity = TraceOptions::parse("capacity=512");
  EXPECT_TRUE(with_capacity.enabled);
  EXPECT_EQ(with_capacity.ring_capacity, 512u);

  const TraceOptions combined = TraceOptions::parse("on,capacity=1024");
  EXPECT_TRUE(combined.enabled);
  EXPECT_EQ(combined.ring_capacity, 1024u);

  // Bad capacity values leave the default untouched.
  const TraceOptions bad = TraceOptions::parse("capacity=bogus");
  EXPECT_FALSE(bad.enabled);
  EXPECT_EQ(bad.ring_capacity, TraceOptions{}.ring_capacity);
}

TEST(TraceOptions, MergedWithEnvIsUnion) {
  // No env var set in the test harness: merge is the identity.
  TraceOptions programmatic;
  programmatic.enabled = true;
  programmatic.ring_capacity = 4096;
  const TraceOptions merged = programmatic.merged_with_env();
  EXPECT_TRUE(merged.enabled);
  EXPECT_GE(merged.ring_capacity, 4096u);
}
