// mph_trace through every execution mode the paper names (SCSE, SCME,
// MCSE, MCME, MIME): tracks are tagged component[instance]:local_rank,
// handshake phase spans nest their stages, p2p events land on the right
// rank's ring, overflow is accounted, and tracing off leaves JobReport
// untouched.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/minimpi/trace.hpp"
#include "tests/mph/mph_test_util.hpp"

using namespace mph;
using namespace mph::testing;
using minimpi::Comm;
using minimpi::TraceEvent;
using minimpi::TraceOp;
using minimpi::TraceReport;

namespace {

minimpi::JobOptions traced_options(std::size_t capacity = 8192) {
  minimpi::JobOptions options = test_job_options();
  options.trace.enabled = true;
  options.trace.ring_capacity = capacity;
  return options;
}

const minimpi::RankTrace& rank_trace(const TraceReport& trace,
                                     minimpi::rank_t world_rank) {
  for (const minimpi::RankTrace& r : trace.ranks) {
    if (r.world_rank == world_rank) return r;
  }
  ADD_FAILURE() << "no trace for world rank " << world_rank;
  static const minimpi::RankTrace empty;
  return empty;
}

std::vector<TraceEvent> events_named(const minimpi::RankTrace& rank,
                                     const std::string& name) {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : rank.events) {
    if (name == e.name) out.push_back(e);
  }
  return out;
}

/// Every rank must carry exactly one "handshake" phase span.
void expect_handshake_span(const TraceReport& trace) {
  for (const minimpi::RankTrace& r : trace.ranks) {
    const std::vector<TraceEvent> spans = events_named(r, "handshake");
    ASSERT_EQ(spans.size(), 1u) << "rank " << r.world_rank;
    EXPECT_EQ(spans[0].op, TraceOp::phase);
    EXPECT_TRUE(spans[0].span);
    EXPECT_LE(spans[0].t_start_ns, spans[0].t_end_ns);
  }
}

std::vector<std::string> track_names(const TraceReport& trace) {
  std::vector<std::string> out;
  out.reserve(trace.ranks.size());
  for (const minimpi::RankTrace& r : trace.ranks) out.push_back(r.track);
  return out;
}

}  // namespace

TEST(TraceModes, TraceOffLeavesReportEmpty) {
  const minimpi::JobReport report = run_mph_job(
      "BEGIN\nocean\nEND\n",
      {TestExec{{"ocean"}, "", 2, [](Mph&, const Comm&) {}}});
  ASSERT_TRUE(report.ok) << report.abort_reason;
  EXPECT_FALSE(report.trace.has_value());
}

TEST(TraceModes, ScseTracksAndP2pEvents) {
  const minimpi::JobReport report = run_mph_job(
      "BEGIN\nocean\nEND\n",
      {TestExec{{"ocean"}, "", 2,
                [](Mph& h, const Comm&) {
                  const Comm& comm = h.comp_comm();
                  if (comm.rank() == 0) {
                    comm.send(42, 1, 7);
                  } else {
                    int v = 0;
                    comm.recv(v, 0, 7);
                  }
                }}},
      {}, traced_options());
  ASSERT_TRUE(report.ok) << report.abort_reason;
  ASSERT_TRUE(report.trace.has_value());
  const TraceReport& trace = *report.trace;

  ASSERT_EQ(trace.ranks.size(), 2u);
  EXPECT_EQ(trace.ranks[0].track, "ocean:0");
  EXPECT_EQ(trace.ranks[1].track, "ocean:1");
  expect_handshake_span(trace);

  // The send is an instant on rank 0's ring; the matched receive is a span
  // on rank 1's ring.  Handshake collectives produce p2p events too, so
  // select ours by tag; bytes are wire bytes (payload plus type framing).
  const std::vector<TraceEvent> sends =
      events_named(rank_trace(trace, 0), "send");
  const auto sent = std::find_if(
      sends.begin(), sends.end(), [](const TraceEvent& e) {
        return e.tag == 7 && e.op == TraceOp::send;
      });
  ASSERT_NE(sent, sends.end());
  EXPECT_EQ(sent->op, TraceOp::send);
  EXPECT_EQ(sent->peer, 1);
  EXPECT_GE(sent->bytes, sizeof(int));

  const std::vector<TraceEvent> recvs =
      events_named(rank_trace(trace, 1), "recv");
  // A blocked interval is *also* named "recv" (bytes 0); select the
  // completed receive by its op.
  const auto received = std::find_if(
      recvs.begin(), recvs.end(), [](const TraceEvent& e) {
        return e.tag == 7 && e.op == TraceOp::recv && e.span;
      });
  ASSERT_NE(received, recvs.end());
  EXPECT_EQ(received->peer, 0);
  EXPECT_GE(received->bytes, sizeof(int));
}

TEST(TraceModes, ScmeEveryExecutableTagged) {
  const minimpi::JobReport report = run_mph_job(
      "BEGIN\nc0\nc1\nc2\nEND\n",
      {TestExec{{"c0"}, "", 1, [](Mph&, const Comm&) {}},
       TestExec{{"c1"}, "", 2, [](Mph&, const Comm&) {}},
       TestExec{{"c2"}, "", 1, [](Mph&, const Comm&) {}}},
      {}, traced_options());
  ASSERT_TRUE(report.ok) << report.abort_reason;
  ASSERT_TRUE(report.trace.has_value());
  const std::vector<std::string> tracks = track_names(*report.trace);
  const std::vector<std::string> expected{"c0:0", "c1:0", "c1:1", "c2:0"};
  EXPECT_EQ(tracks, expected);
  expect_handshake_span(*report.trace);
}

TEST(TraceModes, McseComponentsOfOneExecutable) {
  const std::string registry = R"(BEGIN
Multi_Component_Begin
atmosphere 0 1
land 2 2
Multi_Component_End
END
)";
  const minimpi::JobReport report = run_mph_job(
      registry,
      {TestExec{{"atmosphere", "land"}, "", 3, [](Mph&, const Comm&) {}}}, {},
      traced_options());
  ASSERT_TRUE(report.ok) << report.abort_reason;
  ASSERT_TRUE(report.trace.has_value());
  const std::vector<std::string> tracks = track_names(*report.trace);
  const std::vector<std::string> expected{"atmosphere:0", "atmosphere:1",
                                          "land:0"};
  EXPECT_EQ(tracks, expected);
  expect_handshake_span(*report.trace);
}

TEST(TraceModes, McmeTracksAcrossExecutables) {
  const std::string registry = R"(BEGIN
Multi_Component_Begin
atmosphere 0 1
land 2 2
Multi_Component_End
Multi_Component_Begin
ocean 0 1
ice 2 2
Multi_Component_End
coupler
END
)";
  const minimpi::JobReport report = run_mph_job(
      registry,
      {TestExec{{"atmosphere", "land"}, "", 3, [](Mph&, const Comm&) {}},
       TestExec{{"ocean", "ice"}, "", 3, [](Mph&, const Comm&) {}},
       TestExec{{"coupler"}, "", 1, [](Mph&, const Comm&) {}}},
      {}, traced_options());
  ASSERT_TRUE(report.ok) << report.abort_reason;
  ASSERT_TRUE(report.trace.has_value());
  const std::vector<std::string> tracks = track_names(*report.trace);
  const std::vector<std::string> expected{"atmosphere:0", "atmosphere:1",
                                          "land:0",       "ocean:0",
                                          "ocean:1",      "ice:0",
                                          "coupler:0"};
  EXPECT_EQ(tracks, expected);
  expect_handshake_span(*report.trace);
}

TEST(TraceModes, MimeInstancesTaggedWithExpandedNames) {
  const std::string registry = R"(BEGIN
Multi_Instance_Begin
Ocean1 0 1
Ocean2 2 3
Multi_Instance_End
END
)";
  const minimpi::JobReport report = run_mph_job(
      registry, {TestExec{{}, "Ocean", 4, [](Mph&, const Comm&) {}}}, {},
      traced_options());
  ASSERT_TRUE(report.ok) << report.abort_reason;
  ASSERT_TRUE(report.trace.has_value());
  const std::vector<std::string> tracks = track_names(*report.trace);
  const std::vector<std::string> expected{"Ocean1:0", "Ocean1:1", "Ocean2:0",
                                          "Ocean2:1"};
  EXPECT_EQ(tracks, expected);
  expect_handshake_span(*report.trace);
}

TEST(TraceModes, HandshakeStagesNestInsidePhaseSpan) {
  const minimpi::JobReport report = run_mph_job(
      "BEGIN\nocean\nEND\n",
      {TestExec{{"ocean"}, "", 2, [](Mph&, const Comm&) {}}}, {},
      traced_options());
  ASSERT_TRUE(report.ok) << report.abort_reason;
  ASSERT_TRUE(report.trace.has_value());

  for (const minimpi::RankTrace& r : report.trace->ranks) {
    const std::vector<TraceEvent> outer = events_named(r, "handshake");
    ASSERT_EQ(outer.size(), 1u);
    for (const char* stage :
         {"signature_allgather", "layout_resolve", "comm_setup"}) {
      const std::vector<TraceEvent> inner = events_named(r, stage);
      ASSERT_EQ(inner.size(), 1u) << "rank " << r.world_rank << " " << stage;
      EXPECT_TRUE(inner[0].span);
      EXPECT_GE(inner[0].t_start_ns, outer[0].t_start_ns) << stage;
      EXPECT_LE(inner[0].t_end_ns, outer[0].t_end_ns) << stage;
    }
  }
}

TEST(TraceModes, RingOverflowIsAccounted) {
  constexpr std::size_t kCapacity = 16;
  constexpr int kMessages = 200;
  const minimpi::JobReport report = run_mph_job(
      "BEGIN\nocean\nEND\n",
      {TestExec{{"ocean"}, "", 2,
                [](Mph& h, const Comm&) {
                  const Comm& comm = h.comp_comm();
                  for (int i = 0; i < kMessages; ++i) {
                    if (comm.rank() == 0) {
                      comm.send(i, 1, 0);
                    } else {
                      int v = 0;
                      comm.recv(v, 0, 0);
                    }
                  }
                }}},
      {}, traced_options(kCapacity));
  ASSERT_TRUE(report.ok) << report.abort_reason;
  ASSERT_TRUE(report.trace.has_value());

  for (const minimpi::RankTrace& r : report.trace->ranks) {
    // Each side records well over kCapacity events; the ring keeps the
    // newest kCapacity and reports the difference as dropped.
    EXPECT_EQ(r.events.size(), kCapacity) << "rank " << r.world_rank;
    EXPECT_GT(r.dropped, 0u) << "rank " << r.world_rank;
  }
}
