// TraceReport metrics and export: the component-pair traffic matrix,
// per-context message counts + wildcard receives (also surfaced through
// CommStats), the blocked-time breakdown, per-channel output-line
// counters, queue-depth high water, and the Chrome trace-event JSON that
// Perfetto and `mph_inspect trace` consume.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/minimpi/collectives.hpp"
#include "src/minimpi/trace.hpp"
#include "src/util/json.hpp"
#include "tests/mph/mph_test_util.hpp"

using namespace mph;
using namespace mph::testing;
using minimpi::Comm;
using minimpi::TraceReport;

namespace {

minimpi::JobOptions traced_options() {
  minimpi::JobOptions options = test_job_options();
  options.trace.enabled = true;
  return options;
}

// ocean on world ranks 0-1, atmosphere on world rank 2 (SCME).
const std::string kRegistry = "BEGIN\nocean\natmosphere\nEND\n";

}  // namespace

TEST(TraceReport, ComponentTrafficMatrix) {
  const minimpi::JobReport report = run_mph_job(
      kRegistry,
      {TestExec{{"ocean"}, "", 2,
                [](Mph& h, const Comm&) {
                  if (h.local_proc_id() == 0) {
                    // Two messages ocean -> atmosphere over the world comm.
                    const std::vector<double> payload(16, 1.0);
                    h.world().send(std::span<const double>(payload), 2, 3);
                    h.world().send(std::span<const double>(payload), 2, 3);
                  }
                }},
       TestExec{{"atmosphere"}, "", 1,
                [](Mph& h, const Comm&) {
                  std::vector<double> payload(16);
                  h.world().recv(std::span<double>(payload), 0, 3);
                  h.world().recv(std::span<double>(payload), 0, 3);
                }}},
      {}, traced_options());
  ASSERT_TRUE(report.ok) << report.abort_reason;
  ASSERT_TRUE(report.trace.has_value());

  // The matrix covers *all* traffic — the handshake's own collectives and
  // the registry broadcast included — so assert lower bounds: our two data
  // messages dominate the byte count.
  const std::vector<TraceReport::Traffic> traffic =
      report.trace->component_traffic();
  const auto ocean_to_atm = std::find_if(
      traffic.begin(), traffic.end(), [](const TraceReport::Traffic& t) {
        return t.src == "ocean" && t.dest == "atmosphere";
      });
  ASSERT_NE(ocean_to_atm, traffic.end());
  EXPECT_GE(ocean_to_atm->messages, 2u);
  EXPECT_GE(ocean_to_atm->bytes, 2 * 16 * sizeof(double));
}

TEST(TraceReport, WildcardAndContextCountsInStatsAndTrace) {
  const minimpi::JobReport report = run_mph_job(
      kRegistry,
      {TestExec{{"ocean"}, "", 2,
                [](Mph& h, const Comm&) {
                  // One message inside the component communicator (its own
                  // context) received with a wildcard source.
                  const Comm& comm = h.comp_comm();
                  if (comm.rank() == 0) {
                    comm.send(1, 1, 0);
                  } else {
                    int v = 0;
                    comm.recv(v, minimpi::any_source, 0);
                  }
                }},
       TestExec{{"atmosphere"}, "", 1, [](Mph&, const Comm&) {}}},
      {}, traced_options());
  ASSERT_TRUE(report.ok) << report.abort_reason;

  // CommStats carries the counts whether or not tracing is on.
  EXPECT_GE(report.stats.wildcard_recvs, 1u);
  ASSERT_FALSE(report.stats.messages_by_context.empty());
  bool saw_non_world_context = false;
  std::uint64_t total = 0;
  for (const auto& [context, messages] : report.stats.messages_by_context) {
    total += messages;
    if (context != minimpi::kWorldContext) saw_non_world_context = true;
  }
  EXPECT_TRUE(saw_non_world_context)
      << "component-comm delivery should count under its own context";
  EXPECT_GE(total, 1u);

  // The trace report embeds the same CommStats (single source of truth).
  ASSERT_TRUE(report.trace.has_value());
  EXPECT_EQ(report.trace->comm.wildcard_recvs, report.stats.wildcard_recvs);
  EXPECT_EQ(report.trace->comm.messages_by_context,
            report.stats.messages_by_context);
}

TEST(TraceReport, BlockedBreakdownSeparatesRecvAndCollectiveWait) {
  const minimpi::JobReport report = run_mph_job(
      kRegistry,
      {TestExec{{"ocean"}, "", 2,
                [](Mph& h, const Comm&) {
                  const Comm& comm = h.comp_comm();
                  if (comm.rank() == 0) {
                    // Keep the receiver blocked long enough to measure.
                    std::this_thread::sleep_for(std::chrono::milliseconds(50));
                    comm.send(1, 1, 0);
                    minimpi::barrier(comm);
                  } else {
                    int v = 0;
                    comm.recv(v, 0, 0);
                    std::this_thread::sleep_for(std::chrono::milliseconds(50));
                    minimpi::barrier(comm);
                  }
                }},
       TestExec{{"atmosphere"}, "", 1, [](Mph&, const Comm&) {}}},
      {}, traced_options());
  ASSERT_TRUE(report.ok) << report.abort_reason;
  ASSERT_TRUE(report.trace.has_value());

  const std::vector<TraceReport::RankBlocked> blocked =
      report.trace->blocked_breakdown();
  ASSERT_EQ(blocked.size(), 3u);
  // World rank 1 (ocean:1) blocked >= ~50ms waiting for the receive; world
  // rank 0 (ocean:0) blocked >= ~50ms in the barrier.
  EXPECT_GE(blocked[1].recv_wait_ns, 20'000'000u) << blocked[1].track;
  EXPECT_GE(blocked[0].collective_wait_ns, 20'000'000u) << blocked[0].track;
}

TEST(TraceReport, OutputLineCountersAndQueueHighWater) {
  const std::string dir = ::testing::TempDir() + "mph_trace_report_logs";
  const minimpi::JobReport report = run_mph_job(
      kRegistry,
      {TestExec{{"ocean"}, "", 2,
                [&dir](Mph& h, const Comm&) {
                  const Comm& comm = h.comp_comm();
                  h.redirect_output(dir);
                  h.out() << "line one from " << h.comp_name() << "\n";
                  h.out() << "line two\n";
                  if (comm.rank() == 0) {
                    // Queue three messages before the receiver wakes up, so
                    // its mailbox depth peaks at >= 3.
                    for (int i = 0; i < 3; ++i) comm.send(i, 1, 0);
                  } else {
                    std::this_thread::sleep_for(std::chrono::milliseconds(30));
                    for (int i = 0; i < 3; ++i) {
                      int v = 0;
                      comm.recv(v, 0, 0);
                    }
                  }
                  h.finalize();
                }},
       TestExec{{"atmosphere"}, "", 1, [](Mph&, const Comm&) {}}},
      {}, traced_options());
  ASSERT_TRUE(report.ok) << report.abort_reason;
  ASSERT_TRUE(report.trace.has_value());

  const minimpi::RankTrace& root = report.trace->ranks[0];
  bool found_counter = false;
  for (const auto& [name, value] : root.counters) {
    if (name.rfind("output_lines(", 0) == 0) {
      found_counter = true;
      EXPECT_EQ(value, 2u) << name;
      EXPECT_NE(name.find("ocean.log"), std::string::npos) << name;
    }
  }
  EXPECT_TRUE(found_counter) << "no output_lines counter on ocean:0";
  EXPECT_GE(report.trace->ranks[1].queue_high_water, 3u);
}

TEST(TraceReport, SendAndMatchingRecvShareOneNonzeroFlowId) {
  const minimpi::JobReport report = run_mph_job(
      kRegistry,
      {TestExec{{"ocean"}, "", 2,
                [](Mph& h, const Comm&) {
                  if (h.local_proc_id() == 0) {
                    h.world().send(41, 2, 9);
                  }
                }},
       TestExec{{"atmosphere"}, "", 1,
                [](Mph& h, const Comm&) {
                  int v = 0;
                  h.world().recv(v, 0, 9);
                }}},
      {}, traced_options());
  ASSERT_TRUE(report.ok) << report.abort_reason;
  ASSERT_TRUE(report.trace.has_value());

  // The send instant on ocean:0's ring and the recv span on atmosphere's
  // ring carry the same nonzero flow id — the edge mph_prof stitches.
  std::uint64_t send_flow = 0;
  for (const minimpi::TraceEvent& e : report.trace->ranks[0].events) {
    if (e.op == minimpi::TraceOp::send && !e.span && e.tag == 9) {
      send_flow = e.flow;
    }
  }
  ASSERT_GT(send_flow, 0u) << "send instants must stamp a flow id";
  bool recv_matched = false;
  for (const minimpi::TraceEvent& e : report.trace->ranks[2].events) {
    if (e.flow == send_flow && e.op == minimpi::TraceOp::recv && e.span) {
      recv_matched = true;
    }
  }
  EXPECT_TRUE(recv_matched)
      << "the matching recv span must carry flow " << send_flow;

  // Flow ids are per-sender unique: no two send instants share one.
  std::vector<std::uint64_t> flows;
  for (const minimpi::RankTrace& r : report.trace->ranks) {
    for (const minimpi::TraceEvent& e : r.events) {
      if (e.op == minimpi::TraceOp::send && !e.span && e.flow != 0) {
        flows.push_back(e.flow);
      }
    }
  }
  std::sort(flows.begin(), flows.end());
  EXPECT_EQ(std::adjacent_find(flows.begin(), flows.end()), flows.end());
}

TEST(TraceReport, ChromeJsonIsParsableAndCarriesTracks) {
  const minimpi::JobReport report = run_mph_job(
      kRegistry,
      {TestExec{{"ocean"}, "", 2,
                [](Mph& h, const Comm&) {
                  const Comm& comm = h.comp_comm();
                  if (comm.rank() == 0) {
                    comm.send(7, 1, 1);
                  } else {
                    int v = 0;
                    comm.recv(v, 0, 1);
                  }
                }},
       TestExec{{"atmosphere"}, "", 1, [](Mph&, const Comm&) {}}},
      {}, traced_options());
  ASSERT_TRUE(report.ok) << report.abort_reason;
  ASSERT_TRUE(report.trace.has_value());

  const std::string json = report.trace->to_chrome_json();
  const util::JsonValue doc = util::JsonValue::parse(json);

  // Chrome trace-event structure: one thread_name metadata entry per rank
  // (that is what gives Perfetto its named tracks) plus X/i events.
  const util::JsonValue& events = doc.at("traceEvents");
  std::vector<std::string> named_tracks;
  std::size_t span_events = 0;
  for (const util::JsonValue& e : events.items()) {
    const std::string& name = e.at("name").as_string();
    const std::string& ph = e.at("ph").as_string();
    if (name == "thread_name" && ph == "M") {
      named_tracks.push_back(e.at("args").at("name").as_string());
    }
    if (ph == "X") {
      ++span_events;
      EXPECT_GE(e.at("dur").as_number(), 0.0);
    }
  }
  const std::vector<std::string> expected{"ocean:0", "ocean:1",
                                          "atmosphere:0"};
  EXPECT_EQ(named_tracks, expected);
  EXPECT_GT(span_events, 0u);

  // The mph metrics rollup rides along for mph_inspect.
  const util::JsonValue& mph_obj = doc.at("mph");
  EXPECT_EQ(mph_obj.at("ranks").items().size(), 3u);
  const util::JsonValue& traffic = mph_obj.at("componentTraffic");
  ASSERT_FALSE(traffic.items().empty());
  bool ocean_sends = false;
  for (const util::JsonValue& pair : traffic.items()) {
    if (pair.at("src").as_string() == "ocean" &&
        pair.at("messages").as_int() > 0) {
      ocean_sends = true;
    }
  }
  EXPECT_TRUE(ocean_sends);
}
