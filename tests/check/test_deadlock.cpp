// mpicheck deadlock detector: a head-to-head receive cycle between two
// components must produce ONE structured report naming every
// (component, rank, operation) edge — via the watcher thread, or via the
// blocking-receive timeout upgrade when the watcher is off — while
// fault-injection kills and delays must never be mistaken for deadlock.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "src/minimpi/collectives.hpp"
#include "src/minimpi/fault.hpp"
#include "src/minimpi/launcher.hpp"

namespace {

using minimpi::CheckOptions;
using minimpi::Comm;
using minimpi::ExecEnv;
using minimpi::ExecSpec;
using minimpi::JobOptions;
using minimpi::JobReport;

JobOptions deadlock_options() {
  JobOptions options;
  options.recv_timeout = std::chrono::seconds(30);
  options.check.deadlock = true;
  return options;
}

/// Two single-rank executables, "atm" (world rank 0) and "ocn" (world rank
/// 1), each receiving from the other before its send: the canonical
/// send-after-recv cycle.
std::vector<ExecSpec> cycle_specs() {
  return {
      ExecSpec{"atm", 1,
               [](const Comm& world, const ExecEnv&) {
                 int value = 0;
                 world.recv(value, 1, 7);  // never satisfied
                 world.send(value, 1, 8);
               },
               {}},
      ExecSpec{"ocn", 1,
               [](const Comm& world, const ExecEnv&) {
                 int value = 0;
                 world.recv(value, 0, 9);  // never satisfied
                 world.send(value, 0, 10);
               },
               {}},
  };
}

TEST(DeadlockCheck, WatcherReportsSingleCycleNamingEveryEdge) {
  const JobReport report = minimpi::run_mpmd(cycle_specs(), deadlock_options());

  EXPECT_FALSE(report.ok);
  ASSERT_TRUE(report.abort.has_value());
  EXPECT_EQ(report.abort->operation, "deadlock");
  ASSERT_TRUE(report.check.has_value());
  // Exactly one report for the whole cycle — not one timeout per rank.
  ASSERT_EQ(report.check->deadlocks.size(), 1u);
  const std::string& cycle = report.check->deadlocks.front();
  EXPECT_NE(cycle.find("wait-for cycle across 2 rank(s)"), std::string::npos)
      << cycle;
  // Every edge appears with its component, rank, operation, and tag.
  EXPECT_NE(cycle.find("atm[0] recv<-ocn[1]"), std::string::npos) << cycle;
  EXPECT_NE(cycle.find("ocn[1] recv<-atm[0]"), std::string::npos) << cycle;
  EXPECT_NE(cycle.find("tag=7"), std::string::npos) << cycle;
  EXPECT_NE(cycle.find("tag=9"), std::string::npos) << cycle;
  // The abort carries the same cycle text to every unwound rank.
  EXPECT_NE(report.abort->detail.find("wait-for cycle"), std::string::npos);
}

TEST(DeadlockCheck, BlockedReceiveTimeoutUpgradesToDeadlockError) {
  JobOptions options = deadlock_options();
  options.check.watch_interval = std::chrono::milliseconds(0);  // no watcher
  options.recv_timeout = std::chrono::milliseconds(300);

  const JobReport report = minimpi::run_mpmd(cycle_specs(), options);

  EXPECT_FALSE(report.ok);
  ASSERT_TRUE(report.abort.has_value());
  // The timeout consulted the wait-for graph and upgraded itself: the
  // root cause is a deadlock report, not a generic receive timeout.
  EXPECT_EQ(report.abort->operation, "deadlock");
  EXPECT_NE(report.abort->detail.find("wait-for cycle"), std::string::npos)
      << report.abort->detail;
  ASSERT_TRUE(report.check.has_value());
  EXPECT_GE(report.check->deadlocks.size(), 1u);
  EXPECT_NE(report.first_error().find("deadlock"), std::string::npos)
      << report.first_error();
}

TEST(DeadlockCheck, InjectedKillIsNotReportedAsDeadlock) {
  JobOptions options = deadlock_options();
  options.check.watch_interval = std::chrono::milliseconds(2);  // aggressive
  options.faults.kill_at(minimpi::KillPoint::entry, 1);

  // Rank 0 blocks on a message rank 1 would have sent — but rank 1 dies at
  // entry.  The blocked rank unwinds via the abort, and the watcher must
  // not misread the one-sided wait as a cycle.
  const std::vector<ExecSpec> specs = {
      ExecSpec{"atm", 1,
               [](const Comm& world, const ExecEnv&) {
                 int value = 0;
                 world.recv(value, 1, 3);
               },
               {}},
      ExecSpec{"ocn", 1,
               [](const Comm& world, const ExecEnv&) {
                 const int value = 42;
                 world.send(value, 0, 3);
               },
               {}},
  };
  const JobReport report = minimpi::run_mpmd(specs, options);

  EXPECT_FALSE(report.ok);
  ASSERT_TRUE(report.abort.has_value());
  EXPECT_EQ(report.abort->operation, "entry");
  ASSERT_TRUE(report.check.has_value());
  EXPECT_TRUE(report.check->deadlocks.empty())
      << report.check->deadlocks.front();
}

TEST(DeadlockCheck, DelayedDeliveryIsNotReportedAsDeadlock) {
  JobOptions options = deadlock_options();
  options.check.watch_interval = std::chrono::milliseconds(2);  // aggressive
  minimpi::EnvelopeMatch slow;
  slow.src = 0;
  slow.dest = 1;
  options.faults.delay(slow, std::chrono::milliseconds(200));

  // A completes-eventually exchange: while rank 0's send is parked in the
  // delay, rank 1 sits blocked on rank 0 — a one-edge wait the watcher
  // scans many times and must never report.
  const std::vector<ExecSpec> specs = {
      ExecSpec{"atm", 1,
               [](const Comm& world, const ExecEnv&) {
                 const int value = 1;
                 world.send(value, 1, 5);
                 int reply = 0;
                 world.recv(reply, 1, 6);
               },
               {}},
      ExecSpec{"ocn", 1,
               [](const Comm& world, const ExecEnv&) {
                 int value = 0;
                 world.recv(value, 0, 5);
                 world.send(value, 0, 6);
               },
               {}},
  };
  const JobReport report = minimpi::run_mpmd(specs, options);

  EXPECT_TRUE(report.ok) << report.first_error();
  ASSERT_TRUE(report.check.has_value());
  EXPECT_TRUE(report.check->deadlocks.empty())
      << report.check->deadlocks.front();
}

TEST(DeadlockCheck, EnvironmentVariableEnablesChecker) {
  ::setenv("MINIMPI_CHECK", "deadlock", 1);
  JobOptions options;  // nothing enabled programmatically
  options.recv_timeout = std::chrono::seconds(30);
  const JobReport report = minimpi::run_mpmd(cycle_specs(), options);
  ::unsetenv("MINIMPI_CHECK");

  EXPECT_FALSE(report.ok);
  ASSERT_TRUE(report.abort.has_value());
  EXPECT_EQ(report.abort->operation, "deadlock");
  ASSERT_TRUE(report.check.has_value());
  EXPECT_EQ(report.check->deadlocks.size(), 1u);
}

TEST(DeadlockCheck, CleanExchangeStaysSilentUnderWatcher) {
  JobOptions options = deadlock_options();
  options.check.watch_interval = std::chrono::milliseconds(1);

  const JobReport report = minimpi::run_spmd(
      4,
      [](const Comm& world, const ExecEnv&) {
        const int n = world.size();
        const minimpi::rank_t next = (world.rank() + 1) % n;
        const minimpi::rank_t prev = (world.rank() + n - 1) % n;
        for (int round = 0; round < 50; ++round) {
          const int value = world.rank();
          world.send(value, next, 2);
          int got = 0;
          world.recv(got, prev, 2);
          minimpi::barrier(world);
        }
      },
      options);

  EXPECT_TRUE(report.ok) << report.first_error();
  ASSERT_TRUE(report.check.has_value());
  EXPECT_TRUE(report.check->clean()) << report.check->to_string();
}

}  // namespace
