// mpicheck resource-leak audit: envelopes sent but never received,
// posted receives the user abandoned, and communicator handles still live
// at job end must each surface as a RankLeak in JobReport::check — and a
// rank that calls Mph::finalize() with communication debt must get a
// structured LeakError.
#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <span>
#include <vector>

#include "src/minimpi/check.hpp"
#include "src/minimpi/collectives.hpp"
#include "src/minimpi/launcher.hpp"
#include "tests/mph/mph_test_util.hpp"

namespace {

using minimpi::CheckReport;
using minimpi::Comm;
using minimpi::ExecEnv;
using minimpi::JobOptions;
using minimpi::JobReport;
using mph::Mph;
using mph::testing::TestExec;

JobOptions leak_check_options() {
  JobOptions options;
  options.recv_timeout = std::chrono::seconds(30);
  options.check.leaks = true;
  return options;
}

const CheckReport::RankLeak* leak_of(const JobReport& report,
                                     minimpi::rank_t world_rank) {
  if (!report.check.has_value()) return nullptr;
  for (const CheckReport::RankLeak& leak : report.check->leaks) {
    if (leak.world_rank == world_rank) return &leak;
  }
  return nullptr;
}

TEST(LeakCheck, UnreceivedEnvelopeIsChargedToItsReceiver) {
  const JobReport report = minimpi::run_spmd(
      2,
      [](const Comm& world, const ExecEnv&) {
        if (world.rank() == 0) {
          const int value = 5;
          world.send(value, 1, 9);  // nobody ever receives this
        }
        minimpi::barrier(world);
      },
      leak_check_options());

  EXPECT_TRUE(report.ok) << report.first_error();
  ASSERT_TRUE(report.check.has_value());
  EXPECT_FALSE(report.check->clean());
  const CheckReport::RankLeak* leak = leak_of(report, 1);
  ASSERT_NE(leak, nullptr) << report.check->to_string();
  EXPECT_EQ(leak->envelopes, 1u);
  EXPECT_EQ(leak_of(report, 0), nullptr) << report.check->to_string();
}

TEST(LeakCheck, AbandonedPostedReceiveIsReported) {
  const JobReport report = minimpi::run_spmd(
      2,
      [](const Comm& world, const ExecEnv&) {
        if (world.rank() == 0) {
          int never = 0;
          // Posted, then dropped on the floor: never waited, never
          // cancelled, never matched.
          minimpi::Request forgotten =
              world.irecv(std::span<int>(&never, 1), 1, 9);
          (void)forgotten;
        }
        minimpi::barrier(world);
      },
      leak_check_options());

  EXPECT_TRUE(report.ok) << report.first_error();
  const CheckReport::RankLeak* leak = leak_of(report, 0);
  ASSERT_NE(leak, nullptr);
  EXPECT_EQ(leak->posted_recvs, 1u);
  EXPECT_EQ(leak->outstanding_requests, 1u);
}

TEST(LeakCheck, ConsumedRequestsAreNotReported) {
  const JobReport report = minimpi::run_spmd(
      2,
      [](const Comm& world, const ExecEnv&) {
        int got = 0;
        minimpi::Request request =
            world.irecv(std::span<int>(&got, 1),
                        (world.rank() + 1) % world.size(), 2);
        const int value = world.rank();
        world.send(value, (world.rank() + 1) % world.size(), 2);
        request.wait();
      },
      leak_check_options());

  EXPECT_TRUE(report.ok) << report.first_error();
  ASSERT_TRUE(report.check.has_value());
  EXPECT_TRUE(report.check->clean()) << report.check->to_string();
}

TEST(LeakCheck, LiveCommunicatorHandleIsReported) {
  // The handle escapes the rank body, so its CommState is still alive when
  // the job's leak audit runs.
  std::mutex held_mutex;
  std::vector<Comm> held;

  const JobReport report = minimpi::run_spmd(
      2,
      [&](const Comm& world, const ExecEnv&) {
        Comm copy = world.dup();
        const std::lock_guard<std::mutex> lock(held_mutex);
        held.push_back(std::move(copy));
      },
      leak_check_options());

  EXPECT_TRUE(report.ok) << report.first_error();
  ASSERT_TRUE(report.check.has_value());
  for (minimpi::rank_t rank = 0; rank < 2; ++rank) {
    const CheckReport::RankLeak* leak = leak_of(report, rank);
    ASSERT_NE(leak, nullptr) << report.check->to_string();
    EXPECT_EQ(leak->live_comms, 1u);
  }
  held.clear();  // releases the states (the job outlives via shared_ptr)
}

TEST(LeakCheck, MphFinalizeThrowsLeakErrorOnCommunicationDebt) {
  const std::string registry = "BEGIN\natmosphere\nocean\nEND\n";
  const auto atm_body = [](Mph& handle, const Comm& world) {
    const int value = 3;
    world.send(value, 1, 9);  // ocean never receives it
    minimpi::barrier(world);  // ensures delivery precedes ocean's finalize
    handle.finalize();        // atmosphere itself is debt-free
  };
  const auto ocn_body = [](Mph& handle, const Comm& world) {
    minimpi::barrier(world);
    handle.finalize();  // must throw: one unreceived envelope
  };
  const JobReport report = mph::testing::run_mph_job(
      registry,
      {TestExec{{"atmosphere"}, "", 1, atm_body},
       TestExec{{"ocean"}, "", 1, ocn_body}},
      {}, leak_check_options());

  EXPECT_FALSE(report.ok);
  ASSERT_TRUE(report.abort.has_value());
  EXPECT_EQ(report.abort->world_rank, 1);
  const std::string error = report.first_error();
  EXPECT_NE(error.find("[leak]"), std::string::npos) << error;
  EXPECT_NE(error.find("MPH_finalize"), std::string::npos) << error;
  const CheckReport::RankLeak* leak = leak_of(report, 1);
  ASSERT_NE(leak, nullptr);
  EXPECT_GE(leak->envelopes, 1u);
}

TEST(LeakCheck, MphFinalizeIsSilentWithoutDebt) {
  const std::string registry = "BEGIN\natmosphere\nocean\nEND\n";
  const auto atm_body = [](Mph& handle, const Comm& world) {
    const int value = 3;
    world.send(value, 1, 9);
    handle.finalize();
  };
  const auto ocn_body = [](Mph& handle, const Comm& world) {
    int got = 0;
    world.recv(got, 0, 9);
    EXPECT_EQ(got, 3);
    handle.finalize();
  };
  const JobReport report = mph::testing::run_mph_job(
      registry,
      {TestExec{{"atmosphere"}, "", 1, atm_body},
       TestExec{{"ocean"}, "", 1, ocn_body}},
      {}, leak_check_options());

  EXPECT_TRUE(report.ok) << report.first_error();
  ASSERT_TRUE(report.check.has_value());
  EXPECT_TRUE(report.check->clean()) << report.check->to_string();
}

}  // namespace
