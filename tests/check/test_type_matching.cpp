// mpicheck type matching: a typed receive that matches an envelope sent
// with a different element type must raise TypeMismatchError naming both
// sides, on the blocking path and on the posted-receive path alike; raw
// (untyped) traffic and agreeing types stay silent.
#include <gtest/gtest.h>

#include <chrono>
#include <span>
#include <vector>

#include "src/minimpi/launcher.hpp"

namespace {

using minimpi::Comm;
using minimpi::ExecEnv;
using minimpi::JobOptions;
using minimpi::JobReport;

JobOptions type_check_options() {
  JobOptions options;
  options.recv_timeout = std::chrono::seconds(30);
  options.check.type_matching = true;
  return options;
}

TEST(TypeCheck, BlockingReceiveRaisesOnElementTypeMismatch) {
  const JobReport report = minimpi::run_spmd(
      2,
      [](const Comm& world, const ExecEnv&) {
        if (world.rank() == 0) {
          const int value = 42;
          world.send(value, 1, 3);
        } else {
          double wrong = 0.0;
          world.recv(wrong, 0, 3);  // int arrives, double expected
        }
      },
      type_check_options());

  EXPECT_FALSE(report.ok);
  ASSERT_TRUE(report.abort.has_value());
  EXPECT_EQ(report.abort->world_rank, 1);
  const std::string error = report.first_error();
  EXPECT_NE(error.find("type_mismatch"), std::string::npos) << error;
  // Both sides are named: the sender's element type and the receiver's.
  EXPECT_NE(error.find("int"), std::string::npos) << error;
  EXPECT_NE(error.find("double"), std::string::npos) << error;
  EXPECT_NE(error.find("tag=3"), std::string::npos) << error;
  ASSERT_TRUE(report.check.has_value());
  ASSERT_EQ(report.check->type_mismatches.size(), 1u);
}

TEST(TypeCheck, PostedReceiveWaitRaisesOnElementTypeMismatch) {
  const JobReport report = minimpi::run_spmd(
      2,
      [](const Comm& world, const ExecEnv&) {
        if (world.rank() == 0) {
          const int value = 7;
          world.send(value, 1, 4);
        } else {
          double wrong = 0.0;
          minimpi::Request request =
              world.irecv(std::span<double>(&wrong, 1), 0, 4);
          request.wait();  // the mismatch surfaces at completion
        }
      },
      type_check_options());

  EXPECT_FALSE(report.ok);
  const std::string error = report.first_error();
  EXPECT_NE(error.find("type_mismatch"), std::string::npos) << error;
  ASSERT_TRUE(report.check.has_value());
  ASSERT_EQ(report.check->type_mismatches.size(), 1u);
}

TEST(TypeCheck, AgreeingTypesStaySilent) {
  const JobReport report = minimpi::run_spmd(
      2,
      [](const Comm& world, const ExecEnv&) {
        if (world.rank() == 0) {
          const int value = 1;
          world.send(value, 1, 3);
          const std::vector<double> payload(5, 2.5);
          world.send(std::span<const double>(payload), 1, 4);
        } else {
          int got = 0;
          world.recv(got, 0, 3);
          const std::vector<double> payload = world.recv_vector<double>(0, 4);
          EXPECT_EQ(payload.size(), 5u);
        }
      },
      type_check_options());

  EXPECT_TRUE(report.ok) << report.first_error();
  ASSERT_TRUE(report.check.has_value());
  EXPECT_TRUE(report.check->clean()) << report.check->to_string();
}

TEST(TypeCheck, RawTrafficIsNeverChecked) {
  const JobReport report = minimpi::run_spmd(
      2,
      [](const Comm& world, const ExecEnv&) {
        if (world.rank() == 0) {
          // Untyped bytes into a typed receive: no sender signature, so
          // nothing to verify even though the "element types" differ.
          const int value = 9;
          world.send_raw(std::as_bytes(std::span<const int>(&value, 1)), 1, 3);
          // Typed send into an untyped receive: same, other direction.
          world.send(value, 1, 4);
        } else {
          double buffer = 0.0;
          world.recv_raw(std::as_writable_bytes(std::span<double>(&buffer, 1)),
                         0, 3);
          int sink = 0;
          world.recv_raw(std::as_writable_bytes(std::span<int>(&sink, 1)), 0,
                         4);
        }
      },
      type_check_options());

  EXPECT_TRUE(report.ok) << report.first_error();
  ASSERT_TRUE(report.check.has_value());
  EXPECT_TRUE(report.check->clean()) << report.check->to_string();
}

}  // namespace
