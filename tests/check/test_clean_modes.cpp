// With EVERY mpicheck checker enabled, a correct application must run
// unbothered in all five integration modes of the paper (SCSE, SCME, MCSE,
// MCME, MIME): no deadlock report, no type or collective mismatch, and a
// debt-free leak audit through per-rank MPH_finalize.
#include <gtest/gtest.h>

#include <chrono>
#include <span>
#include <string>
#include <vector>

#include "src/minimpi/check.hpp"
#include "src/minimpi/collectives.hpp"
#include "tests/mph/mph_test_util.hpp"

namespace {

using minimpi::Comm;
using minimpi::JobOptions;
using minimpi::JobReport;
using mph::Mph;
using mph::testing::TestExec;

struct ModeCase {
  std::string name;
  std::string registry;
};

const std::vector<ModeCase>& modes() {
  static const std::vector<ModeCase> kModes = {
      {"SCSE", "BEGIN\nocean\nEND\n"},
      {"SCME", "BEGIN\natmosphere\nocean\nEND\n"},
      {"MCSE",
       "BEGIN\nMulti_Component_Begin\natmosphere 0 1\nocean 2 3\n"
       "Multi_Component_End\nEND\n"},
      {"MCME",
       "BEGIN\nMulti_Component_Begin\natmosphere 0 0\nland 1 1\n"
       "Multi_Component_End\nocean\nEND\n"},
      {"MIME",
       "BEGIN\nMulti_Instance_Begin\nOcean1 0 1\nOcean2 2 3\n"
       "Multi_Instance_End\nstatistics\nEND\n"},
  };
  return kModes;
}

std::vector<TestExec> make_execs(const std::string& mode,
                                 std::function<void(Mph&, const Comm&)> body) {
  if (mode == "SCSE") return {TestExec{{"ocean"}, "", 4, body}};
  if (mode == "SCME") {
    return {TestExec{{"atmosphere"}, "", 2, body},
            TestExec{{"ocean"}, "", 2, body}};
  }
  if (mode == "MCSE") return {TestExec{{"atmosphere", "ocean"}, "", 4, body}};
  if (mode == "MCME") {
    return {TestExec{{"atmosphere", "land"}, "", 2, body},
            TestExec{{"ocean"}, "", 2, body}};
  }
  return {TestExec{{}, "Ocean", 4, body},
          TestExec{{"statistics"}, "", 1, body}};  // MIME
}

/// Typed world-ring exchange, component-communicator collectives with
/// rank-varying counts, then a per-rank MPH_finalize — every checker gets
/// something to look at, and none of it is wrong.
void clean_body(Mph& handle, const Comm& world) {
  const int n = world.size();
  const minimpi::rank_t next = (world.rank() + 1) % n;
  const minimpi::rank_t prev = (world.rank() + n - 1) % n;
  const int value = world.rank();
  world.send(value, next, 11);
  int got = -1;
  world.recv(got, prev, 11);
  EXPECT_EQ(got, prev);

  const Comm& comp = handle.comp_comm();
  minimpi::barrier(comp);
  const std::vector<double> varying(
      static_cast<std::size_t>(comp.rank()) + 1, 1.5);
  std::vector<std::size_t> counts;
  (void)minimpi::gatherv(comp, std::span<const double>(varying), &counts, 0);

  const Mph::FinalizeReport finalized = handle.finalize();
  EXPECT_TRUE(finalized.clean());
}

TEST(CleanModes, AllCheckersStaySilentInEveryMode) {
  JobOptions options;
  options.recv_timeout = std::chrono::seconds(30);
  options.check = minimpi::CheckOptions::all();

  for (const ModeCase& mode : modes()) {
    SCOPED_TRACE(mode.name);
    const JobReport report = mph::testing::run_mph_job(
        mode.registry, make_execs(mode.name, clean_body), {}, options);
    EXPECT_TRUE(report.ok) << report.abort_reason << " / "
                           << report.first_error();
    ASSERT_TRUE(report.check.has_value());
    EXPECT_TRUE(report.check->clean()) << report.check->to_string();
    EXPECT_EQ(report.leaked_envelopes, 0u);
  }
}

}  // namespace
