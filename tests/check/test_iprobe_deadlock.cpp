// Probe-spin deadlocks: ranks polling with iprobe/test participate in the
// wait-for graph through *soft* edges, so a spin loop whose peer can never
// send is reported as a cycle instead of hanging until the receive timeout
// — while a poll that is eventually satisfied must never be flagged.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "src/minimpi/launcher.hpp"

namespace {

using minimpi::Comm;
using minimpi::ExecEnv;
using minimpi::ExecSpec;
using minimpi::JobOptions;
using minimpi::JobReport;

constexpr minimpi::tag_t kTag = 7;

JobOptions check_options() {
  JobOptions options;
  options.recv_timeout = std::chrono::seconds(30);
  options.check.deadlock = true;
  return options;
}

/// Spin on iprobe until a message from `source` appears (or the job
/// aborts, which iprobe surfaces as an exception).
void spin_for(const Comm& world, minimpi::rank_t source) {
  while (!world.iprobe(source, kTag).has_value()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(IprobeDeadlock, MutualProbeSpinReportedAsCycle) {
  // Both ranks poll for a message the other never sends: no rank is ever
  // *blocked*, yet no progress is possible.  The soft edges must close the
  // cycle.
  const std::vector<ExecSpec> specs = {
      ExecSpec{"atm", 1,
               [](const Comm& world, const ExecEnv&) { spin_for(world, 1); },
               {}},
      ExecSpec{"ocn", 1,
               [](const Comm& world, const ExecEnv&) { spin_for(world, 0); },
               {}},
  };
  const JobReport report = minimpi::run_mpmd(specs, check_options());

  EXPECT_FALSE(report.ok);
  ASSERT_TRUE(report.abort.has_value());
  EXPECT_EQ(report.abort->operation, "deadlock");
  ASSERT_TRUE(report.check.has_value());
  ASSERT_EQ(report.check->deadlocks.size(), 1u);
  const std::string& cycle = report.check->deadlocks.front();
  EXPECT_NE(cycle.find("atm[0] iprobe<-ocn[1]"), std::string::npos) << cycle;
  EXPECT_NE(cycle.find("ocn[1] iprobe<-atm[0]"), std::string::npos) << cycle;
  // The report says these edges are polls, not blocking waits.
  EXPECT_NE(cycle.find("spinning"), std::string::npos) << cycle;
}

TEST(IprobeDeadlock, MixedProbeSpinAndBlockingRecvCycle) {
  // One soft edge (rank 0 polls for rank 1) plus one hard edge (rank 1
  // blocks on rank 0): still a cycle.
  const std::vector<ExecSpec> specs = {
      ExecSpec{"atm", 1,
               [](const Comm& world, const ExecEnv&) { spin_for(world, 1); },
               {}},
      ExecSpec{"ocn", 1,
               [](const Comm& world, const ExecEnv&) {
                 int value = 0;
                 world.recv(value, 0, kTag);  // never satisfied
               },
               {}},
  };
  const JobReport report = minimpi::run_mpmd(specs, check_options());

  EXPECT_FALSE(report.ok);
  ASSERT_TRUE(report.check.has_value());
  ASSERT_EQ(report.check->deadlocks.size(), 1u);
  const std::string& cycle = report.check->deadlocks.front();
  EXPECT_NE(cycle.find("atm[0] iprobe<-ocn[1]"), std::string::npos) << cycle;
  EXPECT_NE(cycle.find("ocn[1] recv<-atm[0]"), std::string::npos) << cycle;
}

TEST(IprobeDeadlock, SatisfiedPollIsNotADeadlock) {
  // Rank 1 sends after a delay long enough for many probe misses: the spin
  // must complete normally, with no deadlock report.
  const std::vector<ExecSpec> specs = {
      ExecSpec{"atm", 1,
               [](const Comm& world, const ExecEnv&) {
                 spin_for(world, 1);
                 int value = 0;
                 world.recv(value, 1, kTag);
                 if (value != 5) throw std::runtime_error("bad payload");
               },
               {}},
      ExecSpec{"ocn", 1,
               [](const Comm& world, const ExecEnv&) {
                 std::this_thread::sleep_for(
                     std::chrono::milliseconds(200));
                 world.send(5, 0, kTag);
               },
               {}},
  };
  const JobReport report = minimpi::run_mpmd(specs, check_options());
  EXPECT_TRUE(report.ok) << report.first_error();
  ASSERT_TRUE(report.check.has_value());
  EXPECT_TRUE(report.check->deadlocks.empty());
}

TEST(IprobeDeadlock, TestSpinOnRequestReportedAsCycle) {
  // The same soft-edge machinery covers Request::test polling loops.
  const std::vector<ExecSpec> specs = {
      ExecSpec{"atm", 1,
               [](const Comm& world, const ExecEnv&) {
                 int value = 0;
                 minimpi::Request req =
                     world.irecv(std::span<int>(&value, 1), 1, kTag);
                 while (!req.test()) {
                   std::this_thread::sleep_for(
                       std::chrono::milliseconds(1));
                 }
               },
               {}},
      ExecSpec{"ocn", 1,
               [](const Comm& world, const ExecEnv&) {
                 int value = 0;
                 world.recv(value, 0, kTag);  // never satisfied
               },
               {}},
  };
  const JobReport report = minimpi::run_mpmd(specs, check_options());

  EXPECT_FALSE(report.ok);
  ASSERT_TRUE(report.check.has_value());
  ASSERT_EQ(report.check->deadlocks.size(), 1u);
  const std::string& cycle = report.check->deadlocks.front();
  EXPECT_NE(cycle.find("test<-"), std::string::npos) << cycle;
}

}  // namespace
