// mpicheck collective consistency: members of one communicator invoking
// different operations, roots, or counts for the same collective slot must
// raise CollectiveMismatchError naming both reporters — while a clean run
// through the whole collective repertoire (including the rank-varying
// gatherv/allgatherv counts and split/dup) stays silent.
#include <gtest/gtest.h>

#include <chrono>
#include <span>
#include <string>
#include <vector>

#include "src/minimpi/collectives.hpp"
#include "src/minimpi/launcher.hpp"

namespace {

using minimpi::Comm;
using minimpi::ExecEnv;
using minimpi::JobOptions;
using minimpi::JobReport;

JobOptions collective_check_options() {
  JobOptions options;
  options.recv_timeout = std::chrono::seconds(30);
  options.check.collectives = true;
  return options;
}

TEST(CollectiveCheck, DivergentOperationsRaise) {
  const JobReport report = minimpi::run_spmd(
      2,
      [](const Comm& world, const ExecEnv&) {
        if (world.rank() == 0) {
          minimpi::barrier(world);
        } else {
          int value = 0;
          minimpi::bcast_value(world, value, 0);  // split-brain collective
        }
      },
      collective_check_options());

  EXPECT_FALSE(report.ok);
  ASSERT_TRUE(report.check.has_value());
  ASSERT_EQ(report.check->collective_mismatches.size(), 1u);
  const std::string& mismatch = report.check->collective_mismatches.front();
  EXPECT_NE(mismatch.find("diverges"), std::string::npos) << mismatch;
  EXPECT_NE(mismatch.find("barrier"), std::string::npos) << mismatch;
  EXPECT_NE(mismatch.find("bcast"), std::string::npos) << mismatch;
  EXPECT_NE(report.first_error().find("collective_mismatch"),
            std::string::npos)
      << report.first_error();
}

TEST(CollectiveCheck, DivergentRootsRaise) {
  const JobReport report = minimpi::run_spmd(
      2,
      [](const Comm& world, const ExecEnv&) {
        int value = world.rank();
        minimpi::bcast_value(world, value, /*root=*/world.rank());
      },
      collective_check_options());

  EXPECT_FALSE(report.ok);
  ASSERT_TRUE(report.check.has_value());
  ASSERT_EQ(report.check->collective_mismatches.size(), 1u);
  EXPECT_NE(report.check->collective_mismatches.front().find("root="),
            std::string::npos)
      << report.check->collective_mismatches.front();
}

TEST(CollectiveCheck, DivergentCountsRaise) {
  const JobReport report = minimpi::run_spmd(
      2,
      [](const Comm& world, const ExecEnv&) {
        std::vector<int> values(world.rank() == 0 ? 3 : 4, 0);
        minimpi::bcast(world, std::span<int>(values), 0);
      },
      collective_check_options());

  EXPECT_FALSE(report.ok);
  ASSERT_TRUE(report.check.has_value());
  ASSERT_EQ(report.check->collective_mismatches.size(), 1u);
  EXPECT_NE(report.check->collective_mismatches.front().find("count="),
            std::string::npos)
      << report.check->collective_mismatches.front();
}

TEST(CollectiveCheck, ConsistentRepertoireStaysSilent) {
  const JobReport report = minimpi::run_spmd(
      4,
      [](const Comm& world, const ExecEnv&) {
        minimpi::barrier(world);
        int value = world.rank() == 1 ? 17 : 0;
        minimpi::bcast_value(world, value, 1);
        EXPECT_EQ(value, 17);

        const int sum = minimpi::allreduce_value(
            world, world.rank(), [](int a, int b) { return a + b; });
        EXPECT_EQ(sum, 0 + 1 + 2 + 3);

        const int mine = world.rank() * 10;
        (void)minimpi::gather(world, std::span<const int>(&mine, 1), 0);

        // Rank-varying counts are legal for gatherv/allgather_strings: the
        // checker must not flag them.
        const std::vector<int> varying(
            static_cast<std::size_t>(world.rank()) + 1, world.rank());
        std::vector<std::size_t> counts;
        (void)minimpi::gatherv(world, std::span<const int>(varying), &counts,
                               2);
        (void)minimpi::allgather_strings(
            world, std::string(static_cast<std::size_t>(world.rank()), 'x'));

        (void)minimpi::scan(world, 1, [](int a, int b) { return a + b; });

        // Communicator creation is itself collective; child communicators
        // get their own consistency slots.
        const Comm half = world.split(world.rank() % 2, 0);
        minimpi::barrier(half);
        const Comm copy = world.dup();
        minimpi::barrier(copy);
      },
      collective_check_options());

  EXPECT_TRUE(report.ok) << report.first_error();
  ASSERT_TRUE(report.check.has_value());
  EXPECT_TRUE(report.check->clean()) << report.check->to_string();
}

}  // namespace
