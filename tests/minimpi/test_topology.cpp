// Topology (paper §9 further work (a)): SMP-node carving and node-local /
// cross-node communicator splits.
#include "src/minimpi/topology.hpp"

#include <gtest/gtest.h>

#include "src/minimpi/collectives.hpp"
#include "src/minimpi/launcher.hpp"

using namespace minimpi;

namespace {
void run_ok(int nprocs, std::function<void(const Comm&)> entry) {
  JobOptions options;
  options.recv_timeout = std::chrono::seconds(30);
  const JobReport report = run_spmd(
      nprocs, [&](const Comm& world, const ExecEnv&) { entry(world); },
      options);
  ASSERT_TRUE(report.ok) << report.abort_reason << " / "
                         << report.first_error();
}
}  // namespace

TEST(Topology, FlatIsOneRankPerNode) {
  const Topology t = Topology::flat(5);
  EXPECT_EQ(t.num_nodes(), 5);
  for (int r = 0; r < 5; ++r) {
    EXPECT_EQ(t.node_of(r), r);
    EXPECT_EQ(t.cpu_of(r), 0);
    EXPECT_EQ(t.tasks_on_node(r), 1);
  }
}

TEST(Topology, UniformCarving) {
  const Topology t = Topology::uniform(10, 4);
  EXPECT_EQ(t.num_nodes(), 3);  // 4 + 4 + 2
  EXPECT_EQ(t.node_of(0), 0);
  EXPECT_EQ(t.node_of(3), 0);
  EXPECT_EQ(t.node_of(4), 1);
  EXPECT_EQ(t.node_of(9), 2);
  EXPECT_EQ(t.tasks_on_node(2), 2);
  EXPECT_EQ(t.cpu_of(5), 1);
  EXPECT_TRUE(t.same_node(4, 7));
  EXPECT_FALSE(t.same_node(3, 4));
}

TEST(Topology, HeterogeneousCarving) {
  // The paper's motivating case: the same hardware carved differently —
  // one 16-cpu node split into 4 tasks next to one split into 2.
  const Topology t = Topology::from_node_sizes({4, 2, 1});
  EXPECT_EQ(t.num_nodes(), 3);
  EXPECT_EQ(t.world_size(), 7);
  EXPECT_EQ(t.ranks_on_node(0), (std::vector<rank_t>{0, 1, 2, 3}));
  EXPECT_EQ(t.ranks_on_node(1), (std::vector<rank_t>{4, 5}));
  EXPECT_EQ(t.ranks_on_node(2), (std::vector<rank_t>{6}));
}

TEST(Topology, Validation) {
  EXPECT_THROW((void)Topology::flat(0), Error);
  EXPECT_THROW((void)Topology::uniform(4, 0), Error);
  EXPECT_THROW((void)Topology::from_node_sizes({}), Error);
  EXPECT_THROW((void)Topology::from_node_sizes({2, 0}), Error);
  const Topology t = Topology::flat(3);
  EXPECT_THROW((void)t.node_of(3), Error);
  EXPECT_THROW((void)t.tasks_on_node(-1), Error);
}

TEST(SplitByNode, NodeLocalCommunicators) {
  run_ok(6, [](const Comm& world) {
    const Topology t = Topology::uniform(6, 2);
    const Comm node = split_by_node(world, t);
    ASSERT_TRUE(node.valid());
    EXPECT_EQ(node.size(), 2);
    EXPECT_EQ(node.rank(), world.rank() % 2);
    // Node-local collective: sums ranks of my node only.
    const int sum = allreduce_value(node, world.rank(), op::Sum{});
    const int base = (world.rank() / 2) * 2;
    EXPECT_EQ(sum, base + base + 1);
  });
}

TEST(SplitAcrossNodes, LeaderCommunicator) {
  run_ok(6, [](const Comm& world) {
    const Topology t = Topology::uniform(6, 2);
    const Comm cross = split_across_nodes(world, t);
    ASSERT_TRUE(cross.valid());
    // cpu 0 ranks {0,2,4} form one comm; cpu 1 ranks {1,3,5} the other.
    EXPECT_EQ(cross.size(), 3);
    const int sum = allreduce_value(cross, world.rank(), op::Sum{});
    EXPECT_EQ(sum, world.rank() % 2 == 0 ? 6 : 9);
  });
}

TEST(SplitByNode, HierarchicalAllreduceMatchesFlat) {
  // Classic SMP pattern: node-local reduce, cross-node reduce of the
  // leaders, node-local broadcast == flat allreduce.
  run_ok(8, [](const Comm& world) {
    const Topology t = Topology::uniform(8, 4);
    const Comm node = split_by_node(world, t);
    const Comm leaders = split_across_nodes(world, t);
    const int mine = world.rank() + 1;

    const int node_sum = reduce_value(node, mine, op::Sum{}, 0);
    int total = 0;
    if (node.rank() == 0) {
      total = allreduce_value(leaders, node_sum, op::Sum{});
    } else {
      // Non-leaders still participate in their cpu-k cross comm... they
      // must not: cross-node comm of cpu k>0 would deadlock with leaders'
      // allreduce.  Use it for nothing; receive the result via the node.
      (void)leaders;
    }
    bcast_value(node, total, 0);
    EXPECT_EQ(total, allreduce_value(world, mine, op::Sum{}));
  });
}

TEST(SplitByNode, TopologyWorldSizeMustMatchJob) {
  run_ok(4, [](const Comm& world) {
    const Topology wrong = Topology::flat(3);
    EXPECT_THROW((void)split_by_node(world, wrong), Error);
    EXPECT_THROW((void)split_across_nodes(world, wrong), Error);
  });
}

TEST(SplitByNode, WorksOnSubCommunicators) {
  run_ok(6, [](const Comm& world) {
    const Topology t = Topology::uniform(6, 2);
    // Component = ranks {1,2,3,4}; node boundaries cut through it.
    const bool member = world.rank() >= 1 && world.rank() <= 4;
    const Comm comp = world.split(member ? 1 : undefined, world.rank());
    if (!member) return;
    const Comm node = split_by_node(comp, t);
    // Rank 1 is alone on node 0; ranks 2,3 share node 1; rank 4 alone on 2.
    const int expect = (world.rank() == 2 || world.rank() == 3) ? 2 : 1;
    EXPECT_EQ(node.size(), expect);
  });
}
