// Point-to-point semantics over real rank-threads: typed send/recv,
// wildcards, probing, nonblocking requests, error paths.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "src/minimpi/collectives.hpp"
#include "src/minimpi/comm.hpp"
#include "src/minimpi/launcher.hpp"

using namespace minimpi;

namespace {
/// Run `entry` as an SPMD job and assert it succeeded.
void run_ok(int nprocs, std::function<void(const Comm&)> entry) {
  JobOptions options;
  options.recv_timeout = std::chrono::seconds(30);
  const JobReport report = run_spmd(
      nprocs, [&](const Comm& world, const ExecEnv&) { entry(world); },
      options);
  ASSERT_TRUE(report.ok) << report.abort_reason << " / "
                         << report.first_error();
}
}  // namespace

TEST(P2P, ScalarRoundTrip) {
  run_ok(2, [](const Comm& world) {
    if (world.rank() == 0) {
      world.send(123.5, 1, 0);
    } else {
      double v = 0;
      const Status st = world.recv(v, 0, 0);
      EXPECT_EQ(v, 123.5);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 0);
      EXPECT_EQ(st.count<double>(), 1u);
    }
  });
}

TEST(P2P, VectorRoundTrip) {
  run_ok(2, [](const Comm& world) {
    std::vector<int> data(1000);
    if (world.rank() == 0) {
      std::iota(data.begin(), data.end(), 0);
      world.send(std::span<const int>(data), 1, 9);
    } else {
      const Status st = world.recv(std::span<int>(data), 0, 9);
      EXPECT_EQ(st.count<int>(), 1000u);
      EXPECT_EQ(data[0], 0);
      EXPECT_EQ(data[999], 999);
    }
  });
}

TEST(P2P, RecvVectorUnknownLength) {
  run_ok(2, [](const Comm& world) {
    if (world.rank() == 0) {
      const std::vector<long> data{10, 20, 30};
      world.send(std::span<const long>(data), 1, 1);
    } else {
      Status st;
      const std::vector<long> got = world.recv_vector<long>(any_source, 1, &st);
      ASSERT_EQ(got.size(), 3u);
      EXPECT_EQ(got[2], 30);
      EXPECT_EQ(st.source, 0);
    }
  });
}

TEST(P2P, AnySourceReportsActualSender) {
  run_ok(4, [](const Comm& world) {
    if (world.rank() == 0) {
      std::vector<bool> seen(4, false);
      for (int i = 0; i < 3; ++i) {
        int payload = -1;
        const Status st = world.recv(payload, any_source, 5);
        EXPECT_EQ(payload, st.source * 10);
        seen[static_cast<std::size_t>(st.source)] = true;
      }
      EXPECT_TRUE(seen[1] && seen[2] && seen[3]);
    } else {
      world.send(world.rank() * 10, 0, 5);
    }
  });
}

TEST(P2P, MessageOrderPreservedPerSender) {
  run_ok(2, [](const Comm& world) {
    constexpr int kCount = 200;
    if (world.rank() == 0) {
      for (int i = 0; i < kCount; ++i) world.send(i, 1, 3);
    } else {
      for (int i = 0; i < kCount; ++i) {
        int v = -1;
        world.recv(v, 0, 3);
        EXPECT_EQ(v, i);
      }
    }
  });
}

TEST(P2P, TagsDisambiguate) {
  run_ok(2, [](const Comm& world) {
    if (world.rank() == 0) {
      world.send(1, 1, 10);
      world.send(2, 1, 20);
    } else {
      int a = 0, b = 0;
      world.recv(b, 0, 20);  // receive out of send order by tag
      world.recv(a, 0, 10);
      EXPECT_EQ(a, 1);
      EXPECT_EQ(b, 2);
    }
  });
}

TEST(P2P, SendrecvExchange) {
  run_ok(2, [](const Comm& world) {
    const int mine = world.rank() + 100;
    int theirs = -1;
    const rank_t peer = 1 - world.rank();
    world.sendrecv(std::span<const int>(&mine, 1), peer, 2,
                   std::span<int>(&theirs, 1), peer, 2);
    EXPECT_EQ(theirs, peer + 100);
  });
}

TEST(P2P, ProbeThenReceive) {
  run_ok(2, [](const Comm& world) {
    if (world.rank() == 0) {
      const std::vector<double> data{1.0, 2.0, 3.0, 4.0};
      world.send(std::span<const double>(data), 1, 7);
    } else {
      const Status st = world.probe(any_source, any_tag);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 7);
      std::vector<double> buf(st.count<double>());
      world.recv(std::span<double>(buf), st.source, st.tag);
      EXPECT_EQ(buf.back(), 4.0);
    }
  });
}

TEST(P2P, IprobeNonBlocking) {
  run_ok(2, [](const Comm& world) {
    if (world.rank() == 0) {
      // Nothing has been sent to rank 0: iprobe must return empty.
      EXPECT_FALSE(world.iprobe(any_source, any_tag).has_value());
      world.send(1, 1, 0);
    } else {
      int v;
      world.recv(v, 0, 0);
    }
  });
}

TEST(P2P, NonblockingRoundTrip) {
  run_ok(2, [](const Comm& world) {
    if (world.rank() == 0) {
      std::vector<float> data{1.5f, 2.5f};
      Request s = world.isend(std::span<const float>(data), 1, 4);
      s.wait();
    } else {
      std::vector<float> buf(2);
      Request r = world.irecv(std::span<float>(buf), 0, 4);
      const Status st = r.wait();
      EXPECT_EQ(st.count<float>(), 2u);
      EXPECT_EQ(buf[1], 2.5f);
    }
  });
}

TEST(P2P, WaitAllCompletesMultipleIrecvs) {
  run_ok(3, [](const Comm& world) {
    if (world.rank() == 0) {
      std::vector<int> b1(1), b2(1);
      std::vector<Request> reqs;
      reqs.push_back(world.irecv(std::span<int>(b1), 1, 0));
      reqs.push_back(world.irecv(std::span<int>(b2), 2, 0));
      const auto statuses = Request::wait_all(reqs);
      EXPECT_EQ(b1[0], 11);
      EXPECT_EQ(b2[0], 22);
      EXPECT_EQ(statuses.size(), 2u);
      EXPECT_EQ(statuses[0].source, 1);
      EXPECT_EQ(statuses[1].source, 2);
    } else {
      world.send(world.rank() * 11, 0, 0);
    }
  });
}

TEST(P2P, RequestTestPolling) {
  run_ok(2, [](const Comm& world) {
    if (world.rank() == 0) {
      int buf = 0;
      Request r = world.irecv(std::span<int>(&buf, 1), 1, 0);
      Status st;
      while (!r.test(&st)) std::this_thread::yield();
      EXPECT_EQ(buf, 42);
      EXPECT_EQ(st.source, 1);
    } else {
      world.send(42, 0, 0);
    }
  });
}

TEST(P2P, InvalidRankThrows) {
  run_ok(2, [](const Comm& world) {
    EXPECT_THROW(world.send(1, 5, 0), Error);
    EXPECT_THROW(world.send(1, -1, 0), Error);
  });
}

TEST(P2P, InvalidUserTagThrows) {
  run_ok(1, [](const Comm& world) {
    EXPECT_THROW(world.send(1, 0, -3), Error);
    EXPECT_THROW(world.send(1, 0, kMaxUserTag + 1), Error);
  });
}

TEST(P2P, TruncationOnBlockingRecv) {
  JobOptions options;
  options.recv_timeout = std::chrono::seconds(30);
  const JobReport report = run_spmd(
      2,
      [](const Comm& world, const ExecEnv&) {
        if (world.rank() == 0) {
          const std::vector<int> big(10, 1);
          world.send(std::span<const int>(big), 1, 0);
        } else {
          int small = 0;
          world.recv(small, 0, 0);  // 4-byte buffer for a 40-byte message
        }
      },
      options);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.first_error().find("truncation"), std::string::npos);
}

TEST(P2P, SelfSendReceive) {
  run_ok(1, [](const Comm& world) {
    world.send(7, 0, 0);  // eager buffering makes self-send safe
    int v = 0;
    world.recv(v, 0, 0);
    EXPECT_EQ(v, 7);
  });
}

TEST(P2P, LargeMessageIntegrity) {
  run_ok(2, [](const Comm& world) {
    constexpr std::size_t kCount = 1 << 18;  // 1 MiB of ints
    if (world.rank() == 0) {
      std::vector<int> data(kCount);
      std::iota(data.begin(), data.end(), 17);
      world.send(std::span<const int>(data), 1, 0);
    } else {
      std::vector<int> data(kCount);
      world.recv(std::span<int>(data), 0, 0);
      bool ok = true;
      for (std::size_t i = 0; i < kCount; ++i) {
        ok = ok && data[i] == static_cast<int>(i) + 17;
      }
      EXPECT_TRUE(ok);
    }
  });
}

TEST(P2P, DeadlockDetectedByTimeout) {
  JobOptions options;
  options.recv_timeout = std::chrono::milliseconds(100);
  const JobReport report = run_spmd(
      2,
      [](const Comm& world, const ExecEnv&) {
        int v = 0;
        world.recv(v, 1 - world.rank(), 0);  // both wait, nobody sends
      },
      options);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.abort_reason.find("timeout"), std::string::npos);
}
