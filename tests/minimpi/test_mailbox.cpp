// Unit tests for the Mailbox matching engine (single- and multi-threaded).
#include "src/minimpi/mailbox.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string_view>
#include <thread>
#include <vector>

#include "src/minimpi/error.hpp"

using namespace minimpi;

namespace {

Envelope make_env(context_t ctx, rank_t src, tag_t tag,
                  std::initializer_list<int> values) {
  Envelope e;
  e.context = ctx;
  e.src = src;
  e.tag = tag;
  e.payload.resize(values.size() * sizeof(int));
  std::memcpy(e.payload.data(), std::data(values), e.payload.size());
  return e;
}

int first_int(std::span<const std::byte> bytes) {
  int v = 0;
  std::memcpy(&v, bytes.data(), sizeof(int));
  return v;
}

struct MailboxFixture : ::testing::Test {
  mph::atomic<bool> abort_flag{false};  // the Job's flag type (racer shim)
  std::string abort_reason = "test abort";
  Mailbox box{abort_flag, abort_reason};
  Deadline soon = std::chrono::steady_clock::now() + std::chrono::seconds(30);
};

}  // namespace

TEST_F(MailboxFixture, DeliverThenReceive) {
  box.deliver(make_env(1, 4, 7, {42}));
  int out = 0;
  const Status st = box.recv(1, 4, 7,
                             std::as_writable_bytes(std::span<int>(&out, 1)),
                             soon);
  EXPECT_EQ(out, 42);
  EXPECT_EQ(st.source, 4);
  EXPECT_EQ(st.tag, 7);
  EXPECT_EQ(st.bytes, sizeof(int));
  EXPECT_EQ(box.queued(), 0u);
}

TEST_F(MailboxFixture, WildcardSourceAndTag) {
  box.deliver(make_env(1, 9, 3, {5}));
  int out = 0;
  const Status st = box.recv(1, any_source, any_tag,
                             std::as_writable_bytes(std::span<int>(&out, 1)),
                             soon);
  EXPECT_EQ(st.source, 9);
  EXPECT_EQ(st.tag, 3);
  EXPECT_EQ(out, 5);
}

TEST_F(MailboxFixture, ContextIsolation) {
  box.deliver(make_env(2, 0, 0, {1}));
  // A receive on context 3 must not see the context-2 message.
  EXPECT_FALSE(box.iprobe(3, any_source, any_tag).has_value());
  EXPECT_TRUE(box.iprobe(2, any_source, any_tag).has_value());
}

TEST_F(MailboxFixture, NonOvertakingSameSourceTag) {
  box.deliver(make_env(1, 2, 5, {100}));
  box.deliver(make_env(1, 2, 5, {200}));
  int out = 0;
  box.recv(1, 2, 5, std::as_writable_bytes(std::span<int>(&out, 1)), soon);
  EXPECT_EQ(out, 100);
  box.recv(1, 2, 5, std::as_writable_bytes(std::span<int>(&out, 1)), soon);
  EXPECT_EQ(out, 200);
}

TEST_F(MailboxFixture, TagSelectionSkipsNonMatching) {
  box.deliver(make_env(1, 2, 5, {100}));
  box.deliver(make_env(1, 2, 6, {200}));
  int out = 0;
  box.recv(1, 2, 6, std::as_writable_bytes(std::span<int>(&out, 1)), soon);
  EXPECT_EQ(out, 200);
  EXPECT_EQ(box.queued(), 1u);
}

TEST_F(MailboxFixture, TruncationThrows) {
  box.deliver(make_env(1, 0, 0, {1, 2, 3}));
  int out = 0;
  EXPECT_THROW(
      box.recv(1, 0, 0, std::as_writable_bytes(std::span<int>(&out, 1)), soon),
      Error);
}

TEST_F(MailboxFixture, RecvTakeReturnsPayload) {
  box.deliver(make_env(1, 3, 8, {7, 8, 9}));
  auto [st, payload] = box.recv_take(1, 3, 8, soon);
  EXPECT_EQ(st.bytes, 3 * sizeof(int));
  EXPECT_EQ(first_int(payload), 7);
}

TEST_F(MailboxFixture, PostRecvCompletesOnDeliver) {
  int out = 0;
  auto ticket =
      box.post_recv(1, any_source, 4, std::as_writable_bytes(std::span<int>(&out, 1)));
  EXPECT_FALSE(box.test(ticket, nullptr));
  box.deliver(make_env(1, 6, 4, {77}));
  Status st;
  ASSERT_TRUE(box.test(ticket, &st));
  EXPECT_EQ(out, 77);
  EXPECT_EQ(st.source, 6);
}

TEST_F(MailboxFixture, PostRecvMatchesAlreadyQueued) {
  box.deliver(make_env(1, 1, 2, {55}));
  int out = 0;
  auto ticket =
      box.post_recv(1, 1, 2, std::as_writable_bytes(std::span<int>(&out, 1)));
  Status st;
  ASSERT_TRUE(box.test(ticket, &st));
  EXPECT_EQ(out, 55);
}

TEST_F(MailboxFixture, PostedRecvsMatchInPostingOrder) {
  int a = 0, b = 0;
  auto t1 = box.post_recv(1, any_source, any_tag,
                          std::as_writable_bytes(std::span<int>(&a, 1)));
  auto t2 = box.post_recv(1, any_source, any_tag,
                          std::as_writable_bytes(std::span<int>(&b, 1)));
  box.deliver(make_env(1, 0, 0, {1}));
  box.deliver(make_env(1, 0, 0, {2}));
  box.wait(t1, soon);
  box.wait(t2, soon);
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
}

TEST_F(MailboxFixture, PostedTruncationSurfacesAtWait) {
  int small = 0;
  auto ticket = box.post_recv(1, any_source, any_tag,
                              std::as_writable_bytes(std::span<int>(&small, 1)));
  box.deliver(make_env(1, 0, 0, {1, 2}));
  EXPECT_THROW(box.wait(ticket, soon), Error);
}

TEST_F(MailboxFixture, CancelRemovesPostedRecv) {
  int out = 0;
  auto ticket = box.post_recv(1, any_source, any_tag,
                              std::as_writable_bytes(std::span<int>(&out, 1)));
  box.cancel(ticket);
  box.deliver(make_env(1, 0, 0, {9}));
  // The delivered message must be queued, not matched to the cancelled recv.
  EXPECT_EQ(box.queued(), 1u);
  EXPECT_EQ(out, 0);
}

TEST_F(MailboxFixture, ProbeReportsWithoutConsuming) {
  box.deliver(make_env(1, 5, 6, {1, 2}));
  const Status st = box.probe(1, any_source, any_tag, soon);
  EXPECT_EQ(st.source, 5);
  EXPECT_EQ(st.tag, 6);
  EXPECT_EQ(st.bytes, 2 * sizeof(int));
  EXPECT_EQ(box.queued(), 1u);
}

TEST_F(MailboxFixture, TimeoutThrows) {
  const Deadline fast =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(20);
  int out = 0;
  try {
    box.recv(1, 0, 0, std::as_writable_bytes(std::span<int>(&out, 1)), fast);
    FAIL() << "expected timeout";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::timeout);
  }
}

TEST_F(MailboxFixture, AbortWakesBlockedReceiver) {
  std::thread receiver([&] {
    int out = 0;
    EXPECT_THROW(box.recv(1, 0, 0,
                          std::as_writable_bytes(std::span<int>(&out, 1)),
                          Deadline::max()),
                 AbortedError);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  abort_flag.store(true);
  box.wake_all();
  receiver.join();
}

TEST_F(MailboxFixture, CrossThreadDeliverWakesReceiver) {
  int out = 0;
  std::thread sender([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    box.deliver(make_env(1, 0, 3, {321}));
  });
  const Status st =
      box.recv(1, 0, 3, std::as_writable_bytes(std::span<int>(&out, 1)), soon);
  sender.join();
  EXPECT_EQ(out, 321);
  EXPECT_EQ(st.bytes, sizeof(int));
}

TEST_F(MailboxFixture, ZeroByteMessage) {
  Envelope e;
  e.context = 1;
  e.src = 0;
  e.tag = 0;
  box.deliver(std::move(e));
  const Status st = box.recv(1, 0, 0, {}, soon);
  EXPECT_EQ(st.bytes, 0u);
}

// ---------------------------------------------------------------------------
// Contention tests — the mailbox's lock-free fast-path flags under real
// threads.  These are the tsan gate for the abort-flag and wildcard-counter
// protocols (the same protocols mph_racer checks exhaustively at small
// bounds via the mailbox_abort_flag / mailbox_wildcard_counter litmus
// cases); under the tsan preset any mis-annotated ordering is a reported
// race here.
// ---------------------------------------------------------------------------

TEST_F(MailboxFixture, AbortFlagContentionUnwindsEveryWaiter) {
  constexpr int kReceivers = 4;
  std::vector<std::thread> receivers;
  std::atomic<int> unwound{0};
  receivers.reserve(kReceivers);
  for (int i = 0; i < kReceivers; ++i) {
    receivers.emplace_back([&, i] {
      int out = 0;
      try {
        // Mix blocking receives and probes so both fast paths cross the
        // acquire load of abort_flag_ while the flag flips.
        if (i % 2 == 0) {
          (void)box.recv(1, any_source, any_tag,
                         std::as_writable_bytes(std::span<int>(&out, 1)),
                         Deadline::max());
        } else {
          (void)box.probe(1, any_source, any_tag, Deadline::max());
        }
      } catch (const AbortedError& e) {
        // The release store of the flag must make the write-once reason
        // visible to every unwinding waiter.
        EXPECT_NE(std::string_view(e.what()).find("test abort"),
                  std::string_view::npos);
        unwound.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  abort_flag.store(true, std::memory_order_release);
  box.wake_all();
  for (std::thread& th : receivers) th.join();
  EXPECT_EQ(unwound.load(), kReceivers);
}

TEST_F(MailboxFixture, WildcardCounterContentionIsExact) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 250;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const tag_t tag = static_cast<tag_t>(t * kPerThread + i);
        box.deliver(make_env(1, 2, tag, {i}));
        int out = 0;
        // A wildcard-source receive: bumps wildcard_recvs_ on the fast
        // path while the other threads do the same.
        (void)box.recv(1, any_source, tag,
                       std::as_writable_bytes(std::span<int>(&out, 1)),
                       Deadline::max());
      }
    });
  }
  for (std::thread& th : workers) th.join();
  EXPECT_EQ(box.wildcard_recvs(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(box.queued(), 0u);
}
