// Extended substrate surface: exscan, reduce_scatter_block, waitany /
// test_all, sendrecv_replace — plus stress tests (message storms, deep
// communicator trees) that shake out races in the mailbox/context layer.
#include <gtest/gtest.h>

#include <numeric>

#include "src/minimpi/collectives.hpp"
#include "src/minimpi/launcher.hpp"
#include "src/util/rng.hpp"

using namespace minimpi;

namespace {
void run_ok(int nprocs, std::function<void(const Comm&)> entry) {
  JobOptions options;
  options.recv_timeout = std::chrono::seconds(60);
  const JobReport report = run_spmd(
      nprocs, [&](const Comm& world, const ExecEnv&) { entry(world); },
      options);
  ASSERT_TRUE(report.ok) << report.abort_reason << " / "
                         << report.first_error();
}
}  // namespace

class ExtrasSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Sizes, ExtrasSweep, ::testing::Values(1, 2, 3, 5, 8));

TEST_P(ExtrasSweep, ExclusiveScan) {
  run_ok(GetParam(), [](const Comm& world) {
    const int below = exscan(world, world.rank() + 1, op::Sum{}, 0);
    // Sum of 1..r below me.
    EXPECT_EQ(below, world.rank() * (world.rank() + 1) / 2);
  });
}

TEST_P(ExtrasSweep, ExscanConsistentWithScan) {
  run_ok(GetParam(), [](const Comm& world) {
    const int mine = (world.rank() * 13) % 7 + 1;
    const int inclusive = scan(world, mine, op::Sum{});
    const int exclusive = exscan(world, mine, op::Sum{}, 0);
    EXPECT_EQ(inclusive, exclusive + mine);
  });
}

TEST_P(ExtrasSweep, ReduceScatterBlock) {
  const int n = GetParam();
  run_ok(n, [n](const Comm& world) {
    // values[r*2 + k] = contribution of my rank to rank r's block.
    std::vector<long> values(static_cast<std::size_t>(2 * n));
    for (int r = 0; r < n; ++r) {
      values[static_cast<std::size_t>(2 * r)] = world.rank() + r;
      values[static_cast<std::size_t>(2 * r + 1)] = world.rank() * r;
    }
    const std::vector<long> mine =
        reduce_scatter_block(world, std::span<const long>(values), 2,
                             op::Sum{});
    ASSERT_EQ(mine.size(), 2u);
    long expect0 = 0, expect1 = 0;
    for (int s = 0; s < n; ++s) {
      expect0 += s + world.rank();
      expect1 += s * world.rank();
    }
    EXPECT_EQ(mine[0], expect0);
    EXPECT_EQ(mine[1], expect1);
  });
}

TEST(Extras, SendrecvReplaceRing) {
  run_ok(4, [](const Comm& world) {
    std::vector<int> buf{world.rank() * 10, world.rank() * 10 + 1};
    const rank_t next = (world.rank() + 1) % world.size();
    const rank_t prev = (world.rank() + world.size() - 1) % world.size();
    const Status st = world.sendrecv_replace(std::span<int>(buf), next, 4,
                                             prev, 4);
    EXPECT_EQ(st.source, prev);
    EXPECT_EQ(buf[0], prev * 10);
    EXPECT_EQ(buf[1], prev * 10 + 1);
  });
}

TEST(Extras, WaitAnyReturnsFirstCompleted) {
  run_ok(3, [](const Comm& world) {
    if (world.rank() == 0) {
      int from1 = 0, from2 = 0;
      std::vector<Request> reqs;
      reqs.push_back(world.irecv(std::span<int>(&from1, 1), 1, 0));
      reqs.push_back(world.irecv(std::span<int>(&from2, 1), 2, 0));
      Status st;
      // Rank 2 sends immediately; rank 1 only after we release it, so the
      // first completion is deterministically index 1.
      const std::size_t first = Request::wait_any(reqs, &st);
      EXPECT_EQ(first, 1u);
      EXPECT_EQ(st.source, 2);
      EXPECT_EQ(from2, 22);
      world.send(1, 1, 9);  // release rank 1
      const std::size_t second = Request::wait_any(reqs, &st);
      EXPECT_EQ(second, 0u);
      EXPECT_EQ(from1, 11);
      EXPECT_THROW((void)Request::wait_any(reqs), Error);
    } else if (world.rank() == 1) {
      int go = 0;
      world.recv(go, 0, 9);
      world.send(11, 0, 0);
    } else {
      world.send(22, 0, 0);
    }
  });
}

TEST(Extras, TestAll) {
  run_ok(2, [](const Comm& world) {
    if (world.rank() == 0) {
      std::vector<int> bufs(3);
      std::vector<Request> reqs;
      for (int i = 0; i < 3; ++i) {
        reqs.push_back(world.irecv(
            std::span<int>(&bufs[static_cast<std::size_t>(i)], 1), 1, i));
      }
      EXPECT_FALSE(Request::test_all(reqs));
      world.send(1, 1, 9);  // release the sender
      while (!Request::test_all(reqs)) std::this_thread::yield();
      Request::wait_all(reqs);
      EXPECT_EQ(bufs[2], 200);
    } else {
      int go = 0;
      world.recv(go, 0, 9);
      world.send(0, 0, 0);
      world.send(100, 0, 1);
      world.send(200, 0, 2);
    }
  });
}

// ---------------------------------------------------------------------------
// Communication statistics.
// ---------------------------------------------------------------------------

TEST(CommStats, CountsMessagesAndBytesExactly) {
  JobOptions options;
  options.recv_timeout = std::chrono::seconds(30);
  const JobReport report = run_spmd(
      2,
      [](const Comm& world, const ExecEnv&) {
        if (world.rank() == 0) {
          const std::vector<double> payload(10, 1.0);  // 80 bytes
          world.send(std::span<const double>(payload), 1, 0);
          world.send(3, 1, 1);  // 4 bytes
        } else {
          std::vector<double> buf(10);
          world.recv(std::span<double>(buf), 0, 0);
          int v;
          world.recv(v, 0, 1);
        }
      },
      options);
  ASSERT_TRUE(report.ok) << report.abort_reason;
  EXPECT_EQ(report.stats.messages, 2u);
  EXPECT_EQ(report.stats.payload_bytes, 84u);
  EXPECT_EQ(report.stats.contexts_allocated, 0u);
}

TEST(CommStats, SplitAllocatesOneContext) {
  JobOptions options;
  options.recv_timeout = std::chrono::seconds(30);
  const JobReport report = run_spmd(
      4,
      [](const Comm& world, const ExecEnv&) {
        const Comm sub = world.split(world.rank() % 2, world.rank());
        (void)sub;
      },
      options);
  ASSERT_TRUE(report.ok) << report.abort_reason;
  // One split = one fresh context job-wide, plus the split's control
  // messages (3 gathers + 3 replies at 4 ranks).
  EXPECT_EQ(report.stats.contexts_allocated, 1u);
  EXPECT_EQ(report.stats.messages, 6u);
}

TEST(CommStats, QuietJobHasZeroTraffic) {
  const JobReport report =
      run_spmd(3, [](const Comm&, const ExecEnv&) {});
  ASSERT_TRUE(report.ok);
  EXPECT_EQ(report.stats.messages, 0u);
  EXPECT_EQ(report.stats.payload_bytes, 0u);
}

// ---------------------------------------------------------------------------
// Stress tests.
// ---------------------------------------------------------------------------

TEST(Stress, RandomMessageStormAllToAll) {
  // Every rank sends a random number of random-size messages to random
  // peers (announced first), then receives exactly what it was promised.
  run_ok(6, [](const Comm& world) {
    const int n = world.size();
    mph::util::Rng rng(4242 + static_cast<unsigned>(world.rank()));
    std::vector<int> sends_to(static_cast<std::size_t>(n), 0);
    const int total_sends = static_cast<int>(rng.range(10, 40));
    std::vector<std::pair<int, int>> plan;  // (dest, payload words)
    for (int i = 0; i < total_sends; ++i) {
      const int dest = static_cast<int>(rng.below(static_cast<unsigned>(n)));
      const int words = static_cast<int>(rng.range(1, 64));
      plan.emplace_back(dest, words);
      ++sends_to[static_cast<std::size_t>(dest)];
    }
    // Announce counts with an alltoall.
    const std::vector<int> expect =
        alltoall(world, std::span<const int>(sends_to), 1);

    // Fire all messages; payload word = dest ^ words for verification.
    for (const auto& [dest, words] : plan) {
      std::vector<int> payload(static_cast<std::size_t>(words),
                               dest ^ words);
      world.send(std::span<const int>(payload), dest, 77);
    }
    // Drain: total expected messages, any source, any order.
    int expected_total = 0;
    for (int c : expect) expected_total += c;
    for (int i = 0; i < expected_total; ++i) {
      Status st;
      const std::vector<int> got = world.recv_vector<int>(any_source, 77, &st);
      ASSERT_FALSE(got.empty());
      EXPECT_EQ(got.front(),
                world.rank() ^ static_cast<int>(got.size()));
      for (int v : got) EXPECT_EQ(v, got.front());
    }
    // Nothing left over.
    barrier(world);
    EXPECT_FALSE(world.iprobe(any_source, any_tag).has_value());
  });
}

TEST(Stress, DeepSplitTreeIsolatesAllLevels) {
  // Repeatedly halve the world; at each level run a collective on the
  // current sub-communicator and a p2p exchange, verifying no cross-talk.
  run_ok(8, [](const Comm& world) {
    Comm comm = world;
    int level = 0;
    while (comm.size() > 1) {
      const int half = comm.rank() < comm.size() / 2 ? 0 : 1;
      const Comm child = comm.split(half, comm.rank());
      const int child_sum = allreduce_value(child, 1, op::Sum{});
      EXPECT_EQ(child_sum, child.size());
      // One message per level between child rank 0 and the last rank.
      if (child.size() > 1) {
        if (child.rank() == 0) child.send(level, child.size() - 1, level);
        if (child.rank() == child.size() - 1) {
          int v = -1;
          child.recv(v, 0, level);
          EXPECT_EQ(v, level);
        }
      }
      comm = child;
      ++level;
    }
    EXPECT_EQ(level, 3);  // log2(8)
  });
}

TEST(Stress, ManySimultaneousCommunicators) {
  // 32 communicators alive at once over the same ranks; traffic on each
  // must stay isolated (contexts do the separation).
  run_ok(4, [](const Comm& world) {
    std::vector<Comm> comms;
    for (int i = 0; i < 32; ++i) comms.push_back(world.dup());
    for (int i = 0; i < 32; ++i) {
      if (world.rank() == 0) comms[static_cast<std::size_t>(i)].send(i, 1, 0);
    }
    if (world.rank() == 1) {
      // Receive in reverse creation order: contexts, not arrival order,
      // must route each message.
      for (int i = 31; i >= 0; --i) {
        int v = -1;
        comms[static_cast<std::size_t>(i)].recv(v, 0, 0);
        EXPECT_EQ(v, i);
      }
    }
    barrier(world);
  });
}

TEST(Stress, ConcurrentIndependentJobs) {
  // Two whole MPMD jobs running simultaneously in one process (e.g. a test
  // harness or a job-in-job driver): Jobs share no state, so nothing may
  // cross.  Each job does distinctive collective work and checks it.
  auto run_job = [](int flavor) {
    JobOptions options;
    options.recv_timeout = std::chrono::seconds(60);
    const JobReport report = run_spmd(
        4,
        [flavor](const Comm& world, const ExecEnv&) {
          for (int i = 0; i < 25; ++i) {
            const int sum =
                allreduce_value(world, flavor * 1000 + world.rank(),
                                op::Sum{});
            ASSERT_EQ(sum, 4 * flavor * 1000 + 6);
          }
        },
        options);
    ASSERT_TRUE(report.ok) << report.abort_reason;
  };
  std::thread other([&] { run_job(2); });
  run_job(1);
  other.join();
}

TEST(Stress, CollectiveHammering) {
  // Many back-to-back mixed collectives; any tag/sequence bug deadlocks or
  // corrupts.
  run_ok(5, [](const Comm& world) {
    mph::util::Rng rng(99);  // same seed everywhere: same op sequence
    for (int i = 0; i < 60; ++i) {
      switch (rng.below(5)) {
        case 0: {
          int v = world.rank() == i % world.size() ? i : -1;
          bcast_value(world, v, i % world.size());
          EXPECT_EQ(v, i);
          break;
        }
        case 1:
          EXPECT_EQ(allreduce_value(world, 1, op::Sum{}), world.size());
          break;
        case 2: {
          const auto all = allgather_value(world, world.rank());
          EXPECT_EQ(all.back(), world.size() - 1);
          break;
        }
        case 3:
          barrier(world);
          break;
        case 4: {
          const int prefix = scan(world, 1, op::Sum{});
          EXPECT_EQ(prefix, world.rank() + 1);
          break;
        }
      }
    }
  });
}
