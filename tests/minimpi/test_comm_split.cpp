// Communicator creation: split (with keys, undefined, overlap-by-repetition),
// dup isolation, create from rank lists, ordered world creation.
#include <gtest/gtest.h>

#include <vector>

#include "src/minimpi/collectives.hpp"
#include "src/minimpi/comm.hpp"
#include "src/minimpi/launcher.hpp"

using namespace minimpi;

namespace {
void run_ok(int nprocs, std::function<void(const Comm&)> entry) {
  JobOptions options;
  options.recv_timeout = std::chrono::seconds(30);
  const JobReport report = run_spmd(
      nprocs, [&](const Comm& world, const ExecEnv&) { entry(world); },
      options);
  ASSERT_TRUE(report.ok) << report.abort_reason << " / "
                         << report.first_error();
}
}  // namespace

TEST(CommSplit, EvenOddPartition) {
  run_ok(6, [](const Comm& world) {
    const Comm sub = world.split(world.rank() % 2, world.rank());
    ASSERT_TRUE(sub.valid());
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.rank(), world.rank() / 2);
    // Global ranks of my subgroup share my parity.
    for (rank_t g : sub.group()) {
      EXPECT_EQ(g % 2, world.rank() % 2);
    }
  });
}

TEST(CommSplit, KeyControlsOrdering) {
  run_ok(4, [](const Comm& world) {
    // Reverse the ordering via descending keys.
    const Comm sub = world.split(0, world.size() - world.rank());
    EXPECT_EQ(sub.rank(), world.size() - 1 - world.rank());
  });
}

TEST(CommSplit, EqualKeysFallBackToParentOrder) {
  run_ok(4, [](const Comm& world) {
    const Comm sub = world.split(0, /*key=*/7);
    EXPECT_EQ(sub.rank(), world.rank());
  });
}

TEST(CommSplit, UndefinedYieldsNullComm) {
  run_ok(4, [](const Comm& world) {
    const int color = world.rank() == 0 ? undefined : 1;
    const Comm sub = world.split(color, 0);
    if (world.rank() == 0) {
      EXPECT_FALSE(sub.valid());
    } else {
      ASSERT_TRUE(sub.valid());
      EXPECT_EQ(sub.size(), 3);
    }
  });
}

TEST(CommSplit, TrafficIsolatedFromParent) {
  run_ok(4, [](const Comm& world) {
    const Comm sub = world.split(world.rank() / 2, world.rank());
    // Same local rank numbers exist in both halves; a message in one
    // sub-communicator must never be received in the other or in world.
    if (sub.rank() == 0) {
      sub.send(world.rank(), 1, 0);
    } else {
      int v = -1;
      sub.recv(v, 0, 0);
      EXPECT_EQ(v, world.rank() - 1);  // partner is the even rank just below
    }
    EXPECT_FALSE(world.iprobe(any_source, any_tag).has_value());
  });
}

TEST(CommSplit, NestedSplits) {
  run_ok(8, [](const Comm& world) {
    const Comm half = world.split(world.rank() / 4, world.rank());
    const Comm quarter = half.split(half.rank() / 2, half.rank());
    EXPECT_EQ(quarter.size(), 2);
    const int expected_leader = (world.rank() / 2) * 2;
    EXPECT_EQ(quarter.group()[0], expected_leader);
  });
}

TEST(CommSplit, RepeatedSplitsCreateOverlappingViews) {
  // The MPH §6.2 pattern: overlapping component communicators are created
  // by repeated split calls.  Both views coexist and stay isolated.
  run_ok(4, [](const Comm& world) {
    // View A: ranks 0..2, view B: ranks 1..3 (overlap on 1,2).
    const Comm a = world.split(world.rank() <= 2 ? 1 : undefined, world.rank());
    const Comm b = world.split(world.rank() >= 1 ? 1 : undefined, world.rank());
    if (a.valid() && b.valid()) {
      EXPECT_EQ(a.size(), 3);
      EXPECT_EQ(b.size(), 3);
      EXPECT_NE(a.context(), b.context());
    }
    if (world.rank() == 0) {
      ASSERT_TRUE(a.valid());
      EXPECT_FALSE(b.valid());
      a.send(100, 1, 0);
    }
    if (world.rank() == 1) {
      int v = -1;
      a.recv(v, 0, 0);
      EXPECT_EQ(v, 100);
      b.send(200, 2, 0);  // b-local 2 is world rank 3
    }
    if (world.rank() == 3) {
      int v = -1;
      b.recv(v, 0, 0);
      EXPECT_EQ(v, 200);
    }
  });
}

TEST(CommDup, FreshContextSameGroup) {
  run_ok(3, [](const Comm& world) {
    const Comm copy = world.dup();
    EXPECT_EQ(copy.size(), world.size());
    EXPECT_EQ(copy.rank(), world.rank());
    EXPECT_NE(copy.context(), world.context());
    // Message sent on dup is invisible to world.
    if (world.rank() == 0) copy.send(1, 1, 0);
    if (world.rank() == 1) {
      EXPECT_FALSE(world.iprobe(any_source, any_tag).has_value());
      int v;
      copy.recv(v, 0, 0);
    }
  });
}

TEST(CommCreate, ExplicitOrderedGroup) {
  run_ok(5, [](const Comm& world) {
    // New communicator with ranks {3, 1, 4} in that order.
    const std::vector<rank_t> members{3, 1, 4};
    const Comm sub = world.create(std::span<const rank_t>(members));
    if (world.rank() == 3) {
      ASSERT_TRUE(sub.valid());
      EXPECT_EQ(sub.rank(), 0);
    } else if (world.rank() == 1) {
      ASSERT_TRUE(sub.valid());
      EXPECT_EQ(sub.rank(), 1);
    } else if (world.rank() == 4) {
      ASSERT_TRUE(sub.valid());
      EXPECT_EQ(sub.rank(), 2);
    } else {
      EXPECT_FALSE(sub.valid());
    }
  });
}

TEST(CommCreateOrderedWorld, OnlyMembersParticipate) {
  run_ok(6, [](const Comm& world) {
    // Ranks {4, 0, 2} build a communicator without involving 1, 3, 5.
    const std::vector<rank_t> members{4, 0, 2};
    const bool mine = world.rank() == 4 || world.rank() == 0 || world.rank() == 2;
    if (mine) {
      const Comm joint = world.create_ordered_world(std::span<const rank_t>(members));
      ASSERT_TRUE(joint.valid());
      EXPECT_EQ(joint.size(), 3);
      EXPECT_EQ(joint.group()[0], 4);
      // Exercise the new communicator: leader broadcasts a value.
      int v = joint.rank() == 0 ? 314 : 0;
      bcast_value(joint, v, 0);
      EXPECT_EQ(v, 314);
    }
    // Non-members do nothing — and must not be required to participate.
  });
}

TEST(CommCreateOrderedWorld, TwoConcurrentDisjointJoins) {
  run_ok(4, [](const Comm& world) {
    const std::vector<rank_t> left{0, 1};
    const std::vector<rank_t> right{2, 3};
    const auto& mine = world.rank() < 2 ? left : right;
    const Comm joint = world.create_ordered_world(std::span<const rank_t>(mine));
    ASSERT_TRUE(joint.valid());
    EXPECT_EQ(joint.size(), 2);
    const int expect = world.rank() < 2 ? 1 : 2;
    int v = joint.rank() == 0 ? expect : 0;
    bcast_value(joint, v, 0);
    EXPECT_EQ(v, expect);
  });
}

TEST(CommSplit, SingleRankWorld) {
  run_ok(1, [](const Comm& world) {
    const Comm sub = world.split(0, 0);
    ASSERT_TRUE(sub.valid());
    EXPECT_EQ(sub.size(), 1);
    const Comm none = world.split(undefined, 0);
    EXPECT_FALSE(none.valid());
  });
}

TEST(Comm, RankTranslation) {
  run_ok(4, [](const Comm& world) {
    const Comm odd = world.split(world.rank() % 2 == 1 ? 1 : undefined,
                                 world.rank());
    if (odd.valid()) {
      EXPECT_EQ(odd.global_of(0), 1);
      EXPECT_EQ(odd.global_of(1), 3);
      EXPECT_EQ(odd.local_of(3), 1);
      EXPECT_EQ(odd.local_of(0), -1);  // world rank 0 is not a member
    }
  });
}

TEST(Comm, NullCommThrows) {
  const Comm null;
  EXPECT_FALSE(null.valid());
  EXPECT_THROW((void)null.rank(), Error);
  EXPECT_THROW((void)null.size(), Error);
  EXPECT_THROW(null.send(1, 0, 0), Error);
}
