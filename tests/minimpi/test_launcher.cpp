// MPMD launcher semantics: contiguous non-overlapping rank assignment,
// per-executable environments, failure propagation, job abort behaviour.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>

#include "src/minimpi/collectives.hpp"
#include "src/minimpi/launcher.hpp"

using namespace minimpi;

namespace {
JobOptions fast_options() {
  JobOptions options;
  options.recv_timeout = std::chrono::seconds(30);
  return options;
}
}  // namespace

TEST(Launcher, RanksAssignedContiguouslyInCommandFileOrder) {
  std::mutex mutex;
  std::map<std::string, std::vector<rank_t>> ranks_by_exec;
  const JobReport report = run_mpmd(
      {
          ExecSpec{"atm", 3,
                   [&](const Comm& world, const ExecEnv& env) {
                     const std::lock_guard<std::mutex> lock(mutex);
                     ranks_by_exec[env.exec_name].push_back(world.rank());
                   },
                   {}},
          ExecSpec{"ocn", 2,
                   [&](const Comm& world, const ExecEnv& env) {
                     const std::lock_guard<std::mutex> lock(mutex);
                     ranks_by_exec[env.exec_name].push_back(world.rank());
                   },
                   {}},
          ExecSpec{"cpl", 1,
                   [&](const Comm& world, const ExecEnv& env) {
                     const std::lock_guard<std::mutex> lock(mutex);
                     ranks_by_exec[env.exec_name].push_back(world.rank());
                   },
                   {}},
      },
      fast_options());
  ASSERT_TRUE(report.ok) << report.abort_reason;

  auto sorted = [&](const std::string& name) {
    auto v = ranks_by_exec[name];
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(sorted("atm"), (std::vector<rank_t>{0, 1, 2}));
  EXPECT_EQ(sorted("ocn"), (std::vector<rank_t>{3, 4}));
  EXPECT_EQ(sorted("cpl"), (std::vector<rank_t>{5}));
}

TEST(Launcher, AllExecutablesShareOneWorld) {
  // Paper §6: "all executables share the same MPI_Comm_World".
  const JobReport report = run_mpmd(
      {
          ExecSpec{"a", 2,
                   [](const Comm& world, const ExecEnv&) {
                     EXPECT_EQ(world.size(), 5);
                     const int sum = allreduce_value(world, 1, op::Sum{});
                     EXPECT_EQ(sum, 5);
                   },
                   {}},
          ExecSpec{"b", 3,
                   [](const Comm& world, const ExecEnv&) {
                     EXPECT_EQ(world.size(), 5);
                     const int sum = allreduce_value(world, 1, op::Sum{});
                     EXPECT_EQ(sum, 5);
                   },
                   {}},
      },
      fast_options());
  ASSERT_TRUE(report.ok) << report.abort_reason;
}

TEST(Launcher, ExecEnvCarriesNameIndexAndArgs) {
  const JobReport report = run_mpmd(
      {
          ExecSpec{"first", 1,
                   [](const Comm&, const ExecEnv& env) {
                     EXPECT_EQ(env.exec_index, 0);
                     EXPECT_EQ(env.exec_name, "first");
                     EXPECT_TRUE(env.args.empty());
                   },
                   {}},
          ExecSpec{"second", 2,
                   [](const Comm& world, const ExecEnv& env) {
                     EXPECT_EQ(env.exec_index, 1);
                     EXPECT_EQ(env.exec_name, "second");
                     ASSERT_EQ(env.args.size(), 2u);
                     EXPECT_EQ(env.args[0], "-in");
                     EXPECT_EQ(env.args[1], "ocean.nml");
                     EXPECT_EQ(env.world_rank, world.rank());
                   },
                   {"-in", "ocean.nml"}},
      },
      fast_options());
  ASSERT_TRUE(report.ok) << report.abort_reason;
}

TEST(Launcher, CrossExecutableMessaging) {
  // The situation MPH exists to manage: executables can address each other
  // through world ranks even though neither knows the other's layout.
  const JobReport report = run_mpmd(
      {
          ExecSpec{"sender", 1,
                   [](const Comm& world, const ExecEnv&) {
                     world.send(3.25, /*dest=*/1, /*tag=*/0);
                   },
                   {}},
          ExecSpec{"receiver", 1,
                   [](const Comm& world, const ExecEnv&) {
                     double v = 0;
                     world.recv(v, 0, 0);
                     EXPECT_EQ(v, 3.25);
                   },
                   {}},
      },
      fast_options());
  ASSERT_TRUE(report.ok) << report.abort_reason;
}

TEST(Launcher, FailureInOneRankAbortsJob) {
  const JobReport report = run_mpmd(
      {
          ExecSpec{"bad", 1,
                   [](const Comm&, const ExecEnv&) {
                     throw std::runtime_error("synthetic component failure");
                   },
                   {}},
          ExecSpec{"blocked", 1,
                   [](const Comm& world, const ExecEnv&) {
                     int v = 0;
                     world.recv(v, 0, 0);  // never satisfied
                   },
                   {}},
      },
      fast_options());
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.abort_reason.find("synthetic component failure"),
            std::string::npos);
  // Root cause is ordered before collateral AbortedError failures.
  ASSERT_FALSE(report.failures.empty());
  EXPECT_EQ(report.failures.front().what, "synthetic component failure");
}

TEST(Launcher, RejectsEmptyAndInvalidSpecs) {
  EXPECT_THROW(run_mpmd({}), Error);
  EXPECT_THROW(run_mpmd({ExecSpec{"x", 0, [](const Comm&, const ExecEnv&) {}, {}}}),
               Error);
  EXPECT_THROW(run_mpmd({ExecSpec{"x", -2, [](const Comm&, const ExecEnv&) {}, {}}}),
               Error);
  EXPECT_THROW(run_mpmd({ExecSpec{"x", 1, nullptr, {}}}), Error);
}

TEST(Launcher, ManySmallExecutables) {
  // One rank per executable, eight executables: the SCME shape.
  std::vector<ExecSpec> specs;
  std::atomic<int> visited{0};
  for (int i = 0; i < 8; ++i) {
    specs.push_back(ExecSpec{"exe" + std::to_string(i), 1,
                             [&visited](const Comm& world, const ExecEnv& env) {
                               EXPECT_EQ(world.rank(), env.exec_index);
                               visited.fetch_add(1);
                             },
                             {}});
  }
  const JobReport report = run_mpmd(specs, fast_options());
  ASSERT_TRUE(report.ok) << report.abort_reason;
  EXPECT_EQ(visited.load(), 8);
}

TEST(Launcher, JobsAreIndependent) {
  // Two jobs run back to back: contexts and mailboxes must not leak across.
  for (int round = 0; round < 2; ++round) {
    const JobReport report = run_spmd(
        3,
        [round](const Comm& world, const ExecEnv&) {
          const int sum = allreduce_value(world, round * 10 + world.rank(),
                                          op::Sum{});
          EXPECT_EQ(sum, round * 30 + 3);
        },
        fast_options());
    ASSERT_TRUE(report.ok) << report.abort_reason;
  }
}
