// Collective correctness across rank counts, including non-power-of-two
// sizes and random data checked against sequential references.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "src/minimpi/collectives.hpp"
#include "src/minimpi/launcher.hpp"
#include "src/util/rng.hpp"

using namespace minimpi;

namespace {
void run_ok(int nprocs, std::function<void(const Comm&)> entry) {
  JobOptions options;
  options.recv_timeout = std::chrono::seconds(60);
  const JobReport report = run_spmd(
      nprocs, [&](const Comm& world, const ExecEnv&) { entry(world); },
      options);
  ASSERT_TRUE(report.ok) << report.abort_reason << " / "
                         << report.first_error();
}
}  // namespace

/// Sweep collective behaviour across communicator sizes, deliberately
/// including 1, primes, and non-powers-of-two (tree edge cases).
class CollectiveSweep : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Sizes, CollectiveSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 16));

TEST_P(CollectiveSweep, BarrierCompletes) {
  run_ok(GetParam(), [](const Comm& world) {
    for (int i = 0; i < 3; ++i) barrier(world);
  });
}

TEST_P(CollectiveSweep, BcastFromEveryRoot) {
  const int n = GetParam();
  run_ok(n, [n](const Comm& world) {
    for (int root = 0; root < n; ++root) {
      std::vector<int> data(5, world.rank() == root ? root + 1 : -1);
      bcast(world, std::span<int>(data), root);
      for (int v : data) EXPECT_EQ(v, root + 1);
    }
  });
}

TEST_P(CollectiveSweep, ReduceSumMatchesReference) {
  const int n = GetParam();
  run_ok(n, [n](const Comm& world) {
    mph::util::Rng rng(900 + static_cast<unsigned>(world.rank()));
    std::vector<long> mine(8);
    for (auto& v : mine) v = rng.range(-100, 100);
    std::vector<long> result;
    reduce(world, std::span<const long>(mine), result, op::Sum{}, 0);

    // Reference: gather everything and fold sequentially.
    const std::vector<long> all = gather(world, std::span<const long>(mine), 0);
    if (world.rank() == 0) {
      ASSERT_EQ(result.size(), 8u);
      for (std::size_t i = 0; i < 8; ++i) {
        long expect = 0;
        for (int r = 0; r < n; ++r) {
          expect += all[static_cast<std::size_t>(r) * 8 + i];
        }
        EXPECT_EQ(result[i], expect) << "element " << i;
      }
    } else {
      EXPECT_TRUE(result.empty());
    }
  });
}

TEST_P(CollectiveSweep, AllreduceMinMax) {
  const int n = GetParam();
  run_ok(n, [n](const Comm& world) {
    const int mine = (world.rank() * 37) % n;  // a permutation-ish spread
    int expect_max = 0;
    for (int r = 0; r < n; ++r) expect_max = std::max(expect_max, (r * 37) % n);
    EXPECT_EQ(allreduce_value(world, mine, op::Max{}), expect_max);
    EXPECT_EQ(allreduce_value(world, world.rank() + 1, op::Min{}), 1);
    EXPECT_EQ(allreduce_value(world, world.rank(), op::Sum{}),
              n * (n - 1) / 2);
  });
}

TEST_P(CollectiveSweep, GatherOrdersByRank) {
  const int n = GetParam();
  run_ok(n, [n](const Comm& world) {
    const std::vector<int> mine{world.rank() * 2, world.rank() * 2 + 1};
    const std::vector<int> all = gather(world, std::span<const int>(mine), 0);
    if (world.rank() == 0) {
      ASSERT_EQ(all.size(), static_cast<std::size_t>(2 * n));
      for (int i = 0; i < 2 * n; ++i) EXPECT_EQ(all[static_cast<std::size_t>(i)], i);
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST_P(CollectiveSweep, AllgatherMatchesGatherEverywhere) {
  const int n = GetParam();
  run_ok(n, [n](const Comm& world) {
    const std::vector<double> mine{world.rank() + 0.5};
    const std::vector<double> all =
        allgather(world, std::span<const double>(mine));
    ASSERT_EQ(all.size(), static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(r)], r + 0.5);
    }
  });
}

TEST_P(CollectiveSweep, AllgathervVariableBlocks) {
  const int n = GetParam();
  run_ok(n, [n](const Comm& world) {
    // Rank r contributes r+1 copies of the value r.
    const std::vector<int> mine(static_cast<std::size_t>(world.rank()) + 1,
                                world.rank());
    std::vector<std::size_t> counts;
    const std::vector<int> all =
        allgatherv(world, std::span<const int>(mine), &counts);
    ASSERT_EQ(counts.size(), static_cast<std::size_t>(n));
    std::size_t offset = 0;
    for (int r = 0; r < n; ++r) {
      ASSERT_EQ(counts[static_cast<std::size_t>(r)],
                static_cast<std::size_t>(r) + 1);
      for (std::size_t i = 0; i <= static_cast<std::size_t>(r); ++i) {
        EXPECT_EQ(all[offset + i], r);
      }
      offset += static_cast<std::size_t>(r) + 1;
    }
    EXPECT_EQ(all.size(), offset);
  });
}

TEST_P(CollectiveSweep, ScatterDistributesBlocks) {
  const int n = GetParam();
  run_ok(n, [n](const Comm& world) {
    std::vector<int> everything;
    if (world.rank() == 0) {
      everything.resize(static_cast<std::size_t>(3 * n));
      std::iota(everything.begin(), everything.end(), 0);
    }
    const std::vector<int> mine =
        scatter(world, std::span<const int>(everything), 3, 0);
    ASSERT_EQ(mine.size(), 3u);
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(mine[static_cast<std::size_t>(i)], world.rank() * 3 + i);
    }
  });
}

TEST_P(CollectiveSweep, AlltoallTransposes) {
  const int n = GetParam();
  run_ok(n, [n](const Comm& world) {
    // values[dest] = 100*me + dest; after alltoall, result[src] = 100*src + me.
    std::vector<int> values(static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d) {
      values[static_cast<std::size_t>(d)] = 100 * world.rank() + d;
    }
    const std::vector<int> result =
        alltoall(world, std::span<const int>(values), 1);
    ASSERT_EQ(result.size(), static_cast<std::size_t>(n));
    for (int s = 0; s < n; ++s) {
      EXPECT_EQ(result[static_cast<std::size_t>(s)], 100 * s + world.rank());
    }
  });
}

TEST_P(CollectiveSweep, InclusiveScan) {
  const int n = GetParam();
  run_ok(n, [](const Comm& world) {
    const int mine = world.rank() + 1;
    const int prefix = scan(world, mine, op::Sum{});
    EXPECT_EQ(prefix, (world.rank() + 1) * (world.rank() + 2) / 2);
  });
}

TEST_P(CollectiveSweep, StringBroadcastAndAllgather) {
  const int n = GetParam();
  run_ok(n, [n](const Comm& world) {
    std::string text =
        world.rank() == 0 ? "BEGIN\natmosphere\nocean\nEND\n" : "";
    bcast_string(world, text, 0);
    EXPECT_EQ(text, "BEGIN\natmosphere\nocean\nEND\n");

    const std::string mine = "comp" + std::to_string(world.rank());
    const std::vector<std::string> all = allgather_strings(world, mine);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)], "comp" + std::to_string(r));
    }
  });
}

TEST(Collectives, MinLocFindsOwner) {
  run_ok(5, [](const Comm& world) {
    const op::ValueLoc<double> mine{
        (world.rank() == 3) ? -1.0 : static_cast<double>(world.rank()),
        world.rank()};
    const auto best = allreduce_value(world, mine, op::MinLoc{});
    EXPECT_DOUBLE_EQ(best.value, -1.0);
    EXPECT_EQ(best.location, 3);
  });
}

TEST(Collectives, MaxLocTieBreaksLowestRank) {
  run_ok(4, [](const Comm& world) {
    const op::ValueLoc<int> mine{7, world.rank()};  // all equal
    const auto best = allreduce_value(world, mine, op::MaxLoc{});
    EXPECT_EQ(best.value, 7);
    EXPECT_EQ(best.location, 0);
  });
}

TEST(Collectives, EmptyBcastBytes) {
  run_ok(3, [](const Comm& world) {
    std::vector<std::byte> payload;
    if (world.rank() == 0) payload.clear();
    bcast_bytes(world, payload, 0);
    EXPECT_TRUE(payload.empty());
  });
}

TEST(Collectives, SkewToleranceConsecutiveCollectives) {
  // Back-to-back collectives on the same communicator must not cross-match
  // even when ranks proceed at very different speeds.
  run_ok(4, [](const Comm& world) {
    for (int iter = 0; iter < 20; ++iter) {
      int v = world.rank() == (iter % 4) ? iter : -1;
      bcast_value(world, v, iter % 4);
      EXPECT_EQ(v, iter);
      const int total = allreduce_value(world, 1, op::Sum{});
      EXPECT_EQ(total, 4);
    }
  });
}

TEST(Collectives, SubCommunicatorCollectives) {
  run_ok(6, [](const Comm& world) {
    const Comm sub = world.split(world.rank() % 2, world.rank());
    const int sum = allreduce_value(sub, world.rank(), op::Sum{});
    // Even ranks: 0+2+4 = 6; odd ranks: 1+3+5 = 9.
    EXPECT_EQ(sum, world.rank() % 2 == 0 ? 6 : 9);
  });
}
