// Conservative regridding: exactness on constants, conservation of the
// integral, refinement/coarsening, and 2-D tensor-product behaviour.
#include "src/coupler/regrid.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "src/util/rng.hpp"

using namespace mph::coupler;

namespace {
double integral(std::span<const double> cells) {
  // Uniform grid over [0,1): integral = mean.
  const double sum = std::accumulate(cells.begin(), cells.end(), 0.0);
  return sum / static_cast<double>(cells.size());
}
}  // namespace

TEST(Regrid1D, IdentityWhenSameSize) {
  const Regrid1D map(5, 5);
  const std::vector<double> src{1, 2, 3, 4, 5};
  std::vector<double> dst(5);
  map.apply(src, dst);
  for (int i = 0; i < 5; ++i) EXPECT_NEAR(dst[static_cast<std::size_t>(i)], src[static_cast<std::size_t>(i)], 1e-12);
}

TEST(Regrid1D, ConstantFieldPreserved) {
  const Regrid1D map(7, 3);
  const std::vector<double> src(7, 2.5);
  std::vector<double> dst(3);
  map.apply(src, dst);
  for (double v : dst) EXPECT_NEAR(v, 2.5, 1e-12);
}

TEST(Regrid1D, CoarseningAveragesExactMultiples) {
  const Regrid1D map(6, 3);  // each dst cell = mean of 2 src cells
  const std::vector<double> src{0, 2, 4, 6, 8, 10};
  std::vector<double> dst(3);
  map.apply(src, dst);
  EXPECT_NEAR(dst[0], 1.0, 1e-12);
  EXPECT_NEAR(dst[1], 5.0, 1e-12);
  EXPECT_NEAR(dst[2], 9.0, 1e-12);
}

TEST(Regrid1D, RefinementCopiesExactMultiples) {
  const Regrid1D map(3, 6);
  const std::vector<double> src{1, 2, 3};
  std::vector<double> dst(6);
  map.apply(src, dst);
  EXPECT_NEAR(dst[0], 1.0, 1e-12);
  EXPECT_NEAR(dst[1], 1.0, 1e-12);
  EXPECT_NEAR(dst[4], 3.0, 1e-12);
}

TEST(Regrid1D, ConservesIntegralOnRandomFields) {
  mph::util::Rng rng(31);
  for (const auto& [n_src, n_dst] :
       {std::pair{10, 7}, std::pair{7, 10}, std::pair{48, 36},
        std::pair{3, 17}}) {
    const Regrid1D map(n_src, n_dst);
    std::vector<double> src(static_cast<std::size_t>(n_src));
    for (auto& v : src) v = rng.uniform(-5, 5);
    std::vector<double> dst(static_cast<std::size_t>(n_dst));
    map.apply(src, dst);
    EXPECT_NEAR(integral(src), integral(dst), 1e-12)
        << n_src << " -> " << n_dst;
  }
}

TEST(Regrid1D, WeightsPartitionUnity) {
  // Every destination cell's weights must sum to 1 (consistency).
  const Regrid1D map(13, 5);
  std::vector<double> sums(5, 0.0);
  for (const Weight& w : map.weights()) {
    sums[static_cast<std::size_t>(w.dst)] += w.value;
  }
  for (double s : sums) EXPECT_NEAR(s, 1.0, 1e-12);
}

TEST(Regrid1D, InvalidInputs) {
  EXPECT_THROW(Regrid1D(0, 3), std::invalid_argument);
  const Regrid1D map(4, 2);
  std::vector<double> bad(3), dst(2);
  EXPECT_THROW(map.apply(bad, dst), std::invalid_argument);
}

TEST(Regrid2D, ConstantPreservedAcrossResolutions) {
  const Regrid2D map(8, 6, 5, 9);
  const std::vector<double> src(48, -3.25);
  std::vector<double> dst(45);
  map.apply(src, dst);
  for (double v : dst) EXPECT_NEAR(v, -3.25, 1e-12);
}

TEST(Regrid2D, ConservesIntegralOnRandomFields) {
  mph::util::Rng rng(32);
  const Regrid2D map(12, 8, 9, 11);
  std::vector<double> src(96);
  for (auto& v : src) v = rng.uniform(0, 10);
  std::vector<double> dst(99);
  map.apply(src, dst);
  EXPECT_NEAR(integral(src), integral(dst), 1e-12);
}

TEST(Regrid2D, SeparableStructure) {
  // A field varying only in x must stay constant along y after remap.
  const Regrid2D map(6, 4, 3, 8);
  std::vector<double> src(24);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 6; ++x) {
      src[static_cast<std::size_t>(y * 6 + x)] = x;
    }
  }
  std::vector<double> dst(24);
  map.apply(src, dst);
  for (int x = 0; x < 3; ++x) {
    for (int y = 1; y < 8; ++y) {
      EXPECT_NEAR(dst[static_cast<std::size_t>(y * 3 + x)],
                  dst[static_cast<std::size_t>(x)], 1e-12);
    }
  }
}

TEST(Regrid2D, RoundTripCoarseFineCoarseIsIdentityOnMultiples) {
  // Exact-multiple refinement then coarsening restores the original.
  const Regrid2D up(4, 4, 8, 8);
  const Regrid2D down(8, 8, 4, 4);
  mph::util::Rng rng(33);
  std::vector<double> src(16);
  for (auto& v : src) v = rng.uniform(-1, 1);
  std::vector<double> fine(64), back(16);
  up.apply(src, fine);
  down.apply(fine, back);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_NEAR(back[i], src[i], 1e-12);
}
