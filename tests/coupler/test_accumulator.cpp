// FieldAccumulator: interval time-averaging of coupling fields, and the
// multi-field Router transfer.
#include "src/coupler/accumulator.hpp"

#include <gtest/gtest.h>

#include "src/coupler/field.hpp"
#include "src/coupler/router.hpp"
#include "tests/mph/mph_test_util.hpp"

using namespace mph::coupler;

TEST(Accumulator, MeanOfSamples) {
  FieldAccumulator acc(3);
  const std::vector<double> a{1, 2, 3};
  const std::vector<double> b{3, 4, 5};
  acc.add(a);
  acc.add(b);
  EXPECT_EQ(acc.samples(), 2);
  const std::vector<double> mean = acc.mean();
  EXPECT_DOUBLE_EQ(mean[0], 2.0);
  EXPECT_DOUBLE_EQ(mean[1], 3.0);
  EXPECT_DOUBLE_EQ(mean[2], 4.0);
}

TEST(Accumulator, DrainResets) {
  FieldAccumulator acc(1);
  acc.add(std::vector<double>{10.0});
  EXPECT_DOUBLE_EQ(acc.drain()[0], 10.0);
  EXPECT_EQ(acc.samples(), 0);
  acc.add(std::vector<double>{4.0});
  EXPECT_DOUBLE_EQ(acc.mean()[0], 4.0);  // previous interval forgotten
}

TEST(Accumulator, SingleSampleIsIdentity) {
  FieldAccumulator acc(2);
  acc.add(std::vector<double>{7.5, -1.0});
  const auto mean = acc.mean();
  EXPECT_DOUBLE_EQ(mean[0], 7.5);
  EXPECT_DOUBLE_EQ(mean[1], -1.0);
}

TEST(Accumulator, Errors) {
  FieldAccumulator acc(2);
  EXPECT_THROW(acc.add(std::vector<double>{1.0}), std::invalid_argument);
  EXPECT_THROW((void)acc.mean(), std::logic_error);
}

TEST(Accumulator, ManyIntervalsStayExact) {
  FieldAccumulator acc(1);
  for (int interval = 0; interval < 5; ++interval) {
    for (int s = 0; s < 4; ++s) {
      acc.add(std::vector<double>{static_cast<double>(interval * 4 + s)});
    }
    const double mean = acc.drain()[0];
    EXPECT_DOUBLE_EQ(mean, interval * 4 + 1.5);
  }
}

// ---------------------------------------------------------------------------
// Router::transfer_many
// ---------------------------------------------------------------------------

TEST(TransferMany, ThreeFieldsOneMessagePerPeer) {
  using namespace mph;
  using namespace mph::testing;
  const std::string registry = "BEGIN\nsrc\ndst\nEND\n";
  const Decomp src = Decomp::block(12, 2);
  const Decomp dst = Decomp::cyclic(12, 2, 1);

  run_mph_ok(
      registry,
      {TestExec{{"src"}, "", 2,
                [&](Mph& h, const minimpi::Comm&) {
                  const minimpi::Comm joint = h.comm_join("src", "dst");
                  const Router r(joint, src, dst, Side::source);
                  Field f1(src, h.local_proc_id());
                  Field f2(src, h.local_proc_id());
                  Field f3(src, h.local_proc_id());
                  f1.fill([](std::int64_t g) { return 1.0 * g; });
                  f2.fill([](std::int64_t g) { return 100.0 + g; });
                  f3.fill([](std::int64_t g) { return -2.0 * g; });
                  const std::span<const double> srcs[] = {f1.data(), f2.data(),
                                                          f3.data()};
                  r.transfer_many(srcs, {}, 5);
                }},
       TestExec{{"dst"}, "", 2,
                [&](Mph& h, const minimpi::Comm&) {
                  const minimpi::Comm joint = h.comm_join("src", "dst");
                  const Router r(joint, src, dst, Side::destination);
                  Field g1(dst, h.local_proc_id());
                  Field g2(dst, h.local_proc_id());
                  Field g3(dst, h.local_proc_id());
                  const std::span<double> dsts[] = {g1.data(), g2.data(),
                                                    g3.data()};
                  r.transfer_many({}, dsts, 5);
                  for (std::size_t l = 0; l < g1.local_size(); ++l) {
                    const std::int64_t g = dst.to_global(
                        h.local_proc_id(), static_cast<std::int64_t>(l));
                    EXPECT_DOUBLE_EQ(g1.data()[l], 1.0 * g);
                    EXPECT_DOUBLE_EQ(g2.data()[l], 100.0 + g);
                    EXPECT_DOUBLE_EQ(g3.data()[l], -2.0 * g);
                  }
                }}});
}

TEST(TransferMany, ZeroFieldsIsNoOp) {
  using namespace mph;
  using namespace mph::testing;
  const std::string registry = "BEGIN\nsrc\ndst\nEND\n";
  const Decomp src = Decomp::block(4, 1);
  const Decomp dst = Decomp::block(4, 1);
  run_mph_ok(registry,
             {TestExec{{"src"}, "", 1,
                       [&](Mph& h, const minimpi::Comm&) {
                         const minimpi::Comm joint = h.comm_join("src", "dst");
                         const Router r(joint, src, dst, Side::source);
                         r.transfer_many({}, {}, 1);
                       }},
              TestExec{{"dst"}, "", 1,
                       [&](Mph& h, const minimpi::Comm&) {
                         const minimpi::Comm joint = h.comm_join("src", "dst");
                         const Router r(joint, src, dst, Side::destination);
                         r.transfer_many({}, {}, 1);
                       }}});
}
