// TimeManager and Alarm semantics.
#include "src/coupler/timemgr.hpp"

#include <gtest/gtest.h>

using namespace mph::coupler;

TEST(Alarm, RingsAtMultiples) {
  const Alarm a("couple", 10.0);
  EXPECT_TRUE(a.ringing(9.0, 10.0));
  EXPECT_TRUE(a.ringing(19.5, 20.5));
  EXPECT_FALSE(a.ringing(10.0, 19.0));
  EXPECT_FALSE(a.ringing(0.0, 9.9));
}

TEST(Alarm, RejectsNonPositiveInterval) {
  EXPECT_THROW(Alarm("bad", 0.0), std::invalid_argument);
  EXPECT_THROW(Alarm("bad", -1.0), std::invalid_argument);
}

TEST(TimeManager, StepsAndTime) {
  TimeManager tm(2.0, 10.0);
  EXPECT_EQ(tm.step(), 0);
  EXPECT_DOUBLE_EQ(tm.time(), 0.0);
  EXPECT_FALSE(tm.done());
  int steps = 0;
  while (!tm.done()) {
    tm.advance();
    ++steps;
  }
  EXPECT_EQ(steps, 5);
  EXPECT_DOUBLE_EQ(tm.time(), 10.0);
}

TEST(TimeManager, AlarmsFireOnSchedule) {
  TimeManager tm(1.0, 12.0);
  tm.add_alarm("couple", 3.0);
  tm.add_alarm("output", 6.0);
  int couple_count = 0, output_count = 0;
  while (!tm.done()) {
    const auto fired = tm.advance();
    if (tm.alarm_rang("couple", fired)) ++couple_count;
    if (tm.alarm_rang("output", fired)) ++output_count;
  }
  EXPECT_EQ(couple_count, 4);  // t = 3, 6, 9, 12
  EXPECT_EQ(output_count, 2);  // t = 6, 12
}

TEST(TimeManager, AlarmMustBeMultipleOfDt) {
  TimeManager tm(2.0, 10.0);
  EXPECT_NO_THROW(tm.add_alarm("ok", 6.0));
  EXPECT_THROW(tm.add_alarm("bad", 5.0), std::invalid_argument);
}

TEST(TimeManager, InvalidConstruction) {
  EXPECT_THROW(TimeManager(0.0, 5.0), std::invalid_argument);
  EXPECT_THROW(TimeManager(1.0, -1.0), std::invalid_argument);
}

TEST(TimeManager, ZeroStopIsImmediatelyDone) {
  TimeManager tm(1.0, 0.0);
  EXPECT_TRUE(tm.done());
}
