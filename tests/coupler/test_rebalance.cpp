// Weight-driven rebalancing: Decomp::weighted's largest-remainder
// properties, throughput_weights / weights_from_metrics derivation, the
// Rebalancer's EWMA + trigger decision box, and repartition() round trips
// over one communicator.
#include "src/coupler/rebalance.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "src/coupler/decomp.hpp"
#include "src/minimpi/launcher.hpp"
#include "src/minimpi/metrics.hpp"

using namespace mph::coupler;
using minimpi::Comm;

namespace {

std::vector<std::int64_t> sizes_of(const Decomp& d) {
  std::vector<std::int64_t> sizes;
  for (int r = 0; r < d.nranks(); ++r) sizes.push_back(d.local_size(r));
  return sizes;
}

TEST(WeightedDecomp, EqualWeightsMatchBlock) {
  const std::vector<double> w = {1.0, 1.0, 1.0};
  EXPECT_EQ(Decomp::weighted(10, w), Decomp::block(10, 3));
  EXPECT_EQ(Decomp::weighted(9, w), Decomp::block(9, 3));
}

TEST(WeightedDecomp, SizesProportionalAndExactlyCovering) {
  const std::vector<double> w = {3.0, 1.0, 1.0, 3.0};
  const Decomp d = Decomp::weighted(80, w);
  EXPECT_EQ(sizes_of(d), (std::vector<std::int64_t>{30, 10, 10, 30}));
  // Contiguous ascending blocks: each rank owns one segment, gapless.
  std::int64_t cursor = 0;
  for (int r = 0; r < d.nranks(); ++r) {
    ASSERT_EQ(d.segments(r).size(), 1u);
    EXPECT_EQ(d.segments(r).front().gstart, cursor);
    cursor += d.segments(r).front().length;
  }
  EXPECT_EQ(cursor, 80);
}

TEST(WeightedDecomp, LargestRemainderRoundingIsDeterministic) {
  // Shares: 10 * {2, 1, 1}/4 = {5, 2.5, 2.5}; the single leftover goes to
  // the largest remainder, ties breaking toward the lower rank.
  const std::vector<double> w = {2.0, 1.0, 1.0};
  const Decomp d = Decomp::weighted(10, w);
  EXPECT_EQ(sizes_of(d), (std::vector<std::int64_t>{5, 3, 2}));
  const std::vector<std::int64_t> sizes = sizes_of(d);
  EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), std::int64_t{0}), 10);
  // Same inputs, same answer.
  EXPECT_EQ(Decomp::weighted(10, w), d);
}

TEST(WeightedDecomp, ZeroWeightRankGetsNoIndices) {
  const std::vector<double> w = {0.0, 1.0, 1.0};
  const Decomp d = Decomp::weighted(10, w);
  EXPECT_EQ(d.local_size(0), 0);
  EXPECT_EQ(d.local_size(1) + d.local_size(2), 10);
}

TEST(ThroughputWeights, WorkPerSecondWithMeanBackfill) {
  const Decomp d = Decomp::block(100, 4);  // 25 indices per rank
  const std::vector<double> times = {1.0, 2.0, 0.0, 2.0};
  const std::vector<double> w = throughput_weights(d, times);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_DOUBLE_EQ(w[0], 25.0);
  EXPECT_DOUBLE_EQ(w[1], 12.5);
  // Rank 2 reported no usable time: it gets the mean of the measured ones.
  EXPECT_DOUBLE_EQ(w[2], (25.0 + 12.5 + 12.5) / 3.0);
  EXPECT_DOUBLE_EQ(w[3], 12.5);
}

TEST(ThroughputWeights, SizeMismatchThrows) {
  const Decomp d = Decomp::block(10, 2);
  const std::vector<double> times = {1.0, 1.0, 1.0};
  EXPECT_THROW((void)throughput_weights(d, times), std::invalid_argument);
}

TEST(WeightsFromMetrics, BusyTimeDrivesThroughput) {
  const Decomp d = Decomp::block(30, 3);  // 10 indices per rank
  minimpi::MetricsSnapshot snap;
  snap.t_ns = 1'000'000'000;  // 1 s window
  minimpi::RankMetrics r0;
  r0.world_rank = 0;
  r0.blocked_ns = 500'000'000;  // busy 0.5 s -> throughput 20
  minimpi::RankMetrics r1;
  r1.world_rank = 1;
  r1.blocked_ns = 0;  // busy 1 s -> throughput 10
  snap.ranks = {r0, r1};

  const std::vector<minimpi::rank_t> world_ranks = {0, 1, 7};  // 7 absent
  const std::vector<double> w = weights_from_metrics(snap, d, world_ranks);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w[0], 20.0);
  EXPECT_DOUBLE_EQ(w[1], 10.0);
  EXPECT_DOUBLE_EQ(w[2], 15.0);  // mean of the measured ranks
}

TEST(WeightsFromCriticalPath, BlameShareInvertsIntoExactWeights) {
  // Synthetic profile: ocean owns 75% of the critical path, atmosphere
  // 25%.  Weights are 1 - share (floored at 0.05), so Decomp::weighted
  // splits 100 indices exactly 25 / 75 toward the unblamed component.
  minimpi::prof::Profile profile;
  profile.path_total_ns = 1000;
  minimpi::prof::PathSegment ocean_seg;
  ocean_seg.world_rank = 0;
  ocean_seg.track = "ocean:0";
  ocean_seg.kind = minimpi::prof::SegmentKind::compute;
  ocean_seg.t_start_ns = 0;
  ocean_seg.t_end_ns = 750;
  minimpi::prof::PathSegment atm_seg;
  atm_seg.world_rank = 1;
  atm_seg.track = "atmosphere:0";
  atm_seg.kind = minimpi::prof::SegmentKind::recv_wait;
  atm_seg.t_start_ns = 750;
  atm_seg.t_end_ns = 1000;
  profile.path = {ocean_seg, atm_seg};
  minimpi::prof::RankProfile r0;
  r0.world_rank = 0;
  r0.track = "ocean:0";
  minimpi::prof::RankProfile r1;
  r1.world_rank = 1;
  r1.track = "atmosphere:0";
  profile.ranks = {r0, r1};

  const Decomp current = Decomp::block(100, 2);
  const std::vector<minimpi::rank_t> world_ranks = {0, 1};
  const std::vector<double> w =
      weights_from_critical_path(profile, current, world_ranks);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w[0], 0.25);  // ocean blamed 75%
  EXPECT_DOUBLE_EQ(w[1], 0.75);  // atmosphere blamed 25%
  EXPECT_EQ(sizes_of(Decomp::weighted(100, w)),
            (std::vector<std::int64_t>{25, 75}));
  // Deterministic: same profile, same weights.
  EXPECT_EQ(weights_from_critical_path(profile, current, world_ranks), w);
}

TEST(WeightsFromCriticalPath, FullBlameHitsTheFloorAndAbsentRanksGetMean) {
  // One component owns the whole path: its weight floors at 0.05 rather
  // than starving to zero; a rank missing from the profile gets the mean.
  minimpi::prof::Profile profile;
  profile.path_total_ns = 1000;
  minimpi::prof::PathSegment seg;
  seg.world_rank = 0;
  seg.track = "solo:0";
  seg.kind = minimpi::prof::SegmentKind::compute;
  seg.t_start_ns = 0;
  seg.t_end_ns = 1000;
  profile.path = {seg};
  minimpi::prof::RankProfile r0;
  r0.world_rank = 0;
  r0.track = "solo:0";
  profile.ranks = {r0};

  const Decomp current = Decomp::block(30, 2);
  const std::vector<minimpi::rank_t> world_ranks = {0, 9};  // 9 unprofiled
  const std::vector<double> w =
      weights_from_critical_path(profile, current, world_ranks);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w[0], 0.05);
  EXPECT_DOUBLE_EQ(w[1], 0.05);  // mean of the single measured weight
}

TEST(WeightsFromCriticalPath, SizeMismatchThrows) {
  const minimpi::prof::Profile profile;
  const Decomp d = Decomp::block(10, 2);
  const std::vector<minimpi::rank_t> world_ranks = {0, 1, 2};
  EXPECT_THROW((void)weights_from_critical_path(profile, d, world_ranks),
               std::invalid_argument);
}

TEST(Rebalancer, BalancedTimesProposeNothing) {
  Rebalancer reb;
  const Decomp current = Decomp::block(40, 4);
  const std::vector<double> times = {1.0, 1.0, 1.0, 1.0};
  EXPECT_FALSE(reb.propose(current, times).has_value());
  EXPECT_DOUBLE_EQ(reb.last_imbalance(), 1.0);
  // The observation round still primed the smoothed weights.
  ASSERT_EQ(reb.weights().size(), 4u);
  EXPECT_DOUBLE_EQ(reb.weights()[0], 10.0);
}

TEST(Rebalancer, ImbalanceBeyondTriggerShiftsWorkToFastRanks) {
  Rebalancer reb(RebalancePolicy{.trigger_imbalance = 1.2, .smoothing = 1.0});
  const Decomp current = Decomp::block(60, 3);  // 20 each
  // Rank 2 is twice as slow: imbalance = 2 / (4/3) = 1.5 >= 1.2.
  const std::vector<double> times = {1.0, 1.0, 2.0};
  const auto proposal = reb.propose(current, times);
  ASSERT_TRUE(proposal.has_value());
  EXPECT_DOUBLE_EQ(reb.last_imbalance(), 1.5);
  // Throughputs 20/20/10: the slow rank's share shrinks, total preserved.
  EXPECT_EQ(sizes_of(*proposal), (std::vector<std::int64_t>{24, 24, 12}));
}

TEST(Rebalancer, EwmaSmoothsAcrossRounds) {
  Rebalancer reb(RebalancePolicy{.trigger_imbalance = 10.0, .smoothing = 0.5});
  const Decomp current = Decomp::block(40, 2);  // 20 each
  const std::vector<double> round1 = {1.0, 1.0};  // throughput 20 / 20
  const std::vector<double> round2 = {1.0, 2.0};  // throughput 20 / 10
  EXPECT_FALSE(reb.propose(current, round1).has_value());  // trigger never met
  EXPECT_FALSE(reb.propose(current, round2).has_value());
  ASSERT_EQ(reb.weights().size(), 2u);
  EXPECT_DOUBLE_EQ(reb.weights()[0], 20.0);
  EXPECT_DOUBLE_EQ(reb.weights()[1], 0.5 * 10.0 + 0.5 * 20.0);
}

TEST(Rebalancer, NoProposalWhenWeightedLayoutEqualsCurrent) {
  // Trigger 1.0 fires on perfectly balanced times, but equal weights
  // reproduce the current block layout — nothing to move, so nullopt.
  Rebalancer reb(RebalancePolicy{.trigger_imbalance = 1.0, .smoothing = 1.0});
  const Decomp current = Decomp::block(40, 4);
  const std::vector<double> times = {1.0, 1.0, 1.0, 1.0};
  EXPECT_FALSE(reb.propose(current, times).has_value());
  EXPECT_DOUBLE_EQ(reb.last_imbalance(), 1.0);
}

TEST(Repartition, MovesDataAndRoundTripsUnderSpmd) {
  const Decomp from = Decomp::block(40, 4);
  const std::vector<double> weights = {3.0, 1.0, 1.0, 3.0};
  const Decomp to = Decomp::weighted(40, weights);
  const minimpi::JobReport report = minimpi::run_spmd(
      4, [&](const Comm& world, const minimpi::ExecEnv&) {
        const int me = world.rank();
        std::vector<double> local(
            static_cast<std::size_t>(from.local_size(me)));
        for (std::size_t l = 0; l < local.size(); ++l) {
          local[l] = 2.0 * static_cast<double>(
                               from.to_global(me, static_cast<std::int64_t>(l))) +
                     0.5;
        }

        const std::vector<double> moved =
            repartition(world, from, to, local, /*tag=*/31);
        ASSERT_EQ(moved.size(), static_cast<std::size_t>(to.local_size(me)));
        for (std::size_t l = 0; l < moved.size(); ++l) {
          const std::int64_t g = to.to_global(me, static_cast<std::int64_t>(l));
          EXPECT_DOUBLE_EQ(moved[l], 2.0 * static_cast<double>(g) + 0.5)
              << "global index " << g;
        }

        // Moving back restores the original local data exactly.
        const std::vector<double> back =
            repartition(world, to, from, moved, /*tag=*/32);
        EXPECT_EQ(back, local);
      });
  ASSERT_TRUE(report.ok) << report.abort_reason;
}

TEST(Repartition, RejectsMismatchedShapes) {
  const minimpi::JobReport report = minimpi::run_spmd(
      2, [&](const Comm& world, const minimpi::ExecEnv&) {
        const Decomp a = Decomp::block(10, 2);
        const Decomp b = Decomp::block(12, 2);
        std::vector<double> local(
            static_cast<std::size_t>(a.local_size(world.rank())));
        EXPECT_THROW((void)repartition(world, a, b, local, 7),
                     std::invalid_argument);
        const Decomp c = Decomp::block(10, 3);
        EXPECT_THROW((void)repartition(world, a, c, local, 8),
                     std::invalid_argument);
      });
  ASSERT_TRUE(report.ok) << report.abort_reason;
}

}  // namespace
