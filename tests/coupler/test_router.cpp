// Router: redistribution between decompositions over a joint communicator
// built by MPH_comm_join — including the full MPH + Field integration and
// randomized property checks.
#include "src/coupler/router.hpp"

#include <gtest/gtest.h>

#include "src/coupler/field.hpp"
#include "src/util/rng.hpp"
#include "tests/mph/mph_test_util.hpp"

using namespace mph;
using namespace mph::coupler;
using namespace mph::testing;
using minimpi::Comm;

namespace {

/// Run source (nA ranks) and destination (nB ranks) components, build the
/// joint comm via MPH, and transfer a field initialized to f(g) = 3g + 1.
/// Every destination rank verifies its received values.
void run_transfer(int n_src, int n_dst, const Decomp& src, const Decomp& dst) {
  const std::string registry = "BEGIN\nsrc\ndst\nEND\n";
  auto src_body = [&](Mph& h, const Comm&) {
    const Comm joint = h.comm_join("src", "dst");
    const Router router(joint, src, dst, Side::source);
    Field field(src, h.local_proc_id());
    field.fill([](std::int64_t g) { return 3.0 * g + 1.0; });
    router.transfer(field.data(), {}, 9);
  };
  auto dst_body = [&](Mph& h, const Comm&) {
    const Comm joint = h.comm_join("src", "dst");
    const Router router(joint, src, dst, Side::destination);
    Field field(dst, h.local_proc_id());
    router.transfer({}, field.data(), 9);
    for (std::size_t l = 0; l < field.local_size(); ++l) {
      const std::int64_t g =
          dst.to_global(h.local_proc_id(), static_cast<std::int64_t>(l));
      EXPECT_DOUBLE_EQ(field.at_local(static_cast<std::int64_t>(l)),
                       3.0 * g + 1.0)
          << "global index " << g;
    }
  };
  run_mph_ok(registry, {TestExec{{"src"}, "", n_src, src_body},
                        TestExec{{"dst"}, "", n_dst, dst_body}});
}

}  // namespace

TEST(Router, BlockToBlockDifferentCounts) {
  run_transfer(3, 2, Decomp::block(24, 3), Decomp::block(24, 2));
}

TEST(Router, BlockToCyclic) {
  run_transfer(2, 3, Decomp::block(20, 2), Decomp::cyclic(20, 3, 1));
}

TEST(Router, CyclicToCyclicDifferentChunks) {
  run_transfer(2, 2, Decomp::cyclic(30, 2, 3), Decomp::cyclic(30, 2, 5));
}

TEST(Router, SingleRankEachSide) {
  run_transfer(1, 1, Decomp::block(7, 1), Decomp::block(7, 1));
}

TEST(Router, ManyToOneGather) {
  run_transfer(4, 1, Decomp::block(16, 4), Decomp::block(16, 1));
}

TEST(Router, OneToManyScatter) {
  run_transfer(1, 4, Decomp::block(16, 1), Decomp::block(16, 4));
}

/// Property sweep: random explicit decompositions on both sides.
class RouterProperty : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, RouterProperty, ::testing::Range(0, 8));

TEST_P(RouterProperty, RandomDecompositionsTransferExactly) {
  mph::util::Rng rng(777 + static_cast<unsigned>(GetParam()));
  const std::int64_t n = rng.range(8, 64);
  const int n_src = static_cast<int>(rng.range(1, 3));
  const int n_dst = static_cast<int>(rng.range(1, 3));
  const Decomp src = rng.uniform() < 0.5 ? Decomp::block(n, n_src)
                                         : Decomp::cyclic(n, n_src,
                                                          rng.range(1, 4));
  const Decomp dst = rng.uniform() < 0.5 ? Decomp::block(n, n_dst)
                                         : Decomp::cyclic(n, n_dst,
                                                          rng.range(1, 4));
  run_transfer(n_src, n_dst, src, dst);
}

TEST(Router, ScheduleStatistics) {
  // 2 src block ranks x 2 dst cyclic ranks over 8 indices: every src rank
  // talks to both dst ranks; every element moves exactly once.
  const std::string registry = "BEGIN\nsrc\ndst\nEND\n";
  const Decomp src = Decomp::block(8, 2);
  const Decomp dst = Decomp::cyclic(8, 2, 1);
  run_mph_ok(
      registry,
      {TestExec{{"src"}, "", 2,
                [&](Mph& h, const Comm&) {
                  const Comm joint = h.comm_join("src", "dst");
                  const Router r(joint, src, dst, Side::source);
                  EXPECT_EQ(r.message_count(), 2u);
                  EXPECT_EQ(r.element_count(), 4);
                  EXPECT_EQ(r.side_rank(), h.local_proc_id());
                  Field f(src, h.local_proc_id());
                  r.transfer(f.data(), {}, 0);
                }},
       TestExec{{"dst"}, "", 2,
                [&](Mph& h, const Comm&) {
                  const Comm joint = h.comm_join("src", "dst");
                  const Router r(joint, src, dst, Side::destination);
                  EXPECT_EQ(r.message_count(), 2u);
                  EXPECT_EQ(r.element_count(), 4);
                  Field f(dst, h.local_proc_id());
                  r.transfer({}, f.data(), 0);
                }}});
}

TEST(Router, ConstructionValidation) {
  // Validation happens before any communication, so a plain SPMD job works.
  const minimpi::JobReport report = minimpi::run_spmd(
      3,
      [](const Comm& world, const minimpi::ExecEnv&) {
        // Global size mismatch.
        EXPECT_THROW(Router(world, Decomp::block(8, 2), Decomp::block(9, 1),
                            Side::source),
                     std::invalid_argument);
        // Rank count mismatch: 2 + 1 == 3 ok, but 2 + 2 != 3.
        EXPECT_THROW(Router(world, Decomp::block(8, 2), Decomp::block(8, 2),
                            Side::source),
                     std::invalid_argument);
        // Side / rank range mismatch.
        if (world.rank() == 2) {
          EXPECT_THROW(Router(world, Decomp::block(8, 2),
                              Decomp::block(8, 1), Side::source),
                       std::invalid_argument);
        } else {
          EXPECT_THROW(Router(world, Decomp::block(8, 2),
                              Decomp::block(8, 1), Side::destination),
                       std::invalid_argument);
        }
      },
      test_job_options());
  ASSERT_TRUE(report.ok) << report.abort_reason;
}

TEST(Field, SumMinMaxAndFill) {
  const minimpi::JobReport report = minimpi::run_spmd(
      3,
      [](const Comm& world, const minimpi::ExecEnv&) {
        Field f(Decomp::block(9, 3), world.rank());
        f.fill([](std::int64_t g) { return static_cast<double>(g); });
        EXPECT_DOUBLE_EQ(f.global_sum(world), 36.0);  // 0+..+8
        EXPECT_DOUBLE_EQ(f.global_min(world), 0.0);
        EXPECT_DOUBLE_EQ(f.global_max(world), 8.0);
      },
      test_job_options());
  ASSERT_TRUE(report.ok) << report.abort_reason;
}
