// Decomp: block/cyclic/explicit decompositions and index translation.
#include "src/coupler/decomp.hpp"

#include <gtest/gtest.h>

using namespace mph::coupler;

TEST(DecompBlock, EvenDivision) {
  const Decomp d = Decomp::block(12, 4);
  EXPECT_EQ(d.nranks(), 4);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(d.local_size(r), 3);
    ASSERT_EQ(d.segments(r).size(), 1u);
    EXPECT_EQ(d.segments(r)[0].gstart, 3 * r);
  }
}

TEST(DecompBlock, RemainderGoesToLowRanks) {
  const Decomp d = Decomp::block(10, 3);
  EXPECT_EQ(d.local_size(0), 4);
  EXPECT_EQ(d.local_size(1), 3);
  EXPECT_EQ(d.local_size(2), 3);
  EXPECT_EQ(d.segments(1)[0].gstart, 4);
  EXPECT_EQ(d.segments(2)[0].gstart, 7);
}

TEST(DecompBlock, MoreRanksThanIndices) {
  const Decomp d = Decomp::block(2, 4);
  EXPECT_EQ(d.local_size(0), 1);
  EXPECT_EQ(d.local_size(1), 1);
  EXPECT_EQ(d.local_size(2), 0);
  EXPECT_TRUE(d.segments(3).empty());
}

TEST(DecompBlock, EmptyGlobal) {
  const Decomp d = Decomp::block(0, 2);
  EXPECT_EQ(d.local_size(0), 0);
  EXPECT_EQ(d.local_size(1), 0);
}

TEST(DecompCyclic, RoundRobinChunks) {
  const Decomp d = Decomp::cyclic(10, 3, 2);
  // Chunks: [0,2)->r0, [2,4)->r1, [4,6)->r2, [6,8)->r0, [8,10)->r1.
  EXPECT_EQ(d.local_size(0), 4);
  EXPECT_EQ(d.local_size(1), 4);
  EXPECT_EQ(d.local_size(2), 2);
  EXPECT_EQ(d.segments(0)[1].gstart, 6);
}

TEST(DecompCyclic, PureCyclic) {
  const Decomp d = Decomp::cyclic(6, 2, 1);
  EXPECT_EQ(d.owner_of(0), 0);
  EXPECT_EQ(d.owner_of(1), 1);
  EXPECT_EQ(d.owner_of(4), 0);
  EXPECT_EQ(d.owner_of(5), 1);
}

TEST(Decomp, OwnerAndTranslationRoundTrip) {
  for (const Decomp& d :
       {Decomp::block(17, 5), Decomp::cyclic(17, 5, 3)}) {
    for (std::int64_t g = 0; g < 17; ++g) {
      const int owner = d.owner_of(g);
      const std::int64_t l = d.to_local(owner, g);
      ASSERT_GE(l, 0);
      EXPECT_EQ(d.to_global(owner, l), g);
      // Non-owners report -1.
      for (int r = 0; r < d.nranks(); ++r) {
        if (r != owner) {
          EXPECT_EQ(d.to_local(r, g), -1);
        }
      }
    }
  }
}

TEST(DecompFromSegments, ValidExplicitLayout) {
  const Decomp d = Decomp::from_segments(
      8, {{Segment{0, 2}, Segment{6, 2}}, {Segment{2, 4}}});
  EXPECT_EQ(d.local_size(0), 4);
  EXPECT_EQ(d.local_size(1), 4);
  EXPECT_EQ(d.to_global(0, 2), 6);  // second segment starts after the first
  EXPECT_EQ(d.to_local(0, 7), 3);
}

TEST(DecompFromSegments, RejectsOverlap) {
  EXPECT_THROW(
      (void)Decomp::from_segments(4, {{Segment{0, 3}}, {Segment{2, 2}}}),
      std::invalid_argument);
}

TEST(DecompFromSegments, RejectsGap) {
  EXPECT_THROW(
      (void)Decomp::from_segments(5, {{Segment{0, 2}}, {Segment{3, 2}}}),
      std::invalid_argument);
}

TEST(DecompFromSegments, RejectsOutOfBounds) {
  EXPECT_THROW((void)Decomp::from_segments(3, {{Segment{0, 4}}}),
               std::invalid_argument);
}

TEST(DecompFromSegments, RejectsShortCoverage) {
  EXPECT_THROW((void)Decomp::from_segments(5, {{Segment{0, 3}}}),
               std::invalid_argument);
}

TEST(Decomp, InvalidArguments) {
  EXPECT_THROW((void)Decomp::block(-1, 2), std::invalid_argument);
  EXPECT_THROW((void)Decomp::block(4, 0), std::invalid_argument);
  EXPECT_THROW((void)Decomp::cyclic(4, 2, 0), std::invalid_argument);
  const Decomp d = Decomp::block(4, 2);
  EXPECT_THROW((void)d.owner_of(4), std::invalid_argument);
  EXPECT_THROW((void)d.segments(2), std::invalid_argument);
  EXPECT_THROW((void)d.to_global(0, 9), std::invalid_argument);
}
