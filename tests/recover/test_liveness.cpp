// Liveness probing under member death: ping retry/backoff budgets,
// await_alive's PeerTimeoutError (naming the peer, the attempts made and
// the elapsed wait), and the directory's death cache marking dead members
// without ever poisoning live ones.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/minimpi/fault.hpp"
#include "src/mph/errors.hpp"
#include "tests/mph/mph_test_util.hpp"

namespace {

using minimpi::Comm;
using mph::Mph;
using mph::PeerTimeoutError;
using mph::testing::TestExec;

const std::string kRegistry = R"(BEGIN
Multi_Instance_Begin
Ocean1 0 1
Ocean2 2 3
Ocean3 4 5
Multi_Instance_End
statistics
END
)";

constexpr std::uint64_t kKillStep = 2;
constexpr minimpi::rank_t kVictimRank = 4;  ///< Ocean3's first world rank

struct Observed {
  std::mutex mutex;
  bool saw_failure = false;
  bool ping_dead = true;
  bool ping_alive = false;
  std::vector<std::string> failed_after_ping;
  bool caught_timeout = false;
  std::string err_component;
  int err_attempts = -1;
  std::chrono::milliseconds err_elapsed{-1};
  std::string err_message;
  bool require_dead_threw = false;
  bool require_alive_threw = true;
};

/// MIME job with isolation: Ocean3's first rank dies at `kKillStep`, no
/// supervisor — the death is permanent.  The statistics rank exercises the
/// liveness API with the given retry policy and records what it saw.
minimpi::JobReport run_liveness_job(int attempts,
                                    std::chrono::milliseconds backoff,
                                    Observed& observed) {
  mph::HandshakeOptions handshake;
  handshake.isolate_instances = true;
  handshake.liveness.attempts = attempts;
  handshake.liveness.backoff = backoff;
  handshake.liveness.backoff_factor = 1.0;

  minimpi::JobOptions job = mph::testing::test_job_options();
  job.faults.kill_at_step(kVictimRank, kKillStep);

  auto member = [](Mph& h, const Comm&) {
    for (std::uint64_t step = 0; step < 6; ++step) {
      h.comp_comm().fault_checkpoint(step);
    }
  };
  auto stats = [&](Mph& h, const Comm&) {
    // Wait for the kill to land; failure_of is an immediate, cache-neutral
    // observation.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    bool saw = false;
    while (std::chrono::steady_clock::now() < deadline) {
      if (h.failure_of("Ocean3").has_value()) {
        saw = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    const bool ping_dead = h.ping("Ocean3");
    std::vector<std::string> failed = h.failed_components();

    bool caught = false;
    std::string err_component;
    int err_attempts = -1;
    std::chrono::milliseconds err_elapsed{-1};
    std::string err_message;
    try {
      h.await_alive("Ocean3");
    } catch (const PeerTimeoutError& ex) {
      caught = true;
      err_component = ex.component();
      err_attempts = ex.attempts();
      err_elapsed = ex.elapsed();
      err_message = ex.what();
    }

    bool require_dead_threw = false;
    try {
      h.require_alive("Ocean3");
    } catch (const mph::ComponentFailedError&) {
      require_dead_threw = true;
    }
    bool require_alive_threw = false;
    try {
      h.require_alive("Ocean1");
    } catch (const mph::ComponentFailedError&) {
      require_alive_threw = true;
    }

    const bool ping_alive = h.ping("Ocean1");

    const std::lock_guard<std::mutex> lock(observed.mutex);
    observed.saw_failure = saw;
    observed.ping_dead = ping_dead;
    observed.ping_alive = ping_alive;
    observed.failed_after_ping = std::move(failed);
    observed.caught_timeout = caught;
    observed.err_component = std::move(err_component);
    observed.err_attempts = err_attempts;
    observed.err_elapsed = err_elapsed;
    observed.err_message = std::move(err_message);
    observed.require_dead_threw = require_dead_threw;
    observed.require_alive_threw = require_alive_threw;
  };

  return mph::testing::run_mph_job(
      kRegistry,
      {TestExec{{}, "Ocean", 6, member}, TestExec{{"statistics"}, "", 1, stats}},
      handshake, std::move(job));
}

TEST(Liveness, SingleShotPolicyReportsDeadImmediately) {
  Observed observed;
  const minimpi::JobReport report =
      run_liveness_job(/*attempts=*/1, std::chrono::milliseconds(50), observed);
  ASSERT_TRUE(report.ok) << report.abort_reason;
  ASSERT_TRUE(observed.saw_failure);

  EXPECT_FALSE(observed.ping_dead);
  ASSERT_TRUE(observed.caught_timeout);
  EXPECT_EQ(observed.err_component, "Ocean3");
  EXPECT_EQ(observed.err_attempts, 1);
  EXPECT_GE(observed.err_elapsed.count(), 0);
  EXPECT_NE(observed.err_message.find("Ocean3"), std::string::npos)
      << observed.err_message;
  EXPECT_NE(observed.err_message.find("1 ping attempt"), std::string::npos)
      << observed.err_message;
}

TEST(Liveness, RetryBudgetBacksOffThenNamesPeerAttemptsAndElapsed) {
  Observed observed;
  const minimpi::JobReport report =
      run_liveness_job(/*attempts=*/3, std::chrono::milliseconds(20), observed);
  ASSERT_TRUE(report.ok) << report.abort_reason;
  ASSERT_TRUE(observed.saw_failure);

  // The member is permanently dead: the whole retry budget is spent.
  ASSERT_TRUE(observed.caught_timeout);
  EXPECT_EQ(observed.err_component, "Ocean3");
  EXPECT_EQ(observed.err_attempts, 3);
  // Two inter-probe backoffs of 20 ms each (factor 1.0): the elapsed wait
  // reflects real waiting, with slack for coarse clocks.
  EXPECT_GE(observed.err_elapsed.count(), 30);
  EXPECT_NE(observed.err_message.find("Ocean3"), std::string::npos);
  EXPECT_NE(observed.err_message.find("3 ping attempts"), std::string::npos)
      << observed.err_message;
  EXPECT_NE(observed.err_message.find("ms"), std::string::npos);
}

TEST(Liveness, DeathCacheMarksDeadMembersAndSparesLiveOnes) {
  Observed observed;
  const minimpi::JobReport report =
      run_liveness_job(/*attempts=*/1, std::chrono::milliseconds(10), observed);
  ASSERT_TRUE(report.ok) << report.abort_reason;
  ASSERT_TRUE(observed.saw_failure);

  // After the failed ping the directory cache holds exactly the dead
  // member; live members keep answering and never enter the cache.
  EXPECT_EQ(observed.failed_after_ping, std::vector<std::string>{"Ocean3"});
  EXPECT_TRUE(observed.ping_alive);
  EXPECT_TRUE(observed.require_dead_threw);
  EXPECT_FALSE(observed.require_alive_threw);
}

}  // namespace
