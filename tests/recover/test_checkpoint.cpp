// Checkpoint/CheckpointStore round trips: typed entries, CRC + format
// validation, atomic persistence with pruning, and round trips of the
// checkpointable library state (RNG, time manager, accumulator).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/coupler/accumulator.hpp"
#include "src/coupler/timemgr.hpp"
#include "src/mph/errors.hpp"
#include "src/mph/recover.hpp"
#include "src/util/rng.hpp"

namespace {

using mph::SetupError;
using mph::recover::Checkpoint;
using mph::recover::CheckpointStore;

std::string fresh_dir(const std::string& name) {
  // pid-unique: ctest runs tests of this binary as concurrent processes.
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) /
      ("mph_ckpt_" + std::to_string(::getpid()) + "_" + name);
  std::filesystem::remove_all(dir);
  return dir.string();
}

TEST(Checkpoint, TypedEntriesRoundTripThroughBytes) {
  Checkpoint ckpt(42);
  const std::vector<double> field = {1.5, -2.25, 3.0e-7, 0.0};
  const std::vector<std::uint64_t> words = {0, 1, ~0ULL};
  ckpt.put_doubles("field", field);
  ckpt.put_u64s("words", words);
  ckpt.put_scalar("dt", 0.05);
  ckpt.put_flag("has_import", true);
  ckpt.put_flag("empty", false);

  const Checkpoint back = Checkpoint::from_bytes(ckpt.to_bytes());
  EXPECT_EQ(back.step(), 42u);
  EXPECT_EQ(back.doubles("field"), field);
  EXPECT_EQ(back.u64s("words"), words);
  EXPECT_DOUBLE_EQ(back.scalar("dt"), 0.05);
  EXPECT_TRUE(back.flag("has_import"));
  EXPECT_FALSE(back.flag("empty"));
  EXPECT_TRUE(back.has("field"));
  EXPECT_FALSE(back.has("missing"));
}

TEST(Checkpoint, MissingKeyNamesTheKey) {
  const Checkpoint ckpt(1);
  try {
    (void)ckpt.doubles("ocean.sst");
    FAIL() << "expected SetupError";
  } catch (const SetupError& ex) {
    EXPECT_NE(std::string(ex.what()).find("ocean.sst"), std::string::npos)
        << ex.what();
  }
}

TEST(Checkpoint, RngStateRoundTripResumesStream) {
  mph::util::Rng rng(1234);
  for (int i = 0; i < 17; ++i) (void)rng();
  Checkpoint ckpt(3);
  const auto state = rng.state();
  ckpt.put_u64s("rng", std::vector<std::uint64_t>(state.begin(), state.end()));

  const Checkpoint back = Checkpoint::from_bytes(ckpt.to_bytes());
  const std::vector<std::uint64_t> raw = back.u64s("rng");
  ASSERT_EQ(raw.size(), 4u);
  mph::util::Rng resumed(0);
  resumed.set_state({raw[0], raw[1], raw[2], raw[3]});
  for (int i = 0; i < 32; ++i) EXPECT_EQ(resumed(), rng());
}

TEST(Checkpoint, TimeManagerAndAccumulatorRoundTrip) {
  mph::coupler::TimeManager clock(0.5, 100.0);
  clock.add_alarm("couple", 2.0);
  std::vector<std::string> fired;
  for (int i = 0; i < 7; ++i) fired = clock.advance();

  mph::coupler::FieldAccumulator acc(3);
  const std::vector<double> a = {1, 2, 3};
  const std::vector<double> b = {4, 5, 6};
  acc.add(a);
  acc.add(b);

  Checkpoint ckpt(7);
  ckpt.put_u64s("clock.step",
                std::vector<std::uint64_t>{
                    static_cast<std::uint64_t>(clock.step())});
  ckpt.put_doubles("acc.sum", acc.sum());
  ckpt.put_scalar("acc.samples", acc.samples());

  const Checkpoint back = Checkpoint::from_bytes(ckpt.to_bytes());
  mph::coupler::TimeManager clock2(0.5, 100.0);
  clock2.add_alarm("couple", 2.0);
  clock2.restore_step(static_cast<long long>(back.u64s("clock.step")[0]));
  EXPECT_EQ(clock2.step(), clock.step());
  EXPECT_DOUBLE_EQ(clock2.time(), clock.time());
  // The restored clock fires the same alarms going forward.
  EXPECT_EQ(clock2.advance(), clock.advance());

  mph::coupler::FieldAccumulator acc2(3);
  acc2.restore(back.doubles("acc.sum"),
               static_cast<int>(back.scalar("acc.samples")));
  EXPECT_EQ(acc2.samples(), 2);
  EXPECT_EQ(acc2.mean(), acc.mean());
}

TEST(CheckpointStore, SaveLoadLatestAndPrune) {
  const CheckpointStore store(fresh_dir("prune"), /*retain=*/2);
  for (std::uint64_t step = 0; step < 5; ++step) {
    Checkpoint ckpt(step);
    ckpt.put_scalar("value", static_cast<double>(step) * 1.5);
    store.save("Ocean1", ckpt);
  }
  // Only the newest two steps survive pruning.
  EXPECT_EQ(store.steps("Ocean1"), (std::vector<std::uint64_t>{3, 4}));
  ASSERT_TRUE(store.latest_step("Ocean1").has_value());
  EXPECT_EQ(*store.latest_step("Ocean1"), 4u);

  const auto latest = store.load_latest("Ocean1");
  ASSERT_TRUE(latest.has_value());
  EXPECT_DOUBLE_EQ(latest->scalar("value"), 6.0);
  const auto older = store.load_step("Ocean1", 3);
  ASSERT_TRUE(older.has_value());
  EXPECT_DOUBLE_EQ(older->scalar("value"), 4.5);
  EXPECT_FALSE(store.load_step("Ocean1", 0).has_value());

  // Members are independent key spaces.
  EXPECT_FALSE(store.latest_step("Ocean2").has_value());
  EXPECT_FALSE(store.load_latest("Ocean2").has_value());
}

TEST(CheckpointStore, CorruptedFileRejectedWithSetupError) {
  const CheckpointStore store(fresh_dir("corrupt"), 2);
  Checkpoint ckpt(1);
  ckpt.put_doubles("field", std::vector<double>{1, 2, 3});
  store.save("Ocean1", ckpt);

  // Flip one payload byte: the CRC must catch it and the error must name
  // the file.
  const std::string path = store.path_of("Ocean1", 1);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(24);
    char byte = 0;
    f.seekg(24);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(24);
    f.write(&byte, 1);
  }
  try {
    (void)store.load_step("Ocean1", 1);
    FAIL() << "expected SetupError";
  } catch (const SetupError& ex) {
    EXPECT_NE(std::string(ex.what()).find(path), std::string::npos)
        << ex.what();
  }
}

TEST(CheckpointStore, TruncatedFileRejectedWithSetupError) {
  const CheckpointStore store(fresh_dir("truncate"), 2);
  Checkpoint ckpt(2);
  ckpt.put_doubles("field", std::vector<double>(64, 3.25));
  store.save("Ocean1", ckpt);

  const std::string path = store.path_of("Ocean1", 2);
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_THROW((void)store.load_latest("Ocean1"), SetupError);

  // An empty file is equally rejected, not treated as "no checkpoint".
  std::filesystem::resize_file(path, 0);
  EXPECT_THROW((void)store.load_step("Ocean1", 2), SetupError);
}

TEST(CheckpointStore, BadMagicRejected) {
  const CheckpointStore store(fresh_dir("magic"), 2);
  Checkpoint ckpt(1);
  ckpt.put_scalar("x", 1.0);
  store.save("m", ckpt);
  const std::string path = store.path_of("m", 1);
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << "NOTACKPT-garbage-garbage-garbage";
  }
  EXPECT_THROW((void)store.load_step("m", 1), SetupError);
}

}  // namespace
