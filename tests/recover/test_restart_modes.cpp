// Whole-job restart from checkpoints across all five integration modes
// (SCSE, SCME, MCSE, MCME, MIME): kill the job at every recovery kill
// point, relaunch against the same checkpoint store, and require the final
// results to be numerically identical to the fault-free run.  This is the
// allreduce-min consistency argument of DESIGN.md §13 exercised end to
// end: components die up to one coupling interval apart, and the retained
// two steps always contain a common restart point.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

#include "src/climate/scenario.hpp"
#include "src/minimpi/fault.hpp"
#include "tests/mph/mph_test_util.hpp"

namespace {

using minimpi::Comm;
using minimpi::JobReport;
using mph::Mph;
using mph::climate::ClimateConfig;
using mph::climate::ComponentResult;
using mph::climate::EnsembleResult;
using mph::climate::EnsembleSnapshot;
using mph::climate::RecoverySpec;
using mph::recover::CheckpointStore;
using mph::testing::TestExec;

ClimateConfig test_config() {
  ClimateConfig cfg;
  cfg.atm_nlon = 8;
  cfg.atm_nlat = 6;
  cfg.ocn_nlon = 12;
  cfg.ocn_nlat = 8;
  cfg.steps_per_interval = 2;
  cfg.intervals = 3;
  return cfg;
}

std::string fresh_dir(const std::string& name) {
  // pid-unique: ctest runs tests of this binary as concurrent processes.
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) /
      ("mph_restart_" + std::to_string(::getpid()) + "_" + name);
  std::filesystem::remove_all(dir);
  return dir.string();
}

// ---------------------------------------------------------------------------
// Coupled-system modes (SCME / MCSE / MCME).
// ---------------------------------------------------------------------------

struct CoupledOutcome {
  std::vector<double> mean_sst;
  std::vector<double> mean_t_atm;
};

enum class Wiring { scme, mcse, mcme };

/// One launch of the coupled system under `wiring` with recovery into
/// `store_dir`; `kill_step` < 0 runs fault-free, otherwise `kill_rank`
/// dies at that coupling interval and the job aborts.
JobReport run_coupled(Wiring wiring, const ClimateConfig& cfg,
                      const std::string& store_dir, std::int64_t kill_step,
                      minimpi::rank_t kill_rank, CoupledOutcome& outcome) {
  minimpi::JobOptions job = mph::testing::test_job_options();
  if (kill_step >= 0) {
    job.faults.kill_at_step(kill_rank, static_cast<std::uint64_t>(kill_step));
  }
  std::mutex mutex;
  auto body = [&](Mph& h, const Comm&) {
    CheckpointStore store(store_dir);
    const RecoverySpec spec{&store};
    const ComponentResult r =
        mph::climate::run_coupled_component(h, cfg, {}, "coupler", &spec);
    if (r.component == "coupler" && h.local_proc_id() == 0) {
      const std::lock_guard<std::mutex> lock(mutex);
      outcome.mean_sst = r.coupler.mean_sst;
      outcome.mean_t_atm = r.coupler.mean_t_atm;
    }
  };
  switch (wiring) {
    case Wiring::scme:
      return mph::testing::run_mph_job(
          "BEGIN\natmosphere\nocean\nland\nice\ncoupler\nEND\n",
          {TestExec{{"atmosphere"}, "", 2, body},
           TestExec{{"ocean"}, "", 2, body}, TestExec{{"land"}, "", 1, body},
           TestExec{{"ice"}, "", 1, body},
           TestExec{{"coupler"}, "", 1, body}},
          {}, std::move(job));
    case Wiring::mcse: {
      const std::string registry = R"(BEGIN
Multi_Component_Begin
atmosphere 0 1
ocean 2 3
land 4 4
ice 5 5
coupler 6 6
Multi_Component_End
END
)";
      auto master = [&, body](Mph& h, const Comm& world) {
        for (const char* role :
             {"atmosphere", "ocean", "land", "ice", "coupler"}) {
          if (h.proc_in_component(role)) body(h, world);
        }
      };
      return mph::testing::run_mph_job(
          registry,
          {TestExec{{"atmosphere", "ocean", "land", "ice", "coupler"}, "", 7,
                    master}},
          {}, std::move(job));
    }
    case Wiring::mcme: {
      const std::string registry = R"(BEGIN
Multi_Component_Begin
atmosphere 0 1
land 2 2
Multi_Component_End
Multi_Component_Begin
ocean 0 1
ice 2 2
Multi_Component_End
coupler
END
)";
      return mph::testing::run_mph_job(
          registry,
          {TestExec{{"atmosphere", "land"}, "", 3, body},
           TestExec{{"ocean", "ice"}, "", 3, body},
           TestExec{{"coupler"}, "", 1, body}},
          {}, std::move(job));
    }
  }
  return {};
}

void expect_same_series(const std::vector<double>& got,
                        const std::vector<double>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i], want[i]) << what << " interval " << i;
  }
}

void coupled_kill_restart_converges(Wiring wiring, const char* tag,
                                    minimpi::rank_t kill_rank) {
  const ClimateConfig cfg = test_config();

  CoupledOutcome reference;
  const JobReport ref_report = run_coupled(
      wiring, cfg, fresh_dir(std::string(tag) + "_ref"), -1, 0, reference);
  ASSERT_TRUE(ref_report.ok) << ref_report.abort_reason;
  ASSERT_EQ(reference.mean_sst.size(),
            static_cast<std::size_t>(cfg.intervals));

  for (int kill = 0; kill < cfg.intervals; ++kill) {
    const std::string dir =
        fresh_dir(std::string(tag) + "_kill" + std::to_string(kill));
    CoupledOutcome dead;
    const JobReport killed =
        run_coupled(wiring, cfg, dir, kill, kill_rank, dead);
    // No failure domains in the coupled wiring: the kill aborts the job.
    EXPECT_FALSE(killed.ok) << tag << " kill " << kill;

    CoupledOutcome resumed;
    const JobReport restart = run_coupled(wiring, cfg, dir, -1, 0, resumed);
    ASSERT_TRUE(restart.ok)
        << tag << " kill " << kill << ": " << restart.abort_reason << " / "
        << restart.first_error();
    expect_same_series(resumed.mean_sst, reference.mean_sst, tag);
    expect_same_series(resumed.mean_t_atm, reference.mean_t_atm, tag);
  }
}

TEST(RestartModes, SCMEKillEveryIntervalRestartConverges) {
  coupled_kill_restart_converges(Wiring::scme, "scme", /*kill_rank=*/2);
}

TEST(RestartModes, MCSEKillEveryIntervalRestartConverges) {
  coupled_kill_restart_converges(Wiring::mcse, "mcse", /*kill_rank=*/3);
}

TEST(RestartModes, MCMEKillEveryIntervalRestartConverges) {
  coupled_kill_restart_converges(Wiring::mcme, "mcme", /*kill_rank=*/3);
}

// ---------------------------------------------------------------------------
// SCSE: a single-component, single-executable job (the trivial wiring),
// driven by a solo checkpointing loop over the ocean model.
// ---------------------------------------------------------------------------

std::vector<double> run_scse(const ClimateConfig& cfg,
                             const std::string& store_dir,
                             std::int64_t kill_step, JobReport& report) {
  minimpi::JobOptions job = mph::testing::test_job_options();
  if (kill_step >= 0) {
    job.faults.kill_at_step(0, static_cast<std::uint64_t>(kill_step));
  }
  std::vector<double> series;
  std::mutex mutex;
  report = mph::testing::run_mph_job(
      "BEGIN\nsolo\nEND\n",
      {TestExec{
          {"solo"}, "", 2,
          [&](Mph& h, const Comm&) {
            mph::climate::Ocean model(cfg, h.comp_comm());
            CheckpointStore store(store_dir);
            std::vector<double> means;
            int start = 0;
            if (const auto ckpt = store.load_latest(h.comp_name())) {
              model.restore_state(ckpt->doubles("primary"), {}, false);
              means = ckpt->doubles("mean_series");
              start = static_cast<int>(ckpt->step()) + 1;
            }
            for (int interval = start; interval < cfg.intervals; ++interval) {
              h.world().fault_checkpoint(
                  static_cast<std::uint64_t>(interval));
              for (int s = 0; s < cfg.steps_per_interval; ++s) model.step();
              means.push_back(model.global_mean());
              const std::vector<double> full = model.export_state_primary();
              if (h.local_proc_id() == 0) {
                mph::recover::Checkpoint ckpt(
                    static_cast<std::uint64_t>(interval));
                ckpt.put_doubles("primary", full);
                ckpt.put_doubles("mean_series", means);
                store.save(h.comp_name(), ckpt);
              }
            }
            if (h.local_proc_id() == 0) {
              const std::lock_guard<std::mutex> lock(mutex);
              series = means;
            }
          }}},
      {}, std::move(job));
  return series;
}

TEST(RestartModes, SCSEKillEveryIntervalRestartConverges) {
  ClimateConfig cfg = test_config();
  cfg.intervals = 4;
  JobReport report;
  const std::vector<double> reference =
      run_scse(cfg, fresh_dir("scse_ref"), -1, report);
  ASSERT_TRUE(report.ok) << report.abort_reason;
  ASSERT_EQ(reference.size(), static_cast<std::size_t>(cfg.intervals));

  for (int kill = 0; kill < cfg.intervals; ++kill) {
    const std::string dir = fresh_dir("scse_kill" + std::to_string(kill));
    JobReport killed;
    (void)run_scse(cfg, dir, kill, killed);
    EXPECT_FALSE(killed.ok) << "kill " << kill;
    JobReport restart;
    const std::vector<double> resumed = run_scse(cfg, dir, -1, restart);
    ASSERT_TRUE(restart.ok) << restart.abort_reason;
    expect_same_series(resumed, reference, "scse");
  }
}

// ---------------------------------------------------------------------------
// MIME: ensemble + statistics, whole-job restart (no member isolation, so
// the kill aborts everything; the next launch restores instances AND the
// statistics component, which replays its unsent nudges).
// ---------------------------------------------------------------------------

const std::string kEnsembleRegistry = R"(BEGIN
Multi_Instance_Begin
Ocean1 0 1 diff=0.5
Ocean2 2 3 diff=1.0
Ocean3 4 5 diff=2.0
Multi_Instance_End
statistics
END
)";

std::vector<EnsembleSnapshot> run_mime(const ClimateConfig& cfg,
                                       const std::string& store_dir,
                                       std::int64_t kill_step,
                                       JobReport& report) {
  minimpi::JobOptions job = mph::testing::test_job_options();
  if (kill_step >= 0) {
    job.faults.kill_at_step(4, static_cast<std::uint64_t>(kill_step));
  }
  std::vector<EnsembleSnapshot> snapshots;
  std::mutex mutex;
  report = mph::testing::run_mph_job(
      kEnsembleRegistry,
      {TestExec{{}, "Ocean", 6,
                [&](Mph& h, const Comm&) {
                  CheckpointStore store(store_dir);
                  const RecoverySpec spec{&store};
                  (void)mph::climate::run_ensemble_instance(
                      h, cfg, "statistics", &spec);
                }},
       TestExec{{"statistics"}, "", 1,
                [&](Mph& h, const Comm&) {
                  CheckpointStore store(store_dir);
                  const RecoverySpec spec{&store};
                  const EnsembleResult r =
                      mph::climate::run_ensemble_statistics(h, cfg, "Ocean",
                                                            0.5, &spec);
                  if (h.local_proc_id() == 0) {
                    const std::lock_guard<std::mutex> lock(mutex);
                    snapshots = r.snapshots;
                  }
                }}},
      {}, std::move(job));
  return snapshots;
}

TEST(RestartModes, MIMEKillEveryKillPointRestartConverges) {
  ClimateConfig cfg = test_config();
  cfg.ocn_nlon = 12;
  cfg.ocn_nlat = 8;
  JobReport report;
  const std::vector<EnsembleSnapshot> reference =
      run_mime(cfg, fresh_dir("mime_ref"), -1, report);
  ASSERT_TRUE(report.ok) << report.abort_reason;
  ASSERT_EQ(reference.size(), static_cast<std::size_t>(cfg.intervals));

  // Recovery mode doubles the kill points: 2i at the interval boundary,
  // 2i+1 between the member's sample and its nudge.
  for (int kill = 0; kill < 2 * cfg.intervals; ++kill) {
    const std::string dir = fresh_dir("mime_kill" + std::to_string(kill));
    JobReport killed;
    (void)run_mime(cfg, dir, kill, killed);
    EXPECT_FALSE(killed.ok) << "kill " << kill;

    JobReport restart;
    const std::vector<EnsembleSnapshot> resumed =
        run_mime(cfg, dir, -1, restart);
    ASSERT_TRUE(restart.ok) << "kill " << kill << ": "
                            << restart.abort_reason << " / "
                            << restart.first_error();
    ASSERT_EQ(resumed.size(), reference.size()) << "kill " << kill;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_DOUBLE_EQ(resumed[i].mean, reference[i].mean)
          << "kill " << kill << " interval " << i;
      EXPECT_DOUBLE_EQ(resumed[i].variance, reference[i].variance)
          << "kill " << kill << " interval " << i;
    }
  }
}

}  // namespace
