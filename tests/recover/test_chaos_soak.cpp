// Randomized heal soak: for each seed, kill a randomly chosen ensemble
// member rank at a randomly chosen recovery kill point, let the supervisor
// respawn it, and require the final statistics to match the fault-free
// run bit for bit.  mph_watch rides along with a one-fault budget: every
// injected kill must surface as a fault_burn HealthEvent naming the
// victim's instance, and the fault-free reference must burn nothing — so
// the soak exercises the observability path as hard as the heal path.
// Seed count scales with MPH_CHAOS_SOAK_SEEDS (nightly CI cranks it up);
// failing seeds are appended to the file named by MPH_CHAOS_SOAK_ARTIFACT
// so a red run is reproducible locally with MPH_CHAOS_SOAK_SEEDS=1 after
// editing the seed below.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "src/climate/scenario.hpp"
#include "src/minimpi/fault.hpp"
#include "src/minimpi/launcher.hpp"
#include "src/minimpi/watch/watch.hpp"
#include "src/mph/recover.hpp"
#include "src/util/rng.hpp"
#include "tests/mph/mph_test_util.hpp"

namespace {

using minimpi::Comm;
using minimpi::JobReport;
using mph::Mph;
using mph::RegistrySource;
using mph::climate::EnsembleResult;
using mph::climate::EnsembleSnapshot;
using mph::climate::RecoverySpec;
using mph::recover::CheckpointStore;

const std::string kRegistry = R"(BEGIN
Multi_Instance_Begin
Ocean1 0 1 diff=0.5
Ocean2 2 3 diff=0.8
Ocean3 4 5 diff=1.3
Ocean4 6 7 diff=2.0
Multi_Instance_End
statistics
END
)";

constexpr int kIntervals = 4;
constexpr int kMembers = 4;

mph::climate::ClimateConfig soak_config() {
  mph::climate::ClimateConfig cfg;
  cfg.ocn_nlon = 12;
  cfg.ocn_nlat = 6;
  cfg.steps_per_interval = 2;
  cfg.intervals = kIntervals;
  return cfg;
}

std::string fresh_dir(const std::string& name) {
  // pid-unique: repeat/parallel soak invocations must not share stores.
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) /
      ("mph_soak_" + std::to_string(::getpid()) + "_" + name);
  std::filesystem::remove_all(dir);
  return dir.string();
}

int env_int(const char* name, int fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  return std::atoi(raw);
}

/// One supervised ensemble run; `kill_step` < 0 is the fault-free
/// reference.  Returns the job report; the final snapshots land in `out`.
JobReport run_soak(const std::string& store_dir, minimpi::rank_t victim,
                   std::int64_t kill_step,
                   std::vector<EnsembleSnapshot>& out) {
  mph::HandshakeOptions handshake;
  handshake.isolate_instances = true;
  handshake.liveness.attempts = 100;
  handshake.liveness.backoff = std::chrono::milliseconds(50);
  handshake.liveness.backoff_factor = 1.0;

  minimpi::JobOptions job = mph::testing::test_job_options();
  job.respawn.enabled = true;
  job.respawn.max_respawns = 2;
  job.respawn.backoff = std::chrono::milliseconds(5);
  if (kill_step >= 0) {
    job.faults.kill_at_step(victim, static_cast<std::uint64_t>(kill_step));
  }
  // Watch every run with a one-fault budget.  A short live interval keeps
  // the watcher's ring primed, so the launcher's final observe is a judged
  // frame and the cumulative fault_burn rule cannot miss the kill no
  // matter when it landed.
  job.monitor.enabled = true;
  job.monitor.interval = std::chrono::milliseconds(10);
  job.monitor.dir = store_dir + "_logs";
  job.monitor.socket = false;
  job.watch.enabled = true;
  job.watch.fault_budget = 1;
  job.watch.fire_after = 1;
  job.watch.clear_after = 1;
  job.watch.flight_record = false;  // no tracer in the soak jobs
  job.watch.dir = job.monitor.dir;

  const auto cfg = soak_config();
  const std::string store_copy = store_dir;
  std::mutex mutex;
  std::vector<minimpi::ExecSpec> specs;
  specs.push_back(minimpi::ExecSpec{
      "members", 2 * kMembers,
      [&handshake, cfg, store_copy](const Comm& world,
                                    const minimpi::ExecEnv& env) {
        const RegistrySource source = RegistrySource::from_text(kRegistry);
        Mph h = env.incarnation == 0
                    ? Mph::multi_instance(world, source, "Ocean", handshake)
                    : Mph::rejoin_instance(world, "Ocean", handshake);
        CheckpointStore store(store_copy);
        const RecoverySpec spec{&store};
        (void)mph::climate::run_ensemble_instance(h, cfg, "statistics", &spec);
      },
      {}});
  specs.push_back(minimpi::ExecSpec{
      "statistics", 1,
      [&, cfg, store_copy](const Comm& world, const minimpi::ExecEnv&) {
        const RegistrySource source = RegistrySource::from_text(kRegistry);
        Mph h =
            Mph::components_setup(world, source, {"statistics"}, handshake);
        CheckpointStore store(store_copy);
        const RecoverySpec spec{&store};
        const EnsembleResult r = mph::climate::run_ensemble_statistics(
            h, cfg, "Ocean", 0.5, &spec);
        const std::lock_guard<std::mutex> lock(mutex);
        out = r.snapshots;
      },
      {}});
  return minimpi::run_mpmd(specs, std::move(job));
}

/// The instance the registry assigns `rank` to (two ranks per member).
std::string member_of(minimpi::rank_t rank) {
  return "Ocean" + std::to_string(rank / 2 + 1);
}

bool burn_reported(const JobReport& report, const std::string& subject) {
  return std::any_of(report.health.begin(), report.health.end(),
                     [&](const minimpi::watch::HealthEvent& ev) {
                       return ev.rule == "fault_burn" && !ev.cleared &&
                              ev.subject == subject;
                     });
}

std::string describe_health(const JobReport& report) {
  std::string out = "health:";
  for (const minimpi::watch::HealthEvent& ev : report.health) {
    out += " " + ev.rule + "/" + ev.subject + (ev.cleared ? "(clear)" : "");
  }
  return out;
}

void record_failing_seed(std::uint64_t seed, minimpi::rank_t victim,
                         std::int64_t kill_step, const std::string& why) {
  const char* artifact = std::getenv("MPH_CHAOS_SOAK_ARTIFACT");
  if (artifact == nullptr || *artifact == '\0') return;
  std::ofstream f(artifact, std::ios::app);
  f << "seed=" << seed << " victim_rank=" << victim
    << " kill_step=" << kill_step << " why=" << why << "\n";
}

TEST(ChaosSoak, RandomKillsAlwaysHealToFaultFreeStatistics) {
  const int seeds = env_int("MPH_CHAOS_SOAK_SEEDS", 3);

  std::vector<EnsembleSnapshot> reference;
  const JobReport ref = run_soak(fresh_dir("reference"), 0, -1, reference);
  ASSERT_TRUE(ref.ok) << ref.abort_reason;
  ASSERT_EQ(reference.size(), static_cast<std::size_t>(kIntervals));
  // No injected faults, no burn: the fault-free run must not trip the
  // one-fault watch budget.
  for (const auto& ev : ref.health) {
    EXPECT_NE(ev.rule, "fault_burn") << describe_health(ref);
  }

  for (int i = 0; i < seeds; ++i) {
    const auto seed = static_cast<std::uint64_t>(1000 + i);
    mph::util::Rng rng(seed);
    // Kill either rank of a random member at a random kill point: 2i at
    // the interval boundary, 2i+1 between its sample and its nudge.
    const auto victim =
        static_cast<minimpi::rank_t>(rng() % (2 * kMembers));
    const auto kill_step =
        static_cast<std::int64_t>(rng() % (2 * kIntervals));
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " victim=" + std::to_string(victim) +
                 " kill_step=" + std::to_string(kill_step));

    std::vector<EnsembleSnapshot> healed;
    const JobReport report =
        run_soak(fresh_dir("seed" + std::to_string(seed)), victim, kill_step,
                 healed);
    const std::string victim_member = member_of(victim);
    bool ok = report.ok && report.recovery.healed() &&
              healed.size() == reference.size() &&
              burn_reported(report, victim_member);
    if (!ok) {
      record_failing_seed(seed, victim, kill_step,
                          !report.ok ? "job aborted: " + report.abort_reason
                          : !report.recovery.healed()
                              ? "no respawn recorded"
                          : healed.size() != reference.size()
                              ? "snapshot count mismatch"
                              : "no fault_burn health event for " +
                                    victim_member);
    }
    ASSERT_TRUE(report.ok) << report.abort_reason << " / "
                           << report.first_error();
    EXPECT_TRUE(report.recovery.healed());
    // The injected kill must surface through mph_watch: a fault_burn
    // HealthEvent naming the victim's instance.
    EXPECT_TRUE(burn_reported(report, victim_member))
        << describe_health(report);
    ASSERT_EQ(healed.size(), reference.size());
    for (std::size_t k = 0; k < reference.size(); ++k) {
      const bool match = healed[k].mean == reference[k].mean &&
                         healed[k].variance == reference[k].variance;
      if (!match && ok) {
        ok = false;
        record_failing_seed(seed, victim, kill_step,
                            "snapshot mismatch at interval " +
                                std::to_string(k));
      }
      EXPECT_DOUBLE_EQ(healed[k].mean, reference[k].mean)
          << "interval " << k;
      EXPECT_DOUBLE_EQ(healed[k].variance, reference[k].variance)
          << "interval " << k;
    }
  }
}

}  // namespace
