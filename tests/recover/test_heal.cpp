// The acceptance scenario of the recovery subsystem: a MIME ensemble
// member is killed mid-run at a deterministic kill point, the launcher
// supervisor respawns its ranks, the replacement restores from its latest
// checkpoint, rejoins via the blackboard layout, and the final ensemble
// statistics are identical to the fault-free run — on both sides of the
// sample/nudge exchange.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/climate/scenario.hpp"
#include "src/minimpi/fault.hpp"
#include "src/minimpi/launcher.hpp"
#include "src/mph/recover.hpp"
#include "tests/mph/mph_test_util.hpp"

namespace {

using minimpi::Comm;
using minimpi::JobReport;
using mph::Mph;
using mph::RegistrySource;
using mph::climate::EnsembleResult;
using mph::climate::EnsembleSnapshot;
using mph::climate::RecoverySpec;
using mph::recover::CheckpointStore;

const std::string kRegistry = R"(BEGIN
Multi_Instance_Begin
Ocean1 0 1 diff=0.5
Ocean2 2 3 diff=0.8
Ocean3 4 5 diff=1.3
Ocean4 6 7 diff=2.0
Multi_Instance_End
statistics
END
)";

constexpr int kIntervals = 5;
constexpr int kKillInterval = 2;
constexpr minimpi::rank_t kVictimRank = 4;  ///< Ocean3's first world rank
constexpr double kGain = 0.5;

mph::climate::ClimateConfig small_config() {
  mph::climate::ClimateConfig cfg;
  cfg.ocn_nlon = 18;
  cfg.ocn_nlat = 9;
  cfg.steps_per_interval = 2;
  cfg.intervals = kIntervals;
  return cfg;
}

std::string fresh_dir(const std::string& name) {
  // ctest runs each TEST as its own process; the pid keeps concurrent
  // processes (which each build their own reference) out of each other's
  // checkpoint stores.
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) /
      ("mph_heal_" + std::to_string(::getpid()) + "_" + name);
  std::filesystem::remove_all(dir);
  return dir.string();
}

struct Observed {
  std::mutex mutex;
  std::map<std::string, std::size_t> member_intervals;
  EnsembleResult stats;
  bool ocean3_ping = false;
  std::vector<std::string> directory_failed;
};

/// Run the supervised ensemble.  `kill_step` < 0 disables the fault (the
/// fault-free reference); otherwise Ocean3's first rank dies at that
/// recovery kill point and the supervisor replaces the member.
JobReport run_supervised(const std::string& store_dir, std::int64_t kill_step,
                         Observed& observed, bool respawn_enabled = true,
                         int liveness_attempts = 50) {
  mph::HandshakeOptions handshake;
  handshake.isolate_instances = true;
  handshake.liveness.attempts = liveness_attempts;
  handshake.liveness.backoff = std::chrono::milliseconds(100);
  handshake.liveness.backoff_factor = 1.0;

  minimpi::JobOptions job = mph::testing::test_job_options();
  job.respawn.enabled = respawn_enabled;
  job.respawn.max_respawns = 2;
  job.respawn.backoff = std::chrono::milliseconds(5);
  if (kill_step >= 0) {
    job.faults.kill_at_step(kVictimRank,
                            static_cast<std::uint64_t>(kill_step));
  }

  const auto cfg = small_config();
  std::vector<minimpi::ExecSpec> specs;
  specs.push_back(minimpi::ExecSpec{
      "members", 8,
      [&, cfg](const Comm& world, const minimpi::ExecEnv& env) {
        const RegistrySource source = RegistrySource::from_text(kRegistry);
        // A replacement incarnation re-enters here: it must rejoin the
        // running application instead of redoing the world-collective
        // handshake (the survivors are mid-run and will not participate).
        Mph h = env.incarnation == 0
                    ? Mph::multi_instance(world, source, "Ocean", handshake)
                    : Mph::rejoin_instance(world, "Ocean", handshake);
        CheckpointStore store(store_dir);
        const RecoverySpec spec{&store};
        const EnsembleResult r =
            mph::climate::run_ensemble_instance(h, cfg, "statistics", &spec);
        const std::lock_guard<std::mutex> lock(observed.mutex);
        auto& slot = observed.member_intervals[h.comp_name()];
        slot = std::max(slot, r.my_means.size());
      },
      {}});
  specs.push_back(minimpi::ExecSpec{
      "statistics", 1,
      [&, cfg](const Comm& world, const minimpi::ExecEnv&) {
        const RegistrySource source = RegistrySource::from_text(kRegistry);
        Mph h = Mph::components_setup(world, source, {"statistics"},
                                      handshake);
        CheckpointStore store(store_dir);
        const RecoverySpec spec{&store};
        EnsembleResult r = mph::climate::run_ensemble_statistics(
            h, cfg, "Ocean", kGain, &spec);
        const bool ping = h.ping("Ocean3");
        std::vector<std::string> failed = h.failed_components();
        const std::lock_guard<std::mutex> lock(observed.mutex);
        observed.stats = std::move(r);
        observed.ocean3_ping = ping;
        observed.directory_failed = std::move(failed);
      },
      {}});
  return minimpi::run_mpmd(specs, std::move(job));
}

/// Shared fault-free reference (computed once; gtest runs tests serially).
const std::vector<EnsembleSnapshot>& reference_snapshots() {
  static const std::vector<EnsembleSnapshot> reference = [] {
    Observed observed;
    const JobReport report =
        run_supervised(fresh_dir("reference"), -1, observed);
    EXPECT_TRUE(report.ok) << report.abort_reason;
    EXPECT_FALSE(report.recovery.healed());
    return observed.stats.snapshots;
  }();
  return reference;
}

void expect_heals_and_matches_reference(std::int64_t kill_step,
                                        const std::string& tag) {
  Observed observed;
  const JobReport report =
      run_supervised(fresh_dir(tag), kill_step, observed);

  // The job succeeded end to end and the supervisor healed the member.
  ASSERT_TRUE(report.ok) << report.abort_reason << " / "
                         << report.first_error();
  ASSERT_TRUE(report.recovery.healed());
  ASSERT_EQ(report.recovery.respawns.size(), 1u);
  const minimpi::RespawnEvent& event = report.recovery.respawns.front();
  EXPECT_EQ(event.incarnation, 1);
  EXPECT_EQ(event.ranks, (std::vector<minimpi::rank_t>{4, 5}));
  EXPECT_NE(event.cause.find("rank 4"), std::string::npos) << event.cause;

  // Both of Ocean3's original ranks died (the kill plus the collateral
  // unwind) and were contained, not job-fatal.
  EXPECT_TRUE(report.failures.empty());
  EXPECT_GE(report.contained.size(), 2u);

  // The replacement restored, recomputed, and finished every interval.
  ASSERT_TRUE(observed.member_intervals.contains("Ocean3"));
  EXPECT_EQ(observed.member_intervals.at("Ocean3"),
            static_cast<std::size_t>(kIntervals));

  // The statistics saw the member heal: nobody is reported failed, Ocean3
  // is reported healed, and the liveness caches are clean again.
  EXPECT_TRUE(observed.stats.failed_members.empty());
  ASSERT_EQ(observed.stats.healed_members.size(), 1u);
  EXPECT_EQ(observed.stats.healed_members.front(), "Ocean3");
  EXPECT_TRUE(observed.ocean3_ping);
  EXPECT_TRUE(observed.directory_failed.empty());

  // The decisive check: the healed ensemble's statistics are numerically
  // identical to the fault-free run, interval by interval.
  const std::vector<EnsembleSnapshot>& reference = reference_snapshots();
  ASSERT_EQ(observed.stats.snapshots.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_DOUBLE_EQ(observed.stats.snapshots[i].mean, reference[i].mean)
        << "interval " << i;
    EXPECT_DOUBLE_EQ(observed.stats.snapshots[i].variance,
                     reference[i].variance)
        << "interval " << i;
    EXPECT_DOUBLE_EQ(observed.stats.snapshots[i].min, reference[i].min);
    EXPECT_DOUBLE_EQ(observed.stats.snapshots[i].max, reference[i].max);
    EXPECT_DOUBLE_EQ(observed.stats.snapshots[i].median, reference[i].median);
  }
}

TEST(Heal, KilledAtIntervalBoundaryHealsToFaultFreeStatistics) {
  // Kill point 2i: the member dies before the interval's work, having
  // never sent its sample — the statistics wait out the respawn.
  expect_heals_and_matches_reference(2 * kKillInterval, "boundary");
}

TEST(Heal, KilledAfterSampleSentHealsToFaultFreeStatistics) {
  // Kill point 2i+1: the member dies after reporting but before the nudge
  // arrives — the replacement replays the sample and the statistics answer
  // it with the cached nudge.
  expect_heals_and_matches_reference(2 * kKillInterval + 1, "post_sample");
}

TEST(Heal, RecoveryProtocolMatchesLegacyNumerics) {
  // The interval-tagged recovery protocol must not change the numbers: a
  // fault-free run with recovery enabled equals the legacy run.
  mph::HandshakeOptions handshake;
  handshake.isolate_instances = true;
  const auto cfg = small_config();
  std::vector<EnsembleSnapshot> legacy;
  std::mutex mutex;
  mph::testing::run_mph_ok(
      kRegistry,
      {mph::testing::TestExec{{}, "Ocean", 8,
                              [&cfg](Mph& h, const Comm&) {
                                (void)mph::climate::run_ensemble_instance(
                                    h, cfg, "statistics");
                              }},
       mph::testing::TestExec{
           {"statistics"}, "", 1,
           [&](Mph& h, const Comm&) {
             const EnsembleResult r = mph::climate::run_ensemble_statistics(
                 h, cfg, "Ocean", kGain);
             const std::lock_guard<std::mutex> lock(mutex);
             legacy = r.snapshots;
           }}},
      handshake);

  const std::vector<EnsembleSnapshot>& recovery = reference_snapshots();
  ASSERT_EQ(legacy.size(), recovery.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_DOUBLE_EQ(legacy[i].mean, recovery[i].mean) << "interval " << i;
    EXPECT_DOUBLE_EQ(legacy[i].variance, recovery[i].variance);
  }
}

TEST(Heal, WithoutRespawnTheMemberStaysDeadLegacySemantics) {
  // Recovery enabled but no supervisor and a single-shot liveness policy:
  // the death is final and reported exactly as before this subsystem.
  Observed observed;
  const JobReport report = run_supervised(
      fresh_dir("no_respawn"), 2 * kKillInterval, observed,
      /*respawn_enabled=*/false, /*liveness_attempts=*/1);
  ASSERT_TRUE(report.ok) << report.abort_reason;
  EXPECT_FALSE(report.recovery.healed());
  ASSERT_EQ(observed.stats.failed_members.size(), 1u);
  EXPECT_EQ(observed.stats.failed_members.front(), "Ocean3");
  EXPECT_TRUE(observed.stats.healed_members.empty());
  EXPECT_FALSE(observed.ocean3_ping);
  // Survivors still aggregated every interval.
  EXPECT_EQ(observed.stats.snapshots.size(),
            static_cast<std::size_t>(kIntervals));
}

}  // namespace
