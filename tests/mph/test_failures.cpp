// Failure injection across the handshake: every way the registration file
// and the launched job can disagree must produce a clean, specific error on
// every rank (no hangs).
#include <gtest/gtest.h>

#include "src/minimpi/collectives.hpp"
#include "tests/mph/mph_test_util.hpp"

using namespace mph;
using namespace mph::testing;
using minimpi::Comm;

TEST(SetupFailures, ComponentNotInRegistrationFile) {
  // §4.1: "the name-tags called in atmosphere component must appear
  // correctly in the registration file."
  const std::string err = run_mph_error(
      "BEGIN\natmosphere\nocean\nEND\n",
      {TestExec{{"atmosphere"}, "", 1, nullptr},
       TestExec{{"aerosols"}, "", 1, nullptr}});
  EXPECT_NE(err.find("aerosols"), std::string::npos);
  EXPECT_NE(err.find("no matching entry"), std::string::npos);
}

TEST(SetupFailures, RegistryEntryNotLaunched) {
  const std::string err = run_mph_error(
      "BEGIN\natmosphere\nocean\ncoupler\nEND\n",
      {TestExec{{"atmosphere"}, "", 1, nullptr},
       TestExec{{"ocean"}, "", 1, nullptr}});
  EXPECT_NE(err.find("coupler"), std::string::npos);
  EXPECT_NE(err.find("not provided"), std::string::npos);
}

TEST(SetupFailures, TwoExecutablesSameName) {
  const std::string err = run_mph_error(
      "BEGIN\nocean\nstats\nEND\n",
      {TestExec{{"ocean"}, "", 1, nullptr},
       TestExec{{"stats"}, "", 1, nullptr},
       TestExec{{"ocean"}, "", 1, nullptr}});
  EXPECT_NE(err.find("Multi_Instance"), std::string::npos);
}

TEST(SetupFailures, MalformedRegistryPropagatesToAllRanks) {
  const std::string err = run_mph_error(
      "BEGIN\nocean\n",  // missing END
      {TestExec{{"ocean"}, "", 2, nullptr}});
  EXPECT_NE(err.find("END"), std::string::npos);
}

TEST(SetupFailures, EmptyNameListRejected) {
  const std::string err = run_mph_error(
      "BEGIN\nocean\nEND\n", {TestExec{{}, "", 1, nullptr}});
  EXPECT_NE(err.find("no component names"), std::string::npos);
}

TEST(SetupFailures, DuplicateNameInOneSetupCall) {
  const std::string err = run_mph_error(
      "BEGIN\nMulti_Component_Begin\na 0 0\nb 1 1\nMulti_Component_End\nEND\n",
      {TestExec{{"a", "a"}, "", 2, nullptr}});
  EXPECT_NE(err.find("repeated"), std::string::npos);
}

TEST(SetupFailures, InvalidNameInSetupCall) {
  const std::string err = run_mph_error(
      "BEGIN\nocean\nEND\n", {TestExec{{"has space"}, "", 1, nullptr}});
  EXPECT_NE(err.find("invalid component name"), std::string::npos);
}

TEST(SetupFailures, TooManyNamesInSetupCall) {
  std::vector<std::string> names;
  for (int i = 0; i < 11; ++i) names.push_back("c" + std::to_string(i));
  const std::string err = run_mph_error("BEGIN\nocean\nEND\n",
                                        {TestExec{names, "", 1, nullptr}});
  EXPECT_NE(err.find("up to 10"), std::string::npos);
}

TEST(SetupFailures, MultiComponentExecutableTooSmallForRanges) {
  // Block needs 6 ranks (max high = 5); executable gets 4.
  const std::string err = run_mph_error(
      "BEGIN\nMulti_Component_Begin\na 0 2\nb 3 5\nMulti_Component_End\nEND\n",
      {TestExec{{"a", "b"}, "", 4, nullptr}});
  EXPECT_NE(err.find("counts must agree"), std::string::npos);
}

TEST(SetupFailures, MultiComponentExecutableTooLargeForRanges) {
  const std::string err = run_mph_error(
      "BEGIN\nMulti_Component_Begin\na 0 2\nb 3 5\nMulti_Component_End\nEND\n",
      {TestExec{{"a", "b"}, "", 8, nullptr}});
  EXPECT_NE(err.find("counts must agree"), std::string::npos);
}

TEST(SetupFailures, InstanceDeclaredAsComponent) {
  // Declaring "Ocean1" via components_setup does not match a
  // Multi_Instance block: instance expansion requires multi_instance().
  const std::string registry =
      "BEGIN\nMulti_Instance_Begin\nOcean1 0 0\nOcean2 1 1\n"
      "Multi_Instance_End\nEND\n";
  const std::string err = run_mph_error(
      registry, {TestExec{{"Ocean1"}, "", 1, nullptr},
                 TestExec{{"Ocean2"}, "", 1, nullptr}});
  EXPECT_NE(err.find("no matching entry"), std::string::npos);
}

TEST(SetupFailures, ComponentDeclaredAsInstance) {
  const std::string err = run_mph_error(
      "BEGIN\nocean\nEND\n", {TestExec{{}, "ocean", 1, nullptr}});
  EXPECT_NE(err.find("Multi_Instance"), std::string::npos);
}

TEST(SetupFailures, UnreadableRegistryPath) {
  const minimpi::JobReport report = minimpi::run_mpmd(
      {minimpi::ExecSpec{
          "solo", 2,
          [](const Comm& world, const minimpi::ExecEnv&) {
            (void)Mph::components_setup(
                world, RegistrySource::from_path("/no/such/file.in"),
                {"solo"});
          },
          {}}},
      test_job_options());
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.abort_reason.find("cannot open"), std::string::npos);
}

TEST(RuntimeFailures, ComponentCrashMidCoupledExchangeAbortsCleanly) {
  // A component dies between exchanges; its peers are blocked in recv and
  // must unwind with the root cause reported, not hang (the mpirun
  // kill-the-job behaviour).
  minimpi::JobOptions options;
  options.recv_timeout = std::chrono::seconds(30);
  const std::string registry = "BEGIN\nproducer\nconsumer\nEND\n";
  const minimpi::JobReport report = minimpi::run_mpmd(
      {
          minimpi::ExecSpec{
              "producer", 1,
              [&](const Comm& world, const minimpi::ExecEnv&) {
                Mph h = Mph::components_setup(
                    world, RegistrySource::from_text(registry), {"producer"});
                h.send(1.0, "consumer", 0, 0);  // first exchange succeeds
                throw std::runtime_error("producer segfault stand-in");
              },
              {}},
          minimpi::ExecSpec{
              "consumer", 2,
              [&](const Comm& world, const minimpi::ExecEnv&) {
                Mph h = Mph::components_setup(
                    world, RegistrySource::from_text(registry), {"consumer"});
                if (h.local_proc_id() == 0) {
                  double v = 0;
                  h.recv(v, "producer", 0, 0);
                  EXPECT_EQ(v, 1.0);
                  h.recv(v, "producer", 0, 0);  // never sent: must abort
                } else {
                  // Blocked in a component collective at crash time.
                  minimpi::barrier(h.comp_comm());
                  minimpi::barrier(h.comp_comm());
                  double v = 0;
                  h.world().recv(v, minimpi::any_source, 99);
                }
              },
              {}},
      },
      options);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.abort_reason.find("producer segfault stand-in"),
            std::string::npos);
  ASSERT_FALSE(report.failures.empty());
  EXPECT_EQ(report.failures.front().what, "producer segfault stand-in");
}

TEST(RuntimeFailures, ChainedJoinsWithSharedLeaderStayOrdered) {
  // join(A,B) then join(A,C): the shared leader issues two context
  // distributions over the same control tag; FIFO per (src,dst,tag) must
  // keep them straight.
  const std::string registry = "BEGIN\nA\nB\nC\nEND\n";
  auto a_body = [](Mph& h, const Comm&) {
    const minimpi::Comm ab = h.comm_join("A", "B");
    const minimpi::Comm ac = h.comm_join("A", "C");
    EXPECT_NE(ab.context(), ac.context());
    int v1 = h.local_proc_id() == 0 ? 11 : 0;
    minimpi::bcast_value(ab, v1, 0);
    EXPECT_EQ(v1, 11);
    int v2 = h.local_proc_id() == 0 ? 22 : 0;
    minimpi::bcast_value(ac, v2, 0);
    EXPECT_EQ(v2, 22);
  };
  auto b_body = [](Mph& h, const Comm&) {
    const minimpi::Comm ab = h.comm_join("A", "B");
    int v1 = 0;
    minimpi::bcast_value(ab, v1, 0);
    EXPECT_EQ(v1, 11);
  };
  auto c_body = [](Mph& h, const Comm&) {
    const minimpi::Comm ac = h.comm_join("A", "C");
    int v2 = 0;
    minimpi::bcast_value(ac, v2, 0);
    EXPECT_EQ(v2, 22);
  };
  run_mph_ok(registry, {TestExec{{"A"}, "", 2, a_body},
                        TestExec{{"B"}, "", 2, b_body},
                        TestExec{{"C"}, "", 1, c_body}});
}

TEST(SetupFailures, ErrorsDoNotHangOtherExecutables) {
  // One executable's name mismatch must abort the whole job promptly, even
  // though the other executable would otherwise block in the handshake.
  minimpi::JobOptions options;
  options.recv_timeout = std::chrono::seconds(30);
  const std::string registry = "BEGIN\na\nb\nEND\n";
  std::vector<minimpi::ExecSpec> specs;
  specs.push_back(minimpi::ExecSpec{
      "good", 1,
      [&](const Comm& world, const minimpi::ExecEnv&) {
        (void)Mph::components_setup(
            world, RegistrySource::from_text(registry), {"a"});
      },
      {}});
  specs.push_back(minimpi::ExecSpec{
      "bad", 1,
      [&](const Comm& world, const minimpi::ExecEnv&) {
        (void)Mph::components_setup(
            world, RegistrySource::from_text(registry), {"wrong"});
      },
      {}});
  const minimpi::JobReport report = minimpi::run_mpmd(specs, options);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.abort_reason.find("wrong"), std::string::npos);
}
