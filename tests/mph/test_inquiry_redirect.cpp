// Inquiry functions (paper §5.3), multi-channel output (paper §5.4), and
// the paper-spelling compat layer.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "src/mph/compat.hpp"
#include "tests/mph/mph_test_util.hpp"

using namespace mph;
using namespace mph::testing;
using minimpi::Comm;

namespace {
const std::string kRegistry = "BEGIN\natmosphere\nocean\ncoupler\nEND\n";

std::string read_file(const std::filesystem::path& p) {
  std::ifstream in(p);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::filesystem::path fresh_dir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}
}  // namespace

TEST(Inquiry, AllPaperFunctions) {
  run_mph_ok(
      kRegistry,
      {TestExec{{"atmosphere"}, "", 3,
                [](Mph& h, const Comm& world) {
                  EXPECT_EQ(h.local_proc_id(), world.rank());
                  EXPECT_EQ(h.global_proc_id(), world.rank());
                  EXPECT_EQ(h.comp_name(), "atmosphere");
                  EXPECT_EQ(h.total_components(), 3);
                  EXPECT_EQ(h.exe_low_proc_limit(), 0);
                  EXPECT_EQ(h.exe_up_proc_limit(), 2);
                  EXPECT_EQ(h.exec_index(), 0);
                  EXPECT_EQ(h.my_components(),
                            std::vector<std::string>{"atmosphere"});
                }},
       TestExec{{"ocean"}, "", 2,
                [](Mph& h, const Comm& world) {
                  EXPECT_EQ(h.local_proc_id(), world.rank() - 3);
                  EXPECT_EQ(h.exe_low_proc_limit(), 3);
                  EXPECT_EQ(h.exe_up_proc_limit(), 4);
                }},
       TestExec{{"coupler"}, "", 1, nullptr}});
}

TEST(Inquiry, DirectoryCoverageQueries) {
  run_mph_ok(kRegistry,
             {TestExec{{"atmosphere"}, "", 2,
                       [](Mph& h, const Comm&) {
                         const Directory& dir = h.directory();
                         EXPECT_EQ(dir.components_covering(0),
                                   std::vector<int>{0});
                         EXPECT_EQ(dir.components_covering(3),
                                   std::vector<int>{2});
                         EXPECT_EQ(dir.exec_of_world_rank(2).base, 2);
                         EXPECT_EQ(dir.local_rank("ocean", 2), 0);
                         EXPECT_EQ(dir.local_rank("ocean", 0), -1);
                         EXPECT_EQ(dir.component_names(),
                                   (std::vector<std::string>{
                                       "atmosphere", "ocean", "coupler"}));
                       }},
              TestExec{{"ocean"}, "", 1, nullptr},
              TestExec{{"coupler"}, "", 1, nullptr}});
}

TEST(Redirect, ComponentRootsGetOwnLogFiles) {
  const auto dir = fresh_dir("mph_redirect_roots");
  run_mph_ok(
      kRegistry,
      {TestExec{{"atmosphere"}, "", 2,
                [&dir](Mph& h, const Comm&) {
                  h.redirect_output(dir.string());
                  h.out() << "atm step 1 ok" << std::endl;
                  h.flush_output();
                }},
       TestExec{{"ocean"}, "", 2,
                [&dir](Mph& h, const Comm&) {
                  h.redirect_output(dir.string());
                  h.out() << "ocn SST=15.5" << std::endl;
                  h.flush_output();
                }},
       TestExec{{"coupler"}, "", 1,
                [&dir](Mph& h, const Comm&) {
                  h.redirect_output(dir.string());
                  h.out() << "cpl fluxes merged" << std::endl;
                  h.flush_output();
                }}});

  // Local proc 0 of each component writes to <component>.log ...
  const std::string atm_log = read_file(dir / "atmosphere.log");
  EXPECT_NE(atm_log.find("atm step 1 ok"), std::string::npos);
  const std::string ocn_log = read_file(dir / "ocean.log");
  EXPECT_NE(ocn_log.find("SST=15.5"), std::string::npos);
  const std::string cpl_log = read_file(dir / "coupler.log");
  EXPECT_NE(cpl_log.find("fluxes merged"), std::string::npos);

  // ... and non-root writes land in the combined file, prefixed.
  const std::string combined =
      read_file(dir / OutputRouter::kCombinedLogName);
  EXPECT_NE(combined.find("[atmosphere:1] atm step 1 ok"),
            std::string::npos);
  EXPECT_NE(combined.find("[ocean:1] ocn SST=15.5"), std::string::npos);
  // The single-rank coupler has no non-root ranks.
  EXPECT_EQ(combined.find("coupler"), std::string::npos);
}

TEST(Redirect, LinesFromConcurrentRanksStayIntact) {
  const auto dir = fresh_dir("mph_redirect_atomic");
  run_mph_ok("BEGIN\nnoisy\nEND\n",
             {TestExec{{"noisy"}, "", 4, [&dir](Mph& h, const Comm&) {
                         h.redirect_output(dir.string());
                         for (int i = 0; i < 50; ++i) {
                           h.out() << "rank " << h.local_proc_id()
                                   << " line " << i << " complete"
                                   << std::endl;
                         }
                         h.flush_output();
                       }}});
  // Every line in the combined file must be whole (prefix...complete).
  std::ifstream in(dir / OutputRouter::kCombinedLogName);
  std::string line;
  int count = 0;
  while (std::getline(in, line)) {
    EXPECT_TRUE(line.starts_with("[noisy:")) << line;
    EXPECT_TRUE(line.ends_with("complete")) << line;
    ++count;
  }
  EXPECT_EQ(count, 3 * 50);  // ranks 1..3; rank 0 went to noisy.log
}

TEST(Redirect, PartialLineFlushedOnDemand) {
  const auto dir = fresh_dir("mph_redirect_partial");
  run_mph_ok("BEGIN\nsolo\nEND\n",
             {TestExec{{"solo"}, "", 1, [&dir](Mph& h, const Comm&) {
                         h.redirect_output(dir.string());
                         h.out() << "no newline here";
                         h.flush_output();
                       }}});
  EXPECT_NE(read_file(dir / "solo.log").find("no newline here"),
            std::string::npos);
}

TEST(Redirect, OutBeforeRedirectThrows) {
  run_mph_ok("BEGIN\nsolo\nEND\n",
             {TestExec{{"solo"}, "", 1, [](Mph& h, const Comm&) {
                         EXPECT_THROW((void)h.out(), MphError);
                       }}});
}

// ---------------------------------------------------------------------------
// Paper-spelling compat layer.
// ---------------------------------------------------------------------------

TEST(Compat, PaperStyleMainProgram) {
  const minimpi::JobReport report = minimpi::run_mpmd(
      {
          minimpi::ExecSpec{
              "atm", 2,
              [](const Comm& world, const minimpi::ExecEnv&) {
                using namespace mph::compat;
                const RegistrySource source =
                    RegistrySource::from_text(kRegistry);
                // atmosphere_World = MPH_components_setup(name1="atmosphere")
                const Comm atmosphere_world =
                    MPH_components_setup(world, source, {"atmosphere"});
                EXPECT_EQ(atmosphere_world.size(), 2);
                EXPECT_EQ(MPH_comp_name(), "atmosphere");
                EXPECT_EQ(MPH_local_proc_id(), atmosphere_world.rank());
                EXPECT_EQ(MPH_global_proc_id(), world.rank());
                EXPECT_EQ(MPH_total_components(), 3);
                EXPECT_EQ(MPH_exe_low_proc_limit(), 0);
                EXPECT_EQ(MPH_exe_up_proc_limit(), 1);
                EXPECT_TRUE(MPH_global_world().valid());
                clear_current();
              },
              {}},
          minimpi::ExecSpec{
              "ocn", 1,
              [](const Comm& world, const minimpi::ExecEnv&) {
                using namespace mph::compat;
                const Comm ocean_world = MPH_components_setup(
                    world, RegistrySource::from_text(kRegistry), {"ocean"});
                EXPECT_EQ(ocean_world.size(), 1);
                Comm check;
                EXPECT_TRUE(PROC_in_component("ocean", check));
                EXPECT_FALSE(PROC_in_component("atmosphere", check));
                clear_current();
              },
              {}},
          minimpi::ExecSpec{
              "cpl", 1,
              [](const Comm& world, const minimpi::ExecEnv&) {
                using namespace mph::compat;
                (void)MPH_components_setup(
                    world, RegistrySource::from_text(kRegistry), {"coupler"});
                clear_current();
              },
              {}},
      },
      test_job_options());
  ASSERT_TRUE(report.ok) << report.abort_reason << " / "
                         << report.first_error();
}

TEST(Compat, NoSetupThrows) {
  mph::compat::clear_current();
  EXPECT_FALSE(mph::compat::has_current());
  EXPECT_THROW((void)mph::compat::MPH_local_proc_id(), MphError);
}

TEST(Compat, ArgumentOverloads) {
  const std::string registry = R"(BEGIN
Multi_Instance_Begin
Run1 0 0 infile alpha=3 beta=4.5 debug=on tag=hi
Multi_Instance_End
END
)";
  const minimpi::JobReport report = minimpi::run_mpmd(
      {minimpi::ExecSpec{
          "run", 1,
          [&registry](const Comm& world, const minimpi::ExecEnv&) {
            using namespace mph::compat;
            (void)MPH_multi_instance(
                world, RegistrySource::from_text(registry), "Run");
            int alpha = 0;
            EXPECT_TRUE(MPH_get_argument("alpha", alpha));
            EXPECT_EQ(alpha, 3);
            double beta = 0;
            EXPECT_TRUE(MPH_get_argument("beta", beta));
            EXPECT_DOUBLE_EQ(beta, 4.5);
            bool debug = false;
            EXPECT_TRUE(MPH_get_argument("debug", debug));
            EXPECT_TRUE(debug);
            std::string tag;
            EXPECT_TRUE(MPH_get_argument("tag", tag));
            EXPECT_EQ(tag, "hi");
            std::string field;
            EXPECT_TRUE(MPH_get_argument(std::size_t{1}, field));
            EXPECT_EQ(field, "infile");
            clear_current();
          },
          {}}},
      test_job_options());
  ASSERT_TRUE(report.ok) << report.abort_reason;
}
