// MIME mode (paper §2.5, §4.4): multi-instance executables for ensemble
// simulations, instance argument passing, coexistence with other modes.
#include <gtest/gtest.h>

#include "src/minimpi/collectives.hpp"
#include "tests/mph/mph_test_util.hpp"

using namespace mph;
using namespace mph::testing;
using minimpi::Comm;

namespace {
// The paper's §4.4 registration file, scaled down 4x: three Ocean
// instances of 4 ranks each plus a 1-rank statistics executable.
const std::string kMimeRegistry = R"(BEGIN
Multi_Instance_Begin ! a multi-instance exec
Ocean1 0 3 inf1 outf1 logf alpha=3 debug=on
Ocean2 4 7 inf2 outf2 beta=4.5 debug=off
Ocean3 8 11 inf3 dynamics=finite_volume
Multi_Instance_End
statistics ! a single-component exec
END
)";
}  // namespace

TEST(SetupMIME, InstancesExpandIntoComponents) {
  run_mph_ok(
      kMimeRegistry,
      {TestExec{{}, "Ocean", 12,
                [](Mph& h, const Comm& world) {
                  EXPECT_EQ(h.total_components(), 4);  // 3 instances + stats
                  EXPECT_EQ(h.num_executables(), 2);
                  // Expanded name, not the prefix.
                  const std::string expect =
                      "Ocean" + std::to_string(world.rank() / 4 + 1);
                  EXPECT_EQ(h.comp_name(), expect);
                  EXPECT_EQ(h.comp_comm().size(), 4);
                  EXPECT_EQ(h.local_proc_id(), world.rank() % 4);
                  // All instances share one executable.
                  EXPECT_EQ(h.exec_comm().size(), 12);
                  EXPECT_EQ(h.exe_low_proc_limit(), 0);
                  EXPECT_EQ(h.exe_up_proc_limit(), 11);
                }},
       TestExec{{"statistics"}, "", 1,
                [](Mph& h, const Comm&) {
                  EXPECT_EQ(h.comp_name(), "statistics");
                  EXPECT_EQ(h.directory().component("Ocean2").global_low, 4);
                }}});
}

TEST(SetupMIME, PaperArgumentRetrieval) {
  run_mph_ok(
      kMimeRegistry,
      {TestExec{{}, "Ocean", 12,
                [](Mph& h, const Comm& world) {
                  const int instance = world.rank() / 4;  // 0,1,2
                  if (instance == 0) {
                    // call MPH_get_argument("alpha", alpha2) -> 3
                    int alpha = 0;
                    EXPECT_TRUE(h.get_argument("alpha", alpha));
                    EXPECT_EQ(alpha, 3);
                    bool debug = false;
                    EXPECT_TRUE(h.get_argument("debug", debug));
                    EXPECT_TRUE(debug);
                    // field 1 is "inf1"
                    std::string fname;
                    EXPECT_TRUE(h.get_argument_field(1, fname));
                    EXPECT_EQ(fname, "inf1");
                  } else if (instance == 1) {
                    double beta = 0;
                    EXPECT_TRUE(h.get_argument("beta", beta));
                    EXPECT_DOUBLE_EQ(beta, 4.5);
                    int alpha = 0;
                    EXPECT_FALSE(h.get_argument("alpha", alpha));
                  } else {
                    std::string dynamics;
                    EXPECT_TRUE(h.get_argument("dynamics", dynamics));
                    EXPECT_EQ(dynamics, "finite_volume");
                    std::string fname;
                    EXPECT_TRUE(h.get_argument_field(1, fname));
                    EXPECT_EQ(fname, "inf3");
                    EXPECT_FALSE(h.get_argument_field(2, fname));
                  }
                }},
       TestExec{{"statistics"}, "", 1, nullptr}});
}

TEST(SetupMIME, EnsembleAveragingOnTheFly) {
  // The paper's flagship use case: instances run concurrently, statistics
  // aggregates instantaneous fields.  Each instance's local root sends its
  // instantaneous "temperature" to statistics, which forms the ensemble
  // mean — impossible with K independent jobs.
  run_mph_ok(
      kMimeRegistry,
      {TestExec{{}, "Ocean", 12,
                [](Mph& h, const Comm&) {
                  // Per-instance field value keyed by the instance id.
                  const double field = 10.0 * (h.comp_id() + 1);
                  const double local_mean = minimpi::allreduce_value(
                      h.comp_comm(), field, minimpi::op::Sum{}) /
                      h.comp_comm().size();
                  if (h.local_proc_id() == 0) {
                    h.send(local_mean, "statistics", 0, 1);
                  }
                }},
       TestExec{{"statistics"}, "", 1,
                [](Mph& h, const Comm&) {
                  double sum = 0;
                  for (int i = 0; i < 3; ++i) {
                    double v = 0;
                    h.world().recv(v, minimpi::any_source, 1);
                    sum += v;
                  }
                  EXPECT_DOUBLE_EQ(sum / 3.0, 20.0);  // mean of 10,20,30
                }}});
}

TEST(SetupMIME, UnequalInstanceSizes) {
  const std::string registry = R"(BEGIN
Multi_Instance_Begin
Run_small 0 0
Run_medium 1 3
Run_large 4 9
Multi_Instance_End
END
)";
  run_mph_ok(registry,
             {TestExec{{}, "Run_", 10, [](Mph& h, const Comm& world) {
                         if (world.rank() == 0) {
                           EXPECT_EQ(h.comp_name(), "Run_small");
                           EXPECT_EQ(h.comp_comm().size(), 1);
                         } else if (world.rank() <= 3) {
                           EXPECT_EQ(h.comp_name(), "Run_medium");
                           EXPECT_EQ(h.comp_comm().size(), 3);
                         } else {
                           EXPECT_EQ(h.comp_name(), "Run_large");
                           EXPECT_EQ(h.comp_comm().size(), 6);
                         }
                       }}});
}

TEST(SetupMIME, AllThreeExecutableKindsCoexist) {
  // §4.4: "Any other mix of single-component and/or multi-component
  // executables may coexist with multi-instance executables."
  const std::string registry = R"(BEGIN
Multi_Instance_Begin
Ens1 0 1 diff=0.5
Ens2 2 3 diff=2.0
Multi_Instance_End
Multi_Component_Begin
atmosphere 0 1
land 2 2
Multi_Component_End
coupler
END
)";
  run_mph_ok(
      registry,
      {TestExec{{}, "Ens", 4,
                [](Mph& h, const Comm&) {
                  EXPECT_EQ(h.total_components(), 5);
                  EXPECT_EQ(h.num_executables(), 3);
                  EXPECT_TRUE(h.comp_name() == "Ens1" ||
                              h.comp_name() == "Ens2");
                  double diff = 0;
                  EXPECT_TRUE(h.get_argument("diff", diff));
                  // Cross-kind messaging: each instance root pings coupler.
                  if (h.local_proc_id() == 0) {
                    h.send(diff, "coupler", 0, 4);
                  }
                }},
       TestExec{{"atmosphere", "land"}, "", 3,
                [](Mph& h, const Comm&) {
                  EXPECT_EQ(h.exec_comm().size(), 3);
                  EXPECT_EQ(h.directory().component("Ens2").global_low, 2);
                  if (h.comp_name() == "land") {
                    h.send(1.0, "coupler", 0, 4);
                  }
                }},
       TestExec{{"coupler"}, "", 1,
                [](Mph& h, const Comm&) {
                  double total = 0;
                  for (int i = 0; i < 3; ++i) {
                    double v = 0;
                    h.world().recv(v, minimpi::any_source, 4);
                    total += v;
                  }
                  EXPECT_DOUBLE_EQ(total, 0.5 + 2.0 + 1.0);
                  // The directory distinguishes the three kinds.
                  const Directory& dir = h.directory();
                  EXPECT_EQ(dir.component("Ens1").kind,
                            BlockKind::multi_instance);
                  EXPECT_EQ(dir.component("atmosphere").kind,
                            BlockKind::multi_component);
                  EXPECT_EQ(dir.component("coupler").kind, BlockKind::single);
                }}});
}

TEST(SetupMIME, SixteenInstances) {
  // Larger ensembles (no instance-count limit, §4.4).
  std::string registry = "BEGIN\nMulti_Instance_Begin\n";
  for (int i = 0; i < 16; ++i) {
    registry += "W" + std::to_string(i + 1) + " " + std::to_string(i) + " " +
                std::to_string(i) + " id=" + std::to_string(i) + "\n";
  }
  registry += "Multi_Instance_End\nEND\n";
  run_mph_ok(registry,
             {TestExec{{}, "W", 16, [](Mph& h, const Comm& world) {
                         EXPECT_EQ(h.total_components(), 16);
                         EXPECT_EQ(h.comp_comm().size(), 1);
                         int id = -1;
                         EXPECT_TRUE(h.get_argument("id", id));
                         EXPECT_EQ(id, world.rank());
                       }}});
}

TEST(SetupMIME, PrefixMustMatchABlock) {
  const std::string err = run_mph_error(
      kMimeRegistry, {TestExec{{}, "Atmos", 12, nullptr},
                      TestExec{{"statistics"}, "", 1, nullptr}});
  EXPECT_NE(err.find("prefix"), std::string::npos);
}

TEST(SetupMIME, PrefixMustCoverEveryInstanceName) {
  // A block whose names do not all share the declared prefix cannot match.
  const std::string registry = R"(BEGIN
Multi_Instance_Begin
Ocean1 0 1
Atlantic2 2 3
Multi_Instance_End
END
)";
  const std::string err =
      run_mph_error(registry, {TestExec{{}, "Ocean", 4, nullptr}});
  EXPECT_NE(err.find("prefix"), std::string::npos);
}

TEST(SetupMIME, AmbiguousPrefixRejected) {
  const std::string registry = R"(BEGIN
Multi_Instance_Begin
OceanA1 0 1
Multi_Instance_End
Multi_Instance_Begin
OceanB1 0 1
Multi_Instance_End
END
)";
  // "Ocean" matches both blocks.
  const std::string err = run_mph_error(
      registry, {TestExec{{}, "Ocean", 2, nullptr},
                 TestExec{{}, "Ocean", 2, nullptr}});
  EXPECT_NE(err.find("more than one"), std::string::npos);
}

TEST(SetupMIME, InstanceCountMismatchRejected) {
  // The block demands 12 ranks; give the executable 8.
  const std::string err = run_mph_error(
      kMimeRegistry, {TestExec{{}, "Ocean", 8, nullptr},
                      TestExec{{"statistics"}, "", 1, nullptr}});
  EXPECT_NE(err.find("processors"), std::string::npos);
}

TEST(SetupMIME, GlobalWarmingScenarioMix) {
  // §4.4's second example: 3 atmosphere instances (different CO2 rates)
  // all coupled to one ocean (here a single-component executable).
  const std::string registry = R"(BEGIN
Multi_Instance_Begin
Scenario1 0 1 co2=350
Scenario2 2 3 co2=560
Scenario3 4 5 co2=700
Multi_Instance_End
ocean
END
)";
  run_mph_ok(
      registry,
      {TestExec{{}, "Scenario", 6,
                [](Mph& h, const Comm&) {
                  int co2 = 0;
                  EXPECT_TRUE(h.get_argument("co2", co2));
                  constexpr int kRates[] = {350, 560, 700};
                  const int instance =
                      h.comp_id() -
                      h.directory().component("Scenario1").component_id;
                  ASSERT_GE(instance, 0);
                  ASSERT_LT(instance, 3);
                  EXPECT_EQ(co2, kRates[instance]);
                  // Scenario means send their CO2 to ocean rank 0.
                  if (h.local_proc_id() == 0) {
                    h.send(co2, "ocean", 0, 2);
                  }
                }},
       TestExec{{"ocean"}, "", 2,
                [](Mph& h, const Comm&) {
                  if (h.local_proc_id() == 0) {
                    int total = 0;
                    for (int i = 0; i < 3; ++i) {
                      int v = 0;
                      h.world().recv(v, minimpi::any_source, 2);
                      total += v;
                    }
                    // "the ocean feels the average effect": 350+560+700.
                    EXPECT_EQ(total, 1610);
                  }
                }}});
}
