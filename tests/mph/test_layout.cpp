// The layout module: dry-run planning (plan_layout) and its equivalence
// with the live handshake — the invariant that makes `mph_inspect plan`
// trustworthy.
#include "src/mph/layout.hpp"

#include <gtest/gtest.h>

#include <mutex>

#include "src/mph/handshake.hpp"
#include "src/util/rng.hpp"
#include "tests/mph/mph_test_util.hpp"

using namespace mph;
using namespace mph::testing;

TEST(FindRuns, CollapsesConsecutiveSignatures) {
  const std::vector<std::string> sigs{"C:a", "C:a", "C:b", "C:a", "C:a",
                                      "C:a"};
  const std::vector<ExecutableRun> runs = find_runs(sigs);
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0].signature, "C:a");
  EXPECT_EQ(runs[0].base, 0);
  EXPECT_EQ(runs[0].size, 2);
  EXPECT_EQ(runs[1].base, 2);
  EXPECT_EQ(runs[1].size, 1);
  EXPECT_EQ(runs[2].base, 3);
  EXPECT_EQ(runs[2].size, 3);
}

TEST(FindRuns, Empty) { EXPECT_TRUE(find_runs({}).empty()); }

TEST(PlanLayout, PaperMcmeExample) {
  const Registry reg = Registry::parse(R"(BEGIN
Multi_Component_Begin
atmosphere 0 15
land       0 15
chemistry 16 19
Multi_Component_End
Multi_Component_Begin
ocean 0 15
ice 16 31
Multi_Component_End
coupler
END
)");
  const Directory dir = plan_layout(
      reg, {
               PlannedExecutable{{"atmosphere", "land", "chemistry"}, false, 20},
               PlannedExecutable{{"ocean", "ice"}, false, 32},
               PlannedExecutable{{"coupler"}, false, 4},
           });
  EXPECT_EQ(dir.total_components(), 6);
  EXPECT_EQ(dir.num_executables(), 3);
  EXPECT_EQ(dir.component("atmosphere").global_high, 15);
  EXPECT_EQ(dir.component("chemistry").global_low, 16);
  EXPECT_EQ(dir.component("ocean").global_low, 20);
  EXPECT_EQ(dir.component("ice").global_high, 51);
  EXPECT_EQ(dir.component("coupler").global_low, 52);
  EXPECT_EQ(dir.component("coupler").size(), 4);
}

TEST(PlanLayout, InstancePlan) {
  const Registry reg = Registry::parse(
      "BEGIN\nMulti_Instance_Begin\nO1 0 3\nO2 4 7\nMulti_Instance_End\n"
      "stats\nEND\n");
  const Directory dir =
      plan_layout(reg, {PlannedExecutable{{"O"}, true, 8},
                        PlannedExecutable{{"stats"}, false, 1}});
  EXPECT_EQ(dir.component("O2").global_low, 4);
  EXPECT_EQ(dir.component("stats").global_low, 8);
}

TEST(PlanLayout, DetectsMisconfigurationWithoutLaunching) {
  const Registry reg = Registry::parse("BEGIN\natm\nocn\nEND\n");
  // Wrong name.
  EXPECT_THROW((void)plan_layout(reg, {PlannedExecutable{{"atm"}, false, 2},
                                       PlannedExecutable{{"ice"}, false, 2}}),
               SetupError);
  // Missing executable.
  EXPECT_THROW((void)plan_layout(reg, {PlannedExecutable{{"atm"}, false, 2}}),
               SetupError);
  // Bad nprocs.
  EXPECT_THROW((void)plan_layout(reg, {PlannedExecutable{{"atm"}, false, 0}}),
               SetupError);
  // Empty job.
  EXPECT_THROW((void)plan_layout(reg, {}), SetupError);
}

TEST(PlanLayout, SizeAssertionChecked) {
  const Registry reg = Registry::parse(
      "BEGIN\nMulti_Component_Begin\na 0 3\nb 4 5\nMulti_Component_End\nEND\n");
  EXPECT_NO_THROW(
      (void)plan_layout(reg, {PlannedExecutable{{"a", "b"}, false, 6}}));
  EXPECT_THROW(
      (void)plan_layout(reg, {PlannedExecutable{{"a", "b"}, false, 5}}),
      SetupError);
}

/// The tool-enabling invariant: the dry-run plan equals the directory the
/// live handshake builds, over randomized layouts.
class PlanEquivalence : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, PlanEquivalence, ::testing::Range(0, 8));

TEST_P(PlanEquivalence, PlanMatchesLiveHandshake) {
  mph::util::Rng rng(2200 + static_cast<unsigned>(GetParam()));
  // Random SCME + one optional multi-component executable.
  std::string registry = "BEGIN\n";
  std::vector<PlannedExecutable> plan;
  std::vector<TestExec> live;
  const int singles = static_cast<int>(rng.range(1, 4));
  for (int i = 0; i < singles; ++i) {
    const std::string name = "s" + std::to_string(i);
    const int nprocs = static_cast<int>(rng.range(1, 3));
    registry += name + "\n";
    plan.push_back(PlannedExecutable{{name}, false, nprocs});
    live.push_back(TestExec{{name}, "", nprocs, nullptr});
  }
  if (rng.uniform() < 0.7) {
    const int nprocs = static_cast<int>(rng.range(2, 4));
    registry += "Multi_Component_Begin\nma 0 " + std::to_string(nprocs - 1) +
                "\nmb 0 " + std::to_string(nprocs - 1) +
                "\nMulti_Component_End\n";
    plan.push_back(PlannedExecutable{{"ma", "mb"}, false, nprocs});
    live.push_back(TestExec{{"ma", "mb"}, "", nprocs, nullptr});
  }
  registry += "END\n";
  SCOPED_TRACE(registry);

  const Directory planned =
      plan_layout(Registry::parse(registry), plan);

  std::mutex mutex;
  std::string live_digest;
  auto capture = [&](Mph& h, const minimpi::Comm&) {
    if (h.global_proc_id() == 0) {
      const std::lock_guard<std::mutex> lock(mutex);
      live_digest = h.directory().describe();
    }
  };
  live.front().body = capture;
  run_mph_ok(registry, std::move(live));

  EXPECT_EQ(planned.describe(), live_digest);
}
