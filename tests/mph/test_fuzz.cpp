// Registry parser fuzzing: arbitrary byte soup and structured mutations
// must either parse cleanly or throw RegistryError — never crash, hang, or
// corrupt.  Also: every successfully parsed registry must round-trip.
#include <gtest/gtest.h>

#include "src/mph/errors.hpp"
#include "src/mph/registry.hpp"
#include "src/util/rng.hpp"

using namespace mph;

namespace {

/// Feed text to the parser; on success check the round-trip invariant.
void check_parse(const std::string& text) {
  try {
    const Registry reg = Registry::parse(text);
    // Round-trip: the serialized form re-parses to the same shape.
    const Registry again = Registry::parse(reg.to_text());
    ASSERT_EQ(reg.num_executables(), again.num_executables());
    ASSERT_EQ(reg.total_components(), again.total_components());
  } catch (const RegistryError&) {
    // Expected failure mode — fine.
  }
}

std::string random_token(mph::util::Rng& rng) {
  static const char* kTokens[] = {
      "BEGIN",      "END",
      "Multi_Component_Begin", "Multi_Component_End",
      "Multi_Instance_Begin",  "Multi_Instance_End",
      "atmosphere", "ocean",   "coupler",  "Ocean1",
      "0",          "15",      "-3",       "99999999",
      "alpha=3",    "debug=on", "=bad",    "a=b=c",
      "!comment",   "#hash",    "",         " ",
  };
  return kTokens[rng.below(std::size(kTokens))];
}

}  // namespace

class RegistryFuzz : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, RegistryFuzz, ::testing::Range(0, 16));

TEST_P(RegistryFuzz, RandomTokenSoup) {
  mph::util::Rng rng(31337 + static_cast<unsigned>(GetParam()));
  for (int trial = 0; trial < 200; ++trial) {
    std::string text;
    const int lines = static_cast<int>(rng.range(0, 12));
    for (int l = 0; l < lines; ++l) {
      const int tokens = static_cast<int>(rng.range(0, 6));
      for (int t = 0; t < tokens; ++t) {
        text += random_token(rng);
        text += ' ';
      }
      text += '\n';
    }
    check_parse(text);
  }
}

TEST_P(RegistryFuzz, MutatedValidFiles) {
  // Start from a valid file and apply random single-character mutations.
  const std::string base = R"(BEGIN
Multi_Component_Begin
atmosphere 0 15
land 0 15
chemistry 16 19
Multi_Component_End
Multi_Instance_Begin
Ocean1 0 15 inf1 alpha=3
Ocean2 16 31 inf2 beta=4.5
Multi_Instance_End
coupler
END
)";
  mph::util::Rng rng(555 + static_cast<unsigned>(GetParam()));
  for (int trial = 0; trial < 300; ++trial) {
    std::string text = base;
    const int mutations = static_cast<int>(rng.range(1, 4));
    for (int m = 0; m < mutations; ++m) {
      const std::size_t pos = rng.below(text.size());
      switch (rng.below(3)) {
        case 0:  // flip a character
          text[pos] = static_cast<char>(rng.range(32, 126));
          break;
        case 1:  // delete a character
          text.erase(pos, 1);
          break;
        case 2:  // duplicate a character
          text.insert(pos, 1, text[pos]);
          break;
      }
    }
    check_parse(text);
  }
}

TEST(RegistryFuzz, BinaryGarbage) {
  mph::util::Rng rng(777);
  for (int trial = 0; trial < 100; ++trial) {
    std::string text;
    const std::size_t size = rng.below(512);
    for (std::size_t i = 0; i < size; ++i) {
      text.push_back(static_cast<char>(rng.below(256)));
    }
    check_parse(text);
  }
}

TEST(RegistryFuzz, PathologicalWhitespaceAndComments) {
  check_parse(std::string(10000, '\n'));
  check_parse(std::string(10000, ' '));
  check_parse("BEGIN" + std::string(5000, ' ') + "\nocean\nEND\n");
  check_parse("BEGIN\n!" + std::string(5000, 'x') + "\nocean\nEND\n");
  std::string many_comments = "BEGIN\n";
  for (int i = 0; i < 2000; ++i) many_comments += "! c\n";
  many_comments += "ocean\nEND\n";
  check_parse(many_comments);
}

TEST(RegistryFuzz, VeryLongNames) {
  const std::string long_name(10000, 'a');
  check_parse("BEGIN\n" + long_name + "\nEND\n");
  const Registry reg = Registry::parse("BEGIN\n" + long_name + "\nEND\n");
  EXPECT_TRUE(reg.has_component(long_name));
}
