// MPH_comm_join (paper §5.1) and name-addressed inter-component
// communication (paper §5.2).
#include <gtest/gtest.h>

#include <numeric>

#include "src/minimpi/collectives.hpp"
#include "tests/mph/mph_test_util.hpp"

using namespace mph;
using namespace mph::testing;
using minimpi::Comm;

namespace {
// atmosphere: 4 ranks (world 0-3), ocean: 2 (world 4-5), coupler: 1 (6).
const std::string kRegistry = "BEGIN\natmosphere\nocean\ncoupler\nEND\n";

TestExec atm(std::function<void(Mph&, const Comm&)> body) {
  return TestExec{{"atmosphere"}, "", 4, std::move(body)};
}
TestExec ocn(std::function<void(Mph&, const Comm&)> body) {
  return TestExec{{"ocean"}, "", 2, std::move(body)};
}
TestExec cpl(std::function<void(Mph&, const Comm&)> body) {
  return TestExec{{"coupler"}, "", 1, std::move(body)};
}
}  // namespace

TEST(CommJoin, PaperOrderingFirstComponentRanksFirst) {
  // §5.1: atmosphere first -> its processors rank 0..3; ocean 4..5.
  auto joiner = [](Mph& h, const Comm& world) {
    const Comm joint = h.comm_join("atmosphere", "ocean");
    ASSERT_TRUE(joint.valid());
    EXPECT_EQ(joint.size(), 6);
    if (h.comp_name() == "atmosphere") {
      EXPECT_EQ(joint.rank(), world.rank());
    } else {
      EXPECT_EQ(joint.rank(), 4 + h.local_proc_id());
    }
  };
  run_mph_ok(kRegistry, {atm(joiner), ocn(joiner), cpl(nullptr)});
}

TEST(CommJoin, ReversedOrderReversesRanks) {
  // "If one reverses atmosphere with ocean ... ocean processors will rank
  // 0-1 and atmosphere processors will rank 2-5."
  auto joiner = [](Mph& h, const Comm&) {
    const Comm joint = h.comm_join("ocean", "atmosphere");
    EXPECT_EQ(joint.size(), 6);
    if (h.comp_name() == "ocean") {
      EXPECT_EQ(joint.rank(), h.local_proc_id());
    } else {
      EXPECT_EQ(joint.rank(), 2 + h.local_proc_id());
    }
  };
  run_mph_ok(kRegistry, {atm(joiner), ocn(joiner), cpl(nullptr)});
}

TEST(CommJoin, CollectivesWorkOnJointComm) {
  // "With this joint communicator, collective operations such as data
  // redistribution could easily be performed."
  auto joiner = [](Mph& h, const Comm&) {
    const Comm joint = h.comm_join("atmosphere", "ocean");
    // Atmosphere contributes its local ranks, ocean contributes 100+rank;
    // allgather redistributes everything to everyone.
    const int mine = h.comp_name() == "atmosphere" ? h.local_proc_id()
                                                   : 100 + h.local_proc_id();
    const std::vector<int> all = minimpi::allgather_value(joint, mine);
    const std::vector<int> expect{0, 1, 2, 3, 100, 101};
    EXPECT_EQ(all, expect);
  };
  run_mph_ok(kRegistry, {atm(joiner), ocn(joiner), cpl(nullptr)});
}

TEST(CommJoin, ThirdComponentUninvolved) {
  // The coupler does NOT participate in the join — the call is collective
  // over the union only; the coupler does unrelated work meanwhile.
  run_mph_ok(kRegistry,
             {atm([](Mph& h, const Comm&) {
                const Comm joint = h.comm_join("atmosphere", "ocean");
                minimpi::barrier(joint);
              }),
              ocn([](Mph& h, const Comm&) {
                const Comm joint = h.comm_join("atmosphere", "ocean");
                minimpi::barrier(joint);
              }),
              cpl([](Mph& h, const Comm&) {
                EXPECT_EQ(h.comp_name(), "coupler");
              })});
}

TEST(CommJoin, SequentialJoinsYieldIndependentComms) {
  auto joiner = [](Mph& h, const Comm&) {
    const Comm j1 = h.comm_join("atmosphere", "ocean");
    const Comm j2 = h.comm_join("atmosphere", "ocean");
    EXPECT_NE(j1.context(), j2.context());
    // Both stay usable.
    minimpi::barrier(j1);
    minimpi::barrier(j2);
  };
  run_mph_ok(kRegistry, {atm(joiner), ocn(joiner), cpl(nullptr)});
}

TEST(CommJoin, NonMemberCallerRejected) {
  run_mph_ok(kRegistry, {atm(nullptr), ocn(nullptr),
                         cpl([](Mph& h, const Comm&) {
                           EXPECT_THROW(
                               (void)h.comm_join("atmosphere", "ocean"),
                               SetupError);
                         })});
}

TEST(CommJoin, SelfJoinRejected) {
  run_mph_ok(kRegistry, {atm([](Mph& h, const Comm&) {
               EXPECT_THROW((void)h.comm_join("atmosphere", "atmosphere"),
                            SetupError);
             }),
             ocn(nullptr), cpl(nullptr)});
}

TEST(CommJoin, OverlappingComponentsRejected) {
  const std::string registry = R"(BEGIN
Multi_Component_Begin
a 0 3
b 2 5
Multi_Component_End
END
)";
  run_mph_ok(registry,
             {TestExec{{"a", "b"}, "", 6, [](Mph& h, const Comm&) {
                         EXPECT_THROW((void)h.comm_join("a", "b"), SetupError);
                       }}});
}

// ---------------------------------------------------------------------------
// §5.2 name-addressed point-to-point.
// ---------------------------------------------------------------------------

TEST(NamedP2P, SendToProcessThreeOnOcean) {
  // The paper's exact scenario: "if a processor on atmosphere wants to send
  // Process 3 on ocean" — here ocean local 1 (2-rank ocean).
  run_mph_ok(kRegistry,
             {atm([](Mph& h, const Comm&) {
                if (h.local_proc_id() == 0) {
                  const std::vector<double> flux{1.0, 2.0, 3.0};
                  h.send(std::span<const double>(flux), "ocean", 1, 77);
                }
              }),
              ocn([](Mph& h, const Comm&) {
                if (h.local_proc_id() == 1) {
                  std::vector<double> flux(3);
                  const minimpi::Status st =
                      h.recv(std::span<double>(flux), "atmosphere", 0, 77);
                  EXPECT_DOUBLE_EQ(flux[2], 3.0);
                  // Source arrives in world ranks (MPH_Global_World).
                  EXPECT_EQ(st.source, 0);
                }
              }),
              cpl(nullptr)});
}

TEST(NamedP2P, GlobalRankTranslation) {
  run_mph_ok(kRegistry, {atm([](Mph& h, const Comm&) {
               EXPECT_EQ(h.global_rank_of("atmosphere", 0), 0);
               EXPECT_EQ(h.global_rank_of("ocean", 0), 4);
               EXPECT_EQ(h.global_rank_of("ocean", 1), 5);
               EXPECT_EQ(h.global_rank_of("coupler", 0), 6);
               EXPECT_THROW((void)h.global_rank_of("ocean", 2), LookupError);
               EXPECT_THROW((void)h.global_rank_of("ocean", -1), LookupError);
               EXPECT_THROW((void)h.global_rank_of("mars", 0), LookupError);
             }),
             ocn(nullptr), cpl(nullptr)});
}

TEST(NamedP2P, EveryPairExchanges) {
  // All-pairs handshake across the three components' roots via tags.
  auto body = [](Mph& h, const Comm&) {
    const std::vector<std::string> components{"atmosphere", "ocean",
                                              "coupler"};
    if (h.local_proc_id() != 0) return;
    const int me = h.comp_id();
    for (int other = 0; other < 3; ++other) {
      if (other == me) continue;
      h.send(me * 10, components[static_cast<std::size_t>(other)], 0,
             100 + me);
    }
    int total = 0;
    for (int other = 0; other < 3; ++other) {
      if (other == me) continue;
      int v = 0;
      h.world().recv(v, minimpi::any_source, 100 + other);
      total += v;
    }
    EXPECT_EQ(total, (0 + 10 + 20) - me * 10);
  };
  run_mph_ok(kRegistry, {atm(body), ocn(body), cpl(body)});
}

TEST(NamedP2P, CouplerGathersFromAllComponentsByDirectory) {
  // The flux-coupler pattern: the coupler walks the directory and collects
  // one value per remote component root.
  run_mph_ok(
      kRegistry,
      {atm([](Mph& h, const Comm&) {
         if (h.local_proc_id() == 0) h.send(h.comp_id(), "coupler", 0, 5);
       }),
       ocn([](Mph& h, const Comm&) {
         if (h.local_proc_id() == 0) h.send(h.comp_id(), "coupler", 0, 5);
       }),
       cpl([](Mph& h, const Comm&) {
         int seen = 0;
         for (const ComponentRecord& c : h.directory().components()) {
           if (c.name == "coupler") continue;
           int v = -1;
           h.world().recv(v, c.global_low, 5);
           EXPECT_EQ(v, c.component_id);
           ++seen;
         }
         EXPECT_EQ(seen, 2);
       })});
}
