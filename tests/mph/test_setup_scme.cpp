// SCME mode (paper §2.3, §4.1): several single-component executables, each
// calling MPH_components_setup with its own name-tag.
#include <gtest/gtest.h>

#include "src/minimpi/collectives.hpp"
#include "tests/mph/mph_test_util.hpp"

using namespace mph;
using namespace mph::testing;
using minimpi::Comm;

namespace {
const std::string kPaperRegistry = R"(BEGIN
atmosphere
ocean
land
ice
coupler
END
)";
}  // namespace

TEST(SetupSCME, PaperFiveComponentClimateSystem) {
  // atmosphere:4, ocean:3, land:2, ice:2, coupler:1 — 12 ranks total.
  auto check = [](Mph& h, const Comm& world) {
    EXPECT_EQ(h.total_components(), 5);
    EXPECT_EQ(h.num_executables(), 5);
    EXPECT_EQ(h.global_proc_id(), world.rank());
    // Component communicator covers exactly this executable.
    EXPECT_EQ(h.comp_comm().size(), h.exe_up_proc_limit() -
                                        h.exe_low_proc_limit() + 1);
    EXPECT_EQ(h.local_proc_id(),
              world.rank() - h.exe_low_proc_limit());
    // Directory is identical everywhere: check the full layout.
    const Directory& dir = h.directory();
    EXPECT_EQ(dir.component("atmosphere").global_low, 0);
    EXPECT_EQ(dir.component("atmosphere").global_high, 3);
    EXPECT_EQ(dir.component("ocean").global_low, 4);
    EXPECT_EQ(dir.component("ocean").global_high, 6);
    EXPECT_EQ(dir.component("land").global_low, 7);
    EXPECT_EQ(dir.component("ice").global_low, 9);
    EXPECT_EQ(dir.component("coupler").global_low, 11);
    EXPECT_EQ(dir.component("coupler").global_high, 11);
  };
  run_mph_ok(kPaperRegistry,
             {TestExec{{"atmosphere"}, "", 4, check},
              TestExec{{"ocean"}, "", 3, check},
              TestExec{{"land"}, "", 2, check},
              TestExec{{"ice"}, "", 2, check},
              TestExec{{"coupler"}, "", 1, check}});
}

TEST(SetupSCME, RegistrationFileOrderIsIrrelevant) {
  // §4.1: "The order of file names are irrelevant."  Launch order ocean
  // first even though the file lists atmosphere first.
  run_mph_ok(kPaperRegistry,
             {TestExec{{"ocean"}, "", 2,
                       [](Mph& h, const Comm&) {
                         EXPECT_EQ(h.comp_name(), "ocean");
                         EXPECT_EQ(h.exe_low_proc_limit(), 0);
                       }},
              TestExec{{"coupler"}, "", 1, nullptr},
              TestExec{{"atmosphere"}, "", 2,
                       [](Mph& h, const Comm&) {
                         EXPECT_EQ(h.directory().component("atmosphere")
                                       .global_low,
                                   3);
                       }},
              TestExec{{"land"}, "", 1, nullptr},
              TestExec{{"ice"}, "", 1, nullptr}});
}

TEST(SetupSCME, ArbitraryNameTags) {
  // Nothing is hardcoded: NCAR_atm works as well as atmosphere.
  run_mph_ok("BEGIN\nNCAR_atm\nUCLA_ocn\nEND\n",
             {TestExec{{"NCAR_atm"}, "", 2,
                       [](Mph& h, const Comm&) {
                         EXPECT_EQ(h.comp_name(), "NCAR_atm");
                       }},
              TestExec{{"UCLA_ocn"}, "", 2, nullptr}});
}

TEST(SetupSCME, ComponentCommunicatorsAreDisjointAndUsable) {
  run_mph_ok(kPaperRegistry,
             {TestExec{{"atmosphere"}, "", 3,
                       [](Mph& h, const Comm&) {
                         // Collective inside the component only.
                         const int sum = minimpi::allreduce_value(
                             h.comp_comm(), 1, minimpi::op::Sum{});
                         EXPECT_EQ(sum, 3);
                       }},
              TestExec{{"ocean"}, "", 2,
                       [](Mph& h, const Comm&) {
                         const int sum = minimpi::allreduce_value(
                             h.comp_comm(), 1, minimpi::op::Sum{});
                         EXPECT_EQ(sum, 2);
                       }},
              TestExec{{"land"}, "", 1, nullptr},
              TestExec{{"ice"}, "", 1, nullptr},
              TestExec{{"coupler"}, "", 1, nullptr}});
}

TEST(SetupSCME, FastPathAndGeneralPathAgree) {
  // §6.1 one-split fast path vs the general path must produce identical
  // directories and communicator shapes.
  for (const bool fast : {true, false}) {
    HandshakeOptions options;
    options.single_split_fast_path = fast;
    run_mph_ok(kPaperRegistry,
               {TestExec{{"atmosphere"}, "", 2,
                         [](Mph& h, const Comm&) {
                           EXPECT_EQ(h.comp_comm().size(), 2);
                           EXPECT_EQ(h.exec_comm().size(), 2);
                         }},
                TestExec{{"ocean"}, "", 2, nullptr},
                TestExec{{"land"}, "", 1, nullptr},
                TestExec{{"ice"}, "", 1, nullptr},
                TestExec{{"coupler"}, "", 1, nullptr}},
               options);
  }
}

TEST(SetupSCME, HandshakeCostsExactlyOneSplitForPureSCME) {
  // §6.1 pinned deterministically: all-single-component applications are
  // handshaken with exactly ONE comm_split (one fresh context job-wide) —
  // on both the explicit fast path and the general path, whose
  // split-by-executable IS the component split when every executable is
  // single-component.
  for (const bool fast : {true, false}) {
    HandshakeOptions options;
    options.single_split_fast_path = fast;
    const minimpi::JobReport report = run_mph_job(
        kPaperRegistry,
        {TestExec{{"atmosphere"}, "", 1, nullptr},
         TestExec{{"ocean"}, "", 1, nullptr},
         TestExec{{"land"}, "", 1, nullptr},
         TestExec{{"ice"}, "", 1, nullptr},
         TestExec{{"coupler"}, "", 1, nullptr}},
        options);
    ASSERT_TRUE(report.ok) << report.abort_reason;
    EXPECT_EQ(report.stats.contexts_allocated, 1u) << "fast=" << fast;
  }
}

TEST(SetupSCME, SplitCountScalesWithBlockStructure) {
  // §6.2 pinned deterministically: the general layout costs one world
  // split (executables) plus one split per disjoint multi-component block
  // plus one per overlapping component.  Here: world + blockA(disjoint,
  // 1 split) + blockB(2 overlapping components, 2 splits) = 4 contexts;
  // the single-component coupler reuses its executable communicator.
  const std::string registry = R"(BEGIN
Multi_Component_Begin
a1 0 1
a2 2 3
Multi_Component_End
Multi_Component_Begin
b1 0 1
b2 0 1
Multi_Component_End
coupler
END
)";
  const minimpi::JobReport report = run_mph_job(
      registry, {TestExec{{"a1", "a2"}, "", 4, nullptr},
                 TestExec{{"b1", "b2"}, "", 2, nullptr},
                 TestExec{{"coupler"}, "", 1, nullptr}});
  ASSERT_TRUE(report.ok) << report.abort_reason;
  EXPECT_EQ(report.stats.contexts_allocated, 4u);
}

TEST(SetupSCME, SingleExecutableSCSEDegenerateCase) {
  // SCSE (§2.1): the whole program is one component.
  run_mph_ok("BEGIN\nsolo\nEND\n",
             {TestExec{{"solo"}, "", 4, [](Mph& h, const Comm& world) {
                         EXPECT_EQ(h.total_components(), 1);
                         EXPECT_EQ(h.comp_comm().size(), world.size());
                         EXPECT_EQ(h.exe_low_proc_limit(), 0);
                         EXPECT_EQ(h.exe_up_proc_limit(), 3);
                       }}});
}

TEST(SetupSCME, SizeAssertionInRegistryEnforced) {
  // "coupler 0 3" demands exactly 4 ranks; give it 2 -> setup error.
  const std::string err =
      run_mph_error("BEGIN\ncoupler 0 3\nEND\n",
                    {TestExec{{"coupler"}, "", 2, nullptr}});
  EXPECT_NE(err.find("processors"), std::string::npos);
}

TEST(SetupSCME, VisualizationComponentInsertedWithoutCodeChange) {
  // §4.1's motivating scenario: adding a graphics component is a pure
  // registry + launch change.
  const std::string registry =
      "BEGIN\natmosphere\nocean\nland\nice\ncoupler\nvisualization\nEND\n";
  run_mph_ok(registry,
             {TestExec{{"atmosphere"}, "", 2, nullptr},
              TestExec{{"ocean"}, "", 1, nullptr},
              TestExec{{"land"}, "", 1, nullptr},
              TestExec{{"ice"}, "", 1, nullptr},
              TestExec{{"coupler"}, "", 1, nullptr},
              TestExec{{"visualization"}, "", 1,
                       [](Mph& h, const Comm&) {
                         EXPECT_EQ(h.total_components(), 6);
                         EXPECT_EQ(h.comp_name(), "visualization");
                       }}});
}
