// ArgumentSet: the paper §4.4 typed argument interface.
#include "src/mph/arguments.hpp"

#include <gtest/gtest.h>

#include "src/mph/errors.hpp"

using namespace mph;

namespace {
ArgumentSet paper_line() {
  // "Ocean1 0 15 inf1 outf1 logf alpha=3 debug=on" — trailing tokens only.
  return ArgumentSet::from_tokens({"inf1", "outf1", "logf", "alpha=3",
                                   "debug=on"});
}
}  // namespace

TEST(Arguments, PaperExampleIntAndBool) {
  const ArgumentSet args = paper_line();
  int alpha = 0;
  EXPECT_TRUE(args.get("alpha", alpha));
  EXPECT_EQ(alpha, 3);
  bool debug = false;
  EXPECT_TRUE(args.get("debug", debug));
  EXPECT_TRUE(debug);
}

TEST(Arguments, PaperExampleDouble) {
  const ArgumentSet args = ArgumentSet::from_tokens({"beta=4.5"});
  double beta = 0;
  EXPECT_TRUE(args.get("beta", beta));
  EXPECT_DOUBLE_EQ(beta, 4.5);
}

TEST(Arguments, PositionalFieldsAreOneBased) {
  // "fname will get string 'inf3' if such a string is in the first field".
  const ArgumentSet args = paper_line();
  std::string value;
  EXPECT_TRUE(args.field(1, value));
  EXPECT_EQ(value, "inf1");
  EXPECT_TRUE(args.field(3, value));
  EXPECT_EQ(value, "logf");
  EXPECT_FALSE(args.field(4, value));  // only 3 positional fields
}

TEST(Arguments, FieldZeroThrows) {
  const ArgumentSet args = paper_line();
  std::string value;
  EXPECT_THROW((void)args.field(0, value), ArgumentError);
}

TEST(Arguments, MissingKeyReturnsFalseAndLeavesOutput) {
  const ArgumentSet args = paper_line();
  int value = 42;
  EXPECT_FALSE(args.get("gamma", value));
  EXPECT_EQ(value, 42);
}

TEST(Arguments, WrongTypeThrows) {
  const ArgumentSet args =
      ArgumentSet::from_tokens({"dynamics=finite_volume"});
  int value = 0;
  EXPECT_THROW((void)args.get("dynamics", value), ArgumentError);
  double dvalue = 0;
  EXPECT_THROW((void)args.get("dynamics", dvalue), ArgumentError);
  bool bvalue = false;
  EXPECT_THROW((void)args.get("dynamics", bvalue), ArgumentError);
  // As a string it is fine.
  std::string svalue;
  EXPECT_TRUE(args.get("dynamics", svalue));
  EXPECT_EQ(svalue, "finite_volume");
}

TEST(Arguments, IntegerReadAsDoubleWorks) {
  const ArgumentSet args = ArgumentSet::from_tokens({"alpha=3"});
  double value = 0;
  EXPECT_TRUE(args.get("alpha", value));
  EXPECT_DOUBLE_EQ(value, 3.0);
}

TEST(Arguments, DoubleReadAsIntThrows) {
  const ArgumentSet args = ArgumentSet::from_tokens({"beta=4.5"});
  int value = 0;
  EXPECT_THROW((void)args.get("beta", value), ArgumentError);
}

TEST(Arguments, LongLongAndIntOverflow) {
  const ArgumentSet args =
      ArgumentSet::from_tokens({"big=9999999999"});  // > INT_MAX
  long long wide = 0;
  EXPECT_TRUE(args.get("big", wide));
  EXPECT_EQ(wide, 9999999999LL);
  int narrow = 0;
  EXPECT_THROW((void)args.get("big", narrow), ArgumentError);
}

TEST(Arguments, BoolSpellings) {
  const ArgumentSet args = ArgumentSet::from_tokens(
      {"a=on", "b=off", "c=TRUE", "d=no", "e=1"});
  bool v = false;
  EXPECT_TRUE(args.get("a", v));
  EXPECT_TRUE(v);
  EXPECT_TRUE(args.get("b", v));
  EXPECT_FALSE(v);
  EXPECT_TRUE(args.get("c", v));
  EXPECT_TRUE(v);
  EXPECT_TRUE(args.get("d", v));
  EXPECT_FALSE(v);
  EXPECT_TRUE(args.get("e", v));
  EXPECT_TRUE(v);
}

TEST(Arguments, DuplicateKeyRejected) {
  EXPECT_THROW((void)ArgumentSet::from_tokens({"a=1", "a=2"}), ArgumentError);
}

TEST(Arguments, EmptySet) {
  const ArgumentSet args;
  EXPECT_TRUE(args.empty());
  EXPECT_EQ(args.field_count(), 0u);
  EXPECT_EQ(args.named_count(), 0u);
  int v = 0;
  EXPECT_FALSE(args.get("x", v));
}

TEST(Arguments, ToTokensRoundTrip) {
  const ArgumentSet args = paper_line();
  const ArgumentSet again = ArgumentSet::from_tokens(args.to_tokens());
  EXPECT_EQ(args, again);
}

TEST(Arguments, ValueContainingEquals) {
  const ArgumentSet args = ArgumentSet::from_tokens({"expr=x=y"});
  std::string v;
  EXPECT_TRUE(args.get("expr", v));
  EXPECT_EQ(v, "x=y");
}
