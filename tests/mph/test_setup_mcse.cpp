// MCSE mode (paper §2.2, §4.2): every component compiled into one
// executable; a master program dispatches via PROC_in_component.
#include <gtest/gtest.h>

#include "src/minimpi/collectives.hpp"
#include "tests/mph/mph_test_util.hpp"

using namespace mph;
using namespace mph::testing;
using minimpi::Comm;

namespace {
// The paper's §4.2 registration file, scaled to 9 ranks (atmosphere 0-3,
// ocean 4-7, coupler 8) so tests stay light.
const std::string kMcseRegistry = R"(BEGIN
Multi_Component_Begin
atmosphere 0 3
ocean 4 7
coupler 8 8
Multi_Component_End
END
)";
}  // namespace

TEST(SetupMCSE, MasterProgramDispatch) {
  run_mph_ok(
      kMcseRegistry,
      {TestExec{{"atmosphere", "ocean", "coupler"}, "", 9,
                [](Mph& h, const Comm& world) {
                  // Exactly the paper's master-program pattern.
                  Comm comm;
                  int dispatched = 0;
                  if (h.proc_in_component("ocean", &comm)) {
                    ++dispatched;
                    EXPECT_GE(world.rank(), 4);
                    EXPECT_LE(world.rank(), 7);
                    EXPECT_EQ(comm.size(), 4);
                    EXPECT_EQ(comm.rank(), world.rank() - 4);
                  }
                  if (h.proc_in_component("atmosphere", &comm)) {
                    ++dispatched;
                    EXPECT_LE(world.rank(), 3);
                    EXPECT_EQ(comm.size(), 4);
                  }
                  if (h.proc_in_component("coupler", &comm)) {
                    ++dispatched;
                    EXPECT_EQ(world.rank(), 8);
                    EXPECT_EQ(comm.size(), 1);
                  }
                  EXPECT_EQ(dispatched, 1);  // disjoint: exactly one hit
                  // One executable spanning the world.
                  EXPECT_EQ(h.num_executables(), 1);
                  EXPECT_EQ(h.exec_comm().size(), 9);
                  EXPECT_EQ(h.exe_low_proc_limit(), 0);
                  EXPECT_EQ(h.exe_up_proc_limit(), 8);
                }}});
}

TEST(SetupMCSE, OverlappingComponents) {
  // §4.2: "MPH allows components to overlap on their processor
  // allocations."  land shares atmosphere's processors completely.
  const std::string registry = R"(BEGIN
Multi_Component_Begin
atmosphere 0 3
land 0 3
chemistry 4 5
Multi_Component_End
END
)";
  run_mph_ok(
      registry,
      {TestExec{{"atmosphere", "land", "chemistry"}, "", 6,
                [](Mph& h, const Comm& world) {
                  Comm atm, lnd, chm;
                  const bool in_atm = h.proc_in_component("atmosphere", &atm);
                  const bool in_lnd = h.proc_in_component("land", &lnd);
                  const bool in_chm = h.proc_in_component("chemistry", &chm);
                  if (world.rank() <= 3) {
                    EXPECT_TRUE(in_atm);
                    EXPECT_TRUE(in_lnd);
                    EXPECT_FALSE(in_chm);
                    // Two distinct communicators over the same processors.
                    EXPECT_EQ(atm.size(), 4);
                    EXPECT_EQ(lnd.size(), 4);
                    EXPECT_NE(atm.context(), lnd.context());
                    EXPECT_EQ(h.my_components(),
                              (std::vector<std::string>{"atmosphere",
                                                        "land"}));
                    // Message tags distinguish overlapped components, as the
                    // paper recommends: exchange on both comms.
                    const int a_sum = minimpi::allreduce_value(
                        atm, 1, minimpi::op::Sum{});
                    const int l_sum = minimpi::allreduce_value(
                        lnd, 10, minimpi::op::Sum{});
                    EXPECT_EQ(a_sum, 4);
                    EXPECT_EQ(l_sum, 40);
                  } else {
                    EXPECT_FALSE(in_atm);
                    EXPECT_FALSE(in_lnd);
                    EXPECT_TRUE(in_chm);
                    EXPECT_EQ(chm.size(), 2);
                  }
                }}});
}

TEST(SetupMCSE, PartialOverlap) {
  // Components sharing only part of their ranges.
  const std::string registry = R"(BEGIN
Multi_Component_Begin
a 0 3
b 2 5
Multi_Component_End
END
)";
  run_mph_ok(registry,
             {TestExec{{"a", "b"}, "", 6, [](Mph& h, const Comm& world) {
                         const bool in_a = h.proc_in_component("a");
                         const bool in_b = h.proc_in_component("b");
                         EXPECT_EQ(in_a, world.rank() <= 3);
                         EXPECT_EQ(in_b, world.rank() >= 2);
                         if (world.rank() == 2 || world.rank() == 3) {
                           EXPECT_EQ(h.my_components().size(), 2u);
                           // comp_comm(name) gives each view; local ranks
                           // differ between the views.
                           EXPECT_EQ(h.comp_comm("a").rank(), world.rank());
                           EXPECT_EQ(h.comp_comm("b").rank(),
                                     world.rank() - 2);
                         }
                       }}});
}

TEST(SetupMCSE, GapRanksBelongToNoComponent) {
  // A processor allocated to the executable but to no component: legal; the
  // master program simply never dispatches it.
  const std::string registry = R"(BEGIN
Multi_Component_Begin
a 0 1
b 3 4
Multi_Component_End
END
)";
  run_mph_ok(registry,
             {TestExec{{"a", "b"}, "", 5, [](Mph& h, const Comm& world) {
                         if (world.rank() == 2) {
                           EXPECT_TRUE(h.my_components().empty());
                           EXPECT_FALSE(h.proc_in_component("a"));
                           EXPECT_FALSE(h.proc_in_component("b"));
                           EXPECT_THROW((void)h.comp_comm(), LookupError);
                         } else {
                           EXPECT_EQ(h.my_components().size(), 1u);
                         }
                       }}});
}

TEST(SetupMCSE, SubroutineNamesNeedNotMatchNameTags) {
  // §4.2 uses ocean_xyz / coupler_abc: the dispatch target is free.  Here
  // the "subroutines" are lambdas keyed by anything we like.
  run_mph_ok(kMcseRegistry,
             {TestExec{{"atmosphere", "ocean", "coupler"}, "", 9,
                       [](Mph& h, const Comm&) {
                         Comm comm;
                         if (h.proc_in_component("ocean", &comm)) {
                           // ocean_xyz(comm)
                           const int n = minimpi::allreduce_value(
                               comm, 1, minimpi::op::Sum{});
                           EXPECT_EQ(n, 4);
                         }
                       }}});
}

TEST(SetupMCSE, WrongWorldSizeRejected) {
  const std::string err = run_mph_error(
      kMcseRegistry,
      {TestExec{{"atmosphere", "ocean", "coupler"}, "", 7, nullptr}});
  EXPECT_NE(err.find("processors"), std::string::npos);
}

TEST(SetupMCSE, UnknownComponentLookupListsCandidates) {
  run_mph_ok(kMcseRegistry,
             {TestExec{{"atmosphere", "ocean", "coupler"}, "", 9,
                       [](Mph& h, const Comm&) {
                         try {
                           (void)h.proc_in_component("Ocean");  // wrong case
                           FAIL() << "expected LookupError";
                         } catch (const LookupError& e) {
                           const std::string what = e.what();
                           EXPECT_NE(what.find("ocean"), std::string::npos);
                           EXPECT_NE(what.find("atmosphere"),
                                     std::string::npos);
                         }
                       }}});
}
