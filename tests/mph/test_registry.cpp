// Registration-file parser: the paper's exact example files, grammar edge
// cases, validation failures, and round-trip serialization.
#include "src/mph/registry.hpp"

#include <gtest/gtest.h>

#include "src/mph/errors.hpp"

using namespace mph;

// ---------------------------------------------------------------------------
// The paper's own registration files must parse exactly.
// ---------------------------------------------------------------------------

TEST(RegistryParse, PaperSCMEFile) {
  // §4.1: five single-component executables.
  const Registry reg = Registry::parse(R"(BEGIN
atmosphere
ocean
land
ice
coupler
END
)");
  ASSERT_EQ(reg.num_executables(), 5);
  EXPECT_EQ(reg.total_components(), 5);
  EXPECT_TRUE(reg.all_single_component());
  EXPECT_EQ(reg.blocks()[0].kind, BlockKind::single);
  EXPECT_EQ(reg.blocks()[0].components[0].name, "atmosphere");
  EXPECT_FALSE(reg.blocks()[0].components[0].has_range());
  EXPECT_EQ(reg.blocks()[4].components[0].name, "coupler");
}

TEST(RegistryParse, PaperMCSEFile) {
  // §4.2: one multi-component executable, 36 processors.
  const Registry reg = Registry::parse(R"(BEGIN
Multi_Component_Begin
atmosphere 0 15
ocean 16 31
coupler 32 35
Multi_Component_End
END
)");
  ASSERT_EQ(reg.num_executables(), 1);
  const ExecutableBlock& block = reg.blocks()[0];
  EXPECT_EQ(block.kind, BlockKind::multi_component);
  ASSERT_EQ(block.components.size(), 3u);
  EXPECT_EQ(block.required_size(), 36);
  EXPECT_EQ(block.components[1].name, "ocean");
  EXPECT_EQ(block.components[1].low, 16);
  EXPECT_EQ(block.components[1].high, 31);
  EXPECT_FALSE(reg.all_single_component());
}

TEST(RegistryParse, PaperMCMEFileWithOverlapAndComments) {
  // §4.3: three executables; atmosphere and land overlap completely.
  const Registry reg = Registry::parse(R"(BEGIN
Multi_Component_Begin ! 1st multi-comp exec
atmosphere 0 15
land       0 15      ! overlap with atm
chemistry  16 19
Multi_Component_End
Multi_Component_Begin ! 2nd multi-comp exec
ocean 0 15
ice   16 31
Multi_Component_End
coupler                ! a single-comp exec
END
)");
  ASSERT_EQ(reg.num_executables(), 3);
  EXPECT_EQ(reg.total_components(), 6);
  const ExecutableBlock& first = reg.blocks()[0];
  EXPECT_EQ(first.required_size(), 20);
  EXPECT_EQ(first.components[0].low, first.components[1].low);
  EXPECT_EQ(first.components[0].high, first.components[1].high);
  EXPECT_EQ(reg.blocks()[2].kind, BlockKind::single);
}

TEST(RegistryParse, PaperMIMEFileWithArguments) {
  // §4.4: three Ocean instances plus a statistics executable.
  const Registry reg = Registry::parse(R"(BEGIN
Multi_Instance_Begin ! a multi-instance exec
Ocean1 0 15 inf1 outf1 logf alpha=3 debug=on
Ocean2 16 31 inf2 outf2 beta=4.5 debug=off
Ocean3 32 47 inf3 dynamics=finite_volume
Multi_Instance_End
statistics ! a single-component exec
END
)");
  ASSERT_EQ(reg.num_executables(), 2);
  const ExecutableBlock& ensemble = reg.blocks()[0];
  EXPECT_EQ(ensemble.kind, BlockKind::multi_instance);
  ASSERT_EQ(ensemble.components.size(), 3u);
  EXPECT_EQ(ensemble.required_size(), 48);

  const ComponentEntry& ocean1 = ensemble.components[0];
  EXPECT_EQ(ocean1.name, "Ocean1");
  EXPECT_EQ(ocean1.args.field_count(), 3u);
  int alpha = 0;
  EXPECT_TRUE(ocean1.args.get("alpha", alpha));
  EXPECT_EQ(alpha, 3);
  bool debug = false;
  EXPECT_TRUE(ocean1.args.get("debug", debug));
  EXPECT_TRUE(debug);

  const ComponentEntry& ocean2 = ensemble.components[1];
  double beta = 0;
  EXPECT_TRUE(ocean2.args.get("beta", beta));
  EXPECT_DOUBLE_EQ(beta, 4.5);
  EXPECT_TRUE(ocean2.args.get("debug", debug));
  EXPECT_FALSE(debug);

  std::string dynamics;
  EXPECT_TRUE(ensemble.components[2].args.get("dynamics", dynamics));
  EXPECT_EQ(dynamics, "finite_volume");
}

// ---------------------------------------------------------------------------
// Grammar flexibility.
// ---------------------------------------------------------------------------

TEST(RegistryParse, KeywordsAreCaseInsensitive) {
  const Registry reg = Registry::parse(
      "begin\nMULTI_COMPONENT_BEGIN\na 0 1\nmulti_component_end\nEnd\n");
  EXPECT_EQ(reg.num_executables(), 1);
}

TEST(RegistryParse, BlankLinesAndWhitespaceTolerated) {
  const Registry reg = Registry::parse(
      "\n\n  BEGIN  \n\n   atmosphere   \n\n\tocean\n  END\n\n");
  EXPECT_EQ(reg.num_executables(), 2);
}

TEST(RegistryParse, NoTrailingNewline) {
  const Registry reg = Registry::parse("BEGIN\nocean\nEND");
  EXPECT_EQ(reg.num_executables(), 1);
}

TEST(RegistryParse, SingleLineWithRangeAssertsSize) {
  const Registry reg = Registry::parse("BEGIN\ncoupler 0 3\nEND\n");
  EXPECT_EQ(reg.blocks()[0].required_size(), 4);
}

TEST(RegistryParse, ArbitraryNamesAreHonored) {
  // §4.1: "One may use NCAR_atm, or UCLA_atm, or any other names".
  const Registry reg =
      Registry::parse("BEGIN\nNCAR_atm\nUCLA-ocn.v2\nEND\n");
  EXPECT_TRUE(reg.has_component("NCAR_atm"));
  EXPECT_TRUE(reg.has_component("UCLA-ocn.v2"));
  EXPECT_FALSE(reg.has_component("atmosphere"));
}

TEST(RegistryParse, ComponentLineArgumentsInMultiComponentBlock) {
  // §4.4: "this parameter passing feature also works for the components of
  // multi-component executables".
  const Registry reg = Registry::parse(
      "BEGIN\nMulti_Component_Begin\nocean 0 3 restart=true\n"
      "ice 4 7 albedo=0.7\nMulti_Component_End\nEND\n");
  bool restart = false;
  EXPECT_TRUE(reg.blocks()[0].components[0].args.get("restart", restart));
  EXPECT_TRUE(restart);
  double albedo = 0;
  EXPECT_TRUE(reg.blocks()[0].components[1].args.get("albedo", albedo));
  EXPECT_DOUBLE_EQ(albedo, 0.7);
}

// ---------------------------------------------------------------------------
// Validation failures (each carries a line number).
// ---------------------------------------------------------------------------

namespace {
int error_line(const std::string& text) {
  try {
    (void)Registry::parse(text);
  } catch (const RegistryError& e) {
    return e.line();
  }
  return -1;
}
}  // namespace

TEST(RegistryErrors, MissingBegin) {
  EXPECT_THROW((void)Registry::parse("atmosphere\nEND\n"), RegistryError);
}

TEST(RegistryErrors, EmptyFile) {
  EXPECT_THROW((void)Registry::parse(""), RegistryError);
  EXPECT_THROW((void)Registry::parse("   \n  ! nothing\n"), RegistryError);
}

TEST(RegistryErrors, MissingEnd) {
  EXPECT_THROW((void)Registry::parse("BEGIN\nocean\n"), RegistryError);
}

TEST(RegistryErrors, ContentAfterEnd) {
  EXPECT_EQ(error_line("BEGIN\nocean\nEND\nstray\n"), 4);
}

TEST(RegistryErrors, NoComponents) {
  EXPECT_THROW((void)Registry::parse("BEGIN\nEND\n"), RegistryError);
}

TEST(RegistryErrors, DuplicateComponentNames) {
  EXPECT_EQ(error_line("BEGIN\nocean\nocean\nEND\n"), 3);
  EXPECT_THROW((void)Registry::parse("BEGIN\nMulti_Component_Begin\n"
                                     "a 0 1\nb 2 3\nMulti_Component_End\n"
                                     "a\nEND\n"),
               RegistryError);
}

TEST(RegistryErrors, NestedBlocks) {
  EXPECT_THROW(
      (void)Registry::parse("BEGIN\nMulti_Component_Begin\n"
                            "Multi_Instance_Begin\nMulti_Instance_End\n"
                            "Multi_Component_End\nEND\n"),
      RegistryError);
}

TEST(RegistryErrors, UnterminatedBlock) {
  EXPECT_THROW((void)Registry::parse(
                   "BEGIN\nMulti_Component_Begin\na 0 1\nEND\n"),
               RegistryError);
}

TEST(RegistryErrors, MismatchedBlockEnd) {
  EXPECT_THROW((void)Registry::parse(
                   "BEGIN\nMulti_Component_Begin\na 0 1\n"
                   "Multi_Instance_End\nEND\n"),
               RegistryError);
}

TEST(RegistryErrors, EndKeywordAloneOutsideBlock) {
  EXPECT_THROW((void)Registry::parse("BEGIN\nMulti_Component_End\nEND\n"),
               RegistryError);
}

TEST(RegistryErrors, RangeRequiredInsideBlocks) {
  EXPECT_EQ(error_line("BEGIN\nMulti_Component_Begin\natmosphere\n"
                       "Multi_Component_End\nEND\n"),
            3);
}

TEST(RegistryErrors, BadRanges) {
  // high < low
  EXPECT_THROW((void)Registry::parse("BEGIN\nMulti_Component_Begin\n"
                                     "a 5 2\nMulti_Component_End\nEND\n"),
               RegistryError);
  // negative low (parsed as no-range tokens inside a block -> error)
  EXPECT_THROW((void)Registry::parse("BEGIN\nMulti_Component_Begin\n"
                                     "a -1 3\nMulti_Component_End\nEND\n"),
               RegistryError);
}

TEST(RegistryErrors, InstanceRangesMustTileContiguously) {
  // Gap between instances.
  EXPECT_THROW((void)Registry::parse("BEGIN\nMulti_Instance_Begin\n"
                                     "O1 0 15\nO2 17 31\n"
                                     "Multi_Instance_End\nEND\n"),
               RegistryError);
  // Overlap between instances.
  EXPECT_THROW((void)Registry::parse("BEGIN\nMulti_Instance_Begin\n"
                                     "O1 0 15\nO2 10 31\n"
                                     "Multi_Instance_End\nEND\n"),
               RegistryError);
  // Not starting at 0.
  EXPECT_THROW((void)Registry::parse("BEGIN\nMulti_Instance_Begin\n"
                                     "O1 4 15\nMulti_Instance_End\nEND\n"),
               RegistryError);
}

TEST(RegistryErrors, MoreThanTenComponentsPerExecutable) {
  // Paper: "Each executable could contain up to 10 components."
  std::string text = "BEGIN\nMulti_Component_Begin\n";
  for (int i = 0; i < 11; ++i) {
    text += "c" + std::to_string(i) + " " + std::to_string(i) + " " +
            std::to_string(i) + "\n";
  }
  text += "Multi_Component_End\nEND\n";
  EXPECT_THROW((void)Registry::parse(text), RegistryError);
}

TEST(RegistryParse, InstanceCountIsUnlimited) {
  // §4.4: "There is no limit of the number of instances."
  std::string text = "BEGIN\nMulti_Instance_Begin\n";
  for (int i = 0; i < 64; ++i) {
    text += "Run" + std::to_string(i) + " " + std::to_string(i) + " " +
            std::to_string(i) + "\n";
  }
  text += "Multi_Instance_End\nEND\n";
  const Registry reg = Registry::parse(text);
  EXPECT_EQ(reg.total_components(), 64);
}

TEST(RegistryErrors, MoreThanFiveArgumentTokens) {
  // Paper: "Up to 5 character strings can be appended to each line."
  EXPECT_THROW((void)Registry::parse(
                   "BEGIN\nMulti_Instance_Begin\n"
                   "O1 0 3 f1 f2 f3 f4 f5 f6\n"
                   "Multi_Instance_End\nEND\n"),
               RegistryError);
}

TEST(RegistryErrors, DuplicateArgumentKeyOnOneLine) {
  EXPECT_THROW((void)Registry::parse("BEGIN\nMulti_Instance_Begin\n"
                                     "O1 0 3 a=1 a=2\n"
                                     "Multi_Instance_End\nEND\n"),
               RegistryError);
}

TEST(RegistryErrors, ReservedWordAsName) {
  EXPECT_THROW((void)Registry::parse("BEGIN\nBEGIN\nEND\n"), RegistryError);
}

TEST(RegistryErrors, LoadNonexistentFile) {
  EXPECT_THROW((void)Registry::load("/nonexistent/processors_map.in"),
               RegistryError);
}

// ---------------------------------------------------------------------------
// Round-trip: parse(to_text(parse(x))) == parse(x) on the model level.
// ---------------------------------------------------------------------------

namespace {
void expect_roundtrip(const std::string& text) {
  const Registry a = Registry::parse(text);
  const Registry b = Registry::parse(a.to_text());
  ASSERT_EQ(a.num_executables(), b.num_executables());
  for (int i = 0; i < a.num_executables(); ++i) {
    const ExecutableBlock& ba = a.blocks()[static_cast<std::size_t>(i)];
    const ExecutableBlock& bb = b.blocks()[static_cast<std::size_t>(i)];
    EXPECT_EQ(ba.kind, bb.kind);
    ASSERT_EQ(ba.components.size(), bb.components.size());
    for (std::size_t c = 0; c < ba.components.size(); ++c) {
      EXPECT_EQ(ba.components[c].name, bb.components[c].name);
      EXPECT_EQ(ba.components[c].low, bb.components[c].low);
      EXPECT_EQ(ba.components[c].high, bb.components[c].high);
      EXPECT_EQ(ba.components[c].args, bb.components[c].args);
    }
  }
}
}  // namespace

TEST(RegistryRoundTrip, AllPaperFiles) {
  expect_roundtrip("BEGIN\natmosphere\nocean\nland\nice\ncoupler\nEND\n");
  expect_roundtrip(
      "BEGIN\nMulti_Component_Begin\natmosphere 0 15\nocean 16 31\n"
      "coupler 32 35\nMulti_Component_End\nEND\n");
  expect_roundtrip(
      "BEGIN\nMulti_Instance_Begin\n"
      "Ocean1 0 15 inf1 outf1 logf alpha=3 debug=on\n"
      "Ocean2 16 31 inf2 outf2 beta=4.5 debug=off\n"
      "Ocean3 32 47 inf3 dynamics=finite_volume\n"
      "Multi_Instance_End\nstatistics\nEND\n");
}
