// Property-based sweeps: randomized application layouts are generated,
// launched, and the handshake invariants are checked on every rank:
//   * the directory is identical everywhere and covers the world exactly;
//   * component communicators have the size/rank the registry dictates;
//   * every component communicator partitions (or, with overlap, covers)
//     its executable;
//   * joins order ranks exactly as §5.1 specifies, for random pairs;
//   * fast path and general path produce identical layouts.
#include <gtest/gtest.h>

#include "src/minimpi/collectives.hpp"
#include "src/util/rng.hpp"
#include "tests/mph/mph_test_util.hpp"

using namespace mph;
using namespace mph::testing;
using minimpi::Comm;

namespace {

struct GeneratedApp {
  std::string registry_text;
  std::vector<TestExec> execs;
  int total_ranks = 0;
};

/// Generate a random SCME/MCME mixture: 2-5 executables, each either a
/// single component (1-3 ranks) or a multi-component block (2-3 components,
/// disjoint or overlapping, 2-5 ranks).
GeneratedApp generate_app(mph::util::Rng& rng) {
  GeneratedApp app;
  std::string body;
  const int execs = static_cast<int>(rng.range(2, 5));
  int name_counter = 0;
  for (int e = 0; e < execs; ++e) {
    const bool multi = rng.uniform() < 0.5;
    if (!multi) {
      const std::string name = "comp" + std::to_string(name_counter++);
      const int nprocs = static_cast<int>(rng.range(1, 3));
      body += name + "\n";
      app.execs.push_back(TestExec{{name}, "", nprocs, nullptr});
      app.total_ranks += nprocs;
    } else {
      const int ncomp = static_cast<int>(rng.range(2, 3));
      const int nprocs = static_cast<int>(rng.range(2, 5));
      const bool overlap = rng.uniform() < 0.5;
      body += "Multi_Component_Begin\n";
      std::vector<std::string> names;
      if (overlap || ncomp > nprocs) {
        // Random (possibly overlapping) ranges covering rank 0 and the last
        // rank so required_size == nprocs.
        for (int c = 0; c < ncomp; ++c) {
          const std::string name = "comp" + std::to_string(name_counter++);
          int low, high;
          if (c == 0) {
            low = 0;
            high = nprocs - 1;  // guarantee full coverage incl. max rank
          } else {
            low = static_cast<int>(rng.range(0, nprocs - 1));
            high = static_cast<int>(rng.range(low, nprocs - 1));
          }
          body += name + " " + std::to_string(low) + " " +
                  std::to_string(high) + "\n";
          names.push_back(name);
        }
      } else {
        // Disjoint tiling of [0, nprocs).
        std::vector<int> cuts{0, nprocs};
        while (static_cast<int>(cuts.size()) < ncomp + 1) {
          const int cut = static_cast<int>(rng.range(1, nprocs - 1));
          if (std::find(cuts.begin(), cuts.end(), cut) == cuts.end()) {
            cuts.push_back(cut);
          }
        }
        std::sort(cuts.begin(), cuts.end());
        for (std::size_t c = 0; c + 1 < cuts.size(); ++c) {
          const std::string name = "comp" + std::to_string(name_counter++);
          body += name + " " + std::to_string(cuts[c]) + " " +
                  std::to_string(cuts[c + 1] - 1) + "\n";
          names.push_back(name);
        }
      }
      body += "Multi_Component_End\n";
      app.execs.push_back(TestExec{names, "", nprocs, nullptr});
      app.total_ranks += nprocs;
    }
  }
  app.registry_text = "BEGIN\n" + body + "END\n";
  return app;
}

/// The invariant checker every rank runs.
void check_invariants(Mph& h, const Comm& world) {
  const Directory& dir = h.directory();

  // (1) Directory consistency: every rank agrees (verify via checksum).
  std::string digest;
  for (const ComponentRecord& c : dir.components()) {
    digest += c.name + ":" + std::to_string(c.global_low) + "-" +
              std::to_string(c.global_high) + ";";
  }
  const std::vector<std::string> all =
      minimpi::allgather_strings(world, digest);
  for (const std::string& other : all) EXPECT_EQ(other, digest);

  // (2) Executables tile the world contiguously without overlap.
  int expected_base = 0;
  for (const ExecRecord& e : dir.execs()) {
    EXPECT_EQ(e.base, expected_base);
    expected_base += e.size;
  }
  EXPECT_EQ(expected_base, world.size());

  // (3) Component ranges live inside their executable.
  for (const ComponentRecord& c : dir.components()) {
    const ExecRecord& e = dir.execs()[static_cast<std::size_t>(c.exec_index)];
    EXPECT_GE(c.global_low, e.base);
    EXPECT_LE(c.global_high, e.up_limit());
  }

  // (4) My communicators: size and rank match the directory.
  const std::vector<std::string> mine = h.my_components();
  for (const std::string& name : mine) {
    const ComponentRecord& c = dir.component(name);
    const Comm& comm = h.comp_comm(name);
    EXPECT_EQ(comm.size(), c.size());
    EXPECT_EQ(comm.rank(), world.rank() - c.global_low);
    EXPECT_EQ(comm.global_of(comm.rank()), world.rank());
    // Group is exactly the directory's range, in order.
    for (int r = 0; r < comm.size(); ++r) {
      EXPECT_EQ(comm.group()[static_cast<std::size_t>(r)], c.global_low + r);
    }
  }

  // (5) Coverage: my component list equals the directory's covering set.
  std::vector<int> covering = dir.components_covering(world.rank());
  ASSERT_EQ(covering.size(), mine.size());
  for (std::size_t i = 0; i < covering.size(); ++i) {
    EXPECT_EQ(dir.component(covering[i]).name, mine[i]);
  }

  // (6) Exec communicator spans exactly my executable.
  const ExecRecord& my_exec =
      dir.execs()[static_cast<std::size_t>(h.exec_index())];
  EXPECT_EQ(h.exec_comm().size(), my_exec.size);
  EXPECT_EQ(h.exe_low_proc_limit(), my_exec.base);
  EXPECT_EQ(h.exe_up_proc_limit(), my_exec.up_limit());
}

}  // namespace

class HandshakeProperty : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, HandshakeProperty,
                         ::testing::Range(0, 12));

TEST_P(HandshakeProperty, RandomLayoutsSatisfyInvariants) {
  mph::util::Rng rng(1000 + static_cast<unsigned>(GetParam()));
  GeneratedApp app = generate_app(rng);
  SCOPED_TRACE(app.registry_text);
  for (TestExec& exec : app.execs) exec.body = check_invariants;
  run_mph_ok(app.registry_text, std::move(app.execs));
}

TEST_P(HandshakeProperty, FastAndGeneralPathsAgreeOnRandomSCME) {
  // Pure-SCME layouts run through both §6.1 and §6.2 code paths; the
  // resulting layouts must be identical.
  mph::util::Rng rng(5000 + static_cast<unsigned>(GetParam()));
  const int execs = static_cast<int>(rng.range(2, 6));
  std::string registry = "BEGIN\n";
  std::vector<int> sizes;
  for (int e = 0; e < execs; ++e) {
    registry += "c" + std::to_string(e) + "\n";
    sizes.push_back(static_cast<int>(rng.range(1, 3)));
  }
  registry += "END\n";

  for (const bool fast : {true, false}) {
    HandshakeOptions options;
    options.single_split_fast_path = fast;
    std::vector<TestExec> job;
    for (int e = 0; e < execs; ++e) {
      job.push_back(TestExec{{"c" + std::to_string(e)},
                             "",
                             sizes[static_cast<std::size_t>(e)],
                             check_invariants});
    }
    run_mph_ok(registry, std::move(job), options);
  }
}

TEST_P(HandshakeProperty, RandomEnsembleCarvings) {
  // Random instance counts and sizes; invariants: expansion into the right
  // component names, argument delivery, tiling, and directory agreement.
  mph::util::Rng rng(7000 + static_cast<unsigned>(GetParam()));
  const int instances = static_cast<int>(rng.range(2, 6));
  std::string registry = "BEGIN\nMulti_Instance_Begin\n";
  std::vector<int> sizes;
  int base = 0;
  for (int i = 0; i < instances; ++i) {
    const int size = static_cast<int>(rng.range(1, 3));
    sizes.push_back(size);
    registry += "Inst" + std::to_string(i + 1) + " " + std::to_string(base) +
                " " + std::to_string(base + size - 1) + " k=" +
                std::to_string(i * 7) + "\n";
    base += size;
  }
  registry += "Multi_Instance_End\nwatcher\nEND\n";
  SCOPED_TRACE(registry);

  const int total = base;
  run_mph_ok(
      registry,
      {TestExec{{}, "Inst", total,
                [&, sizes](Mph& h, const Comm& world) {
                  check_invariants(h, world);
                  // Which instance should I be?
                  int b = 0;
                  for (std::size_t i = 0; i < sizes.size(); ++i) {
                    const int size = sizes[i];
                    if (world.rank() >= b && world.rank() < b + size) {
                      EXPECT_EQ(h.comp_name(),
                                "Inst" + std::to_string(i + 1));
                      EXPECT_EQ(h.comp_comm().size(), size);
                      int k = -1;
                      EXPECT_TRUE(h.get_argument("k", k));
                      EXPECT_EQ(k, static_cast<int>(i) * 7);
                    }
                    b += size;
                  }
                }},
       TestExec{{"watcher"}, "", 1,
                [&](Mph& h, const Comm& world) {
                  check_invariants(h, world);
                  EXPECT_EQ(h.total_components(), instances + 1);
                }}});
}

TEST_P(HandshakeProperty, RandomJoinsOrderCorrectly) {
  // Random SCME layout; every pair of distinct components joins (in a
  // deterministic global order so the collective calls line up).
  mph::util::Rng rng(9000 + static_cast<unsigned>(GetParam()));
  const int execs = static_cast<int>(rng.range(2, 4));
  std::string registry = "BEGIN\n";
  std::vector<int> sizes;
  for (int e = 0; e < execs; ++e) {
    registry += "j" + std::to_string(e) + "\n";
    sizes.push_back(static_cast<int>(rng.range(1, 3)));
  }
  registry += "END\n";

  auto body = [](Mph& h, const Comm&) {
    const Directory& dir = h.directory();
    const int n = dir.total_components();
    for (int a = 0; a < n; ++a) {
      for (int b = 0; b < n; ++b) {
        if (a == b) continue;
        const ComponentRecord& ca = dir.component(a);
        const ComponentRecord& cb = dir.component(b);
        const bool mine = ca.covers_world_rank(h.global_proc_id()) ||
                          cb.covers_world_rank(h.global_proc_id());
        if (!mine) continue;
        const Comm joint = h.comm_join(ca.name, cb.name);
        EXPECT_EQ(joint.size(), ca.size() + cb.size());
        if (ca.covers_world_rank(h.global_proc_id())) {
          EXPECT_EQ(joint.rank(), h.global_proc_id() - ca.global_low);
        } else {
          EXPECT_EQ(joint.rank(),
                    ca.size() + h.global_proc_id() - cb.global_low);
        }
      }
    }
  };
  std::vector<TestExec> job;
  for (int e = 0; e < execs; ++e) {
    job.push_back(TestExec{{"j" + std::to_string(e)},
                           "",
                           sizes[static_cast<std::size_t>(e)],
                           body});
  }
  run_mph_ok(registry, std::move(job));
}
