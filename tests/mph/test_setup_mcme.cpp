// MCME mode (paper §2.4, §4.3): several executables, each with several
// components — the paper's most flexible mechanism, reproduced with its
// exact 3-executable example.
#include <gtest/gtest.h>

#include "src/minimpi/collectives.hpp"
#include "tests/mph/mph_test_util.hpp"

using namespace mph;
using namespace mph::testing;
using minimpi::Comm;

namespace {
// The paper's §4.3 registration file, scaled down 4x (ranges /4) so the
// job runs 16 ranks: exec1 = atm(0-3)+land(0-3)+chem(4), exec2 =
// ocean(0-3)+ice(4-7), exec3 = coupler.
const std::string kMcmeRegistry = R"(BEGIN
Multi_Component_Begin ! 1st multi-comp exec
atmosphere 0 3
land       0 3       ! overlap with atm
chemistry  4 4
Multi_Component_End
Multi_Component_Begin ! 2nd multi-comp exec
ocean 0 3
ice   4 7
Multi_Component_End
coupler               ! a single-comp exec
END
)";

TestExec atm_land_chem(std::function<void(Mph&, const Comm&)> body) {
  return TestExec{{"atmosphere", "land", "chemistry"}, "", 5, std::move(body)};
}
TestExec ocean_ice(std::function<void(Mph&, const Comm&)> body) {
  return TestExec{{"ocean", "ice"}, "", 8, std::move(body)};
}
TestExec coupler(std::function<void(Mph&, const Comm&)> body) {
  return TestExec{{"coupler"}, "", 2, std::move(body)};
}
}  // namespace

TEST(SetupMCME, PaperThreeExecutableLayout) {
  run_mph_ok(
      kMcmeRegistry,
      {atm_land_chem([](Mph& h, const Comm& world) {
         EXPECT_EQ(h.num_executables(), 3);
         EXPECT_EQ(h.total_components(), 6);
         EXPECT_EQ(h.exec_comm().size(), 5);
         EXPECT_EQ(h.exe_low_proc_limit(), 0);
         EXPECT_EQ(h.exe_up_proc_limit(), 4);
         if (world.rank() <= 3) {
           EXPECT_EQ(h.my_components(),
                     (std::vector<std::string>{"atmosphere", "land"}));
           EXPECT_EQ(h.comp_comm("atmosphere").size(), 4);
           EXPECT_EQ(h.comp_comm("land").size(), 4);
         } else {
           EXPECT_EQ(h.my_components(),
                     (std::vector<std::string>{"chemistry"}));
           EXPECT_EQ(h.comp_comm().size(), 1);
         }
       }),
       ocean_ice([](Mph& h, const Comm& world) {
         EXPECT_EQ(h.exec_comm().size(), 8);
         EXPECT_EQ(h.exe_low_proc_limit(), 5);
         EXPECT_EQ(h.exe_up_proc_limit(), 12);
         if (world.rank() <= 8) {
           EXPECT_EQ(h.comp_name(), "ocean");
           EXPECT_EQ(h.local_proc_id(), world.rank() - 5);
         } else {
           EXPECT_EQ(h.comp_name(), "ice");
           EXPECT_EQ(h.local_proc_id(), world.rank() - 9);
         }
       }),
       coupler([](Mph& h, const Comm&) {
         EXPECT_EQ(h.comp_name(), "coupler");
         EXPECT_EQ(h.comp_comm().size(), 2);
         EXPECT_EQ(h.exe_low_proc_limit(), 13);
         EXPECT_EQ(h.exe_up_proc_limit(), 14);
         // Directory sees every component's world placement.
         const Directory& dir = h.directory();
         EXPECT_EQ(dir.component("atmosphere").global_low, 0);
         EXPECT_EQ(dir.component("land").global_low, 0);
         EXPECT_EQ(dir.component("chemistry").global_low, 4);
         EXPECT_EQ(dir.component("ocean").global_low, 5);
         EXPECT_EQ(dir.component("ice").global_low, 9);
         EXPECT_EQ(dir.component("ice").global_high, 12);
         EXPECT_EQ(dir.component("coupler").global_low, 13);
       })});
}

TEST(SetupMCME, LaunchOrderIndependentOfRegistryOrder) {
  // The coupler executable launches first; matching is by names, not by
  // position in the registration file.
  run_mph_ok(kMcmeRegistry,
             {coupler([](Mph& h, const Comm&) {
                EXPECT_EQ(h.exe_low_proc_limit(), 0);
                EXPECT_EQ(h.directory().component("ocean").global_low, 7);
              }),
              atm_land_chem(nullptr), ocean_ice(nullptr)});
}

TEST(SetupMCME, CrossExecutableExchangeThroughDirectory) {
  // chemistry (1 rank) sends a field to each coupler rank using the
  // §5.2 name-addressed interface.
  run_mph_ok(
      kMcmeRegistry,
      {atm_land_chem([](Mph& h, const Comm&) {
         if (h.proc_in_component("chemistry")) {
           h.send(3.5, "coupler", 0, 11);
           h.send(4.5, "coupler", 1, 11);
         }
       }),
       ocean_ice(nullptr), coupler([](Mph& h, const Comm&) {
         double v = 0;
         h.recv(v, "chemistry", 0, 11);
         EXPECT_DOUBLE_EQ(v, h.local_proc_id() == 0 ? 3.5 : 4.5);
       })});
}

TEST(SetupMCME, OverlapCommunicatorsWithinExecutable) {
  run_mph_ok(
      kMcmeRegistry,
      {atm_land_chem([](Mph& h, const Comm& world) {
         if (world.rank() <= 3) {
           // Distinct contexts over identical processor sets; collectives
           // on both must not interfere.
           const Comm& atm = h.comp_comm("atmosphere");
           const Comm& lnd = h.comp_comm("land");
           EXPECT_NE(atm.context(), lnd.context());
           const int a = minimpi::allreduce_value(atm, 1, minimpi::op::Sum{});
           const int l =
               minimpi::allreduce_value(lnd, 100, minimpi::op::Sum{});
           EXPECT_EQ(a, 4);
           EXPECT_EQ(l, 400);
         }
       }),
       ocean_ice(nullptr), coupler(nullptr)});
}

TEST(SetupMCME, MixedWithUnrangedSingleExecutable) {
  // coupler has no range in the file: its size follows the launcher (2).
  run_mph_ok(kMcmeRegistry,
             {atm_land_chem(nullptr), ocean_ice(nullptr),
              coupler([](Mph& h, const Comm&) {
                EXPECT_EQ(h.directory().component("coupler").size(), 2);
              })});
}

TEST(SetupMCME, ExecutableSizeMismatchRejected) {
  // ocean-ice block needs exactly 8 ranks.
  const std::string err = run_mph_error(
      kMcmeRegistry, {atm_land_chem(nullptr),
                      TestExec{{"ocean", "ice"}, "", 6, nullptr},
                      coupler(nullptr)});
  EXPECT_NE(err.find("processors"), std::string::npos);
}

TEST(SetupMCME, DeclaredNamesMustMatchFileExactly) {
  // Declaring the components of exec 1 in a different order is an error:
  // the name list identifies the executable.
  const std::string err = run_mph_error(
      kMcmeRegistry,
      {TestExec{{"land", "atmosphere", "chemistry"}, "", 5, nullptr},
       ocean_ice(nullptr), coupler(nullptr)});
  EXPECT_NE(err.find("no matching entry"), std::string::npos);
}
