// RegistryBuilder: programmatic registration files, and Directory::describe.
#include "src/mph/builder.hpp"

#include <gtest/gtest.h>

#include "tests/mph/mph_test_util.hpp"

using namespace mph;
using namespace mph::testing;

TEST(Builder, SingleComponents) {
  RegistryBuilder b;
  b.add_single("atmosphere").add_single("coupler", 2);
  const Registry reg = b.build();
  EXPECT_EQ(reg.num_executables(), 2);
  EXPECT_FALSE(reg.blocks()[0].components[0].has_range());
  EXPECT_EQ(reg.blocks()[1].required_size(), 2);
}

TEST(Builder, MultiComponentBlockWithOverlapAndArgs) {
  RegistryBuilder b;
  b.multi_component()
      .component("atmosphere", 0, 3, {"output=atm.nc"})
      .component("land", 0, 3)
      .component("chemistry", 4, 5, {"co2=420"})
      .done();
  const Registry reg = b.build();
  ASSERT_EQ(reg.num_executables(), 1);
  const ExecutableBlock& block = reg.blocks()[0];
  EXPECT_EQ(block.kind, BlockKind::multi_component);
  EXPECT_EQ(block.required_size(), 6);
  int co2 = 0;
  EXPECT_TRUE(block.components[2].args.get("co2", co2));
  EXPECT_EQ(co2, 420);
}

TEST(Builder, MultiInstanceGenerator) {
  RegistryBuilder b;
  b.multi_instance("Ocean", 4, 3, [](int i) {
    return std::vector<std::string>{"in" + std::to_string(i) + ".nml",
                                    "diff=" + std::to_string(i + 1)};
  });
  b.add_single("statistics");
  const Registry reg = b.build();
  ASSERT_EQ(reg.num_executables(), 2);
  const ExecutableBlock& block = reg.blocks()[0];
  ASSERT_EQ(block.components.size(), 4u);
  EXPECT_EQ(block.components[0].name, "Ocean1");
  EXPECT_EQ(block.components[3].name, "Ocean4");
  EXPECT_EQ(block.components[3].low, 9);
  EXPECT_EQ(block.components[3].high, 11);
  int diff = 0;
  EXPECT_TRUE(block.components[2].args.get("diff", diff));
  EXPECT_EQ(diff, 3);
}

TEST(Builder, OutputIsValidRegistryText) {
  RegistryBuilder b;
  b.multi_instance("Run", 2, 2).add_single("viz");
  const std::string text = b.to_text();
  // The text parses back to the same model (builder == parser strictness).
  const Registry reg = Registry::parse(text);
  EXPECT_EQ(reg.total_components(), 3);
  EXPECT_NE(text.find("Multi_Instance_Begin"), std::string::npos);
}

TEST(Builder, ValidationMatchesParser) {
  // Duplicate names are caught at build() just like in hand-written files.
  RegistryBuilder b;
  b.add_single("ocean").add_single("ocean");
  EXPECT_THROW((void)b.build(), RegistryError);

  RegistryBuilder b2;
  EXPECT_THROW((void)b2.add_single("x", 0), MphError);
  EXPECT_THROW((void)b2.multi_instance("Y", 0, 2), MphError);
}

TEST(Builder, DrivesARealJob) {
  // End-to-end: a generated registry wires an actual ensemble.
  RegistryBuilder b;
  b.multi_instance("Member", 3, 1, [](int i) {
    return std::vector<std::string>{"alpha=" + std::to_string(10 * (i + 1))};
  });
  const std::string text = b.to_text();
  run_mph_ok(text, {TestExec{{}, "Member", 3, [](Mph& h, const minimpi::Comm&) {
                      int alpha = 0;
                      EXPECT_TRUE(h.get_argument("alpha", alpha));
                      EXPECT_EQ(alpha, 10 * (h.comp_id() + 1));
                    }}});
}

TEST(Describe, ConfigurationBanner) {
  run_mph_ok(
      "BEGIN\nMulti_Component_Begin\natm 0 1\nlnd 0 1\n"
      "Multi_Component_End\ncpl\nEND\n",
      {TestExec{{"atm", "lnd"}, "", 2,
                [](Mph& h, const minimpi::Comm&) {
                  const std::string banner = h.directory().describe();
                  EXPECT_NE(banner.find("2 executable(s), 3 component(s)"),
                            std::string::npos);
                  EXPECT_NE(banner.find("'atm': world ranks 0..1"),
                            std::string::npos);
                  EXPECT_NE(banner.find("'cpl': world ranks 2..2"),
                            std::string::npos);
                  EXPECT_NE(banner.find("[multi-component]"),
                            std::string::npos);
                  EXPECT_NE(banner.find("[single-component]"),
                            std::string::npos);
                }},
       TestExec{{"cpl"}, "", 1, nullptr}});
}

TEST(Describe, ArgumentsShown) {
  run_mph_ok("BEGIN\nsolo 0 0 mode=fast in.nml\nEND\n",
             {TestExec{{"solo"}, "", 1, [](Mph& h, const minimpi::Comm&) {
                         const std::string banner = h.directory().describe();
                         EXPECT_NE(banner.find("mode=fast"), std::string::npos);
                         EXPECT_NE(banner.find("in.nml"), std::string::npos);
                       }}});
}
