// Shared helpers for MPH tests: run an MPMD job whose executables perform
// MPH setup against a registry given as literal text, and assert success.
#pragma once

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "src/minimpi/launcher.hpp"
#include "src/mph/mph.hpp"

namespace mph::testing {

inline minimpi::JobOptions test_job_options() {
  minimpi::JobOptions options;
  options.recv_timeout = std::chrono::seconds(30);
  return options;
}

/// Description of one executable in an MPH test job.
struct TestExec {
  /// Component names this executable declares via components_setup; when
  /// `instance_prefix` is non-empty, multi_instance(prefix) is used instead.
  std::vector<std::string> names;
  std::string instance_prefix;
  int nprocs = 1;
  /// Body run after setup succeeds.
  std::function<void(Mph&, const minimpi::Comm& world)> body;
};

/// Launch the executables against `registry_text` and return the report.
/// `job_options` lets fault-injection tests pass a FaultPlan through.
inline minimpi::JobReport run_mph_job(
    const std::string& registry_text, std::vector<TestExec> execs,
    HandshakeOptions options = {},
    minimpi::JobOptions job_options = test_job_options()) {
  std::vector<minimpi::ExecSpec> specs;
  for (std::size_t i = 0; i < execs.size(); ++i) {
    const TestExec& exec = execs[i];
    specs.push_back(minimpi::ExecSpec{
        "exec" + std::to_string(i), exec.nprocs,
        [&registry_text, &execs, i, options](const minimpi::Comm& world,
                                             const minimpi::ExecEnv&) {
          const TestExec& me = execs[i];
          const RegistrySource source = RegistrySource::from_text(registry_text);
          Mph handle =
              me.instance_prefix.empty()
                  ? Mph::components_setup(world, source, me.names, options)
                  : Mph::multi_instance(world, source, me.instance_prefix,
                                        options);
          if (me.body) me.body(handle, world);
        },
        {}});
  }
  return minimpi::run_mpmd(specs, std::move(job_options));
}

/// Run and assert the job succeeded.
inline void run_mph_ok(const std::string& registry_text,
                       std::vector<TestExec> execs,
                       HandshakeOptions options = {}) {
  const minimpi::JobReport report =
      run_mph_job(registry_text, std::move(execs), options);
  ASSERT_TRUE(report.ok) << report.abort_reason << " / "
                         << report.first_error();
}

/// Run and return the first (root-cause) error message; "" when ok.
inline std::string run_mph_error(const std::string& registry_text,
                                 std::vector<TestExec> execs,
                                 HandshakeOptions options = {}) {
  const minimpi::JobReport report =
      run_mph_job(registry_text, std::move(execs), options);
  return report.ok ? std::string{} : report.first_error();
}

}  // namespace mph::testing
