// Paper §9 "further work" features: SMP-node awareness (a) and dynamic
// component reallocation via remap (b).
#include <gtest/gtest.h>

#include "src/minimpi/collectives.hpp"
#include "src/minimpi/topology.hpp"
#include "tests/mph/mph_test_util.hpp"

using namespace mph;
using namespace mph::testing;
using minimpi::Comm;
using minimpi::Topology;

TEST(NodeAwareness, NodeCommSlicesComponentByNode) {
  // atmosphere on 4 ranks spanning two 2-task nodes; ocean on 2 ranks of
  // one node.
  run_mph_ok(
      "BEGIN\natmosphere\nocean\nEND\n",
      {TestExec{{"atmosphere"}, "", 4,
                [](Mph& h, const Comm&) {
                  const Topology t = Topology::uniform(6, 2);
                  EXPECT_EQ(h.node_id(t), h.global_proc_id() / 2);
                  const Comm node = h.node_comm(t);
                  EXPECT_EQ(node.size(), 2);
                  // Node-local exchange within the component.
                  const int sum = minimpi::allreduce_value(
                      node, 1, minimpi::op::Sum{});
                  EXPECT_EQ(sum, 2);
                }},
       TestExec{{"ocean"}, "", 2,
                [](Mph& h, const Comm&) {
                  const Topology t = Topology::uniform(6, 2);
                  EXPECT_EQ(h.node_id(t), 2);
                  EXPECT_EQ(h.node_comm(t).size(), 2);
                }}});
}

TEST(NodeAwareness, ComponentCutAcrossUnevenNodes) {
  // A 16-cpu node carved into 3 tasks next to one carved into 2 (paper:
  // "a 16-cpu SMP node could be carved into different number of MPI
  // tasks").
  run_mph_ok("BEGIN\nmodel\nEND\n",
             {TestExec{{"model"}, "", 5, [](Mph& h, const Comm&) {
                         const Topology t = Topology::from_node_sizes({3, 2});
                         const Comm node = h.node_comm(t);
                         const int expect = h.global_proc_id() < 3 ? 3 : 2;
                         EXPECT_EQ(node.size(), expect);
                       }}});
}

TEST(Remap, McseComponentResize) {
  // Phase 1: atmosphere 0-3, ocean 4-5.  Phase 2 (after remap): the ocean
  // grows to ranks 2-5 — dynamic processor reallocation without relaunch.
  const std::string phase1 = R"(BEGIN
Multi_Component_Begin
atmosphere 0 3
ocean 4 5
Multi_Component_End
END
)";
  const std::string phase2 = R"(BEGIN
Multi_Component_Begin
atmosphere 0 1
ocean 2 5
Multi_Component_End
END
)";
  run_mph_ok(phase1,
             {TestExec{{"atmosphere", "ocean"}, "", 6,
                       [&](Mph& h, const Comm& world) {
                         EXPECT_EQ(h.directory().component("ocean").size(), 2);

                         Mph h2 = h.remap(RegistrySource::from_text(phase2));
                         EXPECT_EQ(h2.directory().component("ocean").size(), 4);
                         EXPECT_EQ(h2.directory().component("atmosphere").size(),
                                   2);
                         // Membership changed with the ranges.
                         const bool in_ocean2 = world.rank() >= 2;
                         EXPECT_EQ(h2.proc_in_component("ocean"), in_ocean2);
                         // The OLD handle still answers with the old layout
                         // and its communicators still work.
                         EXPECT_EQ(h.directory().component("ocean").size(), 2);
                         if (h.proc_in_component("atmosphere")) {
                           const int n = minimpi::allreduce_value(
                               h.comp_comm("atmosphere"), 1,
                               minimpi::op::Sum{});
                           EXPECT_EQ(n, 4);
                         }
                         if (in_ocean2) {
                           const int n = minimpi::allreduce_value(
                               h2.comp_comm("ocean"), 1, minimpi::op::Sum{});
                           EXPECT_EQ(n, 4);
                         }
                       }}});
}

TEST(Remap, InstanceRecarving) {
  // An ensemble re-carved from 2x3 to 3x2 ranks between phases.
  const std::string phase1 = R"(BEGIN
Multi_Instance_Begin
Run1 0 2
Run2 3 5
Multi_Instance_End
END
)";
  const std::string phase2 = R"(BEGIN
Multi_Instance_Begin
Run1 0 1
Run2 2 3
Run3 4 5
Multi_Instance_End
END
)";
  run_mph_ok(phase1,
             {TestExec{{}, "Run", 6, [&](Mph& h, const Comm& world) {
                         EXPECT_EQ(h.total_components(), 2);
                         EXPECT_EQ(h.comp_comm().size(), 3);

                         Mph h2 = h.remap(RegistrySource::from_text(phase2));
                         EXPECT_EQ(h2.total_components(), 3);
                         EXPECT_EQ(h2.comp_comm().size(), 2);
                         const std::string expect =
                             "Run" + std::to_string(world.rank() / 2 + 1);
                         EXPECT_EQ(h2.comp_name(), expect);
                       }}});
}

TEST(Remap, IncompatibleDeclarationRejected) {
  // The new file drops the ocean: the executable's declaration no longer
  // matches -> clean SetupError on every rank.
  const std::string phase1 = R"(BEGIN
Multi_Component_Begin
atmosphere 0 1
ocean 2 3
Multi_Component_End
END
)";
  const std::string phase2 = "BEGIN\natmosphere 0 3\nEND\n";
  const std::string err = run_mph_error(
      phase1, {TestExec{{"atmosphere", "ocean"}, "", 4,
                        [&](Mph& h, const Comm&) {
                          (void)h.remap(RegistrySource::from_text(phase2));
                        }}});
  EXPECT_NE(err.find("no matching entry"), std::string::npos);
}

TEST(Remap, OldAndNewCommunicatorsAreIsolated) {
  const std::string registry = "BEGIN\na\nb\nEND\n";
  run_mph_ok(registry,
             {TestExec{{"a"}, "", 2,
                       [&](Mph& h, const Comm&) {
                         Mph h2 = h.remap(RegistrySource::from_text(registry));
                         EXPECT_NE(h.comp_comm().context(),
                                   h2.comp_comm().context());
                         // Traffic on the new comm is invisible to the old.
                         if (h2.local_proc_id() == 0) {
                           h2.comp_comm().send(1, 1, 0);
                         } else {
                           EXPECT_FALSE(h.comp_comm()
                                            .iprobe(minimpi::any_source,
                                                    minimpi::any_tag)
                                            .has_value());
                           int v = 0;
                           h2.comp_comm().recv(v, 0, 0);
                         }
                       }},
              TestExec{{"b"}, "", 1,
                       [&](Mph& h, const Comm&) {
                         (void)h.remap(RegistrySource::from_text(registry));
                       }}});
}
