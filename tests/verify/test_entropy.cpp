// Seeded-nondeterminism discipline: every source of randomness flows
// through the job seed, the fresh-entropy ban turns violations into hard
// errors during verification, and seeded fault-injection jitter replays
// identically.
#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/minimpi/fault.hpp"
#include "src/minimpi/launcher.hpp"
#include "src/util/rng.hpp"

namespace {

using minimpi::Comm;
using minimpi::EnvelopeMatch;
using minimpi::ExecEnv;
using minimpi::FaultInjector;
using minimpi::FaultPlan;
using minimpi::JobOptions;
using minimpi::JobReport;
using mph::util::ScopedEntropyBan;

TEST(EntropyGuard, FreshEntropyThrowsWhileBanned) {
  {
    const ScopedEntropyBan ban;
    EXPECT_TRUE(mph::util::fresh_entropy_forbidden());
    EXPECT_THROW((void)mph::util::fresh_entropy_seed(), std::runtime_error);
  }
  EXPECT_FALSE(mph::util::fresh_entropy_forbidden());
  EXPECT_NO_THROW((void)mph::util::fresh_entropy_seed());
}

TEST(EntropyGuard, BanNests) {
  const ScopedEntropyBan outer;
  {
    const ScopedEntropyBan inner;
  }
  // The inner scope must not lift the outer ban.
  EXPECT_TRUE(mph::util::fresh_entropy_forbidden());
}

TEST(EntropyGuard, UnseededJobUnderBanThrows) {
  // A job with seed 0 draws a fresh seed — exactly the unseeded entropy
  // verification forbids.  The error names the remedy.
  const ScopedEntropyBan ban;
  JobOptions options;  // seed = 0
  try {
    (void)minimpi::run_spmd(
        2, [](const Comm&, const ExecEnv&) {}, options);
    FAIL() << "expected the entropy ban to fire";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("job seed"), std::string::npos)
        << e.what();
  }
}

TEST(EntropyGuard, SeededJobUnderBanRuns) {
  const ScopedEntropyBan ban;
  JobOptions options;
  options.seed = 42;
  const JobReport report = minimpi::run_spmd(
      2,
      [](const Comm& world, const ExecEnv&) {
        int value = world.rank();
        if (world.rank() == 0) {
          world.recv(value, 1, 3);
        } else {
          world.send(value, 0, 3);
        }
      },
      options);
  EXPECT_TRUE(report.ok) << report.first_error();
}

std::vector<std::string> jitter_descriptions(std::uint64_t seed) {
  FaultPlan plan;
  for (std::uint64_t hit = 1; hit <= 3; ++hit) {
    plan.delay(EnvelopeMatch{}, std::chrono::milliseconds(1), hit,
               std::chrono::milliseconds(2000));
  }
  FaultInjector injector(std::move(plan), seed);
  injector.set_virtual_time(true);  // record the drawn delays, never sleep
  std::vector<std::string> out;
  for (int i = 0; i < 3; ++i) {
    minimpi::Envelope env;
    env.src = 0;
    (void)injector.filter(env, 1);
  }
  for (const minimpi::FaultEvent& event : injector.events()) {
    out.push_back(event.description);
  }
  return out;
}

TEST(EntropyGuard, FaultJitterIsSeedDeterministic) {
  const std::vector<std::string> first = jitter_descriptions(99);
  const std::vector<std::string> again = jitter_descriptions(99);
  ASSERT_EQ(first.size(), 3u);
  EXPECT_EQ(first, again);
}

TEST(EntropyGuard, VirtualTimeSkipsRealSleeps) {
  FaultPlan plan;
  plan.delay(EnvelopeMatch{}, std::chrono::milliseconds(2000));
  FaultInjector injector(std::move(plan), 7);
  injector.set_virtual_time(true);
  minimpi::Envelope env;
  env.src = 0;
  const auto start = std::chrono::steady_clock::now();
  (void)injector.filter(env, 1);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::milliseconds(500));
  ASSERT_EQ(injector.events().size(), 1u);  // the rule still fired
}

}  // namespace
