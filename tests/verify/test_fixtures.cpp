// The two seeded schedule bugs of the verification suite: a wildcard race
// whose bad matching ordinary timing hides, and an order-dependent
// deadlock.  Both must be caught within a stated budget, produce a minimal
// replayable decision trace, and be reproduced exactly by replaying it.
#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <thread>

#include "src/minimpi/launcher.hpp"
#include "src/minimpi/verify/verify.hpp"

namespace {

using minimpi::Comm;
using minimpi::ExecEnv;
using minimpi::JobOptions;
using minimpi::JobReport;
using minimpi::verify::ReplayResult;
using minimpi::verify::VerifyOptions;
using minimpi::verify::VerifyReport;

constexpr minimpi::tag_t kDataTag = 7;
constexpr minimpi::tag_t kAckTag = 8;

VerifyOptions budgeted_options() {
  VerifyOptions options;
  options.job.recv_timeout = std::chrono::seconds(20);
  // The stated budget: both fixtures must be caught within 16 schedules.
  options.max_schedules = 16;
  return options;
}

/// In ordinary runs rank 2's delayed send always arrives second, hiding
/// the schedule where it matches first.
void bug_hiding_delay() {
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
}

/// Rank 0 assumes its first ANY_SOURCE receive is rank 1's message.
void wildcard_race_entry(const Comm& world, const ExecEnv&) {
  switch (world.rank()) {
    case 1:
      world.send(111, 0, kDataTag);
      break;
    case 2:
      bug_hiding_delay();
      world.send(222, 0, kDataTag);
      break;
    default: {
      int first = 0;
      int second = 0;
      world.recv(first, minimpi::any_source, kDataTag);
      if (first != 111) {
        throw std::runtime_error("wildcard race: expected 111, got " +
                                 std::to_string(first));
      }
      world.recv(second, minimpi::any_source, kDataTag);
    }
  }
}

/// Rank 0 demands a second message from whichever sender matched first;
/// only rank 1 has one, and rank 2 blocks on an ack rank 0 sends too late.
void order_deadlock_entry(const Comm& world, const ExecEnv&) {
  int value = 0;
  switch (world.rank()) {
    case 1:
      world.send(1, 0, kDataTag);
      world.send(2, 0, kDataTag);
      break;
    case 2:
      bug_hiding_delay();
      world.send(3, 0, kDataTag);
      world.recv(value, 0, kAckTag);
      break;
    default: {
      const minimpi::Status first =
          world.recv(value, minimpi::any_source, kDataTag);
      world.recv(value, first.source, kDataTag);  // bug on first==2
      world.send(0, 2, kAckTag);
      world.recv(value, minimpi::any_source, kDataTag);
    }
  }
}

minimpi::verify::JobRunner spmd_runner(
    void (*entry)(const Comm&, const ExecEnv&)) {
  return [entry](const JobOptions& options) {
    return minimpi::run_spmd(3, entry, options);
  };
}

TEST(VerifyFixtures, WildcardRacePassesOrdinaryRuns) {
  // The bug is timing-hidden: a plain (unscheduled) run succeeds.
  JobOptions options;
  options.recv_timeout = std::chrono::seconds(20);
  const JobReport report =
      minimpi::run_spmd(3, wildcard_race_entry, options);
  EXPECT_TRUE(report.ok) << report.first_error();
}

TEST(VerifyFixtures, WildcardRaceCaughtWithinBudgetAndTraceReplays) {
  const minimpi::verify::JobRunner runner = spmd_runner(wildcard_race_entry);
  const VerifyReport report =
      minimpi::verify::verify(runner, budgeted_options());

  ASSERT_EQ(report.failures.size(), 1u) << report.to_string();
  EXPECT_LE(report.schedules_run, 16u);
  EXPECT_NE(report.failures.front().reason.find("expected 111"),
            std::string::npos);
  // The race detector flagged the decision point too.
  ASSERT_FALSE(report.races.empty());
  EXPECT_TRUE(report.races.front().concurrent);

  // The failing trace is minimal — a single wildcard decision — and
  // replaying it reproduces the identical failure.
  const minimpi::verify::Trace& trace = report.failures.front().trace;
  ASSERT_EQ(trace.decisions.size(), 1u);
  EXPECT_EQ(trace.decisions.front().chose, 2);

  JobOptions job;
  job.recv_timeout = std::chrono::seconds(20);
  const ReplayResult replayed = minimpi::verify::replay(runner, trace, job);
  EXPECT_FALSE(replayed.diverged) << replayed.divergence;
  EXPECT_FALSE(replayed.report.ok);
  EXPECT_NE(replayed.report.first_error().find("expected 111"),
            std::string::npos)
      << replayed.report.first_error();
  EXPECT_EQ(replayed.observed, trace);
}

TEST(VerifyFixtures, OrderDeadlockPassesOrdinaryRuns) {
  JobOptions options;
  options.recv_timeout = std::chrono::seconds(20);
  const JobReport report =
      minimpi::run_spmd(3, order_deadlock_entry, options);
  EXPECT_TRUE(report.ok) << report.first_error();
}

TEST(VerifyFixtures, OrderDeadlockCaughtAsCycleWithinBudget) {
  const VerifyReport report = minimpi::verify::verify(
      spmd_runner(order_deadlock_entry), budgeted_options());

  ASSERT_EQ(report.failures.size(), 1u) << report.to_string();
  EXPECT_LE(report.schedules_run, 16u);
  // mpicheck names the cycle, not a timeout: the deadlock is structural.
  EXPECT_NE(report.failures.front().reason.find("wait-for cycle"),
            std::string::npos)
      << report.failures.front().reason;
  ASSERT_EQ(report.failures.front().trace.decisions.size(), 1u);
  EXPECT_EQ(report.failures.front().trace.decisions.front().chose, 2);
}

TEST(VerifyFixtures, SameSeedProducesIdenticalFailingTraceTwice) {
  // Exploration determinism: two runs with the same seed dump
  // byte-identical traces.
  VerifyOptions options = budgeted_options();
  options.seed = 77;
  const VerifyReport first =
      minimpi::verify::verify(spmd_runner(wildcard_race_entry), options);
  const VerifyReport second =
      minimpi::verify::verify(spmd_runner(wildcard_race_entry), options);
  ASSERT_EQ(first.failures.size(), 1u);
  ASSERT_EQ(second.failures.size(), 1u);
  EXPECT_EQ(first.failures.front().trace, second.failures.front().trace);
  EXPECT_EQ(first.failures.front().trace.to_json(),
            second.failures.front().trace.to_json());
  EXPECT_EQ(first.schedules_run, second.schedules_run);
}

}  // namespace
