// The decision-trace format: JSON round-trips, parse errors are diagnosed
// with an offset, and the human rendering names components.
#include <gtest/gtest.h>

#include <string>

#include "src/minimpi/error.hpp"
#include "src/minimpi/verify/trace.hpp"

namespace {

using minimpi::verify::Decision;
using minimpi::verify::Trace;

Trace sample_trace() {
  Trace trace;
  trace.seed = 42;
  trace.decisions.push_back(
      Decision{0, "recv", 3, 7, 2, {1, 2, 5}, false});
  trace.decisions.push_back(Decision{4, "probe", 0, -1, 1, {1}, false});
  trace.decisions.push_back(Decision{0, "iprobe", 3, 7, 5, {2, 5}, true});
  return trace;
}

TEST(VerifyTrace, JsonRoundTripPreservesEverything) {
  const Trace trace = sample_trace();
  const Trace parsed = Trace::from_json(trace.to_json());
  EXPECT_EQ(parsed, trace);
  EXPECT_EQ(parsed.seed, 42u);
  ASSERT_EQ(parsed.decisions.size(), 3u);
  EXPECT_EQ(parsed.decisions[0].candidates,
            (std::vector<minimpi::rank_t>{1, 2, 5}));
  EXPECT_TRUE(parsed.decisions[2].immediate);
  // Serialization is canonical: a second round trip is byte-identical.
  EXPECT_EQ(parsed.to_json(), trace.to_json());
}

TEST(VerifyTrace, EmptyTraceRoundTrips) {
  Trace trace;
  trace.seed = 1;
  const Trace parsed = Trace::from_json(trace.to_json());
  EXPECT_EQ(parsed, trace);
  EXPECT_TRUE(parsed.decisions.empty());
}

TEST(VerifyTrace, ParseErrorsNameTheOffset) {
  try {
    (void)Trace::from_json("{\"version\": 1, \"seed\": oops}");
    FAIL() << "expected a parse error";
  } catch (const minimpi::Error& e) {
    EXPECT_NE(std::string(e.what()).find("trace parse error at offset"),
              std::string::npos)
        << e.what();
  }
}

TEST(VerifyTrace, RejectsUnknownVersion) {
  EXPECT_THROW((void)Trace::from_json("{\"version\": 9, \"seed\": 1, "
                                      "\"decisions\": []}"),
               minimpi::Error);
}

TEST(VerifyTrace, HumanRenderingUsesLabels) {
  const std::string text = sample_trace().to_string(
      [](minimpi::rank_t rank) { return rank == 0 ? "coupler" : "ocean"; });
  EXPECT_NE(text.find("coupler[0]"), std::string::npos) << text;
  EXPECT_NE(text.find("ocean[2]"), std::string::npos) << text;
  EXPECT_NE(text.find("[immediate]"), std::string::npos) << text;
}

}  // namespace
