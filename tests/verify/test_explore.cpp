// The exploration engine: exhaustive DFS over wildcard match decisions,
// sound budget accounting ("explored N of >= M", never silent truncation),
// and the vector-clock classification of wildcard races.
#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>

#include "src/minimpi/launcher.hpp"
#include "src/minimpi/verify/verify.hpp"

namespace {

using minimpi::Comm;
using minimpi::ExecEnv;
using minimpi::JobOptions;
using minimpi::JobReport;
using minimpi::verify::VerifyOptions;
using minimpi::verify::VerifyReport;

constexpr minimpi::tag_t kTag = 7;

VerifyOptions base_options() {
  VerifyOptions options;
  options.job.recv_timeout = std::chrono::seconds(20);
  return options;
}

/// n-rank fan-in: ranks 1..n-1 each send their rank to rank 0, which sums
/// n-1 ANY_SOURCE receives.  Every interleaving is a permutation of the
/// senders, so the full tree has (n-1)! schedules.
minimpi::verify::JobRunner fan_in(int n) {
  return [n](const JobOptions& options) {
    return minimpi::run_spmd(
        n,
        [n](const Comm& world, const ExecEnv&) {
          if (world.rank() == 0) {
            long long sum = 0;
            for (int i = 1; i < n; ++i) {
              int value = 0;
              world.recv(value, minimpi::any_source, kTag);
              sum += value;
            }
            if (sum != static_cast<long long>(n) * (n - 1) / 2) {
              throw std::runtime_error("bad sum");
            }
          } else {
            world.send(world.rank(), 0, kTag);
          }
        },
        options);
  };
}

TEST(VerifyExplore, ThreeSendersExploreExactlySixSchedules) {
  const VerifyReport report =
      minimpi::verify::verify(fan_in(4), base_options());
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.schedules_run, 6u);
  // Complete exploration: the lower bound is exact.
  EXPECT_EQ(report.frontier_lower_bound, 6u);
  EXPECT_EQ(report.max_decision_depth, 3u);
  EXPECT_TRUE(report.failures.empty());
}

TEST(VerifyExplore, ScheduleBudgetReportsSoundFrontier) {
  VerifyOptions options = base_options();
  options.max_schedules = 2;
  const VerifyReport report = minimpi::verify::verify(fan_in(4), options);
  EXPECT_FALSE(report.complete);
  EXPECT_TRUE(report.schedule_budget_exhausted);
  EXPECT_EQ(report.schedules_run, 2u);
  // Sound and strict: more work remains (true total is 6), and the bound
  // never exceeds the true total.
  EXPECT_GT(report.frontier_lower_bound, report.schedules_run);
  EXPECT_LE(report.frontier_lower_bound, 6u);
  // The report never pretends completeness.
  EXPECT_NE(report.to_string().find("of >="), std::string::npos);
}

TEST(VerifyExplore, TimeBudgetStopsExploration) {
  VerifyOptions options = base_options();
  options.max_schedules = 0;  // unlimited
  options.budget = std::chrono::milliseconds(1);
  const VerifyReport report = minimpi::verify::verify(fan_in(5), options);
  // 4! = 24 schedules cannot fit in 1ms of wall clock.
  EXPECT_FALSE(report.complete);
  EXPECT_TRUE(report.time_budget_exhausted);
  EXPECT_GT(report.frontier_lower_bound, report.schedules_run);
}

TEST(VerifyExplore, ConcurrentSendersFlaggedAsRace) {
  const VerifyReport report =
      minimpi::verify::verify(fan_in(3), base_options());
  ASSERT_EQ(report.races.size(), 1u);
  const minimpi::verify::RaceRecord& race = report.races.front();
  EXPECT_EQ(race.owner, 0);
  EXPECT_EQ(race.tag, kTag);
  EXPECT_EQ(race.candidates, (std::vector<minimpi::rank_t>{1, 2}));
  // Independent senders: causally unordered, a true race.
  EXPECT_TRUE(race.concurrent);
}

TEST(VerifyExplore, CausallyOrderedSendersNotFlaggedConcurrent) {
  // Rank 1 sends to rank 0, then pokes rank 2, which only then sends to
  // rank 0: the two candidate sends are causally ordered through the poke,
  // and the vector clocks must prove it.
  const auto runner = [](const JobOptions& options) {
    return minimpi::run_spmd(
        3,
        [](const Comm& world, const ExecEnv&) {
          int value = 0;
          switch (world.rank()) {
            case 1:
              world.send(1, 0, kTag);
              world.send(0, 2, kTag + 1);  // happens-before rank 2's send
              break;
            case 2:
              world.recv(value, 1, kTag + 1);
              world.send(2, 0, kTag);
              break;
            default:
              world.recv(value, minimpi::any_source, kTag);
              world.recv(value, minimpi::any_source, kTag);
          }
        },
        options);
  };
  const VerifyReport report =
      minimpi::verify::verify(runner, base_options());
  EXPECT_TRUE(report.ok()) << report.to_string();
  ASSERT_GE(report.races.size(), 1u);
  // Still a matching race (MPI non-overtaking does not order cross-sender
  // messages) but NOT causally concurrent.
  EXPECT_FALSE(report.races.front().concurrent);
}

TEST(VerifyExplore, NoWildcardsMeansOneSchedule) {
  // Exact-source receives are deterministic: one schedule, no decisions.
  const auto runner = [](const JobOptions& options) {
    return minimpi::run_spmd(
        3,
        [](const Comm& world, const ExecEnv&) {
          if (world.rank() == 0) {
            int value = 0;
            world.recv(value, 1, kTag);
            world.recv(value, 2, kTag);
          } else {
            world.send(world.rank(), 0, kTag);
          }
        },
        options);
  };
  const VerifyReport report =
      minimpi::verify::verify(runner, base_options());
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.schedules_run, 1u);
  EXPECT_EQ(report.max_decision_depth, 0u);
  EXPECT_TRUE(report.races.empty());
}

TEST(VerifyExplore, WildcardIrecvRefusedInVerifyMode) {
  // Nonblocking wildcard receives would be matched by arrival order inside
  // deliver(), outside the engine's decision points — refused, not
  // silently under-explored.
  const auto runner = [](const JobOptions& options) {
    return minimpi::run_spmd(
        2,
        [](const Comm& world, const ExecEnv&) {
          if (world.rank() == 0) {
            int value = 0;
            minimpi::Request req = world.irecv(
                std::span<int>(&value, 1), minimpi::any_source, kTag);
            req.wait();
          } else {
            world.send(1, 0, kTag);
          }
        },
        options);
  };
  const VerifyReport report =
      minimpi::verify::verify(runner, base_options());
  ASSERT_FALSE(report.failures.empty());
  EXPECT_NE(report.failures.front().reason.find("wildcard"),
            std::string::npos)
      << report.failures.front().reason;
}

}  // namespace
