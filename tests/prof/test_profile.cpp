// mph_prof critical-path extraction on synthetic TraceReports: flow-edge
// hops with exact segment boundaries, soundness of unresolved edges,
// handshake/collective attribution windows, deterministic tie-breaks, and
// the what-if schedule replay arithmetic.
#include "src/minimpi/prof/profile.hpp"

#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

#include "src/minimpi/trace.hpp"
#include "src/util/json.hpp"

using namespace minimpi;
using namespace minimpi::prof;

namespace {

TraceEvent span_event(TraceOp op, const char* name, std::uint64_t t0,
                      std::uint64_t t1, tag_t tag = any_tag,
                      std::uint64_t flow = 0) {
  TraceEvent e;
  e.op = op;
  e.span = true;
  e.name = name;
  e.t_start_ns = t0;
  e.t_end_ns = t1;
  e.tag = tag;
  e.flow = flow;
  return e;
}

TraceEvent send_event(std::uint64_t t, std::uint64_t flow) {
  TraceEvent e;
  e.op = TraceOp::send;
  e.span = false;
  e.name = "send";
  e.t_start_ns = t;
  e.t_end_ns = t;
  e.flow = flow;
  return e;
}

RankTrace make_rank(rank_t world_rank, std::string track,
                    std::vector<TraceEvent> events) {
  RankTrace r;
  r.world_rank = world_rank;
  r.track = std::move(track);
  r.events = std::move(events);
  return r;
}

/// ocean:0 computes until t=600 then sends (flow 42); atmosphere:0 posts a
/// receive at t=100 that matches at t=700 and computes until t=1400.  The
/// critical path must hop ocean → atmosphere through the message.
TraceReport two_rank_report() {
  TraceReport report;
  report.ranks.push_back(make_rank(
      0, "ocean:0",
      {send_event(600, 42),
       span_event(TraceOp::phase, "rank_main", 0, 1000, kPhaseRankMain)}));
  report.ranks.push_back(make_rank(
      1, "atmosphere:0",
      {span_event(TraceOp::recv, "recv", 100, 700, any_tag, 42),
       span_event(TraceOp::phase, "rank_main", 0, 1400, kPhaseRankMain)}));
  return report;
}

TEST(ProfGraph, TwoRankPathHopsThroughTheFlowEdge) {
  const Profile p = Graph::build(two_rank_report()).profile();

  EXPECT_EQ(p.job_start_ns, 0u);
  EXPECT_EQ(p.job_end_ns, 1400u);
  EXPECT_EQ(p.wall_ns(), 1400u);
  EXPECT_EQ(p.unresolved_flows, 0u);

  ASSERT_EQ(p.path.size(), 3u);
  EXPECT_EQ(p.path[0].world_rank, 0);
  EXPECT_EQ(p.path[0].kind, SegmentKind::compute);
  EXPECT_EQ(p.path[0].t_start_ns, 0u);
  EXPECT_EQ(p.path[0].t_end_ns, 600u);

  EXPECT_EQ(p.path[1].world_rank, 1);
  EXPECT_EQ(p.path[1].kind, SegmentKind::recv_wait);
  EXPECT_EQ(p.path[1].t_start_ns, 600u);  // charged from the send instant
  EXPECT_EQ(p.path[1].t_end_ns, 700u);
  EXPECT_EQ(p.path[1].flow, 42u);
  EXPECT_EQ(p.path[1].from_rank, 0);
  EXPECT_EQ(p.path[1].from_t_ns, 600u);

  EXPECT_EQ(p.path[2].world_rank, 1);
  EXPECT_EQ(p.path[2].kind, SegmentKind::compute);
  EXPECT_EQ(p.path[2].t_start_ns, 700u);
  EXPECT_EQ(p.path[2].t_end_ns, 1400u);

  // Contiguous launch → join, so the totals close exactly.
  EXPECT_EQ(p.path_total_ns, p.wall_ns());
  EXPECT_EQ(p.kind_ns[static_cast<std::size_t>(SegmentKind::compute)], 1300u);
  EXPECT_EQ(p.kind_ns[static_cast<std::size_t>(SegmentKind::recv_wait)], 100u);

  // Rank profiles: atmosphere binds the job, ocean has 400 ns slack.
  ASSERT_EQ(p.ranks.size(), 2u);
  EXPECT_EQ(p.ranks[0].slack_ns, 400u);
  EXPECT_EQ(p.ranks[1].slack_ns, 0u);
  EXPECT_EQ(p.ranks[0].path_compute_ns, 600u);
  EXPECT_EQ(p.ranks[1].path_compute_ns, 700u);
  EXPECT_EQ(p.ranks[1].path_wait_ns, 100u);

  // Component blame: atmosphere 800/1400, ocean 600/1400, largest first.
  const std::vector<ComponentBlame> blame = p.components();
  ASSERT_EQ(blame.size(), 2u);
  EXPECT_EQ(blame[0].component, "atmosphere");
  EXPECT_EQ(blame[0].total_ns(), 800u);
  EXPECT_DOUBLE_EQ(blame[0].share, 800.0 / 1400.0);
  EXPECT_EQ(blame[1].component, "ocean");
  EXPECT_EQ(blame[1].total_ns(), 600u);
}

TEST(ProfGraph, EarlySendDissolvesWaitIntoCompute) {
  // The message was already in flight when the receive was posted: the
  // wait span is matching overhead, not a dependency — the path never
  // leaves the receiver.
  TraceReport report = two_rank_report();
  report.ranks[0].events[0] = send_event(50, 42);
  const Profile p = Graph::build(report).profile();
  ASSERT_EQ(p.path.size(), 1u);
  EXPECT_EQ(p.path[0].world_rank, 1);
  EXPECT_EQ(p.path[0].kind, SegmentKind::compute);
  EXPECT_EQ(p.path[0].t_start_ns, 0u);
  EXPECT_EQ(p.path[0].t_end_ns, 1400u);
  EXPECT_EQ(p.unresolved_flows, 0u);
}

TEST(ProfGraph, UnresolvedFlowKeepsPartialPathAndWarns) {
  // The sender's event was dropped: the wait stays on the path charged to
  // the receiver from its own start, the edge is counted, the report warns
  // with the exact drop numbers — and nothing crashes.
  TraceReport report = two_rank_report();
  report.ranks[1].events[0].flow = 999;  // no such sender
  report.ranks[0].dropped = 5;
  const Profile p = Graph::build(report).profile();

  EXPECT_EQ(p.unresolved_flows, 1u);
  EXPECT_EQ(p.dropped_events, 5u);
  ASSERT_EQ(p.path.size(), 3u);
  EXPECT_EQ(p.path[0].world_rank, 1);  // never hops off the receiver
  EXPECT_EQ(p.path[1].kind, SegmentKind::recv_wait);
  EXPECT_EQ(p.path[1].t_start_ns, 100u);  // its own wait start
  EXPECT_EQ(p.path[1].from_rank, -1);
  EXPECT_EQ(p.path_total_ns, p.wall_ns());  // still contiguous

  const std::string report_text = render_report(p);
  EXPECT_NE(report_text.find("warning: partial critical path — 1 flow edges "
                             "unresolved (ring dropped 5 events)"),
            std::string::npos)
      << report_text;
}

TEST(ProfGraph, PhaseWindowReattributesComputeToHandshake) {
  TraceReport report;
  report.ranks.push_back(make_rank(
      0, "solo:0",
      {span_event(TraceOp::phase, "handshake", 100, 300, kPhaseHandshake),
       span_event(TraceOp::phase, "rank_main", 0, 1000, kPhaseRankMain)}));
  const Profile p = Graph::build(report).profile();
  ASSERT_EQ(p.path.size(), 3u);
  EXPECT_EQ(p.path[0].kind, SegmentKind::compute);
  EXPECT_EQ(p.path[1].kind, SegmentKind::handshake);
  EXPECT_EQ(p.path[1].t_start_ns, 100u);
  EXPECT_EQ(p.path[1].t_end_ns, 300u);
  EXPECT_EQ(p.path[2].kind, SegmentKind::compute);
  EXPECT_EQ(p.kind_ns[static_cast<std::size_t>(SegmentKind::handshake)], 200u);
  EXPECT_EQ(p.path_total_ns, 1000u);
}

TEST(ProfGraph, CollectiveWindowClassifiesWaits) {
  // A recv span that starts inside a collective span is collective-wait.
  TraceReport report;
  report.ranks.push_back(make_rank(
      0, "a:0",
      {send_event(500, 7),
       span_event(TraceOp::phase, "rank_main", 0, 900, kPhaseRankMain)}));
  report.ranks.push_back(make_rank(
      1, "b:0",
      {span_event(TraceOp::collective, "barrier", 200, 800),
       span_event(TraceOp::recv, "recv", 250, 600, any_tag, 7),
       span_event(TraceOp::phase, "rank_main", 0, 1000, kPhaseRankMain)}));
  const Profile p = Graph::build(report).profile();
  EXPECT_EQ(p.kind_ns[static_cast<std::size_t>(SegmentKind::collective_wait)],
            100u);  // 500..600, charged from the send
  EXPECT_EQ(p.path_total_ns, 1000u);
}

TEST(ProfGraph, LastJoinTiesBreakTowardTheLowestRank) {
  TraceReport report;
  report.ranks.push_back(make_rank(
      3, "c:1",
      {span_event(TraceOp::phase, "rank_main", 0, 1000, kPhaseRankMain)}));
  report.ranks.push_back(make_rank(
      1, "c:0",
      {span_event(TraceOp::phase, "rank_main", 0, 1000, kPhaseRankMain)}));
  const Profile p = Graph::build(report).profile();
  ASSERT_EQ(p.path.size(), 1u);
  EXPECT_EQ(p.path.front().world_rank, 1);
  // Same input, same answer.
  const Profile again = Graph::build(report).profile();
  EXPECT_EQ(again.path.front().world_rank, 1);
}

TEST(ProfGraph, MissingAnchorFallsBackToEventExtent) {
  TraceReport report;
  report.ranks.push_back(make_rank(
      0, "x:0", {send_event(300, 11), send_event(700, 12)}));
  const Profile p = Graph::build(report).profile();
  EXPECT_EQ(p.job_start_ns, 300u);
  EXPECT_EQ(p.job_end_ns, 700u);
  EXPECT_EQ(p.path_total_ns, 400u);
}

TEST(ProfWhatIf, BaselineReplayReproducesTracedFinish) {
  const Graph g = Graph::build(two_rank_report());
  const std::vector<double> ones = {1.0, 1.0};
  EXPECT_EQ(g.finish_with_scale(ones), 1400u);
}

TEST(ProfWhatIf, SpeedingTheBoundComponentMovesTheJoin) {
  const Graph g = Graph::build(two_rank_report());
  const Profile p = g.profile();

  // Atmosphere 50% faster: its pre-wait gap is hidden behind the message
  // (still arrives at 700), and its 700 ns tail halves — end 1050.
  const WhatIf atm = what_if_component(g, p, "atmosphere", 0.5);
  EXPECT_EQ(atm.baseline_end_ns, 1400u);
  EXPECT_EQ(atm.new_end_ns, 1050u);
  EXPECT_EQ(atm.saved_ns(), 350u);

  // Ocean (world rank 0) 50% faster: the send moves 600 → 300, the
  // arrival 700 → 400, atmosphere's tail is unchanged — end 1100.
  const WhatIf ocean = what_if_rank(g, p, 0, 0.5);
  EXPECT_EQ(ocean.new_end_ns, 1100u);
  EXPECT_EQ(ocean.saved_ns(), 300u);

  // Speeding up a rank never delays the job.
  const WhatIf other = what_if_rank(g, p, 1, 0.2);
  EXPECT_LE(other.new_end_ns, other.baseline_end_ns);
}

TEST(ProfReport, RenderContainsEverySection) {
  const Graph g = Graph::build(two_rank_report());
  const Profile p = g.profile();
  const WhatIf w = what_if_component(g, p, "atmosphere", 0.2);
  const std::string text = render_report(p, std::span<const WhatIf>(&w, 1));
  for (const char* needle :
       {"mph_prof critical path", "job wall", "critical path",
        "blame by kind:", "blame by component (critical-path share):",
        "top critical-path segments:", "slack per rank",
        "<- binds the job", "what-if:", "atmosphere 20.0% faster"}) {
    EXPECT_NE(text.find(needle), std::string::npos)
        << "missing \"" << needle << "\" in:\n" << text;
  }
  // No drops, no warning.
  EXPECT_EQ(text.find("warning:"), std::string::npos) << text;

  const std::string top = render_top_segments(p, 2);
  EXPECT_NE(top.find(" 1. "), std::string::npos) << top;
  EXPECT_NE(top.find(" 2. "), std::string::npos) << top;
  EXPECT_EQ(top.find(" 3. "), std::string::npos) << top;
}

TEST(ProfReport, AnnotatedChromeJsonCarriesOverlayAndParses) {
  const TraceReport report = two_rank_report();
  const Profile p = Graph::build(report).profile();
  const std::string annotated = annotate_chrome_json(report, p);
  EXPECT_NE(annotated.find("\"cat\":\"critical\""), std::string::npos);
  EXPECT_NE(annotated.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(annotated.find("critical_flow"), std::string::npos);
  // Still a valid JSON document with the rollup intact.
  const mph::util::JsonValue doc = mph::util::JsonValue::parse(annotated);
  EXPECT_NE(doc.find("mph"), nullptr);
  std::size_t overlay_spans = 0;
  for (const mph::util::JsonValue& e : doc.at("traceEvents").items()) {
    const mph::util::JsonValue* cat = e.find("cat");
    if (cat != nullptr && cat->as_string() == "critical" &&
        e.at("ph").as_string() == "X") {
      ++overlay_spans;
    }
  }
  EXPECT_EQ(overlay_spans, p.path.size());
}

}  // namespace
