// Chrome-JSON loader round trip: a TraceReport exported with
// to_chrome_json and re-loaded with load_chrome_trace must yield the same
// critical path — including flow ids, phase tags, drop counts, and the
// rollup counters — and an annotated trace must re-load cleanly (the
// cat:"critical" overlay is skipped, not double-counted).
#include "src/minimpi/prof/trace_load.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "src/minimpi/error.hpp"
#include "src/minimpi/prof/profile.hpp"
#include "src/minimpi/trace.hpp"

using namespace minimpi;
using namespace minimpi::prof;

namespace {

TraceEvent span_event(TraceOp op, const char* name, std::uint64_t t0,
                      std::uint64_t t1, tag_t tag = any_tag,
                      std::uint64_t flow = 0) {
  TraceEvent e;
  e.op = op;
  e.span = true;
  e.name = name;
  e.t_start_ns = t0;
  e.t_end_ns = t1;
  e.tag = tag;
  e.flow = flow;
  return e;
}

TraceEvent send_event(std::uint64_t t, std::uint64_t flow) {
  TraceEvent e;
  e.op = TraceOp::send;
  e.span = false;
  e.name = "send";
  e.t_start_ns = t;
  e.t_end_ns = t;
  e.flow = flow;
  e.bytes = 64;
  return e;
}

TraceReport sample_report() {
  TraceReport report;
  RankTrace r0;
  r0.world_rank = 0;
  r0.track = "ocean:0";
  r0.events = {
      span_event(TraceOp::phase, "handshake", 10, 50, kPhaseHandshake),
      send_event(600, 42),
      span_event(TraceOp::phase, "rank_main", 0, 1000, kPhaseRankMain)};
  r0.dropped = 3;
  r0.queue_high_water = 2;
  r0.counters.emplace_back("output_lines(ocean.log)", 7);
  report.ranks.push_back(std::move(r0));

  RankTrace r1;
  r1.world_rank = 1;
  r1.track = "atmosphere:0";
  r1.events = {
      span_event(TraceOp::recv, "recv", 100, 700, any_tag, 42),
      span_event(TraceOp::phase, "rank_main", 0, 1400, kPhaseRankMain)};
  report.ranks.push_back(std::move(r1));

  report.comm.wildcard_recvs = 4;
  report.comm.messages_by_context.emplace_back(kWorldContext, 9);
  return report;
}

TEST(ProfTraceLoad, RoundTripPreservesTheCriticalPath) {
  const TraceReport original = sample_report();
  const Profile before = Graph::build(original).profile();

  const LoadedTrace loaded = load_chrome_trace(original.to_chrome_json());
  const Profile after = Graph::build(loaded.report).profile();

  EXPECT_EQ(after.job_start_ns, before.job_start_ns);
  EXPECT_EQ(after.job_end_ns, before.job_end_ns);
  EXPECT_EQ(after.path_total_ns, before.path_total_ns);
  EXPECT_EQ(after.unresolved_flows, before.unresolved_flows);
  EXPECT_EQ(after.dropped_events, before.dropped_events);
  ASSERT_EQ(after.path.size(), before.path.size());
  for (std::size_t i = 0; i < after.path.size(); ++i) {
    EXPECT_EQ(after.path[i].world_rank, before.path[i].world_rank) << i;
    EXPECT_EQ(after.path[i].kind, before.path[i].kind) << i;
    EXPECT_EQ(after.path[i].t_start_ns, before.path[i].t_start_ns) << i;
    EXPECT_EQ(after.path[i].t_end_ns, before.path[i].t_end_ns) << i;
    EXPECT_EQ(after.path[i].flow, before.path[i].flow) << i;
  }

  // Metadata carried by the rollup survives the round trip too.
  ASSERT_EQ(loaded.report.ranks.size(), 2u);
  EXPECT_EQ(loaded.report.ranks[0].track, "ocean:0");
  EXPECT_EQ(loaded.report.ranks[0].dropped, 3u);
  EXPECT_EQ(loaded.report.ranks[0].queue_high_water, 2u);
  ASSERT_EQ(loaded.report.ranks[0].counters.size(), 1u);
  EXPECT_EQ(loaded.report.ranks[0].counters[0].first,
            "output_lines(ocean.log)");
  EXPECT_EQ(loaded.report.comm.wildcard_recvs, 4u);
}

TEST(ProfTraceLoad, AnnotatedTraceReloadsWithoutDoubleCounting) {
  const TraceReport original = sample_report();
  const Profile profile = Graph::build(original).profile();
  const std::string annotated = annotate_chrome_json(original, profile);

  const LoadedTrace loaded = load_chrome_trace(annotated);
  const Profile again = Graph::build(loaded.report).profile();
  EXPECT_EQ(again.path_total_ns, profile.path_total_ns);
  EXPECT_EQ(again.path.size(), profile.path.size());
  // The overlay added events to the document but none to the timelines.
  std::size_t events = 0;
  for (const RankTrace& r : loaded.report.ranks) events += r.events.size();
  std::size_t original_events = 0;
  for (const RankTrace& r : original.ranks) {
    original_events += r.events.size();
  }
  EXPECT_EQ(events, original_events);
}

TEST(ProfTraceLoad, RejectsNonTraceDocuments) {
  EXPECT_THROW((void)load_chrome_trace("{\"kind\": \"mph_metrics\"}"), Error);
  EXPECT_THROW((void)load_chrome_trace_file("/nonexistent/trace.json"),
               Error);
}

TEST(ProfTraceLoad, LoadsFromDisk) {
  const TraceReport original = sample_report();
  const std::string path = ::testing::TempDir() + "mph_prof_roundtrip.json";
  {
    std::ofstream out(path, std::ios::binary);
    out << original.to_chrome_json();
  }
  const LoadedTrace loaded = load_chrome_trace_file(path);
  EXPECT_EQ(Graph::build(loaded.report).profile().path_total_ns,
            Graph::build(original).profile().path_total_ns);
}

}  // namespace
