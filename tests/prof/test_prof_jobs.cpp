// mph_prof against real traced jobs: the critical path stitches across
// every MPH execution mode, stays sound (partial, warned, never wrong)
// under ring overflow, accounts for the measured wall time, and blames a
// seeded imbalance on the slow component hard enough to drive
// weights_from_critical_path toward the fast one.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/coupler/decomp.hpp"
#include "src/coupler/rebalance.hpp"
#include "src/minimpi/launcher.hpp"
#include "src/minimpi/prof/profile.hpp"
#include "src/minimpi/prof/trace_load.hpp"
#include "tests/mph/mph_test_util.hpp"
#include "tools/mode_scenarios.hpp"

using namespace mph;
using namespace mph::testing;
using minimpi::Comm;
using minimpi::TraceReport;
using minimpi::prof::Graph;
using minimpi::prof::Profile;

namespace {

minimpi::JobOptions traced_options() {
  minimpi::JobOptions options = test_job_options();
  options.trace.enabled = true;
  return options;
}

/// Fraction of the job wall covered by the critical path.  The path is
/// contiguous from the origin rank's launch to the last join, so the only
/// uncovered time is the launch skew between rank threads.
double coverage(const Profile& p) {
  return p.wall_ns() > 0 ? static_cast<double>(p.path_total_ns) /
                               static_cast<double>(p.wall_ns())
                         : 0.0;
}

TEST(ProfJobs, StitchesAllFiveExecutionModes) {
  for (const char* mode : {"scse", "scme", "mcse", "mcme", "mime"}) {
    SCOPED_TRACE(mode);
    const auto scenario = mph_tools::make_mode_scenario(mode, 2);
    ASSERT_TRUE(scenario.has_value());
    const std::vector<minimpi::ExecSpec> specs =
        mph_tools::make_exec_specs(*scenario);
    const minimpi::JobReport report =
        minimpi::run_mpmd(specs, traced_options());
    ASSERT_TRUE(report.ok) << mode << ": " << report.abort_reason;
    ASSERT_TRUE(report.trace.has_value());

    const Profile p = Graph::build(*report.trace).profile();
    EXPECT_GT(p.path_total_ns, 0u);
    EXPECT_EQ(p.unresolved_flows, 0u) << "nothing dropped, all flows stitch";
    EXPECT_EQ(p.dropped_events, 0u);
    // The path is exactly contiguous from the job start to the last join,
    // so the accounting closes: path total == wall, coverage 100%.
    ASSERT_FALSE(p.path.empty());
    EXPECT_EQ(p.path.front().t_start_ns, p.job_start_ns);
    EXPECT_EQ(p.path.back().t_end_ns, p.job_end_ns);
    EXPECT_EQ(p.path_total_ns, p.wall_ns());
    for (std::size_t i = 1; i < p.path.size(); ++i) {
      EXPECT_EQ(p.path[i].t_start_ns, p.path[i - 1].t_end_ns) << i;
    }
  }
}

TEST(ProfJobs, CriticalPathMatchesWallTimeWithinFivePercent) {
  // Seed real compute so wall >> launch skew, then require the accounting
  // to close: the path total equals the traced wall within 5%.
  const std::string registry = "BEGIN\nleft\nright\nEND\n";
  const minimpi::JobReport report = run_mph_job(
      registry,
      {TestExec{{"left"}, "", 1,
                [](Mph& h, const Comm&) {
                  for (int step = 0; step < 4; ++step) {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(10));
                    h.send(step, "right", 0, 5);
                    int ack = 0;
                    h.recv(ack, "right", 0, 6);
                  }
                }},
       TestExec{{"right"}, "", 1,
                [](Mph& h, const Comm&) {
                  for (int step = 0; step < 4; ++step) {
                    int v = 0;
                    h.recv(v, "left", 0, 5);
                    h.send(v, "left", 0, 6);
                  }
                }}},
      {}, traced_options());
  ASSERT_TRUE(report.ok) << report.abort_reason;
  ASSERT_TRUE(report.trace.has_value());

  const Profile p = Graph::build(*report.trace).profile();
  EXPECT_GE(p.wall_ns(), 40'000'000u) << "four 10 ms steps";
  EXPECT_DOUBLE_EQ(coverage(p), 1.0) << "well inside the 5% tolerance";
  EXPECT_EQ(p.unresolved_flows, 0u);
}

TEST(ProfJobs, RingOverflowYieldsPartialPathWithWarningNotACrash) {
  minimpi::JobOptions options = traced_options();
  options.trace.ring_capacity = 32;  // far fewer than the job records

  const std::string registry = "BEGIN\nproducer\nconsumer\nEND\n";
  const minimpi::JobReport report = run_mph_job(
      registry,
      {TestExec{{"producer"}, "", 1,
                [](Mph& h, const Comm&) {
                  for (int i = 0; i < 200; ++i) {
                    h.send(i, "consumer", 0, 3);
                  }
                }},
       TestExec{{"consumer"}, "", 1,
                [](Mph& h, const Comm&) {
                  for (int i = 0; i < 200; ++i) {
                    int v = 0;
                    h.recv(v, "producer", 0, 3);
                  }
                }}},
      {}, options);
  ASSERT_TRUE(report.ok) << report.abort_reason;
  ASSERT_TRUE(report.trace.has_value());

  std::uint64_t dropped = 0;
  for (const minimpi::RankTrace& r : report.trace->ranks) {
    dropped += r.dropped;
  }
  ASSERT_GT(dropped, 0u) << "the test must actually overflow the rings";

  // The analysis stays sound: a partial path inside the wall, with the
  // explicit warning carrying the real numbers.
  const Profile p = Graph::build(*report.trace).profile();
  EXPECT_GT(p.path_total_ns, 0u);
  EXPECT_LE(p.path_total_ns, p.wall_ns());
  EXPECT_EQ(p.dropped_events, dropped);
  const std::string text = minimpi::prof::render_report(p);
  EXPECT_NE(text.find("warning: partial critical path — "),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("flow edges unresolved (ring dropped " +
                      std::to_string(dropped) + " events)"),
            std::string::npos)
      << text;
}

TEST(ProfJobs, SeededImbalanceBlamesTheSlowComponentAndShiftsWeights) {
  // Lock-step coupling where "slowmodel" computes 3x longer per step: the
  // critical path must blame it for the bulk of the job, and the derived
  // weights must hand Decomp::weighted more work on the fast rank.
  const std::string registry = "BEGIN\nslowmodel\nfastmodel\nEND\n";
  constexpr int kSteps = 6;
  const minimpi::JobReport report = run_mph_job(
      registry,
      {TestExec{{"slowmodel"}, "", 1,
                [](Mph& h, const Comm&) {
                  for (int step = 0; step < kSteps; ++step) {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(9));
                    h.send(step, "fastmodel", 0, 11);
                    int ack = 0;
                    h.recv(ack, "fastmodel", 0, 12);
                  }
                }},
       TestExec{{"fastmodel"}, "", 1,
                [](Mph& h, const Comm&) {
                  for (int step = 0; step < kSteps; ++step) {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(3));
                    int v = 0;
                    h.recv(v, "slowmodel", 0, 11);
                    h.send(v, "slowmodel", 0, 12);
                  }
                }}},
      {}, traced_options());
  ASSERT_TRUE(report.ok) << report.abort_reason;
  ASSERT_TRUE(report.trace.has_value());

  const Graph graph = Graph::build(*report.trace);
  const Profile p = graph.profile();
  const std::vector<minimpi::prof::ComponentBlame> blame = p.components();
  ASSERT_FALSE(blame.empty());
  EXPECT_EQ(blame.front().component, "slowmodel");
  EXPECT_GE(blame.front().share, 0.6)
      << "slowmodel sleeps 3x per step and must own the path";

  // What-if agrees with the blame: speeding the slow component helps more.
  const minimpi::prof::WhatIf slow_wi =
      minimpi::prof::what_if_component(graph, p, "slowmodel", 0.5);
  const minimpi::prof::WhatIf fast_wi =
      minimpi::prof::what_if_component(graph, p, "fastmodel", 0.5);
  EXPECT_GT(slow_wi.saved_ns(), fast_wi.saved_ns());

  // And the rebalance bridge moves work toward the fast rank.
  const coupler::Decomp current = coupler::Decomp::block(100, 2);
  const std::vector<minimpi::rank_t> world_ranks = {0, 1};  // slow, fast
  const std::vector<double> weights =
      coupler::weights_from_critical_path(p, current, world_ranks);
  ASSERT_EQ(weights.size(), 2u);
  EXPECT_LT(weights[0], weights[1]);
  const coupler::Decomp shifted = coupler::Decomp::weighted(100, weights);
  EXPECT_GT(shifted.local_size(1), shifted.local_size(0));
  EXPECT_LT(shifted.local_size(0), current.local_size(0));
}

TEST(ProfJobs, ExportLoadRoundTripOnARealJob) {
  const auto scenario = mph_tools::make_mode_scenario("scme", 2);
  ASSERT_TRUE(scenario.has_value());
  const minimpi::JobReport report = minimpi::run_mpmd(
      mph_tools::make_exec_specs(*scenario), traced_options());
  ASSERT_TRUE(report.ok) << report.abort_reason;
  ASSERT_TRUE(report.trace.has_value());

  const Profile direct = Graph::build(*report.trace).profile();
  const minimpi::prof::LoadedTrace loaded =
      minimpi::prof::load_chrome_trace(report.trace->to_chrome_json());
  const Profile reloaded = Graph::build(loaded.report).profile();
  EXPECT_EQ(reloaded.path_total_ns, direct.path_total_ns);
  EXPECT_EQ(reloaded.job_end_ns, direct.job_end_ns);
  EXPECT_EQ(reloaded.path.size(), direct.path.size());
  EXPECT_EQ(reloaded.unresolved_flows, direct.unresolved_flows);
}

}  // namespace
