// test_watch_steering.cpp — the mph_watch closed loop, end to end: a
// seeded 4x-slower ocean drags the coupled climate system out of balance,
// the imbalance rule fires on the live snapshots, the steering glue in
// run_coupled_component folds weights_from_metrics through the Rebalancer
// and repartitions the auxiliary work field — and the physics never
// notices: the coupler diagnostics stay bit-identical to an unsteered
// run.  The firing alert also ships a flight record with critical-path
// blame (tracing is on), which is the anomaly-triggered dump path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/climate/scenario.hpp"
#include "src/coupler/decomp.hpp"
#include "src/minimpi/job.hpp"
#include "src/minimpi/watch/watch.hpp"
#include "tests/mph/mph_test_util.hpp"

using namespace mph;
using namespace mph::climate;
using namespace mph::testing;
using minimpi::Comm;

namespace {

constexpr int kWorldRanks = 7;  // atm 2, ocean 2, land 1, ice 1, coupler 1

ClimateConfig steering_config() {
  ClimateConfig cfg;
  cfg.atm_nlon = 8;
  cfg.atm_nlat = 6;
  cfg.ocn_nlon = 12;
  cfg.ocn_nlat = 8;
  cfg.steps_per_interval = 2;
  cfg.intervals = 8;
  return cfg;
}

SteeringSpec steering_spec() {
  SteeringSpec steer;
  steer.work_units = 1024;
  steer.work_reps = 200;
  steer.slow_component = "ocean";
  steer.slow_factor = 4.0;
  steer.policy.trigger_imbalance = 1.1;
  steer.policy.smoothing = 1.0;  // adopt the observed weights outright
  return steer;
}

struct SteeredOutcome {
  minimpi::JobReport report;
  CouplerDiagnostics diag;
  std::map<int, std::string> component_of;        ///< world rank -> name
  std::map<int, std::int64_t> units_of;           ///< world rank -> units
  std::map<int, std::vector<int>> rebalanced_of;  ///< world rank -> intervals
};

/// The SCME wiring of the coupled system with steering attached; `steer`
/// null runs the plain legacy protocol (the bit-identical baseline).
SteeredOutcome run_coupled(const ClimateConfig& cfg, const SteeringSpec* steer,
                           minimpi::JobOptions options) {
  SteeredOutcome out;
  std::mutex mutex;
  auto body = [&](Mph& h, const Comm&) {
    const ComponentResult r =
        run_coupled_component(h, cfg, {}, "coupler", nullptr, steer);
    const std::lock_guard<std::mutex> lock(mutex);
    const int w = h.global_proc_id();
    out.component_of[w] = r.component;
    out.units_of[w] = r.steer_local_units;
    out.rebalanced_of[w] = r.rebalanced_intervals;
    if (r.component == "coupler" && h.local_proc_id() == 0) {
      out.diag = r.coupler;
    }
  };
  out.report = run_mph_job(
      "BEGIN\natmosphere\nocean\nland\nice\ncoupler\nEND\n",
      {TestExec{{"atmosphere"}, "", 2, body}, TestExec{{"ocean"}, "", 2, body},
       TestExec{{"land"}, "", 1, body}, TestExec{{"ice"}, "", 1, body},
       TestExec{{"coupler"}, "", 1, body}},
      {}, std::move(options));
  return out;
}

minimpi::JobOptions watched_options() {
  minimpi::JobOptions options = test_job_options();
  options.monitor.enabled = true;
  options.monitor.interval = std::chrono::milliseconds(0);
  options.watch.enabled = true;
  options.watch.fire_after = 1;
  options.watch.clear_after = 1;
  options.watch.imbalance_ratio = 1.3;
  options.watch.dir = ::testing::TempDir() + "mph_watch_steering";
  options.trace.enabled = true;  // wires the flight recorder
  return options;
}

}  // namespace

TEST(WatchSteering, ClosedLoopRebalancesWithoutPerturbingPhysics) {
  const ClimateConfig cfg = steering_config();

  // Baseline: the identical physics with no watch and no steering.
  const SteeredOutcome plain = run_coupled(cfg, nullptr, test_job_options());
  ASSERT_TRUE(plain.report.ok) << plain.report.abort_reason;
  ASSERT_EQ(plain.diag.mean_sst.size(), 8U);
  EXPECT_TRUE(plain.report.health.empty());
  for (const auto& [rank, units] : plain.units_of) {
    EXPECT_EQ(units, 0) << "no steering, no work field";
  }

  // The steered run: seeded 4x-slower ocean, watch + tracing on.
  const SteeringSpec steer = steering_spec();
  const SteeredOutcome live = run_coupled(cfg, &steer, watched_options());
  ASSERT_TRUE(live.report.ok) << live.report.abort_reason;

  // 1. The imbalance rule fired and named the seeded component.
  const auto imbalance = std::find_if(
      live.report.health.begin(), live.report.health.end(),
      [](const minimpi::watch::HealthEvent& ev) {
        return ev.rule == "imbalance" && !ev.cleared;
      });
  ASSERT_NE(imbalance, live.report.health.end())
      << "no imbalance event in " << live.report.health.size() << " events";
  EXPECT_EQ(imbalance->subject, "ocean");

  // 2. The alert shipped a flight record with critical-path blame.
  EXPECT_FALSE(imbalance->flight_file.empty());
  EXPECT_TRUE(std::filesystem::exists(imbalance->flight_file))
      << imbalance->flight_file;
  EXPECT_FALSE(imbalance->blame.empty());

  // 3. Every rank rebalanced, identically, within bounded intervals.
  ASSERT_EQ(live.rebalanced_of.size(), static_cast<std::size_t>(kWorldRanks));
  const std::vector<int>& intervals = live.rebalanced_of.begin()->second;
  ASSERT_FALSE(intervals.empty());
  EXPECT_LE(intervals.front(), 5) << "rebalance came too late";
  for (const auto& [rank, mine] : live.rebalanced_of) {
    EXPECT_EQ(mine, intervals) << "rank " << rank
                               << " disagrees on the rebalance schedule";
  }

  // 4. The work field is conserved, and work actually moved off the slow
  // component: ocean ends with fewer units than its initial block share.
  std::int64_t total = 0;
  std::int64_t ocean_units = 0;
  std::int64_t ocean_initial = 0;
  const coupler::Decomp initial =
      coupler::Decomp::block(steer.work_units, kWorldRanks);
  for (const auto& [rank, units] : live.units_of) {
    total += units;
    if (live.component_of.at(rank) == "ocean") {
      ocean_units += units;
      ocean_initial += initial.local_size(rank);
    }
  }
  EXPECT_EQ(total, steer.work_units);
  EXPECT_LT(ocean_units, ocean_initial)
      << "steering fired but no work left the slow component";

  // 5. The load: the physics is untouched — bit-identical diagnostics.
  EXPECT_EQ(live.diag.mean_sst, plain.diag.mean_sst);
  EXPECT_EQ(live.diag.mean_t_atm, plain.diag.mean_t_atm);
  EXPECT_EQ(live.diag.mean_icefrac, plain.diag.mean_icefrac);
}
