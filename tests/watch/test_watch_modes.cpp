// test_watch_modes.cpp — the wired mph_watch path under fault injection,
// across every execution mode the paper names (SCSE, SCME, MCSE, MCME,
// MIME).  A FaultPlan delay holds one component's message in flight while
// an observer rank feeds live snapshots to the job's Watcher: the stalled
// component (blocked, zero deliveries) must raise a stall HealthEvent
// through JobOptions::watch -> Job::watcher -> JobReport::health, whatever
// the wiring.  The delayed sender also burns the fault budget, which the
// launcher's final observe reports even when no window caught it.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/minimpi/fault.hpp"
#include "src/minimpi/job.hpp"
#include "src/minimpi/watch/watch.hpp"
#include "tests/mph/mph_test_util.hpp"

using namespace mph;
using namespace mph::testing;
using minimpi::Comm;

namespace {

constexpr int kDelayTag = 777;
constexpr std::chrono::milliseconds kDelay{1200};

/// Watch on, collect-only monitoring, hair-trigger hysteresis.  The stall
/// threshold is low enough that one blocked rank carries a component of up
/// to three ranks past it.
minimpi::JobOptions watched_options(const std::string& name) {
  minimpi::JobOptions options = test_job_options();
  options.monitor.enabled = true;
  options.monitor.interval = std::chrono::milliseconds(0);
  options.watch.enabled = true;
  options.watch.fire_after = 1;
  options.watch.clear_after = 1;
  options.watch.stall_blocked_pct = 25.0;
  options.watch.flight_record = false;  // no tracer in these jobs
  options.watch.dir = ::testing::TempDir() + "mph_watch_modes_" + name;

  // Hold the one marked envelope in flight for kDelay.
  minimpi::EnvelopeMatch slow;
  slow.tag = kDelayTag;
  options.faults.delay(slow, kDelay);
  return options;
}

/// The observer rank: feeds the job's Watcher a baseline plus a train of
/// short windows while the delayed envelope is still in flight.  During
/// those windows the consumer sits blocked (the in-progress wait is folded
/// into its blocked_ns) and its component delivers nothing — the stall
/// signature.
void observe_windows(const Comm& world) {
  minimpi::Job& job = world.job();
  minimpi::watch::Watcher* watcher = job.watcher();
  ASSERT_NE(watcher, nullptr) << "watch enabled but Job::watcher() is null";
  watcher->observe(job.metrics_snapshot());  // baseline frame
  for (int i = 0; i < 8; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    watcher->observe(job.metrics_snapshot());
  }
}

void produce(const Comm& comm, int dest_local) {
  comm.send(42, dest_local, kDelayTag);  // sleeps kDelay in the injector
}

void consume(const Comm& comm, int src_local) {
  int v = 0;
  comm.recv(v, src_local, kDelayTag);
  EXPECT_EQ(v, 42);
}

bool fired(const std::vector<minimpi::watch::HealthEvent>& events,
           const std::string& rule, const std::string& subject) {
  return std::any_of(events.begin(), events.end(),
                     [&](const minimpi::watch::HealthEvent& ev) {
                       return ev.rule == rule && !ev.cleared &&
                              (subject.empty() || ev.subject == subject);
                     });
}

std::string describe(const std::vector<minimpi::watch::HealthEvent>& events) {
  std::string out = "events:";
  for (const minimpi::watch::HealthEvent& ev : events) {
    out += " " + ev.rule + "/" + ev.subject + (ev.cleared ? "(clear)" : "");
  }
  return out;
}

}  // namespace

TEST(WatchModes, ScseStallAndFaultBurnFire) {
  // One component, one executable: rank 0 observes, rank 1's send to rank
  // 2 is delayed.  With a one-fault budget the final snapshot alone must
  // report the burn even if every live window had missed it.
  minimpi::JobOptions options = watched_options("scse");
  options.watch.fault_budget = 1;
  const minimpi::JobReport report = run_mph_job(
      "BEGIN\nocean\nEND\n",
      {TestExec{{"ocean"}, "", 3,
                [](Mph& h, const Comm& world) {
                  const Comm& comm = h.comp_comm();
                  if (comm.rank() == 0) {
                    observe_windows(world);
                  } else if (comm.rank() == 1) {
                    produce(comm, 2);
                  } else {
                    consume(comm, 1);
                  }
                }}},
      {}, options);
  ASSERT_TRUE(report.ok) << report.abort_reason;
  EXPECT_TRUE(fired(report.health, "stall", "ocean"))
      << describe(report.health);
  EXPECT_TRUE(fired(report.health, "fault_burn", "ocean"))
      << describe(report.health);
}

TEST(WatchModes, ScmeStallFires) {
  // Single-component executables: a one-rank "probe" watches while the
  // two-rank "ocean" exchanges the delayed message.
  const minimpi::JobReport report = run_mph_job(
      "BEGIN\nprobe\nocean\nEND\n",
      {TestExec{{"probe"}, "", 1,
                [](Mph&, const Comm& world) { observe_windows(world); }},
       TestExec{{"ocean"}, "", 2,
                [](Mph& h, const Comm&) {
                  const Comm& comm = h.comp_comm();
                  if (comm.rank() == 0) {
                    produce(comm, 1);
                  } else {
                    consume(comm, 0);
                  }
                }}},
      {}, watched_options("scme"));
  ASSERT_TRUE(report.ok) << report.abort_reason;
  EXPECT_TRUE(fired(report.health, "stall", "ocean"))
      << describe(report.health);
}

TEST(WatchModes, McseStallFires) {
  // Multi-component single executable: the master program dispatches on
  // component membership (paper §4.2).
  const std::string registry = R"(BEGIN
Multi_Component_Begin
probe 0 0
ocean 1 2
Multi_Component_End
END
)";
  const minimpi::JobReport report = run_mph_job(
      registry,
      {TestExec{{"probe", "ocean"}, "", 3,
                [](Mph& h, const Comm& world) {
                  if (h.comp_name() == "probe") {
                    observe_windows(world);
                  } else if (h.comp_comm().rank() == 0) {
                    produce(h.comp_comm(), 1);
                  } else {
                    consume(h.comp_comm(), 0);
                  }
                }}},
      {}, watched_options("mcse"));
  ASSERT_TRUE(report.ok) << report.abort_reason;
  EXPECT_TRUE(fired(report.health, "stall", "ocean"))
      << describe(report.health);
}

TEST(WatchModes, McmeStallFires) {
  // Multi-component executables: observer and bystander share one binary,
  // the delayed component lives in another.
  const std::string registry = R"(BEGIN
Multi_Component_Begin
probe 0 0
land 1 1
Multi_Component_End
ocean
END
)";
  const minimpi::JobReport report = run_mph_job(
      registry,
      {TestExec{{"probe", "land"}, "", 2,
                [](Mph& h, const Comm& world) {
                  if (h.comp_name() == "probe") observe_windows(world);
                }},
       TestExec{{"ocean"}, "", 2,
                [](Mph& h, const Comm&) {
                  const Comm& comm = h.comp_comm();
                  if (comm.rank() == 0) {
                    produce(comm, 1);
                  } else {
                    consume(comm, 0);
                  }
                }}},
      {}, watched_options("mcme"));
  ASSERT_TRUE(report.ok) << report.abort_reason;
  EXPECT_TRUE(fired(report.health, "stall", "ocean"))
      << describe(report.health);
}

TEST(WatchModes, MimeStallFiresOnTheSlowInstance) {
  // Multi-instance: only Ocean2 exchanges the delayed message, so the
  // stall must name that instance, not its healthy sibling.
  const std::string registry = R"(BEGIN
Multi_Instance_Begin
Ocean1 0 1
Ocean2 2 3
Multi_Instance_End
END
)";
  const minimpi::JobReport report = run_mph_job(
      registry,
      {TestExec{{}, "Ocean", 4,
                [](Mph& h, const Comm& world) {
                  if (world.rank() == 0) {
                    observe_windows(world);
                  } else if (h.comp_name() == "Ocean2") {
                    const Comm& comm = h.comp_comm();
                    if (comm.rank() == 0) {
                      produce(comm, 1);
                    } else {
                      consume(comm, 0);
                    }
                  }
                }}},
      {}, watched_options("mime"));
  ASSERT_TRUE(report.ok) << report.abort_reason;
  EXPECT_TRUE(fired(report.health, "stall", "Ocean2"))
      << describe(report.health);
  EXPECT_FALSE(fired(report.health, "stall", "Ocean1"))
      << describe(report.health);
}

TEST(WatchModes, WatchOffReportsNoHealth) {
  // The off path: no watcher, no health, no watch cost — the contract the
  // whole layer rides on.
  const minimpi::JobReport report = run_mph_job(
      "BEGIN\nocean\nEND\n",
      {TestExec{{"ocean"}, "", 2,
                [](Mph& h, const Comm& world) {
                  EXPECT_EQ(world.job().watcher(), nullptr);
                  const Comm& comm = h.comp_comm();
                  if (comm.rank() == 0) {
                    comm.send(1, 1, 5);
                  } else {
                    int v = 0;
                    comm.recv(v, 0, 5);
                  }
                }}});
  ASSERT_TRUE(report.ok) << report.abort_reason;
  EXPECT_TRUE(report.health.empty());
}
