// test_watch_viewer.cpp — the consumer half of mph_watch: health-event
// JSONL round trips, the rotation/truncation tolerance contract of the
// file readers, alert replay, and the merged `mph_inspect watch` view.
// Everything here runs without launching a job or spawning the CLI.
#include "src/mph/monitor.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/minimpi/metrics.hpp"
#include "src/minimpi/watch/watch.hpp"

namespace mon = mph::mon;
namespace watch = minimpi::watch;

namespace {

minimpi::MetricsSnapshot make_snap(std::uint64_t seq) {
  minimpi::MetricsSnapshot snap;
  snap.seq = seq;
  snap.t_ns = seq * 1'000'000'000ULL;
  snap.wall_ms = 1'700'000'000'000ULL + seq * 1000;
  minimpi::RankMetrics r;
  r.world_rank = 0;
  r.component = "ocean";
  r.delivered = seq * 100;
  r.delivered_bytes = seq * 4096;
  snap.ranks.push_back(std::move(r));
  return snap;
}

watch::HealthEvent make_event(std::uint64_t seq, const std::string& rule,
                              const std::string& subject, bool cleared,
                              watch::Severity severity) {
  watch::HealthEvent ev;
  ev.seq = seq;
  ev.t_ns = seq * 1'000'000'000ULL;
  ev.wall_ms = 1'700'000'000'000ULL + seq * 1000;
  ev.rule = rule;
  ev.subject = subject;
  ev.cleared = cleared;
  ev.severity = severity;
  ev.value = 95.5;
  ev.threshold = 80.0;
  ev.message = rule + " event on " + subject;
  return ev;
}

std::string temp_file(const std::string& name) {
  return ::testing::TempDir() + "mph_watch_viewer_" + name;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  out << content;
}

}  // namespace

TEST(WatchViewer, HealthEventRoundTripsThroughJsonl) {
  watch::HealthEvent ev =
      make_event(7, "stall", "ocean", false, watch::Severity::critical);
  ev.blame = "ocean (62% of critical path)";
  ev.flight_file = "logs/mph_flight_7.json";

  const watch::HealthEvent back = mon::parse_health_event(ev.to_jsonl());
  EXPECT_EQ(back.seq, 7U);
  EXPECT_EQ(back.t_ns, ev.t_ns);
  EXPECT_EQ(back.wall_ms, ev.wall_ms);
  EXPECT_EQ(back.rule, "stall");
  EXPECT_EQ(back.subject, "ocean");
  EXPECT_EQ(back.severity, watch::Severity::critical);
  EXPECT_FALSE(back.cleared);
  EXPECT_DOUBLE_EQ(back.value, 95.5);
  EXPECT_DOUBLE_EQ(back.threshold, 80.0);
  EXPECT_EQ(back.message, ev.message);
  EXPECT_EQ(back.blame, ev.blame);
  EXPECT_EQ(back.flight_file, ev.flight_file);

  // The cleared/info edge survives too.
  const watch::HealthEvent healed = mon::parse_health_event(
      make_event(9, "stall", "ocean", true, watch::Severity::info).to_jsonl());
  EXPECT_TRUE(healed.cleared);
  EXPECT_EQ(healed.severity, watch::Severity::info);

  EXPECT_THROW(mon::parse_health_event("{\"half\": "), std::runtime_error);
  // Well-formed JSON of the wrong kind is a contract error, not a skip.
  EXPECT_THROW(mon::parse_health_event(make_snap(1).to_jsonl()),
               std::runtime_error);
}

TEST(WatchViewer, LooksLikeTellsHealthFromMetrics) {
  const std::string health =
      make_event(1, "queue", "land", false, watch::Severity::warning)
          .to_jsonl();
  const std::string metrics = make_snap(1).to_jsonl();
  EXPECT_TRUE(mon::looks_like_health(health + "\n" + health));
  EXPECT_FALSE(mon::looks_like_health(metrics));
  EXPECT_FALSE(mon::looks_like_health("not json at all"));
  EXPECT_TRUE(mon::looks_like_metrics(metrics));
  EXPECT_FALSE(mon::looks_like_metrics(health));
}

TEST(WatchViewer, LastValidSnapshotResyncsAcrossRotationAndTruncation) {
  const std::string path = temp_file("rotated.jsonl");
  // A reattached viewer sees: the torn tail of a rotated-away line, a good
  // frame, producer garbage, a newer good frame, and a half-written tail
  // (the race with the producer's append).  The contract: skip, don't
  // error, and return the newest frame that parses.
  write_file(path, "ks\": 12, \"tNs\": 99}\n" +            // torn rotation
                       make_snap(3).to_jsonl() + "\n" +
                       "!!corrupt line!!\n" +
                       make_snap(7).to_jsonl() + "\n" +
                       make_snap(9).to_jsonl().substr(0, 40));  // torn tail
  const std::optional<minimpi::MetricsSnapshot> snap =
      mon::last_valid_snapshot(path);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->seq, 7U);
  EXPECT_EQ(snap->wall_ms, make_snap(7).wall_ms);

  // Nothing parseable (or no file at all) is nullopt, not a throw.
  write_file(path, "garbage\nmore garbage\n");
  EXPECT_FALSE(mon::last_valid_snapshot(path).has_value());
  std::filesystem::remove(path);
  EXPECT_FALSE(mon::last_valid_snapshot(path).has_value());
}

TEST(WatchViewer, ReadHealthTailSkipsTornLinesAndCaps) {
  const std::string path = temp_file("health.jsonl");
  std::string content;
  for (std::uint64_t seq = 1; seq <= 5; ++seq) {
    content += make_event(seq, "queue", "land", false,
                          watch::Severity::warning)
                   .to_jsonl() +
               "\n";
    if (seq == 2) content += "{\"torn\": \n";  // producer race artifact
  }
  write_file(path, content);

  const std::vector<watch::HealthEvent> tail =
      mon::read_health_tail(path, 3);
  ASSERT_EQ(tail.size(), 3U);
  // Oldest first, and the torn line cost us nothing.
  EXPECT_EQ(tail[0].seq, 3U);
  EXPECT_EQ(tail[2].seq, 5U);

  EXPECT_TRUE(mon::read_health_tail(path + ".missing").empty());
  std::filesystem::remove(path);
}

TEST(WatchViewer, ActiveAlertsReplayKeepsNewestEdgePerRuleSubject) {
  std::vector<watch::HealthEvent> events;
  events.push_back(
      make_event(1, "stall", "ocean", false, watch::Severity::critical));
  events.push_back(
      make_event(2, "queue", "land", false, watch::Severity::warning));
  events.push_back(
      make_event(3, "stall", "ocean", true, watch::Severity::info));
  events.push_back(
      make_event(4, "stall", "ocean", false, watch::Severity::critical));

  const std::vector<watch::HealthEvent> active = mon::active_alerts(events);
  ASSERT_EQ(active.size(), 2U);
  EXPECT_EQ(active[0].rule, "queue");
  EXPECT_EQ(active[1].rule, "stall");
  EXPECT_EQ(active[1].seq, 4U);  // the re-fire, not the original

  // A fully cleared stream has no active alerts.
  events.push_back(
      make_event(5, "stall", "ocean", true, watch::Severity::info));
  events.push_back(
      make_event(6, "queue", "land", true, watch::Severity::info));
  EXPECT_TRUE(mon::active_alerts(events).empty());
}

TEST(WatchViewer, TopViewCarriesSeqAndWallStamps) {
  const minimpi::MetricsSnapshot prev = make_snap(4);
  const minimpi::MetricsSnapshot cur = make_snap(5);
  const mon::TopView view = mon::build_top_view(&prev, cur);
  EXPECT_EQ(view.seq, 5U);
  EXPECT_EQ(view.wall_ms, cur.wall_ms);
  ASSERT_EQ(view.rows.size(), 1U);
  // Rates come from the line stamps: 100 deliveries over the 1 s between
  // the two frames' tNs.
  EXPECT_NEAR(view.rows[0].msgs_per_s, 100.0, 1e-6);

  // First frame of a session: stamps present, rates zero.
  const mon::TopView first = mon::build_top_view(nullptr, cur);
  EXPECT_EQ(first.seq, 5U);
  EXPECT_DOUBLE_EQ(first.rows[0].msgs_per_s, 0.0);
}

TEST(WatchViewer, BuildWatchViewMergesJobsIntoOneTimeline) {
  mon::WatchJob a;
  a.source = "jobA/mph_metrics.jsonl";
  a.online = true;
  a.snapshot = make_snap(10);
  a.events.push_back(
      make_event(2, "stall", "ocean", false, watch::Severity::critical));
  a.events.push_back(
      make_event(6, "queue", "land", false, watch::Severity::warning));

  mon::WatchJob b;
  b.source = "jobB/mph_health.jsonl";
  b.online = false;
  b.events.push_back(
      make_event(4, "fault_burn", "ice", false, watch::Severity::warning));

  const mon::WatchView view =
      mon::build_watch_view({a, b}, /*max_recent=*/2);
  EXPECT_EQ(view.jobs.size(), 2U);
  EXPECT_EQ(view.active, 3U);
  // The ribbon is the *newest* two events across both jobs, merged on the
  // wall-clock stamp: jobB's seq-4 event lands between jobA's 2 and 6.
  ASSERT_EQ(view.recent.size(), 2U);
  EXPECT_EQ(view.recent[0].first, 1U);
  EXPECT_EQ(view.recent[0].second.rule, "fault_burn");
  EXPECT_EQ(view.recent[1].first, 0U);
  EXPECT_EQ(view.recent[1].second.rule, "queue");
}

TEST(WatchViewer, RenderWatchShowsAlertsOfflineAndMissingSnapshots) {
  mon::WatchJob a;
  a.source = "jobA.sock";
  a.online = true;
  a.snapshot = make_snap(10);
  watch::HealthEvent alert =
      make_event(2, "stall", "ocean", false, watch::Severity::critical);
  alert.blame = "ocean (62% of critical path)";
  a.events.push_back(alert);

  mon::WatchJob gone;
  gone.source = "jobB/mph_metrics.jsonl";
  gone.online = false;
  gone.snapshot = make_snap(3);

  mon::WatchJob empty;
  empty.source = "jobC/mph_health.jsonl";

  const std::string out =
      mon::render_watch(mon::build_watch_view({a, gone, empty}));
  EXPECT_NE(out.find("3 job(s), 1 active alert(s)"), std::string::npos);
  EXPECT_NE(out.find("ALERT critical stall/ocean"), std::string::npos);
  EXPECT_NE(out.find("[blame: ocean (62% of critical path)]"),
            std::string::npos);
  EXPECT_NE(out.find("(offline)"), std::string::npos);
  EXPECT_NE(out.find("(no snapshot)"), std::string::npos);
  EXPECT_NE(out.find("recent events:"), std::string::npos);
}
