// test_watch_rules.cpp — mph_watch rule engine on synthetic snapshots:
// every rule's fire/clear edge, the hysteresis (no flapping on a noisy
// boundary), the steering handshake, and option parsing.  No job is
// launched; the Watcher is fed MetricsSnapshots directly, which is the
// same call path the monitor thread and the steering loop use.
#include "src/minimpi/watch/watch.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/minimpi/metrics.hpp"

namespace watch = minimpi::watch;

namespace {

constexpr std::uint64_t kSecond = 1'000'000'000;

struct Row {
  minimpi::rank_t rank = 0;
  std::string component;
  bool alive = true;
  std::uint64_t delivered = 0;
  std::uint64_t blocked_ns = 0;
  std::uint64_t queue_depth = 0;
  std::uint64_t faults = 0;
  minimpi::HistogramData latency;
};

minimpi::MetricsSnapshot make_snap(std::uint64_t seq,
                                   const std::vector<Row>& rows) {
  minimpi::MetricsSnapshot snap;
  snap.seq = seq;
  snap.t_ns = seq * kSecond;  // one-second publish cadence
  snap.wall_ms = 1'700'000'000'000ULL + seq * 1000;
  for (const Row& row : rows) {
    minimpi::RankMetrics r;
    r.world_rank = row.rank;
    r.component = row.component;
    r.alive = row.alive;
    r.delivered = row.delivered;
    r.blocked_ns = row.blocked_ns;
    r.queue_depth = row.queue_depth;
    r.faults = row.faults;
    r.match_latency = row.latency;
    snap.ranks.push_back(std::move(r));
  }
  return snap;
}

watch::WatchOptions test_options(const std::string& name) {
  watch::WatchOptions opts;
  opts.enabled = true;
  opts.fire_after = 2;
  opts.clear_after = 2;
  opts.flight_record = false;  // no tracer in these tests
  opts.dir = ::testing::TempDir() + "mph_watch_rules_" + name;
  return opts;
}

}  // namespace

TEST(WatchRules, StallFiresAfterConsecutiveBreachesAndClears) {
  watch::Watcher w(test_options("stall"));

  // Baseline frame: primes the ring, judges nothing.
  EXPECT_TRUE(w.observe(make_snap(1, {{0, "ocean", true, 10, 0}})).empty());

  // Breach #1: blocked 95% of the interval with zero deliveries.  With
  // fire_after=2 the first breach only counts.
  EXPECT_TRUE(
      w.observe(make_snap(2, {{0, "ocean", true, 10, 950'000'000}})).empty());
  EXPECT_EQ(w.active_alerts(), 0U);

  // Breach #2 fires: critical, subject is the component.
  std::vector<watch::HealthEvent> fired =
      w.observe(make_snap(3, {{0, "ocean", true, 10, 1'900'000'000}}));
  ASSERT_EQ(fired.size(), 1U);
  EXPECT_EQ(fired[0].rule, "stall");
  EXPECT_EQ(fired[0].subject, "ocean");
  EXPECT_EQ(fired[0].severity, watch::Severity::critical);
  EXPECT_FALSE(fired[0].cleared);
  EXPECT_GE(fired[0].value, 80.0);
  EXPECT_EQ(w.active_alerts(), 1U);

  // The Prometheus gauge follows the alert state.
  const std::string gauges = w.alert_gauges();
  EXPECT_NE(gauges.find("mph_watch_alert{rule=\"stall\",subject=\"ocean\"} 1"),
            std::string::npos);
  EXPECT_NE(gauges.find("mph_watch_events_total 1"), std::string::npos);

  // Recovery: deliveries resume, no further blocking.  clear_after=2, so
  // the first clean frame holds the alert and the second clears it.
  EXPECT_TRUE(
      w.observe(make_snap(4, {{0, "ocean", true, 20, 1'900'000'000}})).empty());
  std::vector<watch::HealthEvent> cleared =
      w.observe(make_snap(5, {{0, "ocean", true, 30, 1'900'000'000}}));
  ASSERT_EQ(cleared.size(), 1U);
  EXPECT_EQ(cleared[0].rule, "stall");
  EXPECT_TRUE(cleared[0].cleared);
  EXPECT_EQ(cleared[0].severity, watch::Severity::info);
  EXPECT_EQ(w.active_alerts(), 0U);
  EXPECT_NE(w.alert_gauges().find(
                "mph_watch_alert{rule=\"stall\",subject=\"ocean\"} 0"),
            std::string::npos);
}

TEST(WatchRules, HysteresisNeverFlapsOnAlternatingFrames) {
  // A boundary-riding signal: breach, clean, breach, clean...  With
  // fire_after=2 the breach streak never reaches two, so the watcher must
  // stay silent for the whole run.
  watch::Watcher w(test_options("flap"));
  std::uint64_t blocked = 0;
  std::uint64_t delivered = 0;
  w.observe(make_snap(1, {{0, "ocean", true, delivered, blocked}}));
  for (std::uint64_t seq = 2; seq <= 12; ++seq) {
    const bool breach = (seq % 2) == 0;
    if (breach) {
      blocked += 950'000'000;  // 95% of the interval, nothing delivered
    } else {
      delivered += 5;  // clean frame: traffic flows, no blocking
    }
    EXPECT_TRUE(
        w.observe(make_snap(seq, {{0, "ocean", true, delivered, blocked}}))
            .empty())
        << "flapped at seq " << seq;
  }
  EXPECT_EQ(w.active_alerts(), 0U);
  EXPECT_TRUE(w.events().empty());
}

TEST(WatchRules, QueueGrowthFiresAtHighWater) {
  watch::WatchOptions opts = test_options("queue");
  opts.queue_high = 64;
  watch::Watcher w(opts);
  // Deliveries keep flowing so stall stays quiet; the backlog is the story.
  w.observe(make_snap(1, {{0, "land", true, 10, 0, 8}}));
  EXPECT_TRUE(w.observe(make_snap(2, {{0, "land", true, 20, 0, 80}})).empty());
  std::vector<watch::HealthEvent> fired =
      w.observe(make_snap(3, {{0, "land", true, 30, 0, 90}}));
  ASSERT_EQ(fired.size(), 1U);
  EXPECT_EQ(fired[0].rule, "queue");
  EXPECT_EQ(fired[0].severity, watch::Severity::warning);
  EXPECT_EQ(fired[0].subject, "land");
  EXPECT_DOUBLE_EQ(fired[0].value, 90.0);
  EXPECT_DOUBLE_EQ(fired[0].threshold, 64.0);
}

TEST(WatchRules, LatencyP99JudgesTheWindowedHistogram) {
  watch::WatchOptions opts = test_options("latency");
  opts.latency_p99_ns = 100'000'000;  // 100 ms
  opts.latency_min_count = 16;
  watch::Watcher w(opts);

  // All matches land in the ~268 ms bucket (log2 bucket 28) — p99 over the
  // window is that bucket's upper bound, well past the threshold.  The
  // histogram is cumulative per rank, so counts must grow between frames.
  const auto hist_at = [](std::uint64_t count) {
    minimpi::HistogramData h;
    h.count = count;
    h.sum = count * 200'000'000;
    h.buckets[28] = count;
    return h;
  };
  w.observe(make_snap(1, {{0, "atm", true, 10, 0, 0, 0, hist_at(0)}}));
  EXPECT_TRUE(
      w.observe(make_snap(2, {{0, "atm", true, 20, 0, 0, 0, hist_at(32)}}))
          .empty());
  std::vector<watch::HealthEvent> fired =
      w.observe(make_snap(3, {{0, "atm", true, 30, 0, 0, 0, hist_at(64)}}));
  ASSERT_EQ(fired.size(), 1U);
  EXPECT_EQ(fired[0].rule, "latency_p99");
  EXPECT_EQ(fired[0].severity, watch::Severity::warning);
  EXPECT_GE(fired[0].value, 1e8);

  // Below latency_min_count the percentile is not trusted: a fresh watcher
  // seeing only 8 matches in the window never judges the rule.
  watch::Watcher quiet(opts);
  quiet.observe(make_snap(1, {{0, "atm", true, 10, 0, 0, 0, hist_at(0)}}));
  quiet.observe(make_snap(2, {{0, "atm", true, 20, 0, 0, 0, hist_at(4)}}));
  EXPECT_TRUE(
      quiet.observe(make_snap(3, {{0, "atm", true, 30, 0, 0, 0, hist_at(8)}}))
          .empty());
  EXPECT_EQ(quiet.active_alerts(), 0U);
}

TEST(WatchRules, FaultBurnFiresOnceAndStaysActive) {
  watch::WatchOptions opts = test_options("faults");
  opts.fault_budget = 4;
  watch::Watcher w(opts);
  w.observe(make_snap(1, {{0, "ice", true, 10, 0, 0, 0}}));
  EXPECT_TRUE(w.observe(make_snap(2, {{0, "ice", true, 20, 0, 0, 4}})).empty());
  std::vector<watch::HealthEvent> fired =
      w.observe(make_snap(3, {{0, "ice", true, 30, 0, 0, 5}}));
  ASSERT_EQ(fired.size(), 1U);
  EXPECT_EQ(fired[0].rule, "fault_burn");
  EXPECT_EQ(fired[0].severity, watch::Severity::warning);

  // The counter is monotone: the alert stays active without re-firing.
  EXPECT_TRUE(w.observe(make_snap(4, {{0, "ice", true, 40, 0, 0, 6}})).empty());
  EXPECT_TRUE(w.observe(make_snap(5, {{0, "ice", true, 50, 0, 0, 6}})).empty());
  EXPECT_EQ(w.active_alerts(), 1U);
  std::size_t burns = 0;
  for (const watch::HealthEvent& ev : w.events()) {
    if (ev.rule == "fault_burn") ++burns;
  }
  EXPECT_EQ(burns, 1U);
}

TEST(WatchRules, MemberDownIsImmediateAndHealsOnReturn) {
  // Death is not noise: fire_after=2 must NOT delay a member_down event.
  watch::Watcher w(test_options("down"));
  w.observe(make_snap(
      1, {{0, "ocean", true, 10, 0}, {1, "ocean", true, 10, 0}}));
  std::vector<watch::HealthEvent> fired = w.observe(make_snap(
      2, {{0, "ocean", true, 20, 0}, {1, "ocean", false, 10, 0}}));
  ASSERT_EQ(fired.size(), 1U);
  EXPECT_EQ(fired[0].rule, "member_down");
  EXPECT_EQ(fired[0].severity, watch::Severity::critical);
  EXPECT_EQ(fired[0].subject, "ocean");
  EXPECT_NE(fired[0].message.find("rank 1"), std::string::npos);

  // A respawned member produces the recovery edge, also immediately.
  std::vector<watch::HealthEvent> healed = w.observe(make_snap(
      3, {{0, "ocean", true, 30, 0}, {1, "ocean", true, 12, 0}}));
  ASSERT_EQ(healed.size(), 1U);
  EXPECT_EQ(healed[0].rule, "member_down");
  EXPECT_TRUE(healed[0].cleared);
  EXPECT_EQ(w.active_alerts(), 0U);
}

TEST(WatchRules, ImbalanceFiresAndSteeringConsumesTheAlert) {
  watch::WatchOptions opts = test_options("imbalance");
  opts.imbalance_ratio = 1.8;
  watch::Watcher w(opts);

  // "ocean" is busy the whole interval (no blocking); "atm" sleeps in the
  // mailbox the whole interval but keeps receiving, so only the imbalance
  // rule speaks.  Busy shares 1.0 vs 0.0 -> ratio 2.0 over the mean.
  std::uint64_t atm_blocked = 0;
  const auto frame = [&](std::uint64_t seq) {
    atm_blocked += kSecond;
    return make_snap(seq, {{0, "ocean", true, seq * 10, 0},
                           {1, "atm", true, seq * 10, atm_blocked}});
  };
  w.observe(frame(1));
  EXPECT_FALSE(w.consume_imbalance_alert());
  EXPECT_TRUE(w.observe(frame(2)).empty());
  std::vector<watch::HealthEvent> fired = w.observe(frame(3));
  ASSERT_EQ(fired.size(), 1U);
  EXPECT_EQ(fired[0].rule, "imbalance");
  EXPECT_EQ(fired[0].subject, "ocean");
  EXPECT_NEAR(fired[0].value, 2.0, 1e-9);

  // The steering handshake: pending exactly once per firing.
  EXPECT_TRUE(w.consume_imbalance_alert());
  EXPECT_FALSE(w.consume_imbalance_alert());
}

TEST(WatchRules, StaleAndDuplicateFramesAreIgnored) {
  watch::Watcher w(test_options("stale"));
  w.observe(make_snap(5, {{0, "ocean", true, 10, 0}}));
  // A re-served or out-of-order frame must not disturb the ring.
  EXPECT_TRUE(w.observe(make_snap(5, {{0, "ocean", true, 10, 0}})).empty());
  EXPECT_TRUE(w.observe(make_snap(3, {{0, "ocean", true, 0, 0}})).empty());
  // The stream resumes where it left off: 95%-blocked frames 6 and 7 are
  // the two consecutive breaches that fire stall.
  EXPECT_TRUE(
      w.observe(make_snap(6, {{0, "ocean", true, 10, 950'000'000}})).empty());
  EXPECT_EQ(
      w.observe(make_snap(7, {{0, "ocean", true, 10, 1'900'000'000}})).size(),
      1U);
}

TEST(WatchRules, HealthEventsAppendAsJsonl) {
  watch::WatchOptions opts = test_options("jsonl");
  watch::Watcher w(opts);
  w.observe(make_snap(1, {{0, "ocean", true, 10, 0}}));
  w.observe(make_snap(2, {{0, "ocean", true, 10, 950'000'000}}));
  w.observe(make_snap(3, {{0, "ocean", true, 10, 1'900'000'000}}));

  std::ifstream in(opts.health_path());
  ASSERT_TRUE(in.is_open()) << opts.health_path();
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"kind\": \"mph_health\""), std::string::npos);
  EXPECT_NE(line.find("\"rule\": \"stall\""), std::string::npos);
  EXPECT_NE(line.find("\"subject\": \"ocean\""), std::string::npos);
  std::filesystem::remove_all(opts.dir);
}

TEST(WatchOptionsTest, ParseReadsTheMonitorStyleTokenList) {
  EXPECT_FALSE(watch::WatchOptions::parse("").enabled);
  EXPECT_FALSE(watch::WatchOptions::parse("bogus").enabled);
  EXPECT_TRUE(watch::WatchOptions::parse("1").enabled);
  EXPECT_TRUE(watch::WatchOptions::parse("on").enabled);

  const watch::WatchOptions opts = watch::WatchOptions::parse(
      "stall=90 queue=8,p99ms=250 imbalance=1.5 faults=2 fire=3 clear=4 "
      "window=6 dir=/tmp/watchdir noflight");
  EXPECT_TRUE(opts.enabled);
  EXPECT_DOUBLE_EQ(opts.stall_blocked_pct, 90.0);
  EXPECT_EQ(opts.queue_high, 8U);
  EXPECT_EQ(opts.latency_p99_ns, 250'000'000U);
  EXPECT_DOUBLE_EQ(opts.imbalance_ratio, 1.5);
  EXPECT_EQ(opts.fault_budget, 2U);
  EXPECT_EQ(opts.fire_after, 3);
  EXPECT_EQ(opts.clear_after, 4);
  EXPECT_EQ(opts.window, 6U);
  EXPECT_EQ(opts.dir, "/tmp/watchdir");
  EXPECT_FALSE(opts.flight_record);

  // Degenerate values are clamped to something the engine can run with.
  EXPECT_EQ(watch::WatchOptions::parse("fire=0").fire_after, 1);
  EXPECT_EQ(watch::WatchOptions::parse("window=1").window, 2U);
}

TEST(WatchOptionsTest, EnvironmentUnionsAndOverrides) {
  ::setenv("MINIMPI_WATCH", "stall=70,faults=3", 1);
  watch::WatchOptions base;  // disabled in code
  const watch::WatchOptions merged = base.merged_with_env();
  EXPECT_TRUE(merged.enabled);
  EXPECT_DOUBLE_EQ(merged.stall_blocked_pct, 70.0);
  EXPECT_EQ(merged.fault_budget, 3U);
  // Untouched knobs keep their defaults.
  EXPECT_EQ(merged.queue_high, watch::WatchOptions{}.queue_high);
  ::unsetenv("MINIMPI_WATCH");

  // No environment: the options pass through unchanged.
  const watch::WatchOptions same = base.merged_with_env();
  EXPECT_FALSE(same.enabled);
}
