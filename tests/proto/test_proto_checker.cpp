// Checker tests: the five shipped mode contracts verify clean, both seeded
// broken contracts are provably found with file/line provenance (exact
// report text pinned against tests/proto/golden/), and each finding class
// fires on a minimal inline contract.
#include <gtest/gtest.h>

#include <string>

#include "src/proto/checker.hpp"
#include "src/proto/contract.hpp"
#include "src/proto/parser.hpp"
#include "tests/proto/proto_test_util.hpp"

using namespace mph::proto;
using mph::proto::testing::golden;
using mph::proto::testing::shipped_contract;

namespace {

ProtoReport check_text(const std::string& text) {
  return check(parse_contract(text, "t.mphc"));
}

}  // namespace

TEST(ProtoChecker, AllShippedModeContractsAreClean) {
  for (const char* mode : {"scse", "scme", "mcse", "mcme", "mime"}) {
    const Contract c = shipped_contract(std::string(mode) + ".mphc");
    const ProtoReport report = check(c);
    EXPECT_TRUE(report.clean()) << mode << ":\n" << report.to_string();
  }
}

TEST(ProtoChecker, SeededWaitCycleFoundGolden) {
  const ProtoReport report = check(shipped_contract("broken_wait_cycle.mphc"));
  ASSERT_EQ(report.deadlocks.size(), 1u) << report.to_string();
  EXPECT_TRUE(report.orphan_sends.empty());
  EXPECT_TRUE(report.type_mismatches.empty());
  EXPECT_EQ(report.to_string(), golden("broken_wait_cycle.txt"));
}

TEST(ProtoChecker, SeededTypeMismatchFoundGolden) {
  const ProtoReport report =
      check(shipped_contract("broken_type_mismatch.mphc"));
  ASSERT_EQ(report.type_mismatches.size(), 1u) << report.to_string();
  EXPECT_TRUE(report.deadlocks.empty());
  EXPECT_EQ(report.to_string(), golden("broken_type_mismatch.txt"));
}

TEST(ProtoChecker, OrphanSendAndUnmatchedRecv) {
  const ProtoReport orphan = check_text(
      "contract t\ncomponent a ranks 1\ncomponent b ranks 1\n"
      "proto a { send b[0] tag 1 type int }\nproto b { }\n");
  ASSERT_EQ(orphan.orphan_sends.size(), 1u) << orphan.to_string();
  EXPECT_NE(orphan.orphan_sends[0].find("a[0] send->b[0] (tag=1)"),
            std::string::npos);
  EXPECT_NE(orphan.orphan_sends[0].find("t.mphc:4"), std::string::npos);

  const ProtoReport unmatched = check_text(
      "contract t\ncomponent a ranks 1\ncomponent b ranks 1\n"
      "proto a { }\nproto b { recv a[0] tag 1 type int }\n");
  ASSERT_EQ(unmatched.unmatched_recvs.size(), 1u) << unmatched.to_string();
  EXPECT_NE(unmatched.unmatched_recvs[0].find("t.mphc:5"), std::string::npos);
}

TEST(ProtoChecker, TagDisagreementLeavesBothSidesUnhappy) {
  // Same pair, but the tag differs: the send is orphaned AND the receive
  // is unmatched — tags are part of the channel, not a fuzzy match.
  const ProtoReport report = check_text(
      "contract t\ncomponent a ranks 1\ncomponent b ranks 1\n"
      "proto a { send b[0] tag 1 type int }\n"
      "proto b { recv a[0] tag 2 type int }\n");
  EXPECT_EQ(report.orphan_sends.size(), 1u) << report.to_string();
  EXPECT_EQ(report.unmatched_recvs.size(), 1u);
}

TEST(ProtoChecker, CountMismatchIsATypeFinding) {
  const ProtoReport report = check_text(
      "contract t\ncomponent a ranks 1\ncomponent b ranks 1\n"
      "proto a { send b[0] tag 1 type int count 4 }\n"
      "proto b { recv a[0] tag 1 type int count 8 }\n");
  ASSERT_EQ(report.type_mismatches.size(), 1u) << report.to_string();
}

TEST(ProtoChecker, BytesOnOneSideMatchTypedOtherSideWhenTotalAgrees) {
  EXPECT_TRUE(check_text(
                  "contract t\ncomponent a ranks 1\ncomponent b ranks 1\n"
                  "proto a { send b[0] tag 1 bytes 16 }\n"
                  "proto b { recv a[0] tag 1 type int count 4 }\n")
                  .clean());
  EXPECT_FALSE(check_text(
                   "contract t\ncomponent a ranks 1\ncomponent b ranks 1\n"
                   "proto a { send b[0] tag 1 bytes 12 }\n"
                   "proto b { recv a[0] tag 1 type int count 4 }\n")
                   .clean());
}

TEST(ProtoChecker, CollectiveStepCountDisagreement) {
  const ProtoReport report = check_text(
      "contract t\ncomponent a ranks 2\n"
      "proto a {\n  on 0 { barrier world\n  barrier world }\n"
      "  on 1 { barrier world }\n}\n");
  ASSERT_FALSE(report.collective_errors.empty()) << report.to_string();
  EXPECT_NE(report.collective_errors[0].find("number of collective steps"),
            std::string::npos);
}

TEST(ProtoChecker, CollectiveKindAndRootDisagreement) {
  const ProtoReport kind = check_text(
      "contract t\ncomponent a ranks 2\n"
      "proto a {\n  on 0 { barrier world }\n"
      "  on 1 { allreduce world type int }\n}\n");
  EXPECT_FALSE(kind.collective_errors.empty()) << kind.to_string();

  const ProtoReport root = check_text(
      "contract t\ncomponent a ranks 2\n"
      "proto a {\n  on 0 { bcast world root a[0] type int }\n"
      "  on 1 { bcast world root a[1] type int }\n}\n");
  EXPECT_FALSE(root.collective_errors.empty()) << root.to_string();
}

TEST(ProtoChecker, EveryChoiceBranchIsChecked) {
  // Branch one is fine; branch two orphans its send.  The checker must
  // enumerate both component-wide assignments and surface the orphan.
  const ProtoReport report = check_text(
      "contract t\ncomponent a ranks 1\ncomponent b ranks 1\n"
      "proto a {\n  either {\n    send b[0] tag 1 type int\n"
      "  } or {\n    send b[0] tag 2 type int\n  }\n}\n"
      "proto b { recv a[0] tag 1 type int }\n");
  EXPECT_FALSE(report.clean());
  bool mentions_tag2 = false;
  for (const std::string& f : report.orphan_sends) {
    if (f.find("tag=2") != std::string::npos) mentions_tag2 = true;
  }
  EXPECT_TRUE(mentions_tag2) << report.to_string();
}

TEST(ProtoChecker, LoopsPairUpAcrossRanks) {
  EXPECT_TRUE(check_text(
                  "contract t\ncomponent a ranks 1\ncomponent b ranks 1\n"
                  "proto a { loop 5 { send b[0] tag 1 type int } }\n"
                  "proto b { loop 5 { recv a[0] tag 1 type int } }\n")
                  .clean());
  // Iteration-count skew leaves exactly one side dangling.
  const ProtoReport skew = check_text(
      "contract t\ncomponent a ranks 1\ncomponent b ranks 1\n"
      "proto a { loop 5 { send b[0] tag 1 type int } }\n"
      "proto b { loop 4 { recv a[0] tag 1 type int } }\n");
  EXPECT_EQ(skew.orphan_sends.size(), 1u) << skew.to_string();
}

TEST(ProtoChecker, SelfRendezvousDeadlockAcrossComponents) {
  // Two components, each receives from the other before sending — the
  // canonical cross-component wait cycle.
  const ProtoReport report = check_text(
      "contract t\ncomponent a ranks 1\ncomponent b ranks 1\n"
      "proto a {\n  recv b[0] tag 1 type int\n  send b[0] tag 2 type int\n}\n"
      "proto b {\n  recv a[0] tag 2 type int\n  send a[0] tag 1 type int\n}\n");
  ASSERT_EQ(report.deadlocks.size(), 1u) << report.to_string();
  EXPECT_NE(report.deadlocks[0].find("wait-for cycle across 2 rank(s)"),
            std::string::npos);
}

TEST(ProtoChecker, BufferedSendsDoNotDeadlock) {
  // Both sides send first, then receive — blocking-send systems deadlock
  // here, but minimpi sends are buffered, so the contract is clean.
  EXPECT_TRUE(check_text(
                  "contract t\ncomponent a ranks 1\ncomponent b ranks 1\n"
                  "proto a {\n  send b[0] tag 1 type int\n"
                  "  recv b[0] tag 2 type int\n}\n"
                  "proto b {\n  send a[0] tag 2 type int\n"
                  "  recv a[0] tag 1 type int\n}\n")
                  .clean());
}

TEST(ProtoChecker, RunawayLoopHitsTheOpCapAsStructural) {
  ProtoCheckOptions options;
  options.max_ops_per_rank = 10;
  const ProtoReport report =
      check(parse_contract("contract t\ncomponent a ranks 2\n"
                           "proto a { loop 1000 { barrier world } }\n",
                           "t.mphc"),
            options);
  ASSERT_FALSE(report.structural.empty());
}

TEST(ProtoChecker, DotDumpNamesEveryProjectedRank) {
  const std::string dot = dump_causality_dot(shipped_contract("scme.mphc"));
  EXPECT_NE(dot.find("digraph causality"), std::string::npos);
  EXPECT_NE(dot.find("atmosphere[0]"), std::string::npos);
  EXPECT_NE(dot.find("coupler[0]"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // match edges
}
