// Trace conformance + contract inference, end to end: record a real mode
// scenario in-process with tracing on, then check the recorded trace
// against the shipped contract (conform) and reconstruct a contract from
// it (infer) that conforms to its own source trace.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "src/minimpi/launcher.hpp"
#include "src/proto/checker.hpp"
#include "src/proto/conform.hpp"
#include "src/proto/contract.hpp"
#include "src/proto/infer.hpp"
#include "src/proto/parser.hpp"
#include "tests/proto/proto_test_util.hpp"
#include "tools/mode_scenarios.hpp"

using namespace mph::proto;
using mph::proto::testing::shipped_contract;

namespace {

/// Run the named mode scenario with tracing on; return the Chrome JSON.
std::string record_mode(const std::string& mode, int ranks = 0) {
  const std::optional<mph_tools::Scenario> scenario =
      mph_tools::make_mode_scenario(mode, ranks);
  if (!scenario.has_value()) throw std::runtime_error("unknown mode " + mode);
  minimpi::JobOptions options;
  options.recv_timeout = std::chrono::seconds(30);
  options.trace.enabled = true;
  const minimpi::JobReport report =
      minimpi::run_mpmd(mph_tools::make_exec_specs(*scenario), options);
  if (!report.ok) throw std::runtime_error("scenario failed: " + mode);
  if (!report.trace.has_value()) throw std::runtime_error("no trace");
  return report.trace->to_chrome_json();
}

}  // namespace

TEST(ProtoConform, EveryModeTraceConformsToItsShippedContract) {
  for (const char* mode : {"scse", "scme", "mcse", "mcme", "mime"}) {
    const std::string json = record_mode(mode);
    const ObservedTrace trace = read_trace_ops(json);
    const Contract contract = shipped_contract(std::string(mode) + ".mphc");
    const std::vector<std::string> findings = conform(contract, trace);
    EXPECT_TRUE(findings.empty())
        << mode << ": " << (findings.empty() ? "" : findings.front());
  }
}

TEST(ProtoConform, TraceAgainstTheWrongContractIsRejected) {
  const ObservedTrace trace = read_trace_ops(record_mode("scme"));
  const std::vector<std::string> findings =
      conform(shipped_contract("mcme.mphc"), trace);
  ASSERT_FALSE(findings.empty());
  EXPECT_NE(findings.front().find("belongs to no contract component"),
            std::string::npos);
}

TEST(ProtoConform, RankCountMismatchReported) {
  // scse.mphc declares solo with 3 ranks; record the scenario at 5.
  const ObservedTrace trace = read_trace_ops(record_mode("scse", 5));
  const std::vector<std::string> findings =
      conform(shipped_contract("scse.mphc"), trace);
  ASSERT_FALSE(findings.empty());
  bool mentions_count = false;
  for (const std::string& f : findings) {
    if (f.find("declares 3 rank(s)") != std::string::npos) {
      mentions_count = true;
    }
  }
  EXPECT_TRUE(mentions_count) << findings.front();
}

TEST(ProtoConform, ViolationNamesTheEventAndTheExpectedOp) {
  // A synthetic single-rank trace whose one op is a send the contract
  // never asks for.  Minimal Chrome JSON: one thread_name metadata record
  // plus one p2p span.
  const std::string json = R"({"traceEvents":[
    {"name":"thread_name","ph":"M","pid":0,"tid":0,
     "args":{"name":"a:0"}},
    {"name":"thread_name","ph":"M","pid":0,"tid":1,
     "args":{"name":"b:0"}},
    {"name":"send","cat":"p2p","ph":"X","pid":0,"tid":0,"ts":1.0,
     "dur":0.5,"args":{"peer":1,"context":0,"tag":9,"bytes":4}}
  ],"mph":{}})";
  const ObservedTrace trace = read_trace_ops(json);
  const Contract contract = parse_contract(
      "contract t\ncomponent a ranks 1\ncomponent b ranks 1\n"
      "proto a { }\nproto b { }\n", "t.mphc");
  const std::vector<std::string> findings = conform(contract, trace);
  ASSERT_FALSE(findings.empty());
  EXPECT_NE(findings.front().find("a[0]"), std::string::npos);
  EXPECT_NE(findings.front().find("violates the contract"),
            std::string::npos);
}

TEST(ProtoInfer, InferredContractParsesChecksCleanAndConforms) {
  const std::string json = record_mode("scme");
  const ObservedTrace trace = read_trace_ops(json);
  const std::string text = infer_contract_text(trace, "inferred_scme");

  // The inferred text must be valid contract grammar…
  const Contract contract = parse_contract(text, "inferred.mphc");
  EXPECT_EQ(contract.name, "inferred_scme");
  ASSERT_NE(contract.find_component("coupler"), nullptr);

  // …statically consistent…
  const ProtoReport report = check(contract);
  EXPECT_TRUE(report.clean()) << report.to_string() << "\n" << text;

  // …and it must accept the very trace it was inferred from.
  const std::vector<std::string> findings = conform(contract, trace);
  EXPECT_TRUE(findings.empty())
      << (findings.empty() ? "" : findings.front()) << "\n" << text;
}

TEST(ProtoInfer, MergesSymmetricSendersIntoRangedRecvs) {
  // scse at 5 ranks: ranks 1..4 all send to rank 0.  Inference should
  // reconstruct the ranged receive and the on-blocks, not 4 separate ops.
  const ObservedTrace trace = read_trace_ops(record_mode("scse", 5));
  const std::string text = infer_contract_text(trace, "inferred_scse");
  EXPECT_NE(text.find("recv solo[1..4]"), std::string::npos) << text;
  EXPECT_NE(text.find("on 1..4"), std::string::npos) << text;
}
