// Shared helpers for mph_proto tests: load shipped contracts and golden
// expectation files by basename, with origins pinned to the basename so
// golden texts stay machine-independent.
#pragma once

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "src/proto/contract.hpp"
#include "src/proto/parser.hpp"

#ifndef MPH_CONTRACT_DIR
#error "MPH_CONTRACT_DIR must point at examples/contracts"
#endif
#ifndef MPH_PROTO_GOLDEN_DIR
#error "MPH_PROTO_GOLDEN_DIR must point at tests/proto/golden"
#endif

namespace mph::proto::testing {

inline std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Parse a shipped contract with its origin pinned to the bare basename,
/// so findings say "at scse.mphc:7" regardless of the checkout path.
inline Contract shipped_contract(const std::string& basename) {
  const std::string text =
      read_file(std::string(MPH_CONTRACT_DIR) + "/" + basename);
  return parse_contract(text, basename);
}

inline std::string golden(const std::string& basename) {
  return read_file(std::string(MPH_PROTO_GOLDEN_DIR) + "/" + basename);
}

}  // namespace mph::proto::testing
