// Parser tests: grammar round-trips, position-accurate diagnostics (exact
// text pinned against tests/proto/golden/parser_errors.txt), forward-
// reference validation, and contract hashing.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/proto/contract.hpp"
#include "src/proto/parser.hpp"
#include "tests/proto/proto_test_util.hpp"

using namespace mph::proto;
using mph::proto::testing::golden;

namespace {

const std::string kRich = R"(contract rich
component atm ranks 4
component cpl ranks 1

proto atm {
  loop 3 {
    send cpl[0] tag 7 type double count 16
  }
  either {
    recv cpl[0] tag 8 type int
  } or {
    recv any tag 9 bytes 12
  }
  barrier world
}

proto cpl {
  loop 3 {
    gather {
      recv atm[*] tag 7 type double count 16
    }
  }
  on 0 {
    either {
      send atm[0] tag 8 type int
      send atm[1] tag 8 type int
      send atm[2] tag 8 type int
      send atm[3] tag 8 type int
    } or {
      send atm[0] tag 9 bytes 12
      send atm[1] tag 9 bytes 12
      send atm[2] tag 9 bytes 12
      send atm[3] tag 9 bytes 12
    }
  }
  barrier world
}
)";

}  // namespace

TEST(ProtoParser, RichContractRoundTripsThroughText) {
  const Contract first = parse_contract(kRich, "rich.mphc");
  const std::string text = first.to_text();
  const Contract second = parse_contract(text, "rich.mphc");
  EXPECT_EQ(text, second.to_text());
  EXPECT_EQ(first.name, "rich");
  ASSERT_EQ(first.components.size(), 2u);
  EXPECT_EQ(first.components[0].name, "atm");
  EXPECT_EQ(first.components[0].ranks, 4);
  ASSERT_NE(first.find_proto("cpl"), nullptr);
}

TEST(ProtoParser, SourceLocationsPointAtTheOperation) {
  const Contract c = parse_contract(kRich, "rich.mphc");
  const ProtoDecl* atm = c.find_proto("atm");
  ASSERT_NE(atm, nullptr);
  // First item is the loop on line 6; its body op sits on line 7.
  ASSERT_FALSE(atm->body.items.empty());
  EXPECT_EQ(atm->body.items[0].loc.line, 6);
  ASSERT_FALSE(atm->body.items[0].branches.empty());
  EXPECT_EQ(atm->body.items[0].branches[0].items[0].op.loc.line, 7);
}

TEST(ProtoParser, BuiltinTypeSizesMatchMinimpiWidths) {
  EXPECT_EQ(builtin_type_size("char"), 1u);
  EXPECT_EQ(builtin_type_size("int"), 4u);
  EXPECT_EQ(builtin_type_size("float"), 4u);
  EXPECT_EQ(builtin_type_size("double"), 8u);
  EXPECT_EQ(builtin_type_size("i64"), 8u);
  EXPECT_EQ(builtin_type_size("u16"), 2u);
  EXPECT_EQ(builtin_type_size("widget"), 0u);
}

TEST(ProtoParser, DiagnosticsMatchGoldenFile) {
  // Each probe yields one ContractParseError; the golden file pins the
  // exact message including "origin:line:column".  Every probe shares the
  // same 4-line skeleton so positions stay comparable.
  const std::vector<std::string> probes = {
      "send solo tag 7 type int",
      "recv solo[*] tag x type int",
      "send solo[0] tag 7 type widget",
      "flarp solo[0]",
      "send solo[5] tag 7 type int",
      "either { barrier world }",
  };
  std::string got;
  for (const std::string& probe : probes) {
    const std::string text = "contract t\ncomponent solo ranks 2\n"
                             "proto solo {\n  " + probe + "\n}\n";
    try {
      (void)parse_contract(text, "probe.mphc");
      ADD_FAILURE() << "probe parsed unexpectedly: " << probe;
    } catch (const ContractParseError& e) {
      got += e.what();
      got += '\n';
    }
  }
  EXPECT_EQ(got, golden("parser_errors.txt"));
}

TEST(ProtoParser, ValidatesForwardReferences) {
  // Peer component declared after the proto that uses it is fine…
  EXPECT_NO_THROW(parse_contract(
      "contract t\nproto a { send b[0] tag 1 type int }\n"
      "component a ranks 1\ncomponent b ranks 1\n"
      "proto b { recv a[0] tag 1 type int }\n"));
  // …but a peer that never appears is not.
  EXPECT_THROW(parse_contract("contract t\ncomponent a ranks 1\n"
                              "proto a { send ghost[0] tag 1 type int }\n"),
               ContractParseError);
  // A proto for an undeclared component is rejected too.
  EXPECT_THROW(parse_contract("contract t\ncomponent a ranks 1\n"
                              "proto ghost { barrier world }\n"),
               ContractParseError);
}

TEST(ProtoParser, RejectsDuplicatesAndBadStructure) {
  EXPECT_THROW(parse_contract("contract t\ncomponent a ranks 1\n"
                              "component a ranks 2\n"),
               ContractParseError);
  EXPECT_THROW(parse_contract("contract t\ncomponent a ranks 1\n"
                              "proto a { barrier world }\n"
                              "proto a { barrier world }\n"),
               ContractParseError);
  // gather admits only receives.
  EXPECT_THROW(parse_contract("contract t\ncomponent a ranks 2\n"
                              "proto a { gather { barrier world } }\n"),
               ContractParseError);
  // send must name an exact destination rank, not a range.
  EXPECT_THROW(parse_contract("contract t\ncomponent a ranks 2\n"
                              "proto a { send a[0..1] tag 1 type int }\n"),
               ContractParseError);
}

TEST(ProtoParser, HashIsStableAndTextSensitive) {
  const std::string a = "contract t\ncomponent a ranks 1\n";
  const std::string b = "contract t\ncomponent a ranks 2\n";
  EXPECT_EQ(contract_hash(a), contract_hash(a));
  EXPECT_NE(contract_hash(a), contract_hash(b));
  const std::string hex = contract_hash_hex(a);
  EXPECT_EQ(hex.size(), 8u);
  EXPECT_EQ(hex.find_first_not_of("0123456789abcdef"), std::string::npos);
}

TEST(ProtoParser, CommentsAndBlankLinesIgnored) {
  const Contract c = parse_contract(
      "# header\ncontract t  # trailing\n\ncomponent a ranks 1\n"
      "proto a {\n  # nothing yet\n  barrier world\n}\n");
  ASSERT_NE(c.find_proto("a"), nullptr);
  EXPECT_EQ(c.find_proto("a")->body.items.size(), 1u);
}
