// Contract pinning through the handshake: HandshakeOptions::contract rides
// in the allgathered signature as "|contract=<8hex>", so two executables
// built against different contract versions fail at registration with a
// SetupError — before any payload traffic can go wrong at runtime.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/minimpi/launcher.hpp"
#include "src/mph/handshake.hpp"
#include "src/mph/layout.hpp"
#include "src/mph/mph.hpp"
#include "src/proto/contract.hpp"

using namespace mph;
using minimpi::Comm;

namespace {

const std::string kRegistry = "BEGIN\nalpha\nbeta\nEND\n";

/// Run alpha+beta (1 rank each), each with its own HandshakeOptions.
minimpi::JobReport run_pinned(const std::string& pin_alpha,
                              const std::string& pin_beta) {
  const auto body = [](const std::string& name, const std::string& pin) {
    return [name, pin](const Comm& world, const minimpi::ExecEnv&) {
      HandshakeOptions options;
      options.contract = pin;
      Mph handle = Mph::components_setup(
          world, RegistrySource::from_text(kRegistry), {name}, options);
      (void)handle.global_proc_id();
    };
  };
  minimpi::JobOptions job;
  job.recv_timeout = std::chrono::seconds(30);
  return minimpi::run_mpmd({{"alpha", 1, body("alpha", pin_alpha), {}},
                            {"beta", 1, body("beta", pin_beta), {}}},
                           job);
}

}  // namespace

TEST(ContractPin, PinnedSignatureCarriesTheHash) {
  LocalDeclaration decl;
  decl.names = {"alpha"};
  HandshakeOptions options;
  const std::string bare = pinned_signature(decl, options);
  EXPECT_EQ(bare, declaration_signature(decl));
  EXPECT_EQ(bare.find('|'), std::string::npos);
  EXPECT_EQ(signature_contract_pin(bare), "");

  options.contract = "deadbeef";
  const std::string pinned = pinned_signature(decl, options);
  EXPECT_EQ(pinned, bare + "|contract=deadbeef");
  EXPECT_EQ(signature_contract_pin(pinned), "deadbeef");
}

TEST(ContractPin, ParseSignatureIgnoresThePin) {
  LocalDeclaration decl;
  decl.names = {"alpha", "beta"};
  HandshakeOptions options;
  options.contract = "0badc0de";
  const auto bare = parse_signature(declaration_signature(decl));
  const auto pinned = parse_signature(pinned_signature(decl, options));
  EXPECT_EQ(bare.names, pinned.names);
  EXPECT_EQ(bare.is_instance, pinned.is_instance);
}

TEST(ContractPin, MatchingPinsHandshakeFine) {
  const std::string pin = proto::contract_hash_hex("contract v1\n");
  const minimpi::JobReport report = run_pinned(pin, pin);
  EXPECT_TRUE(report.ok) << report.first_error();
}

TEST(ContractPin, UnpinnedExecutablesCoexistWithPinnedOnes) {
  // Gradual adoption: one side pins, the other predates contracts.
  const minimpi::JobReport report =
      run_pinned(proto::contract_hash_hex("contract v1\n"), "");
  EXPECT_TRUE(report.ok) << report.first_error();
}

TEST(ContractPin, MismatchedPinsFailAtRegistration) {
  const minimpi::JobReport report =
      run_pinned(proto::contract_hash_hex("contract v1\n"),
                 proto::contract_hash_hex("contract v2\n"));
  ASSERT_FALSE(report.ok);
  EXPECT_NE(report.first_error().find("contract version mismatch"),
            std::string::npos)
      << report.first_error();
  EXPECT_NE(report.first_error().find("rebuild the executables"),
            std::string::npos);
}

TEST(ContractPin, HashHexIsWhatTheCheckerToolWouldPin)  {
  // The pin is the CRC32 of the contract *text*: whitespace-identical
  // files agree, any edit disagrees.
  const std::string a = "contract t\ncomponent a ranks 1\n";
  EXPECT_EQ(proto::contract_hash_hex(a), proto::contract_hash_hex(a));
  EXPECT_NE(proto::contract_hash_hex(a),
            proto::contract_hash_hex(a + "# tweak\n"));
}
