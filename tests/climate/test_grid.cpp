// Grid2D geometry and RowBlockField2D parallel field operations.
#include "src/climate/grid.hpp"

#include <gtest/gtest.h>

#include "src/minimpi/launcher.hpp"
#include "tests/mph/mph_test_util.hpp"

using namespace mph::climate;
using minimpi::Comm;

namespace {
void run_ok(int nprocs, std::function<void(const Comm&)> entry) {
  const minimpi::JobReport report = minimpi::run_spmd(
      nprocs,
      [&](const Comm& world, const minimpi::ExecEnv&) { entry(world); },
      mph::testing::test_job_options());
  ASSERT_TRUE(report.ok) << report.abort_reason << " / "
                         << report.first_error();
}
}  // namespace

TEST(Grid2D, GeometryBasics) {
  const Grid2D grid(8, 4);
  EXPECT_EQ(grid.size(), 32);
  // Latitudes symmetric about the equator.
  EXPECT_NEAR(grid.latitude(0), -grid.latitude(3), 1e-12);
  EXPECT_NEAR(grid.latitude(1), -grid.latitude(2), 1e-12);
  // Longitudes span [0, 2π).
  EXPECT_GT(grid.longitude(0), 0.0);
  EXPECT_LT(grid.longitude(7), 2 * kPi);
  // Equatorial cells are the largest.
  EXPECT_GT(grid.cell_area(1), grid.cell_area(0));
  // Total area ≈ 4π; coarse 4-band midpoint quadrature overshoots ~2.6%.
  EXPECT_NEAR(grid.total_area(), 4 * kPi, 0.35);
  // A fine grid converges to 4π.
  const Grid2D fine(16, 64);
  EXPECT_NEAR(fine.total_area(), 4 * kPi, 0.002);
}

TEST(Grid2D, InvalidDimensions) {
  EXPECT_THROW(Grid2D(0, 4), std::invalid_argument);
  EXPECT_THROW(Grid2D(4, -1), std::invalid_argument);
}

TEST(RowBlockField2D, RowsPartitionAcrossRanks) {
  run_ok(3, [](const Comm& world) {
    const Grid2D grid(6, 7);
    const RowBlockField2D field(grid, world);
    // 7 rows over 3 ranks: 3, 2, 2.
    const int expect_rows = world.rank() == 0 ? 3 : 2;
    EXPECT_EQ(field.local_rows(), expect_rows);
    const int expect_offset = world.rank() == 0 ? 0 : 3 + 2 * (world.rank() - 1);
    EXPECT_EQ(field.row_offset(), expect_offset);
  });
}

TEST(RowBlockField2D, TooManyRanksRejected) {
  run_ok(4, [](const Comm& world) {
    const Grid2D grid(4, 2);
    EXPECT_THROW(RowBlockField2D(grid, world), std::invalid_argument);
  });
}

TEST(RowBlockField2D, HaloExchangeMovesNeighbourRows) {
  run_ok(3, [](const Comm& world) {
    const Grid2D grid(4, 6);
    RowBlockField2D field(grid, world);
    // Value encodes the global row.
    field.fill([](int, int j) { return 100.0 * j; });
    field.halo_exchange(world, 5);
    const int lo = field.row_offset();
    const int hi = lo + field.local_rows() - 1;
    for (int i = 0; i < 4; ++i) {
      // South halo: global row lo-1 (or copy of row lo at the pole).
      const double expect_south = lo == 0 ? 100.0 * lo : 100.0 * (lo - 1);
      EXPECT_DOUBLE_EQ(field.halo(-1, i), expect_south);
      // North halo: global row hi+1 (or copy of row hi at the pole).
      const double expect_north = hi == 5 ? 100.0 * hi : 100.0 * (hi + 1);
      EXPECT_DOUBLE_EQ(field.halo(field.local_rows(), i), expect_north);
    }
  });
}

TEST(RowBlockField2D, LaplacianOfConstantIsZero) {
  run_ok(2, [](const Comm& world) {
    const Grid2D grid(5, 4);
    RowBlockField2D field(grid, world);
    field.fill([](int, int) { return 7.0; });
    field.halo_exchange(world, 1);
    for (int r = 0; r < field.local_rows(); ++r) {
      for (int i = 0; i < 5; ++i) {
        EXPECT_NEAR(field.laplacian(r, i), 0.0, 1e-12);
      }
    }
  });
}

TEST(RowBlockField2D, LaplacianPeriodicInLongitude) {
  run_ok(1, [](const Comm& world) {
    const Grid2D grid(4, 3);
    RowBlockField2D field(grid, world);
    // Spike at column 0 of row 1.
    field.fill([](int i, int j) { return (i == 0 && j == 1) ? 1.0 : 0.0; });
    field.halo_exchange(world, 1);
    // Column 3 (west neighbour of 0 through periodicity) sees the spike.
    EXPECT_DOUBLE_EQ(field.laplacian(1, 3), 1.0);
    EXPECT_DOUBLE_EQ(field.laplacian(1, 1), 1.0);
    EXPECT_DOUBLE_EQ(field.laplacian(1, 0), -4.0);
  });
}

TEST(RowBlockField2D, GatherAssemblesGlobalField) {
  run_ok(3, [](const Comm& world) {
    const Grid2D grid(3, 5);
    RowBlockField2D field(grid, world);
    field.fill([&grid](int i, int j) {
      return static_cast<double>(grid.index(i, j));
    });
    const std::vector<double> full = field.gather(world, 0);
    if (world.rank() == 0) {
      ASSERT_EQ(full.size(), 15u);
      for (std::size_t k = 0; k < 15; ++k) {
        EXPECT_DOUBLE_EQ(full[k], static_cast<double>(k));
      }
    } else {
      EXPECT_TRUE(full.empty());
    }
  });
}

TEST(RowBlockField2D, ScatterDistributesGlobalField) {
  run_ok(2, [](const Comm& world) {
    const Grid2D grid(2, 4);
    RowBlockField2D field(grid, world);
    std::vector<double> full;
    if (world.rank() == 0) {
      full.resize(8);
      for (std::size_t k = 0; k < 8; ++k) full[k] = 10.0 * static_cast<double>(k);
    }
    field.scatter(world, full, 0);
    for (int r = 0; r < field.local_rows(); ++r) {
      for (int i = 0; i < 2; ++i) {
        const int g = (field.row_offset() + r) * 2 + i;
        EXPECT_DOUBLE_EQ(field.at(r, i), 10.0 * g);
      }
    }
  });
}

TEST(RowBlockField2D, GatherScatterRoundTrip) {
  run_ok(3, [](const Comm& world) {
    const Grid2D grid(4, 6);
    RowBlockField2D field(grid, world);
    field.fill([](int i, int j) { return std::sin(i + 2.0 * j); });
    const std::vector<double> full = field.gather(world, 0);
    RowBlockField2D copy(grid, world);
    copy.scatter(world, full, 0);
    for (int r = 0; r < field.local_rows(); ++r) {
      for (int i = 0; i < 4; ++i) {
        EXPECT_DOUBLE_EQ(copy.at(r, i), field.at(r, i));
      }
    }
  });
}

TEST(RowBlockField2D, GlobalMeanIsAreaWeighted) {
  run_ok(2, [](const Comm& world) {
    const Grid2D grid(6, 4);
    RowBlockField2D field(grid, world);
    field.fill([](int, int) { return 3.5; });
    EXPECT_NEAR(field.global_mean(grid, world), 3.5, 1e-12);
    // A field loaded at the poles must mean less than one at the equator.
    RowBlockField2D polar(grid, world);
    polar.fill([](int, int j) { return (j == 0 || j == 3) ? 1.0 : 0.0; });
    RowBlockField2D tropical(grid, world);
    tropical.fill([](int, int j) { return (j == 1 || j == 2) ? 1.0 : 0.0; });
    EXPECT_LT(polar.global_mean(grid, world),
              tropical.global_mean(grid, world));
  });
}
