// End-to-end integration: the full coupled climate system runs under SCME,
// MCSE, and MCME wiring and produces bit-identical diagnostics — the
// paper's central promise that the integration mode is a deployment choice
// (§2), not a code change.  Plus the MIME ensemble with on-the-fly
// statistics and dynamic control (§2.5).
#include <gtest/gtest.h>

#include <mutex>

#include "src/climate/scenario.hpp"
#include "tests/mph/mph_test_util.hpp"

using namespace mph;
using namespace mph::climate;
using namespace mph::testing;
using minimpi::Comm;

namespace {

ClimateConfig test_config() {
  ClimateConfig cfg;
  cfg.atm_nlon = 8;
  cfg.atm_nlat = 6;
  cfg.ocn_nlon = 12;
  cfg.ocn_nlat = 8;
  cfg.steps_per_interval = 2;
  cfg.intervals = 4;
  return cfg;
}

/// Runs one wiring of the coupled system and returns the coupler's
/// mean-SST series (the cross-component diagnostic).
struct CoupledOutcome {
  std::vector<double> mean_sst;
  std::vector<double> mean_t_atm;
  std::vector<double> mean_icefrac;
};

CoupledOutcome run_scme(const ClimateConfig& cfg) {
  CoupledOutcome outcome;
  std::mutex mutex;
  auto body = [&](Mph& h, const Comm&) {
    const ComponentResult r = run_coupled_component(h, cfg);
    if (r.component == "coupler" && h.local_proc_id() == 0) {
      const std::lock_guard<std::mutex> lock(mutex);
      outcome.mean_sst = r.coupler.mean_sst;
      outcome.mean_t_atm = r.coupler.mean_t_atm;
      outcome.mean_icefrac = r.coupler.mean_icefrac;
    }
  };
  run_mph_ok("BEGIN\natmosphere\nocean\nland\nice\ncoupler\nEND\n",
             {TestExec{{"atmosphere"}, "", 2, body},
              TestExec{{"ocean"}, "", 2, body},
              TestExec{{"land"}, "", 1, body},
              TestExec{{"ice"}, "", 1, body},
              TestExec{{"coupler"}, "", 1, body}});
  return outcome;
}

CoupledOutcome run_mcse(const ClimateConfig& cfg) {
  // Single executable, 7 ranks, master-program dispatch (paper §4.2).
  const std::string registry = R"(BEGIN
Multi_Component_Begin
atmosphere 0 1
ocean 2 3
land 4 4
ice 5 5
coupler 6 6
Multi_Component_End
END
)";
  CoupledOutcome outcome;
  std::mutex mutex;
  auto master = [&](Mph& h, const Comm&) {
    // The paper's master pattern: exactly one branch fires per rank.
    for (const char* role :
         {"atmosphere", "ocean", "land", "ice", "coupler"}) {
      if (h.proc_in_component(role)) {
        const ComponentResult r = run_coupled_component(h, cfg);
        if (r.component == "coupler" && h.local_proc_id() == 0) {
          const std::lock_guard<std::mutex> lock(mutex);
          outcome.mean_sst = r.coupler.mean_sst;
          outcome.mean_t_atm = r.coupler.mean_t_atm;
          outcome.mean_icefrac = r.coupler.mean_icefrac;
        }
      }
    }
  };
  run_mph_ok(registry,
             {TestExec{{"atmosphere", "ocean", "land", "ice", "coupler"},
                       "", 7, master}});
  return outcome;
}

CoupledOutcome run_mcme(const ClimateConfig& cfg) {
  // Three executables: [atmosphere+land], [ocean+ice], [coupler].
  const std::string registry = R"(BEGIN
Multi_Component_Begin
atmosphere 0 1
land 2 2
Multi_Component_End
Multi_Component_Begin
ocean 0 1
ice 2 2
Multi_Component_End
coupler
END
)";
  CoupledOutcome outcome;
  std::mutex mutex;
  auto body = [&](Mph& h, const Comm&) {
    const ComponentResult r = run_coupled_component(h, cfg);
    if (r.component == "coupler" && h.local_proc_id() == 0) {
      const std::lock_guard<std::mutex> lock(mutex);
      outcome.mean_sst = r.coupler.mean_sst;
      outcome.mean_t_atm = r.coupler.mean_t_atm;
      outcome.mean_icefrac = r.coupler.mean_icefrac;
    }
  };
  run_mph_ok(registry,
             {TestExec{{"atmosphere", "land"}, "", 3, body},
              TestExec{{"ocean", "ice"}, "", 3, body},
              TestExec{{"coupler"}, "", 1, body}});
  return outcome;
}

}  // namespace

TEST(CoupledIntegration, SCMEProducesPhysicalDiagnostics) {
  const CoupledOutcome out = run_scme(test_config());
  ASSERT_EQ(out.mean_sst.size(), 4u);
  // The coupled system stays bounded and the atmosphere is warmer than the
  // initially cold ocean.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_LT(std::abs(out.mean_sst[i]), 60.0);
    EXPECT_LT(std::abs(out.mean_t_atm[i]), 60.0);
    EXPECT_GE(out.mean_icefrac[i], 0.0);
    EXPECT_LT(out.mean_icefrac[i], 1.0);
  }
  EXPECT_GT(out.mean_t_atm.back(), out.mean_sst.back());
}

TEST(CoupledIntegration, AirSeaCouplingWarmsOcean) {
  // With coupling the initially cold ocean must warm toward the atmosphere
  // over the run.
  ClimateConfig cfg = test_config();
  cfg.intervals = 8;
  const CoupledOutcome out = run_scme(cfg);
  ASSERT_EQ(out.mean_sst.size(), 8u);
  EXPECT_GT(out.mean_sst.back(), out.mean_sst.front());
}

TEST(CoupledIntegration, AllThreeWiringsProduceIdenticalPhysics) {
  // SCME vs MCSE vs MCME: identical processor counts per component,
  // identical physics, different integration modes -> identical numbers.
  const ClimateConfig cfg = test_config();
  const CoupledOutcome scme = run_scme(cfg);
  const CoupledOutcome mcse = run_mcse(cfg);
  const CoupledOutcome mcme = run_mcme(cfg);
  ASSERT_EQ(scme.mean_sst.size(), mcse.mean_sst.size());
  ASSERT_EQ(scme.mean_sst.size(), mcme.mean_sst.size());
  for (std::size_t i = 0; i < scme.mean_sst.size(); ++i) {
    EXPECT_DOUBLE_EQ(scme.mean_sst[i], mcse.mean_sst[i]) << "interval " << i;
    EXPECT_DOUBLE_EQ(scme.mean_sst[i], mcme.mean_sst[i]) << "interval " << i;
    EXPECT_DOUBLE_EQ(scme.mean_t_atm[i], mcse.mean_t_atm[i]);
    EXPECT_DOUBLE_EQ(scme.mean_t_atm[i], mcme.mean_t_atm[i]);
  }
}

TEST(CoupledIntegration, ParallelMatchesSerialReferenceExactly) {
  // The decisive correctness check: the distributed 5-component MPMD run
  // must reproduce the single-process, direct-function-call composition of
  // the same physics bit-for-bit (stencils, regrids, and diagnostics are
  // all decomposition-independent).
  const ClimateConfig cfg = test_config();
  CouplerDiagnostics serial;
  const minimpi::JobReport report = minimpi::run_spmd(
      1,
      [&](const Comm& world, const minimpi::ExecEnv&) {
        serial = run_serial_reference(world, cfg);
      },
      test_job_options());
  ASSERT_TRUE(report.ok) << report.abort_reason;

  const CoupledOutcome parallel = run_scme(cfg);
  ASSERT_EQ(serial.mean_sst.size(), parallel.mean_sst.size());
  for (std::size_t i = 0; i < serial.mean_sst.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial.mean_sst[i], parallel.mean_sst[i])
        << "interval " << i;
    EXPECT_DOUBLE_EQ(serial.mean_t_atm[i], parallel.mean_t_atm[i]);
    EXPECT_DOUBLE_EQ(serial.mean_icefrac[i], parallel.mean_icefrac[i]);
  }
}

TEST(CoupledIntegration, ArbitraryComponentNamesWork) {
  // §3(a): component names evolve (CCM -> CAM); nothing is hardwired.
  ClimateConfig cfg = test_config();
  cfg.intervals = 2;
  FluxCoupler::Peers peers;
  peers.atmosphere = "CAM";
  peers.ocean = "POP";
  peers.land = "CLM";
  peers.ice = "CSIM";
  auto body = [&](Mph& h, const Comm&) {
    (void)run_coupled_component(h, cfg, peers, "cpl7");
  };
  run_mph_ok("BEGIN\nCAM\nPOP\nCLM\nCSIM\ncpl7\nEND\n",
             {TestExec{{"CAM"}, "", 2, body}, TestExec{{"POP"}, "", 2, body},
              TestExec{{"CLM"}, "", 1, body},
              TestExec{{"CSIM"}, "", 1, body},
              TestExec{{"cpl7"}, "", 1, body}});
}

// ---------------------------------------------------------------------------
// MIME ensemble integration (§2.5).
// ---------------------------------------------------------------------------

namespace {
/// Run a 3-instance ocean ensemble with the given control gain; returns
/// the statistics history.
std::vector<EnsembleSnapshot> run_ensemble(double gain, int intervals) {
  ClimateConfig cfg = test_config();
  cfg.intervals = intervals;
  const std::string registry = R"(BEGIN
Multi_Instance_Begin
Ocean1 0 1 diff=0.5
Ocean2 2 3 diff=1.0
Ocean3 4 5 diff=2.0
Multi_Instance_End
statistics
END
)";
  std::vector<EnsembleSnapshot> history;
  std::mutex mutex;
  run_mph_ok(
      registry,
      {TestExec{{}, "Ocean", 6,
                [&cfg](Mph& h, const Comm&) {
                  const EnsembleResult r =
                      run_ensemble_instance(h, cfg, "statistics");
                  EXPECT_EQ(r.my_means.size(),
                            static_cast<std::size_t>(cfg.intervals));
                }},
       TestExec{{"statistics"}, "", 1,
                [&, gain](Mph& h, const Comm&) {
                  const EnsembleResult r =
                      run_ensemble_statistics(h, cfg, "Ocean", gain);
                  if (h.local_proc_id() == 0) {
                    const std::lock_guard<std::mutex> lock(mutex);
                    history = r.snapshots;
                  }
                }}});
  return history;
}
}  // namespace

TEST(EnsembleIntegration, StatisticsAggregateEveryInterval) {
  const auto history = run_ensemble(/*gain=*/0.0, /*intervals=*/5);
  ASSERT_EQ(history.size(), 5u);
  for (const EnsembleSnapshot& s : history) {
    EXPECT_LE(s.min, s.median);
    EXPECT_LE(s.median, s.max);
    EXPECT_GE(s.variance, 0.0);
  }
}

TEST(EnsembleIntegration, PerturbedDiffusivitiesCreateSpread) {
  const auto history = run_ensemble(0.0, 6);
  // Instances start identical but diverge: spread grows from interval 1.
  EXPECT_GT(history.back().variance, 0.0);
  EXPECT_GT(history.back().max, history.back().min);
}

TEST(EnsembleIntegration, DynamicControlShrinksSpread) {
  // §2.5(b): "the future simulation direction can be dynamically adjusted
  // at real time" — with a strong nudge toward the ensemble mean, the final
  // spread must be smaller than without control.
  const auto free_run = run_ensemble(0.0, 6);
  const auto steered = run_ensemble(0.9, 6);
  ASSERT_EQ(free_run.size(), steered.size());
  EXPECT_LT(steered.back().variance, free_run.back().variance);
}
