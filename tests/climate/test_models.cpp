// Physics sanity of the four component models, run standalone on small
// communicators (each model must work in stand-alone mode — paper §2.3:
// "flags to detect if the executable is running in a stand-alone mode").
#include "src/climate/models.hpp"

#include <gtest/gtest.h>

#include "src/minimpi/launcher.hpp"
#include "tests/mph/mph_test_util.hpp"

using namespace mph::climate;
using minimpi::Comm;

namespace {
ClimateConfig small_config() {
  ClimateConfig cfg;
  cfg.atm_nlon = 8;
  cfg.atm_nlat = 6;
  cfg.ocn_nlon = 12;
  cfg.ocn_nlat = 8;
  return cfg;
}

void run_ok(int nprocs, std::function<void(const Comm&)> entry) {
  const minimpi::JobReport report = minimpi::run_spmd(
      nprocs,
      [&](const Comm& world, const minimpi::ExecEnv&) { entry(world); },
      mph::testing::test_job_options());
  ASSERT_TRUE(report.ok) << report.abort_reason << " / "
                         << report.first_error();
}
}  // namespace

TEST(Atmosphere, StandaloneConvergesTowardRadiativeEquilibrium) {
  run_ok(2, [](const Comm& world) {
    const ClimateConfig cfg = small_config();
    Atmosphere model(cfg, world);
    const double initial = model.global_mean();
    for (int s = 0; s < 200; ++s) model.step();
    const double final_mean = model.global_mean();
    // Radiative equilibrium mean is dominated by the warm low latitudes.
    EXPECT_GT(final_mean, 0.0);
    EXPECT_LT(std::abs(final_mean), 50.0);  // bounded, no blow-up
    (void)initial;
    // Repeating steps changes nothing much once relaxed (steady state).
    const double before = model.global_mean();
    for (int s = 0; s < 50; ++s) model.step();
    EXPECT_NEAR(model.global_mean(), before, 0.5);
  });
}

TEST(Atmosphere, SstImportWarmsTheBoundary) {
  run_ok(2, [](const Comm& world) {
    const ClimateConfig cfg = small_config();
    Atmosphere cold(cfg, world);
    Atmosphere warm(cfg, world);
    const auto n = static_cast<std::size_t>(
        static_cast<std::int64_t>(cfg.atm_nlon) * cfg.atm_nlat);
    std::vector<double> hot_sst, cold_sst;
    if (world.rank() == 0) {
      hot_sst.assign(n, 40.0);
      cold_sst.assign(n, -40.0);
    }
    warm.import_sst(hot_sst);
    cold.import_sst(cold_sst);
    for (int s = 0; s < 100; ++s) {
      warm.step();
      cold.step();
    }
    EXPECT_GT(warm.global_mean(), cold.global_mean() + 10.0);
  });
}

TEST(Atmosphere, DeterministicAcrossRankCounts) {
  // The same physics on 1 vs 3 ranks must agree to roundoff: the model is
  // a pure data-parallel stencil.
  const ClimateConfig cfg = small_config();
  double mean1 = 0, mean3 = 0;
  run_ok(1, [&](const Comm& world) {
    Atmosphere model(cfg, world);
    for (int s = 0; s < 30; ++s) model.step();
    mean1 = model.global_mean();
  });
  run_ok(3, [&](const Comm& world) {
    Atmosphere model(cfg, world);
    for (int s = 0; s < 30; ++s) model.step();
    const double mean = model.global_mean();  // collective: all participate
    if (world.rank() == 0) mean3 = mean;
  });
  EXPECT_NEAR(mean1, mean3, 1e-9);
}

TEST(Atmosphere, MeanExportAveragesOverInterval) {
  run_ok(1, [](const Comm& world) {
    const ClimateConfig cfg = small_config();
    Atmosphere model(cfg, world);
    // Manual reference: average the instantaneous exports over 3 steps.
    Atmosphere reference(cfg, world);
    std::vector<double> sum;
    for (int s = 0; s < 3; ++s) {
      reference.step();
      const std::vector<double> inst = reference.export_temperature();
      if (sum.empty()) sum.assign(inst.size(), 0.0);
      for (std::size_t i = 0; i < inst.size(); ++i) sum[i] += inst[i];
    }
    for (int s = 0; s < 3; ++s) model.step();
    const std::vector<double> mean = model.export_temperature_mean();
    ASSERT_EQ(mean.size(), sum.size());
    for (std::size_t i = 0; i < mean.size(); ++i) {
      EXPECT_NEAR(mean[i], sum[i] / 3.0, 1e-12);
    }
    // The accumulator reset: exporting again without stepping falls back
    // to the instantaneous field.
    const std::vector<double> inst_now = model.export_temperature();
    const std::vector<double> mean_again = model.export_temperature_mean();
    for (std::size_t i = 0; i < inst_now.size(); ++i) {
      EXPECT_DOUBLE_EQ(mean_again[i], inst_now[i]);
    }
  });
}

TEST(Ocean, MeanExportDiffersFromInstantaneousWhileEvolving) {
  run_ok(2, [](const Comm& world) {
    const ClimateConfig cfg = small_config();
    Ocean model(cfg, world);
    const auto n = static_cast<std::size_t>(
        static_cast<std::int64_t>(cfg.ocn_nlon) * cfg.ocn_nlat);
    std::vector<double> flux;
    if (world.rank() == 0) flux.assign(n, 20.0);  // strong steady heating
    model.import_flux(flux);
    for (int s = 0; s < 5; ++s) model.step();
    const std::vector<double> inst = model.export_sst();
    const std::vector<double> mean = model.export_sst_mean();
    if (world.rank() == 0) {
      // Monotone warming: the interval mean lags the final state.
      double mean_sum = 0, inst_sum = 0;
      for (std::size_t i = 0; i < n; ++i) {
        mean_sum += mean[i];
        inst_sum += inst[i];
      }
      EXPECT_LT(mean_sum, inst_sum);
    }
  });
}

TEST(Ocean, FluxForcingWarmsSlab) {
  run_ok(2, [](const Comm& world) {
    const ClimateConfig cfg = small_config();
    Ocean model(cfg, world);
    const double before = model.global_mean();
    const auto n = static_cast<std::size_t>(
        static_cast<std::int64_t>(cfg.ocn_nlon) * cfg.ocn_nlat);
    std::vector<double> flux;
    if (world.rank() == 0) flux.assign(n, 10.0);  // uniform heating
    model.import_flux(flux);
    for (int s = 0; s < 50; ++s) model.step();
    EXPECT_GT(model.global_mean(), before + 1.0);
  });
}

TEST(Ocean, DiffusionSmoothsWithoutChangingMean) {
  run_ok(2, [](const Comm& world) {
    const ClimateConfig cfg = small_config();
    Ocean model(cfg, world);
    const double before = model.global_mean();
    for (int s = 0; s < 100; ++s) model.step();  // no flux: pure diffusion
    // Zero-flux boundaries: the (unweighted) content is conserved; the
    // area-weighted mean drifts only slightly as gradients relax.
    EXPECT_NEAR(model.global_mean(), before, 1.0);
  });
}

TEST(Ocean, NudgeShiftsState) {
  run_ok(1, [](const Comm& world) {
    const ClimateConfig cfg = small_config();
    Ocean model(cfg, world);
    const double before = model.global_mean();
    model.nudge(2.5);
    EXPECT_NEAR(model.global_mean(), before + 2.5, 1e-9);
  });
}

TEST(Ocean, DiffusivityScalingChangesEvolution) {
  run_ok(1, [](const Comm& world) {
    const ClimateConfig cfg = small_config();
    Ocean slow(cfg, world);
    Ocean fast(cfg, world);
    fast.scale_diffusivity(4.0);
    for (int s = 0; s < 40; ++s) {
      slow.step();
      fast.step();
    }
    // Different diffusivities must produce measurably different states —
    // the spread the ensemble experiments rely on.
    EXPECT_NE(slow.global_mean(), fast.global_mean());
  });
}

TEST(Land, BucketApproachesPrecipEvapBalance) {
  run_ok(2, [](const Comm& world) {
    const ClimateConfig cfg = small_config();
    Land model(cfg, world);
    const auto n = static_cast<std::size_t>(
        static_cast<std::int64_t>(cfg.atm_nlon) * cfg.atm_nlat);
    std::vector<double> t_atm;
    if (world.rank() == 0) t_atm.assign(n, 15.0);  // warm: steady precip
    model.import_temperature(t_atm);
    for (int s = 0; s < 400; ++s) model.step();
    // Equilibrium: W* = precip_rate * T / beta = 0.1*15/0.3 = 5.
    EXPECT_NEAR(model.global_mean(), 5.0, 0.2);
  });
}

TEST(Land, ColdClimateDriesTheBucket) {
  run_ok(1, [](const Comm& world) {
    const ClimateConfig cfg = small_config();
    Land model(cfg, world);
    const auto n = static_cast<std::size_t>(
        static_cast<std::int64_t>(cfg.atm_nlon) * cfg.atm_nlat);
    std::vector<double> t_atm(n, -20.0);  // no precipitation below zero
    model.import_temperature(t_atm);
    for (int s = 0; s < 400; ++s) model.step();
    // W decays as (1 - dt*beta)^steps ≈ 2.4e-3 of the initial bucket.
    EXPECT_NEAR(model.global_mean(), 0.0, 0.01);
  });
}

TEST(SeaIce, GrowsWhenColdMeltsWhenWarm) {
  run_ok(2, [](const Comm& world) {
    const ClimateConfig cfg = small_config();
    const auto n = static_cast<std::size_t>(
        static_cast<std::int64_t>(cfg.ocn_nlon) * cfg.ocn_nlat);

    SeaIce frozen(cfg, world);
    std::vector<double> cold;
    if (world.rank() == 0) cold.assign(n, -10.0);
    frozen.import_sst(cold);
    const double h0 = frozen.global_mean_thickness();
    for (int s = 0; s < 50; ++s) frozen.step();
    EXPECT_GT(frozen.global_mean_thickness(), h0);

    SeaIce melting(cfg, world);
    std::vector<double> warm;
    if (world.rank() == 0) warm.assign(n, 10.0);
    melting.import_sst(warm);
    for (int s = 0; s < 500; ++s) melting.step();
    EXPECT_NEAR(melting.global_mean_thickness(), 0.0, 1e-6);
  });
}

TEST(SeaIce, ThicknessNeverNegativeAndFractionBounded) {
  run_ok(1, [](const Comm& world) {
    const ClimateConfig cfg = small_config();
    SeaIce model(cfg, world);
    const auto n = static_cast<std::size_t>(
        static_cast<std::int64_t>(cfg.ocn_nlon) * cfg.ocn_nlat);
    std::vector<double> hot(n, 30.0);
    model.import_sst(hot);
    for (int s = 0; s < 100; ++s) model.step();
    EXPECT_GE(model.global_mean_thickness(), 0.0);
    const std::vector<double> frac = model.export_fraction();
    for (double f : frac) {
      EXPECT_GE(f, 0.0);
      EXPECT_LT(f, 1.0);
    }
  });
}
