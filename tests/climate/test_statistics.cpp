// EnsembleStatistics: the §2.5 aggregation and dynamic-control machinery.
#include "src/climate/statistics.hpp"

#include <gtest/gtest.h>

using namespace mph::climate;

TEST(Median, OddCount) {
  EXPECT_DOUBLE_EQ(EnsembleStatistics::median_of({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(EnsembleStatistics::median_of({5}), 5.0);
}

TEST(Median, EvenCount) {
  EXPECT_DOUBLE_EQ(EnsembleStatistics::median_of({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(EnsembleStatistics::median_of({10, 20}), 15.0);
}

TEST(Median, Duplicates) {
  EXPECT_DOUBLE_EQ(EnsembleStatistics::median_of({2, 2, 2, 9}), 2.0);
}

TEST(Median, EmptyThrows) {
  EXPECT_THROW((void)EnsembleStatistics::median_of({}), std::invalid_argument);
}

TEST(Aggregate, KnownStatistics) {
  EnsembleStatistics stats(4);
  const EnsembleSnapshot snap = stats.aggregate({1.0, 3.0, 5.0, 7.0});
  EXPECT_DOUBLE_EQ(snap.mean, 4.0);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 7.0);
  EXPECT_DOUBLE_EQ(snap.median, 4.0);
  EXPECT_NEAR(snap.variance, 20.0 / 3.0, 1e-12);
  EXPECT_EQ(stats.history().size(), 1u);
}

TEST(Aggregate, MedianDiffersFromMeanOnSkewedSamples) {
  // The nonlinear statistic the paper says cannot be post-processed from
  // independent runs: an outlier pulls the mean but not the median.
  EnsembleStatistics stats(5);
  const EnsembleSnapshot snap = stats.aggregate({1, 1, 1, 1, 100});
  EXPECT_DOUBLE_EQ(snap.median, 1.0);
  EXPECT_NEAR(snap.mean, 20.8, 1e-12);
  EXPECT_GT(snap.mean, snap.median);
}

TEST(Aggregate, WrongSampleCountThrows) {
  EnsembleStatistics stats(3);
  EXPECT_THROW((void)stats.aggregate({1.0, 2.0}), std::invalid_argument);
}

TEST(Aggregate, HistoryAccumulates) {
  EnsembleStatistics stats(2);
  stats.aggregate({0.0, 2.0});
  stats.aggregate({10.0, 20.0});
  ASSERT_EQ(stats.history().size(), 2u);
  EXPECT_DOUBLE_EQ(stats.history()[0].mean, 1.0);
  EXPECT_DOUBLE_EQ(stats.history()[1].mean, 15.0);
}

TEST(ControlNudges, PullTowardMean) {
  EnsembleStatistics stats(3);
  const std::vector<double> samples{1.0, 4.0, 7.0};
  const std::vector<double> nudges = stats.control_nudges(samples, 4.0, 0.5);
  ASSERT_EQ(nudges.size(), 3u);
  EXPECT_DOUBLE_EQ(nudges[0], 1.5);   // below mean: pushed up
  EXPECT_DOUBLE_EQ(nudges[1], 0.0);   // at the mean: untouched
  EXPECT_DOUBLE_EQ(nudges[2], -1.5);  // above mean: pushed down
}

TEST(ControlNudges, ZeroGainDisablesControl) {
  EnsembleStatistics stats(2);
  const std::vector<double> nudges =
      stats.control_nudges({3.0, 9.0}, 6.0, 0.0);
  EXPECT_DOUBLE_EQ(nudges[0], 0.0);
  EXPECT_DOUBLE_EQ(nudges[1], 0.0);
}
