// Litmus-registry tests: every registered pass-case must be exhaustively
// explored and hold at its pinned bounds — this is the same gate CI runs
// through tools/mph_racer, kept in-tree so `ctest` alone proves the
// lock-free structures' memory-model contracts (DESIGN.md §14).
#include <gtest/gtest.h>

#include <string>

#include "src/minimpi/racer/litmus.hpp"

using namespace minimpi::racer;

namespace {

RacerReport run_named(const std::string& name) {
  const LitmusCase* c = find_litmus(name);
  EXPECT_NE(c, nullptr) << name << " is not registered";
  return run_litmus(*c);
}

}  // namespace

TEST(RacerLitmus, RegistryNamesAreUniqueAndFindable) {
  const auto& cases = litmus_cases();
  ASSERT_FALSE(cases.empty());
  for (const LitmusCase& c : cases) {
    EXPECT_EQ(find_litmus(c.name), &c) << c.name;
  }
  EXPECT_EQ(find_litmus("no_such_litmus"), nullptr);
}

TEST(RacerLitmus, EveryPassCaseIsExhaustiveAtItsPinnedBounds) {
  for (const LitmusCase& c : litmus_cases()) {
    if (c.expect_failure) continue;
    const RacerReport rep = run_litmus(c);
    EXPECT_TRUE(rep.ok()) << rep.summary();
    EXPECT_TRUE(litmus_verdict(c, rep)) << rep.summary();
    // "explored N of >= M": a complete run's frontier is exactly what ran
    // plus what the preemption bound pruned.
    EXPECT_EQ(rep.frontier_lower_bound,
              rep.executions + rep.redundant + rep.pruned_preemptions)
        << rep.summary();
  }
}

TEST(RacerLitmus, TraceRingLapIsExhaustive) {
  // The regression litmus for the release/acquire field orderings in
  // TraceRing::record/snapshot: a lapping writer must never let a reader
  // accept an event mixing two writers' fields.  Pinned here so a future
  // ordering relaxation fails THIS test by name.
  const RacerReport rep = run_named("trace_ring_lap");
  EXPECT_TRUE(rep.ok()) << rep.summary();
  EXPECT_GT(rep.executions, 1000u) << "state space collapsed suspiciously";
}

TEST(RacerLitmus, MetricsHistogramHasNoPhantomEvents) {
  // The histogram contract from metrics.hpp: count never runs ahead of
  // the buckets/sum (writer releases count last; reader acquires it
  // first).  The all-relaxed original fails this in two executions.
  const RacerReport rep = run_named("metrics_histogram");
  EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(RacerLitmus, MailboxAbortProtocolHolds) {
  const RacerReport rep = run_named("mailbox_abort_flag");
  EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(RacerLitmus, BoundsOverrideIsHonored) {
  const LitmusCase* c = find_litmus("sb_relaxed");
  ASSERT_NE(c, nullptr);
  RacerOptions tiny = c->bounds;
  tiny.max_executions = 1;
  const RacerReport rep = run_litmus(*c, &tiny);
  EXPECT_FALSE(rep.complete);
  EXPECT_TRUE(rep.exec_budget_exhausted);
}
