// Engine-semantics tests for mph_racer: outcome enumeration over the
// modeled memory-model fragment, CAS semantics, sleep-set/preemption
// accounting, budgets, replay determinism, and divergence detection.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <utility>

#include "src/minimpi/racer/engine.hpp"

using namespace minimpi::racer;

namespace {

RacerOptions small_bounds() {
  RacerOptions o;
  o.max_executions = 100000;
  return o;
}

}  // namespace

TEST(RacerEngine, StoreBufferingRelaxedReachesAllFourOutcomes) {
  Engine e;
  std::set<std::pair<int, int>> outcomes;
  const RacerReport rep = e.explore(
      "sb_relaxed",
      [&] {
        mph::atomic<int> x{0};
        mph::atomic<int> y{0};
        int r1 = -1;
        int r2 = -1;
        run_threads({[&] {
                       x.store(1, std::memory_order_relaxed);
                       r1 = y.load(std::memory_order_relaxed);
                     },
                     [&] {
                       y.store(1, std::memory_order_relaxed);
                       r2 = x.load(std::memory_order_relaxed);
                     }});
        outcomes.insert({r1, r2});
      },
      small_bounds());
  EXPECT_TRUE(rep.ok()) << rep.summary();
  EXPECT_EQ(outcomes.size(), 4u);
  EXPECT_GE(rep.executions, 4u);
  EXPECT_GE(rep.frontier_lower_bound, rep.executions);
}

TEST(RacerEngine, StoreBufferingSeqCstExcludesBothZero) {
  Engine e;
  std::set<std::pair<int, int>> outcomes;
  const RacerReport rep = e.explore(
      "sb_sc",
      [&] {
        mph::atomic<int> x{0};
        mph::atomic<int> y{0};
        int r1 = -1;
        int r2 = -1;
        run_threads({[&] {
                       x.store(1);
                       r1 = y.load();
                     },
                     [&] {
                       y.store(1);
                       r2 = x.load();
                     }});
        outcomes.insert({r1, r2});
      },
      small_bounds());
  EXPECT_TRUE(rep.ok()) << rep.summary();
  EXPECT_EQ(outcomes.count({0, 0}), 0u);
  EXPECT_EQ(outcomes.size(), 3u);
}

TEST(RacerEngine, CasExactlyOneWinner) {
  Engine e;
  const RacerReport rep = e.explore(
      "cas_one_winner",
      [&] {
        mph::atomic<int> x{0};
        int wins = 0;
        auto claim = [&x, &wins] {
          int expected = 0;
          if (x.compare_exchange_strong(expected, 1,
                                        std::memory_order_acq_rel)) {
            ++wins;  // tid-serialized: only the winner's thread writes
          } else {
            RACER_CHECK(expected == 1, "cas failure must load the winner");
          }
        };
        run_threads({claim, claim});
        RACER_CHECK(wins == 1, "exactly one CAS may win");
        RACER_CHECK(x.load(std::memory_order_relaxed) == 1, "value is claimed");
      },
      small_bounds());
  EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(RacerEngine, FetchAddNeverLosesUpdates) {
  Engine e;
  const RacerReport rep = e.explore(
      "rmw_exact",
      [&] {
        mph::atomic<std::uint8_t> c{250};
        run_threads({[&] { c.fetch_add(3, std::memory_order_relaxed); },
                     [&] { c.fetch_add(3, std::memory_order_relaxed); }});
        // 250 + 3 + 3 wraps the 8-bit counter: the model must wrap too.
        RACER_CHECK(c.load(std::memory_order_relaxed) == 0,
                    "narrow fetch_add must wrap at the type width");
      },
      small_bounds());
  EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(RacerEngine, RacyIncrementBugIsFound) {
  Engine e;
  const RacerReport rep = e.explore(
      "racy_inc",
      [&] {
        mph::atomic<std::uint64_t> c{0};
        auto racy_inc = [&c] {
          const std::uint64_t v = c.load(std::memory_order_relaxed);
          c.store(v + 1, std::memory_order_relaxed);
        };
        run_threads({racy_inc, racy_inc});
        RACER_CHECK(c.load(std::memory_order_relaxed) == 2,
                    "racy increment lost an update");
      },
      small_bounds());
  EXPECT_TRUE(rep.failed) << rep.summary();
  EXPECT_FALSE(rep.failure_decisions.empty());
}

TEST(RacerEngine, ReplayReproducesTheExactFailure) {
  const auto body = [] {
    mph::atomic<int> data{0};
    mph::atomic<int> flag{0};
    run_threads({[&] {
                   data.store(1, std::memory_order_relaxed);
                   flag.store(1, std::memory_order_relaxed);
                 },
                 [&] {
                   if (flag.load(std::memory_order_acquire) == 1) {
                     RACER_CHECK(data.load(std::memory_order_relaxed) == 1,
                                 "mp: stale data");
                   }
                 }});
  };
  Engine e;
  const RacerReport found = e.explore("mp", body, small_bounds());
  ASSERT_TRUE(found.failed) << found.summary();

  Engine e2;
  const RacerReport replayed =
      e2.replay("mp", body, small_bounds(), found.failure_decisions);
  EXPECT_TRUE(replayed.failed) << replayed.summary();
  EXPECT_EQ(replayed.failure_reason, found.failure_reason);
  EXPECT_TRUE(replayed.divergence.empty()) << replayed.divergence;
  EXPECT_EQ(replayed.executions, 1u);
}

TEST(RacerEngine, ReplayAgainstTheWrongBodyDiverges) {
  Engine e;
  const RacerReport found = e.explore(
      "mp",
      [] {
        mph::atomic<int> data{0};
        mph::atomic<int> flag{0};
        run_threads({[&] {
                       data.store(1, std::memory_order_relaxed);
                       flag.store(1, std::memory_order_relaxed);
                     },
                     [&] {
                       if (flag.load(std::memory_order_acquire) == 1) {
                         RACER_CHECK(data.load(std::memory_order_relaxed) == 1,
                                     "mp: stale data");
                       }
                     }});
      },
      small_bounds());
  ASSERT_TRUE(found.failed);
  ASSERT_GE(found.failure_decisions.size(), 2u);

  // A structurally different body cannot follow that schedule.
  Engine e2;
  const RacerReport replayed = e2.replay(
      "other",
      [] {
        mph::atomic<int> x{0};
        run_threads({[&] { x.store(1, std::memory_order_relaxed); },
                     [&] { (void)x.load(std::memory_order_relaxed); },
                     [&] { (void)x.load(std::memory_order_relaxed); }});
      },
      small_bounds(), found.failure_decisions);
  EXPECT_FALSE(replayed.divergence.empty()) << replayed.summary();
}

TEST(RacerEngine, ExecutionBudgetIsReportedNotSilent) {
  Engine e;
  RacerOptions o;
  o.max_executions = 2;
  const RacerReport rep = e.explore(
      "sb_budget",
      [] {
        mph::atomic<int> x{0};
        mph::atomic<int> y{0};
        run_threads({[&] {
                       x.store(1, std::memory_order_relaxed);
                       (void)y.load(std::memory_order_relaxed);
                     },
                     [&] {
                       y.store(1, std::memory_order_relaxed);
                       (void)x.load(std::memory_order_relaxed);
                     }});
      },
      o);
  EXPECT_FALSE(rep.complete);
  EXPECT_TRUE(rep.exec_budget_exhausted);
  EXPECT_FALSE(rep.ok());
  // The frontier still reports unexplored work.
  EXPECT_GT(rep.frontier_lower_bound, rep.executions + rep.redundant);
}

TEST(RacerEngine, SpinLoopTripsTheStepLimit) {
  Engine e;
  RacerOptions o;
  o.max_steps = 64;
  EXPECT_THROW(
      (void)e.explore(
          "spin",
          [] {
            mph::atomic<int> flag{0};
            run_threads({[&] {
              while (flag.load(std::memory_order_acquire) == 0) {
              }
            }});
          },
          o),
      RacerError);
}

TEST(RacerEngine, PreemptionBoundPrunesAndReportsIt) {
  const auto body = [] {
    mph::atomic<int> x{0};
    auto bump = [&x] {
      x.fetch_add(1, std::memory_order_relaxed);
      x.fetch_add(1, std::memory_order_relaxed);
      x.fetch_add(1, std::memory_order_relaxed);
    };
    run_threads({bump, bump});
    RACER_CHECK(x.load(std::memory_order_relaxed) == 6, "lost increment");
  };
  Engine bounded;
  RacerOptions tight;
  tight.preemption_bound = 0;
  const RacerReport at0 = bounded.explore("bump", body, tight);
  EXPECT_TRUE(at0.complete) << at0.summary();
  EXPECT_FALSE(at0.failed);
  EXPECT_GT(at0.pruned_preemptions, 0u);

  Engine unbounded;
  RacerOptions loose;
  loose.preemption_bound = 100;
  const RacerReport full = unbounded.explore("bump", body, loose);
  EXPECT_TRUE(full.complete) << full.summary();
  EXPECT_EQ(full.pruned_preemptions, 0u);
  EXPECT_GT(full.executions, at0.executions);
}

TEST(RacerEngine, NamedLocationsAppearInTheFailureLog) {
  Engine e;
  const RacerReport rep = e.explore(
      "named",
      [] {
        mph::atomic<int> flag{0};
        name_location(&flag, "my_flag");
        run_threads({[&] { flag.store(1, std::memory_order_relaxed); }});
        RACER_CHECK(flag.load(std::memory_order_relaxed) == 2,
                    "always fails: log capture probe");
      },
      small_bounds());
  ASSERT_TRUE(rep.failed);
  bool saw_name = false;
  for (const StepEvent& ev : rep.failure_events) {
    if (ev.text.find("my_flag") != std::string::npos) saw_name = true;
  }
  EXPECT_TRUE(saw_name);
}

TEST(RacerEngine, TraceJsonRoundTripsTheSchedule) {
  Engine e;
  const RacerReport rep = e.explore(
      "fails",
      [] {
        mph::atomic<int> x{0};
        run_threads({[&] { x.store(1, std::memory_order_relaxed); },
                     [&] { x.store(2, std::memory_order_relaxed); }});
        RACER_CHECK(x.load(std::memory_order_relaxed) == 3, "never 3");
      },
      small_bounds());
  ASSERT_TRUE(rep.failed);
  const std::string json = trace_to_json(rep);
  EXPECT_NE(json.find("\"kind\": \"mph_racer_trace\""), std::string::npos);
  EXPECT_NE(json.find("\"litmus\": \"fails\""), std::string::npos);
  EXPECT_NE(json.find("\"decisions\""), std::string::npos);
  EXPECT_NE(json.find("\"events\""), std::string::npos);
}
