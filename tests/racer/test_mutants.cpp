// Seeded-mutant tests: the checker must FIND each deliberately planted
// bug and produce a schedule that replays to the identical failure.  A
// checker that stops finding these has lost its teeth — this is the
// mutation-coverage half of the CI racer gate.
#include <gtest/gtest.h>

#include "src/minimpi/racer/litmus.hpp"

using namespace minimpi::racer;

namespace {

void expect_mutant_found_and_replayable(const char* name) {
  const LitmusCase* c = find_litmus(name);
  ASSERT_NE(c, nullptr) << name << " is not registered";
  ASSERT_TRUE(c->expect_failure) << name << " must be an expect_failure case";

  const RacerReport found = run_litmus(*c);
  EXPECT_TRUE(found.failed) << found.summary();
  EXPECT_TRUE(litmus_verdict(*c, found)) << found.summary();
  ASSERT_FALSE(found.failure_decisions.empty());
  EXPECT_FALSE(found.failure_events.empty());

  const RacerReport replayed = replay_litmus(*c, found.failure_decisions);
  EXPECT_TRUE(replayed.failed) << replayed.summary();
  EXPECT_EQ(replayed.failure_reason, found.failure_reason);
  EXPECT_TRUE(replayed.divergence.empty()) << replayed.divergence;
}

}  // namespace

TEST(RacerMutants, RelaxedPublishIsFound) {
  // Mutant 1: the ring publish protocol with the stamp store demoted from
  // release to relaxed — an acquire reader accepts the stamp without the
  // payload being visible.
  expect_mutant_found_and_replayable("mutant_relaxed_publish");
}

TEST(RacerMutants, TornPairReadIsFound) {
  // Mutant 2: a 64-bit statistic updated as two separate word stores — a
  // reader interleaving between them sees a value that never existed.
  expect_mutant_found_and_replayable("mutant_torn_pair");
}

TEST(RacerMutants, RelaxedMessagePassingIsFound) {
  // The classic expect_failure case rides the same gate: the relaxed
  // flag store lets the reader see the flag without the data.
  expect_mutant_found_and_replayable("mp_relaxed");
}

TEST(RacerMutants, MutantsFailFastNotAtTheBudgetEdge) {
  // Finding a seeded bug must not depend on luck near the execution
  // budget: each mutant is found within a handful of executions.
  for (const char* name :
       {"mutant_relaxed_publish", "mutant_torn_pair", "mp_relaxed"}) {
    const LitmusCase* c = find_litmus(name);
    ASSERT_NE(c, nullptr);
    RacerOptions tight = c->bounds;
    tight.max_executions = 32;
    const RacerReport rep = run_litmus(*c, &tight);
    EXPECT_TRUE(rep.failed) << name << ": " << rep.summary();
  }
}
