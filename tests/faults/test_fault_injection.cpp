// Deterministic fault injection at the minimpi layer: every kill-point
// fires at its configured (rank, operation) with clean job teardown, the
// envelope faults (drop/delay/truncate) behave as specified, and the
// seed-derived chaos plans reproduce the same failure on every run.
#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "src/minimpi/collectives.hpp"
#include "src/minimpi/fault.hpp"
#include "src/minimpi/launcher.hpp"

namespace {

using minimpi::Comm;
using minimpi::EnvelopeMatch;
using minimpi::FaultPlan;
using minimpi::JobOptions;
using minimpi::JobReport;
using minimpi::KillPoint;
using minimpi::kill_point_name;

JobOptions with_plan(FaultPlan plan,
                     std::chrono::milliseconds timeout = std::chrono::seconds(30)) {
  JobOptions options;
  options.recv_timeout = timeout;
  options.faults = std::move(plan);
  return options;
}

/// Workload touching every kill-point: step checkpoints, barriers (4 per
/// rank — chaos hit counts go up to 4), a ring of sends/receives, a split.
void full_workload(const Comm& world, const minimpi::ExecEnv&) {
  const int n = world.size();
  const int r = world.rank();
  world.fault_checkpoint(0);
  minimpi::barrier(world);
  for (int round = 0; round < 5; ++round) {
    const int token = r * 100 + round;
    world.send(token, (r + 1) % n, 7);
    int in = -1;
    world.recv(in, (r + n - 1) % n, 7);
    ASSERT_EQ(in, ((r + n - 1) % n) * 100 + round);
  }
  minimpi::barrier(world);
  const Comm half = world.split(r % 2, r);
  minimpi::barrier(half);
  world.fault_checkpoint(1);
  minimpi::barrier(world);
}

JobReport run_workload(JobOptions options) {
  return minimpi::run_spmd(4, full_workload, std::move(options));
}

// --- kill-points, parametrized over every point ----------------------------

class KillPointTest : public ::testing::TestWithParam<KillPoint> {};

TEST_P(KillPointTest, KillsConfiguredRankAtConfiguredOperation) {
  const KillPoint point = GetParam();
  constexpr minimpi::rank_t kVictim = 2;
  FaultPlan plan;
  if (point == KillPoint::step) {
    plan.kill_at_step(kVictim, 1);
  } else {
    plan.kill_at(point, kVictim);
  }

  const JobReport report = run_workload(with_plan(std::move(plan)));

  EXPECT_FALSE(report.ok);
  ASSERT_TRUE(report.abort.has_value());
  EXPECT_EQ(report.abort->world_rank, kVictim);
  EXPECT_EQ(report.abort->operation, kill_point_name(point));
  ASSERT_FALSE(report.failures.empty());
  // Root cause is ordered first and attributed to the victim.
  EXPECT_EQ(report.failures.front().world_rank, kVictim);
  EXPECT_EQ(report.failures.front().operation, kill_point_name(point));
  EXPECT_NE(report.abort_reason.find("injected kill"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    AllPoints, KillPointTest,
    ::testing::Values(KillPoint::before_send, KillPoint::after_send,
                      KillPoint::before_recv, KillPoint::after_recv,
                      KillPoint::before_barrier, KillPoint::after_barrier,
                      KillPoint::before_split, KillPoint::after_split,
                      KillPoint::step, KillPoint::entry, KillPoint::finish),
    [](const ::testing::TestParamInfo<KillPoint>& info) {
      return std::string(kill_point_name(info.param));
    });

TEST(KillPointHitCount, HitCountSelectsTheNthVisit) {
  // Rank 1 dies on its third send (the barrier's internal sends count),
  // not its first — the job visibly progresses before the abort.
  FaultPlan plan;
  plan.kill_at(KillPoint::before_send, 1, 3);
  const JobReport report = run_workload(with_plan(std::move(plan)));
  EXPECT_FALSE(report.ok);
  ASSERT_TRUE(report.abort.has_value());
  EXPECT_EQ(report.abort->world_rank, 1);
  EXPECT_EQ(report.abort->operation, "before_send");
}

// --- chaos plans: same seed, same failure ----------------------------------

TEST(ChaosKill, SameSeedReproducesTheSameFailure) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL, 20260806ULL}) {
    const FaultPlan plan = FaultPlan::chaos_kill(seed, 4);
    ASSERT_EQ(plan.rules().size(), 1u);

    const JobReport first = run_workload(with_plan(plan));
    const JobReport second = run_workload(with_plan(plan));

    ASSERT_TRUE(first.abort.has_value()) << "seed " << seed;
    ASSERT_TRUE(second.abort.has_value()) << "seed " << seed;
    EXPECT_EQ(first.abort->world_rank, second.abort->world_rank)
        << "seed " << seed;
    EXPECT_EQ(first.abort->operation, second.abort->operation)
        << "seed " << seed;
    // The failing rank is exactly the plan's pinned victim.
    EXPECT_EQ(first.abort->world_rank, plan.rules().front().victim);
    EXPECT_EQ(first.abort->operation,
              kill_point_name(plan.rules().front().point));
  }
}

TEST(ChaosKill, DifferentSeedsCoverDifferentVictims) {
  // Not a distribution test — just that the seed actually matters.
  bool saw_difference = false;
  const FaultPlan base = FaultPlan::chaos_kill(0, 4);
  for (std::uint64_t seed = 1; seed < 16 && !saw_difference; ++seed) {
    const FaultPlan other = FaultPlan::chaos_kill(seed, 4);
    saw_difference = other.rules().front().victim !=
                         base.rules().front().victim ||
                     other.rules().front().point != base.rules().front().point;
  }
  EXPECT_TRUE(saw_difference);
}

// --- envelope faults --------------------------------------------------------

TEST(EnvelopeFaults, DroppedMessageTimesOutWithPatternDiagnostics) {
  FaultPlan plan;
  EnvelopeMatch match;
  match.tag = 5;
  plan.drop(match);
  const JobReport report = minimpi::run_spmd(
      2,
      [](const Comm& world, const minimpi::ExecEnv&) {
        if (world.rank() == 0) {
          world.send(1, 1, 9);  // decoy: queued but never received
          world.send(2, 1, 5);  // dropped in flight
        } else {
          int value = -1;
          world.recv(value, 0, 5);  // never arrives
        }
      },
      with_plan(std::move(plan), std::chrono::milliseconds(300)));

  EXPECT_FALSE(report.ok);
  ASSERT_FALSE(report.failures.empty());
  const std::string& what = report.failures.front().what;
  // The timeout error names the unmatched receive pattern and counts the
  // queued-but-unmatched envelopes (the tag-9 decoy).
  EXPECT_NE(what.find("timeout"), std::string::npos) << what;
  EXPECT_NE(what.find("tag=5"), std::string::npos) << what;
  EXPECT_NE(what.find("1 unmatched envelope(s) queued"), std::string::npos)
      << what;
}

TEST(EnvelopeFaults, DelayedMessageStillArrives) {
  FaultPlan plan;
  EnvelopeMatch match;
  match.tag = 5;
  plan.delay(match, std::chrono::milliseconds(80));
  const auto start = std::chrono::steady_clock::now();
  const JobReport report = minimpi::run_spmd(
      2,
      [](const Comm& world, const minimpi::ExecEnv&) {
        if (world.rank() == 0) {
          world.send(17, 1, 5);
        } else {
          int value = -1;
          world.recv(value, 0, 5);
          EXPECT_EQ(value, 17);
        }
      },
      with_plan(std::move(plan)));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_TRUE(report.ok) << report.abort_reason;
  EXPECT_GE(elapsed, std::chrono::milliseconds(80));
}

TEST(EnvelopeFaults, TruncatedPayloadSurfacesAsReceiveError) {
  FaultPlan plan;
  EnvelopeMatch match;
  match.tag = 5;
  plan.truncate(match, 10);  // not a whole number of doubles
  const JobReport report = minimpi::run_spmd(
      2,
      [](const Comm& world, const minimpi::ExecEnv&) {
        if (world.rank() == 0) {
          const std::vector<double> data(4, 3.25);
          world.send(std::span<const double>(data), 1, 5);
        } else {
          (void)world.recv_vector<double>(0, 5);
        }
      },
      with_plan(std::move(plan)));
  EXPECT_FALSE(report.ok);
  ASSERT_FALSE(report.failures.empty());
  EXPECT_NE(report.failures.front().what.find("truncation"),
            std::string::npos)
      << report.failures.front().what;
}

// --- teardown accounting and stats -----------------------------------------

TEST(Teardown, CleanJobLeaksNothing) {
  const JobReport report = run_workload(with_plan(FaultPlan{}));
  EXPECT_TRUE(report.ok) << report.abort_reason;
  EXPECT_EQ(report.leaked_envelopes, 0u);
  EXPECT_EQ(report.leaked_posted_recvs, 0u);
}

TEST(Teardown, UnreceivedEnvelopesAreCountedAfterTheJob) {
  const JobReport report = minimpi::run_spmd(
      2, [](const Comm& world, const minimpi::ExecEnv&) {
        if (world.rank() == 0) {
          world.send(1, 1, 11);
          world.send(2, 1, 12);
        }
      });
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.leaked_envelopes, 2u);
}

TEST(Stats, QueueHighWaterSeesTheBacklog) {
  const JobReport report = minimpi::run_spmd(
      2, [](const Comm& world, const minimpi::ExecEnv&) {
        if (world.rank() == 0) {
          for (int i = 0; i < 5; ++i) world.send(i, 1, 20);
          world.send(1, 1, 21);  // "go" arrives after the backlog
        } else {
          int go = -1;
          world.recv(go, 0, 21);  // by now 5 tag-20 envelopes are queued
          for (int i = 0; i < 5; ++i) {
            int v = -1;
            world.recv(v, 0, 20);
            EXPECT_EQ(v, i);
          }
        }
      });
  EXPECT_TRUE(report.ok) << report.abort_reason;
  EXPECT_GE(report.stats.queue_high_water, 5u);
}

// --- injector unit behaviour ------------------------------------------------

TEST(FaultInjector, RulesFireOnceAndRecordEvents) {
  FaultPlan plan;
  plan.kill_at(KillPoint::before_send, 0, 2);
  minimpi::FaultInjector injector(std::move(plan));

  injector.on_point(KillPoint::before_send, 0);  // visit 1 of 2: no fire
  EXPECT_THROW(injector.on_point(KillPoint::before_send, 0),
               minimpi::FaultInjectedError);
  // One-shot: the rule never fires again.
  injector.on_point(KillPoint::before_send, 0);
  injector.on_point(KillPoint::before_send, 0);

  const std::vector<minimpi::FaultEvent> events = injector.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events.front().world_rank, 0);
  EXPECT_NE(events.front().description.find("before_send"), std::string::npos);
}

TEST(FaultInjector, OtherRanksAndPointsDoNotMatch) {
  FaultPlan plan;
  plan.kill_at(KillPoint::after_recv, 3);
  minimpi::FaultInjector injector(std::move(plan));
  injector.on_point(KillPoint::after_recv, 2);    // wrong rank
  injector.on_point(KillPoint::before_recv, 3);   // wrong point
  EXPECT_TRUE(injector.events().empty());
  EXPECT_THROW(injector.on_point(KillPoint::after_recv, 3),
               minimpi::FaultInjectedError);
}

}  // namespace
