// MIME ensemble member isolation: with HandshakeOptions::isolate_instances,
// an injected failure inside one ensemble member aborts ONLY that member's
// failure domain.  The sibling members and the statistics component run to
// completion, the statistics aggregate the survivors and name the dead
// member, and the liveness API (ping / failure_of / require_alive) reports
// the structured failure.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/climate/scenario.hpp"
#include "src/minimpi/fault.hpp"
#include "tests/mph/mph_test_util.hpp"

namespace {

using minimpi::Comm;
using minimpi::JobReport;
using mph::Mph;
using mph::testing::TestExec;

const std::string kRegistry = R"(BEGIN
Multi_Instance_Begin
Ocean1 0 1 diff=0.5
Ocean2 2 3 diff=0.8
Ocean3 4 5 diff=1.3
Ocean4 6 7 diff=2.0
Multi_Instance_End
statistics
END
)";

constexpr int kIntervals = 5;
constexpr int kKillInterval = 2;
constexpr minimpi::rank_t kVictimRank = 4;  ///< Ocean3's first world rank

mph::climate::ClimateConfig small_config() {
  mph::climate::ClimateConfig cfg;
  cfg.ocn_nlon = 18;
  cfg.ocn_nlat = 9;
  cfg.steps_per_interval = 2;
  cfg.intervals = kIntervals;
  return cfg;
}

/// Results observed by the surviving ranks, keyed by component name.
struct Observed {
  std::mutex mutex;
  std::map<std::string, std::size_t> member_intervals;  ///< my_means.size()
  mph::climate::EnsembleResult stats;
  bool stats_finalize_clean = false;
  bool ocean3_ping = true;
  std::string require_alive_error;
  int failed_world_rank = -2;
  std::string failed_operation;
};

JobReport run_isolated_ensemble(Observed& observed) {
  mph::HandshakeOptions handshake;
  handshake.isolate_instances = true;

  minimpi::JobOptions job = mph::testing::test_job_options();
  job.faults.kill_at_step(kVictimRank, kKillInterval);

  TestExec members{
      {}, "Ocean", 8, [&observed](Mph& h, const Comm&) {
        const mph::climate::EnsembleResult result =
            mph::climate::run_ensemble_instance(h, small_config(),
                                                "statistics");
        const std::lock_guard<std::mutex> lock(observed.mutex);
        auto& slot = observed.member_intervals[h.comp_name()];
        slot = std::max(slot, result.my_means.size());
      }};
  TestExec statistics{
      {"statistics"}, "", 1, [&observed](Mph& h, const Comm&) {
        mph::climate::EnsembleResult result =
            mph::climate::run_ensemble_statistics(h, small_config(), "Ocean",
                                                  0.5);
        const bool ping = h.ping("Ocean3");
        std::string require_error;
        try {
          h.require_alive("Ocean3");
        } catch (const mph::ComponentFailedError& ex) {
          require_error = ex.what();
          const std::lock_guard<std::mutex> lock(observed.mutex);
          observed.failed_world_rank = ex.world_rank();
          observed.failed_operation = ex.operation();
        }
        const Mph::FinalizeReport fin = h.finalize();
        const std::lock_guard<std::mutex> lock(observed.mutex);
        observed.stats = std::move(result);
        observed.stats_finalize_clean = fin.clean();
        observed.ocean3_ping = ping;
        observed.require_alive_error = require_error;
      }};

  return mph::testing::run_mph_job(kRegistry, {members, statistics},
                                   handshake, std::move(job));
}

TEST(MimeIsolation, KilledMemberIsContainedAndSurvivorsComplete) {
  Observed observed;
  const JobReport report = run_isolated_ensemble(observed);

  // The job as a whole succeeded: no job-wide abort, failures contained.
  EXPECT_TRUE(report.ok) << report.abort_reason << " / "
                         << report.first_error();
  EXPECT_TRUE(report.failures.empty());
  EXPECT_FALSE(report.abort.has_value());

  // Exactly Ocean3's two ranks died: the injected kill plus its partner's
  // collateral unwind, both attributed to the member.
  ASSERT_EQ(report.contained.size(), 2u);
  for (const minimpi::RankFailure& f : report.contained) {
    EXPECT_TRUE(f.world_rank == 4 || f.world_rank == 5) << f.world_rank;
    EXPECT_EQ(f.component, "Ocean3");
  }
  EXPECT_EQ(report.contained.front().world_rank, kVictimRank);
  EXPECT_EQ(report.contained.front().operation, "step");

  // The three surviving members ran every interval.
  for (const std::string name : {"Ocean1", "Ocean2", "Ocean4"}) {
    ASSERT_TRUE(observed.member_intervals.contains(name)) << name;
    EXPECT_EQ(observed.member_intervals.at(name),
              static_cast<std::size_t>(kIntervals))
        << name;
  }
  // Ocean3's ranks unwound out of run_ensemble_instance via the injected
  // kill, so they never reached the recording code below the call.
  EXPECT_FALSE(observed.member_intervals.contains("Ocean3"));

  // The statistics component completed every interval, aggregating the
  // survivors, and reports the dead member by name.
  EXPECT_EQ(observed.stats.snapshots.size(),
            static_cast<std::size_t>(kIntervals));
  ASSERT_EQ(observed.stats.failed_members.size(), 1u);
  EXPECT_EQ(observed.stats.failed_members.front(), "Ocean3");

  // Liveness API: ping is false, require_alive throws the structured error.
  EXPECT_FALSE(observed.ocean3_ping);
  EXPECT_EQ(observed.failed_world_rank, kVictimRank);
  EXPECT_EQ(observed.failed_operation, "step");
  EXPECT_NE(observed.require_alive_error.find("Ocean3"), std::string::npos)
      << observed.require_alive_error;

  // The statistics rank left no communication debt behind.
  EXPECT_TRUE(observed.stats_finalize_clean);
}

TEST(MimeIsolation, NoInjectionRunsCleanWithIsolationEnabled) {
  // Isolation is inert without a failure: same job, no fault plan.
  mph::HandshakeOptions handshake;
  handshake.isolate_instances = true;

  bool saw_failed_members = false;
  TestExec members{{}, "Ocean", 8, [](Mph& h, const Comm&) {
                     (void)mph::climate::run_ensemble_instance(
                         h, small_config(), "statistics");
                   }};
  TestExec statistics{
      {"statistics"}, "", 1, [&saw_failed_members](Mph& h, const Comm&) {
        const mph::climate::EnsembleResult result =
            mph::climate::run_ensemble_statistics(h, small_config(), "Ocean",
                                                  0.5);
        saw_failed_members = !result.failed_members.empty();
        EXPECT_EQ(result.snapshots.size(),
                  static_cast<std::size_t>(kIntervals));
      }};
  const JobReport report =
      mph::testing::run_mph_job(kRegistry, {members, statistics}, handshake);
  EXPECT_TRUE(report.ok) << report.abort_reason;
  EXPECT_TRUE(report.contained.empty());
  EXPECT_EQ(report.leaked_envelopes, 0u);
  EXPECT_FALSE(saw_failed_members);
}

}  // namespace
