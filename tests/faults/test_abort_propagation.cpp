// A rank throwing while its peers sit in a collective must unwind EVERY
// other rank with AbortedError — no hang, no stranded thread — in all five
// integration modes (SCSE, SCME, MCSE, MCME, MIME).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "src/minimpi/collectives.hpp"
#include "tests/mph/mph_test_util.hpp"

namespace {

using minimpi::Comm;
using minimpi::JobReport;
using mph::Mph;
using mph::testing::TestExec;

constexpr int kThrower = 1;  ///< world rank that fails (first executable)

struct ModeCase {
  std::string name;
  std::string registry;
  int total_ranks;
};

const std::vector<ModeCase>& modes() {
  static const std::vector<ModeCase> kModes = {
      {"SCSE", "BEGIN\nocean\nEND\n", 4},
      {"SCME", "BEGIN\natmosphere\nocean\nEND\n", 4},
      {"MCSE",
       "BEGIN\nMulti_Component_Begin\natmosphere 0 1\nocean 2 3\n"
       "Multi_Component_End\nEND\n",
       4},
      {"MCME",
       "BEGIN\nMulti_Component_Begin\natmosphere 0 0\nland 1 1\n"
       "Multi_Component_End\nocean\nEND\n",
       4},
      {"MIME",
       "BEGIN\nMulti_Instance_Begin\nOcean1 0 1\nOcean2 2 3\n"
       "Multi_Instance_End\nstatistics\nEND\n",
       5},
  };
  return kModes;
}

std::vector<TestExec> make_execs(const std::string& mode,
                                 std::function<void(Mph&, const Comm&)> body) {
  if (mode == "SCSE") return {TestExec{{"ocean"}, "", 4, body}};
  if (mode == "SCME") {
    return {TestExec{{"atmosphere"}, "", 2, body},
            TestExec{{"ocean"}, "", 2, body}};
  }
  if (mode == "MCSE") return {TestExec{{"atmosphere", "ocean"}, "", 4, body}};
  if (mode == "MCME") {
    return {TestExec{{"atmosphere", "land"}, "", 2, body},
            TestExec{{"ocean"}, "", 2, body}};
  }
  return {TestExec{{}, "Ocean", 4, body},
          TestExec{{"statistics"}, "", 1, body}};  // MIME
}

/// Rank kThrower raises; everyone else enters the collective and then a
/// receive that can only end via the abort protocol.
std::function<void(Mph&, const Comm&)> make_body(bool use_allgather) {
  return [use_allgather](Mph&, const Comm& world) {
    if (world.rank() == kThrower) throw std::runtime_error("boom");
    if (use_allgather) {
      (void)minimpi::allgather_strings(world, "x");
    } else {
      minimpi::barrier(world);
    }
    // Backstop: kThrower never sends this, so any rank that slipped through
    // the collective still blocks until the abort wakes it.
    int never = 0;
    world.recv(never, kThrower, 999);
  };
}

void expect_all_unwound(const JobReport& report, const ModeCase& mode) {
  EXPECT_FALSE(report.ok);
  ASSERT_TRUE(report.abort.has_value());
  EXPECT_EQ(report.abort->world_rank, kThrower);
  EXPECT_EQ(report.abort->operation, "user code");
  EXPECT_TRUE(report.contained.empty());
  // Every rank is accounted for: one root cause plus collateral unwinds.
  ASSERT_EQ(static_cast<int>(report.failures.size()), mode.total_ranks);
  EXPECT_NE(report.failures.front().what.find("boom"), std::string::npos);
  for (std::size_t i = 1; i < report.failures.size(); ++i) {
    EXPECT_NE(report.failures[i].what.find("aborted"), std::string::npos)
        << report.failures[i].what;
  }
}

TEST(AbortPropagation, ThrowMidBarrierUnwindsEveryRankInEveryMode) {
  for (const ModeCase& mode : modes()) {
    SCOPED_TRACE(mode.name);
    const JobReport report = mph::testing::run_mph_job(
        mode.registry, make_execs(mode.name, make_body(false)));
    expect_all_unwound(report, mode);
  }
}

TEST(AbortPropagation, ThrowMidAllgatherUnwindsEveryRankInEveryMode) {
  for (const ModeCase& mode : modes()) {
    SCOPED_TRACE(mode.name);
    const JobReport report = mph::testing::run_mph_job(
        mode.registry, make_execs(mode.name, make_body(true)));
    expect_all_unwound(report, mode);
  }
}

}  // namespace
