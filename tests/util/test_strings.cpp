// Unit tests for the string utilities underpinning the registry parser.
#include "src/util/strings.hpp"

#include <gtest/gtest.h>

namespace u = mph::util;

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(u::trim("  hello  "), "hello");
  EXPECT_EQ(u::trim("\t\r\nocean\n"), "ocean");
  EXPECT_EQ(u::trim("atmosphere"), "atmosphere");
}

TEST(Trim, EmptyAndAllWhitespace) {
  EXPECT_EQ(u::trim(""), "");
  EXPECT_EQ(u::trim("   \t  "), "");
}

TEST(Trim, PreservesInteriorWhitespace) {
  EXPECT_EQ(u::trim("  a b  "), "a b");
}

TEST(SplitWs, BasicTokens) {
  const auto tokens = u::split_ws("atmosphere 0 15");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "atmosphere");
  EXPECT_EQ(tokens[1], "0");
  EXPECT_EQ(tokens[2], "15");
}

TEST(SplitWs, CollapsesRuns) {
  const auto tokens = u::split_ws("  ocean \t 16   31  ");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "ocean");
}

TEST(SplitWs, EmptyInputGivesNoTokens) {
  EXPECT_TRUE(u::split_ws("").empty());
  EXPECT_TRUE(u::split_ws("   ").empty());
}

TEST(Split, PreservesEmptyFields) {
  const auto fields = u::split("a,,b", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
}

TEST(Split, TrailingDelimiter) {
  const auto fields = u::split("a,b,", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[2], "");
}

TEST(StripComment, FortranBang) {
  EXPECT_EQ(u::strip_comment("coupler   ! a single-comp exec"),
            "coupler   ");
}

TEST(StripComment, HashStyle) {
  EXPECT_EQ(u::strip_comment("ocean 0 15 # note"), "ocean 0 15 ");
}

TEST(StripComment, NoComment) {
  EXPECT_EQ(u::strip_comment("atmosphere 0 15"), "atmosphere 0 15");
}

TEST(StripComment, WholeLineComment) {
  EXPECT_EQ(u::trim(u::strip_comment("! only a comment")), "");
}

TEST(IEquals, CaseInsensitive) {
  EXPECT_TRUE(u::iequals("BEGIN", "begin"));
  EXPECT_TRUE(u::iequals("Multi_Component_Begin", "MULTI_COMPONENT_BEGIN"));
  EXPECT_FALSE(u::iequals("BEGIN", "BEGIN "));
  EXPECT_FALSE(u::iequals("ocean", "ocear"));
}

TEST(ParseInt, ValidValues) {
  EXPECT_EQ(u::parse_int("0"), 0);
  EXPECT_EQ(u::parse_int("15"), 15);
  EXPECT_EQ(u::parse_int("-3"), -3);
  EXPECT_EQ(u::parse_int("  42  "), 42);
}

TEST(ParseInt, RejectsGarbage) {
  EXPECT_FALSE(u::parse_int("").has_value());
  EXPECT_FALSE(u::parse_int("12a").has_value());
  EXPECT_FALSE(u::parse_int("a12").has_value());
  EXPECT_FALSE(u::parse_int("1.5").has_value());
  EXPECT_FALSE(u::parse_int("1 2").has_value());
}

TEST(ParseDouble, ValidValues) {
  EXPECT_DOUBLE_EQ(u::parse_double("4.5").value(), 4.5);
  EXPECT_DOUBLE_EQ(u::parse_double("-0.25").value(), -0.25);
  EXPECT_DOUBLE_EQ(u::parse_double("3").value(), 3.0);
  EXPECT_DOUBLE_EQ(u::parse_double("1e3").value(), 1000.0);
}

TEST(ParseDouble, RejectsGarbage) {
  EXPECT_FALSE(u::parse_double("").has_value());
  EXPECT_FALSE(u::parse_double("4.5x").has_value());
  EXPECT_FALSE(u::parse_double("finite_volume").has_value());
}

TEST(ParseBool, PaperSpellings) {
  // The paper's example uses debug=on / debug=off.
  EXPECT_EQ(u::parse_bool("on"), true);
  EXPECT_EQ(u::parse_bool("off"), false);
  EXPECT_EQ(u::parse_bool("TRUE"), true);
  EXPECT_EQ(u::parse_bool("False"), false);
  EXPECT_EQ(u::parse_bool("yes"), true);
  EXPECT_EQ(u::parse_bool("no"), false);
  EXPECT_EQ(u::parse_bool("1"), true);
  EXPECT_EQ(u::parse_bool("0"), false);
  EXPECT_FALSE(u::parse_bool("maybe").has_value());
}

TEST(SplitKeyValue, Basics) {
  const auto kv = u::split_key_value("alpha=3");
  ASSERT_TRUE(kv.has_value());
  EXPECT_EQ(kv->first, "alpha");
  EXPECT_EQ(kv->second, "3");
}

TEST(SplitKeyValue, EmptyValueAllowed) {
  const auto kv = u::split_key_value("flag=");
  ASSERT_TRUE(kv.has_value());
  EXPECT_EQ(kv->first, "flag");
  EXPECT_EQ(kv->second, "");
}

TEST(SplitKeyValue, RejectsPositionalAndEmptyKey) {
  EXPECT_FALSE(u::split_key_value("infile3").has_value());
  EXPECT_FALSE(u::split_key_value("=value").has_value());
}

TEST(SplitKeyValue, ValueMayContainEquals) {
  const auto kv = u::split_key_value("expr=a=b");
  ASSERT_TRUE(kv.has_value());
  EXPECT_EQ(kv->first, "expr");
  EXPECT_EQ(kv->second, "a=b");
}

TEST(ValidComponentName, AcceptsPaperNames) {
  for (const char* name : {"atmosphere", "ocean", "NCAR_atm", "UCLA_atm",
                           "Ocean1", "coupler", "land-surface"}) {
    EXPECT_TRUE(u::valid_component_name(name)) << name;
  }
}

TEST(ValidComponentName, RejectsKeywordsAndMalformed) {
  for (const char* name :
       {"", "BEGIN", "end", "Multi_Component_Begin", "multi_instance_end",
        "has space", "key=value", "with!bang"}) {
    EXPECT_FALSE(u::valid_component_name(name)) << name;
  }
}

TEST(Join, Basic) {
  EXPECT_EQ(u::join({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(u::join({}, ","), "");
  EXPECT_EQ(u::join({"solo"}, ","), "solo");
}

TEST(StartsWith, Basic) {
  EXPECT_TRUE(u::starts_with("Ocean1", "Ocean"));
  EXPECT_FALSE(u::starts_with("ocean1", "Ocean"));
  EXPECT_FALSE(u::starts_with("Oce", "Ocean"));
  EXPECT_TRUE(u::starts_with("anything", ""));
}
