// JSON parser unit tests, including the line:column diagnostics contract
// that `mph_proto conform` / `mph_inspect trace` error messages rely on.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "src/util/json.hpp"

namespace u = mph::util;

namespace {

/// Parse and return the failure message (the input must be malformed).
std::string parse_error(std::string_view text) {
  try {
    (void)u::JsonValue::parse(text);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  ADD_FAILURE() << "input parsed successfully: " << text;
  return {};
}

}  // namespace

TEST(Json, ParsesScalarsAndContainers) {
  const u::JsonValue doc = u::JsonValue::parse(
      R"({"a": 1.5, "b": [true, null, "x\n"], "c": {"d": -3}})");
  EXPECT_DOUBLE_EQ(doc.at("a").as_number(), 1.5);
  EXPECT_TRUE(doc.at("b").at(0).as_bool());
  EXPECT_TRUE(doc.at("b").at(1).is_null());
  EXPECT_EQ(doc.at("b").at(2).as_string(), "x\n");
  EXPECT_EQ(doc.at("c").at("d").as_int(), -3);
}

TEST(Json, ErrorsReportLineAndColumnNotByteOffset) {
  // Regression for the multiline case: the bad token sits on line 4, and
  // the report must say so instead of printing a byte offset nobody can
  // map back to a position in an editor.
  const std::string text =
      "{\n"
      "  \"events\": [\n"
      "    {\"name\": \"send\"},\n"
      "    {\"name\": oops}\n"
      "  ]\n"
      "}\n";
  const std::string what = parse_error(text);
  EXPECT_NE(what.find("line 4"), std::string::npos) << what;
  EXPECT_NE(what.find("column 14"), std::string::npos) << what;
  EXPECT_EQ(what.find("byte"), std::string::npos) << what;
}

TEST(Json, ErrorOnFirstLineIsColumnAccurate) {
  const std::string what = parse_error("[1, 2, }");
  EXPECT_NE(what.find("line 1"), std::string::npos) << what;
  EXPECT_NE(what.find("column 8"), std::string::npos) << what;
}

TEST(Json, TrailingGarbageNamesItsPosition) {
  const std::string what = parse_error("{}\n{}");
  EXPECT_NE(what.find("trailing characters"), std::string::npos) << what;
  EXPECT_NE(what.find("line 2"), std::string::npos) << what;
}

TEST(Json, UnterminatedStringPointsPastTheOpeningQuote) {
  const std::string what = parse_error("{\"key\": \"value");
  EXPECT_NE(what.find("unterminated string"), std::string::npos) << what;
  EXPECT_NE(what.find("line 1"), std::string::npos) << what;
}
