// Unit tests for Timer, StatAccumulator, Rng, and diagnostics.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "src/util/diagnostics.hpp"
#include "src/util/rng.hpp"
#include "src/util/timer.hpp"

namespace u = mph::util;

TEST(Timer, MeasuresElapsedTime) {
  u::Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const double s = t.seconds();
  EXPECT_GE(s, 0.009);
  EXPECT_LT(s, 5.0);  // generous bound for loaded CI machines
}

TEST(Timer, ResetRestarts) {
  u::Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  t.reset();
  EXPECT_LT(t.seconds(), 0.5);
}

TEST(StatAccumulator, EmptyIsZero) {
  u::StatAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.min(), 0.0);
  EXPECT_EQ(acc.max(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(StatAccumulator, KnownMoments) {
  u::StatAccumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
}

TEST(StatAccumulator, SingleSampleHasZeroVariance) {
  u::StatAccumulator acc;
  acc.add(3.5);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.5);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(Rng, Deterministic) {
  u::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  u::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowRespectsBound) {
  u::Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all buckets hit in 1000 draws
}

TEST(Rng, RangeInclusive) {
  u::Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  u::Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, SplitStreamsAreIndependentlySeeded) {
  u::Rng parent(99);
  u::Rng s0 = parent.split(0);
  u::Rng s1 = parent.split(1);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (s0() == s1()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Diagnostics, ThreadLabelRoundTrip) {
  u::set_thread_label("rank 7 (ocean)");
  EXPECT_EQ(u::thread_label(), "rank 7 (ocean)");
}

TEST(Diagnostics, LevelSetGet) {
  u::set_diag_level(u::DiagLevel::info);
  EXPECT_EQ(u::diag_level(), u::DiagLevel::info);
  u::set_diag_level(u::DiagLevel::warn);
  EXPECT_EQ(u::diag_level(), u::DiagLevel::warn);
}

TEST(Diagnostics, EmitBelowThresholdIsSilentAndSafe) {
  u::set_diag_level(u::DiagLevel::off);
  // Must not crash or throw.
  MPH_DIAG_LOG(trace) << "invisible " << 42;
  u::set_diag_level(u::DiagLevel::warn);
}
