// mph_racer — exhaustive weak-memory model checking for the repo's
// lock-free layer (src/minimpi/racer/).
//
// Usage:
//   mph_racer list
//       Print every registered litmus with its summary, pinned bounds,
//       and expectation.
//
//   mph_racer <litmus>|all [options]
//       Explore the named litmus (or every registered one) over the
//       modeled C++11 memory-model fragment: every thread interleaving
//       within the preemption bound crossed with every allowed
//       reads-from / CAS outcome.  Cases registered as expect_failure
//       are seeded bugs the checker must FIND; all others must pass
//       with the exploration complete.
//
//   Options:
//       --max-execs N      execution budget (0 = unlimited; default: the
//                          litmus's pinned bound)
//       --budget-ms N      wall-clock budget (default 0 = unlimited)
//       --preemptions N    context-switch bound (reads-from branching is
//                          never bounded; default: pinned bound)
//       --max-steps N      per-execution atomic-op cap (spin-loop trap)
//       --require-complete exit 1 unless every exploration exhausted its
//                          frontier (the CI gate always sets this)
//       --allow-incomplete budgeted-sweep mode: a truncated exploration
//                          that found no violation still passes (mutants
//                          must still be found); "explored N of >= M" in
//                          the report says how much was covered
//       --dump-trace FILE  write the first counterexample as a JSON
//                          decision trace (replayable with --schedule)
//       --schedule FILE    replay a dumped trace against its litmus
//                          instead of exploring
//
// Exit status: 0 every litmus met its expectation, 1 an expectation was
// not met (a pass-case failed, a mutant went unfound, or an exploration
// was incomplete under --require-complete), 2 on usage errors, replay
// divergence, or internal errors.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/minimpi/racer/litmus.hpp"
#include "src/util/json.hpp"

namespace {

using minimpi::racer::Decision;
using minimpi::racer::LitmusCase;
using minimpi::racer::RacerOptions;
using minimpi::racer::RacerReport;

struct Args {
  std::string target;
  RacerOptions overrides;
  bool have_overrides = false;
  bool require_complete = false;
  bool allow_incomplete = false;
  std::string dump_trace;
  std::string schedule;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s list\n"
               "       %s <litmus>|all [--max-execs N] [--budget-ms N]\n"
               "           [--preemptions N] [--max-steps N]\n"
               "           [--require-complete | --allow-incomplete]\n"
               "           [--dump-trace FILE]\n"
               "           [--schedule FILE]\n",
               argv0, argv0);
  std::exit(2);
}

std::uint64_t parse_u64(const std::string& text) {
  std::size_t pos = 0;
  const unsigned long long v = std::stoull(text, &pos);
  if (pos != text.size()) throw std::invalid_argument(text);
  return static_cast<std::uint64_t>(v);
}

/// Parse a trace dumped by --dump-trace (trace_to_json): the decision
/// stack plus the litmus name it belongs to.
std::pair<std::string, std::vector<Decision>> load_schedule(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open schedule file: " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const mph::util::JsonValue doc = mph::util::JsonValue::parse(buffer.str());
  const mph::util::JsonValue* kind = doc.find("kind");
  if (kind == nullptr || kind->as_string() != "mph_racer_trace") {
    throw std::runtime_error(path + ": not an mph_racer_trace document");
  }
  std::vector<Decision> schedule;
  for (const auto& d : doc.at("decisions").items()) {
    Decision dec;
    const std::string& k = d.at("kind").as_string();
    if (k.size() != 1 || (k[0] != 't' && k[0] != 'r' && k[0] != 'c')) {
      throw std::runtime_error(path + ": bad decision kind '" + k + "'");
    }
    dec.kind = k[0];
    dec.chosen = static_cast<int>(d.at("chosen").as_int());
    dec.options = static_cast<int>(d.at("options").as_int());
    dec.pruned = static_cast<int>(d.at("pruned").as_int());
    if (const auto* note = d.find("note")) dec.note = note->as_string();
    schedule.push_back(std::move(dec));
  }
  return {doc.at("litmus").as_string(), std::move(schedule)};
}

void dump_trace(const std::string& path, const RacerReport& report) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write trace file: " + path);
  out << minimpi::racer::trace_to_json(report);
}

int list_cases() {
  for (const LitmusCase& c : minimpi::racer::litmus_cases()) {
    std::printf("%-26s %s%s\n    bounds: max-execs %llu, preemptions %d\n",
                c.name, c.summary,
                c.expect_failure ? "  [expect-failure]" : "",
                static_cast<unsigned long long>(c.bounds.max_executions),
                c.bounds.preemption_bound);
  }
  return 0;
}

/// Explore one case; returns true when it met its expectation.  The first
/// counterexample across the run is dumped to `args.dump_trace` (once).
bool run_one(const LitmusCase& c, const Args& args, bool* trace_dumped) {
  const RacerOptions* overrides =
      args.have_overrides ? &args.overrides : nullptr;
  const RacerReport report = minimpi::racer::run_litmus(c, overrides);
  std::printf("%s\n", report.summary().c_str());
  bool ok = minimpi::racer::litmus_verdict(c, report);
  // Completeness is required of pass-cases; an expect_failure exploration
  // stops at its first counterexample, which is the point.
  if (args.require_complete && !c.expect_failure && !report.complete) {
    ok = false;
  }
  // Budgeted-sweep mode: a pass-case truncated by its budget without a
  // violation (or divergence) still counts — the summary line carries the
  // "explored N of >= M" coverage.  Mutants must still be FOUND.
  if (args.allow_incomplete && !c.expect_failure && !report.failed &&
      report.divergence.empty()) {
    ok = true;
  }
  if (report.failed && !args.dump_trace.empty() && !*trace_dumped) {
    dump_trace(args.dump_trace, report);
    std::printf("  counterexample trace written to %s\n",
                args.dump_trace.c_str());
    *trace_dumped = true;
  }
  if (!ok) {
    std::printf("  EXPECTATION NOT MET: %s\n",
                c.expect_failure
                    ? "seeded bug was not found (or exploration diverged)"
                    : (report.failed ? "invariant violated"
                                     : "exploration incomplete"));
  }
  return ok;
}

int replay_from_file(const Args& args) {
  const auto [litmus, schedule] = load_schedule(args.schedule);
  const LitmusCase* c = minimpi::racer::find_litmus(litmus);
  if (c == nullptr) {
    std::fprintf(stderr, "mph_racer: trace litmus '%s' is not registered\n",
                 litmus.c_str());
    return 2;
  }
  if (args.target != "all" && args.target != litmus) {
    std::fprintf(stderr,
                 "mph_racer: trace belongs to litmus '%s', not '%s'\n",
                 litmus.c_str(), args.target.c_str());
    return 2;
  }
  const RacerOptions* overrides =
      args.have_overrides ? &args.overrides : nullptr;
  const RacerReport report =
      minimpi::racer::replay_litmus(*c, schedule, overrides);
  std::printf("%s\n", report.summary().c_str());
  for (const auto& ev : report.failure_events) {
    std::printf("  t%d  %s\n", ev.tid, ev.text.c_str());
  }
  if (!report.divergence.empty()) return 2;
  // A replayed counterexample is expected to reproduce the failure.
  return report.failed ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage(argv[0]);
  Args args;
  args.target = argv[1];
  if (args.target == "list") {
    if (argc != 2) usage(argv[0]);
    return list_cases();
  }

  try {
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value = [&]() -> std::string {
        if (i + 1 >= argc) usage(argv[0]);
        return argv[++i];
      };
      if (arg == "--max-execs") {
        args.overrides.max_executions = parse_u64(value());
        args.have_overrides = true;
      } else if (arg == "--budget-ms") {
        args.overrides.budget_ms = parse_u64(value());
        args.have_overrides = true;
      } else if (arg == "--preemptions") {
        args.overrides.preemption_bound = static_cast<int>(parse_u64(value()));
        args.have_overrides = true;
      } else if (arg == "--max-steps") {
        args.overrides.max_steps = parse_u64(value());
        args.have_overrides = true;
      } else if (arg == "--require-complete") {
        args.require_complete = true;
      } else if (arg == "--allow-incomplete") {
        args.allow_incomplete = true;
      } else if (arg == "--dump-trace") {
        args.dump_trace = value();
      } else if (arg == "--schedule") {
        args.schedule = value();
      } else {
        usage(argv[0]);
      }
    }

    if (!args.schedule.empty()) return replay_from_file(args);

    std::vector<const LitmusCase*> targets;
    if (args.target == "all") {
      for (const LitmusCase& c : minimpi::racer::litmus_cases()) {
        targets.push_back(&c);
      }
    } else {
      const LitmusCase* c = minimpi::racer::find_litmus(args.target);
      if (c == nullptr) {
        std::fprintf(stderr,
                     "mph_racer: unknown litmus '%s' (try 'list')\n",
                     args.target.c_str());
        return 2;
      }
      targets.push_back(c);
    }

    bool all_ok = true;
    bool trace_dumped = false;
    for (const LitmusCase* c : targets) {
      all_ok = run_one(*c, args, &trace_dumped) && all_ok;
    }
    std::printf("mph_racer: %zu litmus case(s), %s\n", targets.size(),
                all_ok ? "all expectations met" : "EXPECTATIONS NOT MET");
    return all_ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mph_racer: %s\n", e.what());
    return 2;
  }
}
