// mph_inspect — command-line companion for MPH deployments.
//
// Usage:
//   mph_inspect validate <processors_map.in>
//       Parse and validate a registration file; print its structure.
//
//   mph_inspect plan <processors_map.in> <exec>...
//       Dry-run the handshake against a command file, printing the exact
//       Directory the job would build (or the setup error it would die
//       with) — without queueing anything.  Each <exec> is
//           name[,name...]:<nprocs>      a component-declaring executable
//           I:<prefix>:<nprocs>          a multi-instance executable
//       in command-file (rank) order.
//
//   mph_inspect generate-ensemble <prefix> <instances> <ranks_each>
//       Emit a Multi_Instance registration file for an ensemble.
//
//   mph_inspect check <processors_map.in>     (also: --check)
//       Static pre-launch lint: flags overlapping rank ranges (error for
//       Multi_Instance siblings, warning for Multi_Component overlap),
//       duplicate component names, processors no component can reach, and
//       `contract=<file>` arguments naming a missing or unparseable
//       mph_proto contract (error) or one that never declares the
//       referencing component (warning).
//
//   mph_inspect trace <trace.json> [--critical]
//       Summarize an mph_trace export (TraceReport::to_chrome_json): the
//       component-pair traffic matrix, per-context message counts,
//       wildcard-receive count, and the ranks with the most blocked time.
//       --critical appends the five longest critical-path segments (the
//       mph_prof causal analysis; run `mph_prof report` for the full
//       blame breakdown).
//
//   mph_inspect top <mph_monitor.sock | mph_metrics.jsonl> [--once]
//               [--interval=ms]
//       Live top-style view of a running (or finished) monitored job:
//       per-component rank counts, message/byte rates, queue depths, and
//       blocked-time share, refreshed from the monitor's AF_UNIX socket or
//       its JSONL snapshot stream.  --once prints a single frame.
//
//   mph_inspect watch <sock | metrics.jsonl | health.jsonl>... [--once]
//               [--interval=ms]
//       Aggregate the metrics and mph_watch health streams of SEVERAL jobs
//       into one console: a summary line and the active alerts per job,
//       then the jobs' recent health events merged on their wall-clock
//       stamps.  Each source is a monitor socket, a metrics JSONL, or a
//       health JSONL; the missing half is read from the sibling file.
//
//   mph_inspect lint [<dir>]
//       Atomics lint for the lock-free layer (default dir: src/minimpi).
//       Flags raw `std::atomic` uses outside the mph_racer shim — the
//       shim is what makes the code model-checkable, so every atomic in
//       the layer must go through mph::atomic — and explicit
//       `memory_order_seq_cst` on the hot paths (the layer's protocols
//       are specified in release/acquire/relaxed terms; seq_cst usually
//       hides a missing ordering argument).  A `racer-lint: allow`
//       comment on the same or the preceding line waives a finding.
//
// Exit status: 0 on success, 1 on validation/plan/check failure, 2 on usage.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/minimpi/prof/profile.hpp"
#include "src/minimpi/prof/trace_load.hpp"
#include "src/mph/builder.hpp"
#include "src/mph/errors.hpp"
#include "src/mph/layout.hpp"
#include "src/mph/monitor.hpp"
#include "src/mph/registry.hpp"
#include "src/proto/contract.hpp"
#include "src/proto/parser.hpp"
#include "src/util/json.hpp"
#include "src/util/strings.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: mph_inspect validate <file>\n"
               "       mph_inspect plan <file> <names[,names]:<nprocs> | "
               "I:<prefix>:<nprocs>>...\n"
               "       mph_inspect generate-ensemble <prefix> <instances> "
               "<ranks_each>\n"
               "       mph_inspect check <file>\n"
               "       mph_inspect trace <trace.json> [--critical]\n"
               "       mph_inspect top <mph_monitor.sock | mph_metrics.jsonl>"
               " [--once] [--interval=ms]\n"
               "       mph_inspect watch <sock | metrics.jsonl | "
               "health.jsonl>... [--once] [--interval=ms]\n"
               "       mph_inspect lint [<dir>]\n");
  return 2;
}

// ---------------------------------------------------------------------------
// lint — atomics discipline for the lock-free layer
// ---------------------------------------------------------------------------

/// The marker that waives a lint finding on its own line or the next one.
constexpr std::string_view kLintAllow = "racer-lint: allow";

/// One banned token plus the reason shown with a finding.
struct LintRule {
  std::string_view token;
  std::string_view message;
};

constexpr LintRule kLintRules[] = {
    {"std::atomic",
     "raw std::atomic in the lock-free layer — use mph::atomic "
     "(src/minimpi/racer/atomic.hpp) so mph_racer can model it"},
    {"memory_order_seq_cst",
     "explicit memory_order_seq_cst on a hot path — state the protocol's "
     "actual ordering (release/acquire/relaxed); see DESIGN.md §14"},
};

/// True when `text` contains `token` outside of any // comment (the code
/// part is everything before the first "//"; this codebase has no /* */
/// comments or "//" inside string literals on atomic-bearing lines).
bool code_part_contains(std::string_view text, std::string_view token) {
  const std::size_t comment = text.find("//");
  return text.substr(0, comment).find(token) != std::string_view::npos;
}

int cmd_lint(const std::string& root) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(root)) {
    std::fprintf(stderr, "mph_inspect: lint: not a directory: %s\n",
                 root.c_str());
    return 2;
  }
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& p = entry.path();
    if (p.extension() != ".hpp" && p.extension() != ".cpp") continue;
    // The shim itself is the one sanctioned home of raw std::atomic (its
    // fallback word and the racer-off alias).
    if (p.filename() == "atomic.hpp" &&
        p.parent_path().filename() == "racer") {
      continue;
    }
    files.push_back(p);
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    // An empty scan passing silently would make the CI gate vacuous
    // (e.g. lint run from the build directory instead of the repo root).
    std::fprintf(stderr, "mph_inspect: lint: no .hpp/.cpp files under %s\n",
                 root.c_str());
    return 2;
  }

  int findings = 0;
  for (const fs::path& path : files) {
    std::ifstream in(path);
    std::string line;
    std::string prev;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      const bool waived =
          line.find(kLintAllow) != std::string::npos ||
          prev.find(kLintAllow) != std::string::npos;
      for (const LintRule& rule : kLintRules) {
        if (!waived && code_part_contains(line, rule.token)) {
          std::printf("%s:%d: %s\n", path.c_str(), lineno,
                      std::string(rule.message).c_str());
          ++findings;
        }
      }
      prev = line;
    }
  }
  if (findings != 0) {
    std::printf(
        "mph_inspect lint: %d finding(s) in %s (waive a deliberate use "
        "with a '%s' comment on the same or preceding line)\n",
        findings, root.c_str(), std::string(kLintAllow).c_str());
    return 1;
  }
  std::printf("mph_inspect lint: %zu file(s) clean in %s\n", files.size(),
              root.c_str());
  return 0;
}

int cmd_validate(const std::string& path) {
  const mph::Registry registry = mph::Registry::load(path);
  std::printf("%s: OK — %d executable entr%s, %d component%s\n", path.c_str(),
              registry.num_executables(),
              registry.num_executables() == 1 ? "y" : "ies",
              registry.total_components(),
              registry.total_components() == 1 ? "" : "s");
  for (const mph::ExecutableBlock& block : registry.blocks()) {
    std::printf("  [%s]%s\n", mph::block_kind_name(block.kind),
                block.required_size() > 0
                    ? (" " + std::to_string(block.required_size()) +
                       " processors")
                          .c_str()
                    : " size from launcher");
    for (const mph::ComponentEntry& c : block.components) {
      std::printf("    %-16s", c.name.c_str());
      if (c.has_range()) std::printf(" %d..%d", c.low, c.high);
      for (const std::string& token : c.args.to_tokens()) {
        std::printf(" %s", token.c_str());
      }
      std::printf("\n");
    }
  }
  return 0;
}

/// Parse "a,b:4" or "I:Ocean:12" into a PlannedExecutable.
mph::PlannedExecutable parse_exec_spec(const std::string& spec) {
  mph::PlannedExecutable exec;
  std::string_view rest = spec;
  if (mph::util::starts_with(rest, "I:")) {
    exec.is_instance = true;
    rest.remove_prefix(2);
  }
  const std::size_t colon = rest.rfind(':');
  if (colon == std::string_view::npos) {
    throw mph::MphError("bad executable spec '" + spec +
                        "' (expected names:<nprocs>)");
  }
  const auto nprocs = mph::util::parse_int(rest.substr(colon + 1));
  if (!nprocs.has_value() || *nprocs <= 0) {
    throw mph::MphError("bad process count in '" + spec + "'");
  }
  exec.nprocs = static_cast<int>(*nprocs);
  for (std::string_view name : mph::util::split(rest.substr(0, colon), ',')) {
    exec.names.emplace_back(name);
  }
  if (exec.names.empty() || exec.names.front().empty()) {
    throw mph::MphError("no component names in '" + spec + "'");
  }
  return exec;
}

int cmd_plan(const std::string& path, const std::vector<std::string>& specs) {
  const mph::Registry registry = mph::Registry::load(path);
  std::vector<mph::PlannedExecutable> job;
  int total = 0;
  for (const std::string& spec : specs) {
    job.push_back(parse_exec_spec(spec));
    total += job.back().nprocs;
  }
  const mph::Directory directory = mph::plan_layout(registry, job);
  std::printf("plan OK — %d processes\n%s", total,
              directory.describe().c_str());
  return 0;
}

int cmd_check(const std::string& path) {
  int errors = 0;
  int warnings = 0;
  const auto finding = [&](bool is_error, const std::string& text) {
    std::printf("%s: %s: %s\n", path.c_str(), is_error ? "error" : "warning",
                text.c_str());
    (is_error ? errors : warnings) += 1;
  };
  const auto summary = [&] {
    std::printf("%s: %d error(s), %d warning(s)\n", path.c_str(), errors,
                warnings);
    return errors > 0 ? 1 : 0;
  };

  std::optional<mph::Registry> registry;
  try {
    registry.emplace(mph::Registry::load(path));
  } catch (const std::exception& e) {
    // The parser already rejects duplicate component names, malformed
    // ranges, and broken block structure; surface those as check findings.
    finding(true, e.what());
    return summary();
  }

  const auto describe = [](const mph::ComponentEntry& c) {
    std::string out = "'" + c.name + "'";
    if (c.has_range()) {
      out += " (" + std::to_string(c.low) + ".." + std::to_string(c.high) + ")";
    }
    return out;
  };

  for (const mph::ExecutableBlock& block : registry->blocks()) {
    const char* kind = mph::block_kind_name(block.kind);

    // Overlapping rank ranges between sibling components of one executable.
    // Multi_Instance members must be disjoint (each instance owns its
    // processors exclusively); Multi_Component overlap is legal by the
    // paper's §4.2 embedded-component layout but worth a warning.
    for (std::size_t i = 0; i < block.components.size(); ++i) {
      const mph::ComponentEntry& a = block.components[i];
      if (!a.has_range()) continue;
      for (std::size_t j = i + 1; j < block.components.size(); ++j) {
        const mph::ComponentEntry& b = block.components[j];
        if (!b.has_range()) continue;
        if (a.low <= b.high && b.low <= a.high) {
          const bool is_error =
              block.kind == mph::BlockKind::multi_instance;
          finding(is_error,
                  std::string(kind) + " entries " + describe(a) + " and " +
                      describe(b) + " claim overlapping processors" +
                      (is_error ? "" : " (legal for embedded components — "
                                       "verify this is intended)"));
        }
      }
    }

    // Contract references: a `contract=<file>` argument names an mph_proto
    // communication contract (relative paths resolve against the registry
    // file's directory).  A missing or unparseable contract is an error —
    // it would fail every pinned executable at registration time — and a
    // contract that never declares the referencing component is a warning.
    for (const mph::ComponentEntry& c : block.components) {
      std::string contract_path;
      if (!c.args.get("contract", contract_path)) continue;
      namespace fs = std::filesystem;
      fs::path resolved(contract_path);
      if (resolved.is_relative()) {
        resolved = fs::path(path).parent_path() / resolved;
      }
      try {
        const mph::proto::Contract contract =
            mph::proto::load_contract(resolved.string());
        if (contract.find_component(c.name) == nullptr) {
          finding(false, "component " + describe(c) + " pins contract '" +
                             contract_path + "' (contract '" + contract.name +
                             "') which never declares a component named '" +
                             c.name + "'");
        }
      } catch (const std::exception& e) {
        finding(true, "component " + describe(c) + " pins contract '" +
                          contract_path +
                          "' which cannot be loaded: " + e.what());
      }
    }

    // Processors of the executable that no component claims: ranks a
    // launcher must provide but nothing can ever address ("unreachable").
    const int size = block.required_size();
    if (size > 0) {
      std::vector<bool> covered(static_cast<std::size_t>(size), false);
      for (const mph::ComponentEntry& c : block.components) {
        if (!c.has_range()) continue;
        for (int p = c.low; p <= c.high && p < size; ++p) {
          covered[static_cast<std::size_t>(p)] = true;
        }
      }
      for (int p = 0; p < size; ++p) {
        if (covered[static_cast<std::size_t>(p)]) continue;
        int q = p;
        while (q + 1 < size && !covered[static_cast<std::size_t>(q) + 1]) ++q;
        finding(true, "processors " + std::to_string(p) + ".." +
                          std::to_string(q) + " of a " + kind +
                          " executable of size " + std::to_string(size) +
                          " are unreachable (no component claims them)");
        p = q;
      }
    }
  }
  return summary();
}

std::string format_ms(double ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ns / 1e6);
  return buf;
}

int cmd_trace(const std::string& path, bool critical) {
  std::ifstream in(path);
  if (!in) {
    throw mph::MphError("cannot open trace file '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  // A monitor snapshot stream is also JSON-per-line and easy to pass here
  // by mistake; without this check it would "summarize" as an empty trace
  // (or die on a parse error).  Name the right subcommand instead.
  if (mph::mon::looks_like_metrics(buffer.str())) {
    throw mph::MphError(
        "'" + path + "' is an mph_mon metrics stream (JSONL lines with "
        "\"kind\": \"mph_metrics\"), not a Chrome trace export — view it "
        "with `mph_inspect top " + path + "`; `mph_inspect trace` expects "
        "the output of TraceReport::to_chrome_json()");
  }
  const mph::util::JsonValue doc = mph::util::JsonValue::parse(buffer.str());

  const mph::util::JsonValue* mph_obj = doc.find("mph");
  if (mph_obj == nullptr) {
    throw mph::MphError(
        "'" + path +
        "' has no \"mph\" metrics object — was it produced by "
        "TraceReport::to_chrome_json()?");
  }

  std::printf("%s:\n", path.c_str());

  // Component-pair traffic matrix.
  const mph::util::JsonValue& traffic = mph_obj->at("componentTraffic");
  std::printf("\ncomponent traffic (%zu pair%s):\n", traffic.items().size(),
              traffic.items().size() == 1 ? "" : "s");
  if (traffic.items().empty()) {
    std::printf("  (no point-to-point messages recorded)\n");
  }
  for (const mph::util::JsonValue& pair : traffic.items()) {
    std::printf("  %-16s -> %-16s %10lld msgs %12lld bytes\n",
                pair.at("src").as_string().c_str(),
                pair.at("dest").as_string().c_str(),
                pair.at("messages").as_int(), pair.at("bytes").as_int());
  }

  // Per-context (communicator) delivery counts.
  const mph::util::JsonValue& contexts = mph_obj->at("contexts");
  std::printf("\nmessages by communicator context:\n");
  if (contexts.items().empty()) std::printf("  (none)\n");
  for (const mph::util::JsonValue& ctx : contexts.items()) {
    std::printf("  context %-6lld %10lld msgs\n", ctx.at("context").as_int(),
                ctx.at("messages").as_int());
  }
  std::printf("\nwildcard (any_source) receives: %lld\n",
              mph_obj->at("wildcardRecvs").as_int());

  // Ranks with the most blocked time, worst first.
  struct RankRow {
    long long rank;
    std::string track;
    double recv_ns, coll_ns, handshake_ns;
    long long dropped, queue_high_water;
    double total() const { return recv_ns + coll_ns + handshake_ns; }
  };
  std::vector<RankRow> rows;
  long long total_dropped = 0;
  for (const mph::util::JsonValue& r : mph_obj->at("ranks").items()) {
    const mph::util::JsonValue& blocked = r.at("blocked");
    rows.push_back(RankRow{r.at("rank").as_int(), r.at("track").as_string(),
                           blocked.at("recvWaitNs").as_number(),
                           blocked.at("collectiveWaitNs").as_number(),
                           blocked.at("handshakeNs").as_number(),
                           r.at("dropped").as_int(),
                           r.at("queueHighWater").as_int()});
    total_dropped += rows.back().dropped;
  }
  // Deterministic order even when two ranks blocked for exactly the same
  // time (common in lock-step couplings): break ties by rank.
  std::stable_sort(rows.begin(), rows.end(),
                   [](const RankRow& a, const RankRow& b) {
                     if (a.total() != b.total()) return a.total() > b.total();
                     return a.rank < b.rank;
                   });
  constexpr std::size_t kTopRanks = 10;
  std::printf("\ntop blocked ranks (of %zu; ms blocked):\n", rows.size());
  std::printf("  %-20s %10s %10s %10s %10s  %s\n", "track", "recv-wait",
              "coll-wait", "handshake", "total", "queue-hw");
  for (std::size_t i = 0; i < rows.size() && i < kTopRanks; ++i) {
    const RankRow& row = rows[i];
    std::printf("  %-20s %10s %10s %10s %10s  %lld\n", row.track.c_str(),
                format_ms(row.recv_ns).c_str(), format_ms(row.coll_ns).c_str(),
                format_ms(row.handshake_ns).c_str(),
                format_ms(row.total()).c_str(), row.queue_high_water);
  }
  if (total_dropped > 0) {
    std::printf(
        "\nwarning: %lld event(s) dropped from full rings — raise "
        "MINIMPI_TRACE=capacity=N for complete timelines\n",
        total_dropped);
  }

  if (critical) {
    // Causal view: the five longest critical-path segments, via the
    // mph_prof library (re-parse with its loader to get the event-level
    // timelines the summary above never touches).
    const minimpi::prof::LoadedTrace loaded =
        minimpi::prof::load_chrome_trace(buffer.str());
    const minimpi::prof::Profile profile =
        minimpi::prof::Graph::build(loaded.report).profile();
    std::printf("\n%s",
                minimpi::prof::render_top_segments(profile, 5).c_str());
    std::printf(
        "(critical path %s ms of %s ms wall — `mph_prof report` has the "
        "full blame breakdown)\n",
        format_ms(static_cast<double>(profile.path_total_ns)).c_str(),
        format_ms(static_cast<double>(profile.wall_ns())).c_str());
  }
  return 0;
}

/// Fetch the newest snapshot from `source` — the monitor's AF_UNIX socket
/// while the job runs, its JSONL file after (or instead).  File reads are
/// rotation/truncation tolerant (last_valid_snapshot), and a socket frame
/// torn mid-write counts as a miss to resync on, not an error.
std::optional<minimpi::MetricsSnapshot> fetch_snapshot(
    const std::string& source) {
  if (auto line = mph::mon::read_socket_line(source)) {
    try {
      return mph::mon::parse_snapshot(*line);
    } catch (const std::exception&) {
      // Torn frame; fall through to the file, or miss and retry.
    }
  }
  return mph::mon::last_valid_snapshot(source);
}

int cmd_top(const std::string& source, bool once, int interval_ms) {
  std::optional<minimpi::MetricsSnapshot> prev;
  int misses = 0;
  for (;;) {
    const std::optional<minimpi::MetricsSnapshot> snap =
        fetch_snapshot(source);
    if (!snap.has_value()) {
      if (once || ++misses > 5) {
        throw mph::MphError(
            "no metrics snapshot available from '" + source +
            "' — point `top` at a monitored job's mph_monitor.sock or "
            "mph_metrics.jsonl (enable with JobOptions::monitor or "
            "MINIMPI_MONITOR=1)");
      }
    } else {
      misses = 0;
      // The seq stamp tells a fresh frame from a re-served line (a file
      // that stopped advancing): only a distinct frame updates the rate
      // window, so rates never collapse to zero against themselves.
      if (!prev.has_value() || snap->seq != prev->seq || once) {
        const mph::mon::TopView view = mph::mon::build_top_view(
            prev.has_value() && prev->seq != snap->seq ? &*prev : nullptr,
            *snap);
        if (!once) std::printf("\033[2J\033[H");  // clear + home, like top(1)
        std::fputs(mph::mon::render_top(view).c_str(), stdout);
        std::fflush(stdout);
        prev = snap;
      }
      if (once) return 0;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}

/// Assemble one job of the `watch` aggregator from a source argument: a
/// monitor socket, an mph_metrics.jsonl, or an mph_health.jsonl.  The
/// missing half is picked up from the sibling file in the same directory
/// (the watcher writes its health log next to the monitor's stream).
mph::mon::WatchJob fetch_watch_job(const std::string& source) {
  namespace fs = std::filesystem;
  mph::mon::WatchJob job;
  job.source = source;
  const fs::path dir = fs::path(source).parent_path();
  std::string health_path = (dir / "mph_health.jsonl").string();

  std::ifstream probe(source);
  std::string first;
  if (probe) {
    while (std::getline(probe, first) && first.empty()) continue;
  }
  if (!first.empty() && mph::mon::looks_like_health(first)) {
    health_path = source;
    job.snapshot = mph::mon::last_valid_snapshot(
        (dir / "mph_metrics.jsonl").string());
    job.online = job.snapshot.has_value();
  } else {
    job.snapshot = fetch_snapshot(source);
    job.online = job.snapshot.has_value();
  }
  job.events = mph::mon::read_health_tail(health_path);
  return job;
}

int cmd_watch(const std::vector<std::string>& sources, bool once,
              int interval_ms) {
  int misses = 0;
  for (;;) {
    std::vector<mph::mon::WatchJob> jobs;
    bool any = false;
    for (const std::string& source : sources) {
      jobs.push_back(fetch_watch_job(source));
      any = any || jobs.back().snapshot.has_value() ||
            !jobs.back().events.empty();
    }
    if (!any) {
      if (once || ++misses > 5) {
        throw mph::MphError(
            "no metrics or health data available from the given sources — "
            "point `watch` at monitored jobs' mph_monitor.sock, "
            "mph_metrics.jsonl, or mph_health.jsonl (enable with "
            "JobOptions::watch or MINIMPI_WATCH=1)");
      }
    } else {
      misses = 0;
      const mph::mon::WatchView view =
          mph::mon::build_watch_view(std::move(jobs));
      if (!once) std::printf("\033[2J\033[H");
      std::fputs(mph::mon::render_watch(view).c_str(), stdout);
      std::fflush(stdout);
      if (once) return 0;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}

int cmd_generate(const std::string& prefix, const std::string& count,
                 const std::string& ranks) {
  const auto instances = mph::util::parse_int(count);
  const auto ranks_each = mph::util::parse_int(ranks);
  if (!instances || !ranks_each || *instances <= 0 || *ranks_each <= 0) {
    throw mph::MphError("instances and ranks_each must be positive integers");
  }
  mph::RegistryBuilder builder;
  builder.multi_instance(prefix, static_cast<int>(*instances),
                         static_cast<int>(*ranks_each));
  std::fputs(builder.to_text().c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.size() == 2 && args[0] == "validate") {
      return cmd_validate(args[1]);
    }
    if (args.size() >= 3 && args[0] == "plan") {
      return cmd_plan(args[1], {args.begin() + 2, args.end()});
    }
    if (args.size() == 4 && args[0] == "generate-ensemble") {
      return cmd_generate(args[1], args[2], args[3]);
    }
    if (args.size() == 2 && (args[0] == "check" || args[0] == "--check")) {
      return cmd_check(args[1]);
    }
    if ((args.size() == 2 || args.size() == 3) && args[0] == "trace") {
      bool critical = false;
      std::string source;
      for (std::size_t i = 1; i < args.size(); ++i) {
        if (args[i] == "--critical") critical = true;
        else if (source.empty()) source = args[i];
        else return usage();
      }
      if (!source.empty()) return cmd_trace(source, critical);
      return usage();
    }
    if (args.size() >= 2 && args[0] == "top") {
      bool once = false;
      int interval_ms = 1000;
      std::string source;
      bool bad = false;
      for (std::size_t i = 1; i < args.size(); ++i) {
        if (args[i] == "--once") {
          once = true;
        } else if (mph::util::starts_with(args[i], "--interval=")) {
          const auto ms = mph::util::parse_int(
              std::string_view(args[i]).substr(sizeof("--interval=") - 1));
          if (!ms.has_value() || *ms <= 0) bad = true;
          else interval_ms = static_cast<int>(*ms);
        } else if (source.empty()) {
          source = args[i];
        } else {
          bad = true;
        }
      }
      if (!bad && !source.empty()) return cmd_top(source, once, interval_ms);
    }
    if (args.size() >= 2 && args[0] == "watch") {
      bool once = false;
      int interval_ms = 1000;
      std::vector<std::string> sources;
      bool bad = false;
      for (std::size_t i = 1; i < args.size(); ++i) {
        if (args[i] == "--once") {
          once = true;
        } else if (mph::util::starts_with(args[i], "--interval=")) {
          const auto ms = mph::util::parse_int(
              std::string_view(args[i]).substr(sizeof("--interval=") - 1));
          if (!ms.has_value() || *ms <= 0) bad = true;
          else interval_ms = static_cast<int>(*ms);
        } else {
          sources.push_back(args[i]);
        }
      }
      if (!bad && !sources.empty()) {
        return cmd_watch(sources, once, interval_ms);
      }
    }
    if ((args.size() == 1 || args.size() == 2) && args[0] == "lint") {
      return cmd_lint(args.size() == 2 ? args[1] : "src/minimpi");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mph_inspect: %s\n", e.what());
    return 1;
  }
  return usage();
}
