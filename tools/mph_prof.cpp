// mph_prof — cross-rank causal critical-path profiler.
//
// Loads an mph_trace Chrome-JSON export (TraceReport::to_chrome_json),
// stitches the per-rank timelines into a job-wide happens-before DAG via
// the per-message flow ids, and reports which ranks' work actually bounds
// the job.  See src/minimpi/prof/profile.hpp and DESIGN.md §16.
//
// Usage:
//   mph_prof report <trace.json> [--top=N] [--what-if=<target>[:<pct>]]...
//       Text bottleneck report: critical-path total vs wall time, blame by
//       kind (compute / recv-wait / collective-wait / handshake) and by
//       component, the top-N longest path segments, per-rank slack, and
//       what-if answers.  <target> is a component name or rank:<R>; <pct>
//       is the speedup percentage (default 20).  Without --what-if, the
//       top-blamed component at 20% faster is answered automatically.
//
//   mph_prof annotate <trace.json> [-o <out.json>]
//       Re-emit the trace with the critical path overlaid: cat:"critical"
//       spans on each rank's track plus flow arrows for the message edges
//       the path followed, so Perfetto highlights the binding chain.
//       Default output: <trace>.critical.json.
//
// Exit status: 0 on success, 1 on load/analysis failure, 2 on usage.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "src/minimpi/error.hpp"
#include "src/minimpi/prof/profile.hpp"
#include "src/minimpi/prof/trace_load.hpp"

namespace {

namespace prof = minimpi::prof;

int usage() {
  std::fprintf(
      stderr,
      "usage: mph_prof report <trace.json> [--top=N] "
      "[--what-if=<component|rank:R>[:<pct>]]...\n"
      "       mph_prof annotate <trace.json> [-o <out.json>]\n");
  return 2;
}

int cmd_report(const std::vector<std::string>& args) {
  std::string path;
  std::size_t top = 5;
  struct Target {
    std::string name;
    double fraction = 0.2;
  };
  std::vector<Target> targets;
  for (const std::string& arg : args) {
    if (arg.rfind("--top=", 0) == 0) {
      const long parsed = std::strtol(arg.c_str() + 6, nullptr, 10);
      if (parsed <= 0) return usage();
      top = static_cast<std::size_t>(parsed);
    } else if (arg.rfind("--what-if=", 0) == 0) {
      Target t;
      t.name = arg.substr(10);
      // A trailing :<pct> is numeric; rank:<R> keeps its own first colon.
      const std::size_t min_pos =
          t.name.rfind("rank:", 0) == 0 ? 5 : 0;
      const std::size_t colon = t.name.rfind(':');
      if (colon != std::string::npos && colon >= min_pos &&
          colon + 1 < t.name.size()) {
        char* end = nullptr;
        const double pct = std::strtod(t.name.c_str() + colon + 1, &end);
        if (end != nullptr && *end == '\0' && pct > 0.0) {
          t.fraction = pct / 100.0;
          t.name.resize(colon);
        }
      }
      if (t.name.empty()) return usage();
      targets.push_back(std::move(t));
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();

  const prof::LoadedTrace loaded = prof::load_chrome_trace_file(path);
  const prof::Graph graph = prof::Graph::build(loaded.report);
  const prof::Profile profile = graph.profile();

  std::vector<prof::WhatIf> what_ifs;
  if (targets.empty()) {
    // Default question: the top-blamed component, 20% faster.
    const auto blame = profile.components();
    if (!blame.empty()) {
      what_ifs.push_back(
          prof::what_if_component(graph, profile, blame.front().component,
                                  0.2));
    }
  }
  for (const Target& t : targets) {
    if (t.name.rfind("rank:", 0) == 0) {
      const long rank = std::strtol(t.name.c_str() + 5, nullptr, 10);
      what_ifs.push_back(prof::what_if_rank(
          graph, profile, static_cast<minimpi::rank_t>(rank), t.fraction));
    } else {
      what_ifs.push_back(
          prof::what_if_component(graph, profile, t.name, t.fraction));
    }
  }
  const std::string report = prof::render_report(profile, what_ifs, top);
  std::fputs(report.c_str(), stdout);
  return 0;
}

int cmd_annotate(const std::vector<std::string>& args) {
  std::string path;
  std::string out_path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "-o") {
      if (i + 1 >= args.size()) return usage();
      out_path = args[++i];
    } else if (path.empty()) {
      path = args[i];
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();
  if (out_path.empty()) out_path = path + ".critical.json";

  const prof::LoadedTrace loaded = prof::load_chrome_trace_file(path);
  const prof::Graph graph = prof::Graph::build(loaded.report);
  const prof::Profile profile = graph.profile();
  const std::string annotated =
      prof::annotate_chrome_json(loaded.report, profile);
  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "mph_prof: cannot write '%s'\n", out_path.c_str());
    return 1;
  }
  out << annotated;
  std::fprintf(stderr,
               "mph_prof: wrote %s (%zu critical-path segments tagged)\n",
               out_path.c_str(), profile.path.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string_view command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (command == "report") return cmd_report(args);
    if (command == "annotate") return cmd_annotate(args);
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "mph_prof: %s\n", ex.what());
    return 1;
  }
  return usage();
}
