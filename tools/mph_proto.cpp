// mph_proto — declarative communication contracts for MPH jobs: a
// launch-free protocol checker, trace conformance, and contract inference.
//
// Usage:
//   mph_proto check <contract.mphc>... [--dump-graph FILE]
//                   [--expect-findings]
//       Parse each contract and statically verify send/recv compatibility,
//       tag/type agreement, collective consistency, orphan/unmatched
//       messages, and deadlock-freedom (causality-graph cycle analysis) —
//       with no job execution at all.  --dump-graph writes the first
//       contract's happens-before graph as Graphviz DOT.
//       --expect-findings inverts success: exit 0 iff findings were
//       reported (CI gates on seeded-broken contracts).
//
//   mph_proto conform <trace.json> <contract.mphc>
//       Check a recorded mph_trace export against a contract: each rank's
//       post-handshake protocol ops must replay the contract exactly.
//
//   mph_proto infer <trace.json> [--name NAME]
//       Propose contract text from a recorded trace (ranged receives,
//       loops, and per-rank `on` blocks are reconstructed).
//
//   mph_proto record <mode> [--ranks N] -o FILE
//       Run one of the five execution-mode scenarios (scse scme mcse mcme
//       mime — the same bodies mph_verify explores) with tracing enabled
//       and write the Chrome trace-event JSON, ready for `conform`/`infer`.
//
// Exit status: 0 success, 1 findings (or missing expected findings),
// 2 usage/parse/IO errors.
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/minimpi/launcher.hpp"
#include "src/proto/checker.hpp"
#include "src/proto/conform.hpp"
#include "src/proto/infer.hpp"
#include "src/proto/parser.hpp"
#include "tools/mode_scenarios.hpp"

namespace {

namespace proto = mph::proto;

int usage() {
  std::fprintf(
      stderr,
      "usage: mph_proto check <contract>... [--dump-graph FILE]\n"
      "                 [--expect-findings]\n"
      "       mph_proto conform <trace.json> <contract>\n"
      "       mph_proto infer <trace.json> [--name NAME]\n"
      "       mph_proto record <scse|scme|mcse|mcme|mime> [--ranks N]"
      " -o FILE\n");
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write '" + path + "'");
  out << text;
  if (!out.flush()) throw std::runtime_error("cannot write '" + path + "'");
}

int cmd_check(const std::vector<std::string>& args) {
  std::vector<std::string> paths;
  std::string dump_graph;
  bool expect_findings = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--dump-graph") {
      if (++i >= args.size()) return usage();
      dump_graph = args[i];
    } else if (args[i] == "--expect-findings") {
      expect_findings = true;
    } else {
      paths.push_back(args[i]);
    }
  }
  if (paths.empty()) return usage();
  std::size_t findings = 0;
  for (const std::string& path : paths) {
    const proto::Contract contract = proto::load_contract(path);
    const proto::ProtoReport report = proto::check(contract);
    if (report.clean()) {
      std::printf("%s: contract '%s' OK (%d component(s), %zu proto(s))\n",
                  path.c_str(), contract.name.c_str(),
                  static_cast<int>(contract.components.size()),
                  contract.protos.size());
    } else {
      std::printf("%s: contract '%s' FAILED — %zu finding(s)\n%s",
                  path.c_str(), contract.name.c_str(), report.total(),
                  report.to_string().c_str());
      findings += report.total();
    }
    if (!dump_graph.empty() && path == paths.front()) {
      write_file(dump_graph, proto::dump_causality_dot(contract));
      std::printf("happens-before graph written to %s\n",
                  dump_graph.c_str());
    }
  }
  if (expect_findings) return findings != 0 ? 0 : 1;
  return findings != 0 ? 1 : 0;
}

int cmd_conform(const std::vector<std::string>& args) {
  if (args.size() != 2) return usage();
  const proto::ObservedTrace trace =
      proto::read_trace_ops(read_file(args[0]));
  const proto::Contract contract = proto::load_contract(args[1]);
  const std::vector<std::string> findings = proto::conform(contract, trace);
  if (findings.empty()) {
    std::printf("%s conforms to contract '%s' (%zu rank(s) matched)\n",
                args[0].c_str(), contract.name.c_str(), trace.ranks.size());
    return 0;
  }
  for (const std::string& finding : findings) {
    std::printf("%s\n", finding.c_str());
  }
  std::printf("%s does NOT conform to contract '%s': %zu finding(s)\n",
              args[0].c_str(), contract.name.c_str(), findings.size());
  return 1;
}

int cmd_infer(const std::vector<std::string>& args) {
  std::string path;
  std::string name = "inferred";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--name") {
      if (++i >= args.size()) return usage();
      name = args[i];
    } else if (path.empty()) {
      path = args[i];
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();
  const proto::ObservedTrace trace = proto::read_trace_ops(read_file(path));
  const std::string text = proto::infer_contract_text(trace, name);
  // Round-trip through the parser: inference must always emit valid text.
  (void)proto::parse_contract(text, "<inferred>");
  std::fputs(text.c_str(), stdout);
  return 0;
}

int cmd_record(const std::vector<std::string>& args) {
  std::string mode;
  std::string out_path;
  int ranks = 0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "-o" || args[i] == "--output") {
      if (++i >= args.size()) return usage();
      out_path = args[i];
    } else if (args[i] == "--ranks") {
      if (++i >= args.size()) return usage();
      ranks = std::stoi(args[i]);
    } else if (mode.empty()) {
      mode = args[i];
    } else {
      return usage();
    }
  }
  if (mode.empty() || out_path.empty()) return usage();
  const std::optional<mph_tools::Scenario> scenario =
      mph_tools::make_mode_scenario(mode, ranks);
  if (!scenario.has_value()) {
    std::fprintf(stderr, "mph_proto: unknown mode '%s'\n", mode.c_str());
    return usage();
  }
  minimpi::JobOptions options;
  options.trace.enabled = true;
  const minimpi::JobReport report =
      minimpi::run_mpmd(mph_tools::make_exec_specs(*scenario), options);
  if (!report.ok) {
    std::fprintf(stderr, "mph_proto: scenario '%s' failed: %s\n",
                 mode.c_str(), report.first_error().c_str());
    return 2;
  }
  if (!report.trace.has_value()) {
    std::fprintf(stderr, "mph_proto: scenario produced no trace\n");
    return 2;
  }
  write_file(out_path, report.trace->to_chrome_json());
  std::printf("mode '%s' trace written to %s\n", mode.c_str(),
              out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  try {
    if (args[0] == "check") return cmd_check(rest);
    if (args[0] == "conform") return cmd_conform(rest);
    if (args[0] == "infer") return cmd_infer(rest);
    if (args[0] == "record") return cmd_record(rest);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mph_proto: %s\n", e.what());
    return 2;
  }
}
