// mode_scenarios.hpp — the five MPH execution-mode scenarios (paper §2),
// shared by the tools that need runnable mode bodies: mph_verify explores
// their schedule space, mph_proto records conformance traces from them.
//
// Each scenario is a post-handshake wildcard-receive workload: model ranks
// report their world rank to a collector, which sums ANY_SOURCE receives.
// The shapes mirror the MPH test harness without its gtest dependency.
#pragma once

#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/minimpi/launcher.hpp"
#include "src/mph/mph.hpp"

namespace mph_tools {

using minimpi::Comm;
using minimpi::rank_t;
using minimpi::tag_t;

inline constexpr tag_t kDataTag = 7;
inline constexpr tag_t kAckTag = 8;

/// One executable of a scenario.
struct ScenarioExec {
  std::string label;                     ///< rank label in reports
  std::vector<std::string> names;        ///< components_setup name-tags
  std::string instance_prefix;           ///< nonempty => multi_instance
  int nprocs = 1;
  std::function<void(mph::Mph&, const Comm&)> body;
};

struct Scenario {
  std::string name;
  std::string registry;
  std::vector<ScenarioExec> execs;
};

[[noreturn]] inline void protocol_violation(const std::string& what) {
  throw std::runtime_error("protocol violation: " + what);
}

/// Sum of the world ranks 0..n-1 except `excluded`.
inline long long rank_sum_except(int n, int excluded) {
  long long sum = 0;
  for (int r = 0; r < n; ++r) {
    if (r != excluded) sum += r;
  }
  return sum;
}

/// Receive `count` wildcard messages on `world` and check they sum to
/// `expected` (each sender sends its own world rank exactly once).
inline void collect_reports(const Comm& world, int count, long long expected) {
  long long sum = 0;
  for (int i = 0; i < count; ++i) {
    int value = 0;
    world.recv(value, minimpi::any_source, kDataTag);
    sum += value;
  }
  if (sum != expected) {
    protocol_violation("collected " + std::to_string(sum) + ", expected " +
                       std::to_string(expected));
  }
}

// --- the five execution modes (paper §2), post-handshake wildcard bodies ---

inline Scenario make_scse(int total_ranks) {
  Scenario s;
  s.name = "scse";
  s.registry = "BEGIN\nsolo\nEND\n";
  const int n = total_ranks;
  s.execs.push_back(ScenarioExec{
      "solo", {"solo"}, "", n, [n](mph::Mph&, const Comm& world) {
        if (world.rank() == 0) {
          collect_reports(world, n - 1, rank_sum_except(n, 0));
        } else {
          world.send(world.rank(), 0, kDataTag);
        }
      }});
  return s;
}

inline Scenario make_scme(int per_component) {
  Scenario s;
  s.name = "scme";
  s.registry = "BEGIN\natmosphere\nocean\ncoupler\nEND\n";
  const int k = per_component;
  const auto report = [](mph::Mph& h, const Comm& world) {
    h.send(world.rank(), "coupler", 0, kDataTag);
  };
  s.execs.push_back(ScenarioExec{"atmosphere", {"atmosphere"}, "", k, report});
  s.execs.push_back(ScenarioExec{"ocean", {"ocean"}, "", k, report});
  s.execs.push_back(ScenarioExec{
      "coupler", {"coupler"}, "", 1, [k](mph::Mph&, const Comm& world) {
        collect_reports(world, 2 * k, rank_sum_except(2 * k + 1, 2 * k));
      }});
  return s;
}

inline Scenario make_mcse(int workers) {
  Scenario s;
  s.name = "mcse";
  s.registry = "BEGIN\nMulti_Component_Begin\ndriver 0 0\nworker 1 " +
               std::to_string(workers) +
               "\nMulti_Component_End\nEND\n";
  const int k = workers;
  s.execs.push_back(ScenarioExec{
      "driver+worker", {"driver", "worker"}, "", k + 1,
      [k](mph::Mph& h, const Comm& world) {
        if (h.proc_in_component("driver")) {
          collect_reports(world, k, rank_sum_except(k + 1, 0));
        } else {
          h.send(world.rank(), "driver", 0, kDataTag);
        }
      }});
  return s;
}

inline Scenario make_mcme(int per_component) {
  Scenario s;
  s.name = "mcme";
  const int k = per_component;
  s.registry = "BEGIN\nMulti_Component_Begin\nphysics 0 " +
               std::to_string(k - 1) + "\nchemistry " + std::to_string(k) +
               " " + std::to_string(2 * k - 1) +
               "\nMulti_Component_End\ncoupler\nEND\n";
  s.execs.push_back(ScenarioExec{
      "physics+chemistry", {"physics", "chemistry"}, "", 2 * k,
      [](mph::Mph& h, const Comm& world) {
        h.send(world.rank(), "coupler", 0, kDataTag);
      }});
  s.execs.push_back(ScenarioExec{
      "coupler", {"coupler"}, "", 1, [k](mph::Mph&, const Comm& world) {
        collect_reports(world, 2 * k, rank_sum_except(2 * k + 1, 2 * k));
      }});
  return s;
}

inline Scenario make_mime(int per_instance) {
  Scenario s;
  s.name = "mime";
  const int k = per_instance;
  s.registry = "BEGIN\nMulti_Instance_Begin\nOcean1 0 " +
               std::to_string(k - 1) + "\nOcean2 " + std::to_string(k) + " " +
               std::to_string(2 * k - 1) +
               "\nMulti_Instance_End\nstatistics\nEND\n";
  s.execs.push_back(ScenarioExec{
      "Ocean*", {}, "Ocean", 2 * k, [](mph::Mph& h, const Comm& world) {
        h.send(world.rank(), "statistics", 0, kDataTag);
      }});
  s.execs.push_back(ScenarioExec{
      "statistics", {"statistics"}, "", 1, [k](mph::Mph&, const Comm& world) {
        collect_reports(world, 2 * k, rank_sum_except(2 * k + 1, 2 * k));
      }});
  return s;
}

/// The five modes by name; std::nullopt for anything else.  `ranks` scales
/// the scenario (scse: total ranks, default 3; others: ranks per model
/// component, default 1); pass 0 for the default.
inline std::optional<Scenario> make_mode_scenario(const std::string& name,
                                                  int ranks) {
  if (name == "scse") return make_scse(ranks > 0 ? ranks : 3);
  const int k = ranks > 0 ? ranks : 1;
  if (name == "scme") return make_scme(k);
  if (name == "mcse") return make_mcse(k);
  if (name == "mcme") return make_mcme(k);
  if (name == "mime") return make_mime(k);
  return std::nullopt;
}

/// ExecSpecs for launching a scenario with minimpi::run_mpmd.  The
/// returned specs capture `scenario` by reference — it must outlive the
/// launch.
inline std::vector<minimpi::ExecSpec> make_exec_specs(
    const Scenario& scenario) {
  std::vector<minimpi::ExecSpec> specs;
  for (std::size_t i = 0; i < scenario.execs.size(); ++i) {
    const ScenarioExec& exec = scenario.execs[i];
    specs.push_back(minimpi::ExecSpec{
        exec.label, exec.nprocs,
        [&scenario, i](const Comm& world, const minimpi::ExecEnv&) {
          const ScenarioExec& me = scenario.execs[i];
          const mph::RegistrySource source =
              mph::RegistrySource::from_text(scenario.registry);
          mph::Mph handle =
              me.instance_prefix.empty()
                  ? mph::Mph::components_setup(world, source, me.names)
                  : mph::Mph::multi_instance(world, source,
                                             me.instance_prefix);
          if (me.body) me.body(handle, world);
        },
        {}});
  }
  return specs;
}

/// World-rank -> component/executable label, from the static layout.
inline std::function<std::string(rank_t)> label_fn(const Scenario& scenario) {
  std::vector<std::string> labels;
  for (const ScenarioExec& exec : scenario.execs) {
    for (int i = 0; i < exec.nprocs; ++i) labels.push_back(exec.label);
  }
  return [labels](rank_t rank) {
    const auto index = static_cast<std::size_t>(rank);
    return rank >= 0 && index < labels.size() ? labels[index] : std::string{};
  };
}

}  // namespace mph_tools
