// mph_verify — systematic schedule exploration (stateless model checking)
// and wildcard-race detection for minimpi/MPH jobs.
//
// Usage:
//   mph_verify <scenario> [options]
//       Explore the scenario's wildcard-matching schedule space with the
//       verify() engine (src/minimpi/verify/), running mpicheck's checkers
//       on every schedule, and report races / failing schedules.
//
//   Scenarios (the five MPH execution modes, post-handshake bodies that
//   exchange messages through ANY_SOURCE receives, plus two seeded bugs):
//       scse            one executable, one component; ranks 1..N-1 send
//                       to rank 0, which sums N-1 wildcard receives
//       scme            atmosphere + ocean + coupler executables; every
//                       model rank reports to the coupler via wildcards
//       mcse            one Multi_Component executable (driver + worker)
//       mcme            a Multi_Component executable plus a coupler
//       mime            a Multi_Instance ensemble (Ocean1, Ocean2)
//                       reporting to a statistics executable
//       wildcard-race   BUG: rank 0 assumes its first wildcard receive is
//                       rank 1's message; a send timing makes that true in
//                       ordinary runs, but a schedule exists where rank 2
//                       matches first
//       order-deadlock  BUG: the coupler expects a second message from
//                       whichever sender its wildcard matched first; only
//                       one sender has a second message, the other blocks
//                       on an ack the coupler sends too late — an
//                       order-dependent deadlock mpicheck reports as a
//                       cycle on the bad schedule
//
//   Options:
//       --ranks N          scenario scale (scse: total ranks, default 3;
//                          others: ranks per model component, default 1)
//       --max-schedules N  schedule budget (default 10000, 0 = unlimited)
//       --budget-ms N      wall-clock budget (default 0 = unlimited)
//       --seed N           job seed recorded in every trace (default 1)
//       --dump-trace FILE  write the first failing schedule's decision
//                          trace as JSON (replayable with --schedule)
//       --schedule FILE    replay a dumped trace instead of exploring
//       --expect-failure   invert success: exit 0 iff a failing schedule
//                          was found (exploration) or reproduced (replay)
//       --require-complete exit 1 unless the whole tree was explored
//
// Exit status: 0 verification passed (or expected failure found), 1 a
// failing schedule was found (or an expectation was not met), 2 on usage
// errors, trace divergence, or internal errors.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/minimpi/launcher.hpp"
#include "src/minimpi/verify/verify.hpp"
#include "src/mph/mph.hpp"
#include "tools/mode_scenarios.hpp"

namespace {

using minimpi::Comm;
using minimpi::rank_t;

using mph_tools::kAckTag;
using mph_tools::kDataTag;
using mph_tools::label_fn;
using mph_tools::protocol_violation;
using mph_tools::Scenario;
using mph_tools::ScenarioExec;

/// Delay long enough that in an ordinary (unfenced) run the un-delayed
/// sender's message is always queued first — which is exactly the timing
/// assumption the seeded bugs encode and the explorer breaks.
void bug_hiding_delay() {
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
}

// --- seeded bugs (the runnable modes live in tools/mode_scenarios.hpp) ----

/// Rank 0 receives ANY_SOURCE but assumes the first message is rank 1's.
/// Rank 2's send is delayed, so ordinary runs always satisfy the
/// assumption; the schedule where rank 2 matches first is a latent bug
/// only exploration finds.
Scenario make_wildcard_race() {
  Scenario s;
  s.name = "wildcard-race";
  s.registry = "BEGIN\nsolo\nEND\n";
  s.execs.push_back(ScenarioExec{
      "solo", {"solo"}, "", 3, [](mph::Mph&, const Comm& world) {
        switch (world.rank()) {
          case 1:
            world.send(111, 0, kDataTag);
            break;
          case 2:
            bug_hiding_delay();
            world.send(222, 0, kDataTag);
            break;
          default: {
            int first = 0;
            int second = 0;
            world.recv(first, minimpi::any_source, kDataTag);
            if (first != 111) {
              protocol_violation(
                  "first wildcard message was " + std::to_string(first) +
                  ", code assumed rank 1's 111 always arrives first");
            }
            world.recv(second, minimpi::any_source, kDataTag);
          }
        }
      }});
  return s;
}

/// The coupler (rank 0) demands a SECOND message from whichever sender its
/// first wildcard receive matched.  Rank 1 sends two messages; rank 2
/// sends one and then blocks on an ack.  If the wildcard matches rank 2
/// first, rank 0 waits on rank 2 while rank 2 waits on rank 0 — a cycle
/// mpicheck reports.  Rank 2's delayed send hides the bug in ordinary runs.
Scenario make_order_deadlock() {
  Scenario s;
  s.name = "order-deadlock";
  s.registry = "BEGIN\nsolo\nEND\n";
  s.execs.push_back(ScenarioExec{
      "solo", {"solo"}, "", 3, [](mph::Mph&, const Comm& world) {
        switch (world.rank()) {
          case 1:
            world.send(1, 0, kDataTag);
            world.send(2, 0, kDataTag);
            break;
          case 2: {
            bug_hiding_delay();
            world.send(3, 0, kDataTag);
            int ack = 0;
            world.recv(ack, 0, kAckTag);
            break;
          }
          default: {
            int value = 0;
            const minimpi::Status first =
                world.recv(value, minimpi::any_source, kDataTag);
            // Bug: only rank 1 ever sends a second message.
            world.recv(value, first.source, kDataTag);
            world.send(0, 2, kAckTag);
            world.recv(value, minimpi::any_source, kDataTag);
          }
        }
      }});
  return s;
}

std::optional<Scenario> make_scenario(const std::string& name, int ranks) {
  if (name == "wildcard-race") return make_wildcard_race();
  if (name == "order-deadlock") return make_order_deadlock();
  return mph_tools::make_mode_scenario(name, ranks);
}

/// The verify() JobRunner for a scenario: one MPMD launch per schedule.
minimpi::verify::JobRunner runner_for(const Scenario& scenario) {
  return [&scenario](const minimpi::JobOptions& options) {
    return minimpi::run_mpmd(mph_tools::make_exec_specs(scenario), options);
  };
}

bool failing_report(const minimpi::JobReport& report) {
  if (!report.ok) return true;
  return report.check.has_value() && !report.check->clean();
}

struct Cli {
  std::string scenario;
  int ranks = 0;  // 0 = scenario default
  std::uint64_t max_schedules = 10000;
  std::chrono::milliseconds budget{0};
  std::uint64_t seed = 1;
  std::string dump_trace;
  std::string schedule;
  bool expect_failure = false;
  bool require_complete = false;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: mph_verify <scenario> [--ranks N] [--max-schedules N]\n"
      "                  [--budget-ms N] [--seed N] [--dump-trace FILE]\n"
      "                  [--schedule FILE] [--expect-failure]\n"
      "                  [--require-complete]\n"
      "scenarios: scse scme mcse mcme mime wildcard-race order-deadlock\n");
  return 2;
}

std::uint64_t parse_u64(const std::string& flag, const std::string& text) {
  std::size_t used = 0;
  const unsigned long long value = std::stoull(text, &used);
  if (used != text.size()) {
    throw std::runtime_error(flag + ": bad number '" + text + "'");
  }
  return value;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write '" + path + "'");
  out << text;
  if (!out.flush()) throw std::runtime_error("cannot write '" + path + "'");
}

minimpi::JobOptions scenario_job_options() {
  minimpi::JobOptions options;
  // Bound every schedule: a stuck state the engine or mpicheck somehow
  // misses must still terminate the exploration run.
  options.recv_timeout = std::chrono::seconds(20);
  return options;
}

int run_replay(const Cli& cli, const Scenario& scenario) {
  const minimpi::verify::Trace trace =
      minimpi::verify::Trace::from_json(read_file(cli.schedule));
  const auto label = label_fn(scenario);
  std::printf("replaying %zu recorded decision(s) from %s (seed %llu)\n",
              trace.decisions.size(), cli.schedule.c_str(),
              static_cast<unsigned long long>(trace.seed));
  const minimpi::verify::ReplayResult result = minimpi::verify::replay(
      runner_for(scenario), trace, scenario_job_options());
  std::printf("%s\n", result.observed.to_string(label).c_str());
  if (result.diverged) {
    std::fprintf(stderr, "mph_verify: replay diverged: %s\n",
                 result.divergence.c_str());
    return 2;
  }
  const bool failed = failing_report(result.report);
  if (failed) {
    std::printf("replay reproduced the failure: %s\n",
                result.report.abort.has_value()
                    ? result.report.abort->to_string().c_str()
                    : result.report.first_error().c_str());
  } else {
    std::printf("replay completed without failure\n");
  }
  if (cli.expect_failure) return failed ? 0 : 1;
  return failed ? 1 : 0;
}

int run_explore(const Cli& cli, const Scenario& scenario) {
  minimpi::verify::VerifyOptions options;
  options.max_schedules = cli.max_schedules;
  options.budget = cli.budget;
  options.seed = cli.seed;
  options.job = scenario_job_options();
  options.label = label_fn(scenario);
  // When the caller expects a bug, keep the first failing schedule (its
  // trace is the artifact); otherwise stopping early is still right — one
  // counterexample refutes the configuration.
  options.stop_on_failure = true;

  const minimpi::verify::VerifyReport report =
      minimpi::verify::verify(runner_for(scenario), options);
  std::printf("%s\n", report.to_string(options.label).c_str());

  if (!cli.dump_trace.empty()) {
    if (report.failures.empty()) {
      std::fprintf(stderr,
                   "mph_verify: no failing schedule; nothing dumped to %s\n",
                   cli.dump_trace.c_str());
    } else {
      write_file(cli.dump_trace, report.failures.front().trace.to_json());
      std::printf("failing trace written to %s\n", cli.dump_trace.c_str());
    }
  }

  if (!report.divergence.empty()) return 2;
  if (cli.require_complete && !report.complete) {
    std::fprintf(stderr,
                 "mph_verify: exploration incomplete (--require-complete)\n");
    return 1;
  }
  const bool failed = !report.failures.empty();
  if (cli.expect_failure) {
    if (!failed) {
      std::fprintf(stderr,
                   "mph_verify: expected a failing schedule, found none\n");
      return 1;
    }
    return 0;
  }
  return failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  Cli cli;
  cli.scenario = args[0];
  try {
    for (std::size_t i = 1; i < args.size(); ++i) {
      const std::string& flag = args[i];
      const auto value = [&]() -> const std::string& {
        if (i + 1 >= args.size()) {
          throw std::runtime_error(flag + " needs a value");
        }
        return args[++i];
      };
      if (flag == "--ranks") {
        cli.ranks = static_cast<int>(parse_u64(flag, value()));
        if (cli.ranks <= 0 || cli.ranks > 64) {
          throw std::runtime_error("--ranks must be in 1..64");
        }
      } else if (flag == "--max-schedules") {
        cli.max_schedules = parse_u64(flag, value());
      } else if (flag == "--budget-ms") {
        cli.budget = std::chrono::milliseconds(parse_u64(flag, value()));
      } else if (flag == "--seed") {
        cli.seed = parse_u64(flag, value());
      } else if (flag == "--dump-trace") {
        cli.dump_trace = value();
      } else if (flag == "--schedule") {
        cli.schedule = value();
      } else if (flag == "--expect-failure") {
        cli.expect_failure = true;
      } else if (flag == "--require-complete") {
        cli.require_complete = true;
      } else {
        std::fprintf(stderr, "mph_verify: unknown option '%s'\n",
                     flag.c_str());
        return usage();
      }
    }

    const std::optional<Scenario> scenario =
        make_scenario(cli.scenario, cli.ranks);
    if (!scenario.has_value()) {
      std::fprintf(stderr, "mph_verify: unknown scenario '%s'\n",
                   cli.scenario.c_str());
      return usage();
    }
    if (!cli.schedule.empty()) return run_replay(cli, *scenario);
    return run_explore(cli, *scenario);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mph_verify: %s\n", e.what());
    return 2;
  }
}
