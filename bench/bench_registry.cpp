// E5 — registration-file handling cost (paper §3): parsing and
// serializing `processors_map.in` stays trivial even for very large
// ensembles (thousands of instance lines with arguments).  Pure
// single-thread benchmarks; no job is launched.
#include <benchmark/benchmark.h>

#include <string>

#include "bench/bench_util.hpp"
#include "src/mph/registry.hpp"

namespace {

std::string make_scme_text(int comps) {
  std::string text = "BEGIN\n";
  for (int i = 0; i < comps; ++i) {
    text += "component_" + std::to_string(i) + "\n";
  }
  text += "END\n";
  return text;
}

std::string make_instance_text(int instances, int ranks_each) {
  std::string text = "BEGIN\nMulti_Instance_Begin\n";
  for (int i = 0; i < instances; ++i) {
    const int lo = i * ranks_each;
    const int hi = lo + ranks_each - 1;
    text += "Run" + std::to_string(i) + " " + std::to_string(lo) + " " +
            std::to_string(hi) + " in" + std::to_string(i) + ".nml out" +
            std::to_string(i) + ".nc alpha=" + std::to_string(i) +
            " debug=off\n";
  }
  text += "Multi_Instance_End\nstatistics\nEND\n";
  return text;
}

void BM_ParseSCME(benchmark::State& state) {
  const std::string text = make_scme_text(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const mph::Registry reg = mph::Registry::parse(text);
    benchmark::DoNotOptimize(reg.total_components());
  }
  state.counters["components"] = static_cast<double>(state.range(0));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}

void BM_ParseEnsembleWithArguments(benchmark::State& state) {
  const std::string text =
      make_instance_text(static_cast<int>(state.range(0)), 16);
  for (auto _ : state) {
    const mph::Registry reg = mph::Registry::parse(text);
    benchmark::DoNotOptimize(reg.total_components());
  }
  state.counters["instances"] = static_cast<double>(state.range(0));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}

void BM_RoundTripSerialize(benchmark::State& state) {
  const mph::Registry reg = mph::Registry::parse(
      make_instance_text(static_cast<int>(state.range(0)), 16));
  for (auto _ : state) {
    const std::string text = reg.to_text();
    benchmark::DoNotOptimize(text.size());
  }
  state.counters["instances"] = static_cast<double>(state.range(0));
}

}  // namespace

BENCHMARK(BM_ParseSCME)->Arg(4)->Arg(64)->Arg(512)->Arg(4096);
BENCHMARK(BM_ParseEnsembleWithArguments)->Arg(4)->Arg(64)->Arg(512)->Arg(4096);
BENCHMARK(BM_RoundTripSerialize)->Arg(64)->Arg(1024);

MPH_BENCH_MAIN();
