// E8 — substrate collective baselines: barrier, broadcast, allreduce, and
// allgather latency across rank counts and payload sizes, so the MPH-level
// results (E1-E7) can be interpreted against the cost of the primitives
// they are built from.
#include "bench/bench_util.hpp"
#include "src/minimpi/collectives.hpp"

using namespace mph;
using namespace mph::bench;

namespace {

constexpr int kOpsPerJob = 50;

template <class Op>
void run_collective_bench(benchmark::State& state, int ranks,
                          std::size_t doubles, Op per_rank_op) {
  MaxSeconds op_time;
  for (auto _ : state) {
    op_time.reset();
    const auto report = minimpi::run_spmd(
        ranks,
        [&](const minimpi::Comm& world, const minimpi::ExecEnv&) {
          std::vector<double> data(doubles, world.rank() + 1.0);
          minimpi::barrier(world);  // align ranks before timing
          const util::Timer timer;
          for (int i = 0; i < kOpsPerJob; ++i) per_rank_op(world, data);
          op_time.update(timer.seconds() / kOpsPerJob);
        },
        bench_job_options());
    require_ok(report, "collective");
    state.SetIterationTime(op_time.get());
  }
  state.counters["ranks"] = ranks;
  state.counters["doubles"] = static_cast<double>(doubles);
}

void BM_Barrier(benchmark::State& state) {
  run_collective_bench(state, static_cast<int>(state.range(0)), 1,
                       [](const minimpi::Comm& world, std::vector<double>&) {
                         minimpi::barrier(world);
                       });
}

void BM_Bcast(benchmark::State& state) {
  run_collective_bench(
      state, static_cast<int>(state.range(0)),
      static_cast<std::size_t>(state.range(1)),
      [](const minimpi::Comm& world, std::vector<double>& data) {
        minimpi::bcast(world, std::span<double>(data), 0);
      });
}

void BM_Allreduce(benchmark::State& state) {
  run_collective_bench(
      state, static_cast<int>(state.range(0)),
      static_cast<std::size_t>(state.range(1)),
      [](const minimpi::Comm& world, std::vector<double>& data) {
        benchmark::DoNotOptimize(minimpi::allreduce(
            world, std::span<const double>(data), minimpi::op::Sum{}));
      });
}

void BM_Allgather(benchmark::State& state) {
  run_collective_bench(
      state, static_cast<int>(state.range(0)),
      static_cast<std::size_t>(state.range(1)),
      [](const minimpi::Comm& world, std::vector<double>& data) {
        benchmark::DoNotOptimize(
            minimpi::allgather(world, std::span<const double>(data)));
      });
}

void BM_AllgatherStrings(benchmark::State& state) {
  // The handshake's key primitive: signature exchange.
  run_collective_bench(
      state, static_cast<int>(state.range(0)), 1,
      [](const minimpi::Comm& world, std::vector<double>&) {
        benchmark::DoNotOptimize(minimpi::allgather_strings(
            world, "component_" + std::to_string(world.rank())));
      });
}

}  // namespace

BENCHMARK(BM_Barrier)->Arg(4)->Arg(16)->Arg(64)->UseManualTime()
    ->Unit(benchmark::kMicrosecond)->Iterations(5);
BENCHMARK(BM_Bcast)
    ->ArgsProduct({{4, 16, 64}, {16, 4096}})
    ->UseManualTime()->Unit(benchmark::kMicrosecond)->Iterations(5);
BENCHMARK(BM_Allreduce)
    ->ArgsProduct({{4, 16, 64}, {16, 4096}})
    ->UseManualTime()->Unit(benchmark::kMicrosecond)->Iterations(5);
BENCHMARK(BM_Allgather)
    ->ArgsProduct({{4, 16, 64}, {16, 1024}})
    ->UseManualTime()->Unit(benchmark::kMicrosecond)->Iterations(5);
BENCHMARK(BM_AllgatherStrings)->Arg(4)->Arg(16)->Arg(64)->UseManualTime()
    ->Unit(benchmark::kMicrosecond)->Iterations(5);

MPH_BENCH_MAIN();
