// E2 — overlapping-component cost (paper §6.2): components that overlap on
// processors cost one MPI_Comm_split *per component*, while disjoint
// components are built with a single split.  Setup time should therefore
// grow roughly linearly in the component count with overlap, and stay flat
// without it.
#include "bench/bench_util.hpp"

using namespace mph;
using namespace mph::bench;

namespace {

/// One multi-component executable of `comps` components over `ranks`
/// processes; if `overlap`, every component covers all processors (the
/// worst case: one split per component), else they tile disjointly.
void BM_MultiComponentSetup(benchmark::State& state) {
  const int comps = static_cast<int>(state.range(0));
  const bool overlap = state.range(1) != 0;
  const int ranks = 10;  // >= max component count, so disjoint tiling works

  std::string registry = "BEGIN\nMulti_Component_Begin\n";
  std::vector<std::string> names;
  for (int i = 0; i < comps; ++i) {
    const std::string name = "c" + std::to_string(i);
    names.push_back(name);
    if (overlap) {
      registry += name + " 0 " + std::to_string(ranks - 1) + "\n";
    } else {
      // Tile the 8 ranks as evenly as the component count allows.
      const int lo = i * ranks / comps;
      const int hi = (i + 1) * ranks / comps - 1;
      registry += name + " " + std::to_string(lo) + " " + std::to_string(hi) +
                  "\n";
    }
  }
  registry += "Multi_Component_End\nEND\n";

  MaxSeconds setup_time;
  for (auto _ : state) {
    setup_time.reset();
    const auto report = minimpi::run_mpmd(
        {minimpi::ExecSpec{
            "exec", ranks,
            [&](const minimpi::Comm& world, const minimpi::ExecEnv&) {
              const util::Timer timer;
              Mph h = Mph::components_setup(
                  world, RegistrySource::from_text(registry), names);
              setup_time.update(timer.seconds());
              benchmark::DoNotOptimize(h.my_components().size());
            },
            {}}},
        bench_job_options());
    require_ok(report, "overlap-setup");
    state.SetIterationTime(setup_time.get());
  }
  state.counters["components"] = comps;
  state.counters["overlap"] = overlap ? 1 : 0;
  state.counters["splits"] = overlap ? comps : 1;
}

}  // namespace

BENCHMARK(BM_MultiComponentSetup)
    ->ArgsProduct({{2, 4, 6, 8, 10}, {0, 1}})
    ->UseManualTime()
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(10);

MPH_BENCH_MAIN();
