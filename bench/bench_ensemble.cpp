// E6 — single-job ensembles vs K independent jobs (paper §2.5): running K
// ocean instances inside ONE MPMD job with on-the-fly statistics, against
// the conventional approach of K separate jobs followed by offline
// post-processing.  The single job amortizes launch cost and is the only
// configuration that can compute the in-flight median / apply dynamic
// control at all.
#include <filesystem>
#include <fstream>
#include <mutex>

#include "bench/bench_util.hpp"
#include "src/climate/scenario.hpp"

using namespace mph;
using namespace mph::bench;
using namespace mph::climate;

namespace {

ClimateConfig ensemble_config() {
  ClimateConfig cfg;
  cfg.ocn_nlon = 24;
  cfg.ocn_nlat = 12;
  cfg.steps_per_interval = 3;
  cfg.intervals = 4;
  return cfg;
}

std::string instance_registry(int k, int ranks_each) {
  std::string text = "BEGIN\nMulti_Instance_Begin\n";
  for (int i = 0; i < k; ++i) {
    const int lo = i * ranks_each;
    text += "Run" + std::to_string(i) + " " + std::to_string(lo) + " " +
            std::to_string(lo + ranks_each - 1) + " diff=" +
            std::to_string(0.5 + 0.25 * i) + "\n";
  }
  text += "Multi_Instance_End\nstatistics\nEND\n";
  return text;
}

/// One MPMD job: K instances + statistics, stats computed in flight.
void BM_EnsembleSingleJob(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int ranks_each = 2;
  const ClimateConfig cfg = ensemble_config();
  const std::string registry = instance_registry(k, ranks_each);

  for (auto _ : state) {
    const util::Timer timer;
    const auto report = minimpi::run_mpmd(
        {
            minimpi::ExecSpec{
                "ensemble", k * ranks_each,
                [&](const minimpi::Comm& world, const minimpi::ExecEnv&) {
                  Mph h = Mph::multi_instance(
                      world, RegistrySource::from_text(registry), "Run");
                  benchmark::DoNotOptimize(
                      run_ensemble_instance(h, cfg, "statistics").my_means);
                },
                {}},
            minimpi::ExecSpec{
                "statistics", 1,
                [&](const minimpi::Comm& world, const minimpi::ExecEnv&) {
                  Mph h = Mph::components_setup(
                      world, RegistrySource::from_text(registry),
                      {"statistics"});
                  benchmark::DoNotOptimize(
                      run_ensemble_statistics(h, cfg, "Run", 0.0).snapshots);
                },
                {}},
        },
        bench_job_options());
    require_ok(report, "ensemble-single-job");
    state.SetIterationTime(timer.seconds());
  }
  state.counters["instances"] = k;
}

/// The conventional alternative: K independent single-model jobs run one
/// after another (as a scheduler would on the same processor allocation).
/// Ensemble statistics of *instantaneous* fields then require each run to
/// dump its field every interval and a post-processing pass to read it
/// all back — exactly the "large data output and storage for
/// post-processing" the paper says the single-job ensemble eliminates.
/// (The in-flight median is additionally impossible without the dumps.)
void BM_EnsembleKSeparateJobs(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int ranks_each = 2;
  const ClimateConfig cfg = ensemble_config();
  const std::filesystem::path dump_dir =
      std::filesystem::temp_directory_path() / "mph_bench_ensemble";
  std::filesystem::create_directories(dump_dir);

  for (auto _ : state) {
    const util::Timer timer;
    // Phase 1: K separate jobs, each dumping per-interval snapshots.
    for (int i = 0; i < k; ++i) {
      const auto report = minimpi::run_spmd(
          ranks_each,
          [&](const minimpi::Comm& world, const minimpi::ExecEnv&) {
            Ocean model(cfg, world);
            model.scale_diffusivity(0.5 + 0.25 * i);
            for (int interval = 0; interval < cfg.intervals; ++interval) {
              for (int s = 0; s < cfg.steps_per_interval; ++s) model.step();
              const std::vector<double> full = model.export_sst();
              if (world.rank() == 0) {
                const auto path =
                    dump_dir / ("run" + std::to_string(i) + "_i" +
                                std::to_string(interval) + ".bin");
                std::ofstream out(path, std::ios::binary);
                out.write(reinterpret_cast<const char*>(full.data()),
                          static_cast<std::streamsize>(full.size() *
                                                       sizeof(double)));
              }
            }
          },
          bench_job_options());
      require_ok(report, "ensemble-separate-jobs");
    }
    // Phase 2: post-processing pass over every dump (mean only — the
    // instantaneous medians computed in flight are recoverable here only
    // because we paid to store every snapshot).
    double total = 0;
    for (int i = 0; i < k; ++i) {
      for (int interval = 0; interval < cfg.intervals; ++interval) {
        const auto path = dump_dir / ("run" + std::to_string(i) + "_i" +
                                      std::to_string(interval) + ".bin");
        std::ifstream in(path, std::ios::binary);
        double v = 0;
        while (in.read(reinterpret_cast<char*>(&v), sizeof(double))) {
          total += v;
        }
      }
    }
    benchmark::DoNotOptimize(total);
    state.SetIterationTime(timer.seconds());
  }
  std::filesystem::remove_all(dump_dir);
  state.counters["instances"] = k;
}

}  // namespace

BENCHMARK(BM_EnsembleSingleJob)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);
BENCHMARK(BM_EnsembleKSeparateJobs)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

MPH_BENCH_MAIN();
