// Shared helpers for the MPH benchmark suite (experiments E1-E10, see
// DESIGN.md §4 and EXPERIMENTS.md).
//
// Benchmarks that measure an in-job quantity (handshake time, collective
// latency, transfer throughput) run a fresh MPMD job per iteration and
// extract the *maximum across ranks* of the per-rank timing — the number a
// user would see as "setup cost" — reporting it through
// benchmark::State::SetIterationTime (manual-time mode).
#pragma once

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "src/minimpi/launcher.hpp"
#include "src/mph/mph.hpp"
#include "src/util/timer.hpp"

namespace mph::bench {

inline minimpi::JobOptions bench_job_options() {
  minimpi::JobOptions options;
  options.recv_timeout = std::chrono::seconds(120);
  return options;
}

/// Atomically accumulate the maximum of per-rank timings (seconds).
class MaxSeconds {
 public:
  void update(double seconds) noexcept {
    double current = max_.load(std::memory_order_relaxed);
    while (seconds > current &&
           !max_.compare_exchange_weak(current, seconds,
                                       std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double get() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { max_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> max_{0.0};
};

/// Registry text for `n` single-component executables c0..c{n-1} (SCME).
inline std::string scme_registry(int n) {
  std::string text = "BEGIN\n";
  for (int i = 0; i < n; ++i) text += "c" + std::to_string(i) + "\n";
  text += "END\n";
  return text;
}

/// Command file for `n` single-component executables with `ranks_each`
/// processes each, every rank performing MPH setup and timing it.
inline std::vector<minimpi::ExecSpec> scme_job(int n, int ranks_each,
                                               const std::string& registry,
                                               MaxSeconds& setup_time,
                                               mph::HandshakeOptions options = {}) {
  std::vector<minimpi::ExecSpec> specs;
  specs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    specs.push_back(minimpi::ExecSpec{
        "c" + std::to_string(i), ranks_each,
        [&registry, &setup_time, i, options](const minimpi::Comm& world,
                                             const minimpi::ExecEnv&) {
          const util::Timer timer;
          mph::Mph h = mph::Mph::components_setup(
              world, mph::RegistrySource::from_text(registry),
              {"c" + std::to_string(i)}, options);
          setup_time.update(timer.seconds());
          benchmark::DoNotOptimize(h.total_components());
        },
        {}});
  }
  return specs;
}

/// Abort the benchmark binary loudly if a job failed (a silent failure
/// would report nonsense timings).
inline void require_ok(const minimpi::JobReport& report, const char* what) {
  if (!report.ok) {
    std::fprintf(stderr, "benchmark job '%s' failed: %s\n", what,
                 report.abort_reason.c_str());
    std::abort();
  }
}

/// Entry point shared by every benchmark binary (via MPH_BENCH_MAIN): the
/// standard Google Benchmark main, plus a `--json <file>` (or
/// `--json=<file>`) convenience flag expanded to
/// `--benchmark_out=<file> --benchmark_out_format=json` — the machine
/// readable reporter consumed by scripts/check_bench_regression.py and the
/// perf-smoke CI job.
inline int run_bench_main(int argc, char** argv) {
  std::vector<std::string> storage;
  storage.reserve(static_cast<std::size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    constexpr const char* kJsonEq = "--json=";
    if (arg == "--json" && i + 1 < argc) {
      storage.push_back("--benchmark_out=" + std::string(argv[++i]));
      storage.emplace_back("--benchmark_out_format=json");
    } else if (arg.rfind(kJsonEq, 0) == 0) {
      storage.push_back("--benchmark_out=" + arg.substr(std::strlen(kJsonEq)));
      storage.emplace_back("--benchmark_out_format=json");
    } else {
      storage.push_back(arg);
    }
  }
  std::vector<char*> args;
  args.reserve(storage.size());
  for (std::string& s : storage) args.push_back(s.data());
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace mph::bench

/// Drop-in replacement for BENCHMARK_MAIN() adding the `--json` flag.
#define MPH_BENCH_MAIN()                           \
  int main(int argc, char** argv) {                \
    return mph::bench::run_bench_main(argc, argv); \
  }                                                \
  int main(int argc, char** argv)
