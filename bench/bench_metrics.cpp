// E11 — telemetry overhead (DESIGN.md §12): the metrics registry is a
// handful of relaxed atomic increments per message, so the mailbox hot
// path with the monitor on must stay within 2x of the monitor-off path
// (perf-smoke enforces the pairing via `check_bench_regression.py
// overhead`).  Also pins the raw per-hook cost of the registry itself,
// and the same pairing for mph_watch (DESIGN.md §17): the health-rule
// engine runs on the monitor thread's reader side, so a ticking monitor
// with the watcher judging every snapshot must stay within 2x of the
// same ticking monitor without it.
#include <chrono>
#include <filesystem>

#include "bench/bench_util.hpp"
#include "src/minimpi/metrics.hpp"

using namespace mph;
using namespace mph::bench;

namespace {

// Enough round trips that a job spans several monitor ticks: the reported
// per-round-trip time then reflects steady-state overhead (hooks plus the
// amortized tick), not whether a single tick happened to land mid-timer.
constexpr int kRoundTripsPerJob = 2000;

minimpi::JobOptions monitored_job_options(bool monitor) {
  minimpi::JobOptions options = bench_job_options();
  if (monitor) {
    options.monitor.enabled = true;
    // A real, ticking monitor thread: the measured overhead includes the
    // aggregate-on-read scans racing the hot path, not just the hooks.
    options.monitor.interval = std::chrono::milliseconds(5);
    options.monitor.dir =
        (std::filesystem::temp_directory_path() / "mph_bench_metrics").string();
  }
  return options;
}

/// Monitor ticking either way; `watch` adds the health-rule engine judging
/// every published snapshot.  The on/off delta is the whole watch cost as
/// the hot path sees it.
minimpi::JobOptions watched_job_options(bool watch) {
  minimpi::JobOptions options = monitored_job_options(true);
  if (watch) {
    options.watch.enabled = true;
    options.watch.flight_record = false;  // no tracer in the bench job
    options.watch.dir = options.monitor.dir;
  }
  return options;
}

/// One ping-pong job under `options`; returns the ping rank's measured
/// per-round-trip seconds (the bench_p2p body, telemetry the only knob).
double pingpong_seconds(std::size_t doubles, minimpi::JobOptions options) {
  const std::string registry = "BEGIN\nping\npong\nEND\n";
  MaxSeconds rt_time;
  auto ping = [&](const minimpi::Comm& world, const minimpi::ExecEnv&) {
    Mph h = Mph::components_setup(world, RegistrySource::from_text(registry),
                                  {"ping"});
    std::vector<double> buf(doubles, 1.0);
    const util::Timer timer;
    for (int i = 0; i < kRoundTripsPerJob; ++i) {
      h.send(std::span<const double>(buf), "pong", 0, 7);
      h.recv(std::span<double>(buf), "pong", 0, 8);
    }
    rt_time.update(timer.seconds() / kRoundTripsPerJob);
  };
  auto pong = [&](const minimpi::Comm& world, const minimpi::ExecEnv&) {
    Mph h = Mph::components_setup(world, RegistrySource::from_text(registry),
                                  {"pong"});
    std::vector<double> buf(doubles);
    for (int i = 0; i < kRoundTripsPerJob; ++i) {
      h.recv(std::span<double>(buf), "ping", 0, 7);
      h.send(std::span<const double>(buf), "ping", 0, 8);
    }
  };
  const auto report =
      minimpi::run_mpmd({{"ping", 1, ping, {}}, {"pong", 1, pong, {}}},
                        std::move(options));
  require_ok(report, "metrics pingpong");
  return rt_time.get();
}

/// The bench_p2p ping-pong, parameterized on whether the monitor is live.
/// Same registry, same traffic — the only variable is telemetry.
void BM_MetricsPingPong(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const bool monitor = state.range(1) != 0;
  const std::size_t doubles = std::max<std::size_t>(1, bytes / sizeof(double));
  for (auto _ : state) {
    state.SetIterationTime(
        pingpong_seconds(doubles, monitored_job_options(monitor)));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) * 2 *
      static_cast<std::int64_t>(doubles * sizeof(double)));
}

/// The same traffic under a ticking monitor, with and without the watcher
/// judging every snapshot — the mph_watch overhead pair perf-smoke gates
/// at 2x.
void BM_WatchPingPong(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const bool watch = state.range(1) != 0;
  const std::size_t doubles = std::max<std::size_t>(1, bytes / sizeof(double));
  for (auto _ : state) {
    state.SetIterationTime(
        pingpong_seconds(doubles, watched_job_options(watch)));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) * 2 *
      static_cast<std::int64_t>(doubles * sizeof(double)));
}

/// Raw cost of one send+deliver+match hook sequence on the registry —
/// the per-message price floor of telemetry, independent of the mailbox.
void BM_MetricsHooks(benchmark::State& state) {
  minimpi::MetricsRegistry reg(2);
  std::uint64_t i = 0;
  for (auto _ : state) {
    reg.on_send(0, 64);
    reg.on_delivered(1, 64);
    reg.on_match(1, ++i);
    benchmark::DoNotOptimize(reg);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

}  // namespace

BENCHMARK(BM_MetricsPingPong)
    ->ArgsProduct({{256, 65536}, {0, 1}})
    ->ArgNames({"bytes", "monitor"})
    ->UseManualTime()
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(3);

BENCHMARK(BM_WatchPingPong)
    ->ArgsProduct({{256, 65536}, {0, 1}})
    ->ArgNames({"bytes", "watch"})
    ->UseManualTime()
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(3);

BENCHMARK(BM_MetricsHooks);

MPH_BENCH_MAIN();
