// E7 — joint-communicator data redistribution (the paper's §5.1
// motivation): moving a field between two components' decompositions over
// the communicator from MPH_comm_join.  Throughput vs field size and rank
// layout, plus schedule-construction cost.
#include "bench/bench_util.hpp"
#include "src/coupler/field.hpp"
#include "src/coupler/router.hpp"

using namespace mph;
using namespace mph::bench;
using mph::coupler::Decomp;
using mph::coupler::Field;
using mph::coupler::Router;
using mph::coupler::Side;

namespace {

constexpr int kTransfersPerJob = 20;

void BM_RouterTransfer(benchmark::State& state) {
  const auto elements = static_cast<std::int64_t>(state.range(0));
  const int n_src = static_cast<int>(state.range(1));
  const int n_dst = static_cast<int>(state.range(2));
  const std::string registry = "BEGIN\nsrc\ndst\nEND\n";
  const Decomp src = Decomp::block(elements, n_src);
  const Decomp dst = Decomp::cyclic(elements, n_dst, 8);

  MaxSeconds transfer_time;
  auto src_body = [&](const minimpi::Comm& world, const minimpi::ExecEnv&) {
    Mph h = Mph::components_setup(world, RegistrySource::from_text(registry),
                                  {"src"});
    const minimpi::Comm joint = h.comm_join("src", "dst");
    const Router router(joint, src, dst, Side::source);
    Field field(src, h.local_proc_id());
    field.fill([](std::int64_t g) { return static_cast<double>(g); });
    const util::Timer timer;
    for (int i = 0; i < kTransfersPerJob; ++i) {
      router.transfer(field.data(), {}, 3);
    }
    transfer_time.update(timer.seconds() / kTransfersPerJob);
  };
  auto dst_body = [&](const minimpi::Comm& world, const minimpi::ExecEnv&) {
    Mph h = Mph::components_setup(world, RegistrySource::from_text(registry),
                                  {"dst"});
    const minimpi::Comm joint = h.comm_join("src", "dst");
    const Router router(joint, src, dst, Side::destination);
    Field field(dst, h.local_proc_id());
    const util::Timer timer;
    for (int i = 0; i < kTransfersPerJob; ++i) {
      router.transfer({}, field.data(), 3);
    }
    transfer_time.update(timer.seconds() / kTransfersPerJob);
  };

  for (auto _ : state) {
    transfer_time.reset();
    const auto report = minimpi::run_mpmd(
        {{"src", n_src, src_body, {}}, {"dst", n_dst, dst_body, {}}},
        bench_job_options());
    require_ok(report, "router-transfer");
    state.SetIterationTime(transfer_time.get());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          elements * static_cast<std::int64_t>(sizeof(double)));
  state.counters["elements"] = static_cast<double>(elements);
  state.counters["layout"] = n_src * 100 + n_dst;
}

void BM_RouterScheduleConstruction(benchmark::State& state) {
  // Schedule construction is pure local arithmetic over decomposition
  // metadata; the job exists only to provide the joint communicator.
  const auto elements = static_cast<std::int64_t>(state.range(0));
  const Decomp src = Decomp::block(elements, 4);
  const Decomp dst = Decomp::cyclic(elements, 4, 8);
  for (auto _ : state) {
    MaxSeconds build_time;
    const auto r = minimpi::run_mpmd(
        {{"src", 4,
          [&](const minimpi::Comm& world, const minimpi::ExecEnv&) {
            Mph h = Mph::components_setup(
                world, RegistrySource::from_text("BEGIN\nsrc\ndst\nEND\n"),
                {"src"});
            const minimpi::Comm joint = h.comm_join("src", "dst");
            const util::Timer timer;
            const Router router(joint, src, dst, Side::source);
            build_time.update(timer.seconds());
            benchmark::DoNotOptimize(router.message_count());
          },
          {}},
         {"dst", 4,
          [&](const minimpi::Comm& world, const minimpi::ExecEnv&) {
            Mph h = Mph::components_setup(
                world, RegistrySource::from_text("BEGIN\nsrc\ndst\nEND\n"),
                {"dst"});
            const minimpi::Comm joint = h.comm_join("src", "dst");
            const Router router(joint, src, dst, Side::destination);
            benchmark::DoNotOptimize(router.message_count());
          },
          {}}},
        bench_job_options());
    require_ok(r, "schedule-construction");
    state.SetIterationTime(build_time.get());
  }
  state.counters["elements"] = static_cast<double>(elements);
}

}  // namespace

BENCHMARK(BM_RouterTransfer)
    ->Args({4096, 2, 2})
    ->Args({65536, 2, 2})
    ->Args({262144, 2, 2})
    ->Args({65536, 4, 4})
    ->Args({65536, 8, 8})
    ->Args({65536, 8, 1})
    ->UseManualTime()
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(3);
BENCHMARK(BM_RouterScheduleConstruction)
    ->Arg(4096)
    ->Arg(65536)
    ->Arg(262144)
    ->UseManualTime()
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(3);

MPH_BENCH_MAIN();
