// E12 — cost of elasticity: checkpoint save/load latency by field size,
// the whole-job overhead of running a MIME ensemble with checkpointing on
// versus off (the "ckpt:0 / ckpt:1" pair gated relatively by perf-smoke,
// like the monitor overhead), and the end-to-end price of one member
// kill + respawn + rejoin + restore cycle.
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/climate/scenario.hpp"
#include "src/mph/recover.hpp"

using namespace mph;
using namespace mph::bench;
using namespace mph::climate;
using mph::recover::Checkpoint;
using mph::recover::CheckpointStore;

namespace {

std::string bench_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("mph_bench_recover_" + name);
  std::filesystem::remove_all(dir);
  return dir.string();
}

ClimateConfig recover_config() {
  ClimateConfig cfg;
  cfg.ocn_nlon = 24;
  cfg.ocn_nlat = 12;
  cfg.steps_per_interval = 3;
  cfg.intervals = 4;
  return cfg;
}

const std::string kRegistry = R"(BEGIN
Multi_Instance_Begin
Run0 0 1 diff=0.5
Run1 2 3 diff=0.8
Run2 4 5 diff=1.3
Run3 6 7 diff=2.0
Multi_Instance_End
statistics
END
)";

/// Durable round trip of one member checkpoint: serialize + CRC + atomic
/// rename on save, read + verify + parse on load.
void BM_CheckpointSaveLoad(benchmark::State& state) {
  const auto doubles = static_cast<std::size_t>(state.range(0));
  const CheckpointStore store(bench_dir("saveload"), /*retain=*/2);
  const std::vector<double> field(doubles, 3.25);
  std::uint64_t step = 0;
  for (auto _ : state) {
    const util::Timer timer;
    Checkpoint ckpt(step);
    ckpt.put_doubles("primary", field);
    ckpt.put_scalar("t", static_cast<double>(step));
    store.save("member", ckpt);
    const auto back = store.load_step("member", step);
    state.SetIterationTime(timer.seconds());
    if (!back.has_value()) std::abort();
    benchmark::DoNotOptimize(back->doubles("primary").front());
    ++step;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(doubles * sizeof(double)));
}

/// Whole MIME ensemble job, checkpointing off (ckpt:0) vs on (ckpt:1).
/// perf-smoke gates ckpt:1 relative to ckpt:0 measured in the same run.
void BM_EnsembleRecover(benchmark::State& state) {
  const bool ckpt = state.range(0) != 0;
  const ClimateConfig cfg = recover_config();
  const std::string store_dir = bench_dir("ensemble");

  for (auto _ : state) {
    std::filesystem::remove_all(store_dir);  // every run starts cold
    const util::Timer timer;
    const auto report = minimpi::run_mpmd(
        {
            minimpi::ExecSpec{
                "ensemble", 8,
                [&](const minimpi::Comm& world, const minimpi::ExecEnv&) {
                  Mph h = Mph::multi_instance(
                      world, RegistrySource::from_text(kRegistry), "Run");
                  CheckpointStore store(store_dir);
                  const RecoverySpec spec{&store};
                  benchmark::DoNotOptimize(
                      run_ensemble_instance(h, cfg, "statistics",
                                            ckpt ? &spec : nullptr)
                          .my_means);
                },
                {}},
            minimpi::ExecSpec{
                "statistics", 1,
                [&](const minimpi::Comm& world, const minimpi::ExecEnv&) {
                  Mph h = Mph::components_setup(
                      world, RegistrySource::from_text(kRegistry),
                      {"statistics"});
                  CheckpointStore store(store_dir);
                  const RecoverySpec spec{&store};
                  benchmark::DoNotOptimize(
                      run_ensemble_statistics(h, cfg, "Run", 0.5,
                                              ckpt ? &spec : nullptr)
                          .snapshots);
                },
                {}},
        },
        bench_job_options());
    state.SetIterationTime(timer.seconds());
    require_ok(report, "ensemble recover");
  }
}

/// One full heal cycle: a member killed mid-run, respawned by the
/// supervisor, rejoining via the blackboard and restoring its checkpoint.
/// Reported time is the whole job; the fault-free job above is the
/// reference for how much of it the heal adds.
void BM_MemberRejoinHeal(benchmark::State& state) {
  const ClimateConfig cfg = recover_config();
  const std::string store_dir = bench_dir("heal");

  HandshakeOptions handshake;
  handshake.isolate_instances = true;
  handshake.liveness.attempts = 100;
  handshake.liveness.backoff = std::chrono::milliseconds(20);
  handshake.liveness.backoff_factor = 1.0;

  for (auto _ : state) {
    std::filesystem::remove_all(store_dir);
    minimpi::JobOptions job = bench_job_options();
    job.respawn.enabled = true;
    job.respawn.max_respawns = 2;
    job.respawn.backoff = std::chrono::milliseconds(2);
    job.faults.kill_at_step(2, 2 * 2);  // Run1's first rank, interval 2

    const util::Timer timer;
    const auto report = minimpi::run_mpmd(
        {
            minimpi::ExecSpec{
                "ensemble", 8,
                [&](const minimpi::Comm& world,
                    const minimpi::ExecEnv& env) {
                  Mph h = env.incarnation == 0
                              ? Mph::multi_instance(
                                    world,
                                    RegistrySource::from_text(kRegistry),
                                    "Run", handshake)
                              : Mph::rejoin_instance(world, "Run",
                                                     handshake);
                  CheckpointStore store(store_dir);
                  const RecoverySpec spec{&store};
                  benchmark::DoNotOptimize(
                      run_ensemble_instance(h, cfg, "statistics", &spec)
                          .my_means);
                },
                {}},
            minimpi::ExecSpec{
                "statistics", 1,
                [&](const minimpi::Comm& world, const minimpi::ExecEnv&) {
                  Mph h = Mph::components_setup(
                      world, RegistrySource::from_text(kRegistry),
                      {"statistics"}, handshake);
                  CheckpointStore store(store_dir);
                  const RecoverySpec spec{&store};
                  benchmark::DoNotOptimize(
                      run_ensemble_statistics(h, cfg, "Run", 0.5, &spec)
                          .snapshots);
                },
                {}},
        },
        std::move(job));
    state.SetIterationTime(timer.seconds());
    require_ok(report, "member rejoin heal");
    if (!report.recovery.healed()) std::abort();
  }
}

}  // namespace

BENCHMARK(BM_CheckpointSaveLoad)
    ->ArgsProduct({{1024, 65536, 1048576}})
    ->ArgNames({"doubles"})
    ->UseManualTime()
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(8);

BENCHMARK(BM_EnsembleRecover)
    ->ArgsProduct({{0, 1}})
    ->ArgNames({"ckpt"})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

BENCHMARK(BM_MemberRejoinHeal)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

MPH_BENCH_MAIN();
