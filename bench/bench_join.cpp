// E3 — MPH_comm_join cost (paper §5.1): creating the merged communicator
// over two components of sizes |A| and |B|.  The protocol is one context
// allocation on the union leader plus one control message per member, so
// cost should scale with |A| + |B| and be independent of the rest of the
// job.
#include "bench/bench_util.hpp"

using namespace mph;
using namespace mph::bench;

namespace {

void BM_CommJoin(benchmark::State& state) {
  const int size_a = static_cast<int>(state.range(0));
  const int size_b = static_cast<int>(state.range(1));
  const int bystanders = static_cast<int>(state.range(2));
  const std::string registry = bystanders > 0
                                   ? "BEGIN\nA\nB\nidle\nEND\n"
                                   : "BEGIN\nA\nB\nEND\n";
  constexpr int kJoinsPerJob = 50;

  MaxSeconds join_time;
  auto member = [&](const std::string& name) {
    return [&, name](const minimpi::Comm& world, const minimpi::ExecEnv&) {
      Mph h = Mph::components_setup(
          world, RegistrySource::from_text(registry), {name});
      const util::Timer timer;
      for (int i = 0; i < kJoinsPerJob; ++i) {
        const minimpi::Comm joint = h.comm_join("A", "B");
        benchmark::DoNotOptimize(joint.size());
      }
      join_time.update(timer.seconds() / kJoinsPerJob);
    };
  };

  for (auto _ : state) {
    join_time.reset();
    std::vector<minimpi::ExecSpec> specs{
        minimpi::ExecSpec{"A", size_a, member("A"), {}},
        minimpi::ExecSpec{"B", size_b, member("B"), {}},
    };
    if (bystanders > 0) {
      // The join must not involve (or disturb) the rest of the job.
      specs.push_back(minimpi::ExecSpec{
          "idle", bystanders,
          [&](const minimpi::Comm& world, const minimpi::ExecEnv&) {
            Mph h = Mph::components_setup(
                world, RegistrySource::from_text(registry), {"idle"});
            benchmark::DoNotOptimize(h.total_components());
          },
          {}});
    }
    const auto report = minimpi::run_mpmd(specs, bench_job_options());
    require_ok(report, "comm-join");
    state.SetIterationTime(join_time.get());
  }
  state.counters["union"] = size_a + size_b;
  state.counters["bystanders"] = bystanders;
}

}  // namespace

// |A| x |B| sweep, plus a bystander variant showing independence.
BENCHMARK(BM_CommJoin)
    ->Args({1, 1, 0})
    ->Args({2, 2, 0})
    ->Args({4, 4, 0})
    ->Args({8, 8, 0})
    ->Args({16, 16, 0})
    ->Args({4, 16, 0})
    ->Args({8, 8, 16})
    ->UseManualTime()
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(5);

MPH_BENCH_MAIN();
