// E4 — name-addressed inter-component point-to-point (paper §5.2): the
// MPH layer adds only a directory lookup on top of raw world-communicator
// traffic.  Round-trip latency and bandwidth, MPH-addressed vs raw, over a
// message-size sweep.
#include "bench/bench_util.hpp"

using namespace mph;
using namespace mph::bench;

namespace {

constexpr int kRoundTripsPerJob = 200;

/// Ping-pong between the roots of two single-rank components.
void BM_PingPong(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const bool via_mph = state.range(1) != 0;
  const std::string registry = "BEGIN\nping\npong\nEND\n";
  const std::size_t doubles = std::max<std::size_t>(1, bytes / sizeof(double));

  MaxSeconds rt_time;
  auto ping = [&](const minimpi::Comm& world, const minimpi::ExecEnv&) {
    Mph h = Mph::components_setup(world, RegistrySource::from_text(registry),
                                  {"ping"});
    std::vector<double> buf(doubles, 1.0);
    const minimpi::rank_t peer = h.global_rank_of("pong", 0);
    const util::Timer timer;
    for (int i = 0; i < kRoundTripsPerJob; ++i) {
      if (via_mph) {
        h.send(std::span<const double>(buf), "pong", 0, 7);
        h.recv(std::span<double>(buf), "pong", 0, 8);
      } else {
        world.send(std::span<const double>(buf), peer, 7);
        world.recv(std::span<double>(buf), peer, 8);
      }
    }
    rt_time.update(timer.seconds() / kRoundTripsPerJob);
  };
  auto pong = [&](const minimpi::Comm& world, const minimpi::ExecEnv&) {
    Mph h = Mph::components_setup(world, RegistrySource::from_text(registry),
                                  {"pong"});
    std::vector<double> buf(doubles);
    const minimpi::rank_t peer = h.global_rank_of("ping", 0);
    for (int i = 0; i < kRoundTripsPerJob; ++i) {
      if (via_mph) {
        h.recv(std::span<double>(buf), "ping", 0, 7);
        h.send(std::span<const double>(buf), "ping", 0, 8);
      } else {
        world.recv(std::span<double>(buf), peer, 7);
        world.send(std::span<const double>(buf), peer, 8);
      }
    }
  };

  for (auto _ : state) {
    rt_time.reset();
    const auto report = minimpi::run_mpmd(
        {{"ping", 1, ping, {}}, {"pong", 1, pong, {}}}, bench_job_options());
    require_ok(report, "pingpong");
    state.SetIterationTime(rt_time.get());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) * 2 *
      static_cast<std::int64_t>(doubles * sizeof(double)));
  state.counters["via_mph"] = via_mph ? 1 : 0;
}

/// Flow-id stamping overhead (mph_prof): the same MPH ping-pong with the
/// trace ring on vs off.  Tracing adds one relaxed fetch_add per send (the
/// flow id) plus a ring write per event; off is one null branch.  The
/// perf-smoke job gates trace:1 within 1.1x of trace:0.
void BM_PingPong_Traced(benchmark::State& state) {
  const bool traced = state.range(0) != 0;
  constexpr std::size_t kDoubles = 4096 / sizeof(double);
  const std::string registry = "BEGIN\nping\npong\nEND\n";

  minimpi::JobOptions options = bench_job_options();
  options.trace.enabled = traced;

  MaxSeconds rt_time;
  auto ping = [&](const minimpi::Comm& world, const minimpi::ExecEnv&) {
    Mph h = Mph::components_setup(world, RegistrySource::from_text(registry),
                                  {"ping"});
    std::vector<double> buf(kDoubles, 1.0);
    const util::Timer timer;
    for (int i = 0; i < kRoundTripsPerJob; ++i) {
      h.send(std::span<const double>(buf), "pong", 0, 7);
      h.recv(std::span<double>(buf), "pong", 0, 8);
    }
    rt_time.update(timer.seconds() / kRoundTripsPerJob);
  };
  auto pong = [&](const minimpi::Comm& world, const minimpi::ExecEnv&) {
    Mph h = Mph::components_setup(world, RegistrySource::from_text(registry),
                                  {"pong"});
    std::vector<double> buf(kDoubles);
    for (int i = 0; i < kRoundTripsPerJob; ++i) {
      h.recv(std::span<double>(buf), "ping", 0, 7);
      h.send(std::span<const double>(buf), "ping", 0, 8);
    }
  };

  for (auto _ : state) {
    rt_time.reset();
    const auto report = minimpi::run_mpmd(
        {{"ping", 1, ping, {}}, {"pong", 1, pong, {}}}, options);
    require_ok(report, "pingpong-traced");
    state.SetIterationTime(rt_time.get());
  }
  state.counters["bytes"] = kDoubles * sizeof(double);
}

}  // namespace

BENCHMARK(BM_PingPong)
    ->ArgsProduct({{8, 256, 4096, 65536, 1048576, 4194304}, {0, 1}})
    ->UseManualTime()
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(3);
BENCHMARK(BM_PingPong_Traced)
    ->ArgNames({"trace"})
    ->Arg(0)
    ->Arg(1)
    ->UseManualTime()
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(3);

MPH_BENCH_MAIN();
