// E1 — handshake cost (paper §6): how MPH setup time scales with the
// number of ranks and the number of components, for SCME (fast path §6.1
// vs general path §6.2 ablation), MCSE, and MCME layouts.
//
// Claim reproduced: the handshake is a one-shot startup step whose cost
// grows mildly (one allgather + one or two comm splits); the §6.1 fast
// path saves one world split relative to the general path.
#include "bench/bench_util.hpp"

using namespace mph;
using namespace mph::bench;

namespace {

/// SCME: `comps` single-component executables, `ranks_each` ranks apiece.
void BM_Handshake_SCME(benchmark::State& state) {
  const int comps = static_cast<int>(state.range(0));
  const int ranks_each = static_cast<int>(state.range(1));
  const bool fast_path = state.range(2) != 0;
  const std::string registry = scme_registry(comps);
  HandshakeOptions options;
  options.single_split_fast_path = fast_path;
  MaxSeconds setup_time;
  for (auto _ : state) {
    setup_time.reset();
    const auto report = minimpi::run_mpmd(
        scme_job(comps, ranks_each, registry, setup_time, options),
        bench_job_options());
    require_ok(report, "handshake-scme");
    state.SetIterationTime(setup_time.get());
  }
  state.counters["ranks"] = comps * ranks_each;
  state.counters["components"] = comps;
}

/// MCSE: one executable containing `comps` disjoint components.
void BM_Handshake_MCSE(benchmark::State& state) {
  const int comps = static_cast<int>(state.range(0));
  const int ranks_each = static_cast<int>(state.range(1));
  std::string registry = "BEGIN\nMulti_Component_Begin\n";
  std::vector<std::string> names;
  for (int i = 0; i < comps; ++i) {
    registry += "c" + std::to_string(i) + " " + std::to_string(i * ranks_each) +
                " " + std::to_string((i + 1) * ranks_each - 1) + "\n";
    names.push_back("c" + std::to_string(i));
  }
  registry += "Multi_Component_End\nEND\n";

  MaxSeconds setup_time;
  for (auto _ : state) {
    setup_time.reset();
    const auto report = minimpi::run_mpmd(
        {minimpi::ExecSpec{
            "master", comps * ranks_each,
            [&](const minimpi::Comm& world, const minimpi::ExecEnv&) {
              const util::Timer timer;
              Mph h = Mph::components_setup(
                  world, RegistrySource::from_text(registry), names);
              setup_time.update(timer.seconds());
              benchmark::DoNotOptimize(h.total_components());
            },
            {}}},
        bench_job_options());
    require_ok(report, "handshake-mcse");
    state.SetIterationTime(setup_time.get());
  }
  state.counters["ranks"] = comps * ranks_each;
  state.counters["components"] = comps;
}

/// MCME: `execs` executables of 2 disjoint components each.
void BM_Handshake_MCME(benchmark::State& state) {
  const int execs = static_cast<int>(state.range(0));
  const int ranks_each = static_cast<int>(state.range(1));  // per component
  std::string registry = "BEGIN\n";
  for (int e = 0; e < execs; ++e) {
    registry += "Multi_Component_Begin\n";
    registry += "a" + std::to_string(e) + " 0 " +
                std::to_string(ranks_each - 1) + "\n";
    registry += "b" + std::to_string(e) + " " + std::to_string(ranks_each) +
                " " + std::to_string(2 * ranks_each - 1) + "\n";
    registry += "Multi_Component_End\n";
  }
  registry += "END\n";

  MaxSeconds setup_time;
  for (auto _ : state) {
    setup_time.reset();
    std::vector<minimpi::ExecSpec> specs;
    for (int e = 0; e < execs; ++e) {
      specs.push_back(minimpi::ExecSpec{
          "exec" + std::to_string(e), 2 * ranks_each,
          [&registry, &setup_time, e](const minimpi::Comm& world,
                                      const minimpi::ExecEnv&) {
            const util::Timer timer;
            Mph h = Mph::components_setup(
                world, RegistrySource::from_text(registry),
                {"a" + std::to_string(e), "b" + std::to_string(e)});
            setup_time.update(timer.seconds());
            benchmark::DoNotOptimize(h.total_components());
          },
          {}});
    }
    const auto report = minimpi::run_mpmd(specs, bench_job_options());
    require_ok(report, "handshake-mcme");
    state.SetIterationTime(setup_time.get());
  }
  state.counters["ranks"] = execs * 2 * ranks_each;
  state.counters["components"] = execs * 2;
}

/// Baseline: the same MPMD job with NO handshake — isolates launch cost.
void BM_LaunchOnly(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const util::Timer timer;
    const auto report = minimpi::run_spmd(
        ranks, [](const minimpi::Comm&, const minimpi::ExecEnv&) {},
        bench_job_options());
    state.SetIterationTime(timer.seconds());
    require_ok(report, "launch-only");
  }
  state.counters["ranks"] = ranks;
}

}  // namespace

// Sweep: components x ranks-per-component x fast-path(0/1).
BENCHMARK(BM_Handshake_SCME)
    ->ArgsProduct({{2, 4, 8, 16}, {1, 4}, {0, 1}})
    ->UseManualTime()
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(8);
// Wide-job tail of the sweep (paper §6 at CCSM-ensemble scale): 64 and 128
// single-rank components, fast path off/on.  One rank each keeps the thread
// count equal to the component count; fewer iterations since each job spins
// up that many threads.
BENCHMARK(BM_Handshake_SCME)
    ->ArgsProduct({{64, 128}, {1}, {0, 1}})
    ->UseManualTime()
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(3);
BENCHMARK(BM_Handshake_MCSE)
    ->ArgsProduct({{2, 4, 8}, {2, 4}})
    ->UseManualTime()
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(8);
BENCHMARK(BM_Handshake_MCME)
    ->ArgsProduct({{2, 4}, {2, 4}})
    ->UseManualTime()
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(8);
BENCHMARK(BM_LaunchOnly)
    ->Arg(8)
    ->Arg(32)
    ->Arg(64)
    ->UseManualTime()
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(8);

MPH_BENCH_MAIN();
