// E10 — multi-channel output redirection overhead (paper §5.4): lines per
// second through an OutputChannel (line-atomic, mutex-shared sink) against
// a plain unsynchronized ofstream, and the contended case of several ranks
// sharing the combined log.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "bench/bench_util.hpp"
#include "src/mph/redirect.hpp"

using namespace mph;
using namespace mph::bench;

namespace {

std::string bench_dir() {
  const auto dir =
      std::filesystem::temp_directory_path() / "mph_bench_redirect";
  std::filesystem::create_directories(dir);
  return dir.string();
}

void BM_ChannelSingleWriter(benchmark::State& state) {
  const std::string dir = bench_dir();
  OutputChannel channel =
      OutputRouter::instance().open(dir, "bench", 0, true);
  std::int64_t lines = 0;
  for (auto _ : state) {
    channel.stream() << "step diagnostics: mean=1.234 max=5.678 iter=" << lines
                     << '\n';
    ++lines;
  }
  channel.flush();
  state.SetItemsProcessed(lines);
}

void BM_PlainOfstreamBaseline(benchmark::State& state) {
  const std::string path = bench_dir() + "/plain.log";
  std::ofstream out(path, std::ios::app);
  std::int64_t lines = 0;
  for (auto _ : state) {
    out << "step diagnostics: mean=1.234 max=5.678 iter=" << lines << '\n';
    ++lines;
  }
  state.SetItemsProcessed(lines);
}

/// Several ranks of one component hammering the shared combined log.
void BM_CombinedLogContended(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const int lines_per_rank = 500;
  const std::string dir = bench_dir();
  for (auto _ : state) {
    const mph::util::Timer timer;
    const auto report = minimpi::run_spmd(
        ranks,
        [&](const minimpi::Comm& world, const minimpi::ExecEnv&) {
          OutputChannel channel = OutputRouter::instance().open(
              dir, "noisy", world.rank(), /*component_root=*/false);
          for (int i = 0; i < lines_per_rank; ++i) {
            channel.stream() << "rank " << world.rank() << " line " << i
                             << '\n';
          }
          channel.flush();
        },
        bench_job_options());
    require_ok(report, "combined-log");
    state.SetIterationTime(timer.seconds());
  }
  state.SetItemsProcessed(state.iterations() * ranks * lines_per_rank);
  state.counters["ranks"] = ranks;
}

}  // namespace

BENCHMARK(BM_ChannelSingleWriter);
BENCHMARK(BM_PlainOfstreamBaseline);
BENCHMARK(BM_CombinedLogContended)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

MPH_BENCH_MAIN();
