// E9 — end-to-end coupled-model cost under the three wirings (paper §2.2
// vs §2.3 vs §2.4): identical physics, identical per-component processor
// counts, different integration modes.  Reproduces the paper's implicit
// claim that the mode is a deployment choice with negligible runtime
// difference (the handshake is one-shot; the coupling traffic is
// identical).
#include "bench/bench_util.hpp"
#include "src/climate/scenario.hpp"

using namespace mph;
using namespace mph::bench;
using namespace mph::climate;

namespace {

ClimateConfig bench_config() {
  ClimateConfig cfg;
  cfg.atm_nlon = 24;
  cfg.atm_nlat = 12;
  cfg.ocn_nlon = 36;
  cfg.ocn_nlat = 18;
  cfg.steps_per_interval = 2;
  cfg.intervals = 4;
  return cfg;
}

// 7 ranks in every wiring: atm 2, ocn 2, land 1, ice 1, coupler 1.

void BM_Coupled_SCME(benchmark::State& state) {
  const ClimateConfig cfg = bench_config();
  const std::string registry =
      "BEGIN\natmosphere\nocean\nland\nice\ncoupler\nEND\n";
  auto body = [&](const std::string& name, int nprocs) {
    return minimpi::ExecSpec{
        name, nprocs,
        [&, name](const minimpi::Comm& world, const minimpi::ExecEnv&) {
          Mph h = Mph::components_setup(
              world, RegistrySource::from_text(registry), {name});
          benchmark::DoNotOptimize(
              run_coupled_component(h, cfg).mean_series.size());
        },
        {}};
  };
  for (auto _ : state) {
    const util::Timer timer;
    const auto report = minimpi::run_mpmd(
        {body("atmosphere", 2), body("ocean", 2), body("land", 1),
         body("ice", 1), body("coupler", 1)},
        bench_job_options());
    require_ok(report, "coupled-scme");
    state.SetIterationTime(timer.seconds());
    state.counters["messages"] = static_cast<double>(report.stats.messages);
    state.counters["bytes"] = static_cast<double>(report.stats.payload_bytes);
  }
  state.counters["intervals"] = cfg.intervals;
}

void BM_Coupled_MCSE(benchmark::State& state) {
  const ClimateConfig cfg = bench_config();
  const std::string registry = R"(BEGIN
Multi_Component_Begin
atmosphere 0 1
ocean 2 3
land 4 4
ice 5 5
coupler 6 6
Multi_Component_End
END
)";
  for (auto _ : state) {
    const util::Timer timer;
    const auto report = minimpi::run_mpmd(
        {minimpi::ExecSpec{
            "model", 7,
            [&](const minimpi::Comm& world, const minimpi::ExecEnv&) {
              Mph h = Mph::components_setup(
                  world, RegistrySource::from_text(registry),
                  {"atmosphere", "ocean", "land", "ice", "coupler"});
              for (const char* role :
                   {"atmosphere", "ocean", "land", "ice", "coupler"}) {
                if (h.proc_in_component(role)) {
                  benchmark::DoNotOptimize(
                      run_coupled_component(h, cfg).mean_series.size());
                }
              }
            },
            {}}},
        bench_job_options());
    require_ok(report, "coupled-mcse");
    state.SetIterationTime(timer.seconds());
    state.counters["messages"] = static_cast<double>(report.stats.messages);
    state.counters["bytes"] = static_cast<double>(report.stats.payload_bytes);
  }
  state.counters["intervals"] = cfg.intervals;
}

void BM_Coupled_MCME(benchmark::State& state) {
  const ClimateConfig cfg = bench_config();
  const std::string registry = R"(BEGIN
Multi_Component_Begin
atmosphere 0 1
land 2 2
Multi_Component_End
Multi_Component_Begin
ocean 0 1
ice 2 2
Multi_Component_End
coupler
END
)";
  auto body = [&](const std::vector<std::string>& names, int nprocs) {
    return minimpi::ExecSpec{
        names.front(), nprocs,
        [&, names](const minimpi::Comm& world, const minimpi::ExecEnv&) {
          Mph h = Mph::components_setup(
              world, RegistrySource::from_text(registry), names);
          benchmark::DoNotOptimize(
              run_coupled_component(h, cfg).mean_series.size());
        },
        {}};
  };
  for (auto _ : state) {
    const util::Timer timer;
    const auto report = minimpi::run_mpmd(
        {body({"atmosphere", "land"}, 3), body({"ocean", "ice"}, 3),
         body({"coupler"}, 1)},
        bench_job_options());
    require_ok(report, "coupled-mcme");
    state.SetIterationTime(timer.seconds());
    state.counters["messages"] = static_cast<double>(report.stats.messages);
    state.counters["bytes"] = static_cast<double>(report.stats.payload_bytes);
  }
  state.counters["intervals"] = cfg.intervals;
}

/// Flow-id stamping overhead on the coupled integration (mph_prof): the
/// SCME wiring with the trace ring on vs off.  Every coupling message gets
/// a flow id and a ring write when traced; off is one null branch per
/// call.  Times the integration itself (max across ranks), not the
/// end-of-job snapshot assembly — the gate is about the hot path.  The
/// perf-smoke job holds trace:1 within 1.1x of trace:0.
void BM_CcsmStep_Traced(benchmark::State& state) {
  const bool traced = state.range(0) != 0;
  // Near-production grids (T42-ish atmosphere), not the tiny bench_config()
  // ones: the gate measures stamping overhead against a realistic
  // compute-to-message ratio, not against a job that is pure messaging.
  ClimateConfig cfg = bench_config();
  cfg.atm_nlon = 96;
  cfg.atm_nlat = 48;
  cfg.ocn_nlon = 144;
  cfg.ocn_nlat = 72;
  cfg.steps_per_interval = 4;
  cfg.intervals = 16;  // a long job: per-launch scheduling noise amortizes
  const std::string registry =
      "BEGIN\natmosphere\nocean\nland\nice\ncoupler\nEND\n";
  minimpi::JobOptions options = bench_job_options();
  options.trace.enabled = traced;
  MaxSeconds step_time;
  auto body = [&](const std::string& name, int nprocs) {
    return minimpi::ExecSpec{
        name, nprocs,
        [&, name](const minimpi::Comm& world, const minimpi::ExecEnv&) {
          Mph h = Mph::components_setup(
              world, RegistrySource::from_text(registry), {name});
          const util::Timer timer;
          benchmark::DoNotOptimize(
              run_coupled_component(h, cfg).mean_series.size());
          step_time.update(timer.seconds());
        },
        {}};
  };
  for (auto _ : state) {
    step_time.reset();
    const auto report = minimpi::run_mpmd(
        {body("atmosphere", 2), body("ocean", 2), body("land", 1),
         body("ice", 1), body("coupler", 1)},
        options);
    require_ok(report, "ccsm-step-traced");
    state.SetIterationTime(step_time.get());
  }
  state.counters["intervals"] = cfg.intervals;
}

}  // namespace

BENCHMARK(BM_Coupled_SCME)->UseManualTime()
    ->Unit(benchmark::kMillisecond)->Iterations(5);
BENCHMARK(BM_Coupled_MCSE)->UseManualTime()
    ->Unit(benchmark::kMillisecond)->Iterations(5);
BENCHMARK(BM_Coupled_MCME)->UseManualTime()
    ->Unit(benchmark::kMillisecond)->Iterations(5);
BENCHMARK(BM_CcsmStep_Traced)
    ->ArgNames({"trace"})
    ->Arg(0)
    ->Arg(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(5);

MPH_BENCH_MAIN();
