#include "src/util/diagnostics.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "src/util/strings.hpp"

namespace mph::util {

namespace {

std::atomic<int> g_level{-1};  // -1 = uninitialized, read env lazily
std::mutex g_emit_mutex;

thread_local std::string t_label = "-";

[[nodiscard]] DiagLevel level_from_env() noexcept {
  const char* env = std::getenv("MPH_DIAG");
  if (env == nullptr) return DiagLevel::warn;
  const std::string_view v(env);
  if (iequals(v, "off")) return DiagLevel::off;
  if (iequals(v, "error")) return DiagLevel::error;
  if (iequals(v, "warn")) return DiagLevel::warn;
  if (iequals(v, "info")) return DiagLevel::info;
  if (iequals(v, "trace")) return DiagLevel::trace;
  return DiagLevel::warn;
}

[[nodiscard]] const char* level_name(DiagLevel level) noexcept {
  switch (level) {
    case DiagLevel::error: return "ERROR";
    case DiagLevel::warn: return "WARN ";
    case DiagLevel::info: return "INFO ";
    case DiagLevel::trace: return "TRACE";
    case DiagLevel::off: break;
  }
  return "?    ";
}

}  // namespace

void set_diag_level(DiagLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

DiagLevel diag_level() noexcept {
  int v = g_level.load(std::memory_order_relaxed);
  if (v < 0) {
    v = static_cast<int>(level_from_env());
    g_level.store(v, std::memory_order_relaxed);
  }
  return static_cast<DiagLevel>(v);
}

void set_thread_label(std::string label) { t_label = std::move(label); }

std::string_view thread_label() noexcept { return t_label; }

void diag_emit(DiagLevel level, std::string_view message) {
  if (diag_level() < level || level == DiagLevel::off) return;
  const std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[mph %s %s] %.*s\n", level_name(level), t_label.c_str(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace mph::util
