// rng.hpp — deterministic, splittable pseudo-random numbers for workload
// generators and property tests.  We use xoshiro256** (public-domain
// algorithm by Blackman & Vigna): fast, high quality, and — unlike
// std::mt19937 — cheap to seed reproducibly per (test, rank, instance).
#pragma once

#include <array>
#include <cstdint>

namespace mph::util {

/// xoshiro256** generator.  Satisfies UniformRandomBitGenerator so it can
/// drive <random> distributions, but also offers convenience helpers.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seed via SplitMix64 so that nearby seeds give uncorrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift reduction.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    const unsigned __int128 product =
        static_cast<unsigned __int128>((*this)()) * bound;
    return static_cast<std::uint64_t>(product >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Derive an independent child stream, e.g. one per rank.
  [[nodiscard]] Rng split(std::uint64_t stream_id) noexcept {
    return Rng((*this)() ^ (stream_id * 0xd1342543de82ef95ULL + 1));
  }

  /// The full 256-bit generator state, for checkpointing: restoring via
  /// set_state resumes the stream exactly where state() captured it.
  [[nodiscard]] std::array<std::uint64_t, 4> state() const noexcept {
    return {s_[0], s_[1], s_[2], s_[3]};
  }

  void set_state(const std::array<std::uint64_t, 4>& s) noexcept {
    for (int i = 0; i < 4; ++i) s_[i] = s[static_cast<std::size_t>(i)];
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

// ---------------------------------------------------------------------------
// Entropy guard
// ---------------------------------------------------------------------------
// All nondeterminism in a job is supposed to flow from one seed (JobOptions::
// seed) so that verification runs replay byte-identically.  Code that wants a
// fresh, non-reproducible seed must draw it through fresh_entropy_seed();
// while the guard is armed (mph_verify arms it for the whole exploration)
// that call throws instead of silently breaking replay determinism.

/// Arm or disarm the process-wide fresh-entropy ban.
void forbid_fresh_entropy(bool forbid) noexcept;

/// True while fresh (non-reproducible) entropy is banned.
[[nodiscard]] bool fresh_entropy_forbidden() noexcept;

/// The sanctioned source of non-reproducible seeds (std::random_device).
/// Throws std::runtime_error while the ban is armed.
[[nodiscard]] std::uint64_t fresh_entropy_seed();

/// RAII arm/restore of the fresh-entropy ban.
class ScopedEntropyBan {
 public:
  ScopedEntropyBan() : previous_(fresh_entropy_forbidden()) {
    forbid_fresh_entropy(true);
  }
  ScopedEntropyBan(const ScopedEntropyBan&) = delete;
  ScopedEntropyBan& operator=(const ScopedEntropyBan&) = delete;
  ~ScopedEntropyBan() { forbid_fresh_entropy(previous_); }

 private:
  bool previous_;
};

}  // namespace mph::util
