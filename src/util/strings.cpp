#include "src/util/strings.hpp"

#include <algorithm>
#include <cctype>

namespace mph::util {

namespace {
[[nodiscard]] bool is_ws(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' || c == '\v';
}
[[nodiscard]] char lower(char c) noexcept {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}
}  // namespace

std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && is_ws(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_ws(s.back())) s.remove_suffix(1);
  return s;
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_ws(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && !is_ws(s[i])) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view strip_comment(std::string_view line) noexcept {
  const std::size_t pos = line.find_first_of("!#");
  if (pos != std::string_view::npos) line = line.substr(0, pos);
  return line;
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (lower(a[i]) != lower(b[i])) return false;
  }
  return true;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::optional<long long> parse_int(std::string_view s) noexcept {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  long long value = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

std::optional<double> parse_double(std::string_view s) noexcept {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  double value = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

std::optional<bool> parse_bool(std::string_view s) noexcept {
  s = trim(s);
  if (iequals(s, "on") || iequals(s, "true") || iequals(s, "yes") || s == "1")
    return true;
  if (iequals(s, "off") || iequals(s, "false") || iequals(s, "no") || s == "0")
    return false;
  return std::nullopt;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::optional<std::pair<std::string_view, std::string_view>>
split_key_value(std::string_view token) noexcept {
  const std::size_t eq = token.find('=');
  if (eq == std::string_view::npos || eq == 0) return std::nullopt;
  return std::pair{token.substr(0, eq), token.substr(eq + 1)};
}

bool valid_component_name(std::string_view s) noexcept {
  if (s.empty()) return false;
  for (char c : s) {
    if (is_ws(c) || c == '!' || c == '#' || c == '=') return false;
  }
  static constexpr std::string_view kReserved[] = {
      "BEGIN",
      "END",
      "Multi_Component_Begin",
      "Multi_Component_End",
      "Multi_Instance_Begin",
      "Multi_Instance_End",
  };
  for (std::string_view kw : kReserved) {
    if (iequals(s, kw)) return false;
  }
  return true;
}

}  // namespace mph::util
