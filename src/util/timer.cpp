// timer.cpp — intentionally empty: Timer and StatAccumulator are
// header-only, this TU anchors the library target.
#include "src/util/timer.hpp"
