// crc32.hpp — CRC-32 (IEEE 802.3, the zlib polynomial) for integrity
// checking of on-disk artifacts: a corrupted or truncated checkpoint file
// must be rejected deterministically, not interpreted as state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace mph::util {

/// CRC-32 of `bytes`, optionally continuing from a previous value (pass the
/// previous return value as `seed` to checksum data in pieces).
[[nodiscard]] std::uint32_t crc32(std::span<const std::byte> bytes,
                                  std::uint32_t seed = 0) noexcept;

}  // namespace mph::util
