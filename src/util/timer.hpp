// timer.hpp — monotonic wall-clock timing used by benchmarks and the
// diagnostics layer.  A Timer measures elapsed seconds; a StatAccumulator
// aggregates repeated measurements (min/mean/max/stddev) so benchmark
// harnesses can report stable numbers on a time-shared machine.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>

namespace mph::util {

/// Monotonic stopwatch.  Construction starts it; `reset()` restarts it.
class Timer {
 public:
  using clock = std::chrono::steady_clock;

  Timer() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  /// Elapsed time in seconds since construction or last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed time in microseconds.
  [[nodiscard]] double micros() const noexcept { return seconds() * 1e6; }

 private:
  clock::time_point start_;
};

/// Streaming accumulator for repeated scalar measurements (Welford update,
/// numerically stable for long benchmark runs).
class StatAccumulator {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace mph::util
