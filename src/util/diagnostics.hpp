// diagnostics.hpp — process-wide diagnostic logging for the substrate
// itself (not for component output; that is mph::OutputChannel).
//
// minimpi runs many rank-threads in one process, so diagnostics must be
// line-atomic and rank-tagged.  Verbosity is controlled at runtime via
// set_level() or the MPH_DIAG environment variable (off|error|warn|info|trace).
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace mph::util {

enum class DiagLevel : int { off = 0, error = 1, warn = 2, info = 3, trace = 4 };

/// Set the global diagnostic threshold.
void set_diag_level(DiagLevel level) noexcept;

/// Current threshold (reads MPH_DIAG once on first use).
[[nodiscard]] DiagLevel diag_level() noexcept;

/// Name the calling thread for diagnostics (e.g. "rank 3").
void set_thread_label(std::string label);

/// Label of the calling thread ("-" when unset).
[[nodiscard]] std::string_view thread_label() noexcept;

/// Emit one line, atomically, to stderr if `level` passes the threshold.
void diag_emit(DiagLevel level, std::string_view message);

namespace detail {
/// Stream-style builder that emits on destruction.
class DiagLine {
 public:
  explicit DiagLine(DiagLevel level) noexcept : level_(level) {}
  DiagLine(const DiagLine&) = delete;
  DiagLine& operator=(const DiagLine&) = delete;
  ~DiagLine() { diag_emit(level_, stream_.str()); }

  template <class T>
  DiagLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  DiagLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

/// Usage: MPH_DIAG_LOG(info) << "handshake done in " << t << "s";
#define MPH_DIAG_LOG(lvl)                                               \
  if (::mph::util::diag_level() >= ::mph::util::DiagLevel::lvl)         \
  ::mph::util::detail::DiagLine(::mph::util::DiagLevel::lvl)

}  // namespace mph::util
