#include "src/util/crc32.hpp"

#include <array>

namespace mph::util {

namespace {

/// Table for the reflected polynomial 0xEDB88320, built once at startup.
std::array<std::uint32_t, 256> make_table() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& table() noexcept {
  static const std::array<std::uint32_t, 256> t = make_table();
  return t;
}

}  // namespace

std::uint32_t crc32(std::span<const std::byte> bytes,
                    std::uint32_t seed) noexcept {
  const auto& t = table();
  std::uint32_t c = seed ^ 0xFFFFFFFFU;
  for (const std::byte b : bytes) {
    c = t[(c ^ static_cast<std::uint32_t>(b)) & 0xFFU] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFU;
}

}  // namespace mph::util
