#include "src/util/rng.hpp"

#include <atomic>
#include <random>
#include <stdexcept>

namespace mph::util {

namespace {
std::atomic<bool> g_forbid_fresh_entropy{false};
}  // namespace

void forbid_fresh_entropy(bool forbid) noexcept {
  g_forbid_fresh_entropy.store(forbid, std::memory_order_release);
}

bool fresh_entropy_forbidden() noexcept {
  return g_forbid_fresh_entropy.load(std::memory_order_acquire);
}

std::uint64_t fresh_entropy_seed() {
  if (fresh_entropy_forbidden()) {
    throw std::runtime_error(
        "fresh_entropy_seed: unseeded entropy requested while schedule "
        "verification is active; route randomness through the job seed "
        "(JobOptions::seed / mph_verify --seed) instead");
  }
  std::random_device device;
  return (static_cast<std::uint64_t>(device()) << 32) ^ device();
}

}  // namespace mph::util
