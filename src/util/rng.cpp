// rng.cpp — header-only Rng; this TU anchors the library target.
#include "src/util/rng.hpp"
