// strings.hpp — small string utilities shared by every MPH layer.
//
// The registration-file parser (src/mph/registry.cpp) is the main consumer:
// it needs whitespace-tolerant tokenization, comment stripping and strict
// numeric parsing with good error messages.  Everything here is allocation
// light and exception free except where documented.
#pragma once

#include <charconv>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mph::util {

/// Remove leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

/// Split on runs of ASCII whitespace; no empty tokens are produced.
[[nodiscard]] std::vector<std::string_view> split_ws(std::string_view s);

/// Split on a single character delimiter; empty fields are preserved.
[[nodiscard]] std::vector<std::string_view> split(std::string_view s, char delim);

/// Strip an end-of-line comment.  Both Fortran-style `!` (used by the paper's
/// registration files) and shell-style `#` introduce comments.
[[nodiscard]] std::string_view strip_comment(std::string_view line) noexcept;

/// Case-insensitive ASCII equality (registry keywords are case-insensitive).
[[nodiscard]] bool iequals(std::string_view a, std::string_view b) noexcept;

/// True if `s` starts with `prefix` (exact case).
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix) noexcept;

/// Strict integer parse: the whole token must be consumed.
[[nodiscard]] std::optional<long long> parse_int(std::string_view s) noexcept;

/// Strict floating-point parse: the whole token must be consumed.
[[nodiscard]] std::optional<double> parse_double(std::string_view s) noexcept;

/// Parse booleans the way the paper's examples spell them: on/off,
/// true/false, yes/no, 1/0 (case-insensitive).
[[nodiscard]] std::optional<bool> parse_bool(std::string_view s) noexcept;

/// Join tokens with a separator; convenience for diagnostics.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// `"name=value"` → ("name","value"); returns nullopt when no '=' present
/// or the name part is empty.
[[nodiscard]] std::optional<std::pair<std::string_view, std::string_view>>
split_key_value(std::string_view token) noexcept;

/// A valid component name-tag: nonempty, no whitespace, none of the
/// structural registry keywords, and not itself a key=value token.
[[nodiscard]] bool valid_component_name(std::string_view s) noexcept;

}  // namespace mph::util
