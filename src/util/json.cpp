#include "src/util/json.hpp"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace mph::util {

namespace {

[[noreturn]] void type_error(const char* wanted) {
  throw std::runtime_error(std::string("json: value is not ") + wanted);
}

}  // namespace

/// Recursive-descent parser over a string_view; tracks the byte offset so
/// errors point at the offending input.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    // Report line:column, not a byte offset: the documents this parser is
    // pointed at (trace exports, contract conformance inputs) are multi-line
    // and a byte offset is unactionable in an editor.
    std::size_t line = 1;
    std::size_t column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    throw std::runtime_error("json: " + what + " at line " +
                             std::to_string(line) + ", column " +
                             std::to_string(column));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.type_ = JsonValue::Type::string;
        v.string_ = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.type_ = JsonValue::Type::boolean;
        if (consume_literal("true")) {
          v.bool_ = true;
        } else if (consume_literal("false")) {
          v.bool_ = false;
        } else {
          fail("bad literal");
        }
        return v;
      }
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type_ = JsonValue::Type::object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.members_.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type_ = JsonValue::Type::array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items_.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += decode_unicode_escape(); break;
        default: fail("bad escape character");
      }
    }
  }

  std::string decode_unicode_escape() {
    const unsigned code = parse_hex4();
    // Encode the BMP code point as UTF-8.  Surrogate pairs (rare in our own
    // output, which never emits them) are passed through as two 3-byte
    // sequences rather than rejected.
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return out;
  }

  unsigned parse_hex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) fail("unterminated \\u escape");
      const char c = text_[pos_++];
      code <<= 4U;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("bad hex digit in \\u escape");
      }
    }
    return code;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      fail("malformed number '" + token + "'");
    }
    JsonValue v;
    v.type_ = JsonValue::Type::number;
    v.number_ = value;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

bool JsonValue::as_bool() const {
  if (type_ != Type::boolean) type_error("a boolean");
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::number) type_error("a number");
  return number_;
}

long long JsonValue::as_int() const {
  const double value = as_number();
  constexpr double kMax =
      static_cast<double>(std::numeric_limits<long long>::max());
  if (!(value >= -kMax && value <= kMax)) {
    type_error("an integer in range");
  }
  return static_cast<long long>(value);
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::string) type_error("a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (type_ != Type::array) type_error("an array");
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (type_ != Type::object) type_error("an object");
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (type_ != Type::object) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* value = find(key);
  if (value == nullptr) {
    throw std::runtime_error("json: missing key '" + std::string(key) + "'");
  }
  return *value;
}

const JsonValue& JsonValue::at(std::size_t index) const {
  const std::vector<JsonValue>& arr = items();
  if (index >= arr.size()) {
    throw std::runtime_error("json: index " + std::to_string(index) +
                             " out of range (size " +
                             std::to_string(arr.size()) + ")");
  }
  return arr[index];
}

}  // namespace mph::util
