// json.hpp — a minimal read-only JSON parser.
//
// Just enough JSON to consume the files this repo itself produces — the
// mph_trace Chrome-trace export (TraceReport::to_chrome_json) and the
// Google Benchmark `--json` reporter output — without adding a third-party
// dependency.  Full JSON value model (null/bool/number/string/array/
// object), UTF-8 passed through verbatim, \uXXXX escapes decoded for the
// BMP.  Not a validator of last resort: numbers are parsed with strtod,
// and object keys keep their insertion order (duplicates keep the first).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mph::util {

/// An immutable parsed JSON value.
class JsonValue {
 public:
  enum class Type { null, boolean, number, string, array, object };

  /// Parse a complete JSON document.  Throws std::runtime_error (naming the
  /// line and column) on malformed input or trailing garbage.
  static JsonValue parse(std::string_view text);

  JsonValue() = default;

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::null; }

  /// Typed accessors; each throws std::runtime_error on a type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  /// as_number(), truncated; throws when the value is not representable.
  [[nodiscard]] long long as_int() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& items() const;
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members()
      const;

  /// Object lookup: nullptr when `this` is not an object or lacks `key`.
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;
  /// Object lookup that throws std::runtime_error when the key is missing.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;
  /// Array element; throws on out-of-range or non-array.
  [[nodiscard]] const JsonValue& at(std::size_t index) const;

 private:
  friend class JsonParser;

  Type type_ = Type::null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace mph::util
