// router.hpp — data redistribution between two components over a joint
// communicator (the canonical consumer of MPH_comm_join, paper §5.1).
//
// Components A (source) and B (destination) decompose the same global index
// space differently.  A Router intersects the two Decomps — pure local
// arithmetic, since decompositions are deterministic metadata — and derives
// a send/receive schedule: for every (a, b) rank pair with overlapping
// ownership, the overlapping global indices travel in one message.
//
// Rank numbering follows MPH_comm_join(A, B): joint ranks 0..|A|-1 are A's
// processes in component order, |A|..|A|+|B|-1 are B's.
#pragma once

#include <cstdint>
#include <vector>

#include "src/coupler/decomp.hpp"
#include "src/minimpi/comm.hpp"

namespace mph::coupler {

/// Which side of the transfer this process is on.
enum class Side { source, destination };

class Router {
 public:
  /// Build the schedule for one process.
  ///   joint     — communicator from MPH_comm_join(source_comp, dest_comp)
  ///   src/dst   — the two decompositions of the same global size
  ///   side      — whether this process belongs to the source component
  /// The process's side rank is derived from its joint rank.
  Router(minimpi::Comm joint, Decomp src, Decomp dst, Side side);

  /// Move field data from source to destination layout.  Collective over
  /// the joint communicator.  Source processes pass their local data (size
  /// src.local_size(side rank)); destination processes receive into theirs.
  /// A process on the source side leaves `dst_data` untouched and vice
  /// versa (pass an empty span).
  void transfer(std::span<const double> src_data, std::span<double> dst_data,
                minimpi::tag_t tag = 0) const;

  /// Move several fields sharing the same decomposition in one pass; the
  /// per-peer payloads are packed together, so the message count stays at
  /// message_count() regardless of the field count (the multi-variable
  /// coupling exchange pattern).  All spans must have the local size of
  /// their side; the source passes `srcs`, the destination `dsts` (the
  /// other vector is ignored on each side but must have equal length).
  void transfer_many(std::span<const std::span<const double>> srcs,
                     std::span<const std::span<double>> dsts,
                     minimpi::tag_t tag = 0) const;

  [[nodiscard]] Side side() const noexcept { return side_; }
  [[nodiscard]] int side_rank() const noexcept { return side_rank_; }

  /// Number of peer messages this process sends (source side) or receives
  /// (destination side) per transfer — schedule statistics for benches.
  [[nodiscard]] std::size_t message_count() const noexcept {
    return peers_.size();
  }
  /// Total elements this process moves per transfer.
  [[nodiscard]] std::int64_t element_count() const noexcept;

 private:
  /// One peer exchange: the local element positions (in this process's
  /// local storage order) that travel to/from joint rank `peer`.
  struct PeerBlock {
    int peer_joint_rank = -1;
    std::vector<std::int64_t> local_positions;  ///< ascending global order
  };

  /// Throw unless a local-data span covers this rank's decomposition.
  void check_local_span(std::size_t size, const char* what) const;

  minimpi::Comm joint_;
  Decomp src_;
  Decomp dst_;
  Side side_;
  int side_rank_ = -1;
  std::int64_t local_size_ = 0;   ///< my side's local element count
  std::vector<PeerBlock> peers_;  ///< ordered by peer rank
};

}  // namespace mph::coupler
