// decomp.hpp — descriptions of how a global index space is distributed
// over a component's processes.
//
// This is the substrate under the paper's §5.1 motivation ("collective
// operations such as data redistribution could easily be performed" on a
// joint communicator): a flux coupler and a model usually decompose the
// same global grid differently, and the Router (router.hpp) moves data
// between the two layouts.  A Decomp is pure metadata — deterministic from
// (global size, rank count, strategy) — so every process can compute any
// component's layout locally, without communication (the MCT GlobalSegMap
// idea).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace mph::coupler {

/// A contiguous run of global indices owned by one rank.
struct Segment {
  std::int64_t gstart = 0;  ///< first global index
  std::int64_t length = 0;  ///< number of indices

  [[nodiscard]] std::int64_t gend() const noexcept {
    return gstart + length;  // exclusive
  }
  friend bool operator==(const Segment&, const Segment&) = default;
};

/// Distribution of [0, global_size) over nranks processes, as per-rank
/// ordered segment lists.  Local storage order is segment order.
class Decomp {
 public:
  Decomp() = default;

  /// Contiguous blocks; remainder indices go one-each to the lowest ranks
  /// (the classic MPI block distribution).
  static Decomp block(std::int64_t global_size, int nranks);

  /// Block-cyclic with the given chunk size (chunk=1 is pure cyclic).
  static Decomp cyclic(std::int64_t global_size, int nranks,
                       std::int64_t chunk = 1);

  /// Explicit segment lists (validated: disjoint, sorted per rank, covering
  /// [0, global_size) exactly).
  static Decomp from_segments(std::int64_t global_size,
                              std::vector<std::vector<Segment>> per_rank);

  /// Contiguous blocks sized proportionally to `weights` (one non-negative
  /// weight per rank, at least one positive).  Largest-remainder rounding:
  /// each rank gets floor(share) indices, leftovers go one-each to the
  /// largest fractional remainders (ties to the lower rank), so the result
  /// is deterministic and sums exactly to global_size.  The weight-driven
  /// analogue of block() used by the Rebalancer (rebalance.hpp).
  static Decomp weighted(std::int64_t global_size,
                         std::span<const double> weights);

  [[nodiscard]] std::int64_t global_size() const noexcept {
    return global_size_;
  }
  [[nodiscard]] int nranks() const noexcept {
    return static_cast<int>(per_rank_.size());
  }

  /// Segments owned by `rank`, in local storage order.
  [[nodiscard]] const std::vector<Segment>& segments(int rank) const;

  /// Number of indices owned by `rank`.
  [[nodiscard]] std::int64_t local_size(int rank) const;

  /// Owning rank of a global index.
  [[nodiscard]] int owner_of(std::int64_t gidx) const;

  /// Global index of rank's local position.
  [[nodiscard]] std::int64_t to_global(int rank, std::int64_t lidx) const;

  /// Local position of a global index on `rank`, or -1 if not owned.
  [[nodiscard]] std::int64_t to_local(int rank, std::int64_t gidx) const;

  friend bool operator==(const Decomp&, const Decomp&) = default;

 private:
  std::int64_t global_size_ = 0;
  std::vector<std::vector<Segment>> per_rank_;
};

}  // namespace mph::coupler
