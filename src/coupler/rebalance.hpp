// rebalance.hpp — weight-driven repartitioning of a coupled field
// (paper §9 further work (b), "dynamic re-allocation of processors").
//
// The pieces:
//   * Rebalancer — a pure decision box: feed it the measured per-rank step
//     times of the current decomposition; it smooths per-rank throughput
//     with an EWMA and, once the measured imbalance crosses the trigger,
//     proposes a new weighted Decomp (the laik_setweight idea).
//   * repartition() — the data move: shuffle a field from one Decomp to
//     another over the SAME communicator (every rank both sends and
//     receives; the Router cannot do this — its joint-rank numbering
//     assumes disjoint source/destination rank ranges).
//   * weights_from_metrics() — bridge from mph_mon: derive per-rank
//     throughput weights from a MetricsSnapshot's blocked-time gauges.
//
// Everything here is deterministic from its inputs, so all ranks that feed
// identical measurements reach identical decisions without communication —
// the same property the handshake's resolve_layout relies on.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "src/coupler/decomp.hpp"
#include "src/minimpi/comm.hpp"
#include "src/minimpi/metrics.hpp"
#include "src/minimpi/prof/profile.hpp"

namespace mph::coupler {

struct RebalancePolicy {
  /// Propose a new decomposition only when max(step time) / mean(step
  /// time) of the current one reaches this factor.  1.0 rebalances on any
  /// imbalance; the default tolerates 20% before paying the shuffle.
  double trigger_imbalance = 1.2;

  /// EWMA factor applied to per-rank throughput observations: weight_new =
  /// smoothing * observed + (1 - smoothing) * weight_old.  1.0 trusts only
  /// the latest measurement; smaller values damp oscillation between two
  /// layouts ("ping-pong") when step times are noisy.
  double smoothing = 0.5;
};

/// Per-rank throughput (indices per second) of `current` under the
/// measured `step_seconds` — the raw observation the Rebalancer smooths.
/// A rank with zero local work or non-positive time gets the mean
/// throughput of the others (no information, assume average capacity).
[[nodiscard]] std::vector<double> throughput_weights(
    const Decomp& current, std::span<const double> step_seconds);

/// Derive throughput weights from an mph_mon snapshot: a rank's busy time
/// is the snapshot window minus its blocked_ns gauge, and its throughput
/// is local work / busy seconds.  `world_ranks[i]` names the world rank
/// holding decomposition rank i (ranks absent from the snapshot get the
/// mean weight).
[[nodiscard]] std::vector<double> weights_from_metrics(
    const minimpi::MetricsSnapshot& snapshot, const Decomp& current,
    std::span<const minimpi::rank_t> world_ranks);

/// Derive weights from causal blame instead of raw busy time: a rank of a
/// component with critical-path share s gets weight max(0.05, 1 - s), so
/// Decomp::weighted moves work away from the component that actually
/// bounds the job and toward the components with slack.  Blame is
/// aggregated per *component* (the critical path may stick to one rank of
/// a multi-rank slow component; its siblings are just as overloaded).
/// Ranks absent from the profile get the mean weight, mirroring
/// weights_from_metrics.  Deterministic from the profile.
[[nodiscard]] std::vector<double> weights_from_critical_path(
    const minimpi::prof::Profile& profile, const Decomp& current,
    std::span<const minimpi::rank_t> world_ranks);

/// The decision box.  Stateful only for the EWMA-smoothed weights; feeding
/// identical measurement sequences on every rank keeps the instances in
/// lock-step.
class Rebalancer {
 public:
  explicit Rebalancer(RebalancePolicy policy = {}) : policy_(policy) {}

  /// Fold one measurement round (per-rank wall seconds for the same amount
  /// of timestepping under `current`) into the smoothed weights, and
  /// propose a weighted decomposition when the measured imbalance crosses
  /// the policy trigger.  Returns nullopt while balanced enough — or when
  /// the proposal equals `current` (nothing to move).
  [[nodiscard]] std::optional<Decomp> propose(
      const Decomp& current, std::span<const double> step_seconds);

  /// The mph_watch bridge: fold pre-derived throughput weights (e.g.
  /// weights_from_metrics of the snapshot an imbalance alert fired on)
  /// into the EWMA and propose when the *predicted* per-rank times under
  /// `current` — local work divided by smoothed weight — cross the
  /// trigger.  Same determinism contract as propose(): ranks feeding
  /// identical weight vectors reach identical proposals.
  [[nodiscard]] std::optional<Decomp> propose_from_weights(
      const Decomp& current, std::span<const double> observed_weights);

  /// Smoothed per-rank weights accumulated so far (empty before the first
  /// propose()).
  [[nodiscard]] const std::vector<double>& weights() const noexcept {
    return weights_;
  }

  /// max/mean step-time ratio of the last propose() round (0 before).
  [[nodiscard]] double last_imbalance() const noexcept {
    return last_imbalance_;
  }

 private:
  RebalancePolicy policy_;
  std::vector<double> weights_;
  double last_imbalance_ = 0.0;
};

/// Move a field between two decompositions of the same global index space
/// over ONE communicator: every rank sends the intersections of its old
/// segments with each peer's new segments, then receives in ascending peer
/// order.  Sends are buffered (mailbox substrate), so the all-send-then-
/// all-receive order cannot deadlock.  Collective over `comm`; `local`
/// must hold `from.local_size(me)` values, and the returned vector holds
/// `to.local_size(me)`.
[[nodiscard]] std::vector<double> repartition(const minimpi::Comm& comm,
                                              const Decomp& from,
                                              const Decomp& to,
                                              std::span<const double> local,
                                              minimpi::tag_t tag);

}  // namespace mph::coupler
