#include "src/coupler/regrid.hpp"

#include <algorithm>
#include <stdexcept>

namespace mph::coupler {

Regrid1D::Regrid1D(std::int64_t n_src, std::int64_t n_dst)
    : n_src_(n_src), n_dst_(n_dst) {
  if (n_src <= 0 || n_dst <= 0) {
    throw std::invalid_argument("Regrid1D: grid sizes must be positive");
  }
  // Both grids cover [0, 1); src cell j spans [j/n_src, (j+1)/n_src).
  // Weight of src j in dst i = overlap / dst cell width
  //                          = overlap * n_dst.
  const double src_width = 1.0 / static_cast<double>(n_src);
  const double dst_width = 1.0 / static_cast<double>(n_dst);
  for (std::int64_t i = 0; i < n_dst; ++i) {
    const double d_lo = static_cast<double>(i) * dst_width;
    const double d_hi = d_lo + dst_width;
    // Source cells possibly overlapping dst cell i.
    const auto j_first = static_cast<std::int64_t>(d_lo / src_width);
    for (std::int64_t j = j_first; j < n_src; ++j) {
      const double s_lo = static_cast<double>(j) * src_width;
      const double s_hi = s_lo + src_width;
      if (s_lo >= d_hi) break;
      const double overlap = std::min(d_hi, s_hi) - std::max(d_lo, s_lo);
      if (overlap > 0) {
        weights_.push_back(Weight{i, j, overlap / dst_width});
      }
    }
  }
}

void Regrid1D::apply(std::span<const double> src,
                     std::span<double> dst) const {
  if (static_cast<std::int64_t>(src.size()) != n_src_ ||
      static_cast<std::int64_t>(dst.size()) != n_dst_) {
    throw std::invalid_argument("Regrid1D::apply: size mismatch");
  }
  std::fill(dst.begin(), dst.end(), 0.0);
  for (const Weight& w : weights_) {
    dst[static_cast<std::size_t>(w.dst)] +=
        w.value * src[static_cast<std::size_t>(w.src)];
  }
}

Regrid2D::Regrid2D(std::int64_t nx_src, std::int64_t ny_src,
                   std::int64_t nx_dst, std::int64_t ny_dst)
    : nx_src_(nx_src), ny_src_(ny_src), nx_dst_(nx_dst), ny_dst_(ny_dst),
      x_map_(nx_src, nx_dst), y_map_(ny_src, ny_dst) {}

void Regrid2D::apply(std::span<const double> src,
                     std::span<double> dst) const {
  if (static_cast<std::int64_t>(src.size()) != src_size() ||
      static_cast<std::int64_t>(dst.size()) != dst_size()) {
    throw std::invalid_argument("Regrid2D::apply: size mismatch");
  }
  // Separable: remap rows in x, then columns in y.
  std::vector<double> mid(static_cast<std::size_t>(nx_dst_ * ny_src_), 0.0);
  std::vector<double> row_src(static_cast<std::size_t>(nx_src_));
  std::vector<double> row_dst(static_cast<std::size_t>(nx_dst_));
  for (std::int64_t y = 0; y < ny_src_; ++y) {
    std::copy_n(src.begin() + static_cast<std::ptrdiff_t>(y * nx_src_),
                nx_src_, row_src.begin());
    x_map_.apply(row_src, row_dst);
    std::copy_n(row_dst.begin(), nx_dst_,
                mid.begin() + static_cast<std::ptrdiff_t>(y * nx_dst_));
  }
  std::vector<double> col_src(static_cast<std::size_t>(ny_src_));
  std::vector<double> col_dst(static_cast<std::size_t>(ny_dst_));
  for (std::int64_t x = 0; x < nx_dst_; ++x) {
    for (std::int64_t y = 0; y < ny_src_; ++y) {
      col_src[static_cast<std::size_t>(y)] =
          mid[static_cast<std::size_t>(y * nx_dst_ + x)];
    }
    y_map_.apply(col_src, col_dst);
    for (std::int64_t y = 0; y < ny_dst_; ++y) {
      dst[static_cast<std::size_t>(y * nx_dst_ + x)] =
          col_dst[static_cast<std::size_t>(y)];
    }
  }
}

}  // namespace mph::coupler
