#include "src/coupler/decomp.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace mph::coupler {

namespace {
[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("Decomp: " + what);
}
}  // namespace

Decomp Decomp::block(std::int64_t global_size, int nranks) {
  if (global_size < 0) fail("negative global size");
  if (nranks <= 0) fail("nranks must be positive");
  Decomp d;
  d.global_size_ = global_size;
  d.per_rank_.resize(static_cast<std::size_t>(nranks));
  const std::int64_t base = global_size / nranks;
  const std::int64_t extra = global_size % nranks;
  std::int64_t start = 0;
  for (int r = 0; r < nranks; ++r) {
    const std::int64_t len = base + (r < extra ? 1 : 0);
    if (len > 0) {
      d.per_rank_[static_cast<std::size_t>(r)].push_back(Segment{start, len});
    }
    start += len;
  }
  return d;
}

Decomp Decomp::cyclic(std::int64_t global_size, int nranks,
                      std::int64_t chunk) {
  if (global_size < 0) fail("negative global size");
  if (nranks <= 0) fail("nranks must be positive");
  if (chunk <= 0) fail("chunk must be positive");
  Decomp d;
  d.global_size_ = global_size;
  d.per_rank_.resize(static_cast<std::size_t>(nranks));
  std::int64_t start = 0;
  int r = 0;
  while (start < global_size) {
    const std::int64_t len = std::min(chunk, global_size - start);
    d.per_rank_[static_cast<std::size_t>(r)].push_back(Segment{start, len});
    start += len;
    r = (r + 1) % nranks;
  }
  return d;
}

Decomp Decomp::weighted(std::int64_t global_size,
                        std::span<const double> weights) {
  if (global_size < 0) fail("negative global size");
  if (weights.empty()) fail("at least one weight required");
  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0) fail("negative weight");
    total += w;
  }
  if (total <= 0.0) fail("at least one weight must be positive");

  const int nranks = static_cast<int>(weights.size());
  // Largest-remainder apportionment of global_size indices.
  std::vector<std::int64_t> counts(weights.size());
  std::vector<std::pair<double, int>> remainders;  // (-fraction, rank)
  std::int64_t assigned = 0;
  for (int r = 0; r < nranks; ++r) {
    const double share =
        static_cast<double>(global_size) * weights[static_cast<std::size_t>(r)] /
        total;
    counts[static_cast<std::size_t>(r)] = static_cast<std::int64_t>(share);
    assigned += counts[static_cast<std::size_t>(r)];
    remainders.emplace_back(-(share - static_cast<double>(
                                          counts[static_cast<std::size_t>(r)])),
                            r);
  }
  // Ties break toward the lower rank: sort is on (-fraction, rank).
  std::sort(remainders.begin(), remainders.end());
  for (std::size_t i = 0; assigned < global_size; ++i) {
    ++counts[static_cast<std::size_t>(remainders[i % remainders.size()].second)];
    ++assigned;
  }

  Decomp d;
  d.global_size_ = global_size;
  d.per_rank_.resize(weights.size());
  std::int64_t start = 0;
  for (int r = 0; r < nranks; ++r) {
    const std::int64_t len = counts[static_cast<std::size_t>(r)];
    if (len > 0) {
      d.per_rank_[static_cast<std::size_t>(r)].push_back(Segment{start, len});
    }
    start += len;
  }
  return d;
}

Decomp Decomp::from_segments(std::int64_t global_size,
                             std::vector<std::vector<Segment>> per_rank) {
  if (global_size < 0) fail("negative global size");
  if (per_rank.empty()) fail("at least one rank required");
  // Validate: all segments positive, within bounds, sorted per rank, and
  // the union covers [0, global_size) exactly once.
  std::vector<Segment> all;
  for (const auto& segs : per_rank) {
    std::int64_t prev_end = -1;
    for (const Segment& s : segs) {
      if (s.length <= 0) fail("segment with non-positive length");
      if (s.gstart < 0 || s.gend() > global_size) {
        fail("segment outside [0, global_size)");
      }
      if (s.gstart < prev_end) fail("per-rank segments must be sorted");
      prev_end = s.gend();
      all.push_back(s);
    }
  }
  std::sort(all.begin(), all.end(), [](const Segment& a, const Segment& b) {
    return a.gstart < b.gstart;
  });
  std::int64_t cursor = 0;
  for (const Segment& s : all) {
    if (s.gstart != cursor) {
      fail(s.gstart < cursor ? "overlapping segments"
                             : "gap in coverage at index " +
                                   std::to_string(cursor));
    }
    cursor = s.gend();
  }
  if (cursor != global_size) fail("coverage ends before global_size");

  Decomp d;
  d.global_size_ = global_size;
  d.per_rank_ = std::move(per_rank);
  return d;
}

const std::vector<Segment>& Decomp::segments(int rank) const {
  if (rank < 0 || rank >= nranks()) fail("rank out of range");
  return per_rank_[static_cast<std::size_t>(rank)];
}

std::int64_t Decomp::local_size(int rank) const {
  std::int64_t total = 0;
  for (const Segment& s : segments(rank)) total += s.length;
  return total;
}

int Decomp::owner_of(std::int64_t gidx) const {
  if (gidx < 0 || gidx >= global_size_) fail("global index out of range");
  for (int r = 0; r < nranks(); ++r) {
    for (const Segment& s : per_rank_[static_cast<std::size_t>(r)]) {
      if (gidx >= s.gstart && gidx < s.gend()) return r;
    }
  }
  fail("index not covered (corrupt decomposition)");
}

std::int64_t Decomp::to_global(int rank, std::int64_t lidx) const {
  std::int64_t remaining = lidx;
  for (const Segment& s : segments(rank)) {
    if (remaining < s.length) return s.gstart + remaining;
    remaining -= s.length;
  }
  fail("local index " + std::to_string(lidx) + " out of range on rank " +
       std::to_string(rank));
}

std::int64_t Decomp::to_local(int rank, std::int64_t gidx) const {
  std::int64_t offset = 0;
  for (const Segment& s : segments(rank)) {
    if (gidx >= s.gstart && gidx < s.gend()) return offset + (gidx - s.gstart);
    offset += s.length;
  }
  return -1;
}

}  // namespace mph::coupler
