// accumulator.hpp — time accumulation of coupling fields.
//
// Coupled models step faster than they couple: the atmosphere takes many
// steps between flux exchanges, and the coupler must see the *time mean*
// of the flux over the interval, not an instantaneous sample (the CCSM
// flux-coupler averaging rule).  A FieldAccumulator sums per-step
// contributions and produces the interval mean on demand.
#pragma once

#include <span>
#include <stdexcept>
#include <vector>

namespace mph::coupler {

class FieldAccumulator {
 public:
  FieldAccumulator() = default;

  /// Accumulator for local fields of `size` elements.
  explicit FieldAccumulator(std::size_t size) : sum_(size, 0.0) {}

  [[nodiscard]] std::size_t size() const noexcept { return sum_.size(); }
  [[nodiscard]] int samples() const noexcept { return samples_; }

  /// Add one step's field.
  void add(std::span<const double> field) {
    if (field.size() != sum_.size()) {
      throw std::invalid_argument(
          "FieldAccumulator::add: field of " + std::to_string(field.size()) +
          " elements into accumulator of " + std::to_string(sum_.size()));
    }
    for (std::size_t i = 0; i < sum_.size(); ++i) sum_[i] += field[i];
    ++samples_;
  }

  /// Interval mean (throws when no samples were added).
  [[nodiscard]] std::vector<double> mean() const {
    if (samples_ == 0) {
      throw std::logic_error("FieldAccumulator::mean: no samples");
    }
    std::vector<double> result(sum_.size());
    const double inv = 1.0 / samples_;
    for (std::size_t i = 0; i < sum_.size(); ++i) result[i] = sum_[i] * inv;
    return result;
  }

  /// Mean, then reset for the next interval (the per-interval usage).
  [[nodiscard]] std::vector<double> drain() {
    std::vector<double> result = mean();
    reset();
    return result;
  }

  void reset() noexcept {
    std::fill(sum_.begin(), sum_.end(), 0.0);
    samples_ = 0;
  }

  /// The raw running sum, for checkpointing (paired with samples()).
  [[nodiscard]] const std::vector<double>& sum() const noexcept {
    return sum_;
  }

  /// Restore a mid-interval accumulation captured by sum()/samples().
  void restore(std::span<const double> sum, int samples) {
    if (sum.size() != sum_.size()) {
      throw std::invalid_argument(
          "FieldAccumulator::restore: state of " + std::to_string(sum.size()) +
          " elements into accumulator of " + std::to_string(sum_.size()));
    }
    if (samples < 0) {
      throw std::invalid_argument(
          "FieldAccumulator::restore: negative sample count");
    }
    sum_.assign(sum.begin(), sum.end());
    samples_ = samples;
  }

 private:
  std::vector<double> sum_;
  int samples_ = 0;
};

}  // namespace mph::coupler
