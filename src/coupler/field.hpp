// field.hpp — a distributed field: the local portion of a global array
// under a Decomp, owned by one rank of a component.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "src/coupler/decomp.hpp"
#include "src/minimpi/collectives.hpp"
#include "src/minimpi/comm.hpp"

namespace mph::coupler {

class Field {
 public:
  Field() = default;

  /// Local portion of `decomp` on `my_rank` (rank within the owning
  /// component), zero-initialized.
  Field(Decomp decomp, int my_rank)
      : decomp_(std::move(decomp)),
        my_rank_(my_rank),
        data_(static_cast<std::size_t>(decomp_.local_size(my_rank)), 0.0) {}

  [[nodiscard]] const Decomp& decomp() const noexcept { return decomp_; }
  [[nodiscard]] int my_rank() const noexcept { return my_rank_; }
  [[nodiscard]] std::size_t local_size() const noexcept { return data_.size(); }

  [[nodiscard]] std::span<double> data() noexcept { return data_; }
  [[nodiscard]] std::span<const double> data() const noexcept { return data_; }

  [[nodiscard]] double& at_local(std::int64_t lidx) {
    return data_[static_cast<std::size_t>(lidx)];
  }
  [[nodiscard]] double at_local(std::int64_t lidx) const {
    return data_[static_cast<std::size_t>(lidx)];
  }

  /// Fill from a function of the global index (deterministic everywhere).
  void fill(const std::function<double(std::int64_t)>& f) {
    for (std::size_t i = 0; i < data_.size(); ++i) {
      data_[i] = f(decomp_.to_global(my_rank_, static_cast<std::int64_t>(i)));
    }
  }

  /// Global sum over the component (collective over `comm`, which must be
  /// the owning component's communicator).
  [[nodiscard]] double global_sum(const minimpi::Comm& comm) const {
    double local = 0;
    for (double v : data_) local += v;
    return minimpi::allreduce_value(comm, local, minimpi::op::Sum{});
  }

  /// Global min/max over the component (collective).
  [[nodiscard]] double global_min(const minimpi::Comm& comm) const {
    double local = data_.empty() ? 1e300 : data_.front();
    for (double v : data_) local = std::min(local, v);
    return minimpi::allreduce_value(comm, local, minimpi::op::Min{});
  }
  [[nodiscard]] double global_max(const minimpi::Comm& comm) const {
    double local = data_.empty() ? -1e300 : data_.front();
    for (double v : data_) local = std::max(local, v);
    return minimpi::allreduce_value(comm, local, minimpi::op::Max{});
  }

 private:
  Decomp decomp_;
  int my_rank_ = 0;
  std::vector<double> data_;
};

}  // namespace mph::coupler
