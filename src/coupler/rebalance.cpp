#include "src/coupler/rebalance.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace mph::coupler {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("rebalance: " + what);
}

/// Ascending [start, end) overlaps of two sorted segment lists (the same
/// two-pointer sweep the Router uses).
std::vector<std::pair<std::int64_t, std::int64_t>> intersect(
    const std::vector<Segment>& a, const std::vector<Segment>& b) {
  std::vector<std::pair<std::int64_t, std::int64_t>> overlaps;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const std::int64_t lo = std::max(a[i].gstart, b[j].gstart);
    const std::int64_t hi = std::min(a[i].gend(), b[j].gend());
    if (lo < hi) overlaps.emplace_back(lo, hi);
    if (a[i].gend() < b[j].gend()) {
      ++i;
    } else {
      ++j;
    }
  }
  return overlaps;
}

/// Replace non-positive entries with the mean of the positive ones (all
/// equal weights when nothing was measured at all).
void fill_missing_with_mean(std::vector<double>& weights) {
  double sum = 0.0;
  int known = 0;
  for (const double w : weights) {
    if (w > 0.0) {
      sum += w;
      ++known;
    }
  }
  const double mean = known > 0 ? sum / known : 1.0;
  for (double& w : weights) {
    if (w <= 0.0) w = mean;
  }
}

}  // namespace

std::vector<double> throughput_weights(const Decomp& current,
                                       std::span<const double> step_seconds) {
  if (static_cast<int>(step_seconds.size()) != current.nranks()) {
    fail("got " + std::to_string(step_seconds.size()) +
         " step times for a decomposition over " +
         std::to_string(current.nranks()) + " ranks");
  }
  std::vector<double> weights(step_seconds.size(), 0.0);
  for (int r = 0; r < current.nranks(); ++r) {
    const double t = step_seconds[static_cast<std::size_t>(r)];
    const std::int64_t work = current.local_size(r);
    if (t > 0.0 && work > 0) {
      weights[static_cast<std::size_t>(r)] = static_cast<double>(work) / t;
    }
  }
  fill_missing_with_mean(weights);
  return weights;
}

std::vector<double> weights_from_metrics(
    const minimpi::MetricsSnapshot& snapshot, const Decomp& current,
    std::span<const minimpi::rank_t> world_ranks) {
  if (static_cast<int>(world_ranks.size()) != current.nranks()) {
    fail("got " + std::to_string(world_ranks.size()) +
         " world ranks for a decomposition over " +
         std::to_string(current.nranks()) + " ranks");
  }
  std::vector<double> weights(world_ranks.size(), 0.0);
  for (int r = 0; r < current.nranks(); ++r) {
    const minimpi::rank_t world = world_ranks[static_cast<std::size_t>(r)];
    for (const minimpi::RankMetrics& row : snapshot.ranks) {
      if (row.world_rank != world) continue;
      // Busy time = snapshot window minus time spent blocked in waits; a
      // rank that finishes its local work faster blocks longer, so its
      // throughput (work per busy second) comes out higher.
      if (snapshot.t_ns > row.blocked_ns) {
        const double busy_s =
            static_cast<double>(snapshot.t_ns - row.blocked_ns) * 1e-9;
        const std::int64_t work = current.local_size(r);
        if (busy_s > 0.0 && work > 0) {
          weights[static_cast<std::size_t>(r)] =
              static_cast<double>(work) / busy_s;
        }
      }
      break;
    }
  }
  fill_missing_with_mean(weights);
  return weights;
}

std::vector<double> weights_from_critical_path(
    const minimpi::prof::Profile& profile, const Decomp& current,
    std::span<const minimpi::rank_t> world_ranks) {
  if (static_cast<int>(world_ranks.size()) != current.nranks()) {
    fail("got " + std::to_string(world_ranks.size()) +
         " world ranks for a decomposition over " +
         std::to_string(current.nranks()) + " ranks");
  }
  const std::vector<minimpi::prof::ComponentBlame> blame =
      profile.components();
  std::vector<double> weights(world_ranks.size(), 0.0);
  for (int r = 0; r < current.nranks(); ++r) {
    const minimpi::rank_t world = world_ranks[static_cast<std::size_t>(r)];
    for (const minimpi::prof::RankProfile& rp : profile.ranks) {
      if (rp.world_rank != world) continue;
      const std::string component =
          minimpi::TraceReport::component_of(rp.track);
      for (const minimpi::prof::ComponentBlame& cb : blame) {
        if (cb.component != component) continue;
        // Invert blame into capacity headroom: the component that owns
        // the critical path needs relief proportional to its share.  The
        // 0.05 floor keeps every rank schedulable (a fully blamed
        // component still holds some work, so its measurements keep
        // flowing next round).
        weights[static_cast<std::size_t>(r)] =
            std::max(0.05, 1.0 - cb.share);
        break;
      }
      break;
    }
  }
  fill_missing_with_mean(weights);
  return weights;
}

std::optional<Decomp> Rebalancer::propose(const Decomp& current,
                                          std::span<const double> step_seconds) {
  const std::vector<double> observed =
      throughput_weights(current, step_seconds);
  if (weights_.size() != observed.size()) {
    weights_ = observed;  // first round: adopt the observation outright
  } else {
    const double a = std::clamp(policy_.smoothing, 0.0, 1.0);
    for (std::size_t i = 0; i < weights_.size(); ++i) {
      weights_[i] = a * observed[i] + (1.0 - a) * weights_[i];
    }
  }

  double max_t = 0.0;
  double sum_t = 0.0;
  for (const double t : step_seconds) {
    max_t = std::max(max_t, t);
    sum_t += t;
  }
  const double mean_t = sum_t / static_cast<double>(step_seconds.size());
  last_imbalance_ = mean_t > 0.0 ? max_t / mean_t : 0.0;
  if (last_imbalance_ < policy_.trigger_imbalance) return std::nullopt;

  Decomp proposal = Decomp::weighted(current.global_size(),
                                     std::span<const double>(weights_));
  if (proposal == current) return std::nullopt;
  return proposal;
}

std::optional<Decomp> Rebalancer::propose_from_weights(
    const Decomp& current, std::span<const double> observed_weights) {
  if (static_cast<int>(observed_weights.size()) != current.nranks()) {
    fail("got " + std::to_string(observed_weights.size()) +
         " weights for a decomposition over " +
         std::to_string(current.nranks()) + " ranks");
  }
  std::vector<double> observed(observed_weights.begin(),
                               observed_weights.end());
  fill_missing_with_mean(observed);
  if (weights_.size() != observed.size()) {
    weights_ = observed;  // first round: adopt the observation outright
  } else {
    const double a = std::clamp(policy_.smoothing, 0.0, 1.0);
    for (std::size_t i = 0; i < weights_.size(); ++i) {
      weights_[i] = a * observed[i] + (1.0 - a) * weights_[i];
    }
  }

  // Predicted per-rank time under the current layout: work over smoothed
  // throughput — the same quantity propose() measures directly.
  double max_t = 0.0;
  double sum_t = 0.0;
  for (int r = 0; r < current.nranks(); ++r) {
    const double w = weights_[static_cast<std::size_t>(r)];
    const double t =
        w > 0.0 ? static_cast<double>(current.local_size(r)) / w : 0.0;
    max_t = std::max(max_t, t);
    sum_t += t;
  }
  const double mean_t = sum_t / static_cast<double>(current.nranks());
  last_imbalance_ = mean_t > 0.0 ? max_t / mean_t : 0.0;
  if (last_imbalance_ < policy_.trigger_imbalance) return std::nullopt;

  Decomp proposal = Decomp::weighted(current.global_size(),
                                     std::span<const double>(weights_));
  if (proposal == current) return std::nullopt;
  return proposal;
}

std::vector<double> repartition(const minimpi::Comm& comm, const Decomp& from,
                                const Decomp& to, std::span<const double> local,
                                minimpi::tag_t tag) {
  if (from.global_size() != to.global_size()) {
    fail("repartition between different global sizes (" +
         std::to_string(from.global_size()) + " vs " +
         std::to_string(to.global_size()) + ")");
  }
  const int nranks = comm.size();
  if (from.nranks() != nranks || to.nranks() != nranks) {
    fail("decompositions cover " + std::to_string(from.nranks()) + " / " +
         std::to_string(to.nranks()) + " ranks on a communicator of " +
         std::to_string(nranks));
  }
  const int me = comm.rank();
  if (local.size() < static_cast<std::size_t>(from.local_size(me))) {
    fail("local span holds " + std::to_string(local.size()) +
         " values; this rank owns " + std::to_string(from.local_size(me)) +
         " under the source decomposition");
  }

  std::vector<double> result(
      static_cast<std::size_t>(to.local_size(me)), 0.0);

  // Phase 1: send my old data to its new owners (buffered, non-blocking),
  // keeping the self-intersection as a plain local copy.
  std::vector<std::pair<std::int64_t, std::int64_t>> self_overlaps;
  for (int p = 0; p < nranks; ++p) {
    const auto overlaps = intersect(from.segments(me), to.segments(p));
    if (overlaps.empty()) continue;
    if (p == me) {
      self_overlaps = overlaps;
      continue;
    }
    std::vector<double> payload;
    for (const auto& [lo, hi] : overlaps) {
      for (std::int64_t g = lo; g < hi; ++g) {
        payload.push_back(
            local[static_cast<std::size_t>(from.to_local(me, g))]);
      }
    }
    comm.send(std::span<const double>(payload), p, tag);
  }
  for (const auto& [lo, hi] : self_overlaps) {
    for (std::int64_t g = lo; g < hi; ++g) {
      result[static_cast<std::size_t>(to.to_local(me, g))] =
          local[static_cast<std::size_t>(from.to_local(me, g))];
    }
  }

  // Phase 2: receive my new data from its old owners, ascending peer order
  // (both sides enumerate overlaps in ascending global order, so payload
  // layouts agree).
  for (int p = 0; p < nranks; ++p) {
    if (p == me) continue;
    const auto overlaps = intersect(to.segments(me), from.segments(p));
    if (overlaps.empty()) continue;
    std::int64_t count = 0;
    for (const auto& [lo, hi] : overlaps) count += hi - lo;
    std::vector<double> payload(static_cast<std::size_t>(count));
    comm.recv(std::span<double>(payload), p, tag);
    std::size_t cursor = 0;
    for (const auto& [lo, hi] : overlaps) {
      for (std::int64_t g = lo; g < hi; ++g) {
        result[static_cast<std::size_t>(to.to_local(me, g))] =
            payload[cursor++];
      }
    }
  }
  return result;
}

}  // namespace mph::coupler
