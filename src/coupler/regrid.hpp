// regrid.hpp — conservative remapping between grids of different
// resolution (the flux coupler's second job besides redistribution).
//
// First-order conservative scheme on uniform cell-centered grids: each
// destination cell's value is the overlap-length-weighted average of the
// source cells it intersects.  The scheme conserves the integral exactly:
//   sum_dst(v_dst * w_dst) == sum_src(v_src * w_src)
// where w are cell widths (1-D) or areas (2-D tensor product).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace mph::coupler {

/// Sparse weight triplet: dst accumulates weight * src.
struct Weight {
  std::int64_t dst = 0;
  std::int64_t src = 0;
  double value = 0.0;
};

/// 1-D conservative remap between uniform grids covering the same interval.
class Regrid1D {
 public:
  Regrid1D(std::int64_t n_src, std::int64_t n_dst);

  [[nodiscard]] std::int64_t n_src() const noexcept { return n_src_; }
  [[nodiscard]] std::int64_t n_dst() const noexcept { return n_dst_; }
  [[nodiscard]] const std::vector<Weight>& weights() const noexcept {
    return weights_;
  }

  /// Apply: dst[i] = sum_j w_ij src[j].  Sizes must match the grids.
  void apply(std::span<const double> src, std::span<double> dst) const;

 private:
  std::int64_t n_src_;
  std::int64_t n_dst_;
  std::vector<Weight> weights_;
};

/// 2-D conservative remap as the tensor product of two 1-D maps
/// (longitude x latitude).  Fields are stored row-major: index = y*nx + x.
class Regrid2D {
 public:
  Regrid2D(std::int64_t nx_src, std::int64_t ny_src, std::int64_t nx_dst,
           std::int64_t ny_dst);

  void apply(std::span<const double> src, std::span<double> dst) const;

  [[nodiscard]] std::int64_t src_size() const noexcept {
    return nx_src_ * ny_src_;
  }
  [[nodiscard]] std::int64_t dst_size() const noexcept {
    return nx_dst_ * ny_dst_;
  }

 private:
  std::int64_t nx_src_, ny_src_, nx_dst_, ny_dst_;
  Regrid1D x_map_;
  Regrid1D y_map_;
};

}  // namespace mph::coupler
