#include "src/coupler/router.hpp"

#include <stdexcept>
#include <string>

namespace mph::coupler {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("Router: " + what);
}

/// Ascending global indices common to two sorted segment lists
/// (two-pointer sweep over segments, no per-index scan).
std::vector<std::pair<std::int64_t, std::int64_t>> intersect(
    const std::vector<Segment>& a, const std::vector<Segment>& b) {
  std::vector<std::pair<std::int64_t, std::int64_t>> overlaps;  // [start,end)
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const std::int64_t lo = std::max(a[i].gstart, b[j].gstart);
    const std::int64_t hi = std::min(a[i].gend(), b[j].gend());
    if (lo < hi) overlaps.emplace_back(lo, hi);
    if (a[i].gend() < b[j].gend()) {
      ++i;
    } else {
      ++j;
    }
  }
  return overlaps;
}

}  // namespace

Router::Router(minimpi::Comm joint, Decomp src, Decomp dst, Side side)
    : joint_(std::move(joint)), src_(std::move(src)), dst_(std::move(dst)),
      side_(side) {
  if (src_.global_size() != dst_.global_size()) {
    fail("source and destination decompose different global sizes (" +
         std::to_string(src_.global_size()) + " vs " +
         std::to_string(dst_.global_size()) + ")");
  }
  const int n_src = src_.nranks();
  const int n_dst = dst_.nranks();
  if (joint_.size() != n_src + n_dst) {
    fail("joint communicator has " + std::to_string(joint_.size()) +
         " ranks; expected |src| + |dst| = " + std::to_string(n_src + n_dst));
  }
  const int joint_rank = joint_.rank();
  if (side_ == Side::source) {
    if (joint_rank >= n_src) {
      fail("process claims source side but its joint rank " +
           std::to_string(joint_rank) + " lies in the destination range");
    }
    side_rank_ = joint_rank;
  } else {
    if (joint_rank < n_src) {
      fail("process claims destination side but its joint rank " +
           std::to_string(joint_rank) + " lies in the source range");
    }
    side_rank_ = joint_rank - n_src;
  }

  // Build the peer schedule: intersect my segments with every opposite
  // rank's segments; record my local positions in ascending global order
  // (both sides enumerate identically, so payload order agrees).
  const Decomp& mine = side_ == Side::source ? src_ : dst_;
  const Decomp& theirs = side_ == Side::source ? dst_ : src_;
  local_size_ = mine.local_size(side_rank_);
  const int peer_base = side_ == Side::source ? n_src : 0;
  for (int p = 0; p < theirs.nranks(); ++p) {
    const auto overlaps =
        intersect(mine.segments(side_rank_), theirs.segments(p));
    if (overlaps.empty()) continue;
    PeerBlock block;
    block.peer_joint_rank = peer_base + p;
    for (const auto& [lo, hi] : overlaps) {
      for (std::int64_t g = lo; g < hi; ++g) {
        block.local_positions.push_back(mine.to_local(side_rank_, g));
      }
    }
    peers_.push_back(std::move(block));
  }
}

std::int64_t Router::element_count() const noexcept {
  std::int64_t total = 0;
  for (const PeerBlock& p : peers_) {
    total += static_cast<std::int64_t>(p.local_positions.size());
  }
  return total;
}

void Router::check_local_span(std::size_t size, const char* what) const {
  // The schedule indexes local positions up to local_size_ - 1; a short
  // span would read/write out of bounds.
  if (size < static_cast<std::size_t>(local_size_)) {
    fail(std::string(what) + " span holds " + std::to_string(size) +
         " elements; this rank's local decomposition has " +
         std::to_string(local_size_));
  }
}

void Router::transfer(std::span<const double> src_data,
                      std::span<double> dst_data, minimpi::tag_t tag) const {
  check_local_span(
      side_ == Side::source ? src_data.size() : dst_data.size(),
      side_ == Side::source ? "transfer: source" : "transfer: destination");
  if (side_ == Side::source) {
    for (const PeerBlock& peer : peers_) {
      std::vector<double> payload;
      payload.reserve(peer.local_positions.size());
      for (const std::int64_t pos : peer.local_positions) {
        payload.push_back(src_data[static_cast<std::size_t>(pos)]);
      }
      joint_.send(std::span<const double>(payload), peer.peer_joint_rank, tag);
    }
  } else {
    for (const PeerBlock& peer : peers_) {
      std::vector<double> payload(peer.local_positions.size());
      joint_.recv(std::span<double>(payload), peer.peer_joint_rank, tag);
      for (std::size_t i = 0; i < payload.size(); ++i) {
        dst_data[static_cast<std::size_t>(peer.local_positions[i])] =
            payload[i];
      }
    }
  }
}

void Router::transfer_many(std::span<const std::span<const double>> srcs,
                           std::span<const std::span<double>> dsts,
                           minimpi::tag_t tag) const {
  const std::size_t nfields =
      side_ == Side::source ? srcs.size() : dsts.size();
  if (nfields == 0) return;
  if (side_ == Side::source) {
    for (const auto& field : srcs) {
      check_local_span(field.size(), "transfer_many: source field");
    }
  } else {
    for (const auto& field : dsts) {
      check_local_span(field.size(), "transfer_many: destination field");
    }
  }
  if (side_ == Side::source) {
    for (const PeerBlock& peer : peers_) {
      std::vector<double> payload;
      payload.reserve(peer.local_positions.size() * nfields);
      for (const auto& field : srcs) {
        for (const std::int64_t pos : peer.local_positions) {
          payload.push_back(field[static_cast<std::size_t>(pos)]);
        }
      }
      joint_.send(std::span<const double>(payload), peer.peer_joint_rank, tag);
    }
  } else {
    for (const PeerBlock& peer : peers_) {
      std::vector<double> payload(peer.local_positions.size() * nfields);
      joint_.recv(std::span<double>(payload), peer.peer_joint_rank, tag);
      std::size_t cursor = 0;
      for (const auto& field : dsts) {
        for (const std::int64_t pos : peer.local_positions) {
          field[static_cast<std::size_t>(pos)] = payload[cursor++];
        }
      }
    }
  }
}

}  // namespace mph::coupler
