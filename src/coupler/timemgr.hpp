// timemgr.hpp — stepping and coupling-interval bookkeeping for coupled
// runs: each component advances with its own dt, and alarms fire at the
// coupling interval boundaries (the CCSM time-manager pattern, reduced to
// what the toy models need).
#pragma once

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

namespace mph::coupler {

/// A periodic alarm measured in seconds of model time.
class Alarm {
 public:
  Alarm(std::string name, double interval_seconds)
      : name_(std::move(name)), interval_(interval_seconds) {
    if (interval_ <= 0) {
      throw std::invalid_argument("Alarm '" + name_ +
                                  "': interval must be positive");
    }
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] double interval() const noexcept { return interval_; }

  /// True when the alarm fires within (prev_time, current_time].
  [[nodiscard]] bool ringing(double prev_time, double current_time) const {
    const auto k_prev = static_cast<long long>(prev_time / interval_);
    const auto k_cur = static_cast<long long>(current_time / interval_);
    return k_cur > k_prev;
  }

 private:
  std::string name_;
  double interval_;
};

/// Model clock: fixed dt, step counter, named periodic alarms.
class TimeManager {
 public:
  TimeManager(double dt_seconds, double stop_seconds)
      : dt_(dt_seconds), stop_(stop_seconds) {
    if (dt_ <= 0) throw std::invalid_argument("TimeManager: dt must be > 0");
    if (stop_ < 0) {
      throw std::invalid_argument("TimeManager: stop time must be >= 0");
    }
  }

  /// Register a periodic alarm; the interval must be a multiple of dt so
  /// components agree on coupling boundaries.
  void add_alarm(const std::string& name, double interval_seconds) {
    const double ratio = interval_seconds / dt_;
    if (std::abs(ratio - static_cast<long long>(ratio + 0.5)) > 1e-9) {
      throw std::invalid_argument("alarm '" + name +
                                  "' interval is not a multiple of dt");
    }
    alarms_.emplace_back(name, interval_seconds);
  }

  [[nodiscard]] double dt() const noexcept { return dt_; }
  [[nodiscard]] double time() const noexcept {
    return static_cast<double>(step_) * dt_;
  }
  [[nodiscard]] long long step() const noexcept { return step_; }
  [[nodiscard]] bool done() const noexcept { return time() >= stop_; }

  /// Jump the clock to an absolute step, for checkpoint restore: the next
  /// advance() moves to step+1, exactly as if the run had stepped here.
  void restore_step(long long step) {
    if (step < 0) {
      throw std::invalid_argument("TimeManager: cannot restore to step " +
                                  std::to_string(step));
    }
    step_ = step;
  }

  /// Advance one step; returns the names of alarms that fired.
  std::vector<std::string> advance() {
    const double prev = time();
    ++step_;
    const double now = time();
    std::vector<std::string> fired;
    for (const Alarm& alarm : alarms_) {
      if (alarm.ringing(prev, now)) fired.push_back(alarm.name());
    }
    return fired;
  }

  /// True when `name` fires at the current step boundary.
  [[nodiscard]] bool alarm_rang(const std::string& name,
                                const std::vector<std::string>& fired) const {
    for (const std::string& f : fired) {
      if (f == name) return true;
    }
    return false;
  }

 private:
  double dt_;
  double stop_;
  long long step_ = 0;
  std::vector<Alarm> alarms_;
};

}  // namespace mph::coupler
