// timemgr.cpp — header-only TimeManager; this TU anchors the library
// target and keeps <cmath> usage localized.
#include "src/coupler/timemgr.hpp"

#include <cmath>
