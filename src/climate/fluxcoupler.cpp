#include "src/climate/fluxcoupler.hpp"

namespace mph::climate {

double area_mean(const Grid2D& grid, std::span<const double> full) {
  double weighted = 0;
  for (int j = 0; j < grid.nlat(); ++j) {
    const double area = grid.cell_area(j);
    for (int i = 0; i < grid.nlon(); ++i) {
      weighted += full[static_cast<std::size_t>(grid.index(i, j))] * area;
    }
  }
  return weighted / grid.total_area();
}

CouplingResult compute_coupling(const ClimateConfig& cfg,
                                const coupler::Regrid2D& atm_to_ocn,
                                const coupler::Regrid2D& ocn_to_atm,
                                std::span<const double> t_atm,
                                std::span<const double> sst,
                                std::span<const double> icefrac) {
  CouplingResult result;
  std::vector<double> t_on_ocn(sst.size());
  atm_to_ocn.apply(t_atm, t_on_ocn);
  result.sst_on_atm.resize(t_atm.size());
  ocn_to_atm.apply(sst, result.sst_on_atm);

  // Net surface flux into the ocean: air-sea exchange suppressed where ice
  // covers the cell (the coupler's "merge" step).
  result.flux_ocn.resize(sst.size());
  for (std::size_t k = 0; k < sst.size(); ++k) {
    result.flux_ocn[k] =
        cfg.air_sea_coupling * (t_on_ocn[k] - sst[k]) * (1.0 - icefrac[k]);
  }
  return result;
}

FluxCoupler::FluxCoupler(const ClimateConfig& cfg, mph::Mph& handle,
                         Peers peers)
    : cfg_(cfg), handle_(handle), peers_(std::move(peers)),
      atm_grid_(cfg.atm_nlon, cfg.atm_nlat),
      ocn_grid_(cfg.ocn_nlon, cfg.ocn_nlat),
      atm_to_ocn_(cfg.atm_nlon, cfg.atm_nlat, cfg.ocn_nlon, cfg.ocn_nlat),
      ocn_to_atm_(cfg.ocn_nlon, cfg.ocn_nlat, cfg.atm_nlon, cfg.atm_nlat) {}

void FluxCoupler::couple_once() {
  if (handle_.local_proc_id() != 0) return;  // hub lives on the coupler root

  const auto atm_size = static_cast<std::size_t>(atm_grid_.size());
  const auto ocn_size = static_cast<std::size_t>(ocn_grid_.size());

  // --- Receive every model's export from its component root. -------------
  std::vector<double> t_atm(atm_size);
  handle_.recv(std::span<double>(t_atm), peers_.atmosphere, 0,
               tags::t_atm_to_cpl);
  std::vector<double> sst(ocn_size);
  handle_.recv(std::span<double>(sst), peers_.ocean, 0, tags::sst_to_cpl);
  std::vector<double> evap(atm_size);
  handle_.recv(std::span<double>(evap), peers_.land, 0, tags::evap_to_cpl);
  std::vector<double> icefrac(ocn_size);
  handle_.recv(std::span<double>(icefrac), peers_.ice, 0, tags::ice_to_cpl);

  // --- Regrid and merge (shared with the serial reference). ---------------
  const CouplingResult merged =
      compute_coupling(cfg_, atm_to_ocn_, ocn_to_atm_, t_atm, sst, icefrac);

  // --- Send every model's import back to its root. --------------------------
  handle_.send(std::span<const double>(merged.sst_on_atm), peers_.atmosphere,
               0, tags::sst_to_atm);
  handle_.send(std::span<const double>(merged.flux_ocn), peers_.ocean, 0,
               tags::flux_to_ocn);
  handle_.send(std::span<const double>(t_atm), peers_.land, 0,
               tags::t_atm_to_land);
  handle_.send(std::span<const double>(sst), peers_.ice, 0, tags::sst_to_ice);

  // --- Diagnostics. ----------------------------------------------------------
  diag_.mean_t_atm.push_back(area_mean(atm_grid_, t_atm));
  diag_.mean_sst.push_back(area_mean(ocn_grid_, sst));
  diag_.mean_evap.push_back(area_mean(atm_grid_, evap));
  diag_.mean_icefrac.push_back(area_mean(ocn_grid_, icefrac));
}

}  // namespace mph::climate
