#include "src/climate/statistics.hpp"

#include <stdexcept>

namespace mph::climate {

double EnsembleStatistics::median_of(std::vector<double> values) {
  if (values.empty()) {
    throw std::invalid_argument("median of an empty sample");
  }
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid),
                   values.end());
  const double upper = values[mid];
  if (values.size() % 2 == 1) return upper;
  const double lower =
      *std::max_element(values.begin(),
                        values.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lower + upper);
}

EnsembleSnapshot EnsembleStatistics::aggregate(std::vector<double> samples) {
  if (static_cast<int>(samples.size()) != instances_) {
    throw std::invalid_argument(
        "expected " + std::to_string(instances_) + " samples, got " +
        std::to_string(samples.size()));
  }
  util::StatAccumulator acc;
  for (double s : samples) acc.add(s);
  EnsembleSnapshot snap;
  snap.mean = acc.mean();
  snap.variance = acc.variance();
  snap.min = acc.min();
  snap.max = acc.max();
  snap.median = median_of(std::move(samples));
  history_.push_back(snap);
  return snap;
}

std::vector<double> EnsembleStatistics::control_nudges(
    const std::vector<double>& samples, double mean, double gain) const {
  std::vector<double> nudges;
  nudges.reserve(samples.size());
  for (double s : samples) nudges.push_back(gain * (mean - s));
  return nudges;
}

}  // namespace mph::climate
