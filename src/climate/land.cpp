#include "src/climate/models.hpp"

namespace mph::climate {

Land::Land(const ClimateConfig& cfg, const minimpi::Comm& comm)
    : cfg_(cfg), comm_(comm), grid_(cfg.atm_nlon, cfg.atm_nlat),
      moisture_(grid_, comm_), t_atm_(grid_, comm_) {
  moisture_.fill([](int, int) { return 1.0; });  // uniformly moist bucket
}

void Land::step() {
  // Bucket hydrology: dW/dt = P(T) - beta * W, with precipitation rising
  // with temperature above freezing (a crude Clausius-Clapeyron stand-in).
  const int rows = moisture_.local_rows();
  for (int r = 0; r < rows; ++r) {
    for (int i = 0; i < moisture_.nlon(); ++i) {
      const double t = have_t_ ? t_atm_.at(r, i) : 10.0;
      const double precip = cfg_.land_precip_rate * std::max(0.0, t);
      const double evap = cfg_.land_beta * moisture_.at(r, i);
      moisture_.at(r, i) =
          std::max(0.0, moisture_.at(r, i) + cfg_.dt * (precip - evap));
    }
  }
}

void Land::import_temperature(std::span<const double> t_full_on_root) {
  t_atm_.scatter(comm_, t_full_on_root);
  have_t_ = true;
}

std::vector<double> Land::export_evaporation() const {
  // Evaporation field (beta * W), gathered to the component root.
  RowBlockField2D evap = moisture_;
  const int rows = evap.local_rows();
  for (int r = 0; r < rows; ++r) {
    for (int i = 0; i < evap.nlon(); ++i) {
      evap.at(r, i) *= cfg_.land_beta;
    }
  }
  return evap.gather(comm_);
}

}  // namespace mph::climate
