#include "src/climate/grid.hpp"

#include <stdexcept>

#include "src/minimpi/collectives.hpp"

namespace mph::climate {

Grid2D::Grid2D(int nlon, int nlat) : nlon_(nlon), nlat_(nlat) {
  if (nlon <= 0 || nlat <= 0) {
    throw std::invalid_argument("Grid2D: dimensions must be positive");
  }
  total_area_ = 0;
  for (int j = 0; j < nlat; ++j) {
    total_area_ += cell_area(j) * nlon;
  }
}

double Grid2D::latitude(int j) const {
  const double dphi = kPi / nlat_;
  return -kPi / 2 + (j + 0.5) * dphi;
}

double Grid2D::longitude(int i) const {
  const double dlam = 2 * kPi / nlon_;
  return (i + 0.5) * dlam;
}

double Grid2D::cell_area(int j) const {
  const double dphi = kPi / nlat_;
  const double dlam = 2 * kPi / nlon_;
  return dlam * dphi * std::cos(latitude(j));
}

RowBlockField2D::RowBlockField2D(const Grid2D& grid,
                                 const minimpi::Comm& comm) {
  nlon_ = grid.nlon();
  nlat_ = grid.nlat();
  if (comm.size() > nlat_) {
    throw std::invalid_argument(
        "RowBlockField2D: more processes (" + std::to_string(comm.size()) +
        ") than latitude rows (" + std::to_string(nlat_) +
        "); every rank needs at least one row");
  }
  const coupler::Decomp rows = coupler::Decomp::block(nlat_, comm.size());
  const auto& my_segments = rows.segments(comm.rank());
  if (my_segments.empty()) {
    row_lo_ = 0;
    rows_ = 0;
  } else {
    row_lo_ = static_cast<int>(my_segments.front().gstart);
    rows_ = static_cast<int>(my_segments.front().length);
  }
  data_.assign(static_cast<std::size_t>((rows_ + 2) * nlon_), 0.0);
}

void RowBlockField2D::fill(const std::function<double(int, int)>& f) {
  for (int r = 0; r < rows_; ++r) {
    for (int i = 0; i < nlon_; ++i) {
      at(r, i) = f(i, row_lo_ + r);
    }
  }
}

void RowBlockField2D::halo_exchange(const minimpi::Comm& comm,
                                    minimpi::tag_t tag) {
  const int me = comm.rank();
  const int n = comm.size();
  const bool has_south = me > 0 && rows_ > 0;
  const bool has_north = me < n - 1 && rows_ > 0;

  // Post receives first, then send owned boundary rows: deadlock-free for
  // any neighbour pattern.
  std::vector<minimpi::Request> recvs;
  if (has_south) {
    recvs.push_back(comm.irecv(
        std::span<double>(data_.data(), static_cast<std::size_t>(nlon_)),
        me - 1, tag));
  }
  if (has_north) {
    recvs.push_back(comm.irecv(
        std::span<double>(
            data_.data() + static_cast<std::size_t>((rows_ + 1) * nlon_),
            static_cast<std::size_t>(nlon_)),
        me + 1, tag));
  }
  if (has_south) {
    comm.send(std::span<const double>(
                  data_.data() + static_cast<std::size_t>(nlon_),
                  static_cast<std::size_t>(nlon_)),
              me - 1, tag);
  }
  if (has_north) {
    comm.send(std::span<const double>(
                  data_.data() + static_cast<std::size_t>(rows_ * nlon_),
                  static_cast<std::size_t>(nlon_)),
              me + 1, tag);
  }
  for (minimpi::Request& r : recvs) r.wait();

  // Physical latitude boundaries: zero-flux (copy the edge row).
  if (me == 0 && rows_ > 0) {
    for (int i = 0; i < nlon_; ++i) {
      data_[static_cast<std::size_t>(i)] = at(0, i);
    }
  }
  if (me == n - 1 && rows_ > 0) {
    for (int i = 0; i < nlon_; ++i) {
      data_[static_cast<std::size_t>((rows_ + 1) * nlon_ + i)] =
          at(rows_ - 1, i);
    }
  }
}

double RowBlockField2D::laplacian(int r, int i) const noexcept {
  const int west = i == 0 ? nlon_ - 1 : i - 1;
  const int east = i == nlon_ - 1 ? 0 : i + 1;
  return at(r, west) + at(r, east) + at(r - 1, i) + at(r + 1, i) -
         4.0 * at(r, i);
}

std::vector<double> RowBlockField2D::owned_copy() const {
  std::vector<double> mine(static_cast<std::size_t>(rows_ * nlon_));
  for (int r = 0; r < rows_; ++r) {
    for (int i = 0; i < nlon_; ++i) {
      mine[static_cast<std::size_t>(r * nlon_ + i)] = at(r, i);
    }
  }
  return mine;
}

std::vector<double> RowBlockField2D::gather(const minimpi::Comm& comm,
                                            minimpi::rank_t root) const {
  const std::vector<double> mine = owned_copy();
  std::vector<double> full =
      minimpi::gatherv(comm, std::span<const double>(mine), nullptr, root);
  // Ranks are row-ordered (block decomposition), so concatenation is the
  // global row-major field.
  return full;
}

void RowBlockField2D::scatter(const minimpi::Comm& comm,
                              std::span<const double> full,
                              minimpi::rank_t root) {
  const minimpi::tag_t tag = comm.next_collective_tag();
  if (comm.rank() == root) {
    const coupler::Decomp rows = coupler::Decomp::block(nlat_, comm.size());
    for (int p = 0; p < comm.size(); ++p) {
      const auto& segs = rows.segments(p);
      if (segs.empty()) continue;
      const auto lo = static_cast<std::size_t>(segs.front().gstart) *
                      static_cast<std::size_t>(nlon_);
      const auto count = static_cast<std::size_t>(segs.front().length) *
                         static_cast<std::size_t>(nlon_);
      if (p == root) {
        for (int r = 0; r < rows_; ++r) {
          for (int i = 0; i < nlon_; ++i) {
            at(r, i) = full[lo + static_cast<std::size_t>(r * nlon_ + i)];
          }
        }
      } else {
        comm.send_raw(std::as_bytes(full.subspan(lo, count)), p, tag);
      }
    }
  } else {
    std::vector<double> mine(static_cast<std::size_t>(rows_ * nlon_));
    comm.recv_raw(std::as_writable_bytes(std::span<double>(mine)), root, tag);
    for (int r = 0; r < rows_; ++r) {
      for (int i = 0; i < nlon_; ++i) {
        at(r, i) = mine[static_cast<std::size_t>(r * nlon_ + i)];
      }
    }
  }
}

double RowBlockField2D::global_mean(const Grid2D& grid,
                                    const minimpi::Comm& comm) const {
  double weighted = 0;
  for (int r = 0; r < rows_; ++r) {
    const double area = grid.cell_area(row_lo_ + r);
    for (int i = 0; i < nlon_; ++i) {
      weighted += at(r, i) * area;
    }
  }
  const double total =
      minimpi::allreduce_value(comm, weighted, minimpi::op::Sum{});
  return total / grid.total_area();
}

}  // namespace mph::climate
