// scenario.hpp — reusable drivers that wire the toy models into complete
// coupled applications through MPH.  The same component functions run
// identically under SCME, MCME, or MCSE wiring (paper §2: the integration
// mode is a deployment decision, not a model-code decision) — integration
// tests, examples, and the E6/E9 benchmarks all call these.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/climate/fluxcoupler.hpp"
#include "src/coupler/rebalance.hpp"
#include "src/climate/models.hpp"
#include "src/climate/statistics.hpp"
#include "src/mph/mph.hpp"
#include "src/mph/recover.hpp"

namespace mph::climate {

/// Opt-in recovery wiring for the scenario drivers.  When null (the
/// default) the drivers run exactly the legacy protocol — the off path is
/// a single pointer test.  When set, components checkpoint their state to
/// `store` each coupling interval and restore from the newest checkpoint
/// on entry, so a respawned ensemble member (or a whole restarted job)
/// resumes instead of recomputing.  DESIGN.md §13 describes the protocol.
struct RecoverySpec {
  /// Shared store; entries are keyed by component name.  Must outlive the
  /// driver call.
  recover::CheckpointStore* store = nullptr;
};

/// Opt-in live steering for the coupled driver (the mph_watch closed
/// loop, ROADMAP item 3 follow-on).  When null the drivers run the legacy
/// protocol — one pointer test, zero extra traffic.  When set, every rank
/// of the coupled application carries a slice of a shared auxiliary work
/// field (a Decomp over the WHOLE world, cutting across components) and
/// executes it each interval; at each interval boundary the world root
/// polls the job's Watcher, and when an imbalance alert fired it derives
/// fresh throughput weights from the live metrics snapshot
/// (weights_from_metrics), broadcasts them, and every rank deterministically
/// folds them through a Rebalancer and repartitions the work field — the
/// job rebalances itself without restarting.  The physics fields are never
/// touched, so final statistics stay bit-identical to an unsteered run.
struct SteeringSpec {
  /// Global size of the auxiliary work field.
  std::int64_t work_units = 2048;
  /// Inner loop repetitions per unit per interval — the work cost knob.
  int work_reps = 60;
  /// Seeded imbalance for tests/demos: ranks of this component pay
  /// `slow_factor` times the per-unit cost (1.0 = no seeded skew).
  std::string slow_component;
  double slow_factor = 1.0;
  /// Rebalance trigger/smoothing (see RebalancePolicy).
  coupler::RebalancePolicy policy;
};

/// What one component measured during a coupled run.
struct ComponentResult {
  std::string component;
  /// Area-weighted global mean of the component's primary field after each
  /// coupling interval (empty on non-root coupler ranks).
  std::vector<double> mean_series;
  /// Coupler only: the cross-component diagnostics.
  CouplerDiagnostics coupler;
  /// Steering only: intervals at whose boundary the auxiliary work field
  /// was repartitioned (identical on every rank — the decision is
  /// collective), and this rank's final share of it.
  std::vector<int> rebalanced_intervals;
  std::int64_t steer_local_units = 0;
};

/// Run one component of the coupled climate system to completion.
/// Dispatches on `handle.comp_name()`; the five roles are the peer names in
/// `peers` plus `coupler_name`.  Collective over the component (and, at
/// exchange points, over the coupled application).
ComponentResult run_coupled_component(
    mph::Mph& handle, const ClimateConfig& cfg,
    const FluxCoupler::Peers& peers = FluxCoupler::Peers(),
    const std::string& coupler_name = "coupler",
    const RecoverySpec* recovery = nullptr,
    const SteeringSpec* steering = nullptr);

/// Result of an ensemble participant.
struct EnsembleResult {
  /// Statistics component: one snapshot per interval.
  std::vector<EnsembleSnapshot> snapshots;
  /// Instances: my own mean SST per interval.
  std::vector<double> my_means;
  /// Statistics root only: members observed dead during the run (MIME
  /// isolation) — their samples were skipped from the interval they died.
  std::vector<std::string> failed_members;
  /// Statistics root only, recovery mode: members that died and came back
  /// (supervised respawn + checkpoint restore) without losing an interval.
  std::vector<std::string> healed_members;
};

/// Run one ocean ensemble instance (a component created by
/// MPH_multi_instance).  Reads the instance arguments:
///   diff=<factor>  — ocean diffusivity scaling (default 1)
/// Sends its instantaneous global-mean SST to `stats_name` each interval
/// and applies the control nudge that comes back.
EnsembleResult run_ensemble_instance(mph::Mph& handle,
                                     const ClimateConfig& cfg,
                                     const std::string& stats_name,
                                     const RecoverySpec* recovery = nullptr);

/// Serial reference: the entire coupled system composed by direct function
/// calls in ONE process (no MPH, no message passing) with the identical
/// physics and exchange schedule.  Because every piece of the parallel
/// system is deterministic and decomposition-independent, the coupler
/// diagnostics of any MPH wiring must match this reference bit-for-bit —
/// the strongest end-to-end correctness check the test suite has.
/// `world` must be a single-rank communicator (the models still want one).
[[nodiscard]] CouplerDiagnostics run_serial_reference(
    const minimpi::Comm& world, const ClimateConfig& cfg);

/// Run the statistics component: aggregates the instances whose names start
/// with `prefix`, computes mean/variance/min/max/median per interval, and
/// steers each instance toward the ensemble mean with gain `gain`
/// (0 disables dynamic control).
EnsembleResult run_ensemble_statistics(mph::Mph& handle,
                                       const ClimateConfig& cfg,
                                       const std::string& prefix,
                                       double gain,
                                       const RecoverySpec* recovery = nullptr);

}  // namespace mph::climate
