// models.hpp — the toy component models of the coupled climate system:
// atmosphere, ocean, land, sea ice.  Each is a self-contained, parallel
// model on its own component communicator, exchanging only boundary fields
// — exactly the program-component shape MPH integrates (paper §1: CCSM
// "consists of an atmosphere model, an ocean model, a sea-ice model and a
// land-surface model", interacting "through a flux coupler component").
//
// The physics is deliberately simple (diffusion–relaxation energy
// balances) but the software structure is real: halo exchanges inside
// components, root-mediated exchanges between them (paper §6: "information
// exchange between different components can be conveniently handled by the
// rank-0 processors in each component").
#pragma once

#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/climate/grid.hpp"
#include "src/coupler/accumulator.hpp"
#include "src/minimpi/comm.hpp"

namespace mph::climate {

namespace detail {
/// Communication-free checkpoint restore of a row-decomposed field: every
/// rank passes the same full global field and keeps only its own rows.
/// Halo rows are left stale; the models' step() refreshes them first.
inline void restore_full_field(RowBlockField2D& field, const Grid2D& grid,
                               std::span<const double> full,
                               const char* what) {
  if (static_cast<std::int64_t>(full.size()) != grid.size()) {
    throw std::invalid_argument(
        std::string("restore_state: ") + what + " holds " +
        std::to_string(full.size()) + " values, grid has " +
        std::to_string(grid.size()));
  }
  field.fill([&](int i, int j) {
    return full[static_cast<std::size_t>(grid.index(i, j))];
  });
}
}  // namespace detail

/// Shared configuration every component of a coupled run agrees on.
struct ClimateConfig {
  // Grids: atmosphere/land share one grid, ocean/ice another.
  int atm_nlon = 48;
  int atm_nlat = 24;
  int ocn_nlon = 72;
  int ocn_nlat = 36;

  // Time stepping.
  int steps_per_interval = 4;  ///< model steps between couplings
  int intervals = 8;           ///< coupling intervals in the run
  double dt = 0.05;            ///< nondimensional step

  // Physics (nondimensional rates, chosen for stable, visible dynamics).
  double solar_equator = 30.0;     ///< radiative equilibrium T at equator
  double solar_pole = -10.0;       ///< ... and at the poles
  double atm_relax = 0.8;          ///< relaxation toward radiative T
  double atm_diffusion = 0.4;      ///< atmospheric heat diffusion
  double ocn_diffusion = 0.15;     ///< ocean heat diffusion
  double ocn_heat_capacity = 5.0;  ///< slab ocean thermal inertia
  double air_sea_coupling = 1.2;   ///< flux coefficient c in c(Ta - SST)
  double land_beta = 0.3;          ///< bucket evaporation rate
  double land_precip_rate = 0.1;   ///< precipitation per degree above 0
  double ice_growth = 0.1;         ///< ice growth rate below freezing
  double ice_melt = 0.2;           ///< ice melt rate above freezing
  double freezing_point = -2.0;    ///< seawater freezing temperature
};

/// Message tags of the coupling protocol (world-context, name-addressed).
namespace tags {
inline constexpr int t_atm_to_cpl = 101;   ///< atmosphere T (atm grid)
inline constexpr int sst_to_cpl = 102;     ///< ocean SST (ocn grid)
inline constexpr int evap_to_cpl = 103;    ///< land evaporation (atm grid)
inline constexpr int ice_to_cpl = 104;     ///< ice fraction (ocn grid)
inline constexpr int sst_to_atm = 111;     ///< SST regridded to atm grid
inline constexpr int flux_to_ocn = 112;    ///< net surface flux (ocn grid)
inline constexpr int t_atm_to_land = 113;  ///< atmosphere T (atm grid)
inline constexpr int sst_to_ice = 114;     ///< SST (ocn grid)
inline constexpr int stat_up = 121;        ///< instance -> statistics
inline constexpr int stat_down = 122;      ///< statistics -> instance
inline constexpr int steer_field = 131;    ///< steering work repartition
}  // namespace tags

/// Atmosphere: temperature relaxed toward a latitude-dependent radiative
/// equilibrium, diffused, and nudged toward the imported SST.
class Atmosphere {
 public:
  Atmosphere(const ClimateConfig& cfg, const minimpi::Comm& comm);

  /// One model step (collective: performs a halo exchange).
  void step();

  /// Import the sea surface temperature, already on the atm grid
  /// (full field significant on component root only).
  void import_sst(std::span<const double> sst_full_on_root);

  /// Gather my instantaneous temperature onto the component root.
  [[nodiscard]] std::vector<double> export_temperature() const {
    return field_.gather(comm_);
  }

  /// Gather the *time mean* temperature over the steps since the last
  /// call (the CCSM coupling rule: the coupler sees interval means, not
  /// samples).  Collective; resets the accumulator.
  [[nodiscard]] std::vector<double> export_temperature_mean();

  [[nodiscard]] double global_mean() const {
    return field_.global_mean(grid_, comm_);
  }
  [[nodiscard]] const Grid2D& grid() const noexcept { return grid_; }

  // Checkpoint support: gather state to the component root for saving
  // (empty off-root), restore communication-free from full global fields.
  [[nodiscard]] std::vector<double> export_state_primary() const {
    return field_.gather(comm_);
  }
  [[nodiscard]] std::vector<double> export_state_import() const {
    return sst_.gather(comm_);
  }
  [[nodiscard]] bool has_import() const noexcept { return have_sst_; }
  void restore_state(std::span<const double> primary_full,
                     std::span<const double> import_full, bool has_import) {
    detail::restore_full_field(field_, grid_, primary_full, "temperature");
    if (has_import) {
      detail::restore_full_field(sst_, grid_, import_full, "SST import");
    }
    have_sst_ = has_import;
  }

 private:
  ClimateConfig cfg_;
  minimpi::Comm comm_;
  Grid2D grid_;
  RowBlockField2D field_;  ///< air temperature
  RowBlockField2D sst_;    ///< imported SST on the atm grid
  coupler::FieldAccumulator acc_;  ///< per-step accumulation for coupling
  bool have_sst_ = false;
};

/// Slab ocean: SST diffused and forced by the imported surface flux.
class Ocean {
 public:
  Ocean(const ClimateConfig& cfg, const minimpi::Comm& comm);

  void step();
  void import_flux(std::span<const double> flux_full_on_root);
  [[nodiscard]] std::vector<double> export_sst() const {
    return field_.gather(comm_);
  }
  /// Interval-mean SST (see Atmosphere::export_temperature_mean).
  [[nodiscard]] std::vector<double> export_sst_mean();
  [[nodiscard]] double global_mean() const {
    return field_.global_mean(grid_, comm_);
  }
  [[nodiscard]] const Grid2D& grid() const noexcept { return grid_; }

  /// Perturb the diffusivity (used by ensemble instances via MPH
  /// arguments) and nudge the whole state (dynamic ensemble control).
  void scale_diffusivity(double factor) { cfg_.ocn_diffusion *= factor; }
  void nudge(double delta);

  // Checkpoint support (see Atmosphere).
  [[nodiscard]] std::vector<double> export_state_primary() const {
    return field_.gather(comm_);
  }
  [[nodiscard]] std::vector<double> export_state_import() const {
    return flux_.gather(comm_);
  }
  [[nodiscard]] bool has_import() const noexcept { return have_flux_; }
  void restore_state(std::span<const double> primary_full,
                     std::span<const double> import_full, bool has_import) {
    detail::restore_full_field(field_, grid_, primary_full, "SST");
    if (has_import) {
      detail::restore_full_field(flux_, grid_, import_full, "flux import");
    }
    have_flux_ = has_import;
  }

 private:
  ClimateConfig cfg_;
  minimpi::Comm comm_;
  Grid2D grid_;
  RowBlockField2D field_;  ///< SST
  RowBlockField2D flux_;   ///< imported net surface flux
  coupler::FieldAccumulator acc_;  ///< per-step accumulation for coupling
  bool have_flux_ = false;
};

/// Land bucket hydrology on the atmosphere grid: soil moisture fed by
/// temperature-dependent precipitation, drained by evaporation.
class Land {
 public:
  Land(const ClimateConfig& cfg, const minimpi::Comm& comm);

  void step();
  void import_temperature(std::span<const double> t_full_on_root);
  [[nodiscard]] std::vector<double> export_evaporation() const;
  [[nodiscard]] double global_mean() const {
    return moisture_.global_mean(grid_, comm_);
  }

  // Checkpoint support (see Atmosphere).
  [[nodiscard]] std::vector<double> export_state_primary() const {
    return moisture_.gather(comm_);
  }
  [[nodiscard]] std::vector<double> export_state_import() const {
    return t_atm_.gather(comm_);
  }
  [[nodiscard]] bool has_import() const noexcept { return have_t_; }
  void restore_state(std::span<const double> primary_full,
                     std::span<const double> import_full, bool has_import) {
    detail::restore_full_field(moisture_, grid_, primary_full, "moisture");
    if (has_import) {
      detail::restore_full_field(t_atm_, grid_, import_full,
                                 "temperature import");
    }
    have_t_ = has_import;
  }

 private:
  ClimateConfig cfg_;
  minimpi::Comm comm_;
  Grid2D grid_;
  RowBlockField2D moisture_;
  RowBlockField2D t_atm_;
  bool have_t_ = false;
};

/// Zero-layer thermodynamic sea ice on the ocean grid.
class SeaIce {
 public:
  SeaIce(const ClimateConfig& cfg, const minimpi::Comm& comm);

  void step();
  void import_sst(std::span<const double> sst_full_on_root);
  /// Ice fraction in [0,1) per cell, gathered to the component root.
  [[nodiscard]] std::vector<double> export_fraction() const;
  [[nodiscard]] double global_mean_thickness() const {
    return thickness_.global_mean(grid_, comm_);
  }

  // Checkpoint support (see Atmosphere).
  [[nodiscard]] std::vector<double> export_state_primary() const {
    return thickness_.gather(comm_);
  }
  [[nodiscard]] std::vector<double> export_state_import() const {
    return sst_.gather(comm_);
  }
  [[nodiscard]] bool has_import() const noexcept { return have_sst_; }
  void restore_state(std::span<const double> primary_full,
                     std::span<const double> import_full, bool has_import) {
    detail::restore_full_field(thickness_, grid_, primary_full, "thickness");
    if (has_import) {
      detail::restore_full_field(sst_, grid_, import_full, "SST import");
    }
    have_sst_ = has_import;
  }

 private:
  ClimateConfig cfg_;
  minimpi::Comm comm_;
  Grid2D grid_;
  RowBlockField2D thickness_;
  RowBlockField2D sst_;
  bool have_sst_ = false;
};

}  // namespace mph::climate
