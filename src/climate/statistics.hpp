// statistics.hpp — ensemble statistics, the paper's §2.5 motivation for
// multi-instance executables: "Nonlinear order statistics can be computed
// by aggregating instantaneous fields from K runs periodically" and "the
// future simulation direction can be dynamically adjusted at real time".
//
// EnsembleStatistics aggregates one scalar sample per instance per
// interval: running mean/variance (Welford), min/max, and the *median* —
// the nonlinear order statistic that genuinely requires all K concurrent
// values (a mean could be post-processed; a median of instantaneous states
// cannot be recovered from per-run time averages).  It can also steer the
// ensemble by sending a nudge back toward the ensemble mean (dynamic
// control).
#pragma once

#include <algorithm>
#include <vector>

#include "src/util/timer.hpp"

namespace mph::climate {

/// One interval's cross-instance statistics.
struct EnsembleSnapshot {
  double mean = 0;
  double variance = 0;
  double min = 0;
  double max = 0;
  double median = 0;
};

class EnsembleStatistics {
 public:
  explicit EnsembleStatistics(int instances) : instances_(instances) {}

  /// Aggregate the K instantaneous samples of one interval.
  EnsembleSnapshot aggregate(std::vector<double> samples);

  /// Per-instance nudge toward the ensemble mean with gain `g`:
  /// instance i receives g * (mean - sample_i).
  [[nodiscard]] std::vector<double> control_nudges(
      const std::vector<double>& samples, double mean, double gain) const;

  [[nodiscard]] const std::vector<EnsembleSnapshot>& history() const noexcept {
    return history_;
  }
  [[nodiscard]] int instances() const noexcept { return instances_; }

  /// Adjust the expected sample count: ensemble members can drop out under
  /// MIME failure isolation, and the statistics then aggregate the
  /// surviving subset.
  void set_instances(int instances) noexcept { instances_ = instances; }

  /// Exact median of a sample vector (odd: middle; even: mean of middles).
  static double median_of(std::vector<double> values);

 private:
  int instances_;
  std::vector<EnsembleSnapshot> history_;
};

}  // namespace mph::climate
