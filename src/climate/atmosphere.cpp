#include "src/climate/models.hpp"

namespace mph::climate {

namespace {
/// Radiative equilibrium temperature profile: warm equator, cold poles.
double radiative_t(const ClimateConfig& cfg, const Grid2D& grid, int row) {
  const double c = std::cos(grid.latitude(row));
  return cfg.solar_pole + (cfg.solar_equator - cfg.solar_pole) * c;
}
}  // namespace

Atmosphere::Atmosphere(const ClimateConfig& cfg, const minimpi::Comm& comm)
    : cfg_(cfg), comm_(comm), grid_(cfg.atm_nlon, cfg.atm_nlat),
      field_(grid_, comm_), sst_(grid_, comm_) {
  // Start at radiative equilibrium with a small zonal perturbation so the
  // diffusion term has work to do from step one.
  field_.fill([&](int i, int j) {
    return radiative_t(cfg_, grid_, j) +
           0.5 * std::sin(grid_.longitude(i) * 3.0);
  });
}

void Atmosphere::step() {
  field_.halo_exchange(comm_, tags::t_atm_to_cpl);
  const int rows = field_.local_rows();
  const int nlon = field_.nlon();
  std::vector<double> next(static_cast<std::size_t>(rows * nlon));
  for (int r = 0; r < rows; ++r) {
    const double teq = radiative_t(cfg_, grid_, field_.row_offset() + r);
    for (int i = 0; i < nlon; ++i) {
      const double t = field_.at(r, i);
      double tendency = cfg_.atm_relax * (teq - t) +
                        cfg_.atm_diffusion * field_.laplacian(r, i);
      if (have_sst_) {
        tendency += cfg_.air_sea_coupling * (sst_.at(r, i) - t);
      }
      next[static_cast<std::size_t>(r * nlon + i)] = t + cfg_.dt * tendency;
    }
  }
  for (int r = 0; r < rows; ++r) {
    for (int i = 0; i < nlon; ++i) {
      field_.at(r, i) = next[static_cast<std::size_t>(r * nlon + i)];
    }
  }
  if (acc_.size() == 0) {
    acc_ = coupler::FieldAccumulator(static_cast<std::size_t>(rows * nlon));
  }
  acc_.add(next);
}

std::vector<double> Atmosphere::export_temperature_mean() {
  if (acc_.samples() == 0) return export_temperature();
  RowBlockField2D mean = field_;
  const std::vector<double> local_mean = acc_.drain();
  const int nlon = mean.nlon();
  for (int r = 0; r < mean.local_rows(); ++r) {
    for (int i = 0; i < nlon; ++i) {
      mean.at(r, i) = local_mean[static_cast<std::size_t>(r * nlon + i)];
    }
  }
  return mean.gather(comm_);
}

void Atmosphere::import_sst(std::span<const double> sst_full_on_root) {
  sst_.scatter(comm_, sst_full_on_root);
  have_sst_ = true;
}

}  // namespace mph::climate
