#include "src/climate/models.hpp"

namespace mph::climate {

Ocean::Ocean(const ClimateConfig& cfg, const minimpi::Comm& comm)
    : cfg_(cfg), comm_(comm), grid_(cfg.ocn_nlon, cfg.ocn_nlat),
      field_(grid_, comm_), flux_(grid_, comm_) {
  // Initial SST: a gentle equator-to-pole gradient, cooler than the
  // atmosphere's radiative profile so coupling produces a visible drift.
  field_.fill([&](int /*i*/, int j) {
    return 0.6 * cfg_.solar_equator * std::cos(grid_.latitude(j)) - 4.0;
  });
}

void Ocean::step() {
  field_.halo_exchange(comm_, tags::sst_to_cpl);
  const int rows = field_.local_rows();
  const int nlon = field_.nlon();
  std::vector<double> next(static_cast<std::size_t>(rows * nlon));
  for (int r = 0; r < rows; ++r) {
    for (int i = 0; i < nlon; ++i) {
      const double t = field_.at(r, i);
      double tendency = cfg_.ocn_diffusion * field_.laplacian(r, i);
      if (have_flux_) {
        tendency += flux_.at(r, i) / cfg_.ocn_heat_capacity;
      }
      next[static_cast<std::size_t>(r * nlon + i)] = t + cfg_.dt * tendency;
    }
  }
  for (int r = 0; r < rows; ++r) {
    for (int i = 0; i < nlon; ++i) {
      field_.at(r, i) = next[static_cast<std::size_t>(r * nlon + i)];
    }
  }
  if (acc_.size() == 0) {
    acc_ = coupler::FieldAccumulator(static_cast<std::size_t>(rows * nlon));
  }
  acc_.add(next);
}

std::vector<double> Ocean::export_sst_mean() {
  if (acc_.samples() == 0) return export_sst();
  RowBlockField2D mean = field_;
  const std::vector<double> local_mean = acc_.drain();
  const int nlon = mean.nlon();
  for (int r = 0; r < mean.local_rows(); ++r) {
    for (int i = 0; i < nlon; ++i) {
      mean.at(r, i) = local_mean[static_cast<std::size_t>(r * nlon + i)];
    }
  }
  return mean.gather(comm_);
}

void Ocean::import_flux(std::span<const double> flux_full_on_root) {
  flux_.scatter(comm_, flux_full_on_root);
  have_flux_ = true;
}

void Ocean::nudge(double delta) {
  const int rows = field_.local_rows();
  for (int r = 0; r < rows; ++r) {
    for (int i = 0; i < field_.nlon(); ++i) {
      field_.at(r, i) += delta;
    }
  }
}

}  // namespace mph::climate
