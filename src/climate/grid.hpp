// grid.hpp — lat-lon grids and row-decomposed 2-D fields for the toy
// climate components.
//
// A Grid2D is a uniform longitude x latitude cell-centered grid on the
// sphere (areas ∝ cos φ).  A RowBlockField2D is a field on that grid
// decomposed over a component's processes by contiguous latitude rows,
// with one halo row on each side and an MPI-style halo exchange — the
// communication pattern every finite-difference climate component uses.
#pragma once

#include <cmath>
#include <functional>
#include <span>
#include <vector>

#include "src/coupler/decomp.hpp"
#include "src/minimpi/comm.hpp"

namespace mph::climate {

inline constexpr double kPi = 3.14159265358979323846;

/// Uniform cell-centered longitude x latitude grid.
class Grid2D {
 public:
  Grid2D(int nlon, int nlat);

  [[nodiscard]] int nlon() const noexcept { return nlon_; }
  [[nodiscard]] int nlat() const noexcept { return nlat_; }
  [[nodiscard]] std::int64_t size() const noexcept {
    return static_cast<std::int64_t>(nlon_) * nlat_;
  }

  /// Latitude of row j's cell center, in radians (-π/2..π/2).
  [[nodiscard]] double latitude(int j) const;
  /// Longitude of column i's cell center, in radians (0..2π).
  [[nodiscard]] double longitude(int i) const;
  /// Cell area (unit sphere).
  [[nodiscard]] double cell_area(int j) const;
  /// Sum of all cell areas (≈ 4π).
  [[nodiscard]] double total_area() const noexcept { return total_area_; }

  /// Row-major flat index.
  [[nodiscard]] std::int64_t index(int i, int j) const noexcept {
    return static_cast<std::int64_t>(j) * nlon_ + i;
  }

 private:
  int nlon_;
  int nlat_;
  double total_area_;
};

/// Field on a Grid2D, decomposed by latitude rows over a component
/// communicator, stored with one halo row above and below.
class RowBlockField2D {
 public:
  RowBlockField2D() = default;
  RowBlockField2D(const Grid2D& grid, const minimpi::Comm& comm);

  [[nodiscard]] int nlon() const noexcept { return nlon_; }
  /// Rows owned by this rank.
  [[nodiscard]] int local_rows() const noexcept { return rows_; }
  /// First owned global row.
  [[nodiscard]] int row_offset() const noexcept { return row_lo_; }

  /// Owned cell (r = 0..local_rows-1 local row, i = column).
  [[nodiscard]] double& at(int r, int i) noexcept {
    return data_[static_cast<std::size_t>((r + 1) * nlon_ + i)];
  }
  [[nodiscard]] double at(int r, int i) const noexcept {
    return data_[static_cast<std::size_t>((r + 1) * nlon_ + i)];
  }
  /// Halo cells: row -1 (south neighbour) and row local_rows (north).
  [[nodiscard]] double halo(int r, int i) const noexcept {
    return data_[static_cast<std::size_t>((r + 1) * nlon_ + i)];
  }

  /// Fill owned cells from f(column, global row).
  void fill(const std::function<double(int, int)>& f);

  /// Exchange halo rows with neighbouring ranks (collective over the
  /// component communicator).  Boundary rows at the poles keep their
  /// current halo values (callers impose the physical boundary condition).
  void halo_exchange(const minimpi::Comm& comm, minimpi::tag_t tag);

  /// 5-point Laplacian at an owned cell, with periodic longitude and
  /// zero-flux latitude boundaries (halo rows must be current).
  [[nodiscard]] double laplacian(int r, int i) const noexcept;

  /// Copy of the owned cells (no halos), row-major — the local block of
  /// the global field.
  [[nodiscard]] std::vector<double> owned_copy() const;

  /// Gather the full global field onto component rank `root` (collective);
  /// non-root ranks receive an empty vector.
  [[nodiscard]] std::vector<double> gather(const minimpi::Comm& comm,
                                           minimpi::rank_t root = 0) const;

  /// Scatter a full global field from component rank `root` into the owned
  /// rows (collective).  `full` is read on root only.
  void scatter(const minimpi::Comm& comm, std::span<const double> full,
               minimpi::rank_t root = 0);

  /// Area-weighted global mean (collective over the component comm).
  [[nodiscard]] double global_mean(const Grid2D& grid,
                                   const minimpi::Comm& comm) const;

  [[nodiscard]] std::span<double> raw() noexcept { return data_; }

 private:
  int nlon_ = 0;
  int nlat_ = 0;
  int row_lo_ = 0;  ///< first owned global row
  int rows_ = 0;    ///< owned row count
  std::vector<double> data_;  ///< (rows + 2) x nlon, halos at both ends
};

}  // namespace mph::climate
