// fluxcoupler.hpp — the flux coupler component: receives each model's
// boundary fields, regrids between the atmosphere and ocean grids,
// computes air-sea fluxes, and returns imports (the hub-and-spoke CCSM
// coupler architecture the paper's §1/§7 describe).
//
// Exchange is root-to-root over MPH's name-addressed interface (§5.2/§6).
// Inside the coupler the full fields live on the component root; the
// coupler is expected to run on few processes (1 in the examples).
#pragma once

#include <string>
#include <vector>

#include "src/climate/models.hpp"
#include "src/coupler/regrid.hpp"
#include "src/mph/mph.hpp"

namespace mph::climate {

/// Per-interval diagnostics the coupler accumulates.
struct CouplerDiagnostics {
  std::vector<double> mean_t_atm;   ///< area-mean air temperature
  std::vector<double> mean_sst;     ///< area-mean SST
  std::vector<double> mean_evap;    ///< area-mean land evaporation
  std::vector<double> mean_icefrac; ///< area-mean ice fraction
};

/// The imports the coupler computes from the models' exports (the "merge"
/// step): pure arithmetic, shared by the parallel FluxCoupler and the
/// serial reference implementation so the two agree bit-for-bit.
struct CouplingResult {
  std::vector<double> sst_on_atm;  ///< SST regridded to the atm grid
  std::vector<double> flux_ocn;    ///< net surface flux, ocn grid
};

/// Compute the coupling imports: regrid T_atm to the ocean grid, regrid
/// SST to the atmosphere grid, and merge the air-sea flux
/// c·(T_on_ocn − SST)·(1 − icefrac).
[[nodiscard]] CouplingResult compute_coupling(
    const ClimateConfig& cfg, const coupler::Regrid2D& atm_to_ocn,
    const coupler::Regrid2D& ocn_to_atm, std::span<const double> t_atm,
    std::span<const double> sst, std::span<const double> icefrac);

/// Area-weighted mean of a full (global) field on `grid`.
[[nodiscard]] double area_mean(const Grid2D& grid,
                               std::span<const double> full);

/// Component names the coupler talks to — configurable (paper §3(a):
/// names are never hardwired into the coupler).
struct CouplerPeers {
  std::string atmosphere = "atmosphere";
  std::string ocean = "ocean";
  std::string land = "land";
  std::string ice = "ice";
};

class FluxCoupler {
 public:
  using Peers = CouplerPeers;

  FluxCoupler(const ClimateConfig& cfg, mph::Mph& handle, Peers peers = {});

  /// Execute one coupling interval: receive exports from every model root,
  /// regrid, compute fluxes, send imports back.  Must be paired with the
  /// models' exchange calls (see scenario.cpp).  Only the coupler's
  /// component root communicates; other coupler ranks idle by design.
  void couple_once();

  [[nodiscard]] const CouplerDiagnostics& diagnostics() const noexcept {
    return diag_;
  }

  /// Checkpoint restore: replace the accumulated diagnostics wholesale.
  void restore_diagnostics(CouplerDiagnostics diag) {
    diag_ = std::move(diag);
  }

 private:
  ClimateConfig cfg_;
  mph::Mph& handle_;
  Peers peers_;
  Grid2D atm_grid_;
  Grid2D ocn_grid_;
  coupler::Regrid2D atm_to_ocn_;
  coupler::Regrid2D ocn_to_atm_;
  CouplerDiagnostics diag_;
};

}  // namespace mph::climate
