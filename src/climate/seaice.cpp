#include "src/climate/models.hpp"

namespace mph::climate {

SeaIce::SeaIce(const ClimateConfig& cfg, const minimpi::Comm& comm)
    : cfg_(cfg), comm_(comm), grid_(cfg.ocn_nlon, cfg.ocn_nlat),
      thickness_(grid_, comm_), sst_(grid_, comm_) {
  // Start with thin ice near the poles.
  thickness_.fill([&](int, int j) {
    const double lat = std::abs(grid_.latitude(j));
    return lat > 1.2 ? 0.5 : 0.0;
  });
}

void SeaIce::step() {
  // Zero-layer thermodynamics: grow below freezing, melt above.
  const int rows = thickness_.local_rows();
  for (int r = 0; r < rows; ++r) {
    for (int i = 0; i < thickness_.nlon(); ++i) {
      const double sst = have_sst_ ? sst_.at(r, i) : cfg_.freezing_point;
      const double growth =
          cfg_.ice_growth * std::max(0.0, cfg_.freezing_point - sst);
      const double melt =
          cfg_.ice_melt * std::max(0.0, sst - cfg_.freezing_point);
      thickness_.at(r, i) =
          std::max(0.0, thickness_.at(r, i) + cfg_.dt * (growth - melt));
    }
  }
}

void SeaIce::import_sst(std::span<const double> sst_full_on_root) {
  sst_.scatter(comm_, sst_full_on_root);
  have_sst_ = true;
}

std::vector<double> SeaIce::export_fraction() const {
  // Fraction = h / (h + h0): thin ice covers little of the cell.
  constexpr double kH0 = 0.5;
  RowBlockField2D frac = thickness_;
  const int rows = frac.local_rows();
  for (int r = 0; r < rows; ++r) {
    for (int i = 0; i < frac.nlon(); ++i) {
      const double h = frac.at(r, i);
      frac.at(r, i) = h / (h + kH0);
    }
  }
  return frac.gather(comm_);
}

}  // namespace mph::climate
