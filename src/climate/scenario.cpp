#include "src/climate/scenario.hpp"

#include <chrono>
#include <thread>

#include "src/minimpi/collectives.hpp"
#include "src/mph/errors.hpp"
#include "src/util/strings.hpp"

namespace mph::climate {

namespace {

/// Root-mediated exchange helper: send my full export to the coupler root
/// and receive my full import back (component root only; other ranks pass
/// through with empty buffers).
struct RootExchange {
  mph::Mph& handle;
  const std::string& coupler_name;

  void send_export(std::span<const double> full, int tag) const {
    if (handle.local_proc_id() == 0) {
      handle.send(full, coupler_name, 0, tag);
    }
  }

  std::vector<double> recv_import(std::size_t size, int tag) const {
    std::vector<double> full;
    if (handle.local_proc_id() == 0) {
      full.resize(size);
      handle.recv(std::span<double>(full), coupler_name, 0, tag);
    }
    return full;
  }
};

ComponentResult run_atmosphere(mph::Mph& h, const ClimateConfig& cfg,
                               const std::string& coupler_name) {
  Atmosphere model(cfg, h.comp_comm());
  const RootExchange xch{h, coupler_name};
  ComponentResult result{"atmosphere", {}, {}};
  for (int interval = 0; interval < cfg.intervals; ++interval) {
    for (int s = 0; s < cfg.steps_per_interval; ++s) model.step();
    // The coupler sees the time mean over the interval, not a sample.
    xch.send_export(model.export_temperature_mean(), tags::t_atm_to_cpl);
    const std::vector<double> sst = xch.recv_import(
        static_cast<std::size_t>(model.grid().size()), tags::sst_to_atm);
    model.import_sst(sst);
    result.mean_series.push_back(model.global_mean());
  }
  return result;
}

ComponentResult run_ocean(mph::Mph& h, const ClimateConfig& cfg,
                          const std::string& coupler_name) {
  Ocean model(cfg, h.comp_comm());
  const RootExchange xch{h, coupler_name};
  ComponentResult result{"ocean", {}, {}};
  for (int interval = 0; interval < cfg.intervals; ++interval) {
    for (int s = 0; s < cfg.steps_per_interval; ++s) model.step();
    xch.send_export(model.export_sst_mean(), tags::sst_to_cpl);
    const std::vector<double> flux = xch.recv_import(
        static_cast<std::size_t>(model.grid().size()), tags::flux_to_ocn);
    model.import_flux(flux);
    result.mean_series.push_back(model.global_mean());
  }
  return result;
}

ComponentResult run_land(mph::Mph& h, const ClimateConfig& cfg,
                         const std::string& coupler_name) {
  Land model(cfg, h.comp_comm());
  const RootExchange xch{h, coupler_name};
  const auto atm_size = static_cast<std::size_t>(
      static_cast<std::int64_t>(cfg.atm_nlon) * cfg.atm_nlat);
  ComponentResult result{"land", {}, {}};
  for (int interval = 0; interval < cfg.intervals; ++interval) {
    for (int s = 0; s < cfg.steps_per_interval; ++s) model.step();
    xch.send_export(model.export_evaporation(), tags::evap_to_cpl);
    const std::vector<double> t_atm =
        xch.recv_import(atm_size, tags::t_atm_to_land);
    model.import_temperature(t_atm);
    result.mean_series.push_back(model.global_mean());
  }
  return result;
}

ComponentResult run_ice(mph::Mph& h, const ClimateConfig& cfg,
                        const std::string& coupler_name) {
  SeaIce model(cfg, h.comp_comm());
  const RootExchange xch{h, coupler_name};
  const auto ocn_size = static_cast<std::size_t>(
      static_cast<std::int64_t>(cfg.ocn_nlon) * cfg.ocn_nlat);
  ComponentResult result{"ice", {}, {}};
  for (int interval = 0; interval < cfg.intervals; ++interval) {
    for (int s = 0; s < cfg.steps_per_interval; ++s) model.step();
    xch.send_export(model.export_fraction(), tags::ice_to_cpl);
    const std::vector<double> sst = xch.recv_import(ocn_size, tags::sst_to_ice);
    model.import_sst(sst);
    result.mean_series.push_back(model.global_mean_thickness());
  }
  return result;
}

ComponentResult run_coupler(mph::Mph& h, const ClimateConfig& cfg,
                            const FluxCoupler::Peers& peers) {
  FluxCoupler coupler(cfg, h, peers);
  for (int interval = 0; interval < cfg.intervals; ++interval) {
    coupler.couple_once();
  }
  ComponentResult result{"coupler", {}, coupler.diagnostics()};
  result.mean_series = result.coupler.mean_sst;
  return result;
}

}  // namespace

ComponentResult run_coupled_component(mph::Mph& handle,
                                      const ClimateConfig& cfg,
                                      const FluxCoupler::Peers& peers,
                                      const std::string& coupler_name) {
  const std::string& role = handle.comp_name();
  if (role == peers.atmosphere) return run_atmosphere(handle, cfg, coupler_name);
  if (role == peers.ocean) return run_ocean(handle, cfg, coupler_name);
  if (role == peers.land) return run_land(handle, cfg, coupler_name);
  if (role == peers.ice) return run_ice(handle, cfg, coupler_name);
  if (role == coupler_name) return run_coupler(handle, cfg, peers);
  throw MphError("run_coupled_component: component '" + role +
                 "' has no role in the coupled system");
}

CouplerDiagnostics run_serial_reference(const minimpi::Comm& world,
                                        const ClimateConfig& cfg) {
  if (world.size() != 1) {
    throw MphError("run_serial_reference requires a single-rank communicator");
  }
  Atmosphere atm(cfg, world);
  Ocean ocn(cfg, world);
  Land lnd(cfg, world);
  SeaIce ice(cfg, world);
  const Grid2D atm_grid(cfg.atm_nlon, cfg.atm_nlat);
  const Grid2D ocn_grid(cfg.ocn_nlon, cfg.ocn_nlat);
  const coupler::Regrid2D atm_to_ocn(cfg.atm_nlon, cfg.atm_nlat, cfg.ocn_nlon,
                                     cfg.ocn_nlat);
  const coupler::Regrid2D ocn_to_atm(cfg.ocn_nlon, cfg.ocn_nlat, cfg.atm_nlon,
                                     cfg.atm_nlat);

  CouplerDiagnostics diag;
  for (int interval = 0; interval < cfg.intervals; ++interval) {
    for (int s = 0; s < cfg.steps_per_interval; ++s) {
      atm.step();
      ocn.step();
      lnd.step();
      ice.step();
    }
    // The exchange, as direct data movement (1-rank gathers = full fields).
    const std::vector<double> t_atm = atm.export_temperature_mean();
    const std::vector<double> sst = ocn.export_sst_mean();
    const std::vector<double> evap = lnd.export_evaporation();
    const std::vector<double> icefrac = ice.export_fraction();

    const CouplingResult merged =
        compute_coupling(cfg, atm_to_ocn, ocn_to_atm, t_atm, sst, icefrac);

    atm.import_sst(merged.sst_on_atm);
    ocn.import_flux(merged.flux_ocn);
    lnd.import_temperature(t_atm);
    ice.import_sst(sst);

    diag.mean_t_atm.push_back(area_mean(atm_grid, t_atm));
    diag.mean_sst.push_back(area_mean(ocn_grid, sst));
    diag.mean_evap.push_back(area_mean(atm_grid, evap));
    diag.mean_icefrac.push_back(area_mean(ocn_grid, icefrac));
  }
  return diag;
}

EnsembleResult run_ensemble_instance(mph::Mph& handle,
                                     const ClimateConfig& cfg,
                                     const std::string& stats_name) {
  ClimateConfig my_cfg = cfg;
  double diff_scale = 1.0;
  handle.get_argument("diff", diff_scale);

  Ocean model(my_cfg, handle.comp_comm());
  model.scale_diffusivity(diff_scale);

  EnsembleResult result;
  for (int interval = 0; interval < cfg.intervals; ++interval) {
    // Fault-injection checkpoint: "kill member M at interval N" plans
    // (FaultPlan::kill_at_step) fire here, before the interval's work.
    handle.world().fault_checkpoint(static_cast<std::uint64_t>(interval));
    for (int s = 0; s < cfg.steps_per_interval; ++s) model.step();
    const double mean = model.global_mean();
    result.my_means.push_back(mean);

    // Root reports the instantaneous mean and receives the control nudge;
    // the nudge is broadcast inside the instance and applied everywhere.
    double nudge = 0;
    if (handle.local_proc_id() == 0) {
      handle.send(mean, stats_name, 0, tags::stat_up);
      handle.recv(nudge, stats_name, 0, tags::stat_down);
    }
    minimpi::bcast_value(handle.comp_comm(), nudge, 0);
    model.nudge(nudge);
  }
  return result;
}

EnsembleResult run_ensemble_statistics(mph::Mph& handle,
                                       const ClimateConfig& cfg,
                                       const std::string& prefix,
                                       double gain) {
  // Discover the instances from the directory: every component whose name
  // starts with the prefix, in component-id order.
  std::vector<std::string> instances;
  for (const ComponentRecord& c : handle.directory().components()) {
    if (util::starts_with(c.name, prefix) && c.name != handle.comp_name()) {
      instances.push_back(c.name);
    }
  }
  if (instances.empty()) {
    throw MphError("run_ensemble_statistics: no components with prefix '" +
                   prefix + "'");
  }

  EnsembleStatistics stats(static_cast<int>(instances.size()));
  EnsembleResult result;
  std::vector<bool> alive(instances.size(), true);

  // Wait for member k's sample without committing to a blocking receive: a
  // member that dies under MIME isolation would otherwise stall the whole
  // ensemble until the job timeout.  Returns false when the member is dead
  // (its sample, if any arrives late, is left queued and reported by
  // finalize()).
  const auto member_sample = [&](std::size_t k, double& out) -> bool {
    const minimpi::rank_t src = handle.global_rank_of(instances[k], 0);
    const minimpi::Deadline deadline = handle.world().job().deadline();
    for (;;) {
      if (handle.world().iprobe(src, tags::stat_up).has_value()) {
        handle.recv(out, instances[k], 0, tags::stat_up);
        return true;
      }
      if (!handle.ping(instances[k])) return false;
      if (std::chrono::steady_clock::now() >= deadline) {
        throw MphError("run_ensemble_statistics: timed out waiting for the "
                       "sample of live member '" +
                       instances[k] + "'");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };

  for (int interval = 0; interval < cfg.intervals; ++interval) {
    if (handle.local_proc_id() != 0) continue;
    std::vector<double> samples;
    std::vector<std::size_t> live;
    samples.reserve(instances.size());
    for (std::size_t k = 0; k < instances.size(); ++k) {
      if (!alive[k]) continue;
      double sample = 0;
      if (member_sample(k, sample)) {
        samples.push_back(sample);
        live.push_back(k);
      } else {
        alive[k] = false;
      }
    }
    if (samples.empty()) break;  // the whole ensemble died
    stats.set_instances(static_cast<int>(samples.size()));
    const EnsembleSnapshot snap = stats.aggregate(samples);
    const std::vector<double> nudges =
        stats.control_nudges(samples, snap.mean, gain);
    for (std::size_t i = 0; i < live.size(); ++i) {
      // A member can die after reporting; don't nudge a corpse.
      if (handle.ping(instances[live[i]])) {
        handle.send(nudges[i], instances[live[i]], 0, tags::stat_down);
      } else {
        alive[live[i]] = false;
      }
    }
    result.snapshots.push_back(snap);
  }
  if (handle.local_proc_id() == 0) {
    for (std::size_t k = 0; k < instances.size(); ++k) {
      if (!alive[k]) result.failed_members.push_back(instances[k]);
    }
  }
  return result;
}

}  // namespace mph::climate
