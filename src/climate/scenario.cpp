#include "src/climate/scenario.hpp"

#include <array>
#include <chrono>
#include <cstdint>
#include <optional>
#include <set>
#include <thread>

#include <cmath>

#include "src/coupler/rebalance.hpp"
#include "src/minimpi/collectives.hpp"
#include "src/minimpi/job.hpp"
#include "src/mph/errors.hpp"
#include "src/util/strings.hpp"

namespace mph::climate {

namespace {

/// Root-mediated exchange helper: send my full export to the coupler root
/// and receive my full import back (component root only; other ranks pass
/// through with empty buffers).
struct RootExchange {
  mph::Mph& handle;
  const std::string& coupler_name;

  void send_export(std::span<const double> full, int tag) const {
    if (handle.local_proc_id() == 0) {
      handle.send(full, coupler_name, 0, tag);
    }
  }

  std::vector<double> recv_import(std::size_t size, int tag) const {
    std::vector<double> full;
    if (handle.local_proc_id() == 0) {
      full.resize(size);
      handle.recv(std::span<double>(full), coupler_name, 0, tag);
    }
    return full;
  }
};

// ---------------------------------------------------------------------------
// Recovery helpers (DESIGN.md §13).  All of this is behind the
// `recovery != nullptr` branch; a run without a RecoverySpec never reaches
// any of it.
// ---------------------------------------------------------------------------

/// Restore a model from the checkpoint of `step` (all component ranks read
/// the file independently — restore_state is communication-free).  Throws
/// SetupError when the agreed step has no file (a pruned or lost store).
template <class Model>
void restore_model(const recover::CheckpointStore& store,
                   const std::string& name, std::uint64_t step, Model& model,
                   ComponentResult& result) {
  const std::optional<recover::Checkpoint> ckpt = store.load_step(name, step);
  if (!ckpt.has_value()) {
    throw SetupError("recovery: component '" + name +
                     "' has no checkpoint for the agreed restart step " +
                     std::to_string(step) + " in " + store.dir());
  }
  const bool has_import = ckpt->flag("has_import");
  const std::vector<double> import =
      has_import ? ckpt->doubles("import") : std::vector<double>{};
  model.restore_state(ckpt->doubles("primary"), import, has_import);
  result.mean_series = ckpt->doubles("mean_series");
}

/// Checkpoint a model at the end of `interval` (collective over the
/// component: all ranks gather, the root writes).
template <class Model>
void save_model(const recover::CheckpointStore& store, mph::Mph& h,
                const Model& model, int interval,
                const ComponentResult& result) {
  const std::vector<double> primary = model.export_state_primary();
  const std::vector<double> import = model.export_state_import();
  if (h.local_proc_id() != 0) return;
  recover::Checkpoint ckpt(static_cast<std::uint64_t>(interval));
  ckpt.put_doubles("primary", primary);
  ckpt.put_doubles("import", import);
  ckpt.put_flag("has_import", model.has_import());
  ckpt.put_doubles("mean_series", result.mean_series);
  store.save(h.comp_name(), ckpt);
}

// ---------------------------------------------------------------------------
// Steering helpers (the mph_watch closed loop, DESIGN.md §17).  Everything
// sits behind the `steering != nullptr` branch; a run without a
// SteeringSpec never reaches any of it.
// ---------------------------------------------------------------------------

/// The shared auxiliary work field and its rebalancing protocol.  The field
/// is a Decomp of `work_units` indices over the WHOLE world (cutting across
/// component boundaries — exactly what the Router cannot move and
/// repartition() exists for), each rank burning CPU proportional to its
/// share every interval.  At each interval boundary the world root polls
/// the job's Watcher; when an imbalance alert fired, throughput weights
/// derived from the live metrics snapshot are broadcast and every rank
/// deterministically folds them through its own Rebalancer, so all ranks
/// reach the identical proposal without further negotiation.
class Steering {
 public:
  Steering(mph::Mph& h, const SteeringSpec* spec) : h_(h), spec_(spec) {
    if (spec_ == nullptr) return;
    const minimpi::Comm& world = h_.world();
    decomp_ = coupler::Decomp::block(spec_->work_units, world.size());
    const int me = world.rank();
    local_.resize(static_cast<std::size_t>(decomp_.local_size(me)));
    for (std::size_t i = 0; i < local_.size(); ++i) {
      // Value = f(global index), so tests can verify the field survives
      // any sequence of repartitions bit-for-bit.
      const std::int64_t g =
          decomp_.to_global(me, static_cast<std::int64_t>(i));
      local_[i] = 1.0 + 0.5 * static_cast<double>(g);
    }
    world_ranks_.resize(static_cast<std::size_t>(world.size()));
    for (int r = 0; r < world.size(); ++r) {
      world_ranks_[static_cast<std::size_t>(r)] =
          static_cast<minimpi::rank_t>(r);
    }
    rebalancer_ = coupler::Rebalancer(spec_->policy);
    slow_ = h_.comp_name() == spec_->slow_component;
  }

  /// Burn this interval's share of the auxiliary work (pure compute, no
  /// communication).  The seeded slow component pays slow_factor times the
  /// per-unit cost — the imbalance the watch rules must catch live.
  void interval_work() const {
    if (spec_ == nullptr) return;
    const int reps = static_cast<int>(
        static_cast<double>(spec_->work_reps) *
        (slow_ ? spec_->slow_factor : 1.0));
    volatile double sink = 0.0;
    for (const double v : local_) {
      double acc = v;
      for (int rep = 0; rep < reps; ++rep) {
        acc += std::sqrt(acc + static_cast<double>(rep));
      }
      sink = sink + acc;
    }
  }

  /// Interval boundary, collective over the world.  The root feeds the
  /// Watcher a fresh snapshot itself (detection must not depend on the
  /// monitor thread's publish timing) and consumes a pending imbalance
  /// alert; the fire decision and the weights travel by broadcast, so the
  /// rebalance is a lock-step collective like the exchange schedule.
  void boundary(int interval, ComponentResult& result) {
    if (spec_ == nullptr) return;
    const minimpi::Comm& world = h_.world();
    std::uint8_t fire = 0;
    std::vector<double> weights(static_cast<std::size_t>(world.size()), 1.0);
    if (world.rank() == 0) {
      if (minimpi::watch::Watcher* watcher = world.job().watcher()) {
        const minimpi::MetricsSnapshot snap = world.job().metrics_snapshot();
        watcher->observe(snap);
        if (watcher->consume_imbalance_alert()) {
          fire = 1;
          weights = coupler::weights_from_metrics(
              snap, decomp_, std::span<const minimpi::rank_t>(world_ranks_));
        }
      }
    }
    minimpi::bcast_value(world, fire, 0);
    if (fire == 0) return;
    minimpi::bcast(world, std::span<double>(weights), 0);
    const std::optional<coupler::Decomp> proposal =
        rebalancer_.propose_from_weights(
            decomp_, std::span<const double>(weights));
    if (!proposal.has_value()) return;
    local_ = coupler::repartition(world, decomp_, *proposal,
                                  std::span<const double>(local_),
                                  tags::steer_field);
    decomp_ = *proposal;
    result.rebalanced_intervals.push_back(interval);
  }

  void finish(ComponentResult& result) const {
    if (spec_ == nullptr) return;
    result.steer_local_units = static_cast<std::int64_t>(local_.size());
  }

 private:
  mph::Mph& h_;
  const SteeringSpec* spec_;
  coupler::Decomp decomp_;
  std::vector<double> local_;
  std::vector<minimpi::rank_t> world_ranks_;
  coupler::Rebalancer rebalancer_;
  bool slow_ = false;
};

ComponentResult run_atmosphere(mph::Mph& h, const ClimateConfig& cfg,
                               const std::string& coupler_name,
                               const RecoverySpec* recovery,
                               const SteeringSpec* steering, int start) {
  Atmosphere model(cfg, h.comp_comm());
  const RootExchange xch{h, coupler_name};
  Steering steer(h, steering);
  ComponentResult result{"atmosphere", {}, {}};
  if (recovery != nullptr && start > 0) {
    restore_model(*recovery->store, h.comp_name(),
                  static_cast<std::uint64_t>(start - 1), model, result);
  }
  for (int interval = start; interval < cfg.intervals; ++interval) {
    if (recovery != nullptr) {
      h.world().fault_checkpoint(static_cast<std::uint64_t>(interval));
    }
    steer.interval_work();
    for (int s = 0; s < cfg.steps_per_interval; ++s) model.step();
    // The coupler sees the time mean over the interval, not a sample.
    xch.send_export(model.export_temperature_mean(), tags::t_atm_to_cpl);
    const std::vector<double> sst = xch.recv_import(
        static_cast<std::size_t>(model.grid().size()), tags::sst_to_atm);
    model.import_sst(sst);
    result.mean_series.push_back(model.global_mean());
    if (recovery != nullptr) {
      save_model(*recovery->store, h, model, interval, result);
    }
    steer.boundary(interval, result);
  }
  steer.finish(result);
  return result;
}

ComponentResult run_ocean(mph::Mph& h, const ClimateConfig& cfg,
                          const std::string& coupler_name,
                          const RecoverySpec* recovery,
                          const SteeringSpec* steering, int start) {
  Ocean model(cfg, h.comp_comm());
  const RootExchange xch{h, coupler_name};
  Steering steer(h, steering);
  ComponentResult result{"ocean", {}, {}};
  if (recovery != nullptr && start > 0) {
    restore_model(*recovery->store, h.comp_name(),
                  static_cast<std::uint64_t>(start - 1), model, result);
  }
  for (int interval = start; interval < cfg.intervals; ++interval) {
    if (recovery != nullptr) {
      h.world().fault_checkpoint(static_cast<std::uint64_t>(interval));
    }
    steer.interval_work();
    for (int s = 0; s < cfg.steps_per_interval; ++s) model.step();
    xch.send_export(model.export_sst_mean(), tags::sst_to_cpl);
    const std::vector<double> flux = xch.recv_import(
        static_cast<std::size_t>(model.grid().size()), tags::flux_to_ocn);
    model.import_flux(flux);
    result.mean_series.push_back(model.global_mean());
    if (recovery != nullptr) {
      save_model(*recovery->store, h, model, interval, result);
    }
    steer.boundary(interval, result);
  }
  steer.finish(result);
  return result;
}

ComponentResult run_land(mph::Mph& h, const ClimateConfig& cfg,
                         const std::string& coupler_name,
                         const RecoverySpec* recovery,
                         const SteeringSpec* steering, int start) {
  Land model(cfg, h.comp_comm());
  const RootExchange xch{h, coupler_name};
  Steering steer(h, steering);
  const auto atm_size = static_cast<std::size_t>(
      static_cast<std::int64_t>(cfg.atm_nlon) * cfg.atm_nlat);
  ComponentResult result{"land", {}, {}};
  if (recovery != nullptr && start > 0) {
    restore_model(*recovery->store, h.comp_name(),
                  static_cast<std::uint64_t>(start - 1), model, result);
  }
  for (int interval = start; interval < cfg.intervals; ++interval) {
    if (recovery != nullptr) {
      h.world().fault_checkpoint(static_cast<std::uint64_t>(interval));
    }
    steer.interval_work();
    for (int s = 0; s < cfg.steps_per_interval; ++s) model.step();
    xch.send_export(model.export_evaporation(), tags::evap_to_cpl);
    const std::vector<double> t_atm =
        xch.recv_import(atm_size, tags::t_atm_to_land);
    model.import_temperature(t_atm);
    result.mean_series.push_back(model.global_mean());
    if (recovery != nullptr) {
      save_model(*recovery->store, h, model, interval, result);
    }
    steer.boundary(interval, result);
  }
  steer.finish(result);
  return result;
}

ComponentResult run_ice(mph::Mph& h, const ClimateConfig& cfg,
                        const std::string& coupler_name,
                        const RecoverySpec* recovery,
                        const SteeringSpec* steering, int start) {
  SeaIce model(cfg, h.comp_comm());
  const RootExchange xch{h, coupler_name};
  Steering steer(h, steering);
  const auto ocn_size = static_cast<std::size_t>(
      static_cast<std::int64_t>(cfg.ocn_nlon) * cfg.ocn_nlat);
  ComponentResult result{"ice", {}, {}};
  if (recovery != nullptr && start > 0) {
    restore_model(*recovery->store, h.comp_name(),
                  static_cast<std::uint64_t>(start - 1), model, result);
  }
  for (int interval = start; interval < cfg.intervals; ++interval) {
    if (recovery != nullptr) {
      h.world().fault_checkpoint(static_cast<std::uint64_t>(interval));
    }
    steer.interval_work();
    for (int s = 0; s < cfg.steps_per_interval; ++s) model.step();
    xch.send_export(model.export_fraction(), tags::ice_to_cpl);
    const std::vector<double> sst = xch.recv_import(ocn_size, tags::sst_to_ice);
    model.import_sst(sst);
    result.mean_series.push_back(model.global_mean_thickness());
    if (recovery != nullptr) {
      save_model(*recovery->store, h, model, interval, result);
    }
    steer.boundary(interval, result);
  }
  steer.finish(result);
  return result;
}

ComponentResult run_coupler(mph::Mph& h, const ClimateConfig& cfg,
                            const FluxCoupler::Peers& peers,
                            const RecoverySpec* recovery,
                            const SteeringSpec* steering, int start) {
  FluxCoupler coupler(cfg, h, peers);
  Steering steer(h, steering);
  ComponentResult scratch{"coupler", {}, {}};
  if (recovery != nullptr && start > 0 && h.local_proc_id() == 0) {
    // The coupler's whole state is its diagnostics, and it lives on the
    // component root only (non-root coupler ranks idle by design).
    const std::uint64_t step = static_cast<std::uint64_t>(start - 1);
    const std::optional<recover::Checkpoint> ckpt =
        recovery->store->load_step(h.comp_name(), step);
    if (!ckpt.has_value()) {
      throw SetupError("recovery: component '" + h.comp_name() +
                       "' has no checkpoint for the agreed restart step " +
                       std::to_string(step) + " in " + recovery->store->dir());
    }
    CouplerDiagnostics diag;
    diag.mean_t_atm = ckpt->doubles("mean_t_atm");
    diag.mean_sst = ckpt->doubles("mean_sst");
    diag.mean_evap = ckpt->doubles("mean_evap");
    diag.mean_icefrac = ckpt->doubles("mean_icefrac");
    coupler.restore_diagnostics(std::move(diag));
  }
  for (int interval = start; interval < cfg.intervals; ++interval) {
    if (recovery != nullptr) {
      h.world().fault_checkpoint(static_cast<std::uint64_t>(interval));
    }
    steer.interval_work();
    coupler.couple_once();
    if (recovery != nullptr && h.local_proc_id() == 0) {
      const CouplerDiagnostics& diag = coupler.diagnostics();
      recover::Checkpoint ckpt(static_cast<std::uint64_t>(interval));
      ckpt.put_doubles("mean_t_atm", diag.mean_t_atm);
      ckpt.put_doubles("mean_sst", diag.mean_sst);
      ckpt.put_doubles("mean_evap", diag.mean_evap);
      ckpt.put_doubles("mean_icefrac", diag.mean_icefrac);
      recovery->store->save(h.comp_name(), ckpt);
    }
    steer.boundary(interval, scratch);
  }
  steer.finish(scratch);
  ComponentResult result{"coupler", {}, coupler.diagnostics()};
  result.mean_series = result.coupler.mean_sst;
  result.rebalanced_intervals = std::move(scratch.rebalanced_intervals);
  result.steer_local_units = scratch.steer_local_units;
  return result;
}

}  // namespace

ComponentResult run_coupled_component(mph::Mph& handle,
                                      const ClimateConfig& cfg,
                                      const FluxCoupler::Peers& peers,
                                      const std::string& coupler_name,
                                      const RecoverySpec* recovery,
                                      const SteeringSpec* steering) {
  if (recovery != nullptr && recovery->store == nullptr) recovery = nullptr;
  int start = 0;
  if (recovery != nullptr) {
    // The coupled system checkpoints in lockstep but components can die one
    // interval apart (a kill between a component's save and its peers').
    // Agree on the newest step EVERY component can restore: the minimum of
    // the per-component latest steps (the store retains two steps, so the
    // laggard's neighbour still holds the agreed one).  Collective over the
    // whole application, like the exchange schedule itself.
    const std::optional<std::uint64_t> latest =
        recovery->store->latest_step(handle.comp_name());
    std::uint64_t candidate =
        latest.has_value() ? *latest + 1 : std::uint64_t{0};
    candidate = minimpi::allreduce_value(
        handle.world(), candidate,
        [](std::uint64_t a, std::uint64_t b) { return a < b ? a : b; });
    start = static_cast<int>(candidate);
  }
  const std::string& role = handle.comp_name();
  if (role == peers.atmosphere) {
    return run_atmosphere(handle, cfg, coupler_name, recovery, steering, start);
  }
  if (role == peers.ocean) {
    return run_ocean(handle, cfg, coupler_name, recovery, steering, start);
  }
  if (role == peers.land) {
    return run_land(handle, cfg, coupler_name, recovery, steering, start);
  }
  if (role == peers.ice) {
    return run_ice(handle, cfg, coupler_name, recovery, steering, start);
  }
  if (role == coupler_name) {
    return run_coupler(handle, cfg, peers, recovery, steering, start);
  }
  throw MphError("run_coupled_component: component '" + role +
                 "' has no role in the coupled system");
}

CouplerDiagnostics run_serial_reference(const minimpi::Comm& world,
                                        const ClimateConfig& cfg) {
  if (world.size() != 1) {
    throw MphError("run_serial_reference requires a single-rank communicator");
  }
  Atmosphere atm(cfg, world);
  Ocean ocn(cfg, world);
  Land lnd(cfg, world);
  SeaIce ice(cfg, world);
  const Grid2D atm_grid(cfg.atm_nlon, cfg.atm_nlat);
  const Grid2D ocn_grid(cfg.ocn_nlon, cfg.ocn_nlat);
  const coupler::Regrid2D atm_to_ocn(cfg.atm_nlon, cfg.atm_nlat, cfg.ocn_nlon,
                                     cfg.ocn_nlat);
  const coupler::Regrid2D ocn_to_atm(cfg.ocn_nlon, cfg.ocn_nlat, cfg.atm_nlon,
                                     cfg.atm_nlat);

  CouplerDiagnostics diag;
  for (int interval = 0; interval < cfg.intervals; ++interval) {
    for (int s = 0; s < cfg.steps_per_interval; ++s) {
      atm.step();
      ocn.step();
      lnd.step();
      ice.step();
    }
    // The exchange, as direct data movement (1-rank gathers = full fields).
    const std::vector<double> t_atm = atm.export_temperature_mean();
    const std::vector<double> sst = ocn.export_sst_mean();
    const std::vector<double> evap = lnd.export_evaporation();
    const std::vector<double> icefrac = ice.export_fraction();

    const CouplingResult merged =
        compute_coupling(cfg, atm_to_ocn, ocn_to_atm, t_atm, sst, icefrac);

    atm.import_sst(merged.sst_on_atm);
    ocn.import_flux(merged.flux_ocn);
    lnd.import_temperature(t_atm);
    ice.import_sst(sst);

    diag.mean_t_atm.push_back(area_mean(atm_grid, t_atm));
    diag.mean_sst.push_back(area_mean(ocn_grid, sst));
    diag.mean_evap.push_back(area_mean(atm_grid, evap));
    diag.mean_icefrac.push_back(area_mean(ocn_grid, icefrac));
  }
  return diag;
}

EnsembleResult run_ensemble_instance(mph::Mph& handle,
                                     const ClimateConfig& cfg,
                                     const std::string& stats_name,
                                     const RecoverySpec* recovery) {
  if (recovery != nullptr && recovery->store == nullptr) recovery = nullptr;
  ClimateConfig my_cfg = cfg;
  double diff_scale = 1.0;
  handle.get_argument("diff", diff_scale);

  Ocean model(my_cfg, handle.comp_comm());
  model.scale_diffusivity(diff_scale);

  EnsembleResult result;
  int start = 0;
  if (recovery != nullptr) {
    // Resume from my newest checkpoint (communication-free: every member
    // rank reads the file and keeps its own rows).  No checkpoint means a
    // cold start — identical to the legacy path from interval 0.
    const std::optional<recover::Checkpoint> ckpt =
        recovery->store->load_latest(handle.comp_name());
    if (ckpt.has_value()) {
      model.restore_state(ckpt->doubles("ocean.sst"), {}, false);
      result.my_means = ckpt->doubles("my_means");
      start = static_cast<int>(ckpt->step()) + 1;
    }
  }
  for (int interval = start; interval < cfg.intervals; ++interval) {
    // Fault-injection checkpoint: "kill member M at interval N" plans
    // (FaultPlan::kill_at_step) fire here, before the interval's work.
    // Recovery mode doubles the kill points (2i = interval boundary,
    // 2i+1 = after the sample went up, before the nudge came back) so
    // tests can kill on either side of the protocol's send.
    handle.world().fault_checkpoint(
        recovery != nullptr ? static_cast<std::uint64_t>(2 * interval)
                            : static_cast<std::uint64_t>(interval));
    for (int s = 0; s < cfg.steps_per_interval; ++s) model.step();
    const double mean = model.global_mean();
    result.my_means.push_back(mean);

    // Root reports the instantaneous mean and receives the control nudge;
    // the nudge is broadcast inside the instance and applied everywhere.
    double nudge = 0;
    if (recovery != nullptr) {
      if (handle.local_proc_id() == 0) {
        // Interval-tagged sample: after a restore the statistics component
        // may legitimately see interval I twice (once from the dead
        // incarnation, once from the replacement) and tells them apart by
        // the tag.
        const std::array<double, 2> up = {static_cast<double>(interval),
                                          mean};
        handle.send(std::span<const double>(up), stats_name, 0,
                    tags::stat_up);
      }
      handle.world().fault_checkpoint(
          static_cast<std::uint64_t>(2 * interval + 1));
      if (handle.local_proc_id() == 0) {
        for (;;) {
          std::array<double, 2> down = {0, 0};
          handle.recv(std::span<double>(down), stats_name, 0,
                      tags::stat_down);
          const int j = static_cast<int>(down[0]);
          if (j == interval) {
            nudge = down[1];
            break;
          }
          if (j > interval) {
            throw MphError(
                "run_ensemble_instance: '" + handle.comp_name() +
                "' at interval " + std::to_string(interval) +
                " received the control nudge of future interval " +
                std::to_string(j) +
                " — the statistics component ran ahead of my sample");
          }
          // j < interval: a replay of a nudge I already applied (the
          // statistics component resends its last nudges after a restart
          // in case they never arrived); drop it and keep waiting.
        }
      }
    } else if (handle.local_proc_id() == 0) {
      handle.send(mean, stats_name, 0, tags::stat_up);
      handle.recv(nudge, stats_name, 0, tags::stat_down);
    }
    minimpi::bcast_value(handle.comp_comm(), nudge, 0);
    model.nudge(nudge);
    if (recovery != nullptr) {
      // Checkpoint AFTER the nudge is applied: the snapshot is the state
      // the next interval starts from, so a replacement restored from it
      // never re-requests this interval's nudge.
      const std::vector<double> full = model.export_state_primary();
      if (handle.local_proc_id() == 0) {
        recover::Checkpoint ckpt(static_cast<std::uint64_t>(interval));
        ckpt.put_doubles("ocean.sst", full);
        ckpt.put_doubles("my_means", result.my_means);
        recovery->store->save(handle.comp_name(), ckpt);
      }
    }
  }
  return result;
}

namespace {

/// Serialize/parse the snapshots series for the statistics checkpoint
/// (5 doubles per interval, in field order).
std::vector<double> flatten_snapshots(
    const std::vector<EnsembleSnapshot>& snapshots) {
  std::vector<double> flat;
  flat.reserve(snapshots.size() * 5);
  for (const EnsembleSnapshot& s : snapshots) {
    flat.push_back(s.mean);
    flat.push_back(s.variance);
    flat.push_back(s.min);
    flat.push_back(s.max);
    flat.push_back(s.median);
  }
  return flat;
}

std::vector<EnsembleSnapshot> unflatten_snapshots(
    const std::vector<double>& flat) {
  if (flat.size() % 5 != 0) {
    throw SetupError(
        "recovery: statistics checkpoint holds " +
        std::to_string(flat.size()) +
        " snapshot values, not a multiple of 5 (corrupt or foreign entry)");
  }
  std::vector<EnsembleSnapshot> snapshots(flat.size() / 5);
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    snapshots[i].mean = flat[5 * i];
    snapshots[i].variance = flat[5 * i + 1];
    snapshots[i].min = flat[5 * i + 2];
    snapshots[i].max = flat[5 * i + 3];
    snapshots[i].median = flat[5 * i + 4];
  }
  return snapshots;
}

/// Total wait the statistics component grants a dead member before giving
/// up on its replacement: the same backoff schedule await_alive would walk
/// (attempts <= 1 means no retry policy — report dead immediately, the
/// pre-recovery semantics).
std::chrono::milliseconds dead_member_budget(const LivenessOptions& liveness) {
  std::chrono::duration<double, std::milli> total{0};
  double scale = 1.0;
  for (int a = 1; a < liveness.attempts; ++a) {
    total += std::chrono::duration<double, std::milli>(
        static_cast<double>(liveness.backoff.count()) * scale);
    scale *= liveness.backoff_factor;
  }
  return std::chrono::duration_cast<std::chrono::milliseconds>(total);
}

}  // namespace

EnsembleResult run_ensemble_statistics(mph::Mph& handle,
                                       const ClimateConfig& cfg,
                                       const std::string& prefix,
                                       double gain,
                                       const RecoverySpec* recovery) {
  if (recovery != nullptr && recovery->store == nullptr) recovery = nullptr;
  // Discover the instances from the directory: every component whose name
  // starts with the prefix, in component-id order.
  std::vector<std::string> instances;
  for (const ComponentRecord& c : handle.directory().components()) {
    if (util::starts_with(c.name, prefix) && c.name != handle.comp_name()) {
      instances.push_back(c.name);
    }
  }
  if (instances.empty()) {
    throw MphError("run_ensemble_statistics: no components with prefix '" +
                   prefix + "'");
  }

  EnsembleStatistics stats(static_cast<int>(instances.size()));
  EnsembleResult result;
  std::vector<bool> alive(instances.size(), true);

  // --- recovery state (untouched on the legacy path) ------------------------
  int start = 0;
  // The newest nudge computed for each member; replayed when a restored
  // member re-sends a sample the dead incarnation already delivered.
  std::vector<double> cached_nudge(instances.size(), 0.0);
  // Members currently observed dead, with the time the death was first
  // seen (the respawn grace window runs from there).
  std::vector<std::optional<std::chrono::steady_clock::time_point>> dead_since(
      instances.size());
  std::set<std::size_t> healed;
  const std::chrono::milliseconds budget =
      recovery != nullptr ? dead_member_budget(handle.options().liveness)
                          : std::chrono::milliseconds{0};

  if (recovery != nullptr && handle.local_proc_id() == 0) {
    const std::optional<recover::Checkpoint> ckpt =
        recovery->store->load_latest(handle.comp_name());
    if (ckpt.has_value()) {
      result.snapshots = unflatten_snapshots(ckpt->doubles("snapshots"));
      const std::vector<double> nudges = ckpt->doubles("nudges");
      const std::vector<std::uint64_t> alive_flags = ckpt->u64s("alive");
      if (nudges.size() != instances.size() ||
          alive_flags.size() != instances.size()) {
        throw SetupError(
            "recovery: statistics checkpoint describes " +
            std::to_string(nudges.size()) + " members, ensemble has " +
            std::to_string(instances.size()));
      }
      cached_nudge = nudges;
      for (std::size_t k = 0; k < instances.size(); ++k) {
        alive[k] = alive_flags[k] != 0;
      }
      const auto step = static_cast<int>(ckpt->step());
      start = step + 1;
      // The checkpoint is written after aggregation but BEFORE the nudges
      // go out, so the members may never have received interval `step`'s
      // nudges.  Resend them; a member that already applied its copy sees
      // a stale tag and drops the duplicate.
      for (std::size_t k = 0; k < instances.size(); ++k) {
        if (!alive[k]) continue;
        const std::array<double, 2> down = {static_cast<double>(step),
                                            cached_nudge[k]};
        handle.send(std::span<const double>(down), instances[k], 0,
                    tags::stat_down);
      }
    }
  }

  // Wait for member k's sample without committing to a blocking receive: a
  // member that dies under MIME isolation would otherwise stall the whole
  // ensemble until the job timeout.  Returns false when the member is dead
  // (its sample, if any arrives late, is left queued and reported by
  // finalize()).
  const auto member_sample = [&](std::size_t k, double& out) -> bool {
    const minimpi::rank_t src = handle.global_rank_of(instances[k], 0);
    const minimpi::Deadline deadline = handle.world().job().deadline();
    for (;;) {
      if (handle.world().iprobe(src, tags::stat_up).has_value()) {
        handle.recv(out, instances[k], 0, tags::stat_up);
        return true;
      }
      if (!handle.ping(instances[k])) return false;
      if (std::chrono::steady_clock::now() >= deadline) {
        throw MphError("run_ensemble_statistics: timed out waiting for the "
                       "sample of live member '" +
                       instances[k] + "'");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };

  // The recovery-aware variant: samples are {interval, mean} pairs, dead
  // members get a respawn grace window instead of an immediate write-off,
  // and a restored member's replayed sample is answered with the cached
  // nudge it missed.
  const auto member_sample_recovering = [&](std::size_t k, int interval,
                                            double& out) -> bool {
    const minimpi::rank_t src = handle.global_rank_of(instances[k], 0);
    const minimpi::Deadline deadline = handle.world().job().deadline();
    for (;;) {
      if (handle.world().iprobe(src, tags::stat_up).has_value()) {
        std::array<double, 2> up = {0, 0};
        handle.recv(std::span<double>(up), instances[k], 0, tags::stat_up);
        const int j = static_cast<int>(up[0]);
        if (j == interval) {
          if (dead_since[k].has_value()) {
            healed.insert(k);
            dead_since[k].reset();
          }
          out = up[1];
          return true;
        }
        if (j > interval) {
          throw MphError("run_ensemble_statistics: member '" + instances[k] +
                         "' sent the sample of future interval " +
                         std::to_string(j) + " while interval " +
                         std::to_string(interval) + " is being aggregated");
        }
        // j < interval: the dead incarnation already delivered this
        // sample; the replacement restored from an older checkpoint and
        // replays it.  Answer with the nudge it missed (same value the
        // aggregate used — determinism is preserved) and keep waiting for
        // the current interval.  A stale tag is itself proof of a restored
        // member — count the heal even when the death-to-respawn window was
        // too short for the poll below to observe — except right after our
        // own restart (interval == start), where it is ordinary lag.
        const std::array<double, 2> down = {static_cast<double>(j),
                                            cached_nudge[k]};
        handle.send(std::span<const double>(down), instances[k], 0,
                    tags::stat_down);
        if (dead_since[k].has_value() || interval > start) healed.insert(k);
        dead_since[k].reset();
        continue;
      }
      if (handle.failure_of(instances[k]).has_value()) {
        // Observed dead.  With no retry policy that is final (legacy
        // semantics); otherwise grant the supervisor's respawn window.
        if (handle.options().liveness.attempts <= 1) return false;
        const auto now = std::chrono::steady_clock::now();
        if (!dead_since[k].has_value()) {
          dead_since[k] = now;
        } else if (now - *dead_since[k] > budget) {
          return false;
        }
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        throw MphError("run_ensemble_statistics: timed out waiting for the "
                       "sample of live member '" +
                       instances[k] + "'");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };

  for (int interval = start; interval < cfg.intervals; ++interval) {
    if (handle.local_proc_id() != 0) continue;
    std::vector<double> samples;
    std::vector<std::size_t> live;
    samples.reserve(instances.size());
    for (std::size_t k = 0; k < instances.size(); ++k) {
      if (!alive[k]) continue;
      double sample = 0;
      const bool got = recovery != nullptr
                           ? member_sample_recovering(k, interval, sample)
                           : member_sample(k, sample);
      if (got) {
        samples.push_back(sample);
        live.push_back(k);
      } else {
        alive[k] = false;
      }
    }
    if (samples.empty()) break;  // the whole ensemble died
    stats.set_instances(static_cast<int>(samples.size()));
    const EnsembleSnapshot snap = stats.aggregate(samples);
    const std::vector<double> nudges =
        stats.control_nudges(samples, snap.mean, gain);
    result.snapshots.push_back(snap);
    if (recovery != nullptr) {
      for (std::size_t i = 0; i < live.size(); ++i) {
        cached_nudge[live[i]] = nudges[i];
      }
      // Checkpoint BEFORE the nudges go out (they are stored inside, so a
      // restart can resend them): this pins the member/statistics lag to
      // at most one interval, which the replay protocol absorbs.
      std::vector<std::uint64_t> alive_flags(instances.size(), 0);
      for (std::size_t k = 0; k < instances.size(); ++k) {
        alive_flags[k] = alive[k] ? 1 : 0;
      }
      recover::Checkpoint ckpt(static_cast<std::uint64_t>(interval));
      ckpt.put_doubles("snapshots", flatten_snapshots(result.snapshots));
      ckpt.put_doubles("nudges", cached_nudge);
      ckpt.put_u64s("alive", alive_flags);
      recovery->store->save(handle.comp_name(), ckpt);
      for (std::size_t i = 0; i < live.size(); ++i) {
        // Unconditional send: a nudge to a member that died again simply
        // sits in its mailbox until the heal drains it, and the replay
        // path re-delivers the value.
        const std::array<double, 2> down = {static_cast<double>(interval),
                                            nudges[i]};
        handle.send(std::span<const double>(down), instances[live[i]], 0,
                    tags::stat_down);
      }
    } else {
      for (std::size_t i = 0; i < live.size(); ++i) {
        // A member can die after reporting; don't nudge a corpse.
        if (handle.ping(instances[live[i]])) {
          handle.send(nudges[i], instances[live[i]], 0, tags::stat_down);
        } else {
          alive[live[i]] = false;
        }
      }
    }
  }
  if (handle.local_proc_id() == 0) {
    for (std::size_t k = 0; k < instances.size(); ++k) {
      if (!alive[k]) result.failed_members.push_back(instances[k]);
    }
    for (const std::size_t k : healed) {
      result.healed_members.push_back(instances[k]);
    }
  }
  return result;
}

}  // namespace mph::climate
