#include "src/proto/checker.hpp"

#include <algorithm>
#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "src/proto/expand.hpp"

namespace mph::proto {

namespace {

using detail::ExpOp;
using detail::Layout;
using detail::Slot;

/// All per-rank projections for one choice assignment.
struct Expansion {
  std::vector<std::vector<ExpOp>> ops;  // indexed by global rank
};

std::string loc_str(const Contract& contract, SourceLoc loc) {
  return contract.origin + ":" + std::to_string(loc.line);
}

/// Dedup sink: the same finding discovered under several choice
/// assignments is reported once.
class Sink {
 public:
  explicit Sink(ProtoReport& report) : report_(report) {}

  void add(std::vector<std::string>& bucket, std::string finding) {
    if (seen_.insert(finding).second) bucket.push_back(std::move(finding));
  }

  ProtoReport& report() noexcept { return report_; }

 private:
  ProtoReport& report_;
  std::set<std::string> seen_;
};

// --- matching ---------------------------------------------------------------

struct SendRec {
  int gid = 0;
  int idx = 0;  // op index within gid's projection
  const ExpOp* op = nullptr;
  int matched_gid = -1;  // receiver, when matched
  int matched_idx = -1;
  const Slot* matched_slot = nullptr;
};

struct SlotRec {
  int gid = 0;  // receiver
  int idx = 0;
  const Slot* slot = nullptr;
  int matched_send = -1;  // index into the sends vector
};

class ComboChecker {
 public:
  ComboChecker(const Contract& contract, const Layout& layout,
               Expansion expansion, Sink& sink)
      : contract_(contract),
        layout_(layout),
        exp_(std::move(expansion)),
        sink_(sink) {}

  void run() {
    match_p2p();
    check_types();
    check_collectives();
    find_cycles();
  }

  /// Graphviz rendering of the happens-before graph (dump-graph mode).
  std::string to_dot() {
    match_p2p();
    check_collectives();
    build_graph();
    std::string out = "digraph causality {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
    for (std::size_t n = 0; n < node_desc_.size(); ++n) {
      out += "  n" + std::to_string(n) + " [label=\"" +
             node_label_[n] + "\"" +
             (node_shared_[n] ? ", style=filled, fillcolor=lightgrey" : "") +
             "];\n";
    }
    for (const auto& [from, to, match] : edges_) {
      out += "  n" + std::to_string(from) + " -> n" + std::to_string(to);
      if (match) out += " [style=dashed]";
      out += ";\n";
    }
    out += "}\n";
    return out;
  }

 private:
  std::string rank_of(int gid) const {
    return detail::rank_name(contract_, layout_, gid);
  }

  std::string send_desc(const SendRec& send) const {
    return rank_of(send.gid) + " send->" + rank_of(send.op->dest) + " (tag=" +
           std::to_string(send.op->tag) + ")" + " at " +
           loc_str(contract_, send.op->loc);
  }

  std::string slot_desc(int gid, const Slot& slot) const {
    const std::string src =
        slot.src < 0 ? std::string("any") : rank_of(slot.src);
    return rank_of(gid) + " recv<-" + src + " (tag=" +
           std::to_string(slot.tag) + ") at " + loc_str(contract_, slot.loc);
  }

  void match_p2p() {
    if (matched_) return;
    matched_ = true;
    // Deterministic channel maps: (src, dst, tag) → sends, exact slots;
    // (dst, tag) → wildcard slots.  All in program order.
    std::map<std::tuple<int, int, int>, std::vector<int>> channel_sends;
    std::map<std::tuple<int, int, int>, std::vector<int>> channel_slots;
    std::map<std::tuple<int, int>, std::vector<int>> any_slots;
    for (int gid = 0; gid < layout_.world; ++gid) {
      const auto& ops = exp_.ops[static_cast<std::size_t>(gid)];
      for (int idx = 0; idx < static_cast<int>(ops.size()); ++idx) {
        const ExpOp& op = ops[static_cast<std::size_t>(idx)];
        if (op.kind == ExpOp::Kind::send) {
          channel_sends[{gid, op.dest, op.tag}].push_back(
              static_cast<int>(sends_.size()));
          sends_.push_back(SendRec{gid, idx, &op, -1, -1, nullptr});
        } else if (op.kind == ExpOp::Kind::recvgroup) {
          for (const Slot& slot : op.slots) {
            const int id = static_cast<int>(slots_.size());
            slots_.push_back(SlotRec{gid, idx, &slot, -1});
            if (slot.src < 0) {
              any_slots[{gid, slot.tag}].push_back(id);
            } else {
              channel_slots[{slot.src, gid, slot.tag}].push_back(id);
            }
          }
        }
      }
    }
    // FIFO per channel, exact-source slots first (minimpi matches posted
    // exact receives before wildcard ones).
    for (const auto& [key, slot_ids] : channel_slots) {
      auto it = channel_sends.find(key);
      const std::size_t have =
          it == channel_sends.end() ? 0 : it->second.size();
      const std::size_t n = std::min(have, slot_ids.size());
      for (std::size_t k = 0; k < n; ++k) {
        pair_up(it->second[k], slot_ids[k]);
      }
    }
    // Leftover sends feed `any` slots on their destination, ordered by
    // (source rank, program order) — the canonical static order.
    for (const auto& [key, slot_ids] : any_slots) {
      const auto [dst, tag] = key;
      std::vector<int> pool;
      for (const auto& [skey, send_ids] : channel_sends) {
        if (std::get<1>(skey) != dst || std::get<2>(skey) != tag) continue;
        for (const int s : send_ids) {
          if (sends_[static_cast<std::size_t>(s)].matched_slot == nullptr) {
            pool.push_back(s);
          }
        }
      }
      const std::size_t n = std::min(pool.size(), slot_ids.size());
      for (std::size_t k = 0; k < n; ++k) pair_up(pool[k], slot_ids[k]);
    }
    for (const SendRec& send : sends_) {
      if (send.matched_slot != nullptr) continue;
      sink_.add(sink_.report().orphan_sends,
                "orphan send: " + send_desc(send) +
                    " — no receive on the destination matches it");
    }
    for (const SlotRec& slot : slots_) {
      if (slot.matched_send >= 0) continue;
      sink_.add(sink_.report().unmatched_recvs,
                "unmatched recv: " + slot_desc(slot.gid, *slot.slot) +
                    " — no send fills this slot");
    }
  }

  void pair_up(int send_id, int slot_id) {
    SendRec& send = sends_[static_cast<std::size_t>(send_id)];
    SlotRec& slot = slots_[static_cast<std::size_t>(slot_id)];
    send.matched_gid = slot.gid;
    send.matched_idx = slot.idx;
    send.matched_slot = slot.slot;
    slot.matched_send = send_id;
  }

  void check_types() {
    for (const SendRec& send : sends_) {
      if (send.matched_slot == nullptr) continue;
      const TypeSpec& give = send.op->type;
      const TypeSpec& want = send.matched_slot->type;
      const std::string where = " at " + loc_str(contract_, send.op->loc) +
                                " / " +
                                loc_str(contract_, send.matched_slot->loc);
      const std::string head = "type mismatch: " + rank_of(send.gid) +
                               " send->" + rank_of(send.matched_gid) +
                               " (tag=" + std::to_string(send.op->tag) + ") ";
      if (give.typed() && want.typed() && !give.sig().matches(want.sig())) {
        sink_.add(sink_.report().type_mismatches,
                  head + "carries type " + give.name + " (" +
                      std::to_string(give.size) + " B/elem) but the receive "
                      "expects type " + want.name + " (" +
                      std::to_string(want.size) + " B/elem)" + where);
        continue;
      }
      if (give.count != 0 && want.count != 0 && give.count != want.count) {
        sink_.add(sink_.report().type_mismatches,
                  head + "carries " + std::to_string(give.count) +
                      " element(s) but the receive expects " +
                      std::to_string(want.count) + where);
        continue;
      }
      const std::uint64_t give_bytes = give.total_bytes();
      const std::uint64_t want_bytes = want.total_bytes();
      if (give_bytes != 0 && want_bytes != 0 && give_bytes != want_bytes) {
        sink_.add(sink_.report().type_mismatches,
                  head + "carries " + std::to_string(give_bytes) +
                      " byte(s) but the receive expects " +
                      std::to_string(want_bytes) + where);
      }
    }
  }

  // --- collectives ----------------------------------------------------------

  /// Per-scope, per-member sequences of collective op indices.
  void check_collectives() {
    if (collectives_done_) return;
    collectives_done_ = true;
    std::map<std::string, std::map<int, std::vector<int>>> scopes;
    for (int gid = 0; gid < layout_.world; ++gid) {
      const auto& ops = exp_.ops[static_cast<std::size_t>(gid)];
      for (int idx = 0; idx < static_cast<int>(ops.size()); ++idx) {
        const ExpOp& op = ops[static_cast<std::size_t>(idx)];
        if (op.kind != ExpOp::Kind::collective) continue;
        if (op.scope != "world") {
          const auto [comp, rank] = layout_.owner(gid);
          if (contract_.components[static_cast<std::size_t>(comp)].name !=
              op.scope) {
            sink_.add(sink_.report().collective_errors,
                      "collective scope error: " + rank_of(gid) + " joins " +
                          std::string(op_kind_name(op.coll)) + "(" +
                          op.scope + ") but is not a member of that scope"
                          " at " + loc_str(contract_, op.loc));
            continue;
          }
        }
        scopes[op.scope][gid].push_back(idx);
      }
    }
    for (const auto& [scope, by_member] : scopes) {
      check_scope(scope, by_member);
    }
  }

  std::vector<int> scope_members(const std::string& scope) const {
    std::vector<int> members;
    if (scope == "world") {
      for (int gid = 0; gid < layout_.world; ++gid) members.push_back(gid);
      return members;
    }
    const int comp = contract_.component_index(scope);
    const ComponentDecl& decl =
        contract_.components[static_cast<std::size_t>(comp)];
    for (int r = 0; r < decl.ranks; ++r) {
      members.push_back(layout_.gid(comp, r));
    }
    return members;
  }

  void check_scope(const std::string& scope,
                   const std::map<int, std::vector<int>>& by_member) {
    const std::vector<int> members = scope_members(scope);
    std::size_t width = 0;
    bool uniform = true;
    bool first = true;
    for (const int gid : members) {
      const auto it = by_member.find(gid);
      const std::size_t n = it == by_member.end() ? 0 : it->second.size();
      if (first) {
        width = n;
        first = false;
      } else if (n != width) {
        uniform = false;
      }
    }
    if (!uniform) {
      std::string detail;
      for (const int gid : members) {
        const auto it = by_member.find(gid);
        const std::size_t n = it == by_member.end() ? 0 : it->second.size();
        if (!detail.empty()) detail += ", ";
        detail += rank_of(gid) + "=" + std::to_string(n);
      }
      sink_.add(sink_.report().collective_errors,
                "collective mismatch: scope '" + scope +
                    "' members disagree on the number of collective steps (" +
                    detail + ")");
      return;  // slot-wise comparison and shared nodes need equal lengths
    }
    // Slot-wise agreement, using the first member as the reference.
    for (std::size_t s = 0; s < width; ++s) {
      const ExpOp* ref = nullptr;
      int ref_gid = -1;
      for (const int gid : members) {
        const ExpOp& op =
            exp_.ops[static_cast<std::size_t>(gid)][static_cast<std::size_t>(
                by_member.at(gid)[s])];
        if (ref == nullptr) {
          ref = &op;
          ref_gid = gid;
          continue;
        }
        const std::string where =
            " at " + loc_str(contract_, ref->loc) + " / " +
            loc_str(contract_, op.loc);
        if (op.coll != ref->coll) {
          sink_.add(sink_.report().collective_errors,
                    "collective mismatch: scope '" + scope + "' step " +
                        std::to_string(s) + ": " + rank_of(ref_gid) +
                        " runs " + op_kind_name(ref->coll) + " but " +
                        rank_of(gid) + " runs " + op_kind_name(op.coll) +
                        where);
          continue;
        }
        if (op.root != ref->root) {
          sink_.add(sink_.report().collective_errors,
                    "collective mismatch: scope '" + scope + "' step " +
                        std::to_string(s) + ": bcast roots disagree (" +
                        rank_of(ref_gid) + " says " + rank_of(ref->root) +
                        ", " + rank_of(gid) + " says " + rank_of(op.root) +
                        ")" + where);
        }
        if (op.type.typed() && ref->type.typed() &&
            !op.type.sig().matches(ref->type.sig())) {
          sink_.add(sink_.report().collective_errors,
                    "collective mismatch: scope '" + scope + "' step " +
                        std::to_string(s) + ": " + rank_of(ref_gid) +
                        " uses type " + ref->type.name + " but " +
                        rank_of(gid) + " uses type " + op.type.name + where);
        }
      }
    }
    // Record shared collective slots for the happens-before graph.
    for (std::size_t s = 0; s < width; ++s) {
      for (const int gid : members) {
        const auto it = by_member.find(gid);
        if (it == by_member.end()) continue;
        shared_slot_[{gid, it->second[s]}] = {scope, static_cast<int>(s)};
      }
    }
  }

  // --- happens-before graph -------------------------------------------------

  void build_graph() {
    if (graph_built_) return;
    graph_built_ = true;
    // Node ids: one per projected op, except consistent collective steps,
    // which collapse onto one shared node per (scope, step).
    std::map<std::pair<std::string, int>, int> shared_ids;
    node_of_.assign(static_cast<std::size_t>(layout_.world), {});
    const auto describe_collective = [&](const ExpOp& op) {
      return std::string(op_kind_name(op.coll)) + "(" + op.scope + ") at " +
             loc_str(contract_, op.loc);
    };
    for (int gid = 0; gid < layout_.world; ++gid) {
      const auto& ops = exp_.ops[static_cast<std::size_t>(gid)];
      auto& ids = node_of_[static_cast<std::size_t>(gid)];
      ids.reserve(ops.size());
      for (int idx = 0; idx < static_cast<int>(ops.size()); ++idx) {
        const ExpOp& op = ops[static_cast<std::size_t>(idx)];
        const auto shared = shared_slot_.find({gid, idx});
        if (shared != shared_slot_.end()) {
          const auto [it, fresh] =
              shared_ids.try_emplace(shared->second, 0);
          if (fresh) {
            it->second = new_node(describe_collective(op), /*shared=*/true,
                                  gid, idx);
          }
          ids.push_back(it->second);
          continue;
        }
        std::string label;
        if (op.kind == ExpOp::Kind::send) {
          label = rank_of(gid) + " send->" + rank_of(op.dest) + " tag=" +
                  std::to_string(op.tag);
        } else if (op.kind == ExpOp::Kind::recvgroup) {
          label = rank_of(gid) + " recv x" +
                  std::to_string(op.slots.size());
        } else {
          label = rank_of(gid) + " " + describe_collective(op);
        }
        ids.push_back(new_node(label, /*shared=*/false, gid, idx));
      }
      for (std::size_t i = 1; i < ids.size(); ++i) {
        if (ids[i - 1] != ids[i]) {
          edges_.emplace_back(ids[i - 1], ids[i], false);
        }
      }
    }
    for (const SendRec& send : sends_) {
      if (send.matched_slot == nullptr) continue;
      edges_.emplace_back(
          node_of_[static_cast<std::size_t>(send.gid)]
                  [static_cast<std::size_t>(send.idx)],
          node_of_[static_cast<std::size_t>(send.matched_gid)]
                  [static_cast<std::size_t>(send.matched_idx)],
          true);
    }
    adj_.assign(node_desc_.size(), {});
    for (const auto& [from, to, match] : edges_) {
      adj_[static_cast<std::size_t>(from)].push_back(to);
    }
    for (auto& out : adj_) std::sort(out.begin(), out.end());
  }

  int new_node(std::string label, bool shared, int gid, int idx) {
    const int id = static_cast<int>(node_desc_.size());
    node_desc_.push_back({gid, idx});
    node_label_.push_back(std::move(label));
    node_shared_.push_back(shared);
    return id;
  }

  void find_cycles() {
    build_graph();
    // Iterative DFS with colors; a back edge to a grey node closes a cycle.
    enum : std::uint8_t { white, grey, black };
    std::vector<std::uint8_t> color(node_desc_.size(), white);
    std::vector<int> stack;          // current DFS path (node ids)
    std::vector<std::size_t> child;  // next adjacency index per path entry
    for (int root = 0; root < static_cast<int>(node_desc_.size()); ++root) {
      if (color[static_cast<std::size_t>(root)] != white) continue;
      stack.push_back(root);
      child.push_back(0);
      color[static_cast<std::size_t>(root)] = grey;
      while (!stack.empty()) {
        const int node = stack.back();
        auto& next = child.back();
        const auto& out = adj_[static_cast<std::size_t>(node)];
        if (next >= out.size()) {
          color[static_cast<std::size_t>(node)] = black;
          stack.pop_back();
          child.pop_back();
          continue;
        }
        const int target = out[next++];
        if (color[static_cast<std::size_t>(target)] == white) {
          color[static_cast<std::size_t>(target)] = grey;
          stack.push_back(target);
          child.push_back(0);
        } else if (color[static_cast<std::size_t>(target)] == grey) {
          report_cycle(stack, target);
        }
      }
    }
  }

  void report_cycle(const std::vector<int>& stack, int entry) {
    const auto start = std::find(stack.begin(), stack.end(), entry);
    std::vector<int> cycle(start, stack.end());
    // Canonical rotation (smallest node id first) so the same cycle found
    // from different DFS roots dedups to one finding.
    const auto min_it = std::min_element(cycle.begin(), cycle.end());
    std::rotate(cycle.begin(), min_it, cycle.end());
    std::set<int> gids;
    for (const int node : cycle) {
      if (!node_shared_[static_cast<std::size_t>(node)]) {
        gids.insert(node_desc_[static_cast<std::size_t>(node)].first);
      }
    }
    std::string out = "wait-for cycle across " +
                      std::to_string(gids.size()) + " rank(s): ";
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      if (i != 0) out += " ; ";
      const int prev =
          cycle[(i + cycle.size() - 1) % cycle.size()];
      out += describe_node(cycle[static_cast<std::size_t>(i)], prev);
    }
    sink_.add(sink_.report().deadlocks, std::move(out));
  }

  /// Cycle-report description of one node; `prev` is the in-cycle
  /// predecessor, used to name the blocking slot of a receive group.
  std::string describe_node(int node, int prev) {
    const auto [gid, idx] = node_desc_[static_cast<std::size_t>(node)];
    const ExpOp& op =
        exp_.ops[static_cast<std::size_t>(gid)][static_cast<std::size_t>(idx)];
    if (op.kind == ExpOp::Kind::send) {
      return rank_of(gid) + " send->" + rank_of(op.dest) + " (tag=" +
             std::to_string(op.tag) + ") at " + loc_str(contract_, op.loc);
    }
    if (op.kind == ExpOp::Kind::recvgroup) {
      // Prefer the slot fed by the in-cycle predecessor (the actual
      // blocking dependency the cycle runs through).
      const Slot* pick = &op.slots.front();
      const auto [pgid, pidx] = node_desc_[static_cast<std::size_t>(prev)];
      for (const SlotRec& slot : slots_) {
        if (slot.gid != gid || slot.idx != idx || slot.matched_send < 0) {
          continue;
        }
        const SendRec& send =
            sends_[static_cast<std::size_t>(slot.matched_send)];
        if (send.gid == pgid && send.idx == pidx) {
          pick = slot.slot;
          break;
        }
      }
      return slot_desc(gid, *pick);
    }
    return std::string(op_kind_name(op.coll)) + "(" + op.scope + ") at " +
           loc_str(contract_, op.loc);
  }

  const Contract& contract_;
  const Layout& layout_;
  Expansion exp_;
  Sink& sink_;

  bool matched_ = false;
  bool collectives_done_ = false;
  bool graph_built_ = false;
  std::vector<SendRec> sends_;
  std::vector<SlotRec> slots_;
  /// (gid, op idx) → (scope, step): consistent collective slots.
  std::map<std::pair<int, int>, std::pair<std::string, int>> shared_slot_;
  std::vector<std::vector<int>> node_of_;  // per gid, per op → node id
  std::vector<std::pair<int, int>> node_desc_;  // node id → (gid, op idx)
  std::vector<std::string> node_label_;
  std::vector<bool> node_shared_;
  std::vector<std::tuple<int, int, bool>> edges_;  // (from, to, is_match)
  std::vector<std::vector<int>> adj_;
};

/// Enumerate either/or branch assignments (cartesian product across
/// sites), capped.  Returns true while `assign` holds a fresh assignment.
bool next_assignment(const std::vector<detail::ChoiceSite>& sites,
                     std::vector<int>& assign) {
  for (std::size_t i = sites.size(); i-- > 0;) {
    if (++assign[i] < sites[i].branches) return true;
    assign[i] = 0;
  }
  return false;
}

Expansion expand_all(const Contract& contract, const Layout& layout,
                     const std::vector<int>& assign,
                     const ProtoCheckOptions& options) {
  Expansion exp;
  exp.ops.resize(static_cast<std::size_t>(layout.world));
  for (std::size_t c = 0; c < contract.components.size(); ++c) {
    const ComponentDecl& decl = contract.components[c];
    for (int r = 0; r < decl.ranks; ++r) {
      exp.ops[static_cast<std::size_t>(
          layout.gid(static_cast<int>(c), r))] =
          detail::expand_rank(contract, layout, static_cast<int>(c), r,
                              assign, options.max_ops_per_rank);
    }
  }
  return exp;
}

}  // namespace

std::string ProtoReport::to_string() const {
  std::string out;
  const auto emit = [&out](const std::vector<std::string>& bucket) {
    for (const std::string& line : bucket) {
      out += line;
      out += '\n';
    }
  };
  emit(structural);
  emit(orphan_sends);
  emit(unmatched_recvs);
  emit(type_mismatches);
  emit(collective_errors);
  emit(deadlocks);
  return out;
}

ProtoReport check(const Contract& contract,
                  const ProtoCheckOptions& options) {
  ProtoReport report;
  Sink sink(report);
  const Layout layout = detail::make_layout(contract);
  const std::vector<detail::ChoiceSite> sites = detail::choice_sites(contract);
  std::vector<int> assign(sites.size(), 0);
  int combos = 0;
  bool more = true;
  while (more) {
    if (combos >= options.max_choice_combos) {
      sink.add(report.structural,
               "either/or branch assignments exceed the cap of " +
                   std::to_string(options.max_choice_combos) +
                   "; only the first " +
                   std::to_string(options.max_choice_combos) +
                   " were checked");
      break;
    }
    ++combos;
    try {
      ComboChecker(contract, layout, expand_all(contract, layout, assign,
                                                options),
                   sink)
          .run();
    } catch (const MphError& e) {
      sink.add(report.structural, e.what());
      break;
    }
    more = next_assignment(sites, assign);
  }
  return report;
}

std::string dump_causality_dot(const Contract& contract,
                               const ProtoCheckOptions& options) {
  ProtoReport scratch;
  Sink sink(scratch);
  const Layout layout = detail::make_layout(contract);
  const std::vector<detail::ChoiceSite> sites = detail::choice_sites(contract);
  const std::vector<int> assign(sites.size(), 0);
  ComboChecker combo(contract, layout,
                     expand_all(contract, layout, assign, options), sink);
  return combo.to_dot();
}

}  // namespace mph::proto
