// expand.hpp — internal: per-rank projection of a contract.
//
// Both the static checker (checker.cpp) and the trace-conformance matcher
// (conform.cpp) need the same projection: for one (component, local rank)
// and one resolved choice assignment, the flat sequence of operations that
// rank performs — loops unrolled, `on` ranges filtered, ranged/wildcard
// receives expanded into unordered slot groups, gathers folded into one
// group.  Keeping a single expander guarantees the checker and the
// conformance matcher agree on what a contract *means*.
//
// Ranks are numbered globally in component declaration order (component 0
// ranks first), mirroring how the MPH handshake lays out world ranks for a
// registry in declaration order.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/proto/contract.hpp"

namespace mph::proto::detail {

/// Global rank numbering over a contract's components.
struct Layout {
  std::vector<int> base;  ///< first global rank per component index
  int world = 0;

  [[nodiscard]] int gid(int comp, int rank) const noexcept {
    return base[static_cast<std::size_t>(comp)] + rank;
  }
  /// (component index, local rank) of a global rank.
  [[nodiscard]] std::pair<int, int> owner(int gid) const noexcept {
    int comp = 0;
    while (comp + 1 < static_cast<int>(base.size()) &&
           base[static_cast<std::size_t>(comp + 1)] <= gid) {
      ++comp;
    }
    return {comp, gid - base[static_cast<std::size_t>(comp)]};
  }
};

[[nodiscard]] Layout make_layout(const Contract& contract);

/// "component[local]" for a global rank — the `name[rank]` form mpicheck
/// uses in wait-for cycle reports.
[[nodiscard]] std::string rank_name(const Contract& contract,
                                    const Layout& layout, int gid);

/// One expected receive within a group: a specific source (or wildcard)
/// with tag and payload spec.
struct Slot {
  int src = -1;  ///< global rank; -1 = `any` wildcard
  int tag = -1;
  TypeSpec type;
  SourceLoc loc;
};

/// One step of a rank's projected order.
struct ExpOp {
  enum class Kind {
    send,       ///< one message to `dest`
    recvgroup,  ///< unordered multiset of receive slots (1 slot = plain recv)
    collective, ///< one collective step in `scope`
  };
  Kind kind = Kind::send;
  // send
  int dest = -1;
  int tag = -1;
  TypeSpec type;
  // collective
  OpKind coll = OpKind::barrier;
  std::string scope;
  int root = -1;  ///< bcast root global rank; -1 otherwise
  // recvgroup
  std::vector<Slot> slots;
  SourceLoc loc;
};

/// One `either/or` site.  Choice is component-level: every rank of
/// `component` takes the same branch, so sites are enumerated per syntactic
/// occurrence (a site inside a loop is still one site — the same branch
/// every iteration).
struct ChoiceSite {
  int component = 0;           ///< component index
  int branches = 0;
  SourceLoc loc;
};

/// All choice sites in pre-order (component declaration order, then
/// syntactic order within the proto).  expand_rank's `choice` vector is
/// indexed by position in this list.
[[nodiscard]] std::vector<ChoiceSite> choice_sites(const Contract& contract);

/// Project the contract onto one rank of one component under a branch
/// assignment.  Throws MphError when the unrolled op count exceeds
/// `max_ops` (runaway loop nesting).
[[nodiscard]] std::vector<ExpOp> expand_rank(const Contract& contract,
                                             const Layout& layout, int comp,
                                             int rank,
                                             const std::vector<int>& choice,
                                             std::uint64_t max_ops);

}  // namespace mph::proto::detail
