// infer.hpp — propose a contract from a recorded trace.
//
// `mph_proto infer <trace>` bootstraps contract adoption for an existing
// job: read one representative trace, reconstruct per-rank protocol op
// streams (conform.hpp's reader), and emit contract text that
// conform-checks against the very trace it came from.  Three
// generalizations keep the output readable instead of a flat transcript:
//
//   * runs of receives with one message per rank of a contiguous peer
//     range collapse into a ranged recv (`recv comp[lo..hi] tag T`), and
//     into a `gather { ... }` when several components contribute;
//   * repeated blocks (periods up to 4 ops) collapse into `loop N {...}`;
//   * ranks of a component with identical streams merge; divergent ranks
//     get `on lo..hi { ... }` blocks.
//
// Payloads are pinned as `bytes N` — a trace records sizes, not element
// types; promote to `type ...` by hand where stronger checking is wanted.
#pragma once

#include <string>
#include <string_view>

#include "src/proto/conform.hpp"

namespace mph::proto {

/// Infer contract text from a parsed trace.  The result is valid input
/// for parse_contract().  Collective spans that have no contract
/// equivalent (reduce, gatherv, ...) are dropped.
[[nodiscard]] std::string infer_contract_text(const ObservedTrace& trace,
                                              std::string_view name);

}  // namespace mph::proto
