// parser.hpp — text-format parser for communication contracts.
//
// Line-oriented tokenizer + recursive descent over the grammar documented
// in contract.hpp.  Every diagnostic is a ContractParseError whose message
// starts with "origin:line:column:", so editor tooling (and the golden
// tests in tests/proto/) can jump straight to the offending token.
//
// The parser performs the structural validation that has a single source
// position: duplicate component/proto declarations, protos for undeclared
// components, peer references to unknown components or out-of-range ranks,
// sends without a concrete destination, gather bodies containing
// non-receive ops, zero/negative loop and rank bounds.  Cross-rank
// semantic analysis (matching, type agreement, deadlock) lives in
// checker.hpp.
#pragma once

#include <string>
#include <string_view>

#include "src/proto/contract.hpp"

namespace mph::proto {

/// Parse contract text.  `origin` names the source in diagnostics (a file
/// path, or "<text>" for in-memory contracts).  Throws ContractParseError.
[[nodiscard]] Contract parse_contract(std::string_view text,
                                      std::string origin = "<text>");

/// Read `path` and parse it, with `path` as the diagnostic origin.  Throws
/// MphError when the file cannot be read, ContractParseError on bad text.
[[nodiscard]] Contract load_contract(const std::string& path);

/// Built-in element-type width for `type T` payloads (int, double, i32,
/// f64, ...); 0 when `name` is not a known type (caller must say `size N`).
[[nodiscard]] std::uint32_t builtin_type_size(std::string_view name) noexcept;

}  // namespace mph::proto
