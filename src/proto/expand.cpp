#include "src/proto/expand.hpp"

#include <cstddef>

namespace mph::proto::detail {

Layout make_layout(const Contract& contract) {
  Layout layout;
  layout.base.reserve(contract.components.size());
  for (const ComponentDecl& decl : contract.components) {
    layout.base.push_back(layout.world);
    layout.world += decl.ranks;
  }
  return layout;
}

std::string rank_name(const Contract& contract, const Layout& layout,
                      int gid) {
  const auto [comp, rank] = layout.owner(gid);
  return contract.components[static_cast<std::size_t>(comp)].name + "[" +
         std::to_string(rank) + "]";
}

namespace {

void collect_sites(const Contract& contract, int comp, const Seq& seq,
                   std::vector<ChoiceSite>& out) {
  for (const Item& item : seq.items) {
    if (item.kind == Item::Kind::choice) {
      out.push_back(ChoiceSite{comp, static_cast<int>(item.branches.size()),
                               item.loc});
    }
    for (const Seq& branch : item.branches) {
      collect_sites(contract, comp, branch, out);
    }
  }
}

/// Walks one proto body for one rank.  Choice sites are consumed in the
/// same pre-order as choice_sites() — `site` is the running cursor, and a
/// site inside a loop keeps one index across iterations by re-walking from
/// a saved cursor (see the loop case).
class RankWalker {
 public:
  RankWalker(const Contract& contract, const Layout& layout, int comp,
             int rank, const std::vector<int>& choice, std::uint64_t max_ops)
      : contract_(contract),
        layout_(layout),
        comp_(comp),
        rank_(rank),
        choice_(choice),
        max_ops_(max_ops) {}

  std::vector<ExpOp> run(const Seq& body, int first_site) {
    int site = first_site;
    walk(body, site, /*emit=*/true);
    return std::move(out_);
  }

 private:
  void walk(const Seq& seq, int& site, bool emit) {
    for (const Item& item : seq.items) {
      switch (item.kind) {
        case Item::Kind::op:
          if (emit) emit_op(item.op);
          break;
        case Item::Kind::loop: {
          // Each iteration must consume the same choice-site indices, so
          // re-walk the body from the saved cursor; only the last pass
          // advances `site` past the loop.
          const int start = site;
          for (int i = 0; i < item.count; ++i) {
            site = start;
            walk(item.branches[0], site, emit);
          }
          break;
        }
        case Item::Kind::choice: {
          const int taken =
              site < static_cast<int>(choice_.size())
                  ? choice_[static_cast<std::size_t>(site)]
                  : 0;
          ++site;
          for (std::size_t b = 0; b < item.branches.size(); ++b) {
            // Non-taken branches are walked silently so nested choice
            // sites keep stable indices across branch assignments.
            walk(item.branches[b],
                 site, emit && static_cast<int>(b) == taken);
          }
          break;
        }
        case Item::Kind::gather: {
          if (emit) emit_gather(item);
          // gather bodies hold plain recvs only (parser-enforced): no
          // nested choice sites to account for.
          break;
        }
        case Item::Kind::on:
          walk(item.branches[0], site,
               emit && rank_ >= item.on_low && rank_ <= item.on_high);
          break;
      }
    }
  }

  void add_slots(std::vector<Slot>& slots, const Op& op) {
    Slot slot;
    slot.tag = op.tag;
    slot.type = op.type;
    slot.loc = op.loc;
    switch (op.peer.kind) {
      case PeerSpec::Kind::any:
        slots.push_back(slot);
        return;
      case PeerSpec::Kind::exact:
      case PeerSpec::Kind::range:
      case PeerSpec::Kind::all: {
        const int peer_comp = contract_.component_index(op.peer.component);
        const int low = op.peer.kind == PeerSpec::Kind::all ? 0 : op.peer.low;
        const int high =
            op.peer.kind == PeerSpec::Kind::all
                ? contract_.components[static_cast<std::size_t>(peer_comp)]
                          .ranks -
                      1
                : op.peer.high;
        for (int r = low; r <= high; ++r) {
          slot.src = layout_.gid(peer_comp, r);
          slots.push_back(slot);
        }
        return;
      }
    }
  }

  void emit_op(const Op& op) {
    ExpOp exp;
    exp.loc = op.loc;
    switch (op.kind) {
      case OpKind::send: {
        exp.kind = ExpOp::Kind::send;
        const int peer_comp = contract_.component_index(op.peer.component);
        exp.dest = layout_.gid(peer_comp, op.peer.low);
        exp.tag = op.tag;
        exp.type = op.type;
        break;
      }
      case OpKind::recv:
        exp.kind = ExpOp::Kind::recvgroup;
        add_slots(exp.slots, op);
        break;
      default: {
        exp.kind = ExpOp::Kind::collective;
        exp.coll = op.kind;
        exp.scope = op.scope;
        exp.type = op.type;
        if (op.kind == OpKind::bcast) {
          const int peer_comp = contract_.component_index(op.peer.component);
          exp.root = layout_.gid(peer_comp, op.peer.low);
        }
        break;
      }
    }
    push(std::move(exp));
  }

  void emit_gather(const Item& item) {
    ExpOp exp;
    exp.kind = ExpOp::Kind::recvgroup;
    exp.loc = item.loc;
    for (const Item& inner : item.branches[0].items) {
      add_slots(exp.slots, inner.op);
    }
    push(std::move(exp));
  }

  void push(ExpOp exp) {
    if (out_.size() >= max_ops_) {
      throw MphError(
          "proto: rank " + rank_name(contract_, layout_,
                                     layout_.gid(comp_, rank_)) +
          " unrolls to more than " + std::to_string(max_ops_) +
          " operations; reduce loop bounds or raise the cap");
    }
    out_.push_back(std::move(exp));
  }

  const Contract& contract_;
  const Layout& layout_;
  int comp_;
  int rank_;
  const std::vector<int>& choice_;
  std::uint64_t max_ops_;
  std::vector<ExpOp> out_;
};

}  // namespace

std::vector<ChoiceSite> choice_sites(const Contract& contract) {
  std::vector<ChoiceSite> out;
  for (std::size_t c = 0; c < contract.components.size(); ++c) {
    const ProtoDecl* proto =
        contract.find_proto(contract.components[c].name);
    if (proto != nullptr) {
      collect_sites(contract, static_cast<int>(c), proto->body, out);
    }
  }
  return out;
}

std::vector<ExpOp> expand_rank(const Contract& contract, const Layout& layout,
                               int comp, int rank,
                               const std::vector<int>& choice,
                               std::uint64_t max_ops) {
  const ProtoDecl* proto =
      contract.find_proto(contract.components[static_cast<std::size_t>(comp)]
                              .name);
  if (proto == nullptr) return {};
  // The choice vector is indexed across ALL components (choice_sites order):
  // skip past the sites that belong to earlier components.
  std::vector<ChoiceSite> earlier;
  for (int c = 0; c < comp; ++c) {
    const ProtoDecl* p =
        contract.find_proto(contract.components[static_cast<std::size_t>(c)]
                                .name);
    if (p != nullptr) collect_sites(contract, c, p->body, earlier);
  }
  return RankWalker(contract, layout, comp, rank, choice, max_ops)
      .run(proto->body, static_cast<int>(earlier.size()));
}

}  // namespace mph::proto::detail
