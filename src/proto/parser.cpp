#include "src/proto/parser.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace mph::proto {

namespace {

struct Token {
  enum class Kind { word, number, punct, end };
  Kind kind = Kind::end;
  std::string text;       // word / punct spelling
  long long value = 0;    // number
  SourceLoc loc;
};

/// Hand-rolled lexer: words, non-negative integers, and the punctuation the
/// grammar needs ("{ } [ ] * ..").  '#' starts a comment to end of line.
class Lexer {
 public:
  Lexer(std::string_view text, const std::string& origin)
      : text_(text), origin_(origin) {
    advance();
  }

  [[nodiscard]] const Token& peek() const noexcept { return current_; }

  Token next() {
    Token out = current_;
    advance();
    return out;
  }

  [[noreturn]] void fail(SourceLoc loc, const std::string& what) const {
    throw ContractParseError(origin_, loc, what);
  }

 private:
  [[nodiscard]] SourceLoc here() const noexcept { return {line_, column_}; }

  void bump() {
    if (text_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  void skip_blank() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') bump();
      } else if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        bump();
      } else {
        break;
      }
    }
  }

  void advance() {
    skip_blank();
    current_ = Token{};
    current_.loc = here();
    if (pos_ >= text_.size()) {
      current_.kind = Token::Kind::end;
      current_.text = "<end of input>";
      return;
    }
    const char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      current_.kind = Token::Kind::word;
      while (pos_ < text_.size()) {
        const char w = text_[pos_];
        if (std::isalnum(static_cast<unsigned char>(w)) == 0 && w != '_' &&
            w != '-') {
          break;
        }
        current_.text += w;
        bump();
      }
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      current_.kind = Token::Kind::number;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        current_.text += text_[pos_];
        bump();
      }
      current_.value = std::stoll(current_.text);
      return;
    }
    if (c == '.' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '.') {
      current_.kind = Token::Kind::punct;
      current_.text = "..";
      bump();
      bump();
      return;
    }
    if (c == '{' || c == '}' || c == '[' || c == ']' || c == '*') {
      current_.kind = Token::Kind::punct;
      current_.text = c;
      bump();
      return;
    }
    fail(here(), std::string("unexpected character '") + c + "'");
  }

  std::string_view text_;
  std::string origin_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  Token current_;
};

class Parser {
 public:
  Parser(std::string_view text, std::string origin)
      : origin_(std::move(origin)), lex_(text, origin_) {}

  Contract parse() {
    Contract out;
    out.origin = origin_;
    expect_keyword("contract");
    out.name = expect_word("a contract name");
    while (lex_.peek().kind != Token::Kind::end) {
      const Token head = lex_.peek();
      if (head.kind != Token::Kind::word) {
        lex_.fail(head.loc, "expected 'component' or 'proto', got '" +
                                head.text + "'");
      }
      if (head.text == "component") {
        parse_component(out);
      } else if (head.text == "proto") {
        parse_proto(out);
      } else {
        lex_.fail(head.loc, "expected 'component' or 'proto', got '" +
                                head.text + "'");
      }
    }
    validate(out);
    return out;
  }

 private:
  void parse_component(Contract& out) {
    ComponentDecl decl;
    decl.loc = lex_.next().loc;  // 'component'
    decl.name = expect_word("a component name");
    expect_keyword("ranks");
    decl.ranks = expect_count("a rank count");
    for (const ComponentDecl& existing : out.components) {
      if (existing.name == decl.name) {
        lex_.fail(decl.loc, "duplicate component '" + decl.name +
                                "' (first declared at line " +
                                std::to_string(existing.loc.line) + ")");
      }
    }
    out.components.push_back(std::move(decl));
  }

  void parse_proto(Contract& out) {
    ProtoDecl decl;
    decl.loc = lex_.next().loc;  // 'proto'
    decl.component = expect_word("a component name");
    for (const ProtoDecl& existing : out.protos) {
      if (existing.component == decl.component) {
        lex_.fail(decl.loc, "duplicate proto for component '" +
                                decl.component + "' (first at line " +
                                std::to_string(existing.loc.line) + ")");
      }
    }
    decl.body = parse_block();
    out.protos.push_back(std::move(decl));
  }

  Seq parse_block() {
    expect_punct("{");
    Seq seq;
    while (true) {
      const Token& head = lex_.peek();
      if (head.kind == Token::Kind::punct && head.text == "}") {
        lex_.next();
        return seq;
      }
      if (head.kind == Token::Kind::end) {
        lex_.fail(head.loc, "unterminated block: expected '}'");
      }
      seq.items.push_back(parse_item());
    }
  }

  Item parse_item() {
    const Token head = lex_.peek();
    if (head.kind != Token::Kind::word) {
      lex_.fail(head.loc, "expected an operation, got '" + head.text + "'");
    }
    if (head.text == "loop") return parse_loop();
    if (head.text == "either") return parse_choice();
    if (head.text == "gather") return parse_gather();
    if (head.text == "on") return parse_on();
    Item item;
    item.kind = Item::Kind::op;
    item.op = parse_op();
    item.loc = item.op.loc;
    return item;
  }

  Item parse_loop() {
    Item item;
    item.kind = Item::Kind::loop;
    item.loc = lex_.next().loc;  // 'loop'
    item.count = expect_count("a loop count");
    item.branches.push_back(parse_block());
    return item;
  }

  Item parse_choice() {
    Item item;
    item.kind = Item::Kind::choice;
    item.loc = lex_.next().loc;  // 'either'
    item.branches.push_back(parse_block());
    bool saw_or = false;
    while (lex_.peek().kind == Token::Kind::word && lex_.peek().text == "or") {
      lex_.next();
      item.branches.push_back(parse_block());
      saw_or = true;
    }
    if (!saw_or) {
      lex_.fail(item.loc, "'either' needs at least one 'or { ... }' branch");
    }
    return item;
  }

  Item parse_gather() {
    Item item;
    item.kind = Item::Kind::gather;
    item.loc = lex_.next().loc;  // 'gather'
    item.branches.push_back(parse_block());
    for (const Item& inner : item.branches[0].items) {
      if (inner.kind != Item::Kind::op || inner.op.kind != OpKind::recv) {
        lex_.fail(inner.loc,
                  "gather blocks may contain only 'recv' operations");
      }
    }
    if (item.branches[0].items.empty()) {
      lex_.fail(item.loc, "gather block is empty");
    }
    return item;
  }

  Item parse_on() {
    Item item;
    item.kind = Item::Kind::on;
    item.loc = lex_.next().loc;  // 'on'
    parse_rank_range(item.on_low, item.on_high, /*allow_star=*/false);
    item.branches.push_back(parse_block());
    return item;
  }

  /// N | N..M ; with allow_star also '*' (reported as low=0, high=-1).
  void parse_rank_range(int& low, int& high, bool allow_star) {
    const Token& head = lex_.peek();
    if (allow_star && head.kind == Token::Kind::punct && head.text == "*") {
      lex_.next();
      low = 0;
      high = -1;
      return;
    }
    low = expect_rank("a rank");
    high = low;
    if (lex_.peek().kind == Token::Kind::punct && lex_.peek().text == "..") {
      const Token dots = lex_.next();
      high = expect_rank("a rank");
      if (high < low) {
        lex_.fail(dots.loc, "empty rank range " + std::to_string(low) + ".." +
                                std::to_string(high));
      }
    }
  }

  Op parse_op() {
    const Token head = lex_.next();
    Op op;
    op.loc = head.loc;
    if (head.text == "send" || head.text == "recv") {
      op.kind = head.text == "send" ? OpKind::send : OpKind::recv;
      op.peer = parse_peer();
      if (op.kind == OpKind::send && op.peer.kind != PeerSpec::Kind::exact) {
        lex_.fail(op.loc,
                  "send needs a concrete destination rank (component[k]); "
                  "got '" +
                      op.peer.to_string() + "'");
      }
      expect_keyword("tag");
      op.tag = expect_count("a tag", /*allow_zero=*/true);
      parse_payload(op.type);
      return op;
    }
    if (head.text == "barrier" || head.text == "bcast" ||
        head.text == "allreduce" || head.text == "allgather") {
      if (head.text == "barrier") {
        op.kind = OpKind::barrier;
      } else if (head.text == "bcast") {
        op.kind = OpKind::bcast;
      } else if (head.text == "allreduce") {
        op.kind = OpKind::allreduce;
      } else {
        op.kind = OpKind::allgather;
      }
      op.scope = expect_word("a scope ('world' or a component name)");
      if (op.kind == OpKind::bcast) {
        expect_keyword("root");
        op.peer = parse_peer();
        if (op.peer.kind != PeerSpec::Kind::exact) {
          lex_.fail(op.loc, "bcast root must be a concrete rank "
                            "(component[k]); got '" +
                                op.peer.to_string() + "'");
        }
      }
      if (op.kind != OpKind::barrier) parse_payload(op.type);
      return op;
    }
    lex_.fail(head.loc, "unknown operation '" + head.text + "'");
  }

  PeerSpec parse_peer() {
    PeerSpec peer;
    const Token name = lex_.next();
    if (name.kind != Token::Kind::word) {
      lex_.fail(name.loc, "expected a peer (component[rank] or 'any'), got '" +
                              name.text + "'");
    }
    if (name.text == "any") {
      peer.kind = PeerSpec::Kind::any;
      return peer;
    }
    peer.component = name.text;
    expect_punct("[");
    int low = 0;
    int high = 0;
    parse_rank_range(low, high, /*allow_star=*/true);
    expect_punct("]");
    if (high < 0) {
      peer.kind = PeerSpec::Kind::all;
    } else if (low == high) {
      peer.kind = PeerSpec::Kind::exact;
      peer.low = peer.high = low;
    } else {
      peer.kind = PeerSpec::Kind::range;
      peer.low = low;
      peer.high = high;
    }
    return peer;
  }

  /// Optional payload: `type NAME [size N] [count N]` or `bytes N`.
  void parse_payload(TypeSpec& type) {
    const Token& head = lex_.peek();
    if (head.kind != Token::Kind::word) return;
    if (head.text == "type") {
      lex_.next();
      const Token name = lex_.next();
      if (name.kind != Token::Kind::word) {
        lex_.fail(name.loc, "expected a type name, got '" + name.text + "'");
      }
      type.name = name.text;
      type.size = builtin_type_size(name.text);
      if (lex_.peek().kind == Token::Kind::word &&
          lex_.peek().text == "size") {
        lex_.next();
        type.size = static_cast<std::uint32_t>(
            expect_count("an element size"));
      }
      if (type.size == 0) {
        lex_.fail(name.loc, "unknown type '" + name.text +
                                "'; give an explicit width with 'size N'");
      }
      if (lex_.peek().kind == Token::Kind::word &&
          lex_.peek().text == "count") {
        lex_.next();
        type.count =
            static_cast<std::uint64_t>(expect_count("an element count"));
      }
      return;
    }
    if (head.text == "bytes") {
      lex_.next();
      type.bytes = static_cast<std::uint64_t>(
          expect_count("a byte count", /*allow_zero=*/true));
    }
  }

  // --- token helpers ------------------------------------------------------

  void expect_keyword(const char* word) {
    const Token tok = lex_.next();
    if (tok.kind != Token::Kind::word || tok.text != word) {
      lex_.fail(tok.loc, std::string("expected '") + word + "', got '" +
                             tok.text + "'");
    }
  }

  void expect_punct(const char* punct) {
    const Token tok = lex_.next();
    if (tok.kind != Token::Kind::punct || tok.text != punct) {
      lex_.fail(tok.loc, std::string("expected '") + punct + "', got '" +
                             tok.text + "'");
    }
  }

  std::string expect_word(const char* what) {
    const Token tok = lex_.next();
    if (tok.kind != Token::Kind::word) {
      lex_.fail(tok.loc,
                std::string("expected ") + what + ", got '" + tok.text + "'");
    }
    return tok.text;
  }

  int expect_rank(const char* what) {
    const Token tok = lex_.next();
    if (tok.kind != Token::Kind::number) {
      lex_.fail(tok.loc,
                std::string("expected ") + what + ", got '" + tok.text + "'");
    }
    return static_cast<int>(tok.value);
  }

  int expect_count(const char* what, bool allow_zero = false) {
    const Token tok = lex_.next();
    if (tok.kind != Token::Kind::number ||
        (!allow_zero && tok.value == 0)) {
      lex_.fail(tok.loc, std::string("expected ") + what +
                             " (a positive integer), got '" + tok.text + "'");
    }
    return static_cast<int>(tok.value);
  }

  // --- post-parse validation (handles forward references) -----------------

  void check_peer(const Contract& c, const Op& op) {
    if (op.peer.kind == PeerSpec::Kind::any) return;
    if (op.peer.component.empty()) return;  // collective without root
    const ComponentDecl* decl = c.find_component(op.peer.component);
    if (decl == nullptr) {
      lex_.fail(op.loc,
                "unknown component '" + op.peer.component + "' in peer");
    }
    const int high =
        op.peer.kind == PeerSpec::Kind::all ? decl->ranks - 1 : op.peer.high;
    if (high >= decl->ranks) {
      lex_.fail(op.loc, "rank " + std::to_string(high) +
                            " out of range for component '" + decl->name +
                            "' (ranks " + std::to_string(decl->ranks) + ")");
    }
  }

  void check_seq(const Contract& c, const ComponentDecl& self,
                 const Seq& seq) {
    for (const Item& item : seq.items) {
      switch (item.kind) {
        case Item::Kind::op: {
          const Op& op = item.op;
          if (op.kind == OpKind::send || op.kind == OpKind::recv ||
              op.kind == OpKind::bcast) {
            check_peer(c, op);
          }
          if (is_collective(op.kind) && op.scope != "world" &&
              c.find_component(op.scope) == nullptr) {
            lex_.fail(op.loc, "unknown collective scope '" + op.scope +
                                  "' (want 'world' or a component name)");
          }
          break;
        }
        case Item::Kind::on:
          if (item.on_high >= self.ranks) {
            lex_.fail(item.loc,
                      "'on' range " + std::to_string(item.on_low) + ".." +
                          std::to_string(item.on_high) +
                          " exceeds component '" + self.name + "' (ranks " +
                          std::to_string(self.ranks) + ")");
          }
          [[fallthrough]];
        case Item::Kind::loop:
        case Item::Kind::choice:
        case Item::Kind::gather:
          for (const Seq& branch : item.branches) {
            check_seq(c, self, branch);
          }
          break;
      }
    }
  }

  void validate(const Contract& c) {
    for (const ProtoDecl& proto : c.protos) {
      const ComponentDecl* self = c.find_component(proto.component);
      if (self == nullptr) {
        lex_.fail(proto.loc, "proto for undeclared component '" +
                                 proto.component + "'");
      }
      check_seq(c, *self, proto.body);
    }
  }

  std::string origin_;
  Lexer lex_;
};

}  // namespace

std::uint32_t builtin_type_size(std::string_view name) noexcept {
  if (name == "char" || name == "byte" || name == "bool" || name == "i8" ||
      name == "u8") {
    return 1;
  }
  if (name == "short" || name == "i16" || name == "u16") return 2;
  if (name == "int" || name == "float" || name == "i32" || name == "u32" ||
      name == "f32") {
    return 4;
  }
  if (name == "long" || name == "double" || name == "i64" || name == "u64" ||
      name == "f64") {
    return 8;
  }
  return 0;
}

Contract parse_contract(std::string_view text, std::string origin) {
  return Parser(text, std::move(origin)).parse();
}

Contract load_contract(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw MphError("proto: cannot read contract file '" + path + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_contract(buf.str(), path);
}

}  // namespace mph::proto
