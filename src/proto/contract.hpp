// contract.hpp — mph_proto: the communication-contract IR.
//
// A contract declares, per component, the sequence of communication
// operations its ranks perform after the MPH handshake: point-to-point
// sends/receives with tag and element type, collectives over a scope,
// bounded loops, component-level choices, and unordered receive groups
// ("gather") that model wildcard collection.  The registry knows which
// components exist before any model code runs (the MPH premise); a
// contract adds *how they talk*, which lets the checker in checker.hpp
// verify send/recv compatibility, collective consistency, and
// deadlock-freedom with no job execution at all — mpicheck/mph_verify
// find the same classes of bug, but only by running the job.
//
// Text format (parser.hpp), by example:
//
//   contract scme
//   component atmosphere ranks 1
//   component ocean ranks 1
//   component coupler ranks 1
//
//   proto atmosphere {
//     send coupler[0] tag 7 type int
//   }
//   proto coupler {
//     gather {                      # unordered: wildcard collection
//       recv atmosphere[*] tag 7 type int
//       recv ocean[*] tag 7 type int
//     }
//   }
//
// Further constructs: `loop N { ... }` (bounded repetition, unrolled by the
// checker), `either { ... } or { ... }` (component-level choice: every rank
// of the component takes the same branch), `on LO..HI { ... }` (restrict
// ops to a local-rank range), `barrier SCOPE` / `bcast SCOPE root PEER ...`
// / `allreduce SCOPE ...` / `allgather SCOPE ...` collectives, and
// `bytes N` in place of `type T [count N]` for untyped payloads (exempt
// from type agreement, like mpicheck's raw traffic).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/minimpi/check.hpp"
#include "src/mph/errors.hpp"

namespace mph::proto {

/// Position of a construct in the contract source, for diagnostics.
struct SourceLoc {
  int line = 0;    ///< 1-based
  int column = 0;  ///< 1-based
};

/// Thrown by the parser on malformed contract text.  The message is
/// "origin:line:col: what" — position-accurate by construction.
class ContractParseError : public MphError {
 public:
  ContractParseError(const std::string& origin, SourceLoc loc,
                     const std::string& what)
      : MphError(origin + ":" + std::to_string(loc.line) + ":" +
                 std::to_string(loc.column) + ": " + what),
        loc_(loc) {}

  [[nodiscard]] SourceLoc where() const noexcept { return loc_; }

 private:
  SourceLoc loc_;
};

/// The other side of a point-to-point op (or a bcast root).
struct PeerSpec {
  enum class Kind {
    exact,  ///< component[k]       — one specific local rank
    range,  ///< component[lo..hi]  — one message per rank of the range
    all,    ///< component[*]       — every rank of the component
    any,    ///< any                — wildcard (receives only)
  };
  Kind kind = Kind::exact;
  std::string component;  ///< empty for `any`
  int low = 0;            ///< exact: the rank; range: inclusive bounds
  int high = 0;

  [[nodiscard]] std::string to_string() const;
};

/// Payload description.  Three shapes:
///   type T [count N]  — typed: name + element size (TypeSig agreement)
///   bytes N           — untyped, but total size pinned
///   (absent)          — unconstrained (never checked)
struct TypeSpec {
  std::string name;         ///< element type name; empty = untyped
  std::uint32_t size = 0;   ///< sizeof(element); 0 = untyped
  std::uint64_t count = 0;  ///< element count; 0 = unspecified
  std::uint64_t bytes = 0;  ///< total payload bytes; 0 = unspecified

  [[nodiscard]] bool typed() const noexcept { return size != 0; }

  /// The minimpi TypeSig this spec pins (empty signature when untyped) —
  /// type agreement between contract ops uses TypeSig::matches, the same
  /// predicate mpicheck applies to live envelopes.
  [[nodiscard]] minimpi::TypeSig sig() const noexcept {
    return minimpi::TypeSig{name, size};
  }

  /// Total payload bytes when derivable (typed with count, or explicit
  /// bytes); 0 otherwise.
  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    if (bytes != 0) return bytes;
    if (size != 0 && count != 0) return size * count;
    return 0;
  }

  [[nodiscard]] std::string to_string() const;
};

enum class OpKind : std::uint8_t {
  send,
  recv,
  barrier,
  bcast,
  allreduce,
  allgather,
};

[[nodiscard]] const char* op_kind_name(OpKind kind) noexcept;
[[nodiscard]] bool is_collective(OpKind kind) noexcept;

/// One communication operation.
struct Op {
  OpKind kind = OpKind::send;
  PeerSpec peer;      ///< send/recv peer; bcast root
  std::string scope;  ///< collectives: "world" or a component name
  int tag = -1;       ///< p2p message tag
  TypeSpec type;
  SourceLoc loc;
};

struct Item;

/// An ordered sequence of items (the body of a proto, loop, branch, ...).
struct Seq {
  std::vector<Item> items;
};

/// One node of a proto body: a plain op or a structured construct.
struct Item {
  enum class Kind {
    op,      ///< a single Op
    loop,    ///< `loop N { ... }` — branches[0] repeated `count` times
    choice,  ///< `either {..} or {..}` — one branch, chosen component-wide
    gather,  ///< `gather { recv... }` — unordered receive multiset
    on,      ///< `on LO..HI { ... }` — restrict to a local-rank range
  };
  Kind kind = Kind::op;
  Op op;                     ///< kind == op
  int count = 0;             ///< kind == loop
  int on_low = 0;            ///< kind == on (inclusive local-rank bounds)
  int on_high = 0;
  std::vector<Seq> branches;  ///< loop/gather/on: one; choice: >= 2
  SourceLoc loc;
};

/// One declared component.
struct ComponentDecl {
  std::string name;
  int ranks = 1;
  SourceLoc loc;
};

/// A per-component protocol body.
struct ProtoDecl {
  std::string component;
  Seq body;
  SourceLoc loc;
};

/// A parsed contract.
struct Contract {
  std::string name;    ///< from the `contract NAME` header
  std::string origin;  ///< file path (or "<text>") for diagnostics
  std::vector<ComponentDecl> components;  ///< declaration order
  std::vector<ProtoDecl> protos;

  [[nodiscard]] const ComponentDecl* find_component(
      std::string_view name) const noexcept;
  [[nodiscard]] const ProtoDecl* find_proto(
      std::string_view component) const noexcept;
  [[nodiscard]] int component_index(std::string_view name) const noexcept;

  /// Serialize back to contract text (stable: parse ∘ to_text ∘ parse is
  /// the identity on the model).  Also the canonical form behind hash().
  [[nodiscard]] std::string to_text() const;
};

/// Serialize one sequence at an indent depth (to_text uses depth 1 for
/// proto bodies).  Contract inference uses this to compare and merge
/// per-rank op sequences structurally.
[[nodiscard]] std::string seq_text(const Seq& seq, int depth);

/// Contract-version hash: CRC32 of the raw contract text.  Carried through
/// the handshake (HandshakeOptions::contract) so executables built against
/// different contract versions fail at registration, not at first message.
[[nodiscard]] std::uint32_t contract_hash(std::string_view text) noexcept;

/// The hash formatted the way handshake signatures and SetupError messages
/// show it (8 hex digits).
[[nodiscard]] std::string contract_hash_hex(std::string_view text);

}  // namespace mph::proto
