#include "src/proto/infer.hpp"

#include <algorithm>
#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace mph::proto {

namespace {

/// World rank → (component name, local rank), from the trace tracks.
struct PeerMap {
  std::map<int, std::pair<std::string, int>> peers;

  [[nodiscard]] const std::pair<std::string, int>* find(
      int world) const noexcept {
    const auto it = peers.find(world);
    return it == peers.end() ? nullptr : &it->second;
  }
};

Item op_item(Op op) {
  Item item;
  item.kind = Item::Kind::op;
  item.op = std::move(op);
  return item;
}

/// One observed op as a contract Item (exact peers, `bytes` payloads).
/// Returns false for ops that have no contract equivalent.
bool to_item(const ObservedOp& obs, const PeerMap& peers, Item& out) {
  Op op;
  op.type.bytes = obs.bytes;
  switch (obs.kind) {
    case ObservedOp::Kind::send:
    case ObservedOp::Kind::recv: {
      op.kind = obs.kind == ObservedOp::Kind::send ? OpKind::send
                                                   : OpKind::recv;
      const auto* peer = peers.find(obs.peer);
      if (peer == nullptr) return false;
      op.peer.kind = PeerSpec::Kind::exact;
      op.peer.component = peer->first;
      op.peer.low = op.peer.high = peer->second;
      op.tag = obs.tag;
      out = op_item(std::move(op));
      return true;
    }
    case ObservedOp::Kind::collective: {
      if (obs.coll == "barrier") {
        op.kind = OpKind::barrier;
        op.type = {};
      } else if (obs.coll == "bcast") {
        // The root is unknowable from a single rank's span; leave the
        // collective out rather than guess (conform would then reject its
        // own inference).  Same for the remaining collectives below.
        return false;
      } else if (obs.coll == "allreduce") {
        op.kind = OpKind::allreduce;
      } else if (obs.coll == "allgather") {
        op.kind = OpKind::allgather;
      } else {
        return false;
      }
      op.scope = "world";
      out = op_item(std::move(op));
      return true;
    }
  }
  return false;
}

std::string item_text(const Item& item) {
  Seq one;
  one.items.push_back(item);
  return seq_text(one, 0);
}

/// Collapse a run of receives covering a contiguous local-rank range per
/// component (each rank exactly once, same tag, same size) into ranged
/// recvs — one per component, wrapped in `gather` when there are several.
void merge_ranged_recvs(std::vector<Item>& items) {
  std::vector<Item> out;
  std::size_t i = 0;
  while (i < items.size()) {
    const Item& head = items[i];
    if (head.kind != Item::Kind::op || head.op.kind != OpKind::recv ||
        head.op.peer.kind != PeerSpec::Kind::exact) {
      out.push_back(items[i++]);
      continue;
    }
    std::size_t j = i;
    std::map<std::string, std::set<int>> sources;
    bool unique = true;
    while (j < items.size()) {
      const Item& next = items[j];
      if (next.kind != Item::Kind::op || next.op.kind != OpKind::recv ||
          next.op.peer.kind != PeerSpec::Kind::exact ||
          next.op.tag != head.op.tag ||
          next.op.type.bytes != head.op.type.bytes) {
        break;
      }
      if (!sources[next.op.peer.component].insert(next.op.peer.low).second) {
        unique = false;
        break;
      }
      ++j;
    }
    bool contiguous = unique && j - i >= 2;
    if (contiguous) {
      for (const auto& [comp, locals] : sources) {
        if (static_cast<int>(locals.size()) !=
            *locals.rbegin() - *locals.begin() + 1) {
          contiguous = false;
          break;
        }
      }
    }
    if (!contiguous) {
      out.push_back(items[i++]);
      continue;
    }
    std::vector<Item> merged;
    for (const auto& [comp, locals] : sources) {
      Op op;
      op.kind = OpKind::recv;
      op.tag = head.op.tag;
      op.type = head.op.type;
      op.peer.component = comp;
      op.peer.low = *locals.begin();
      op.peer.high = *locals.rbegin();
      op.peer.kind = op.peer.low == op.peer.high ? PeerSpec::Kind::exact
                                                 : PeerSpec::Kind::range;
      merged.push_back(op_item(std::move(op)));
    }
    if (merged.size() == 1) {
      out.push_back(std::move(merged.front()));
    } else {
      Item gather;
      gather.kind = Item::Kind::gather;
      Seq body;
      body.items = std::move(merged);
      gather.branches.push_back(std::move(body));
      out.push_back(std::move(gather));
    }
    i = j;
  }
  items = std::move(out);
}

/// Collapse repeated blocks (period 1..4) into `loop N { ... }`.
void collapse_loops(std::vector<Item>& items) {
  std::vector<std::string> texts;
  texts.reserve(items.size());
  for (const Item& item : items) texts.push_back(item_text(item));
  std::vector<Item> out;
  std::size_t i = 0;
  while (i < items.size()) {
    std::size_t best_period = 0;
    std::size_t best_repeats = 1;
    for (std::size_t period = 1; period <= 4 && i + 2 * period <= items.size();
         ++period) {
      std::size_t repeats = 1;
      while (i + (repeats + 1) * period <= items.size()) {
        bool same = true;
        for (std::size_t k = 0; k < period; ++k) {
          if (texts[i + k] != texts[i + repeats * period + k]) {
            same = false;
            break;
          }
        }
        if (!same) break;
        ++repeats;
      }
      if (repeats >= 2 && repeats * period > best_repeats * best_period) {
        best_period = period;
        best_repeats = repeats;
      }
    }
    if (best_period == 0) {
      out.push_back(items[i++]);
      continue;
    }
    Item loop;
    loop.kind = Item::Kind::loop;
    loop.count = static_cast<int>(best_repeats);
    Seq body;
    for (std::size_t k = 0; k < best_period; ++k) {
      body.items.push_back(items[i + k]);
    }
    loop.branches.push_back(std::move(body));
    out.push_back(std::move(loop));
    i += best_repeats * best_period;
  }
  items = std::move(out);
}

}  // namespace

std::string infer_contract_text(const ObservedTrace& trace,
                                std::string_view name) {
  Contract contract;
  contract.name = std::string(name);
  contract.origin = "<inferred>";
  // Components in first-world-rank order, sized by observed rank count.
  PeerMap peers;
  std::map<std::string, int> count;
  for (const ObservedRank& rank : trace.ranks) {  // sorted by world rank
    if (rank.component.empty()) continue;
    peers.peers[rank.world_rank] = {rank.component, rank.local};
    if (count.find(rank.component) == count.end()) {
      ComponentDecl decl;
      decl.name = rank.component;
      contract.components.push_back(std::move(decl));
    }
    ++count[rank.component];
  }
  for (ComponentDecl& decl : contract.components) {
    decl.ranks = count[decl.name];
  }
  for (const ComponentDecl& decl : contract.components) {
    // Normalize every rank's stream, then merge identical ranks; the
    // leftovers become `on lo..hi { ... }` blocks.
    std::vector<std::pair<int, std::vector<Item>>> streams;
    for (const ObservedRank& rank : trace.ranks) {
      if (rank.component != decl.name) continue;
      std::vector<Item> items;
      for (const ObservedOp& obs : rank.ops) {
        Item item;
        if (to_item(obs, peers, item)) items.push_back(std::move(item));
      }
      merge_ranged_recvs(items);
      collapse_loops(items);
      streams.emplace_back(rank.local, std::move(items));
    }
    std::sort(streams.begin(), streams.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    ProtoDecl proto;
    proto.component = decl.name;
    const auto text_of = [](const std::vector<Item>& items) {
      Seq seq;
      seq.items = items;
      return seq_text(seq, 0);
    };
    bool all_same = true;
    for (const auto& [local, items] : streams) {
      if (text_of(items) != text_of(streams.front().second)) {
        all_same = false;
        break;
      }
    }
    if (all_same && !streams.empty()) {
      proto.body.items = streams.front().second;
      if (!proto.body.items.empty()) {
        contract.protos.push_back(std::move(proto));
      }
      continue;
    }
    std::size_t i = 0;
    while (i < streams.size()) {
      std::size_t j = i + 1;
      while (j < streams.size() &&
             streams[j].first == streams[j - 1].first + 1 &&
             text_of(streams[j].second) == text_of(streams[i].second)) {
        ++j;
      }
      if (!streams[i].second.empty()) {
        Item on;
        on.kind = Item::Kind::on;
        on.on_low = streams[i].first;
        on.on_high = streams[j - 1].first;
        Seq body;
        body.items = streams[i].second;
        on.branches.push_back(std::move(body));
        proto.body.items.push_back(std::move(on));
      }
      i = j;
    }
    if (!proto.body.items.empty()) {
      contract.protos.push_back(std::move(proto));
    }
  }
  return contract.to_text();
}

}  // namespace mph::proto
