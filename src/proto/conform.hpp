// conform.hpp — check a recorded mph_trace against a contract.
//
// Input is the Chrome trace-event JSON written by mph_trace / mph_verify
// --trace (TraceReport::to_chrome_json; schema documented in DESIGN.md
// §"Trace event schema").  read_trace_ops() reduces it to the protocol-
// level op stream per rank:
//
//   * track names ("component:local" thread_name metadata) recover the
//     component/local-rank identity of each world rank;
//   * events inside phase spans (handshake, comm_setup, ...) are dropped —
//     contracts describe post-handshake model traffic only;
//   * p2p events inside collective spans are dropped (collectives
//     implement themselves with traced sends/receives; the contract sees
//     one collective step);
//   * bookkeeping events (post_recv, recv_match, control_send, blocked)
//     are dropped; "recv" and "wait" spans both count as one receive.
//
// conform() then replays each rank's observed ops against its projected
// contract order (same expansion the static checker uses), trying every
// either/or branch assignment, and reports the first divergence per rank
// with the event index and the contract op (file/line) it failed against.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/proto/contract.hpp"

namespace mph::proto {

/// One protocol-level event recovered from a trace.
struct ObservedOp {
  enum class Kind { send, recv, collective };
  Kind kind = Kind::send;
  int peer = -1;  ///< world rank: send destination / recv matched source
  int tag = -1;
  std::uint64_t bytes = 0;
  std::string coll;  ///< collective span name ("barrier", "bcast", ...)

  [[nodiscard]] std::string to_string() const;
};

struct ObservedRank {
  int world_rank = 0;
  std::string component;  ///< from the track name
  int local = 0;
  std::vector<ObservedOp> ops;  ///< in per-rank execution order
};

struct ObservedTrace {
  std::vector<ObservedRank> ranks;  ///< sorted by world_rank

  [[nodiscard]] const ObservedRank* by_world(int rank) const noexcept;
};

/// Parse a Chrome trace-event document into per-rank protocol ops.
/// Throws MphError when the document is not a trace export.
[[nodiscard]] ObservedTrace read_trace_ops(std::string_view json_text);

/// Match every rank of the trace against the contract.  Returns findings
/// (empty = the trace conforms).
[[nodiscard]] std::vector<std::string> conform(const Contract& contract,
                                               const ObservedTrace& trace);

}  // namespace mph::proto
