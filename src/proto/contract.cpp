#include "src/proto/contract.hpp"

#include <cstddef>
#include <span>

#include "src/proto/parser.hpp"
#include "src/util/crc32.hpp"

namespace mph::proto {

const char* op_kind_name(OpKind kind) noexcept {
  switch (kind) {
    case OpKind::send: return "send";
    case OpKind::recv: return "recv";
    case OpKind::barrier: return "barrier";
    case OpKind::bcast: return "bcast";
    case OpKind::allreduce: return "allreduce";
    case OpKind::allgather: return "allgather";
  }
  return "?";
}

bool is_collective(OpKind kind) noexcept {
  return kind != OpKind::send && kind != OpKind::recv;
}

std::string PeerSpec::to_string() const {
  switch (kind) {
    case Kind::any: return "any";
    case Kind::all: return component + "[*]";
    case Kind::exact: return component + "[" + std::to_string(low) + "]";
    case Kind::range:
      return component + "[" + std::to_string(low) + ".." +
             std::to_string(high) + "]";
  }
  return "?";
}

std::string TypeSpec::to_string() const {
  if (typed()) {
    std::string out = "type " + name;
    if (builtin_type_size(name) != size) {
      out += " size " + std::to_string(size);
    }
    if (count != 0) out += " count " + std::to_string(count);
    return out;
  }
  if (bytes != 0) return "bytes " + std::to_string(bytes);
  return {};
}

const ComponentDecl* Contract::find_component(
    std::string_view name) const noexcept {
  for (const ComponentDecl& decl : components) {
    if (decl.name == name) return &decl;
  }
  return nullptr;
}

const ProtoDecl* Contract::find_proto(
    std::string_view component) const noexcept {
  for (const ProtoDecl& decl : protos) {
    if (decl.component == component) return &decl;
  }
  return nullptr;
}

int Contract::component_index(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < components.size(); ++i) {
    if (components[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

namespace {

void append_indent(std::string& out, int depth) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
}

void append_op(std::string& out, const Op& op) {
  out += op_kind_name(op.kind);
  if (op.kind == OpKind::send || op.kind == OpKind::recv) {
    out += " " + op.peer.to_string() + " tag " + std::to_string(op.tag);
  } else {
    out += " " + op.scope;
    if (op.kind == OpKind::bcast) out += " root " + op.peer.to_string();
  }
  const std::string payload = op.type.to_string();
  if (!payload.empty()) out += " " + payload;
}

void append_seq(std::string& out, const Seq& seq, int depth) {
  for (const Item& item : seq.items) {
    append_indent(out, depth);
    switch (item.kind) {
      case Item::Kind::op:
        append_op(out, item.op);
        out += '\n';
        break;
      case Item::Kind::loop:
        out += "loop " + std::to_string(item.count) + " {\n";
        append_seq(out, item.branches[0], depth + 1);
        append_indent(out, depth);
        out += "}\n";
        break;
      case Item::Kind::gather:
        out += "gather {\n";
        append_seq(out, item.branches[0], depth + 1);
        append_indent(out, depth);
        out += "}\n";
        break;
      case Item::Kind::on:
        out += "on " + std::to_string(item.on_low);
        if (item.on_high != item.on_low) {
          out += ".." + std::to_string(item.on_high);
        }
        out += " {\n";
        append_seq(out, item.branches[0], depth + 1);
        append_indent(out, depth);
        out += "}\n";
        break;
      case Item::Kind::choice:
        out += "either {\n";
        append_seq(out, item.branches[0], depth + 1);
        append_indent(out, depth);
        out += "}";
        for (std::size_t b = 1; b < item.branches.size(); ++b) {
          out += " or {\n";
          append_seq(out, item.branches[b], depth + 1);
          append_indent(out, depth);
          out += "}";
        }
        out += '\n';
        break;
    }
  }
}

}  // namespace

std::string seq_text(const Seq& seq, int depth) {
  std::string out;
  append_seq(out, seq, depth);
  return out;
}

std::string Contract::to_text() const {
  std::string out = "contract " + name + "\n";
  for (const ComponentDecl& decl : components) {
    out += "component " + decl.name + " ranks " + std::to_string(decl.ranks) +
           "\n";
  }
  for (const ProtoDecl& proto : protos) {
    out += "\nproto " + proto.component + " {\n";
    append_seq(out, proto.body, 1);
    out += "}\n";
  }
  return out;
}

std::uint32_t contract_hash(std::string_view text) noexcept {
  return util::crc32(
      std::as_bytes(std::span<const char>(text.data(), text.size())));
}

std::string contract_hash_hex(std::string_view text) {
  static const char* kHex = "0123456789abcdef";
  const std::uint32_t hash = contract_hash(text);
  std::string out(8, '0');
  for (int i = 0; i < 8; ++i) {
    out[static_cast<std::size_t>(7 - i)] = kHex[(hash >> (4 * i)) & 0xFU];
  }
  return out;
}

}  // namespace mph::proto
