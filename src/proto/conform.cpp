#include "src/proto/conform.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdlib>
#include <map>
#include <set>
#include <utility>

#include "src/proto/expand.hpp"
#include "src/util/json.hpp"

namespace mph::proto {

namespace {

using detail::ExpOp;
using detail::Layout;
using detail::Slot;
using util::JsonValue;

/// [start, end] of a span event, in trace microseconds.  A hair of slack
/// absorbs the ns→us rounding of the export.
struct Window {
  double start = 0;
  double end = 0;

  [[nodiscard]] bool covers(double t) const noexcept {
    return t >= start - 0.0015 && t <= end + 0.0015;
  }
};

bool inside_any(const std::vector<Window>& windows, double t) {
  return std::any_of(windows.begin(), windows.end(),
                     [t](const Window& w) { return w.covers(t); });
}

int arg_int(const JsonValue& event, const char* key, int fallback) {
  const JsonValue* args = event.find("args");
  if (args == nullptr) return fallback;
  const JsonValue* value = args->find(key);
  if (value == nullptr) return fallback;
  return static_cast<int>(value->as_int());
}

}  // namespace

std::string ObservedOp::to_string() const {
  switch (kind) {
    case Kind::send:
      return "send to world rank " + std::to_string(peer) + " (tag=" +
             std::to_string(tag) + ", " + std::to_string(bytes) + " B)";
    case Kind::recv:
      return "recv from world rank " + std::to_string(peer) + " (tag=" +
             std::to_string(tag) + ", " + std::to_string(bytes) + " B)";
    case Kind::collective:
      return coll + " collective";
  }
  return "?";
}

const ObservedRank* ObservedTrace::by_world(int rank) const noexcept {
  for (const ObservedRank& r : ranks) {
    if (r.world_rank == rank) return &r;
  }
  return nullptr;
}

ObservedTrace read_trace_ops(std::string_view json_text) {
  const JsonValue doc = JsonValue::parse(json_text);
  const JsonValue* events = doc.find("traceEvents");
  if (events == nullptr) {
    throw MphError(
        "proto: not a trace export — the document has no 'traceEvents'");
  }
  // Pass 1: track names, and the per-rank exclusion windows.  Phase spans
  // (handshake, comm_setup, ...) hide everything inside them; collective
  // spans hide the p2p traffic that implements the collective.
  std::map<int, std::string> tracks;
  std::map<int, std::vector<Window>> phase_windows;
  std::map<int, std::vector<Window>> collective_windows;
  for (const JsonValue& event : events->items()) {
    const std::string& ph = event.at("ph").as_string();
    const int tid = static_cast<int>(event.at("tid").as_int());
    if (ph == "M") {
      if (event.at("name").as_string() == "thread_name") {
        tracks[tid] = event.at("args").at("name").as_string();
      }
      continue;
    }
    if (ph != "X") continue;
    const std::string& cat = event.at("cat").as_string();
    if (cat != "phase" && cat != "collective") continue;
    if (cat == "phase" && event.at("name").as_string() == "rank_main") {
      continue;  // spans the whole user function (the profiler's anchor),
                 // not a setup phase — it must not hide protocol traffic
    }
    const double start = event.at("ts").as_number();
    const JsonValue* dur = event.find("dur");
    const double end = start + (dur != nullptr ? dur->as_number() : 0.0);
    (cat == "phase" ? phase_windows : collective_windows)[tid].push_back(
        Window{start, end});
  }
  // Pass 2: protocol ops, in document order (the export writes each rank's
  // ring in execution order).
  std::map<int, ObservedRank> ranks;
  for (const JsonValue& event : events->items()) {
    const std::string& ph = event.at("ph").as_string();
    if (ph != "X" && ph != "i") continue;
    const std::string& cat = event.at("cat").as_string();
    if (cat != "p2p" && cat != "collective") continue;
    const std::string& name = event.at("name").as_string();
    if (name == "post_recv" || name == "recv_match" ||
        name == "control_send") {
      continue;
    }
    const int tid = static_cast<int>(event.at("tid").as_int());
    const double ts = event.at("ts").as_number();
    const auto phases = phase_windows.find(tid);
    if (phases != phase_windows.end() && inside_any(phases->second, ts)) {
      continue;  // handshake-internal traffic, not protocol traffic
    }
    if (cat == "p2p") {
      const auto colls = collective_windows.find(tid);
      if (colls != collective_windows.end() &&
          inside_any(colls->second, ts)) {
        continue;  // a collective implementing itself with sends/receives
      }
    }
    ObservedOp op;
    if (cat == "collective") {
      op.kind = ObservedOp::Kind::collective;
      op.coll = name;
    } else if (name == "send") {
      op.kind = ObservedOp::Kind::send;
    } else if (name == "recv" || name == "wait") {
      op.kind = ObservedOp::Kind::recv;
    } else {
      continue;  // blocked markers and future event kinds
    }
    op.peer = arg_int(event, "peer", -1);
    op.tag = arg_int(event, "tag", -1);
    op.bytes = static_cast<std::uint64_t>(arg_int(event, "bytes", 0));
    ObservedRank& rank = ranks[tid];
    rank.world_rank = tid;
    rank.ops.push_back(std::move(op));
  }
  ObservedTrace out;
  for (auto& [tid, rank] : ranks) {
    const auto track = tracks.find(tid);
    if (track != tracks.end()) {
      const std::string& label = track->second;
      const std::size_t colon = label.rfind(':');
      if (colon != std::string::npos) {
        rank.component = label.substr(0, colon);
        rank.local = std::atoi(label.c_str() + colon + 1);
      } else {
        rank.component = label;
      }
    }
    out.ranks.push_back(std::move(rank));
  }
  // Ranks that only ran the handshake still deserve a row: metadata-only
  // tids with no surviving ops are added so rank-count checks see them.
  for (const auto& [tid, label] : tracks) {
    if (out.by_world(tid) != nullptr) continue;
    ObservedRank rank;
    rank.world_rank = tid;
    const std::size_t colon = label.rfind(':');
    if (colon != std::string::npos) {
      rank.component = label.substr(0, colon);
      rank.local = std::atoi(label.c_str() + colon + 1);
    } else {
      rank.component = label;
    }
    out.ranks.push_back(std::move(rank));
  }
  std::sort(out.ranks.begin(), out.ranks.end(),
            [](const ObservedRank& a, const ObservedRank& b) {
              return a.world_rank < b.world_rank;
            });
  return out;
}

namespace {

bool next_assignment(const std::vector<detail::ChoiceSite>& sites,
                     std::vector<int>& assign) {
  for (std::size_t i = sites.size(); i-- > 0;) {
    if (++assign[i] < sites[i].branches) return true;
    assign[i] = 0;
  }
  return false;
}

std::string expected_desc(const Contract& contract, const Layout& layout,
                          const ExpOp& op) {
  const std::string at =
      " at " + contract.origin + ":" + std::to_string(op.loc.line);
  switch (op.kind) {
    case ExpOp::Kind::send:
      return "send to " + detail::rank_name(contract, layout, op.dest) +
             " (tag=" + std::to_string(op.tag) + ")" + at;
    case ExpOp::Kind::recvgroup: {
      if (op.slots.size() == 1) {
        const Slot& slot = op.slots.front();
        const std::string src =
            slot.src < 0 ? std::string("any")
                         : detail::rank_name(contract, layout, slot.src);
        return "recv from " + src + " (tag=" + std::to_string(slot.tag) +
               ")" + at;
      }
      return "a group of " + std::to_string(op.slots.size()) +
             " receive(s)" + at;
    }
    case ExpOp::Kind::collective:
      return std::string(op_kind_name(op.coll)) + "(" + op.scope + ")" + at;
  }
  return "?";
}

/// Payload compatibility of an observed byte count with a contract spec.
bool bytes_ok(const TypeSpec& type, std::uint64_t bytes) {
  const std::uint64_t pinned = type.total_bytes();
  if (pinned != 0) return bytes == pinned;
  if (type.typed()) return bytes % type.size == 0;
  return true;
}

struct RankVerdict {
  bool ok = false;
  std::size_t fail_at = 0;  ///< observed-op index of the divergence
  std::string detail;
};

/// Match one rank's observed ops against one expansion.  `to_gid` maps
/// trace world ranks into contract global ranks (-1 = unknown).
RankVerdict match_rank(const Contract& contract, const Layout& layout,
                       const std::vector<int>& to_gid,
                       const std::vector<ExpOp>& expected,
                       const std::vector<ObservedOp>& observed) {
  RankVerdict verdict;
  std::size_t j = 0;
  const auto fail = [&](std::size_t at, std::string detail) {
    verdict.ok = false;
    verdict.fail_at = at;
    verdict.detail = std::move(detail);
    return verdict;
  };
  const auto gid_of = [&](int world) -> int {
    if (world < 0 || world >= static_cast<int>(to_gid.size())) return -1;
    return to_gid[static_cast<std::size_t>(world)];
  };
  for (const ExpOp& op : expected) {
    if (op.kind == ExpOp::Kind::recvgroup) {
      std::vector<bool> used(op.slots.size(), false);
      for (std::size_t k = 0; k < op.slots.size(); ++k, ++j) {
        if (j >= observed.size()) {
          return fail(j, "trace ends but the contract still expects " +
                             expected_desc(contract, layout, op));
        }
        const ObservedOp& obs = observed[j];
        if (obs.kind != ObservedOp::Kind::recv) {
          return fail(j, "expected " + expected_desc(contract, layout, op));
        }
        const int src = gid_of(obs.peer);
        // Exact slots first; a wildcard slot absorbs what is left.
        std::size_t pick = op.slots.size();
        for (std::size_t s = 0; s < op.slots.size(); ++s) {
          if (used[s]) continue;
          const Slot& slot = op.slots[s];
          if (slot.tag != obs.tag || !bytes_ok(slot.type, obs.bytes)) {
            continue;
          }
          if (slot.src == src) {
            pick = s;
            break;
          }
          if (slot.src < 0 && pick == op.slots.size()) pick = s;
        }
        if (pick == op.slots.size()) {
          return fail(j, "no open slot of the receive group accepts it (" +
                             expected_desc(contract, layout, op) + ")");
        }
        used[pick] = true;
      }
      continue;
    }
    if (j >= observed.size()) {
      return fail(j, "trace ends but the contract still expects " +
                         expected_desc(contract, layout, op));
    }
    const ObservedOp& obs = observed[j];
    if (op.kind == ExpOp::Kind::send) {
      if (obs.kind != ObservedOp::Kind::send ||
          gid_of(obs.peer) != op.dest || obs.tag != op.tag ||
          !bytes_ok(op.type, obs.bytes)) {
        return fail(j, "expected " + expected_desc(contract, layout, op));
      }
    } else {  // collective
      if (obs.kind != ObservedOp::Kind::collective ||
          obs.coll != op_kind_name(op.coll)) {
        return fail(j, "expected " + expected_desc(contract, layout, op));
      }
    }
    ++j;
  }
  if (j != observed.size()) {
    return fail(j, "the contract is complete but the trace continues");
  }
  verdict.ok = true;
  return verdict;
}

}  // namespace

std::vector<std::string> conform(const Contract& contract,
                                 const ObservedTrace& trace) {
  std::vector<std::string> findings;
  const Layout layout = detail::make_layout(contract);
  // Identity checks: every observed rank must belong to a declared
  // component, and rank counts must agree with the declarations.
  std::map<std::string, int> observed_count;
  int max_world = -1;
  for (const ObservedRank& rank : trace.ranks) {
    max_world = std::max(max_world, rank.world_rank);
    if (contract.find_component(rank.component) == nullptr) {
      findings.push_back("conform: trace rank " +
                         std::to_string(rank.world_rank) + " (track '" +
                         rank.component + ":" + std::to_string(rank.local) +
                         "') belongs to no contract component");
      continue;
    }
    ++observed_count[rank.component];
  }
  for (const ComponentDecl& decl : contract.components) {
    const auto it = observed_count.find(decl.name);
    const int seen = it == observed_count.end() ? 0 : it->second;
    if (seen != decl.ranks) {
      findings.push_back(
          "conform: component '" + decl.name + "' declares " +
          std::to_string(decl.ranks) + " rank(s) but the trace shows " +
          std::to_string(seen));
    }
  }
  if (!findings.empty()) return findings;
  std::vector<int> to_gid(static_cast<std::size_t>(max_world + 1), -1);
  for (const ObservedRank& rank : trace.ranks) {
    to_gid[static_cast<std::size_t>(rank.world_rank)] = layout.gid(
        contract.component_index(rank.component), rank.local);
  }
  const std::vector<detail::ChoiceSite> sites = detail::choice_sites(contract);
  constexpr int kMaxAssignments = 64;
  constexpr std::uint64_t kMaxOps = 100000;
  for (const ObservedRank& rank : trace.ranks) {
    const int comp = contract.component_index(rank.component);
    RankVerdict best;
    bool first = true;
    std::vector<int> assign(sites.size(), 0);
    int tried = 0;
    bool more = true;
    while (more && tried < kMaxAssignments) {
      ++tried;
      const std::vector<ExpOp> expected = detail::expand_rank(
          contract, layout, comp, rank.local, assign, kMaxOps);
      const RankVerdict verdict =
          match_rank(contract, layout, to_gid, expected, rank.ops);
      if (verdict.ok) {
        best = verdict;
        break;
      }
      if (first || verdict.fail_at > best.fail_at) best = verdict;
      first = false;
      more = next_assignment(sites, assign);
    }
    if (best.ok) continue;
    std::string what = "conform: " + rank.component + "[" +
                       std::to_string(rank.local) + "]";
    if (best.fail_at < rank.ops.size()) {
      what += " trace event #" + std::to_string(best.fail_at) + " (" +
              rank.ops[best.fail_at].to_string() + ") violates the contract: ";
    } else {
      what += ": ";
    }
    what += best.detail;
    findings.push_back(std::move(what));
  }
  return findings;
}

}  // namespace mph::proto
