// checker.hpp — launch-free static verification of a contract.
//
// With no job execution at all, check() projects the contract onto every
// rank (choice branches enumerated component-wide, loops unrolled, `on`
// ranges applied) and verifies:
//
//   * pairwise send/recv compatibility — every send finds a receive slot
//     on its destination (exact-source slots first, then `any` wildcards,
//     FIFO per (src, dst, tag) channel, matching minimpi's per-channel
//     ordering guarantee), and every slot finds a send;
//   * tag/type agreement — matched pairs with typed payloads must agree
//     under minimpi::TypeSig::matches (the predicate mpicheck applies to
//     live envelopes); pinned element counts / byte totals must be equal;
//   * collective consistency — every member of a scope must execute the
//     same collective sequence (kind, root, element type, slot by slot);
//   * deadlock-freedom — a happens-before graph over all projected ops
//     (program-order edges per rank, send→receive-group match edges,
//     shared per-slot collective nodes) must be acyclic.  Cycles are
//     reported the way mpicheck reports live deadlocks — every
//     component[rank] op edge named — plus contract file/line provenance:
//
//       wait-for cycle across 2 rank(s): solo[0] recv<-solo[1] (tag=7)
//       at broken.mphc:8 ; solo[1] recv<-solo[0] (tag=8) at broken.mphc:12
//
// Sends are modelled as buffered (non-blocking), matching minimpi: only
// receive and collective dependencies can participate in a cycle.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/proto/contract.hpp"

namespace mph::proto {

struct ProtoCheckOptions {
  /// Cap on enumerated either/or branch assignments (cartesian across
  /// sites).  Exceeding it checks the first N and notes the truncation.
  int max_choice_combos = 64;
  /// Cap on the unrolled per-rank op count (runaway loop nesting).
  std::uint64_t max_ops_per_rank = 100000;
};

/// Findings, one human-readable line each, grouped by class.  Every line
/// carries "at origin:line" provenance.
struct ProtoReport {
  std::vector<std::string> orphan_sends;     ///< send with no receive slot
  std::vector<std::string> unmatched_recvs;  ///< slot with no send
  std::vector<std::string> type_mismatches;  ///< TypeSig/count/bytes clash
  std::vector<std::string> collective_errors;
  std::vector<std::string> deadlocks;        ///< wait-for cycles
  std::vector<std::string> structural;       ///< caps exceeded, bad scopes

  [[nodiscard]] bool clean() const noexcept {
    return orphan_sends.empty() && unmatched_recvs.empty() &&
           type_mismatches.empty() && collective_errors.empty() &&
           deadlocks.empty() && structural.empty();
  }
  [[nodiscard]] std::size_t total() const noexcept {
    return orphan_sends.size() + unmatched_recvs.size() +
           type_mismatches.size() + collective_errors.size() +
           deadlocks.size() + structural.size();
  }
  /// All findings in report order, one per line.
  [[nodiscard]] std::string to_string() const;
};

/// Statically check a parsed contract.  Never launches anything.
[[nodiscard]] ProtoReport check(const Contract& contract,
                                const ProtoCheckOptions& options = {});

/// The happens-before graph for the first choice assignment, as Graphviz
/// DOT (program-order edges solid, match edges dashed, collective slots as
/// shared boxes) — `mph_proto check --dump-graph`.
[[nodiscard]] std::string dump_causality_dot(const Contract& contract,
                                             const ProtoCheckOptions& options =
                                                 {});

}  // namespace mph::proto
