#include "src/minimpi/job.hpp"

#include "src/minimpi/error.hpp"
#include "src/util/diagnostics.hpp"

namespace minimpi {

Job::Job(int world_size, JobOptions options)
    : world_size_(world_size), options_(options) {
  if (world_size <= 0) {
    throw Error(Errc::invalid_argument,
                "job world size must be positive, got " +
                    std::to_string(world_size));
  }
  mailboxes_.reserve(static_cast<std::size_t>(world_size));
  for (int i = 0; i < world_size; ++i) {
    mailboxes_.push_back(
        std::make_unique<Mailbox>(abort_flag_, abort_reason_));
  }
}

Mailbox& Job::mailbox(rank_t world_rank) {
  if (world_rank < 0 || world_rank >= world_size_) {
    throw Error(Errc::invalid_rank,
                "world rank " + std::to_string(world_rank) +
                    " outside job of size " + std::to_string(world_size_));
  }
  return *mailboxes_[static_cast<std::size_t>(world_rank)];
}

void Job::abort(const std::string& reason) {
  {
    const std::lock_guard<std::mutex> lock(abort_mutex_);
    if (abort_flag_.load(std::memory_order_acquire)) return;
    abort_reason_ = "job aborted: " + reason;
    abort_flag_.store(true, std::memory_order_release);
  }
  MPH_DIAG_LOG(error) << "job abort: " << reason;
  for (auto& box : mailboxes_) box->wake_all();
}

void Job::control_send(rank_t src_world, rank_t dest_world, tag_t control_tag,
                       std::span<const std::byte> bytes) {
  if (control_tag < kControlTagBase) {
    throw Error(Errc::internal, "control_send requires a control-range tag");
  }
  Envelope env;
  env.context = kWorldContext;
  env.src = src_world;
  env.tag = control_tag;
  env.payload.assign(bytes.begin(), bytes.end());
  count_message(env.payload.size());
  mailbox(dest_world).deliver(std::move(env));
}

}  // namespace minimpi
