#include "src/minimpi/job.hpp"

#include <algorithm>

#include "src/minimpi/error.hpp"
#include "src/util/diagnostics.hpp"
#include "src/util/rng.hpp"

namespace minimpi {

std::string AbortInfo::to_string() const {
  std::string out = "rank " + std::to_string(world_rank);
  if (!component.empty()) out += " (" + component + ")";
  out += " failed";
  if (!operation.empty()) out += " in " + operation;
  if (!detail.empty()) out += ": " + detail;
  return out;
}

Job::Job(int world_size, JobOptions options)
    : world_size_(world_size), options_(std::move(options)) {
  if (world_size <= 0) {
    throw Error(Errc::invalid_argument,
                "job world size must be positive, got " +
                    std::to_string(world_size));
  }
  Scheduler* sched = options_.scheduler.get();
  verify_ = sched != nullptr && sched->verifying();
  // All job-owned randomness flows from one seed so verification runs
  // replay byte-identically; drawing a fresh OS seed throws while the
  // entropy ban is armed (a verify run forgot to pin the seed).
  seed_ = options_.seed != 0 ? options_.seed : mph::util::fresh_entropy_seed();
  if (!options_.faults.empty()) {
    faults_ = std::make_unique<FaultInjector>(options_.faults, seed_);
    if (verify_) faults_->set_virtual_time(true);
  }
  options_.check = options_.check.merged_with_env();
  if (options_.check.any()) {
    checker_ = std::make_unique<Checker>(options_.check, world_size);
  }
  options_.trace = options_.trace.merged_with_env();
  if (options_.trace.enabled) {
    tracer_ = std::make_unique<Tracer>(world_size, options_.trace);
    if (faults_ != nullptr) faults_->set_tracer(tracer_.get());
  }
  options_.monitor = options_.monitor.merged_with_env();
  options_.watch = options_.watch.merged_with_env();
  if (options_.watch.enabled &&
      options_.watch.dir == watch::WatchOptions{}.dir &&
      options_.monitor.dir != MonitorOptions{}.dir) {
    // One configured output directory serves both layers: a job that set
    // only monitor.dir expects the health log next to the metrics.
    options_.watch.dir = options_.monitor.dir;
  }
  if (options_.monitor.enabled || options_.watch.enabled) {
    // Watching implies collecting: the rules are functions of snapshots.
    metrics_ = std::make_unique<MetricsRegistry>(world_size);
    if (faults_ != nullptr) faults_->set_metrics(metrics_.get());
  }
  if (options_.watch.enabled) {
    watcher_ = std::make_unique<watch::Watcher>(options_.watch);
    if (tracer_ != nullptr) {
      // Flight recorder: a firing rule drains the trace window and ships
      // critical-path blame with the alert.  Safe while ranks still run
      // (trace_report tolerates concurrent recording).
      watcher_->set_flight_recorder([this] { return trace_report(); });
    }
  }
  if (verify_) {
    rank_next_context_ = std::make_unique<mph::atomic<context_t>[]>(
        static_cast<std::size_t>(world_size));
    for (int i = 0; i < world_size; ++i) {
      rank_next_context_[i].store(0, std::memory_order_relaxed);
    }
  }
  mailboxes_.reserve(static_cast<std::size_t>(world_size));
  for (int i = 0; i < world_size; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>(
        abort_flag_, abort_reason_, i, faults_.get(), checker_.get(), sched,
        tracer_.get(), metrics_.get()));
  }
  rank_labels_.assign(static_cast<std::size_t>(world_size), std::string{});
  rank_failed_ =
      std::make_unique<mph::atomic<bool>[]>(static_cast<std::size_t>(world_size));
  // Pre-thread-spawn init: thread creation publishes these, so relaxed
  // stores suffice (the plain assignment this replaces was seq_cst).
  for (int i = 0; i < world_size; ++i) {
    rank_failed_[i].store(false, std::memory_order_relaxed);
  }
  rank_domain_.assign(static_cast<std::size_t>(world_size), -1);
  if (checker_ != nullptr) checker_->bind(this);
  if (sched != nullptr) sched->bind(this);
  // Started last: the monitor thread snapshots through metrics_snapshot(),
  // which reads the mailboxes and liveness state constructed above.  With
  // a zero interval the registry collects but nothing is published.
  if (options_.monitor.enabled && options_.monitor.interval.count() > 0) {
    Monitor::ObserveFn observe;
    if (watcher_ != nullptr) {
      observe = [this](const MetricsSnapshot& snap) {
        watcher_->observe(snap);
        return watcher_->alert_gauges();
      };
    }
    monitor_ = std::make_unique<Monitor>(
        options_.monitor, [this] { return metrics_snapshot(); },
        std::move(observe));
  }
}

Job::~Job() {
  // Park the monitor first (its snapshots read the mailboxes), then the
  // scheduler's monitor before the mailboxes it queries go away, then the
  // checker's watcher before any member *it* reaches (mailboxes, labels,
  // abort state).
  stop_monitor();
  if (options_.scheduler != nullptr) options_.scheduler->stop();
  if (checker_ != nullptr) checker_->stop();
}

void Job::stop_monitor() {
  if (monitor_ != nullptr) monitor_->stop();
}

context_t Job::allocate_context(rank_t allocator) noexcept {
  contexts_allocated_.fetch_add(1, std::memory_order_relaxed);
  if (verify_ && allocator >= 0 && allocator < world_size_) {
    // Disjoint per-rank id spaces: 20 bits of per-rank counter under a
    // rank prefix.  Ids are then a pure function of the allocating rank's
    // program order — identical across schedules, so decision traces that
    // record context ids replay exactly.
    const auto base = static_cast<context_t>(allocator + 1) << 20U;
    return base +
           rank_next_context_[allocator].fetch_add(1,
                                                   std::memory_order_relaxed);
  }
  return next_context_.fetch_add(1, std::memory_order_relaxed);
}

Mailbox& Job::mailbox(rank_t world_rank) {
  if (world_rank < 0 || world_rank >= world_size_) {
    throw Error(Errc::invalid_rank,
                "world rank " + std::to_string(world_rank) +
                    " outside job of size " + std::to_string(world_size_));
  }
  return *mailboxes_[static_cast<std::size_t>(world_rank)];
}

void Job::abort(const std::string& reason) {
  AbortInfo info;
  info.detail = reason;
  abort(std::move(info));
}

void Job::abort(AbortInfo info) {
  {
    const std::lock_guard<std::mutex> lock(abort_mutex_);
    if (abort_flag_.load(std::memory_order_acquire)) return;
    abort_reason_ =
        "job aborted: " + (info.world_rank < 0 ? info.detail : info.to_string());
    abort_info_ = std::move(info);
    abort_flag_.store(true, std::memory_order_release);
  }
  MPH_DIAG_LOG(error) << abort_reason_;
  for (auto& box : mailboxes_) box->wake_all();
}

void Job::set_rank_label(rank_t world_rank, std::string label) {
  if (world_rank < 0 || world_rank >= world_size_) return;
  const std::lock_guard<std::mutex> lock(labels_mutex_);
  rank_labels_[static_cast<std::size_t>(world_rank)] = std::move(label);
}

std::string Job::rank_label(rank_t world_rank) const {
  if (world_rank < 0 || world_rank >= world_size_) return {};
  const std::lock_guard<std::mutex> lock(labels_mutex_);
  return rank_labels_[static_cast<std::size_t>(world_rank)];
}

void Job::mark_rank_failed(rank_t world_rank) {
  if (world_rank < 0 || world_rank >= world_size_) return;
  rank_failed_[static_cast<std::size_t>(world_rank)].store(
      true, std::memory_order_release);
}

bool Job::rank_failed(rank_t world_rank) const {
  if (world_rank < 0 || world_rank >= world_size_) return false;
  return rank_failed_[static_cast<std::size_t>(world_rank)].load(
      std::memory_order_acquire);
}

bool Job::any_rank_failed(rank_t low, rank_t high) const {
  for (rank_t r = low; r <= high; ++r) {
    if (rank_failed(r)) return true;
  }
  return false;
}

void Job::join_domain(rank_t world_rank, int domain_id,
                      const std::string& label) {
  if (world_rank < 0 || world_rank >= world_size_) {
    throw Error(Errc::invalid_rank,
                "join_domain: world rank " + std::to_string(world_rank) +
                    " outside job of size " + std::to_string(world_size_));
  }
  FailureDomain* domain = nullptr;
  {
    const std::lock_guard<std::mutex> lock(domains_mutex_);
    auto& slot = domains_[domain_id];
    if (slot == nullptr) {
      slot = std::make_unique<FailureDomain>();
      slot->label = label;
    }
    // Idempotent membership: a respawned rank re-joins the same domain.
    if (std::find(slot->ranks.begin(), slot->ranks.end(), world_rank) ==
        slot->ranks.end()) {
      slot->ranks.push_back(world_rank);
    }
    rank_domain_[static_cast<std::size_t>(world_rank)] = domain_id;
    domain = slot.get();
  }
  mailbox(world_rank).set_domain(&domain->flag, &domain->reason);
}

int Job::domain_of(rank_t world_rank) const {
  if (world_rank < 0 || world_rank >= world_size_) return -1;
  const std::lock_guard<std::mutex> lock(domains_mutex_);
  return rank_domain_[static_cast<std::size_t>(world_rank)];
}

void Job::abort_domain(int domain_id, const AbortInfo& info) {
  std::vector<rank_t> members;
  {
    const std::lock_guard<std::mutex> lock(domains_mutex_);
    auto it = domains_.find(domain_id);
    if (it == domains_.end()) {
      throw Error(Errc::invalid_argument,
                  "abort_domain: unknown domain " + std::to_string(domain_id));
    }
    FailureDomain& domain = *it->second;
    if (domain.flag.load(std::memory_order_acquire)) return;
    domain.reason = "failure domain '" + domain.label +
                    "' aborted: " + info.to_string();
    domain.info = info;
    domain.flag.store(true, std::memory_order_release);
    members = domain.ranks;
    MPH_DIAG_LOG(error) << domain.reason;
  }
  for (const rank_t r : members) mailbox(r).wake_all();
}

bool Job::domain_aborted(int domain_id) const {
  const std::lock_guard<std::mutex> lock(domains_mutex_);
  auto it = domains_.find(domain_id);
  return it != domains_.end() &&
         it->second->flag.load(std::memory_order_acquire);
}

std::optional<AbortInfo> Job::domain_abort_info(int domain_id) const {
  const std::lock_guard<std::mutex> lock(domains_mutex_);
  auto it = domains_.find(domain_id);
  if (it == domains_.end() ||
      !it->second->flag.load(std::memory_order_acquire)) {
    return std::nullopt;
  }
  return it->second->info;
}

std::vector<rank_t> Job::domain_ranks(int domain_id) const {
  const std::lock_guard<std::mutex> lock(domains_mutex_);
  auto it = domains_.find(domain_id);
  if (it == domains_.end()) return {};
  return it->second->ranks;
}

std::string Job::domain_label(int domain_id) const {
  const std::lock_guard<std::mutex> lock(domains_mutex_);
  auto it = domains_.find(domain_id);
  if (it == domains_.end()) return {};
  return it->second->label;
}

void Job::heal_domain(int domain_id) {
  std::vector<rank_t> members;
  {
    const std::lock_guard<std::mutex> lock(domains_mutex_);
    auto it = domains_.find(domain_id);
    if (it == domains_.end()) return;
    FailureDomain& domain = *it->second;
    if (!domain.flag.load(std::memory_order_acquire)) return;
    // Clear the flag first: the reason string is only read after observing
    // the flag set, and no member thread is running at this point anyway
    // (heal_domain's contract).
    domain.flag.store(false, std::memory_order_release);
    domain.reason.clear();
    domain.info.reset();
    members = domain.ranks;
    MPH_DIAG_LOG(info) << "failure domain '" << domain.label
                       << "' healed for respawn";
  }
  for (const rank_t r : members) {
    rank_failed_[static_cast<std::size_t>(r)].store(false,
                                                    std::memory_order_release);
    // Discard traffic addressed to the dead incarnation: the replacement
    // starts from its checkpoint with a clean mailbox.
    (void)mailbox(r).drain();
  }
}

void Job::put_shared(const std::string& key, std::string value) {
  const std::lock_guard<std::mutex> lock(shared_mutex_);
  shared_[key] = std::move(value);
}

std::optional<std::string> Job::get_shared(const std::string& key) const {
  const std::lock_guard<std::mutex> lock(shared_mutex_);
  const auto it = shared_.find(key);
  if (it == shared_.end()) return std::nullopt;
  return it->second;
}

void Job::control_send(rank_t src_world, rank_t dest_world, tag_t control_tag,
                       std::span<const std::byte> bytes) {
  if (control_tag < kControlTagBase) {
    throw Error(Errc::internal, "control_send requires a control-range tag");
  }
  Envelope env;
  env.context = kWorldContext;
  env.src = src_world;
  env.tag = control_tag;
  env.payload.assign(bytes.begin(), bytes.end());
  count_message(env.payload.size());
  if (tracer_ != nullptr) {
    env.flow = tracer_->next_flow(src_world);
    tracer_->instant(src_world, TraceOp::send, "control_send", dest_world,
                     kWorldContext, control_tag, env.payload.size(), env.flow);
  }
  mailbox(dest_world).deliver(std::move(env));
}

CommStats Job::stats() const {
  CommStats s;
  s.messages = messages_.load(std::memory_order_relaxed);
  s.payload_bytes = payload_bytes_.load(std::memory_order_relaxed);
  s.contexts_allocated = contexts_allocated_.load(std::memory_order_relaxed);
  std::map<context_t, std::uint64_t> by_context;
  for (const auto& box : mailboxes_) {
    s.queue_high_water =
        std::max<std::uint64_t>(s.queue_high_water, box->queue_high_water());
    s.wildcard_recvs += box->wildcard_recvs();
    for (const auto& [ctx, count] : box->delivered_by_context()) {
      by_context[ctx] += count;
    }
  }
  s.messages_by_context.assign(by_context.begin(), by_context.end());
  return s;
}

MetricsSnapshot Job::metrics_snapshot() const {
  MetricsSnapshot snap;
  if (metrics_ == nullptr) return snap;
  snap.seq = metrics_->next_seq();
  snap.t_ns = metrics_->now_ns();
  snap.wall_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  snap.comm = stats();
  snap.ranks.reserve(static_cast<std::size_t>(world_size_));
  for (rank_t r = 0; r < world_size_; ++r) {
    RankMetrics rank = metrics_->read_rank(r);
    rank.alive = !rank_failed(r);
    if (rank.component.empty()) {
      // Pre-handshake (or non-MPH job): the executable label stands in,
      // the same fallback the trace tracks use.
      rank.component = rank_label(r);
    }
    snap.ranks.push_back(std::move(rank));
  }
  return snap;
}

TraceReport Job::trace_report() const {
  TraceReport report;
  report.comm = stats();
  if (tracer_ == nullptr) return report;
  report.ranks.reserve(static_cast<std::size_t>(world_size_));
  for (rank_t r = 0; r < world_size_; ++r) {
    const auto i = static_cast<std::size_t>(r);
    RankTrace rank;
    rank.world_rank = r;
    {
      const std::lock_guard<std::mutex> lock(tracer_->meta_mutex_);
      rank.track = tracer_->track_names_[i];
      rank.counters = tracer_->counters_[i];
    }
    if (rank.track.empty()) {
      // Unnamed (non-MPH job or pre-handshake abort): executable label
      // plus world rank, same shape as the handshake's component:rank.
      const std::string label = rank_label(r);
      rank.track =
          (label.empty() ? "rank" : label) + ":" + std::to_string(r);
    }
    TraceRing::Snapshot snap = tracer_->ring(i).snapshot();
    rank.events = std::move(snap.events);
    rank.dropped = snap.dropped;
    rank.queue_high_water = mailboxes_[i]->queue_high_water();
    report.ranks.push_back(std::move(rank));
  }
  return report;
}

JobDrain Job::drain_all() {
  JobDrain total;
  for (std::size_t r = 0; r < mailboxes_.size(); ++r) {
    const MailboxDrain d = mailboxes_[r]->drain();
    total.envelopes += d.envelopes;
    total.posted_recvs += d.posted_recvs;
    if (checker_ != nullptr) {
      checker_->record_drain(static_cast<rank_t>(r), d.envelopes,
                             d.posted_recvs);
    }
  }
  return total;
}

}  // namespace minimpi
