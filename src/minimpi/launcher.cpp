#include "src/minimpi/launcher.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <thread>

#include "src/minimpi/error.hpp"
#include "src/minimpi/fault.hpp"
#include "src/util/diagnostics.hpp"

namespace minimpi {

namespace {

/// Route one rank's failure: domain members abort only their domain (the
/// failure is *contained*), everyone else takes the whole job down.
/// Returns true when the failure was contained.
bool record_failure(Job& job, const AbortInfo& info) {
  const int domain = job.domain_of(info.world_rank);
  if (domain >= 0) {
    job.abort_domain(domain, info);
    return true;
  }
  job.abort(info);
  return false;
}

}  // namespace

JobReport run_mpmd(const std::vector<ExecSpec>& specs, JobOptions options) {
  if (specs.empty()) {
    throw Error(Errc::invalid_argument, "run_mpmd: empty command file");
  }
  int total = 0;
  for (const ExecSpec& spec : specs) {
    if (spec.nprocs <= 0) {
      throw Error(Errc::invalid_argument,
                  "run_mpmd: executable '" + spec.name +
                      "' requests nprocs=" + std::to_string(spec.nprocs));
    }
    if (!spec.entry) {
      throw Error(Errc::invalid_argument,
                  "run_mpmd: executable '" + spec.name + "' has no entry point");
    }
    total += spec.nprocs;
  }

  auto job = std::make_shared<Job>(total, options);

  JobReport report;
  std::mutex report_mutex;

  // Respawn is a wall-clock event outside any explored schedule space, so
  // it is incompatible with an installed scheduler (mph_verify).
  bool respawn_enabled = options.respawn.enabled;
  if (respawn_enabled && job->scheduler() != nullptr) {
    MPH_DIAG_LOG(info)
        << "run_mpmd: respawn disabled (a scheduler is installed)";
    respawn_enabled = false;
  }

  // Rank threads report their exit here; the supervisor (this thread)
  // decides whether an exited failure domain gets respawned.
  struct Completion {
    rank_t world_rank = -1;
  };
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::deque<Completion> completions;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(total));

  // Per-world-rank bookkeeping, touched only by the supervisor thread
  // (before the initial spawn and after a rank's completion event).
  std::vector<std::size_t> rank_exec(static_cast<std::size_t>(total), 0);
  std::vector<int> rank_incarnation(static_cast<std::size_t>(total), 0);
  std::vector<char> rank_exited(static_cast<std::size_t>(total), 0);

  const auto spawn_rank = [&](std::size_t e, rank_t world_rank,
                              int incarnation) {
    threads.emplace_back([&, e, world_rank, incarnation] {
      const ExecSpec& my_spec = specs[e];
      mph::util::set_thread_label("rank " + std::to_string(world_rank) + " (" +
                                  my_spec.name + ")");
      job->set_rank_label(world_rank, my_spec.name);
      ExecEnv env;
      env.exec_index = static_cast<int>(e);
      env.exec_name = my_spec.name;
      env.args = my_spec.args;
      env.world_rank = world_rank;
      env.incarnation = incarnation;
      // The component attributed to this rank: the handshake layer may
      // relabel the rank with its component name (e.g. an ensemble member);
      // until then the executable name stands in.
      const auto component = [&]() -> std::string {
        std::string label = job->rank_label(world_rank);
        return label.empty() ? my_spec.name : label;
      };
      const auto push = [&](std::vector<RankFailure>& into, std::string op,
                            std::string what) {
        const std::lock_guard<std::mutex> lock(report_mutex);
        into.push_back(RankFailure{world_rank, static_cast<int>(e),
                                   component(), std::move(op),
                                   std::move(what)});
      };
      // Scheduler lifecycle brackets, RAII so a throwing entry point still
      // counts as finished — a finished rank can never send again, which
      // is what the verify scheduler's quiescence detection relies on.
      struct SchedScope {
        Scheduler* sched;
        rank_t rank;
        SchedScope(Scheduler* s, rank_t r) : sched(s), rank(r) {
          if (sched != nullptr) sched->rank_started(rank);
        }
        ~SchedScope() {
          if (sched != nullptr) sched->rank_finished(rank);
        }
      } sched_scope{job->scheduler(), world_rank};
      // Per-rank launch→join anchor on the shared job clock: mph_prof uses
      // the rank_main span as the source/sink of the happens-before DAG.
      // RAII so a failing rank still closes its anchor.
      const TraceSpan main_span(job->tracer(), world_rank, TraceOp::phase,
                                "rank_main", kPhaseRankMain);
      try {
        const Comm world = Comm::world(job, world_rank);
        world.fault_point(KillPoint::entry);
        my_spec.entry(world, env);
        world.fault_point(KillPoint::finish);
      } catch (const AbortedError& ex) {
        // Collateral: some other rank failed first.  When the whole job
        // aborted this is ordinary unwinding; when only this rank's
        // failure domain aborted it is contained collateral.
        job->mark_rank_failed(world_rank);
        push(job->aborted() ? report.failures : report.contained,
             std::string{}, ex.what());
      } catch (const FaultInjectedError& ex) {
        job->mark_rank_failed(world_rank);
        AbortInfo info{world_rank, component(), kill_point_name(ex.point()),
                       ex.what()};
        const bool contained = record_failure(*job, info);
        push(contained ? report.contained : report.failures,
             kill_point_name(ex.point()), ex.what());
      } catch (const DeadlockError& ex) {
        // mpicheck upgraded a blocked receive into a cycle report; keep
        // it distinct from generic user-code failures.
        job->mark_rank_failed(world_rank);
        AbortInfo info{world_rank, component(), "deadlock", ex.what()};
        const bool contained = record_failure(*job, info);
        push(contained ? report.contained : report.failures, "deadlock",
             ex.what());
      } catch (const std::exception& ex) {
        MPH_DIAG_LOG(error) << "rank " << world_rank
                            << " failed: " << ex.what();
        job->mark_rank_failed(world_rank);
        AbortInfo info{world_rank, component(), "user code", ex.what()};
        const bool contained = record_failure(*job, info);
        push(contained ? report.contained : report.failures, "user code",
             ex.what());
      }
      {
        const std::lock_guard<std::mutex> lock(done_mutex);
        completions.push_back(Completion{world_rank});
      }
      done_cv.notify_one();
    });
  };

  rank_t base = 0;
  for (std::size_t e = 0; e < specs.size(); ++e) {
    for (int p = 0; p < specs[e].nprocs; ++p) {
      const rank_t world_rank = base + p;
      rank_exec[static_cast<std::size_t>(world_rank)] = e;
      spawn_rank(e, world_rank, 0);
    }
    base += specs[e].nprocs;
  }

  // Supervision loop: wait until every live rank thread has exited.  When
  // respawn is enabled and ALL ranks of an aborted failure domain have
  // exited, heal the domain (after the configured backoff) and relaunch its
  // ranks at the next incarnation, up to the per-domain budget.
  std::map<int, int> respawns_used;
  int remaining = total;
  while (remaining > 0) {
    Completion done;
    {
      std::unique_lock<std::mutex> lock(done_mutex);
      done_cv.wait(lock, [&] { return !completions.empty(); });
      done = completions.front();
      completions.pop_front();
    }
    --remaining;
    rank_exited[static_cast<std::size_t>(done.world_rank)] = 1;
    if (!respawn_enabled) continue;

    const int domain = job->domain_of(done.world_rank);
    if (domain < 0 || !job->domain_aborted(domain)) continue;
    std::vector<rank_t> members = job->domain_ranks(domain);
    // Domain membership is recorded in rank-arrival order; sort so the
    // respawn event (and the incarnation bookkeeping keyed off the first
    // member) is deterministic.
    std::sort(members.begin(), members.end());
    const bool all_exited =
        std::all_of(members.begin(), members.end(), [&](rank_t r) {
          return rank_exited[static_cast<std::size_t>(r)] != 0;
        });
    if (!all_exited) continue;
    int& used = respawns_used[domain];
    if (used >= options.respawn.max_respawns) continue;
    ++used;

    // Exponential backoff per domain: first respawn waits `backoff`, each
    // further respawn of the same domain multiplies by `backoff_factor`.
    auto backoff = options.respawn.backoff;
    for (int i = 1; i < used; ++i) {
      backoff = std::chrono::milliseconds(static_cast<long long>(
          static_cast<double>(backoff.count()) *
          options.respawn.backoff_factor));
    }
    if (backoff.count() > 0) std::this_thread::sleep_for(backoff);

    const std::optional<AbortInfo> cause = job->domain_abort_info(domain);
    const std::string label = job->domain_label(domain);
    job->heal_domain(domain);

    RespawnEvent event;
    event.domain_id = domain;
    event.label = label;
    event.ranks = members;
    event.cause = cause.has_value() ? cause->to_string() : std::string{};
    event.backoff = backoff;
    event.incarnation =
        rank_incarnation[static_cast<std::size_t>(members.front())] + 1;
    MPH_DIAG_LOG(info) << "respawning failure domain '" << label << "' ("
                       << members.size() << " ranks, incarnation "
                       << event.incarnation << ")";
    {
      const std::lock_guard<std::mutex> lock(report_mutex);
      report.recovery.respawns.push_back(event);
    }
    for (const rank_t r : members) {
      const auto slot = static_cast<std::size_t>(r);
      rank_exited[slot] = 0;
      const int incarnation = ++rank_incarnation[slot];
      ++remaining;
      spawn_rank(rank_exec[slot], r, incarnation);
    }
  }

  for (std::thread& t : threads) t.join();

  // Every rank joined: park the scheduler's monitor before reporting (the
  // job object may outlive this call inside a verify run's engine loop).
  if (Scheduler* sched = job->scheduler()) sched->stop();

  report.ok = report.failures.empty() && !job->aborted();
  report.stats = job->stats();
  // Drain the trace rings while the mailboxes still hold their counters
  // (drain_all below clears queues, not counters, but keep the order
  // obvious): every rank thread has joined, so the rings are quiescent.
  if (job->tracer() != nullptr) report.trace = job->trace_report();
  // Stop the monitor thread before taking the report snapshot: with every
  // rank joined and the publisher parked, this final read is exact (the
  // live snapshots tolerate torn reads; JobReport::metrics must not).
  if (job->metrics() != nullptr) {
    job->stop_monitor();
    report.metrics = job->metrics_snapshot();
    if (watch::Watcher* watcher = job->watcher()) {
      // One last judgement on the exact snapshot, then the full event log.
      watcher->observe(*report.metrics);
      report.health = watcher->events();
    }
  }
  if (job->aborted()) report.abort_reason = job->abort_reason();
  report.abort = job->abort_info();
  const JobDrain leaked = job->drain_all();
  report.leaked_envelopes = leaked.envelopes;
  report.leaked_posted_recvs = leaked.posted_recvs;
  if (Checker* checker = job->checker()) {
    checker->stop();  // quiesce the watcher before snapshotting
    report.check = checker->report();
    if (!report.check->clean()) {
      MPH_DIAG_LOG(info) << "mpicheck " << report.check->to_string();
    }
  }
  // Put the root-cause failure first: collateral entries (empty operation,
  // "... aborted: ..." text) are other ranks unwinding.
  const auto is_root_cause = [](const RankFailure& f) {
    return !f.operation.empty();
  };
  std::stable_partition(report.failures.begin(), report.failures.end(),
                        is_root_cause);
  std::stable_partition(report.contained.begin(), report.contained.end(),
                        is_root_cause);
  return report;
}

JobReport run_spmd(
    int nprocs, std::function<void(const Comm& world, const ExecEnv& env)> entry,
    JobOptions options) {
  return run_mpmd({ExecSpec{"spmd", nprocs, std::move(entry), {}}}, options);
}

}  // namespace minimpi
