#include "src/minimpi/launcher.hpp"

#include <mutex>
#include <thread>

#include "src/minimpi/error.hpp"
#include "src/util/diagnostics.hpp"

namespace minimpi {

JobReport run_mpmd(const std::vector<ExecSpec>& specs, JobOptions options) {
  if (specs.empty()) {
    throw Error(Errc::invalid_argument, "run_mpmd: empty command file");
  }
  int total = 0;
  for (const ExecSpec& spec : specs) {
    if (spec.nprocs <= 0) {
      throw Error(Errc::invalid_argument,
                  "run_mpmd: executable '" + spec.name +
                      "' requests nprocs=" + std::to_string(spec.nprocs));
    }
    if (!spec.entry) {
      throw Error(Errc::invalid_argument,
                  "run_mpmd: executable '" + spec.name + "' has no entry point");
    }
    total += spec.nprocs;
  }

  auto job = std::make_shared<Job>(total, options);

  JobReport report;
  std::mutex report_mutex;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(total));

  rank_t base = 0;
  for (std::size_t e = 0; e < specs.size(); ++e) {
    const ExecSpec& spec = specs[e];
    for (int p = 0; p < spec.nprocs; ++p) {
      const rank_t world_rank = base + p;
      threads.emplace_back([&, e, world_rank] {
        const ExecSpec& my_spec = specs[e];
        mph::util::set_thread_label("rank " + std::to_string(world_rank) +
                                    " (" + my_spec.name + ")");
        ExecEnv env;
        env.exec_index = static_cast<int>(e);
        env.exec_name = my_spec.name;
        env.args = my_spec.args;
        env.world_rank = world_rank;
        try {
          const Comm world = Comm::world(job, world_rank);
          my_spec.entry(world, env);
        } catch (const AbortedError& ex) {
          // Collateral: some other rank failed first; record quietly.
          const std::lock_guard<std::mutex> lock(report_mutex);
          report.failures.push_back(
              RankFailure{world_rank, static_cast<int>(e), ex.what()});
        } catch (const std::exception& ex) {
          MPH_DIAG_LOG(error) << "rank " << world_rank << " failed: "
                              << ex.what();
          job->abort(std::string("rank ") + std::to_string(world_rank) +
                     " (" + my_spec.name + "): " + ex.what());
          const std::lock_guard<std::mutex> lock(report_mutex);
          report.failures.push_back(
              RankFailure{world_rank, static_cast<int>(e), ex.what()});
        }
      });
    }
    base += spec.nprocs;
  }

  for (std::thread& t : threads) t.join();

  report.ok = report.failures.empty() && !job->aborted();
  report.stats = job->stats();
  if (job->aborted()) report.abort_reason = job->abort_reason();
  // Put the root-cause failure first: AbortedError entries ("... job
  // aborted: ...") are collateral unwinding of other ranks.
  std::stable_partition(report.failures.begin(), report.failures.end(),
                        [](const RankFailure& f) {
                          return f.what.find("job aborted:") ==
                                 std::string::npos;
                        });
  return report;
}

JobReport run_spmd(
    int nprocs, std::function<void(const Comm& world, const ExecEnv& env)> entry,
    JobOptions options) {
  return run_mpmd({ExecSpec{"spmd", nprocs, std::move(entry), {}}}, options);
}

}  // namespace minimpi
