// launcher.hpp — MPMD job launching, the in-process analogue of
// `poe -pgmmodel mpmd -cmdfile` (IBM SP), `mpprun` (Compaq), or
// `mpirun -np a prog1 : -np b prog2` (clusters): the environments the
// paper targets (§6).
//
// A job is a list of ExecSpec entries (one per "executable binary").  Ranks
// are assigned contiguously in command-file order — executable i occupies
// world ranks [base_i, base_i + nprocs_i) — and never overlap, matching the
// resource-allocation policy the paper describes ("each processor or MPI
// process is exclusively owned by an executable").  Each rank runs on its
// own thread; all ranks share one COMM_WORLD.
//
// Crucially, an entry point receives only its world communicator and its
// own executable's environment (name, argv).  It does NOT learn the layout
// of other executables — discovering that is exactly MPH's job.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/minimpi/comm.hpp"
#include "src/minimpi/job.hpp"

namespace minimpi {

/// Per-rank execution environment handed to an entry point.
struct ExecEnv {
  int exec_index = 0;             ///< position in the command file
  std::string exec_name;          ///< label of the executable entry
  std::vector<std::string> args;  ///< argv-style arguments of the executable
  rank_t world_rank = 0;          ///< this rank's id in COMM_WORLD
  /// 0 on the first launch; incremented each time this rank is respawned as
  /// a failed-member replacement (JobOptions::respawn).  Entry points that
  /// support recovery branch on this: a replacement re-runs the rejoin
  /// handshake and restores from its checkpoint instead of starting fresh.
  int incarnation = 0;
};

/// One command-file line: an "executable" and the processes it gets.
struct ExecSpec {
  std::string name;
  int nprocs = 1;
  /// Entry point, run once per process of this executable.
  std::function<void(const Comm& world, const ExecEnv& env)> entry;
  std::vector<std::string> args;
};

/// Failure of a single rank (entry point threw).
struct RankFailure {
  rank_t world_rank = -1;
  int exec_index = -1;
  std::string component;  ///< executable name of the failed rank
  std::string operation;  ///< kill-point / "user code" / "" for collateral
  std::string what;
};

/// One failed-member replacement performed by the run_mpmd supervisor.
struct RespawnEvent {
  int domain_id = -1;        ///< healed failure domain
  std::string label;         ///< domain label (e.g. the member name)
  int incarnation = 0;       ///< incarnation the replacement ranks started at
  std::vector<rank_t> ranks; ///< world ranks respawned together
  std::string cause;         ///< abort info of the death that triggered it
  std::chrono::milliseconds backoff{0};  ///< delay applied before the heal
};

/// Recovery actions of one job (JobOptions::respawn).
struct RecoveryReport {
  std::vector<RespawnEvent> respawns;
  [[nodiscard]] bool healed() const noexcept { return !respawns.empty(); }
};

/// Result of a completed job.
struct JobReport {
  bool ok = false;
  std::vector<RankFailure> failures;   ///< job-fatal (root cause first)
  std::vector<RankFailure> contained;  ///< confined to a failure domain
  std::string abort_reason;            ///< empty when ok
  /// Structured root cause when the job (not just a domain) aborted.
  std::optional<AbortInfo> abort;
  CommStats stats;  ///< job-wide communication counters
  /// Envelopes still queued in mailboxes after every rank returned.  Zero
  /// for a cleanly-finished job; nonzero means messages were sent but never
  /// received (typical after an abort cut receivers short).
  std::uint64_t leaked_envelopes = 0;
  std::uint64_t leaked_posted_recvs = 0;
  /// mpicheck findings, present when any checker was enabled for the job.
  std::optional<CheckReport> check;
  /// mph_trace timelines + metrics, present when tracing was enabled
  /// (JobOptions::trace / MINIMPI_TRACE); export with
  /// TraceReport::to_chrome_json().
  std::optional<TraceReport> trace;
  /// mph_mon final snapshot, present when monitoring was enabled
  /// (JobOptions::monitor / MINIMPI_MONITOR).  Taken after every rank
  /// joined, so unlike the live snapshots it is exact, not torn.
  std::optional<MetricsSnapshot> metrics;
  /// mph_watch health events, present when watching was enabled
  /// (JobOptions::watch / MINIMPI_WATCH): every rule firing and clearing
  /// over the job's lifetime, including one evaluation of the exact final
  /// snapshot (so monotone rules like fault_burn report even when the
  /// publish interval never elapsed).
  std::vector<watch::HealthEvent> health;
  /// Member replacements performed (empty unless JobOptions::respawn fired).
  /// A healed domain's deaths still appear in `contained`; the respawn
  /// events here say which of them were replaced and when.
  RecoveryReport recovery;

  /// Convenience for tests: message of the first failure ("" when ok).
  [[nodiscard]] std::string first_error() const {
    return failures.empty() ? std::string{} : failures.front().what;
  }
};

/// Run an MPMD job to completion.  Spawns sum(nprocs) rank-threads, waits
/// for all of them, and reports failures.  When any rank throws, the job
/// aborts: blocked ranks unwind with AbortedError (recorded separately from
/// the root-cause failure).  Ranks registered into a failure domain
/// (Job::join_domain) abort only their domain: those failures land in
/// `contained` and leave `ok` true for the rest of the job.
JobReport run_mpmd(const std::vector<ExecSpec>& specs, JobOptions options = {});

/// SPMD convenience: n ranks all running the same entry.
JobReport run_spmd(int nprocs,
                   std::function<void(const Comm& world, const ExecEnv& env)> entry,
                   JobOptions options = {});

}  // namespace minimpi
