// check.hpp — mpicheck: the opt-in correctness-verification layer of
// minimpi (in the spirit of MPI tools such as MUST).
//
// Four checkers, enabled per-job through JobOptions::check or the
// MINIMPI_CHECK environment variable ("all" or a comma list of
// deadlock,types,collectives,leaks):
//
//   * wait-for-graph deadlock detection — every blocked receive/probe/
//     request-wait registers a dependency edge (waiter -> awaited rank) in
//     a central graph; a watcher thread runs cycle detection and converts
//     a send/recv cycle into ONE structured report naming every
//     (component, rank, operation) edge — instead of N independent
//     timeouts.  The blocking-receive timeout path consults the same graph
//     and upgrades its timeout to a DeadlockError when a cycle exists.
//   * type/count matching — typed point-to-point calls stamp envelopes
//     with a TypeSig (element type name + size); on match the sender's
//     signature is verified against the posted receive and a mismatch
//     raises TypeMismatchError naming both sides.
//   * collective consistency — each collective invocation reports
//     (communicator, sequence number, operation, root, count, element
//     size) to a central table; members disagreeing with the first
//     reporter raise CollectiveMismatchError (catches split-brain
//     collectives across MPH components).
//   * resource-leak audit — live communicator states, posted receives the
//     user never consumed, and never-received envelopes are tracked per
//     rank; the totals surface in JobReport::check and Mph::finalize().
//
// Soundness of the deadlock detector: each rank is one thread, so a rank
// has at most one blocked mailbox wait at a time (one graph slot per world
// rank).  A delivery epoch per rank is advanced under the destination
// mailbox's mutex on every deliver(); a blocked waiter records the epoch it
// has processed, in the same critical section as its failed match check.
// An edge A->B with seen_epoch == epoch[A] therefore means A has examined
// every envelope delivered so far and still matched nothing — and B, being
// registered as blocked, cannot be concurrently sending.  A cycle of such
// definite-source edges can never make progress, so reporting it is
// race-free: fault-injection delays/kills never show up as deadlocks
// (delayed senders hold no edge; killed ranks abort the job, which parks
// the watcher).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <tuple>
#include <vector>

#include "src/minimpi/error.hpp"
#include "src/minimpi/racer/atomic.hpp"
#include "src/minimpi/types.hpp"

namespace minimpi {

class Job;

// ---------------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------------

/// Which checkers run for a job.  Merged with the MINIMPI_CHECK environment
/// variable at Job construction (the union of both enables).
struct CheckOptions {
  bool deadlock = false;      ///< wait-for-graph cycle detection
  bool type_matching = false; ///< sender/receiver datatype verification
  bool collectives = false;   ///< per-communicator collective consistency
  bool leaks = false;         ///< communicator/request/envelope audit

  /// Watcher-thread scan period for the deadlock detector.  Zero disables
  /// the watcher: cycles are then only detected synchronously when a
  /// blocked receive times out (the timeout-upgrade path).
  std::chrono::milliseconds watch_interval{25};

  [[nodiscard]] bool any() const noexcept {
    return deadlock || type_matching || collectives || leaks;
  }

  /// Every checker on.
  [[nodiscard]] static CheckOptions all() noexcept;

  /// Parse a MINIMPI_CHECK-style value: "all"/"1", or a comma/space list of
  /// deadlock, types, collectives, leaks.  Unknown tokens are ignored.
  [[nodiscard]] static CheckOptions parse(std::string_view text) noexcept;

  /// This set of options unioned with what MINIMPI_CHECK enables.
  [[nodiscard]] CheckOptions merged_with_env() const noexcept;
};

// ---------------------------------------------------------------------------
// Type signatures
// ---------------------------------------------------------------------------

namespace detail {
template <class T>
constexpr std::string_view raw_type_name() noexcept {
#if defined(__clang__) || defined(__GNUC__)
  return __PRETTY_FUNCTION__;
#else
  return "T = ?";
#endif
}
}  // namespace detail

/// Human-readable name of T, extracted from the compiler's pretty function
/// signature.  Views static storage — safe to keep indefinitely.
template <class T>
constexpr std::string_view type_name() noexcept {
  constexpr std::string_view raw = detail::raw_type_name<T>();
  constexpr std::string_view key = "T = ";
  const std::size_t start = raw.find(key);
  if (start == std::string_view::npos) return "?";
  const std::string_view rest = raw.substr(start + key.size());
  const std::size_t end = rest.find_first_of(";]");
  return end == std::string_view::npos ? rest : rest.substr(0, end);
}

/// Element-type signature a typed send stamps onto its envelope and a typed
/// receive declares as expectation.  Raw (untyped) traffic carries an empty
/// signature and is never checked.
struct TypeSig {
  std::string_view name{};   ///< element type name ("" = untyped)
  std::uint32_t size = 0;    ///< sizeof(element); 0 = untyped

  [[nodiscard]] bool present() const noexcept { return size != 0; }
  [[nodiscard]] bool matches(const TypeSig& other) const noexcept {
    return name == other.name && size == other.size;
  }
};

/// Signature of a Transferable element type.
template <Transferable T>
[[nodiscard]] constexpr TypeSig type_sig() noexcept {
  return TypeSig{type_name<T>(), static_cast<std::uint32_t>(sizeof(T))};
}

// ---------------------------------------------------------------------------
// Structured check failures
// ---------------------------------------------------------------------------

/// A wait-for cycle was found (watcher thread report, or a blocked receive
/// whose timeout was upgraded).  The message lists every edge of the cycle
/// as "component[world_rank] op<-component[world_rank] (context, tag)".
class DeadlockError : public Error {
 public:
  explicit DeadlockError(const std::string& cycle)
      : Error(Errc::deadlock, cycle) {}
};

/// A typed receive matched an envelope whose element type disagrees.
class TypeMismatchError : public Error {
 public:
  explicit TypeMismatchError(const std::string& what)
      : Error(Errc::type_mismatch, what) {}
};

/// Members of one communicator invoked inconsistent collectives.
class CollectiveMismatchError : public Error {
 public:
  explicit CollectiveMismatchError(const std::string& what)
      : Error(Errc::collective_mismatch, what) {}
};

/// A rank finished with communication debt while the leak audit was on
/// (thrown by Mph::finalize).
class LeakError : public Error {
 public:
  explicit LeakError(const std::string& what) : Error(Errc::leak, what) {}
};

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

/// Everything the enabled checkers found over one job's lifetime.  Surfaced
/// as JobReport::check and printed by Mph::finalize() on the diagnostics
/// channel.
struct CheckReport {
  struct RankLeak {
    rank_t world_rank = -1;
    std::string component;
    std::size_t envelopes = 0;        ///< delivered to the rank, never received
    std::size_t posted_recvs = 0;     ///< posted receives that never matched
    std::size_t outstanding_requests = 0;  ///< requests never waited/cancelled
    std::size_t live_comms = 0;       ///< communicator states never released

    [[nodiscard]] bool clean() const noexcept {
      return envelopes == 0 && posted_recvs == 0 &&
             outstanding_requests == 0 && live_comms == 0;
    }
    [[nodiscard]] std::string to_string() const;
  };

  std::vector<std::string> deadlocks;
  std::vector<std::string> type_mismatches;
  std::vector<std::string> collective_mismatches;
  std::vector<RankLeak> leaks;  ///< only ranks with debt appear

  [[nodiscard]] bool clean() const noexcept {
    return deadlocks.empty() && type_mismatches.empty() &&
           collective_mismatches.empty() && leaks.empty();
  }

  /// Multi-line human-readable summary ("check: clean" when nothing fired).
  [[nodiscard]] std::string to_string() const;
};

// ---------------------------------------------------------------------------
// Scoped operation label (collectives name their blocked waits)
// ---------------------------------------------------------------------------

/// While alive, blocked waits registered by this thread carry `op` as their
/// operation label ("barrier", "bcast", ...) instead of the generic
/// "recv"/"wait".  Nesting restores the previous label.
class ScopedCheckOp {
 public:
  explicit ScopedCheckOp(const char* op) noexcept : previous_(current()) {
    current() = op;
  }
  ScopedCheckOp(const ScopedCheckOp&) = delete;
  ScopedCheckOp& operator=(const ScopedCheckOp&) = delete;
  ~ScopedCheckOp() { current() = previous_; }

  [[nodiscard]] static const char*& current() noexcept {
    static thread_local const char* label = nullptr;
    return label;
  }

 private:
  const char* previous_;
};

// ---------------------------------------------------------------------------
// Checker
// ---------------------------------------------------------------------------

/// Central registry of the four checkers for one Job.  Thread safe; every
/// hook is a cheap no-op for checkers that are off.
class Checker {
 public:
  /// Sentinel count for collectives with legitimately rank-varying counts
  /// (gatherv, split, ...): excluded from the count comparison.
  static constexpr std::uint64_t kUncheckedCount = ~std::uint64_t{0};

  Checker(CheckOptions options, int world_size);
  ~Checker();

  Checker(const Checker&) = delete;
  Checker& operator=(const Checker&) = delete;

  /// Attach the owning job (labels + abort) and start the watcher thread
  /// when deadlock checking is on and watch_interval is nonzero.  Called
  /// once by the Job constructor after the mailboxes exist.
  void bind(Job* job);

  /// Stop and join the watcher.  Idempotent; called by ~Job before the
  /// mailboxes are destroyed.
  void stop();

  [[nodiscard]] const CheckOptions& options() const noexcept {
    return options_;
  }

  // --- wait-for graph (all calls under the waiter's mailbox mutex) ---------

  /// Advance `dest`'s delivery epoch (every Mailbox::deliver, any payload).
  void note_delivery(rank_t dest) noexcept;

  /// Register that `waiter` is blocked waiting for a message from
  /// `waits_on` (world rank, possibly any_source).  `op` falls back to the
  /// thread's ScopedCheckOp label when one is set.
  void block(rank_t waiter, rank_t waits_on, const char* op, context_t ctx,
             tag_t tag);

  /// Record that `waiter` has processed every delivery so far and still
  /// matches nothing.  Called each time its wait predicate fails.
  void refresh(rank_t waiter) noexcept;

  /// Remove `waiter`'s edge (wait completed or unwound).
  void unblock(rank_t waiter);

  /// Register a nonblocking miss — iprobe with no matching message, or
  /// test() on an incomplete request — as a *soft* wait-for edge.  Soft
  /// edges only participate in cycle detection once the owner has missed
  /// the same pattern at least twice in a row (it is spinning, not merely
  /// glancing) and the miss is recent; they are invalidated by any send
  /// the owner issues (note_send), by a hit, and by ordinary blocking.
  /// This is how probe/test spin loops get reported as deadlock cycles
  /// instead of timing out.  `op` labels the edge ("iprobe"/"test").
  void iprobe_miss(rank_t owner, rank_t src, const char* op, context_t ctx,
                   tag_t tag);

  /// The owner's nonblocking probe/test found something: clear its soft
  /// edge.
  void iprobe_hit(rank_t owner);

  /// `src` delivered a message somewhere: it is making progress, so any
  /// soft (spin) edge it holds is stale.  Called under the destination
  /// mailbox's mutex on every delivery.
  void note_send(rank_t src);

  /// Confirmed wait-for cycle through `rank`, formatted; nullopt when the
  /// graph has none (or deadlock checking is off).
  [[nodiscard]] std::optional<std::string> deadlock_cycle(rank_t rank);

  // --- type matching --------------------------------------------------------

  /// Compare a matched envelope's signature against the receive's
  /// expectation.  Returns the formatted mismatch (also recorded in the
  /// report) or nullopt when compatible / either side untyped.
  [[nodiscard]] std::optional<std::string> type_mismatch(
      const TypeSig& sent, std::size_t payload_bytes, const TypeSig& expected,
      std::size_t buffer_bytes, rank_t sender, rank_t receiver, context_t ctx,
      tag_t tag);

  // --- collective consistency ----------------------------------------------

  /// Verify one member's collective invocation against the first reporter
  /// of the same (communicator, sequence) slot.  Throws
  /// CollectiveMismatchError on disagreement.
  void on_collective(context_t ctx, rank_t group_leader, std::uint32_t seq,
                     const char* op, rank_t root, std::uint64_t count,
                     std::uint32_t elem_size, int comm_size, rank_t reporter);

  // --- resource-leak audit --------------------------------------------------

  void note_comm_created(rank_t world_rank) noexcept;
  void note_comm_destroyed(rank_t world_rank) noexcept;
  void note_request_posted(rank_t world_rank) noexcept;
  void note_request_consumed(rank_t world_rank) noexcept;

  /// Fold one mailbox drain into the per-rank leak accounting (called by
  /// Job::drain_all and Mph::finalize; accumulating, so draining twice
  /// cannot double-count what the first drain already cleared).
  void record_drain(rank_t world_rank, std::size_t envelopes,
                    std::size_t posted_recvs);

  /// Leak totals of one rank right now (finalize's per-rank view).
  [[nodiscard]] CheckReport::RankLeak rank_leak(rank_t world_rank) const;

  /// Snapshot of everything found so far.
  [[nodiscard]] CheckReport report() const;

 private:
  /// One rank's blocked wait (≤ 1 per rank: a rank is a single thread).
  struct BlockedEdge {
    bool active = false;
    rank_t waits_on = any_source;
    const char* op = "recv";
    context_t context = kWorldContext;
    tag_t tag = any_tag;
    std::uint64_t seen_epoch = 0;
    /// Soft edges come from nonblocking misses (iprobe/test spin loops);
    /// they join cycles only with spins >= 2, a current epoch, and a recent
    /// last_spin — a rank that merely glanced once, or went off to compute,
    /// must not be reported as deadlocked.
    bool soft = false;
    std::uint64_t spins = 0;
    std::chrono::steady_clock::time_point last_spin{};
  };

  /// Descriptor of the first report of one collective slot.
  struct CollectiveRecord {
    const char* op = "";
    rank_t root = -1;
    std::uint64_t count = 0;
    std::uint32_t elem_size = 0;
    int comm_size = 0;
    rank_t first_reporter = -1;
    int arrived = 0;
  };

  [[nodiscard]] std::string label_of(rank_t world_rank) const;
  [[nodiscard]] std::string describe_edge(rank_t waiter,
                                          const BlockedEdge& edge) const;

  /// Walk the definite-source wait-for chain from `start`; returns the
  /// member ranks of a confirmed cycle (epoch-verified) or empty.
  /// Requires graph_mutex_.
  [[nodiscard]] std::vector<rank_t> find_cycle_locked(rank_t start) const;

  /// Format a cycle (outside graph_mutex_: takes label locks).
  [[nodiscard]] std::string format_cycle(
      const std::vector<rank_t>& cycle,
      const std::vector<BlockedEdge>& edges) const;

  void watch_loop();

  CheckOptions options_;
  int world_size_;
  Job* job_ = nullptr;

  // Wait-for graph.
  mutable std::mutex graph_mutex_;
  std::vector<BlockedEdge> edges_;  ///< slot per world rank
  std::unique_ptr<mph::atomic<std::uint64_t>[]> epochs_;

  // Watcher.
  std::thread watcher_;
  std::mutex watcher_mutex_;
  std::condition_variable watcher_cv_;
  bool stopping_ = false;

  // Collective table.
  std::mutex coll_mutex_;
  std::map<std::tuple<context_t, rank_t, std::uint32_t>, CollectiveRecord>
      collectives_;

  // Leak counters (per world rank).
  std::unique_ptr<mph::atomic<std::int64_t>[]> live_comms_;
  std::unique_ptr<mph::atomic<std::int64_t>[]> outstanding_requests_;
  std::unique_ptr<mph::atomic<std::uint64_t>[]> leaked_envelopes_;
  std::unique_ptr<mph::atomic<std::uint64_t>[]> leaked_posted_;

  // Findings.
  mutable std::mutex report_mutex_;
  std::vector<std::string> deadlocks_;
  std::vector<std::string> type_mismatches_;
  std::vector<std::string> collective_mismatches_;
};

}  // namespace minimpi
